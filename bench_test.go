package pargeo

// testing.B benchmarks, one family per table/figure of the paper's
// evaluation (§6). Run with:
//
//	go test -bench=. -benchmem
//
// Sizes are scaled down from the paper's 10M so the suite completes in
// minutes; pass -benchn to taste via the BENCH_N environment-free default
// below (the cmd/pargeo-bench harness handles large-scale runs and thread
// sweeps).

import (
	"fmt"
	"testing"

	"pargeo/internal/bdltree"
	"pargeo/internal/closestpair"
	"pargeo/internal/delaunay"
	"pargeo/internal/emst"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/graphgen"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/seb"
	"pargeo/internal/wspd"
)

const benchN = 50000

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1KdTreeBuild2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Build(pts, kdtree.Options{})
	}
}

func BenchmarkTable1KdTreeBuild5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Build(pts, kdtree.Options{})
	}
}

func BenchmarkTable1KdTreeKNN2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 3)
	t := kdtree.Build(pts, kdtree.Options{})
	queries := make([]int32, pts.Len())
	for i := range queries {
		queries[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.KNN(queries, 5)
	}
}

func BenchmarkTable1KdTreeRange2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 4)
	t := kdtree.Build(pts, kdtree.Options{})
	boxes := make([]geom.Box, 1000)
	for i := range boxes {
		c := pts.At(i * (pts.Len() / len(boxes)))
		bx := geom.EmptyBox(2)
		bx.Expand([]float64{c[0] - 8, c[1] - 8})
		bx.Expand([]float64{c[0] + 8, c[1] + 8})
		boxes[i] = bx
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RangeSearchParallel(boxes)
	}
}

func BenchmarkTable1BDLConstruction5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := bdltree.New(5, bdltree.Options{})
		tr.Insert(pts)
	}
}

func BenchmarkTable1BDLInsert5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 6)
	batch := pts.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := bdltree.New(5, bdltree.Options{})
		for j := 0; j < 10; j++ {
			tr.Insert(pts.Slice(j*batch, (j+1)*batch))
		}
	}
}

func BenchmarkTable1BDLDelete5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 7)
	batch := pts.Len() / 10
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := bdltree.New(5, bdltree.Options{})
		tr.Insert(pts)
		b.StartTimer()
		for j := 0; j < 10; j++ {
			tr.Delete(pts.Slice(j*batch, (j+1)*batch))
		}
	}
}

func BenchmarkTable1WSPD2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := kdtree.Build(pts, kdtree.Options{LeafSize: 1})
		wspd.Compute(t, 2.0)
	}
}

func BenchmarkTable1EMST2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emst.Compute(pts)
	}
}

func BenchmarkTable1ConvexHull2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull2d.DivideConquer(pts)
	}
}

func BenchmarkTable1ConvexHull3D(b *testing.B) {
	pts := generators.UniformCube(benchN, 3, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull3d.DivideConquer(pts)
	}
}

func BenchmarkTable1SEB2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seb.Sampling(pts, 1)
	}
}

func BenchmarkTable1SEB5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seb.Sampling(pts, 1)
	}
}

func BenchmarkTable1ClosestPair2D(b *testing.B) {
	pts := generators.UniformCube(benchN, 2, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closestpair.ClosestPair(pts)
	}
}

func BenchmarkTable1ClosestPair3D(b *testing.B) {
	pts := generators.UniformCube(benchN, 3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closestpair.ClosestPair(pts)
	}
}

func BenchmarkTable1KNNGraph2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphgen.KNNGraph(pts, 5)
	}
}

func BenchmarkTable1DelaunayGraph2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delaunay.Parallel(pts, 1)
	}
}

func BenchmarkTable1GabrielGraph2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphgen.GabrielGraph(pts, 1)
	}
}

func BenchmarkTable1BetaSkeleton2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphgen.BetaSkeleton(pts, 1.5, 1)
	}
}

func BenchmarkTable1Spanner2D(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 2, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphgen.Spanner(pts, 6)
	}
}

func BenchmarkTable1MortonSort5D(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		morton.Sort(pts)
	}
}

// --- Figure 8 (2D hull across data sets and algorithms) -------------------

func BenchmarkFig8(b *testing.B) {
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-IS", generators.InSphere(benchN, 2, 1)},
		{"2D-OS", generators.OnSphere(benchN, 2, 2)},
		{"2D-U", generators.UniformCube(benchN, 2, 3)},
		{"2D-OC", generators.OnCube(benchN, 2, 4)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) []int32
	}{
		{"CGALseq", hull2d.MonotoneChain},
		{"Qhullseq", hull2d.SequentialQuickhull},
		{"RandInc", func(p geom.Points) []int32 { return hull2d.RandInc(p, 1) }},
		{"QuickHull", hull2d.Quickhull},
		{"DivideConquer", hull2d.DivideConquer},
	}
	for _, s := range sets {
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", s.name, a.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.f(s.pts)
				}
			})
		}
	}
}

// --- Figure 9 (3D hull across data sets and algorithms) -------------------

func BenchmarkFig9(b *testing.B) {
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"3D-IS", generators.InSphere(benchN, 3, 1)},
		{"3D-OS", generators.OnSphere(benchN, 3, 2)},
		{"3D-U", generators.UniformCube(benchN, 3, 3)},
		{"3D-OC", generators.OnCube(benchN, 3, 4)},
		{"3D-Thai", generators.Statue(benchN/2, 5)},
		{"3D-Dragon", generators.Dragon(benchN*36/100, 6)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) [][3]int32
	}{
		{"CGALseq", func(p geom.Points) [][3]int32 { return hull3d.SequentialRandInc(p, 1) }},
		{"Qhullseq", hull3d.SequentialQuickhull},
		{"RandInc", func(p geom.Points) [][3]int32 { return hull3d.RandInc(p, 1) }},
		{"QuickHull", hull3d.Quickhull},
		{"DivideConquer", hull3d.DivideConquer},
		{"Pseudo", hull3d.Pseudo},
	}
	for _, s := range sets {
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", s.name, a.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.f(s.pts)
				}
			})
		}
	}
}

// --- Figure 10 (SEB across data sets and algorithms) ----------------------

func BenchmarkFig10(b *testing.B) {
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-IS", generators.InSphere(benchN, 2, 1)},
		{"2D-OS", generators.OnSphere(benchN, 2, 2)},
		{"3D-IS", generators.InSphere(benchN, 3, 3)},
		{"3D-OS", generators.OnSphere(benchN, 3, 4)},
		{"2D-U", generators.UniformCube(benchN, 2, 5)},
		{"3D-U", generators.UniformCube(benchN, 3, 6)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) seb.Ball
	}{
		{"CGALseq", func(p geom.Points) seb.Ball { return seb.WelzlSequential(p, 1, seb.Heuristics{}) }},
		{"Welzl", func(p geom.Points) seb.Ball { return seb.Welzl(p, 1, seb.Heuristics{}) }},
		{"WelzlMtf", func(p geom.Points) seb.Ball { return seb.Welzl(p, 1, seb.Heuristics{MTF: true}) }},
		{"WelzlMtfPivot", func(p geom.Points) seb.Ball { return seb.Welzl(p, 1, seb.Heuristics{MTF: true, Pivot: true}) }},
		{"Scan", seb.OrthantScan},
		{"Sampling", func(p geom.Points) seb.Ball { return seb.Sampling(p, 1) }},
	}
	for _, s := range sets {
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", s.name, a.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.f(s.pts)
				}
			})
		}
	}
}

// --- Figure 11 (BDL-tree operations) ---------------------------------------

func BenchmarkFig11(b *testing.B) {
	pts := generators.UniformCube(benchN, 7, 1)
	batch := pts.Len() / 10
	variants := []struct {
		name string
		mk   func() bdltree.Dynamic
	}{
		{"B1-object", func() bdltree.Dynamic { return bdltree.NewB1(7, bdltree.ObjectMedian) }},
		{"B2-object", func() bdltree.Dynamic { return bdltree.NewB2(7, bdltree.ObjectMedian) }},
		{"BDL-object", func() bdltree.Dynamic { return bdltree.New(7, bdltree.Options{Split: bdltree.ObjectMedian}) }},
		{"BDL-spatial", func() bdltree.Dynamic { return bdltree.New(7, bdltree.Options{Split: bdltree.SpatialMedian}) }},
	}
	for _, v := range variants {
		b.Run("construct/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := v.mk()
				tr.Insert(pts)
			}
		})
		b.Run("insert10pct/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := v.mk()
				for j := 0; j < 10; j++ {
					tr.Insert(pts.Slice(j*batch, (j+1)*batch))
				}
			}
		})
		b.Run("delete10pct/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := v.mk()
				tr.Insert(pts)
				b.StartTimer()
				for j := 0; j < 10; j++ {
					tr.Delete(pts.Slice(j*batch, (j+1)*batch))
				}
			}
		})
		b.Run("knn5/"+v.name, func(b *testing.B) {
			tr := v.mk()
			ids := tr.Insert(pts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.KNN(pts, 5, ids)
			}
		})
	}
}

// --- Figure 14 (k-NN vs k after incremental construction) ------------------

func BenchmarkFig14(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 7, 1)
	batch := pts.Len() / 20
	variants := []struct {
		name string
		mk   func() bdltree.Dynamic
	}{
		{"B1", func() bdltree.Dynamic { return bdltree.NewB1(7, bdltree.ObjectMedian) }},
		{"B2", func() bdltree.Dynamic { return bdltree.NewB2(7, bdltree.ObjectMedian) }},
		{"BDL", func() bdltree.Dynamic { return bdltree.New(7, bdltree.Options{Split: bdltree.ObjectMedian}) }},
	}
	for _, v := range variants {
		for _, k := range []int{2, 5, 11} {
			b.Run(fmt.Sprintf("%s/k=%d", v.name, k), func(b *testing.B) {
				tr := v.mk()
				var ids []int32
				for i := 0; i*batch < pts.Len(); i++ {
					hi := (i + 1) * batch
					if hi > pts.Len() {
						hi = pts.Len()
					}
					ids = append(ids, tr.Insert(pts.Slice(i*batch, hi))...)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.KNN(pts, k, ids)
				}
			})
		}
	}
}

// --- Figure 12 (reservation overhead, single-thread counters) --------------

func BenchmarkFig12ReservationQuickhull(b *testing.B) {
	pts := generators.InSphere(benchN, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull3d.Quickhull(pts)
	}
}

func BenchmarkFig12NoReservationQuickhull(b *testing.B) {
	pts := generators.InSphere(benchN, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull3d.SequentialQuickhull(pts)
	}
}

// --- ablations (design choices DESIGN.md calls out) ------------------------

// BenchmarkAblationSplitRule compares object vs spatial median build cost
// (§6.3's discussion of the construction trade-off).
func BenchmarkAblationSplitRule(b *testing.B) {
	pts := generators.UniformCube(benchN, 5, 1)
	for _, split := range []kdtree.SplitRule{kdtree.ObjectMedian, kdtree.SpatialMedian} {
		b.Run(split.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kdtree.Build(pts, kdtree.Options{Split: split})
			}
		})
	}
}

// BenchmarkAblationBufferSize sweeps the BDL-tree buffer size X.
func BenchmarkAblationBufferSize(b *testing.B) {
	pts := generators.UniformCube(benchN/2, 5, 2)
	batch := pts.Len() / 10
	for _, x := range []int{128, 512, 1024, 4096} {
		b.Run(fmt.Sprintf("X=%d", x), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := bdltree.New(5, bdltree.Options{BufferSize: x})
				for j := 0; j < 10; j++ {
					tr.Insert(pts.Slice(j*batch, (j+1)*batch))
				}
			}
		})
	}
}

// BenchmarkAblationCullThreshold sweeps the pseudohull stop threshold.
func BenchmarkAblationCullThreshold(b *testing.B) {
	pts := generators.InSphere(benchN, 3, 3)
	for _, thr := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("thr=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hull3d.PseudoWithStats(pts, thr)
			}
		})
	}
}

// BenchmarkAblationSEBSampleSegment reports sampling with different
// effective batch sizes by comparing against the plain scan.
func BenchmarkAblationSEBScanVsSampling(b *testing.B) {
	pts := generators.UniformCube(benchN, 3, 4)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seb.OrthantScan(pts)
		}
	})
	b.Run("sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seb.Sampling(pts, 1)
		}
	})
}
