package pargeo

import (
	"math"
	"testing"
)

// The facade tests double as integration tests across modules: build data
// with one module, index it with another, and verify cross-module
// consistency end-to-end.

func TestFacadeHullPipeline(t *testing.T) {
	pts := Uniform(5000, 2, 1)
	hulls := [][]int32{
		ConvexHull2D(pts, Hull2DMonotoneChain),
		ConvexHull2D(pts, Hull2DSeqQuickhull),
		ConvexHull2D(pts, Hull2DQuickhull),
		ConvexHull2D(pts, Hull2DRandInc),
		ConvexHull2D(pts, Hull2DDivideConquer),
	}
	for i := 1; i < len(hulls); i++ {
		if len(hulls[i]) != len(hulls[0]) {
			t.Fatalf("hull %d size %d != %d", i, len(hulls[i]), len(hulls[0]))
		}
	}
	p3 := InSphere(5000, 3, 2)
	f := ConvexHull3D(p3, Hull3DDivideConquer)
	ref := ConvexHull3D(p3, Hull3DSeqQuickhull)
	if len(HullVertices(f)) != len(HullVertices(ref)) {
		t.Fatalf("3D hull vertex counts differ: %d vs %d",
			len(HullVertices(f)), len(HullVertices(ref)))
	}
}

func TestFacadeSEBConsistent(t *testing.T) {
	pts := OnSphere(3000, 3, 3)
	ref := SmallestEnclosingBall(pts, SEBWelzlSeq)
	for _, alg := range []SEBAlgorithm{SEBWelzl, SEBWelzlMtf, SEBWelzlMtfPivot, SEBScan, SEBSampling} {
		b := SmallestEnclosingBall(pts, alg)
		if math.Abs(b.SqRadius-ref.SqRadius) > 1e-7*(1+ref.SqRadius) {
			t.Fatalf("alg %d radius %g vs ref %g", alg, b.SqRadius, ref.SqRadius)
		}
	}
}

func TestFacadeTreeAndGraphs(t *testing.T) {
	pts := SeedSpreader(2000, 2, 4)
	tree := BuildKDTree(pts, ObjectMedian)
	res := KNN(tree, []int32{0, 1, 2}, 3)
	if len(res) != 3 || len(res[0]) != 3 {
		t.Fatalf("KNN result shape: %v", res)
	}
	edges := EMST(pts)
	if len(edges) != 1999 {
		t.Fatalf("EMST edge count %d", len(edges))
	}
	de := DelaunayGraph(pts)
	ga := GabrielGraph(pts)
	if len(ga) >= len(de) {
		t.Fatalf("gabriel (%d) should be sparser than delaunay (%d)", len(ga), len(de))
	}
	cp := ClosestPair(pts)
	if cp.A < 0 || cp.SqDist < 0 {
		t.Fatalf("closest pair %v", cp)
	}
	// EMST's shortest edge equals the closest pair distance.
	minE := math.Inf(1)
	for _, e := range edges {
		if e.SqDist < minE {
			minE = e.SqDist
		}
	}
	if math.Abs(minE-cp.SqDist) > 1e-9*(1+cp.SqDist) {
		t.Fatalf("EMST min edge %g != closest pair %g", minE, cp.SqDist)
	}
}

func TestFacadeBDL(t *testing.T) {
	pts := Uniform(1000, 5, 5)
	for _, tr := range []DynamicTree{
		NewBDLTree(5, BDLOptions{}),
		NewB1(5, ObjectMedian),
		NewB2(5, ObjectMedian),
	} {
		ids := tr.Insert(pts)
		if tr.Size() != 1000 {
			t.Fatalf("size %d", tr.Size())
		}
		got := tr.KNN(pts.Slice(0, 5), 3, ids[:5])
		if len(got) != 5 || len(got[0]) != 3 {
			t.Fatalf("bdl knn shape %v", got)
		}
		tr.Delete(pts.Slice(0, 500))
		if tr.Size() != 500 {
			t.Fatalf("size after delete %d", tr.Size())
		}
	}
}

func TestFacadeMortonAndSpanner(t *testing.T) {
	pts := Uniform(3000, 3, 6)
	idx := MortonSort(pts)
	if len(idx) != 3000 {
		t.Fatalf("morton %d", len(idx))
	}
	sp := Spanner(Uniform(500, 2, 7), 6)
	if len(sp) < 499 {
		t.Fatalf("spanner too sparse: %d", len(sp))
	}
	bcp := BichromaticClosestPair(Uniform(200, 2, 8), Uniform(200, 2, 9))
	if bcp.A < 0 || bcp.B < 0 {
		t.Fatalf("bccp %v", bcp)
	}
}
