// Clustering: hierarchical clustering of a clustered point set via the
// EMST — the paper's motivating pipeline for the WSPD/EMST modules (§2:
// the WSPD feeds the EMST, which feeds hierarchical DBSCAN).
//
// The example builds the exact single-linkage dendrogram (EMST edges merged
// in weight order), cuts it into k clusters, and contrasts it with the
// noise-robust HDBSCAN* hierarchy over the mutual-reachability distance.
package main

import (
	"fmt"
	"math"
	"sort"

	"pargeo"
)

func main() {
	const n = 50000
	pts := pargeo.SeedSpreader(n, 2, 7)
	fmt.Printf("clustering %d seed-spreader points\n", n)

	// 1. Exact EMST via WSPD + Kruskal (parallel).
	edges := pargeo.EMST(pts)
	total := 0.0
	for _, e := range edges {
		total += math.Sqrt(e.SqDist)
	}
	fmt.Printf("EMST: %d edges, total weight %.1f\n", len(edges), total)

	// 2. Single-linkage dendrogram and a k-cluster cut.
	const k = 8
	dendro := pargeo.SingleLinkage(pts)
	labels := dendro.CutK(k)
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	var counts []int
	for _, s := range sizes {
		counts = append(counts, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	fmt.Printf("single-linkage k=%d: %d clusters, largest: %v\n",
		k, len(sizes), counts[:min(5, len(counts))])

	// 3. HDBSCAN* on a subsample (mutual reachability, minPts=8): robust
	// to thin bridges of noise between clusters.
	sub := pts.Slice(0, 5000)
	hd := pargeo.HDBSCAN(sub, 8)
	hlabels := hd.CutK(k)
	hsizes := map[int32]bool{}
	for _, l := range hlabels {
		hsizes[l] = true
	}
	fmt.Printf("HDBSCAN* (5k subsample, minPts=8) k=%d: %d clusters\n", k, len(hsizes))

	// 4. Cross-check: the shortest EMST edge is the closest pair.
	cp := pargeo.ClosestPair(pts)
	shortest := math.Inf(1)
	for _, e := range edges {
		if e.SqDist < shortest {
			shortest = e.SqDist
		}
	}
	fmt.Printf("closest pair distance %.5f == shortest EMST edge %.5f\n",
		math.Sqrt(cp.SqDist), math.Sqrt(shortest))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
