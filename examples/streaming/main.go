// Streaming: maintain k-nearest-neighbor queries over a point set that
// changes in batches, using the BDL-tree (the paper's batch-dynamic
// kd-tree). A sliding window of sensor-like readings is inserted and
// expired batch by batch while queries run between updates — the workload
// the logarithmic method is designed for, where rebuilding from scratch
// (baseline B1) would dominate and in-place insertion (baseline B2) would
// degrade query time.
package main

import (
	"fmt"
	"time"

	"pargeo"
)

func main() {
	const (
		dim       = 3
		batchSize = 20000
		window    = 5 // keep this many batches live
		rounds    = 12
	)
	bdl := pargeo.NewBDLTree(dim, pargeo.BDLOptions{})
	b1 := pargeo.NewB1(dim, pargeo.ObjectMedian)

	var batches []pargeo.Points
	var insertBDL, insertB1, queryBDL time.Duration

	for r := 0; r < rounds; r++ {
		batch := pargeo.Uniform(batchSize, dim, uint64(r)+1)
		batches = append(batches, batch)

		start := time.Now()
		bdl.Insert(batch)
		insertBDL += time.Since(start)

		start = time.Now()
		b1.Insert(batch)
		insertB1 += time.Since(start)

		// Expire the oldest batch once the window is full.
		if len(batches) > window {
			old := batches[0]
			batches = batches[1:]
			bdl.Delete(old)
			b1.Delete(old)
		}

		// Query: 5-NN of a fresh probe batch against the live window.
		probes := pargeo.Uniform(1000, dim, uint64(r)+1000)
		start = time.Now()
		res := bdl.KNN(probes, 5, nil)
		queryBDL += time.Since(start)

		fmt.Printf("round %2d: live=%6d  trees=%d  first probe -> %v\n",
			r, bdl.Size(), bdl.NumTrees(), res[0])
		if bdl.Size() != b1.Size() {
			panic("BDL and B1 disagree on live size")
		}
	}
	fmt.Printf("\ntotals over %d rounds:\n", rounds)
	fmt.Printf("  BDL inserts: %8.1fms   (amortized log-structured rebuilds)\n", insertBDL.Seconds()*1000)
	fmt.Printf("  B1  inserts: %8.1fms   (full rebuild every batch)\n", insertB1.Seconds()*1000)
	fmt.Printf("  BDL queries: %8.1fms\n", queryBDL.Seconds()*1000)
}
