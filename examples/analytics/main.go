// Analytics: time-travel reads and pinned-snapshot analytics over a
// live, durable engine — the MVCC retention surface (engine doc.go,
// "Retention and time travel") driven end to end.
//
// The scenario is a courier fleet: couriers stream position updates into
// the engine while an analytics job pins one committed version and runs
// whole-fleet jobs (k-NN dispatch graph, HDBSCAN* core distances)
// against it. The pin keeps exactly that version resolvable for the
// job's duration — the writers commit hundreds of epochs past it and
// the job never notices — and the retention window answers "how did the
// downtown district look N commits ago" without any pin at all.
//
// The example ends with a restart, because the retention surface is
// deliberately NOT durable: pins and the retained-epoch ring are serving
// state, not data. Reopening the directory recovers every acknowledged
// point — and no history: the old pin is gone and as-of reads before the
// recovered epoch fail with ErrEpochNotRetained.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"pargeo"
	"pargeo/internal/rng"
)

const (
	dim      = 2
	couriers = 20000
	moveSize = 256 // couriers moved per committed batch
	rounds   = 200 // batches the writer commits while analytics run
)

func main() {
	dir, err := os.MkdirTemp("", "pargeo-analytics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	e, err := pargeo.OpenEngine(dir, dim, pargeo.EngineOptions{
		Shards:       4,
		RetainEpochs: 64,
		Durability:   &pargeo.Durability{SyncEvery: 16},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The fleet checks in: one founding insert fixes the shard partition.
	fleet := pargeo.Uniform(couriers, dim, 11)
	if res := e.Insert(fleet); res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("fleet of %d couriers checked in at epoch %d\n", couriers, e.Epoch())

	// Couriers start moving: a writer goroutine commits small batched
	// moves (delete the old position, insert the new one, atomically)
	// for the whole rest of the example.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rng.NewXoshiro256(23)
		cur := pargeo.NewPoints(fleet.Len(), dim)
		copy(cur.Data, fleet.Data)
		hop := hopSize(fleet)
		for round := 0; round < rounds; round++ {
			// A distinct block of couriers per batch: a courier must not
			// move twice in one atomic update (its second departure
			// coordinate would not exist yet when deletions apply).
			base := round * moveSize % couriers
			from := pargeo.NewPoints(moveSize, dim)
			to := pargeo.NewPoints(moveSize, dim)
			for j := 0; j < moveSize; j++ {
				p := cur.At((base + j) % couriers)
				from.Set(j, p)
				for c := range p {
					p[c] += (r.Float64() - 0.5) * hop // a short hop
				}
				to.Set(j, p)
			}
			if res := e.Update(to, from); res.Err != nil {
				log.Fatal(res.Err)
			}
		}
	}()

	// --- the analytics job: pin one version, read it for as long as the
	// job takes, release. The writers above never block on it.
	snap := e.Pin()
	pinned := snap.Epoch()

	// Dispatch graph: every courier's 6 nearest colleagues (never
	// itself), one data-parallel pass over the pinned version.
	g := snap.KNNGraph(6)
	var sum float64
	edges := 0
	for i := range g.IDs {
		for j := 0; j < g.K; j++ {
			if d := g.SqDists[i*g.K+j]; !math.IsInf(d, 1) {
				sum += math.Sqrt(d)
				edges++
			}
		}
	}
	fmt.Printf("dispatch graph @ epoch %d: %d couriers, %d edges, mean handoff distance %.4f\n",
		pinned, len(g.IDs), edges, sum/float64(edges))

	// Density profile: HDBSCAN* core distances (distance to the 8th
	// nearest other courier) over the same consistent version.
	_, core := snap.CoreDistances(8)
	lo, hi := math.Inf(1), 0.0
	for _, c := range core {
		lo, hi = math.Min(lo, c), math.Max(hi, c)
	}
	fmt.Printf("density profile  @ epoch %d: core distance %.4f (busiest) .. %.4f (loneliest)\n",
		pinned, lo, hi)

	wg.Wait()
	live := e.Epoch()
	fmt.Printf("writers committed %d epochs past the pinned version (live epoch %d)\n",
		live-pinned, live)

	// The pin — not the retention window — is what kept the job's epoch
	// alive: the writers pushed it far out of the 64-epoch ring, yet it
	// still resolves. Time travel inside the window needs no pin.
	if s, err := e.AsOf(pinned); err != nil || s.Epoch() != pinned {
		log.Fatalf("pinned epoch must stay resolvable: %v", err)
	}
	downtown := centralDistrict(fleet)
	then, _ := e.AsOf(live - 50)
	now, _ := e.AsOf(live)
	fmt.Printf("downtown couriers: %d at epoch %d -> %d at epoch %d (as-of reads, no pin)\n",
		then.RangeCount(downtown), then.Epoch(), now.RangeCount(downtown), now.Epoch())
	snap.Release()

	// --- restart: data survives, history does not.
	st := e.Stats()
	if err := e.Close(); err != nil {
		log.Fatal(err)
	}
	e, err = pargeo.OpenEngine(dir, dim, pargeo.EngineOptions{
		Shards:       4,
		RetainEpochs: 64,
		Durability:   &pargeo.Durability{SyncEvery: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	fmt.Printf("restarted: epoch %d, %d couriers recovered (was epoch %d, %d)\n",
		e.Epoch(), e.Stats().Size, st.Epoch, st.Size)
	if _, err := e.AsOf(pinned); !errors.Is(err, pargeo.ErrEpochNotRetained) {
		log.Fatalf("pre-restart epochs must not resolve after recovery, got %v", err)
	}
	fmt.Println("as-of read of the pre-restart pinned epoch: ErrEpochNotRetained —")
	fmt.Println("pins and the retention ring are serving state, not durable state")
}

// hopSize scales courier movement to the fleet's actual extent (the
// generators do not promise a unit domain).
func hopSize(fleet pargeo.Points) float64 {
	b := bounds(fleet)
	return (b.Max[0] - b.Min[0]) * 0.01
}

// centralDistrict is the middle fifth of the fleet's bounding box in
// every dimension — the "downtown" the as-of reads watch over time.
func centralDistrict(fleet pargeo.Points) pargeo.Box {
	b := bounds(fleet)
	for c := range b.Min {
		span := b.Max[c] - b.Min[c]
		b.Min[c] += span * 0.4
		b.Max[c] -= span * 0.4
	}
	return b
}

func bounds(pts pargeo.Points) pargeo.Box {
	b := pargeo.Box{
		Min: append([]float64(nil), pts.At(0)...),
		Max: append([]float64(nil), pts.At(0)...),
	}
	for i := 1; i < pts.Len(); i++ {
		p := pts.At(i)
		for c := range p {
			b.Min[c] = math.Min(b.Min[c], p[c])
			b.Max[c] = math.Max(b.Max[c], p[c])
		}
	}
	return b
}
