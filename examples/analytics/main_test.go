package main

import "testing"

// TestSmoke builds and runs the example end to end, so `go test ./...`
// keeps it from rotting silently. Skipped in -short mode: the example uses
// a demonstration-sized workload.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in short mode")
	}
	main()
}
