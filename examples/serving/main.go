// Serving: drive the Morton-sharded concurrent spatial query engine over
// the NETWORK — the same courier-fleet workload the engine was built for,
// now crossing a real TCP connection through the wire protocol. A durable
// engine is served on a loopback listener (exactly what the pargeo-serve
// daemon does for external processes); a fleet of couriers streams
// position updates through client connections while concurrent query
// clients ask "which couriers are nearest me?" and "how many couriers are
// in this district?" through a single shared batching client — their
// concurrent calls coalesce into merged wire requests on the way out.
// Movers working different districts commit on different shards truly in
// parallel (the server runs every request in its own goroutine, so the
// engine's combiners see the same concurrency they would in-process), a
// straddling batch still publishes all-or-nothing, and every query reads
// a fully committed snapshot. At the end the service "restarts": the
// server drains in-flight requests, the engine closes and reopens from
// its directory, and a fresh client sees the whole fleet at the exact
// epoch it left off.
package main

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pargeo"
	"pargeo/client"
	"pargeo/internal/server"
)

func main() {
	const (
		dim      = 2
		couriers = 20000 // fleet size
		movers   = 4     // connections streaming position updates, one per district
		clients  = 8     // goroutines issuing queries through one shared connection
		moveB    = 1000  // couriers re-positioned per update batch
		rounds   = 10    // update batches per mover
	)

	// The engine is durable and rebalancing, as in embedded use: every
	// commit is written ahead to the segmented log (SyncEvery=64 acks
	// immediately, fsyncs every 64 commits — prefix durability, right for
	// a fleet tracker), and the background rebalancer keeps the shard
	// partition tracking the fleet when the expansion mover (below)
	// relocates couriers beyond the founding city limits.
	dir, err := os.MkdirTemp("", "pargeo-serving-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	opts := pargeo.EngineOptions{
		Shards: movers, Rebalance: true,
		Durability: &pargeo.Durability{SyncEvery: 64},
	}
	e, err := pargeo.OpenEngine(dir, dim, opts)
	if err != nil {
		panic(err)
	}

	// Serve it. cmd/pargeo-serve wraps exactly this pair — engine plus
	// wire-protocol server — behind flags and signal handling; here the
	// server runs in-process on a loopback listener so the example is one
	// binary, but every request below genuinely crosses TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := server.New(e, dim, ln)
	go srv.Serve() //nolint:errcheck // exits nil on Shutdown
	addr := ln.Addr().String()

	dial := func() *client.Client {
		c, err := client.Dial(addr)
		if err != nil {
			panic(err)
		}
		return c
	}

	// Seed the fleet through the wire. The founding insertion fixes the
	// initial shard boundaries: Morton quantiles of a uniform city are
	// close to its quadrants, so each mover's district below lives mostly
	// in its own shard and the movers' commit streams rarely contend.
	seedConn := dial()
	fleet := pargeo.Uniform(couriers, dim, 1)
	res := seedConn.Insert(fleet)
	if res.Err != nil {
		panic(res.Err)
	}
	city := pargeo.BoundingBox(fleet)
	fmt.Printf("fleet of %d couriers live at epoch %d, served on %s (dim=%d, %d shards)\n",
		e.Size(), res.Epoch, addr, seedConn.Dim(), seedConn.Shards())

	var queries, updates atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()

	// Each mover owns one quadrant district and its own connection (a
	// real fleet's regional feeder would be its own process): it
	// repeatedly picks a block of its district's couriers and moves them
	// to fresh positions inside the district — old positions out, new
	// positions in, one atomic commit per wire request.
	midX := (city.Min[0] + city.Max[0]) / 2
	midY := (city.Min[1] + city.Max[1]) / 2
	district := func(m int) pargeo.Box {
		b := pargeo.Box{Min: append([]float64(nil), city.Min...), Max: append([]float64(nil), city.Max...)}
		if m%2 == 0 {
			b.Max[0] = midX
		} else {
			b.Min[0] = midX
		}
		if m/2 == 0 {
			b.Max[1] = midY
		} else {
			b.Min[1] = midY
		}
		return b
	}
	for m := 0; m < movers; m++ {
		m := m
		c := dial()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			d := district(m)
			w := []float64{d.Max[0] - d.Min[0], d.Max[1] - d.Min[1]}
			// The mover's block of the original fleet goes out with its
			// first commit and comes back with its last, so the fleet size
			// is unchanged once the run settles.
			home := fleet.Slice(m*moveB, (m+1)*moveB)
			cur := home
			for r := 0; r < rounds; r++ {
				// Uniform's extent depends on its n; rescale by the batch's
				// own bounding box so positions cover the whole district.
				moved := pargeo.Uniform(moveB, dim, uint64(m*rounds+r)+100)
				mb := pargeo.BoundingBox(moved)
				for i := 0; i < moved.Len(); i++ {
					p := moved.At(i)
					p[0] = d.Min[0] + (p[0]-mb.Min[0])/(mb.Max[0]-mb.Min[0])*w[0]
					p[1] = d.Min[1] + (p[1]-mb.Min[1])/(mb.Max[1]-mb.Min[1])*w[1]
				}
				if res := c.Update(moved, cur); res.Err != nil { // block out, block in, one commit
					panic(res.Err)
				}
				cur = moved
				updates.Add(1)
			}
			if res := c.Update(home, cur); res.Err != nil {
				panic(res.Err)
			}
			updates.Add(1)
		}()
	}

	// The expansion mover: the city grows. One block of couriers is
	// progressively relocated into a brand-new district east of the
	// founding city limits — outside the world box the partition was
	// founded on. Without rebalancing every one of these updates would
	// clamp into a boundary Morton cell and pile onto one edge shard; the
	// background rebalancer instead repartitions under a widened world the
	// moment the drift counter trips, and the new district gets shard
	// capacity of its own. The block comes home with the final commit.
	expConn := dial()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer expConn.Close()
		width := city.Max[0] - city.Min[0]
		home := fleet.Slice(movers*moveB, (movers+1)*moveB)
		cur := home
		for r := 0; r < rounds; r++ {
			moved := pargeo.Uniform(moveB, dim, uint64(1000+r))
			mb := pargeo.BoundingBox(moved)
			for i := 0; i < moved.Len(); i++ {
				p := moved.At(i)
				// East of the city: x beyond the founding maximum.
				p[0] = city.Max[0] + width/4 + (p[0]-mb.Min[0])/(mb.Max[0]-mb.Min[0])*width/2
				p[1] = city.Min[1] + (p[1]-mb.Min[1])/(mb.Max[1]-mb.Min[1])*(city.Max[1]-city.Min[1])
			}
			if res := expConn.Update(moved, cur); res.Err != nil {
				panic(res.Err)
			}
			cur = moved
			updates.Add(1)
		}
		if res := expConn.Update(home, cur); res.Err != nil {
			panic(res.Err)
		}
		updates.Add(1)
	}()

	// The query clients SHARE one connection: its batching combiner
	// merges their concurrent k-NN calls into multi-query wire requests
	// (the round trip is the combining window), so eight goroutines cost
	// the server far fewer than eight requests per beat.
	queryConn := dial()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := pargeo.Uniform(64, dim, uint64(c)+500)
			for i := 0; !stop.Load(); i = (i + 1) % probes.Len() {
				q := probes.At(i)
				// Nearest 3 couriers to this client.
				near, err := queryConn.KNN(q, 3)
				if err != nil {
					panic(err)
				}
				// District load: couriers within a 10x10 box, answered on
				// the same engine concurrently with the k-NN traffic.
				load := pargeo.Box{
					Min: []float64{q[0] - 5, q[1] - 5},
					Max: []float64{q[0] + 5, q[1] + 5},
				}
				n, err := queryConn.RangeCount(load)
				if err != nil {
					panic(err)
				}
				if len(near) != 3 || n < 0 {
					panic("serving: impossible answer")
				}
				queries.Add(2)
			}
		}()
	}

	// Movers run a fixed workload; clients stream until the fleet settles.
	go func() {
		for updates.Load() < int64((movers+1)*(rounds+1)) {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	elapsed := time.Since(start)

	st, err := queryConn.Stats()
	if err != nil {
		panic(err)
	}
	fmt.Printf("final epoch %d, fleet size %d, %d partition migrations while serving\n",
		st["epoch"], st["size"], st["rebalances"])
	fmt.Printf("%d client queries and %d update batches in %v (%.0f queries/s)\n",
		queries.Load(), updates.Load(), elapsed.Round(time.Millisecond),
		float64(queries.Load())/elapsed.Seconds())
	fmt.Printf("served over %d wire requests (%d engine queries coalesced into %d passes)\n",
		st["requests"], st["queries"], st["query_groups"])
	if st["size"] != couriers {
		panic("serving: fleet size drifted")
	}

	// Restart: checkpoint through the wire (recovery then loads a
	// snapshot instead of replaying the whole run's log), remember one
	// answer, and take the service down the way the daemon does on
	// SIGTERM — drain in-flight requests, then close the engine, which
	// fsyncs the log tail so nothing acknowledged is lost even in relaxed
	// SyncEvery mode.
	if _, err := queryConn.Checkpoint(); err != nil {
		panic(err)
	}
	probe := fleet.At(0)
	before, err := queryConn.KNN(probe, 3)
	if err != nil {
		panic(err)
	}
	seedConn.Close()
	queryConn.Close()
	srv.Shutdown()
	if err := e.Close(); err != nil {
		panic(err)
	}
	// Close stopped the rebalancer, so the epoch is final now.
	finalEpoch := e.Epoch()

	// Reopen the directory and serve it again: same state, same epoch,
	// same answers, through a brand-new connection.
	re, err := pargeo.OpenEngine(dir, dim, opts)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv2 := server.New(re, dim, ln2)
	go srv2.Serve() //nolint:errcheck // exits nil on Shutdown
	defer srv2.Shutdown()
	c2, err := client.Dial(ln2.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c2.Close()
	ep, err := c2.Epoch()
	if err != nil {
		panic(err)
	}
	fmt.Printf("restarted from %s: epoch %d, fleet size %d\n", dir, ep, re.Size())
	if ep != finalEpoch || re.Size() != couriers {
		panic("serving: restart lost state")
	}
	after, err := c2.KNN(probe, 3)
	if err != nil {
		panic(err)
	}
	for i := range before {
		if before[i] != after[i] {
			panic("serving: restart changed an answer")
		}
	}
}
