// Serving: drive the Morton-sharded concurrent spatial query engine from
// many client goroutines at once — the workload the BDL-tree's
// batch-dynamic design targets. A fleet of couriers streams position
// updates while concurrent clients ask "which couriers are nearest me?"
// and "how many couriers are in this district?". The engine partitions the
// city into Morton-range shards (one BDL-tree each): movers working
// different districts commit on different shards truly in parallel, a
// mover whose batch straddles districts still publishes it all-or-nothing
// (two-phase shard publish), every query reads a fully committed snapshot
// with no locks, and concurrent queries group into shared data-parallel
// passes fanned out over the shards. The engine serves durably: every
// commit is written ahead to a segmented log, and at the end the process
// "restarts" — the engine is closed and reopened from its directory,
// recovering the whole fleet at the exact epoch it left off.
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pargeo"
)

func main() {
	const (
		dim      = 2
		couriers = 20000 // fleet size
		movers   = 4     // goroutines streaming position updates, one per district
		clients  = 8     // goroutines issuing queries
		moveB    = 1000  // couriers re-positioned per update batch
		rounds   = 10    // update batches per mover
	)

	// Rebalance keeps the shard partition tracking the fleet: when the
	// expansion mover (below) relocates couriers beyond the founding city
	// limits, the rebalancer rebuilds the partition under a widened world
	// instead of letting the new district alias into a boundary shard.
	//
	// The engine is durable: OpenEngine roots it at a directory, every
	// commit below is written ahead to a segmented log before it becomes
	// visible, and SyncEvery=64 acks updates immediately while fsyncing
	// every 64 commits (prefix durability — right for a fleet tracker,
	// where a crash costs at most a moment of the freshest positions).
	dir, err := os.MkdirTemp("", "pargeo-serving-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	opts := pargeo.EngineOptions{
		Shards: movers, Rebalance: true,
		Durability: &pargeo.Durability{SyncEvery: 64},
	}
	e, err := pargeo.OpenEngine(dir, dim, opts)
	if err != nil {
		panic(err)
	}
	defer e.Close()

	// Seed the fleet uniformly over the city. This founding insertion also
	// fixes the initial shard boundaries: Morton quantiles of a uniform
	// city are close to its quadrants, so each mover's district below
	// lives mostly in its own shard and the movers' commit streams rarely
	// contend.
	fleet := pargeo.Uniform(couriers, dim, 1)
	res := e.Insert(fleet)
	city := pargeo.BoundingBox(fleet)
	fmt.Printf("fleet of %d couriers live at epoch %d, %d shards %v\n",
		e.Size(), res.Epoch, e.Snapshot().Shards(), e.Snapshot().ShardSizes())

	var queries, updates atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()

	// Each mover owns one quadrant district: it repeatedly picks a block of
	// its district's couriers and moves them to fresh positions inside the
	// district — old positions out, new positions in, one atomic commit.
	midX := (city.Min[0] + city.Max[0]) / 2
	midY := (city.Min[1] + city.Max[1]) / 2
	district := func(m int) pargeo.Box {
		b := pargeo.Box{Min: append([]float64(nil), city.Min...), Max: append([]float64(nil), city.Max...)}
		if m%2 == 0 {
			b.Max[0] = midX
		} else {
			b.Min[0] = midX
		}
		if m/2 == 0 {
			b.Max[1] = midY
		} else {
			b.Min[1] = midY
		}
		return b
	}
	for m := 0; m < movers; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := district(m)
			w := []float64{d.Max[0] - d.Min[0], d.Max[1] - d.Min[1]}
			// The mover's block of the original fleet goes out with its
			// first commit and comes back with its last, so the fleet size
			// is unchanged once the run settles.
			home := fleet.Slice(m*moveB, (m+1)*moveB)
			cur := home
			for r := 0; r < rounds; r++ {
				// Uniform's extent depends on its n; rescale by the batch's
				// own bounding box so positions cover the whole district.
				moved := pargeo.Uniform(moveB, dim, uint64(m*rounds+r)+100)
				mb := pargeo.BoundingBox(moved)
				for i := 0; i < moved.Len(); i++ {
					p := moved.At(i)
					p[0] = d.Min[0] + (p[0]-mb.Min[0])/(mb.Max[0]-mb.Min[0])*w[0]
					p[1] = d.Min[1] + (p[1]-mb.Min[1])/(mb.Max[1]-mb.Min[1])*w[1]
				}
				e.Update(moved, cur) // previous block out, new block in, one commit
				cur = moved
				updates.Add(1)
			}
			e.Update(home, cur)
			updates.Add(1)
		}()
	}

	// The expansion mover: the city grows. One block of couriers is
	// progressively relocated into a brand-new district east of the
	// founding city limits — outside the world box the partition was
	// founded on. Without rebalancing every one of these updates would
	// clamp into a boundary Morton cell and pile onto one edge shard; the
	// background rebalancer instead repartitions under a widened world the
	// moment the drift counter trips, and the new district gets shard
	// capacity of its own. The block comes home with the final commit, so
	// the fleet ends where it started.
	wg.Add(1)
	go func() {
		defer wg.Done()
		width := city.Max[0] - city.Min[0]
		home := fleet.Slice(movers*moveB, (movers+1)*moveB)
		cur := home
		for r := 0; r < rounds; r++ {
			moved := pargeo.Uniform(moveB, dim, uint64(1000+r))
			mb := pargeo.BoundingBox(moved)
			for i := 0; i < moved.Len(); i++ {
				p := moved.At(i)
				// East of the city: x beyond the founding maximum.
				p[0] = city.Max[0] + width/4 + (p[0]-mb.Min[0])/(mb.Max[0]-mb.Min[0])*width/2
				p[1] = city.Min[1] + (p[1]-mb.Min[1])/(mb.Max[1]-mb.Min[1])*(city.Max[1]-city.Min[1])
			}
			e.Update(moved, cur)
			cur = moved
			updates.Add(1)
		}
		e.Update(home, cur)
		updates.Add(1)
	}()

	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := pargeo.Uniform(64, dim, uint64(c)+500)
			for i := 0; !stop.Load(); i = (i + 1) % probes.Len() {
				q := probes.At(i)
				// Nearest 3 couriers to this client.
				near := e.KNN(q, 3)
				// District load: couriers within a 10x10 box, answered on
				// the same engine concurrently with the k-NN traffic. The
				// box usually overlaps one shard; the engine prunes the
				// rest by Morton-range intersection.
				load := pargeo.Box{
					Min: []float64{q[0] - 5, q[1] - 5},
					Max: []float64{q[0] + 5, q[1] + 5},
				}
				n := e.RangeCount(load)
				if len(near) != 3 || n < 0 {
					panic("serving: impossible answer")
				}
				queries.Add(2)
			}
		}()
	}

	// Movers run a fixed workload; clients stream until the fleet settles.
	go func() {
		for updates.Load() < int64((movers+1)*(rounds+1)) {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	elapsed := time.Since(start)

	// A snapshot is a stable view: multiple queries against it agree with
	// each other even while the engine keeps moving underneath.
	snap := e.Snapshot()
	everything := pargeo.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	fmt.Printf("final epoch %d, fleet size %d (snapshot count %d), shard sizes %v\n",
		snap.Epoch(), snap.Size(), snap.RangeCount(everything), snap.ShardSizes())
	fmt.Printf("partition migrations while serving (city expansion): %d\n", e.Rebalances())
	fmt.Printf("%d queries and %d update batches in %v (%.0f queries/s)\n",
		queries.Load(), updates.Load(), elapsed.Round(time.Millisecond),
		float64(queries.Load())/elapsed.Seconds())
	if snap.Size() != couriers {
		panic("serving: fleet size drifted")
	}

	// Restart: checkpoint (so recovery loads a snapshot instead of
	// replaying the whole serving run's log), shut down cleanly — Close
	// drains in-flight commits and fsyncs the log tail, so nothing
	// acknowledged is lost even in relaxed SyncEvery mode — and reopen
	// from the directory. The recovered engine resumes at the same epoch
	// with the same fleet, and a query answers identically.
	if err := e.Checkpoint(); err != nil {
		panic(err)
	}
	probe := fleet.At(0)
	before := e.KNN(probe, 3)
	if err := e.Close(); err != nil {
		panic(err)
	}
	// Close stopped the rebalancer, so the epoch is final now (the snap
	// read above may predate a last background migration's note record).
	finalEpoch := e.Epoch()
	re, err := pargeo.OpenEngine(dir, dim, opts)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("restarted from %s: epoch %d, fleet size %d\n", dir, re.Epoch(), re.Size())
	if re.Epoch() != finalEpoch || re.Size() != couriers {
		panic("serving: restart lost state")
	}
	after := re.KNN(probe, 3)
	for i := range before {
		if before[i] != after[i] {
			panic("serving: restart changed an answer")
		}
	}
}
