// Serving: drive the concurrent spatial query engine from many client
// goroutines at once — the workload the BDL-tree's batch-dynamic design
// targets. A fleet of couriers streams position updates while concurrent
// clients ask "which couriers are nearest me?" and "how many couriers are
// in this district?". The engine gives every query a fully committed
// snapshot (no locks on the read path), coalesces concurrent updates into
// BDL-tree batches, and groups concurrent queries into shared data-parallel
// passes.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pargeo"
)

func main() {
	const (
		dim      = 2
		couriers = 20000 // fleet size
		movers   = 2     // goroutines streaming position updates
		clients  = 8     // goroutines issuing queries
		moveB    = 1000  // couriers re-positioned per update batch
		rounds   = 20    // update batches per mover
	)

	e := pargeo.NewEngine(dim, pargeo.EngineOptions{})

	// Seed the fleet. Each mover owns a disjoint slice of couriers so its
	// delete+insert batches never collide with another mover's.
	fleet := pargeo.Uniform(couriers, dim, 1)
	res := e.Insert(fleet)
	fmt.Printf("fleet of %d couriers live at epoch %d\n", e.Size(), res.Epoch)

	var queries, updates atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()

	for m := 0; m < movers; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := m * (couriers / movers)
			for r := 0; r < rounds; r++ {
				// Old positions out, new positions in — one atomic commit.
				off := lo + (r*moveB)%(couriers/movers-moveB)
				old := fleet.Slice(off, off+moveB)
				moved := pargeo.Uniform(moveB, dim, uint64(m*rounds+r)+100)
				e.Update(moved, old)
				// Keep the local record current for the next round.
				copy(old.Data, moved.Data)
				updates.Add(1)
			}
		}()
	}

	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := pargeo.Uniform(64, dim, uint64(c)+500)
			for i := 0; !stop.Load(); i = (i + 1) % probes.Len() {
				q := probes.At(i)
				// Nearest 3 couriers to this client.
				near := e.KNN(q, 3)
				// District load: couriers within a 10x10 box, answered on
				// the same engine concurrently with the k-NN traffic.
				district := pargeo.Box{
					Min: []float64{q[0] - 5, q[1] - 5},
					Max: []float64{q[0] + 5, q[1] + 5},
				}
				n := e.RangeCount(district)
				if len(near) != 3 || n < 0 {
					panic("serving: impossible answer")
				}
				queries.Add(2)
			}
		}()
	}

	// Movers run a fixed workload; clients stream until the fleet settles.
	go func() {
		for updates.Load() < int64(movers*rounds) {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	elapsed := time.Since(start)

	// A snapshot is a stable view: multiple queries against it agree with
	// each other even while the engine keeps moving underneath.
	snap := e.Snapshot()
	everything := pargeo.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	fmt.Printf("final epoch %d, fleet size %d (snapshot count %d)\n",
		snap.Epoch(), snap.Size(), snap.RangeCount(everything))
	fmt.Printf("%d queries and %d update batches in %v (%.0f queries/s)\n",
		queries.Load(), updates.Load(), elapsed.Round(time.Millisecond),
		float64(queries.Load())/elapsed.Seconds())
	if snap.Size() != couriers {
		panic("serving: fleet size drifted")
	}
}
