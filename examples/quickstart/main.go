// Quickstart: generate points, build a kd-tree, run k-NN and range
// queries, and compute a convex hull and smallest enclosing ball — the
// five-minute tour of the library's public API.
package main

import (
	"fmt"
	"math"

	"pargeo"
)

func main() {
	// 1. Generate 100k uniform points in the plane (side length sqrt(n),
	// as in the paper's benchmarks).
	const n = 100000
	pts := pargeo.Uniform(n, 2, 42)
	fmt.Printf("generated %d points in %dD\n", pts.Len(), pts.Dim)

	// 2. Build a parallel kd-tree and find each of the first five points'
	// three nearest neighbors.
	tree := pargeo.BuildKDTree(pts, pargeo.ObjectMedian)
	neighbors := pargeo.KNN(tree, []int32{0, 1, 2, 3, 4}, 3)
	for i, nbrs := range neighbors {
		fmt.Printf("point %d -> nearest neighbors %v\n", i, nbrs)
	}

	// 3. Range search: count points in a box around the first point.
	c := pts.At(0)
	box := pargeo.Box{
		Min: []float64{c[0] - 5, c[1] - 5},
		Max: []float64{c[0] + 5, c[1] + 5},
	}
	inBox := pargeo.RangeSearch(tree, box)
	fmt.Printf("points within +/-5 of point 0: %d\n", len(inBox))

	// 4. Convex hull with the paper's fastest algorithm.
	hull := pargeo.ConvexHull2D(pts, pargeo.Hull2DDivideConquer)
	fmt.Printf("convex hull has %d vertices\n", len(hull))

	// 5. Smallest enclosing ball with the paper's sampling algorithm.
	ball := pargeo.SmallestEnclosingBall(pts, pargeo.SEBSampling)
	fmt.Printf("smallest enclosing ball: center=(%.1f, %.1f) radius=%.2f\n",
		ball.Center[0], ball.Center[1], math.Sqrt(ball.SqRadius))

	// 6. Closest pair.
	cp := pargeo.ClosestPair(pts)
	fmt.Printf("closest pair: %d-%d at distance %.4f\n", cp.A, cp.B, math.Sqrt(cp.SqDist))
}
