// Meshsurface: the paper's 3D-scan workload — compute convex hulls and
// bounding balls of scanned-surface point clouds (here the synthetic
// Thai-statue/Dragon surrogates), comparing the hull algorithms' behavior
// on surface data vs volume data, including the pseudohull culling
// heuristic's pruning power (§6.1).
package main

import (
	"fmt"
	"math"
	"time"

	"pargeo"
)

func main() {
	const n = 200000
	cases := []struct {
		name string
		pts  pargeo.Points
	}{
		{"statue surface (scan surrogate)", pargeo.Statue(n, 8)},
		{"uniform volume", pargeo.Uniform(n, 3, 9)},
		{"sphere shell", pargeo.OnSphere(n, 3, 10)},
	}
	algs := []struct {
		name string
		alg  pargeo.Hull3DAlgorithm
	}{
		{"sequential quickhull", pargeo.Hull3DSeqQuickhull},
		{"parallel quickhull  ", pargeo.Hull3DQuickhull},
		{"pseudohull culling  ", pargeo.Hull3DPseudo},
		{"divide and conquer  ", pargeo.Hull3DDivideConquer},
	}
	for _, c := range cases {
		fmt.Printf("\n=== %s (n=%d) ===\n", c.name, c.pts.Len())
		var vertices int
		for _, a := range algs {
			start := time.Now()
			facets := pargeo.ConvexHull3D(c.pts, a.alg)
			el := time.Since(start)
			vertices = len(pargeo.HullVertices(facets))
			fmt.Printf("  %s  %7.1fms  facets=%5d\n", a.name, el.Seconds()*1000, len(facets))
		}
		ball := pargeo.SmallestEnclosingBall(c.pts, pargeo.SEBSampling)
		fmt.Printf("  hull vertices=%d (%.3f%% of input); bounding radius %.1f\n",
			vertices, 100*float64(vertices)/float64(c.pts.Len()), math.Sqrt(ball.SqRadius))
	}
	fmt.Println("\nSurface scans have far smaller hulls than shell data, which is")
	fmt.Println("why pseudohull culling pays off on them (§6.1).")
}
