// Package pargeo is a multicore library for parallel computational
// geometry: a from-scratch Go reproduction of "ParGeo: A Library for
// Parallel Computational Geometry" (Wang, Yesantharao, Yu, Dhulipala, Gu,
// Shun; PPoPP 2022).
//
// The library mirrors ParGeo's four modules (Figure 1 of the paper):
//
//   - Static and batch-dynamic kd-trees: parallel construction with object
//     or spatial median splits, exact k-nearest-neighbor search, range
//     search, and the BDL-tree — a parallel batch-dynamic kd-tree built
//     from a logarithmic set of static trees in van Emde Boas layout.
//   - Computational geometry: convex hull in R² and R³ (including the
//     paper's reservation-based parallel incremental algorithms), smallest
//     enclosing ball (parallel Welzl, orthant scan, and the sampling
//     algorithm), well-separated pair decomposition, closest pair,
//     bichromatic closest pair, and Morton sorting.
//   - Spatial graph generators: k-NN graph, Delaunay graph, Gabriel graph,
//     β-skeleton, Euclidean minimum spanning tree, and WSPD t-spanners.
//   - Data generators: uniform, in-sphere, on-sphere, on-cube, clustered
//     seed-spreader and visual-variability distributions, plus synthetic
//     3D-scan surrogates.
//
// Points are stored in the flat structure-of-arrays Points buffer; all
// algorithms address points by index and parallelize through the
// work-stealing fork-join scheduler in internal/parlay, which honors
// GOMAXPROCS and degrades to sequential execution on one processor.
//
// Beyond the paper's modules, the library serves its trees: Engine is a
// concurrent, shardable, optionally durable spatial query service with
// snapshot isolation, MVCC retention (time-travel reads, pinned-snapshot
// analytics), and a network layer (cmd/pargeo-serve and the client
// package). docs/ARCHITECTURE.md at the repository root is the map of
// how those layers stack and the invariants that hold them together.
package pargeo

import (
	"pargeo/internal/bdltree"
	"pargeo/internal/closestpair"
	"pargeo/internal/delaunay"
	"pargeo/internal/emst"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/graphgen"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/seb"
	"pargeo/internal/wspd"
)

// Points is a flat structure-of-arrays buffer of n points in R^d.
type Points = geom.Points

// NewPoints allocates storage for n d-dimensional points.
func NewPoints(n, dim int) Points { return geom.NewPoints(n, dim) }

// Box is an axis-aligned box in R^d.
type Box = geom.Box

// --- data generators (Module 4) -----------------------------------------

// Uniform generates n points uniformly in a hypercube of side sqrt(n).
func Uniform(n, dim int, seed uint64) Points { return generators.UniformCube(n, dim, seed) }

// InSphere generates n points uniformly in a ball of radius sqrt(n)/2.
func InSphere(n, dim int, seed uint64) Points { return generators.InSphere(n, dim, seed) }

// OnSphere generates n points on a sphere shell of relative thickness 0.1.
func OnSphere(n, dim int, seed uint64) Points { return generators.OnSphere(n, dim, seed) }

// OnCube generates n points on a hypercube surface shell.
func OnCube(n, dim int, seed uint64) Points { return generators.OnCube(n, dim, seed) }

// SeedSpreader generates clustered points of varying density.
func SeedSpreader(n, dim int, seed uint64) Points { return generators.SeedSpreader(n, dim, seed) }

// VisualVar generates the 2D variable-density clustered distribution.
func VisualVar(n int, seed uint64) Points { return generators.VisualVar(n, seed) }

// Statue generates the synthetic 3D-scan surrogate for the Thai statue.
func Statue(n int, seed uint64) Points { return generators.Statue(n, seed) }

// Dragon generates the synthetic 3D-scan surrogate for the Dragon.
func Dragon(n int, seed uint64) Points { return generators.Dragon(n, seed) }

// --- kd-tree (Module 1) ---------------------------------------------------

// KDTree is a static parallel kd-tree.
type KDTree = kdtree.Tree

// SplitRule selects the kd-tree splitting heuristic.
type SplitRule = kdtree.SplitRule

// Split rules.
const (
	ObjectMedian  = kdtree.ObjectMedian
	SpatialMedian = kdtree.SpatialMedian
)

// BuildKDTree constructs a kd-tree over pts in parallel.
func BuildKDTree(pts Points, split SplitRule) *KDTree {
	return kdtree.Build(pts, kdtree.Options{Split: split})
}

// KNN returns the k nearest neighbors of each query point index,
// data-parallel.
func KNN(t *KDTree, queries []int32, k int) [][]int32 { return t.KNN(queries, k) }

// RangeSearch returns all point indices inside the box.
func RangeSearch(t *KDTree, box Box) []int32 { return t.RangeSearch(box) }

// --- BDL-tree (batch-dynamic kd-tree, §5) ---------------------------------

// BDLTree is the parallel batch-dynamic kd-tree.
type BDLTree = bdltree.Tree

// BDLOptions configure a BDL-tree.
type BDLOptions = bdltree.Options

// NewBDLTree returns an empty BDL-tree for dim-dimensional points.
func NewBDLTree(dim int, opts BDLOptions) *BDLTree { return bdltree.New(dim, opts) }

// DynamicTree is the common batch-dynamic interface implemented by the
// BDL-tree and the B1/B2 baselines.
type DynamicTree = bdltree.Dynamic

// NewB1 returns the rebuild-on-every-update baseline.
func NewB1(dim int, split SplitRule) DynamicTree { return bdltree.NewB1(dim, split) }

// NewB2 returns the insert-in-place / tombstone baseline.
func NewB2(dim int, split SplitRule) DynamicTree { return bdltree.NewB2(dim, split) }

// --- concurrent query engine (serving path) --------------------------------

// Engine is a concurrent spatial query service over Morton-sharded
// BDL-trees: any number of goroutines may issue KNN / RangeSearch /
// RangeCount queries and batched updates concurrently. Queries always
// observe a fully committed snapshot (epoch/pointer-swap protocol),
// concurrent small updates coalesce per shard — disjoint-shard batches
// commit truly in parallel, multi-shard batches publish all-or-nothing via
// a two-phase swap — and bursts of concurrent queries are grouped into
// single data-parallel passes that fan out over the shards. With
// EngineOptions.Rebalance the shard partition additionally tracks the
// live load online (hot-shard splits, cold merges, drift-triggered
// repartitions under a widened world). See internal/engine for the
// protocol.
type Engine = engine.Engine

// EngineOptions configure an Engine. Set Shards (e.g. to AutoShards) to
// partition space into independent Morton-range shards whose updates
// commit in parallel; zero runs unsharded. Set Rebalance to keep the
// partition tracking the live load online: a background goroutine splits
// write-hot shards at the weighted median code of their recent writes,
// merges cold neighbors, and rebuilds the partition under a widened world
// box when inserts drift beyond the founding extent — all published
// atomically, so queries never see a torn migration. Call Engine.Close to
// stop the background rebalancer.
type EngineOptions = engine.Options

// RebalanceAction reports what an Engine.Rebalance pass did (see
// RebalanceNone, RebalanceSplitMerge, RebalanceRepartition).
type RebalanceAction = engine.RebalanceAction

// Rebalance pass outcomes.
const (
	RebalanceNone        = engine.RebalanceNone
	RebalanceSplitMerge  = engine.RebalanceSplitMerge
	RebalanceRepartition = engine.RebalanceRepartition
)

// AutoShards, as EngineOptions.Shards, selects one shard per GOMAXPROCS
// worker at engine creation.
const AutoShards = engine.AutoShards

// EngineSnapshot is an immutable committed version of an Engine's point
// set; query it directly for multi-query consistency. With
// EngineOptions.RetainEpochs set, Engine.AsOf returns the snapshot of any
// recent epoch (time travel), and Engine.Pin / EngineSnapshot.Release
// bracket long-running analytics — KNNGraph, CoreDistances, AllKNN — over
// one consistent version while live writers keep committing.
type EngineSnapshot = engine.Snapshot

// UpdateResult reports a committed Engine update. Check Err on durable
// engines: it is ErrEngineClosed for updates submitted after Close, or a
// write-ahead-log error when durability could not be guaranteed.
type UpdateResult = engine.UpdateResult

// Durability configures an Engine's write-ahead log and checkpointing
// (EngineOptions.Durability): committed batches are appended to a
// segmented CRC-framed WAL before they are published, checkpoints
// capture the full state and truncate dead log segments, and OpenEngine
// recovers everything acknowledged before a crash. SyncEvery=1 (the
// default) acknowledges only after fsync; SyncEvery=K>1 trades the last
// ≤K-1 batches on power loss for commit throughput.
type Durability = engine.Durability

// ErrEngineClosed is reported (via UpdateResult.Err) for updates
// submitted to a durable Engine after Close.
var ErrEngineClosed = engine.ErrClosed

// ErrEpochNotRetained is the errors.Is target for Engine.AsOf and
// Engine.PinEpoch calls naming an epoch outside the retention window
// (EngineOptions.RetainEpochs) that is not pinned either.
var ErrEpochNotRetained = engine.ErrEpochNotRetained

// NewEngine returns a concurrent query engine serving dim-dimensional
// points, starting from an empty epoch-0 snapshot.
func NewEngine(dim int, opts EngineOptions) *Engine { return engine.New(dim, opts) }

// OpenEngine opens a durable engine rooted at dir: it recovers the
// state a previous process made durable there (latest valid checkpoint
// plus write-ahead-log replay, discarding any torn tail), then serves
// and logs new updates. A fresh directory starts empty. Close the
// engine to flush and release the log; opts.Durability, if non-nil,
// supplies tuning (its Dir is overridden by dir).
func OpenEngine(dir string, dim int, opts EngineOptions) (*Engine, error) {
	d := Durability{}
	if opts.Durability != nil {
		d = *opts.Durability
	}
	d.Dir = dir
	opts.Durability = &d
	return engine.Open(dim, opts)
}

// --- convex hull (§3) -----------------------------------------------------

// Hull2DAlgorithm selects a 2D convex hull implementation.
type Hull2DAlgorithm int

// 2D hull algorithms (§6.1's comparison set).
const (
	Hull2DMonotoneChain Hull2DAlgorithm = iota // sequential baseline
	Hull2DSeqQuickhull                         // sequential quickhull baseline
	Hull2DQuickhull                            // parallel recursive quickhull
	Hull2DRandInc                              // reservation-based randomized incremental
	Hull2DDivideConquer                        // block divide-and-conquer (fastest)
)

// ConvexHull2D returns the hull vertex indices in counterclockwise order.
func ConvexHull2D(pts Points, alg Hull2DAlgorithm) []int32 {
	switch alg {
	case Hull2DMonotoneChain:
		return hull2d.MonotoneChain(pts)
	case Hull2DSeqQuickhull:
		return hull2d.SequentialQuickhull(pts)
	case Hull2DQuickhull:
		return hull2d.Quickhull(pts)
	case Hull2DRandInc:
		return hull2d.RandInc(pts, 1)
	default:
		return hull2d.DivideConquer(pts)
	}
}

// Hull3DAlgorithm selects a 3D convex hull implementation.
type Hull3DAlgorithm int

// 3D hull algorithms (§6.1's comparison set).
const (
	Hull3DSeqQuickhull  Hull3DAlgorithm = iota // sequential quickhull baseline
	Hull3DSeqRandInc                           // sequential incremental baseline
	Hull3DQuickhull                            // reservation-based parallel quickhull
	Hull3DRandInc                              // reservation-based randomized incremental
	Hull3DPseudo                               // pseudohull culling + parallel quickhull
	Hull3DDivideConquer                        // block divide-and-conquer
)

// ConvexHull3D returns the hull facets as CCW vertex triples (nil for
// degenerate inputs with no 3D hull).
func ConvexHull3D(pts Points, alg Hull3DAlgorithm) [][3]int32 {
	switch alg {
	case Hull3DSeqQuickhull:
		return hull3d.SequentialQuickhull(pts)
	case Hull3DSeqRandInc:
		return hull3d.SequentialRandInc(pts, 1)
	case Hull3DQuickhull:
		return hull3d.Quickhull(pts)
	case Hull3DRandInc:
		return hull3d.RandInc(pts, 1)
	case Hull3DPseudo:
		return hull3d.Pseudo(pts)
	default:
		return hull3d.DivideConquer(pts)
	}
}

// HullVertices returns the sorted unique vertex ids of a 3D hull.
func HullVertices(facets [][3]int32) []int32 { return hull3d.Vertices(facets) }

// --- smallest enclosing ball (§4) ------------------------------------------

// Ball is a d-dimensional ball.
type Ball = seb.Ball

// SEBAlgorithm selects a smallest-enclosing-ball implementation.
type SEBAlgorithm int

// SEB algorithms (§6.2's comparison set).
const (
	SEBWelzlSeq      SEBAlgorithm = iota // sequential Welzl baseline
	SEBWelzl                             // parallel Welzl
	SEBWelzlMtf                          // + move-to-front
	SEBWelzlMtfPivot                     // + pivoting
	SEBScan                              // parallel orthant scan
	SEBSampling                          // sampling + orthant scan (fastest)
)

// SmallestEnclosingBall computes the exact smallest enclosing ball.
func SmallestEnclosingBall(pts Points, alg SEBAlgorithm) Ball {
	switch alg {
	case SEBWelzlSeq:
		return seb.WelzlSequential(pts, 1, seb.Heuristics{MTF: true})
	case SEBWelzl:
		return seb.Welzl(pts, 1, seb.Heuristics{})
	case SEBWelzlMtf:
		return seb.Welzl(pts, 1, seb.Heuristics{MTF: true})
	case SEBWelzlMtfPivot:
		return seb.Welzl(pts, 1, seb.Heuristics{MTF: true, Pivot: true})
	case SEBScan:
		return seb.OrthantScan(pts)
	default:
		return seb.Sampling(pts, 1)
	}
}

// --- WSPD / EMST / closest pair (Module 2) ---------------------------------

// WSPDPair is one well-separated node pair.
type WSPDPair = wspd.Pair

// WSPD computes the well-separated pair decomposition with separation s.
func WSPD(t *KDTree, s float64) []WSPDPair { return wspd.Compute(t, s) }

// EMSTEdge is a weighted Euclidean MST edge.
type EMSTEdge = emst.Edge

// EMST computes the exact Euclidean minimum spanning tree.
func EMST(pts Points) []EMSTEdge { return emst.Compute(pts) }

// PairResult is a closest-pair result.
type PairResult = closestpair.Result

// ClosestPair returns the closest pair of distinct points.
func ClosestPair(pts Points) PairResult { return closestpair.ClosestPair(pts) }

// BichromaticClosestPair returns the nearest red/blue pair.
func BichromaticClosestPair(red, blue Points) PairResult {
	return closestpair.Bichromatic(red, blue)
}

// MortonSort returns the point indices in Morton (Z-curve) order.
func MortonSort(pts Points) []int32 { return morton.Sort(pts) }

// --- spatial graph generators (Module 3) -----------------------------------

// GraphEdge is an undirected spatial-graph edge.
type GraphEdge = graphgen.Edge

// KNNGraph returns each point's k nearest neighbors (directed adjacency).
func KNNGraph(pts Points, k int) [][]int32 { return graphgen.KNNGraph(pts, k) }

// DelaunayGraph returns the Delaunay graph edges (2D).
func DelaunayGraph(pts Points) []GraphEdge { return graphgen.DelaunayGraph(pts, 1) }

// GabrielGraph returns the Gabriel graph edges (2D).
func GabrielGraph(pts Points) []GraphEdge { return graphgen.GabrielGraph(pts, 1) }

// BetaSkeleton returns the lune-based β-skeleton edges for β >= 1 (2D).
func BetaSkeleton(pts Points, beta float64) []GraphEdge {
	return graphgen.BetaSkeleton(pts, beta, 1)
}

// Spanner returns a WSPD-based t-spanner with t = (s+4)/(s-4), s > 4.
func Spanner(pts Points, s float64) []GraphEdge { return graphgen.Spanner(pts, s) }

// DelaunayTriangles returns the 2D Delaunay triangulation's triangles.
func DelaunayTriangles(pts Points) [][3]int32 {
	return delaunay.Parallel(pts, 1).Triangles()
}
