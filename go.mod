module pargeo

go 1.24
