package pargeo_test

import (
	"fmt"
	"math"

	"pargeo"
)

// Building a kd-tree and answering k-nearest-neighbor queries.
func ExampleBuildKDTree() {
	pts := pargeo.NewPoints(4, 2)
	pts.Set(0, []float64{0, 0})
	pts.Set(1, []float64{1, 0})
	pts.Set(2, []float64{0, 2})
	pts.Set(3, []float64{10, 10})
	tree := pargeo.BuildKDTree(pts, pargeo.ObjectMedian)
	nbrs := pargeo.KNN(tree, []int32{0}, 2)
	fmt.Println(nbrs[0])
	// Output: [1 2]
}

// Computing a 2D convex hull.
func ExampleConvexHull2D() {
	pts := pargeo.NewPoints(5, 2)
	pts.Set(0, []float64{0, 0})
	pts.Set(1, []float64{4, 0})
	pts.Set(2, []float64{4, 4})
	pts.Set(3, []float64{0, 4})
	pts.Set(4, []float64{2, 2}) // interior
	hull := pargeo.ConvexHull2D(pts, pargeo.Hull2DDivideConquer)
	fmt.Println(len(hull))
	// Output: 4
}

// Computing the smallest enclosing ball of a square.
func ExampleSmallestEnclosingBall() {
	pts := pargeo.NewPoints(4, 2)
	pts.Set(0, []float64{0, 0})
	pts.Set(1, []float64{2, 0})
	pts.Set(2, []float64{0, 2})
	pts.Set(3, []float64{2, 2})
	ball := pargeo.SmallestEnclosingBall(pts, pargeo.SEBSampling)
	fmt.Printf("center=(%.0f,%.0f) r=%.3f\n",
		ball.Center[0], ball.Center[1], math.Sqrt(ball.SqRadius))
	// Output: center=(1,1) r=1.414
}

// Batch-dynamic updates with the BDL-tree.
func ExampleNewBDLTree() {
	tree := pargeo.NewBDLTree(2, pargeo.BDLOptions{BufferSize: 4})
	batch := pargeo.NewPoints(8, 2)
	for i := 0; i < 8; i++ {
		batch.Set(i, []float64{float64(i), float64(i % 3)})
	}
	tree.Insert(batch)
	fmt.Println(tree.Size())
	tree.Delete(batch.Slice(0, 3))
	fmt.Println(tree.Size())
	// Output:
	// 8
	// 5
}

// The Euclidean minimum spanning tree of collinear points is the path
// along them.
func ExampleEMST() {
	pts := pargeo.NewPoints(4, 2)
	for i := 0; i < 4; i++ {
		pts.Set(i, []float64{float64(i), 0})
	}
	edges := pargeo.EMST(pts)
	total := 0.0
	for _, e := range edges {
		total += math.Sqrt(e.SqDist)
	}
	fmt.Println(len(edges), total)
	// Output: 3 3
}

// Single-linkage clustering via the EMST-based dendrogram.
func ExampleSingleLinkage() {
	pts := pargeo.NewPoints(6, 2)
	// Two triplets far apart.
	pts.Set(0, []float64{0, 0})
	pts.Set(1, []float64{0, 1})
	pts.Set(2, []float64{1, 0})
	pts.Set(3, []float64{100, 0})
	pts.Set(4, []float64{100, 1})
	pts.Set(5, []float64{101, 0})
	d := pargeo.SingleLinkage(pts)
	labels := d.CutK(2)
	fmt.Println(labels[0] == labels[1], labels[0] == labels[3])
	// Output: true false
}
