package pargeo

import (
	"pargeo/internal/cluster"
	"pargeo/internal/geom"
	"pargeo/internal/zdtree"
)

// Dendrogram is a single-linkage merge tree (see internal/cluster).
type Dendrogram = cluster.Dendrogram

// SingleLinkage builds the exact single-linkage dendrogram via the EMST —
// the clustering pipeline §2 of the paper motivates for the WSPD/EMST
// modules.
func SingleLinkage(pts Points) Dendrogram { return cluster.SingleLinkage(pts) }

// HDBSCAN builds the HDBSCAN* hierarchy over the mutual-reachability
// distance with the given minPts.
func HDBSCAN(pts Points, minPts int) Dendrogram { return cluster.HDBSCAN(pts, minPts) }

// CoreDistances returns each point's distance to its minPts-th nearest
// neighbor (data-parallel).
func CoreDistances(pts Points, minPts int) []float64 {
	return cluster.CoreDistances(pts, minPts)
}

// ZdTree is the simplified Morton-order batch-dynamic tree used for the
// §6.3 comparison (see internal/zdtree for its relationship to Blelloch &
// Dobson's structure).
type ZdTree = zdtree.Tree

// NewZdTree returns an empty Zd-tree whose Morton quantization covers box.
func NewZdTree(dim int, box Box) *ZdTree { return zdtree.New(dim, box) }

// BoundingBox computes the bounding box of all points.
func BoundingBox(pts Points) Box { return geom.BoundingBoxAll(pts) }
