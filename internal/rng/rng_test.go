package rng

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(7)
	b := NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Next64() != b.Next64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(42) == Hash64(43) {
		t.Fatal("adjacent inputs collide")
	}
}

func TestXoshiroUniformity(t *testing.T) {
	// Coarse uniformity: bucket 100k floats into 10 bins.
	x := NewXoshiro256(123)
	bins := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		bins[int(f*10)]++
	}
	for b, c := range bins {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bin %d count %d far from uniform", b, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := NewXoshiro256(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestIntnRange(t *testing.T) {
	x := NewXoshiro256(5)
	for i := 0; i < 10000; i++ {
		v := x.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestJumpIndependence(t *testing.T) {
	x := NewXoshiro256(1)
	y := x.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if x.Next64() == y.Next64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream correlates: %d matches", same)
	}
}
