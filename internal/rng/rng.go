// Package rng provides fast, deterministic, splittable pseudo-random number
// generators used throughout the library for data generation, random
// permutations, and randomized algorithms (Welzl, randomized incremental
// constructions).
//
// The generators are not cryptographically secure. They are chosen for
// reproducibility (fixed seed -> fixed stream, independent of GOMAXPROCS)
// and for the ability to cheaply derive independent per-worker streams,
// which is what a parallel library needs.
package rng

import "math"

// SplitMix64 is the seeding/stream-splitting generator from Steele et al.
// It has a 64-bit state and passes BigCrush; one Next64 call is a few
// arithmetic instructions, making it suitable for hashing indices into
// random values inside parallel loops.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next64 advances the state and returns the next 64-bit value.
func (s *SplitMix64) Next64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes x through the SplitMix64 finalizer. It is a stateless,
// high-quality 64-bit mixer: Hash64(seed+i) yields an i.i.d.-looking stream,
// which lets parallel loops draw "random" values from their loop index with
// no shared state and no contention.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is xoshiro256** by Blackman and Vigna: a small, fast generator
// with 256 bits of state, used where a stream (rather than an index hash)
// is more convenient.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 seeds the state using SplitMix64, per the authors'
// recommendation.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next64()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next64 returns the next 64-bit value.
func (x *Xoshiro256) Next64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It is used by the clustered data generators.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Intn returns a uniform value in [0, n). n must be positive.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Next64() % uint64(n))
}

// Jump creates an independent stream by seeding a new generator from this
// one; used to hand each parallel worker its own generator.
func (x *Xoshiro256) Jump() *Xoshiro256 {
	return NewXoshiro256(x.Next64())
}

// UniformFloat64 maps a 64-bit hash to [0, 1).
func UniformFloat64(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
