package ptio

import (
	"bytes"
	"strings"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestCSVRoundTrip(t *testing.T) {
	pts := generators.UniformCube(500, 3, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pts.Len() || got.Dim != 3 {
		t.Fatalf("shape %dx%d", got.Len(), got.Dim)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatalf("coordinate %d: %v vs %v", i, got.Data[i], pts.Data[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pts := generators.UniformCube(2000, 5, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2000 || got.Dim != 5 {
		t.Fatalf("shape %dx%d", got.Len(), got.Dim)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatalf("coordinate %d differs", i)
		}
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n1,2\n\n3,4\n# trailing\n"
	pts, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if pts.Len() != 2 || pts.Coord(1, 1) != 4 {
		t.Fatalf("parsed %+v", pts)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Fatal("non-numeric should error")
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadBinary(strings.NewReader("PG")); err == nil {
		t.Fatal("truncated magic should error")
	}
	// Truncated data.
	pts := geom.Points{Dim: 2, Data: []float64{1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated data should error")
	}
}

func TestSpecialValuesCSV(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{
		0.1, -3.5e-12, 1e300, -0.0,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatalf("value %d: %v vs %v", i, got.Data[i], pts.Data[i])
		}
	}
}
