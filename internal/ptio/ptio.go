// Package ptio reads and writes point sets in the two formats the tools
// use: CSV (one comma-separated point per line, human-readable, the format
// pargeo-gen emits) and a compact little-endian binary format
// ("PGEO" magic, dim, count, then raw float64 coordinates) for fast
// round-tripping of large data sets.
package ptio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pargeo/internal/geom"
)

// WriteCSV writes one point per line, coordinates separated by commas.
func WriteCSV(w io.Writer, pts geom.Points) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	buf := make([]byte, 0, 64)
	for i := 0; i < pts.Len(); i++ {
		p := pts.At(i)
		buf = buf[:0]
		for c, v := range p {
			if c > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("ptio: write csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV reads points from CSV; every line must have the same number of
// coordinates. Blank lines and lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (geom.Points, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []float64
	dim := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if dim == 0 {
			dim = len(fields)
		} else if len(fields) != dim {
			return geom.Points{}, fmt.Errorf("ptio: line %d has %d fields, want %d", line, len(fields), dim)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return geom.Points{}, fmt.Errorf("ptio: line %d: %w", line, err)
			}
			data = append(data, v)
		}
	}
	if err := sc.Err(); err != nil {
		return geom.Points{}, fmt.Errorf("ptio: read csv: %w", err)
	}
	return geom.Points{Data: data, Dim: dim}, nil
}

const binaryMagic = "PGEO"

// WriteBinary writes the compact binary format.
func WriteBinary(w io.Writer, pts geom.Points) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("ptio: write binary: %w", err)
	}
	hdr := [2]uint64{uint64(pts.Dim), uint64(pts.Len())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("ptio: write binary header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, pts.Data); err != nil {
		return fmt.Errorf("ptio: write binary data: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads the compact binary format.
func ReadBinary(r io.Reader) (geom.Points, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return geom.Points{}, fmt.Errorf("ptio: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return geom.Points{}, fmt.Errorf("ptio: bad magic %q", magic)
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return geom.Points{}, fmt.Errorf("ptio: read header: %w", err)
	}
	dim, n := int(hdr[0]), int(hdr[1])
	if dim <= 0 || dim > 64 || n < 0 {
		return geom.Points{}, fmt.Errorf("ptio: implausible header dim=%d n=%d", dim, n)
	}
	data := make([]float64, dim*n)
	if err := binary.Read(br, binary.LittleEndian, data); err != nil {
		return geom.Points{}, fmt.Errorf("ptio: read data: %w", err)
	}
	return geom.Points{Data: data, Dim: dim}, nil
}
