package closestpair

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
)

func TestClosestPairMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{2, 3, 5} {
		for _, n := range []int{2, 10, 100, 500} {
			pts := generators.UniformCube(n, dim, uint64(n+dim))
			got := ClosestPair(pts)
			want := BruteForce(pts)
			if math.Abs(got.SqDist-want.SqDist) > 1e-12*(1+want.SqDist) {
				t.Fatalf("dim=%d n=%d: %v vs brute %v", dim, n, got, want)
			}
		}
	}
}

func TestClosestPairLarge(t *testing.T) {
	pts := generators.UniformCube(50000, 2, 77)
	got := ClosestPair(pts)
	if got.A < 0 || got.B < 0 || got.A == got.B {
		t.Fatalf("bad pair %v", got)
	}
	if d := pts.SqDist(int(got.A), int(got.B)); d != got.SqDist {
		t.Fatalf("distance mismatch: %v vs %v", d, got.SqDist)
	}
}

func TestClosestPairDuplicates(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{0, 0, 5, 5, 0, 0, 9, 9}}
	got := ClosestPair(pts)
	if got.SqDist != 0 {
		t.Fatalf("duplicate pair distance %v", got.SqDist)
	}
}

func TestBCCPMatchesBruteForce(t *testing.T) {
	red := generators.UniformCube(300, 3, 1)
	blue := generators.UniformCube(400, 3, 2)
	got := Bichromatic(red, blue)
	want := Result{-1, -1, math.Inf(1)}
	for i := 0; i < red.Len(); i++ {
		for j := 0; j < blue.Len(); j++ {
			if d := geom.SqDist(red.At(i), blue.At(j)); d < want.SqDist {
				want = Result{int32(i), int32(j), d}
			}
		}
	}
	if math.Abs(got.SqDist-want.SqDist) > 1e-12*(1+want.SqDist) {
		t.Fatalf("BCCP %v vs brute %v", got, want)
	}
}

func TestBCCPNodesSeeded(t *testing.T) {
	red := generators.UniformCube(100, 2, 3)
	blue := generators.UniformCube(100, 2, 4)
	ta := kdtree.Build(red, kdtree.Options{})
	tb := kdtree.Build(blue, kdtree.Options{})
	full := BCCP(ta, tb)
	// Seeding with the answer cannot be improved.
	same := BCCPNodes(ta, tb, ta.Root(), tb.Root(), full)
	if same.SqDist != full.SqDist {
		t.Fatalf("seeded BCCP changed: %v vs %v", same, full)
	}
	// Seeding with 0 must return the seed (nothing is closer).
	zero := BCCPNodes(ta, tb, ta.Root(), tb.Root(), Result{A: -1, B: -1, SqDist: 0})
	if zero.SqDist != 0 {
		t.Fatalf("zero-seeded BCCP: %v", zero)
	}
}

func TestClosestPairTiny(t *testing.T) {
	if r := ClosestPair(geom.NewPoints(0, 2)); r.A != -1 {
		t.Fatal("empty should be -1")
	}
	if r := ClosestPair(geom.Points{Dim: 2, Data: []float64{1, 1}}); r.A != -1 {
		t.Fatal("single point should be -1")
	}
}
