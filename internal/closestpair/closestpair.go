// Package closestpair implements ParGeo's closest-pair and bichromatic
// closest-pair routines (Module 2).
//
// ClosestPair reduces to an all-nearest-neighbor pass over the kd-tree: the
// closest pair (p, q) are each other's nearest neighbors, so the minimum
// over per-point 1-NN distances is exact; the pass is data-parallel.
//
// BCCP (bichromatic closest pair: nearest red/blue pair) runs the classic
// dual-tree traversal over two kd-trees, pruning node pairs whose box
// distance exceeds the best pair found so far. The same routine, applied to
// WSPD node pairs within one tree, is the engine of the EMST module.
package closestpair

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// Result is a closest pair: point indices and their squared distance.
type Result struct {
	A, B   int32
	SqDist float64
}

// BruteForce is the quadratic oracle used for testing and tiny inputs.
func BruteForce(pts geom.Points) Result {
	n := pts.Len()
	best := Result{-1, -1, math.Inf(1)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := pts.SqDist(i, j); d < best.SqDist {
				best = Result{int32(i), int32(j), d}
			}
		}
	}
	return best
}

// ClosestPair returns the closest pair of distinct points, via a batched
// all-1-NN pass over a kd-tree followed by a parallel min-reduction.
func ClosestPair(pts geom.Points) Result {
	n := pts.Len()
	if n < 2 {
		return Result{-1, -1, math.Inf(1)}
	}
	if n <= 64 {
		return BruteForce(pts)
	}
	t := kdtree.Build(pts, kdtree.Options{Split: kdtree.ObjectMedian})
	dists := make([]float64, n)
	nn := t.AllKNN(1, dists)
	type cand struct {
		a, b int32
		d    float64
	}
	best := parlay.Reduce(n, 2048, cand{-1, -1, math.Inf(1)},
		func(i int) cand {
			if nn[i] < 0 {
				return cand{-1, -1, math.Inf(1)}
			}
			return cand{int32(i), nn[i], dists[i]}
		},
		func(a, b cand) cand {
			if b.d < a.d || (b.d == a.d && b.a >= 0 && (a.a < 0 || b.a < a.a)) {
				return b
			}
			return a
		})
	a, b := best.a, best.b
	if a > b {
		a, b = b, a
	}
	return Result{a, b, best.d}
}

// BCCP returns the bichromatic closest pair between the points of two
// kd-trees (A-index, B-index, squared distance) via dual-tree traversal.
func BCCP(ta, tb *kdtree.Tree) Result {
	best := Result{-1, -1, math.Inf(1)}
	if ta.Root() == nil || tb.Root() == nil {
		return best
	}
	bccpNodes(ta, tb, ta.Root(), tb.Root(), &best)
	return best
}

// BCCPNodes computes the closest pair between the point sets of two nodes
// (possibly of the same tree), seeded with an existing best (pass
// SqDist=+inf to start fresh). Used per-WSPD-pair by the EMST.
func BCCPNodes(ta, tb *kdtree.Tree, a, b *kdtree.Node, seed Result) Result {
	best := seed
	bccpNodes(ta, tb, a, b, &best)
	return best
}

func bccpNodes(ta, tb *kdtree.Tree, a, b *kdtree.Node, best *Result) {
	if kdtree.NodeSqDist(a, b, ta.Pts.Dim) >= best.SqDist {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		for _, i := range ta.Points(a) {
			pi := ta.Pts.At(int(i))
			for _, j := range tb.Points(b) {
				if d := geom.SqDist(pi, tb.Pts.At(int(j))); d < best.SqDist {
					*best = Result{i, j, d}
				}
			}
		}
		return
	}
	// Descend into the larger-diameter node; order children by distance so
	// the nearer pair is explored first (better pruning).
	if b.IsLeaf() || (!a.IsLeaf() && kdtree.NodeSqDiameter(a, ta.Pts.Dim) > kdtree.NodeSqDiameter(b, tb.Pts.Dim)) {
		al, ar := ta.Left(a), ta.Right(a)
		dl := kdtree.NodeSqDist(al, b, ta.Pts.Dim)
		dr := kdtree.NodeSqDist(ar, b, ta.Pts.Dim)
		if dl <= dr {
			bccpNodes(ta, tb, al, b, best)
			bccpNodes(ta, tb, ar, b, best)
		} else {
			bccpNodes(ta, tb, ar, b, best)
			bccpNodes(ta, tb, al, b, best)
		}
	} else {
		bl, br := tb.Left(b), tb.Right(b)
		dl := kdtree.NodeSqDist(a, bl, ta.Pts.Dim)
		dr := kdtree.NodeSqDist(a, br, ta.Pts.Dim)
		if dl <= dr {
			bccpNodes(ta, tb, a, bl, best)
			bccpNodes(ta, tb, a, br, best)
		} else {
			bccpNodes(ta, tb, a, br, best)
			bccpNodes(ta, tb, a, bl, best)
		}
	}
}

// Bichromatic returns the closest red/blue pair given two point buffers of
// equal dimension; indices refer to the respective buffers.
func Bichromatic(red, blue geom.Points) Result {
	if red.Len() == 0 || blue.Len() == 0 {
		return Result{-1, -1, math.Inf(1)}
	}
	var ta, tb *kdtree.Tree
	parlay.Do(
		func() { ta = kdtree.Build(red, kdtree.Options{}) },
		func() { tb = kdtree.Build(blue, kdtree.Options{}) },
	)
	return BCCP(ta, tb)
}
