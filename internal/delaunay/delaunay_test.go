package delaunay

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// checkDelaunay validates the triangulation invariants:
//   - every triangle is CCW;
//   - the empty-circumcircle property holds against every input point;
//   - every non-duplicate input point appears as a vertex;
//   - the edge adjacency is a manifold triangulation of the convex hull
//     (every internal edge shared by exactly two triangles).
func checkDelaunay(t *testing.T, pts geom.Points, dt *Triangulation, label string) {
	t.Helper()
	tris := dt.Triangles()
	if len(tris) == 0 {
		t.Fatalf("%s: no triangles", label)
	}
	n := pts.Len()
	// CCW + empty circumcircle (the defining property).
	for ti, tv := range tris {
		a, b, c := pts.At(int(tv[0])), pts.At(int(tv[1])), pts.At(int(tv[2]))
		if geom.Orient2D(a, b, c) <= 0 {
			t.Fatalf("%s: triangle %d not CCW", label, ti)
		}
		for p := 0; p < n; p++ {
			if int32(p) == tv[0] || int32(p) == tv[1] || int32(p) == tv[2] {
				continue
			}
			if geom.InCircle(a, b, c, pts.At(p)) > 0 {
				t.Fatalf("%s: point %d strictly inside circumcircle of triangle %d %v",
					label, p, ti, tv)
			}
		}
	}
	// Vertex coverage (ignoring exact duplicates).
	coord := map[[2]float64]bool{}
	for _, tv := range tris {
		for _, v := range tv {
			p := pts.At(int(v))
			coord[[2]float64{p[0], p[1]}] = true
		}
	}
	for p := 0; p < n; p++ {
		c := pts.At(p)
		if !coord[[2]float64{c[0], c[1]}] {
			t.Fatalf("%s: point %d (%v) missing from triangulation", label, p, c)
		}
	}
	// Edge counts: internal edges twice, hull edges once.
	type ekey struct{ u, v int32 }
	cnt := map[ekey]int{}
	for _, tv := range tris {
		for e := 0; e < 3; e++ {
			u, v := tv[e], tv[(e+1)%3]
			if u > v {
				u, v = v, u
			}
			cnt[ekey{u, v}]++
		}
	}
	for k, c := range cnt {
		if c > 2 {
			t.Fatalf("%s: edge %v appears %d times", label, k, c)
		}
	}
}

func TestDelaunaySequentialSmall(t *testing.T) {
	for _, n := range []int{4, 10, 50, 200} {
		pts := generators.UniformCube(n, 2, uint64(n))
		dt := Sequential(pts, 1)
		checkDelaunay(t, pts, dt, "seq")
	}
}

func TestDelaunayParallelSmall(t *testing.T) {
	for _, n := range []int{4, 10, 50, 200, 1000} {
		pts := generators.UniformCube(n, 2, uint64(n)+100)
		dt := Parallel(pts, 2)
		checkDelaunay(t, pts, dt, "par")
	}
}

func TestDelaunayParallelMatchesSequential(t *testing.T) {
	pts := generators.InSphere(800, 2, 77)
	seqEdges := edgeSet(Sequential(pts, 3).Edges())
	parEdges := edgeSet(Parallel(pts, 4).Edges())
	if len(seqEdges) != len(parEdges) {
		t.Fatalf("edge counts differ: %d vs %d", len(seqEdges), len(parEdges))
	}
	for e := range seqEdges {
		if !parEdges[e] {
			t.Fatalf("edge %v in sequential but not parallel", e)
		}
	}
}

func edgeSet(es []Edge) map[Edge]bool {
	m := make(map[Edge]bool, len(es))
	for _, e := range es {
		m[e] = true
	}
	return m
}

func TestDelaunayLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := generators.UniformCube(20000, 2, 5)
	dt := Parallel(pts, 6)
	tris := dt.Triangles()
	// Euler: for n points with h hull vertices, triangles = 2n - h - 2.
	// Just sanity-check the asymptotic range.
	if len(tris) < 2*20000-200-2 || len(tris) > 2*20000 {
		t.Fatalf("triangle count out of range: %d", len(tris))
	}
	// Spot-check the circumcircle property on a subset.
	for ti := 0; ti < len(tris); ti += 500 {
		tv := tris[ti]
		a, b, c := pts.At(int(tv[0])), pts.At(int(tv[1])), pts.At(int(tv[2]))
		for p := 0; p < pts.Len(); p += 97 {
			if int32(p) == tv[0] || int32(p) == tv[1] || int32(p) == tv[2] {
				continue
			}
			if geom.InCircle(a, b, c, pts.At(p)) > 0 {
				t.Fatalf("circumcircle violation at triangle %d point %d", ti, p)
			}
		}
	}
}

func TestDelaunayDuplicatePoints(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{
		0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 1, 0.5, 0.5, 0.5, 0.5,
	}}
	dt := Parallel(pts, 7)
	checkDelaunay(t, pts, dt, "dups")
	tris := dt.Triangles()
	// 5 distinct sites, 4 hull: expect 2*5 - 4 - 2 = 4 triangles.
	if len(tris) != 4 {
		t.Fatalf("duplicate square: %d triangles, want 4", len(tris))
	}
}

func TestDelaunayGrid(t *testing.T) {
	// Cocircular degeneracies: a regular grid. The triangulation must stay
	// structurally valid (any diagonal choice is acceptable).
	const k = 8
	pts := geom.NewPoints(k*k, 2)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			pts.Set(i*k+j, []float64{float64(i), float64(j)})
		}
	}
	dt := Parallel(pts, 8)
	tris := dt.Triangles()
	want := 2 * (k - 1) * (k - 1)
	if len(tris) != want {
		t.Fatalf("grid: %d triangles, want %d", len(tris), want)
	}
	for _, tv := range tris {
		a, b, c := pts.At(int(tv[0])), pts.At(int(tv[1])), pts.At(int(tv[2]))
		if geom.Orient2D(a, b, c) <= 0 {
			t.Fatalf("grid triangle not CCW: %v", tv)
		}
	}
}
