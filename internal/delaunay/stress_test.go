package delaunay

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestDelaunayClusteredData(t *testing.T) {
	// Clustered inputs stress the point-location redistribution (deep
	// cavities, skewed triangle point lists).
	for _, tc := range []struct {
		name string
		pts  geom.Points
	}{
		{"seedspreader", generators.SeedSpreader(1500, 2, 31)},
		{"visualvar", generators.VisualVar(1500, 32)},
	} {
		dt := Parallel(tc.pts, 1)
		checkDelaunay(t, tc.pts, dt, tc.name)
	}
}

func TestDelaunayCollinearInput(t *testing.T) {
	// All points on a line: no real triangle exists; construction must not
	// crash or loop and Triangles() must be empty.
	n := 60
	pts := geom.NewPoints(n, 2)
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{float64(i), 2*float64(i) + 1})
	}
	dt := Parallel(pts, 2)
	if tris := dt.Triangles(); len(tris) != 0 {
		t.Fatalf("collinear input produced %d real triangles", len(tris))
	}
	// Edges along the line may or may not appear depending on super-
	// triangle connectivity; just ensure no panic in Edges().
	_ = dt.Edges()
}

func TestDelaunayTwoPoints(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{0, 0, 1, 1}}
	dt := Parallel(pts, 3)
	if tris := dt.Triangles(); len(tris) != 0 {
		t.Fatalf("two points gave %d triangles", len(tris))
	}
}

func TestDelaunayManySeedsAgree(t *testing.T) {
	// The Delaunay triangulation of points in general position is unique:
	// every insertion order (seed) must produce the same edge set.
	pts := generators.UniformCube(500, 2, 33)
	ref := edgeSet(Parallel(pts, 1).Edges())
	for seed := uint64(2); seed < 6; seed++ {
		got := edgeSet(Parallel(pts, seed).Edges())
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d edges vs %d", seed, len(got), len(ref))
		}
		for e := range ref {
			if !got[e] {
				t.Fatalf("seed %d: edge %v missing", seed, e)
			}
		}
	}
}
