// Package delaunay implements a 2D Delaunay triangulation — the substrate
// behind ParGeo's Delaunay/Gabriel/β-skeleton graph generators (Module 3).
//
// The construction is Bowyer–Watson (randomized incremental): each inserted
// point's cavity (the triangles whose circumcircle contains it) is carved
// out and re-triangulated as a fan around the point. Point location uses
// the same device as the paper's convex hull: every un-inserted point is
// stored with the triangle that contains it, and cavities are found by a
// local breadth-first search from that triangle.
//
// Parallel batch insertion applies the paper's reservation technique
// (§3, Fig. 5) to the triangulation: a batch of points computes cavities
// in parallel against the current triangulation, each point reserves its
// cavity triangles and the triangles adjacent to the cavity boundary with
// a WriteMin priority write, and the points that hold all their
// reservations retriangulate their (disjoint) cavities in parallel. This
// demonstrates the technique's generality beyond convex hulls.
package delaunay

import (
	"math"

	"pargeo/internal/core"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

const (
	seedDone int32 = -1 // point inserted or dropped (duplicate/degenerate)
)

type tri struct {
	v    [3]int32
	nbr  [3]int32 // across directed edge v[i] -> v[(i+1)%3]; -1 = outer face
	pts  []int32  // un-inserted points located inside this triangle
	dead bool
}

// Triangulation is the result: triangles over the input points plus three
// synthetic super-triangle vertices with ids n, n+1, n+2 (excluded from
// Triangles / Edges output).
type Triangulation struct {
	Pts   geom.Points // input points + 3 super vertices appended
	N     int         // number of real points
	tris  []tri
	res   *core.Reservations
	seed  []int32 // per real point: containing triangle, or seedDone
	prio  []int64
	stats *core.Stats
}

// inCircum reports whether point p is strictly inside t's circumcircle.
func (dt *Triangulation) inCircum(t *tri, p int32) bool {
	return geom.InCircle(
		dt.Pts.At(int(t.v[0])), dt.Pts.At(int(t.v[1])), dt.Pts.At(int(t.v[2])),
		dt.Pts.At(int(p))) > 0
}

// contains reports whether point p lies inside (or on the border of)
// triangle t.
func (dt *Triangulation) contains(t *tri, p int32) bool {
	pc := dt.Pts.At(int(p))
	for e := 0; e < 3; e++ {
		if geom.Orient2D(dt.Pts.At(int(t.v[e])), dt.Pts.At(int(t.v[(e+1)%3])), pc) < 0 {
			return false
		}
	}
	return true
}

// New prepares a triangulation over pts: builds the super triangle and
// locates every point in it.
func New(pts geom.Points) *Triangulation {
	n := pts.Len()
	box := geom.BoundingBoxAll(pts)
	cx := (box.Min[0] + box.Max[0]) / 2
	cy := (box.Min[1] + box.Max[1]) / 2
	// The super vertices must be far enough away that no real point's
	// circumcircle decision is affected by them; too-close super vertices
	// leave hull-adjacent points connected to the super triangle, which
	// shows up as slivers missing from the hull after removal. 1e5x the
	// diameter keeps the artifact region negligible while losing only ~5
	// of the 16 significant digits in the in-circle determinants.
	r := 1e5*math.Sqrt(box.SqDiameter()) + 1
	// Buffer with room for the three super vertices.
	all := geom.NewPoints(n+3, 2)
	copy(all.Data, pts.Data)
	all.Set(n, []float64{cx - 2*r, cy - r})
	all.Set(n+1, []float64{cx + 2*r, cy - r})
	all.Set(n+2, []float64{cx, cy + 2*r})
	dt := &Triangulation{
		Pts:   all,
		N:     n,
		seed:  make([]int32, n),
		prio:  make([]int64, n),
		res:   core.NewReservations(1),
		tris:  []tri{{v: [3]int32{int32(n), int32(n + 1), int32(n + 2)}, nbr: [3]int32{-1, -1, -1}}},
		stats: nil,
	}
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	dt.tris[0].pts = idx
	return dt
}

// cavityOf BFSes from q's seed triangle, returning the triangles whose
// circumcircle contains q and the boundary triangles adjacent to the
// cavity (which get their adjacency rewired by the insertion).
func (dt *Triangulation) cavityOf(q int32) (cavity, boundary []int32) {
	start := dt.seed[q]
	if !dt.inCircum(&dt.tris[start], q) {
		return nil, nil // duplicate / filtered-degenerate point
	}
	visited := map[int32]bool{start: true}
	cavity = append(cavity, start)
	seenB := map[int32]bool{}
	for head := 0; head < len(cavity); head++ {
		t := &dt.tris[cavity[head]]
		for e := 0; e < 3; e++ {
			nb := t.nbr[e]
			if nb < 0 || visited[nb] {
				continue
			}
			visited[nb] = true
			if dt.inCircum(&dt.tris[nb], q) {
				cavity = append(cavity, nb)
			} else if !seenB[nb] {
				seenB[nb] = true
				boundary = append(boundary, nb)
			}
		}
	}
	return cavity, boundary
}

// cavityRidge is one directed boundary edge of a cavity.
type cavityRidge struct {
	u, w    int32
	outside int32 // triangle across the edge (-1 for the outer face)
	slot    int32 // its edge slot pointing back (undefined when outside<0)
}

// ridgesOf extracts the cavity's closed boundary loop.
func (dt *Triangulation) ridgesOf(cavity []int32, inCav func(int32) bool) []cavityRidge {
	var out []cavityRidge
	for _, ti := range cavity {
		t := &dt.tris[ti]
		for e := 0; e < 3; e++ {
			nb := t.nbr[e]
			if nb >= 0 && inCav(nb) {
				continue
			}
			u, w := t.v[e], t.v[(e+1)%3]
			r := cavityRidge{u: u, w: w, outside: nb, slot: -1}
			if nb >= 0 {
				g := &dt.tris[nb]
				for s := 0; s < 3; s++ {
					if g.v[s] == w && g.v[(s+1)%3] == u {
						r.slot = int32(s)
						break
					}
				}
			}
			out = append(out, r)
		}
	}
	return out
}

// retriangulate replaces the cavity with a fan of new triangles around q.
// New triangle ids are preallocated as [base, base+len(ridges)).
func (dt *Triangulation) retriangulate(q int32, cavity []int32, ridges []cavityRidge, base int32) {
	startAt := make(map[int32]int32, len(ridges))
	for k, r := range ridges {
		startAt[r.u] = base + int32(k)
	}
	if len(startAt) != len(ridges) {
		panic("delaunay: malformed cavity boundary loop")
	}
	endAt := make(map[int32]int32, len(ridges))
	for k, r := range ridges {
		endAt[r.w] = base + int32(k)
	}
	for k, r := range ridges {
		ti := base + int32(k)
		nt := tri{v: [3]int32{r.u, r.w, q}}
		nt.nbr[0] = r.outside
		nt.nbr[1] = startAt[r.w] // across (w, q): the fan triangle starting at w
		nt.nbr[2] = endAt[r.u]   // across (q, u): the fan triangle ending at u
		dt.tris[ti] = nt
		if r.outside >= 0 {
			dt.tris[r.outside].nbr[r.slot] = ti
		}
	}
	// Kill the cavity and redistribute its points over the fan.
	var gathered []int32
	for _, ti := range cavity {
		dt.tris[ti].dead = true
		gathered = append(gathered, dt.tris[ti].pts...)
		dt.tris[ti].pts = nil
	}
	dt.stats.AddKilled(int64(len(cavity)))
	dt.seed[q] = seedDone
	for _, p := range gathered {
		if p == q {
			continue
		}
		dt.seed[p] = seedDone
		for k := range ridges {
			ti := base + int32(k)
			if dt.contains(&dt.tris[ti], p) {
				dt.seed[p] = ti
				dt.tris[ti].pts = append(dt.tris[ti].pts, p)
				break
			}
		}
		// A point contained by no fan triangle coincides with q (or is a
		// filtered degenerate); it stays seedDone, matching Bowyer–Watson's
		// treatment of duplicates.
	}
}

// insertOne performs a single sequential insertion.
func (dt *Triangulation) insertOne(q int32) {
	cavity, _ := dt.cavityOf(q)
	if cavity == nil {
		dt.seed[q] = seedDone
		return
	}
	isCav := make(map[int32]bool, len(cavity))
	for _, t := range cavity {
		isCav[t] = true
	}
	ridges := dt.ridgesOf(cavity, func(t int32) bool { return isCav[t] })
	base := int32(len(dt.tris))
	dt.tris = append(dt.tris, make([]tri, len(ridges))...)
	dt.res.Grow(len(dt.tris))
	dt.stats.AddAlloc(int64(len(ridges)))
	dt.retriangulate(q, cavity, ridges, base)
}

// Sequential triangulates with one random insertion at a time.
func Sequential(pts geom.Points, seed uint64) *Triangulation {
	dt := New(pts)
	perm := parlay.RandomPermutation(pts.Len(), seed)
	for _, q := range perm {
		if dt.seed[q] != seedDone {
			dt.insertOne(q)
		}
	}
	return dt
}

// Parallel triangulates with reservation-based batch insertion rounds.
func Parallel(pts geom.Points, seed uint64) *Triangulation {
	dt := New(pts)
	n := pts.Len()
	perm := parlay.RandomPermutation(n, seed)
	parlay.For(n, 0, func(k int) { dt.prio[perm[k]] = int64(k) })
	P := perm
	batch := core.BatchSize(8)
	for len(P) > 0 {
		q := P
		if len(q) > batch {
			q = P[:batch]
		}
		dt.round(q)
		P = parlay.Pack(P, func(i int) bool { return dt.seed[P[i]] != seedDone })
	}
	return dt
}

// round is one reserve/check/commit batch round.
func (dt *Triangulation) round(batch []int32) {
	dt.stats.AddRound()
	dt.stats.AddPoints(int64(len(batch)))
	type info struct{ cavity, boundary []int32 }
	infos := make([]info, len(batch))
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		cav, bnd := dt.cavityOf(q)
		infos[k] = info{cav, bnd}
		if cav == nil {
			return
		}
		dt.stats.AddFacets(int64(len(cav)))
		dt.stats.AddReservations(int64(len(cav) + len(bnd)))
		p := dt.prio[q]
		for _, t := range cav {
			dt.res.Reserve(int(t), p)
		}
		for _, t := range bnd {
			dt.res.Reserve(int(t), p)
		}
	})
	success := make([]bool, len(batch))
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		if infos[k].cavity == nil {
			dt.seed[q] = seedDone // duplicate: drop
			return
		}
		p := dt.prio[q]
		ok := true
		for _, t := range infos[k].cavity {
			if !dt.res.Holds(int(t), p) {
				ok = false
				break
			}
		}
		if ok {
			for _, t := range infos[k].boundary {
				if !dt.res.Holds(int(t), p) {
					ok = false
					break
				}
			}
		}
		success[k] = ok
		if ok {
			dt.stats.AddSuccess()
		} else {
			dt.stats.AddFailure()
		}
	})
	winnerIdx := parlay.PackIndex(len(batch), func(k int) bool { return success[k] })
	ridgesOf := make([][]cavityRidge, len(winnerIdx))
	parlay.For(len(winnerIdx), 1, func(w int) {
		in := infos[winnerIdx[w]]
		isCav := make(map[int32]bool, len(in.cavity))
		for _, t := range in.cavity {
			isCav[t] = true
		}
		ridgesOf[w] = dt.ridgesOf(in.cavity, func(t int32) bool { return isCav[t] })
	})
	counts := make([]int, len(winnerIdx))
	for w := range counts {
		counts[w] = len(ridgesOf[w])
	}
	totalNew := parlay.ScanInts(counts)
	base := int32(len(dt.tris))
	dt.tris = append(dt.tris, make([]tri, totalNew)...)
	dt.res.Grow(len(dt.tris))
	dt.stats.AddAlloc(int64(totalNew))
	parlay.For(len(winnerIdx), 1, func(w int) {
		k := int(winnerIdx[w])
		dt.retriangulate(batch[k], infos[k].cavity, ridgesOf[w], base+int32(counts[w]))
	})
	parlay.For(len(batch), 1, func(k int) {
		for _, t := range infos[k].cavity {
			if !dt.tris[t].dead {
				dt.res.Release(int(t))
			}
		}
		for _, t := range infos[k].boundary {
			if !dt.tris[t].dead {
				dt.res.Release(int(t))
			}
		}
	})
}

// Triangles returns the live triangles not touching the super vertices.
func (dt *Triangulation) Triangles() [][3]int32 {
	n32 := int32(dt.N)
	var out [][3]int32
	for i := range dt.tris {
		t := &dt.tris[i]
		if t.dead || t.v[0] >= n32 || t.v[1] >= n32 || t.v[2] >= n32 {
			continue
		}
		out = append(out, t.v)
	}
	return out
}

// Edge is an undirected Delaunay edge (U < V).
type Edge struct{ U, V int32 }

// Edges returns the unique undirected edges among real points.
func (dt *Triangulation) Edges() []Edge {
	seen := map[Edge]bool{}
	var out []Edge
	for _, t := range dt.Triangles() {
		for e := 0; e < 3; e++ {
			u, v := t[e], t[(e+1)%3]
			if u > v {
				u, v = v, u
			}
			k := Edge{u, v}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}
