package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// special float32 values mixed into parity slabs: NaN, infinities,
// denormals, signed zeros, and magnitude extremes. Bit-identity must hold
// through all of them — that is what makes the implementation choice
// unobservable to every layer above.
var specials = []float32{
	float32(math.NaN()),
	float32(math.Inf(1)),
	float32(math.Inf(-1)),
	math.Float32frombits(1),          // smallest denormal
	math.Float32frombits(0x007fffff), // largest denormal
	math.Float32frombits(0x80000001), // negative denormal
	float32(math.Copysign(0, -1)),
	math.MaxFloat32,
	-math.MaxFloat32,
	math.SmallestNonzeroFloat32,
	0, 1, -1, 0.5,
}

func fillParity(rng *rand.Rand, s []float32) {
	for i := range s {
		switch rng.Intn(4) {
		case 0:
			s[i] = specials[rng.Intn(len(specials))]
		case 1:
			s[i] = float32(rng.NormFloat64() * 1e6)
		case 2:
			s[i] = float32(rng.NormFloat64() * 1e-6)
		default:
			s[i] = float32(rng.NormFloat64())
		}
	}
}

// sameBits32 reports whether two outputs agree under the kernel contract:
// bit-identical, except that two NaNs match regardless of payload (Go
// leaves NaN payload bits unspecified).
func sameBits32(a, b float32) bool {
	if math.Float32bits(a) == math.Float32bits(b) {
		return true
	}
	return math.IsNaN(float64(a)) && math.IsNaN(float64(b))
}

// TestParitySqDists runs SqDistsF32 on random slabs (laced with NaN, Inf,
// and denormals) under both implementations and asserts the outputs are
// bit-identical — not approximately equal.
func TestParitySqDists(t *testing.T) {
	if !Available("avx2") {
		t.Skip("avx2 implementation not available in this build/host")
	}
	defer resetImpl(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(8)
		n := rng.Intn(70)
		stride := n + rng.Intn(9)
		if stride == 0 {
			stride = 1
		}
		slab := make([]float32, (dim-1)*stride+n)
		fillParity(rng, slab)
		q := make([]float32, dim)
		fillParity(rng, q)

		gotGo := make([]float32, n)
		gotAsm := make([]float32, n)
		if err := SetImpl("go"); err != nil {
			t.Fatal(err)
		}
		SqDistsF32(gotGo, q, slab, n, stride)
		if err := SetImpl("avx2"); err != nil {
			t.Fatal(err)
		}
		SqDistsF32(gotAsm, q, slab, n, stride)

		for i := range gotGo {
			if !sameBits32(gotGo[i], gotAsm[i]) {
				t.Fatalf("trial=%d dim=%d n=%d stride=%d: point %d diverges: go=%08x avx2=%08x (go=%v avx2=%v)",
					trial, dim, n, stride, i,
					math.Float32bits(gotGo[i]), math.Float32bits(gotAsm[i]), gotGo[i], gotAsm[i])
			}
		}
	}
}

// TestParityPruneBox does the same for the box filter: identical prune
// decisions on every slab, including NaN coordinates (never inside) and
// degenerate lo==hi boxes.
func TestParityPruneBox(t *testing.T) {
	if !Available("avx2") {
		t.Skip("avx2 implementation not available in this build/host")
	}
	defer resetImpl(t)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(8)
		n := rng.Intn(70)
		stride := n + rng.Intn(9)
		if stride == 0 {
			stride = 1
		}
		slab := make([]float32, (dim-1)*stride+n)
		fillParity(rng, slab)
		lo := make([]float32, dim)
		hi := make([]float32, dim)
		fillParity(rng, lo)
		for c := range hi {
			switch rng.Intn(3) {
			case 0:
				hi[c] = lo[c] // degenerate box
			case 1:
				hi[c] = lo[c] + float32(math.Abs(rng.NormFloat64()))
			default:
				hi[c] = specials[rng.Intn(len(specials))]
			}
		}

		gotGo := make([]byte, n)
		gotAsm := make([]byte, n)
		if err := SetImpl("go"); err != nil {
			t.Fatal(err)
		}
		PruneBox(gotGo, lo, hi, slab, n, stride)
		if err := SetImpl("avx2"); err != nil {
			t.Fatal(err)
		}
		PruneBox(gotAsm, lo, hi, slab, n, stride)

		for i := range gotGo {
			if gotGo[i] != gotAsm[i] {
				t.Fatalf("trial=%d dim=%d n=%d stride=%d: point %d decision diverges: go=%d avx2=%d",
					trial, dim, n, stride, i, gotGo[i], gotAsm[i])
			}
		}
	}
}
