// Package kernel owns the distance-and-prune scan primitives the spatial
// indexes' inner loops are built from: batched squared distances over
// dimension-major (SoA) float32 coordinate columns (SqDistsF32), the
// matching batched box-membership filter (PruneBox), and the float64
// point-to-box distance used for subtree pruning (MinSqDistToBox).
//
// The package exists to isolate data-level parallelism behind a portable
// interface, the way an accelerated gemm hides behind an FFI with a noop
// fallback: callers see one function per primitive, and the package picks
// the fastest implementation the host supports at init. On amd64 the f32
// column kernels have an AVX2 Go-assembly implementation (8 points per
// vector lane group); everywhere else — and under the `noasm` build tag,
// the escape hatch for debugging or excluding assembly — the pure-Go
// baseline runs. Impl reports the active choice and SetImpl overrides it,
// which is how the parity tests and the SoA benchmark sections drive both
// implementations through identical inputs.
//
// Bit-identical contract: the AVX2 kernels deliberately use separate
// multiply and add instructions (never FMA), and the pure-Go kernels force
// float32 rounding of each product with an explicit conversion, so both
// implementations produce bit-identical outputs — not merely identical
// prune decisions — for every input, including ±Inf and denormals. The
// one carve-out is NaN payloads: Go itself leaves them unspecified (the
// compiler may reorder commutative operands), so when an output is NaN,
// only NaN-ness is promised, not the payload bits — which still pins
// every comparison and prune decision, since NaN compares false in both
// implementations. The parity suite asserts this exhaustively; it is what
// lets every layer above treat the implementation choice as unobservable.
//
// Numerical role: float32 columns are a conservative FILTER, never the
// answer. The storage layers (kdtree, bdltree) scan f32 columns to discard
// points that provably cannot matter, then re-verify every surviving
// candidate against the retained float64 coordinates. The error-bound
// argument that makes the filter exact lives with the callers (see
// internal/kdtree and docs/ARCHITECTURE.md "Scan kernels"); this package
// only promises exact, deterministic f32 arithmetic.
package kernel
