//go:build amd64 && !noasm

#include "textflag.h"

// func sqDistsAVX2(dst, q, cols *float32, n, dim, stride int)
//
// Processes 8 points per iteration over a dimension-major slab:
// for each group of 8 points, walk the dim columns (stride apart),
// broadcast q[c], subtract, square, accumulate. Deliberately uses
// separate VMULPS+VADDPS (never FMA) so every partial sum is rounded to
// float32 exactly like the pure-Go kernel — outputs are bit-identical.
// n must be a positive multiple of 8 (the Go wrapper handles tails).
TEXT ·sqDistsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), SI
	MOVQ cols+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ dim+32(FP), R8
	MOVQ stride+40(FP), R9
	SHLQ $2, R9          // column stride in bytes
	XORQ AX, AX          // i: point-group base

pt8:
	CMPQ AX, CX
	JGE  sqdone
	VXORPS Y0, Y0, Y0    // accumulator for 8 points
	LEAQ (DX)(AX*4), R10 // &cols[i] in column 0
	XORQ R11, R11        // c: dimension index

sqdim:
	CMPQ R11, R8
	JGE  sqstore
	VBROADCASTSS (SI)(R11*4), Y2
	VMOVUPS (R10), Y1
	VSUBPS Y2, Y1, Y1    // col - q[c]
	VMULPS Y1, Y1, Y1    // rounded square (no FMA)
	VADDPS Y1, Y0, Y0
	ADDQ R9, R10         // next column, same points
	INCQ R11
	JMP  sqdim

sqstore:
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  pt8

sqdone:
	VZEROUPPER
	RET

// func pruneBoxAVX2(mask *byte, lo, hi, cols *float32, n, dim, stride int)
//
// mask[i] = 1 iff lo[c] <= cols[c*stride+i] <= hi[c] for every c.
// Ordered compare predicates (GE_OS, LE_OS) make NaN coordinates test
// outside, matching Go's >=/<= — decisions are bit-identical to the
// pure-Go kernel. n must be a positive multiple of 8.
TEXT ·pruneBoxAVX2(SB), NOSPLIT, $0-56
	MOVQ mask+0(FP), DI
	MOVQ lo+8(FP), SI
	MOVQ hi+16(FP), BX
	MOVQ cols+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ dim+40(FP), R8
	MOVQ stride+48(FP), R9
	SHLQ $2, R9          // column stride in bytes
	VPCMPEQD Y6, Y6, Y6
	VPSRLD $31, Y6, Y6   // every dword lane = 1
	XORQ AX, AX          // i: point-group base

pbpt8:
	CMPQ AX, CX
	JGE  pbdone
	VPCMPEQD Y0, Y0, Y0  // running mask: all-true
	LEAQ (DX)(AX*4), R10 // &cols[i] in column 0
	XORQ R11, R11        // c: dimension index

pbdim:
	CMPQ R11, R8
	JGE  pbreduce
	VMOVUPS (R10), Y1
	VBROADCASTSS (SI)(R11*4), Y2
	VBROADCASTSS (BX)(R11*4), Y3
	VCMPPS $0x0D, Y2, Y1, Y4 // col >= lo[c]  (GE_OS: NaN -> false)
	VCMPPS $0x02, Y3, Y1, Y5 // col <= hi[c]  (LE_OS: NaN -> false)
	VPAND Y4, Y0, Y0
	VPAND Y5, Y0, Y0
	ADDQ R9, R10
	INCQ R11
	JMP  pbdim

pbreduce:
	VPAND Y6, Y0, Y0          // 0/-1 dwords -> 0/1 dwords
	VEXTRACTI128 $1, Y0, X1
	VPACKSSDW X1, X0, X0      // 8 dwords -> 8 words
	VPACKUSWB X0, X0, X0      // 8 words -> 8 bytes (low half)
	VMOVQ X0, (DI)(AX*1)
	ADDQ $8, AX
	JMP  pbpt8

pbdone:
	VZEROUPPER
	RET

// func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidEx(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
