//go:build amd64 && !noasm

package kernel

// init probes the host once and arms the AVX2 kernels when the CPU and
// the OS both support them. The `noasm` build tag removes this file (and
// the assembly) entirely, leaving the portable baseline.
func init() {
	hasAVX2 = detectAVX2()
	useAsm.Store(hasAVX2)
}

// sqDistsAVX2 is the assembly scan kernel (kernel_amd64.s): n must be a
// positive multiple of 8; the Go wrapper scans any tail.
//
//go:noescape
func sqDistsAVX2(dst, q, cols *float32, n, dim, stride int)

// pruneBoxAVX2 is the assembly box filter (kernel_amd64.s); same calling
// contract as sqDistsAVX2.
//
//go:noescape
func pruneBoxAVX2(mask *byte, lo, hi, cols *float32, n, dim, stride int)

// cpuidEx executes CPUID with the given leaf and subleaf.
func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// detectAVX2 reports whether AVX2 kernels can run here: the CPU must
// advertise AVX and AVX2, and the OS must have enabled XMM+YMM state
// saving (OSXSAVE set and XCR0 bits 1–2 on), else executing VEX.256
// instructions faults.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidEx(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidEx(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	lo, _ := xgetbv0()
	if lo&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuidEx(7, 0)
	return b7&(1<<5) != 0 // AVX2
}
