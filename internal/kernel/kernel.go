package kernel

import (
	"fmt"
	"sync/atomic"
)

// useAsm gates the accelerated implementation on every call. It is atomic
// so SetImpl (a test/bench hook) can flip implementations while queries
// run under the race detector; the hot-path cost is a plain load.
var useAsm atomic.Bool

// hasAVX2 records whether the accelerated implementation is available on
// this host (set by the amd64 init, false elsewhere and under noasm).
var hasAVX2 bool

// Impl reports the active implementation: "avx2" or "go".
func Impl() string {
	if useAsm.Load() {
		return "avx2"
	}
	return "go"
}

// Available reports whether the named implementation ("go" or "avx2") can
// run on this host with this build.
func Available(name string) bool {
	switch name {
	case "go":
		return true
	case "avx2":
		return hasAVX2
	}
	return false
}

// SetImpl forces the named implementation ("go" or "avx2"). It is the
// test and benchmark hook behind the parity suite and the SoA bench
// sections; production callers never need it — init already picked the
// fastest available. Returns an error when the implementation cannot run
// on this host or build (e.g. "avx2" under the noasm tag).
func SetImpl(name string) error {
	if !Available(name) {
		return fmt.Errorf("kernel: implementation %q not available (have %q)", name, Impl())
	}
	useAsm.Store(name == "avx2")
	return nil
}

// SqDistsF32 computes dst[i] = Σ_c (cols[c*stride+i] − q[c])² for
// i < n over a dimension-major float32 slab: column c of the slab holds
// the c-th coordinate of every point, starting at cols[c*stride]. len(q)
// is the dimensionality; stride ≥ n is the column stride in elements
// (callers scanning a chunk of a larger slab pass the slab's stride).
//
// Accumulation order is fixed (c ascending, each product rounded to
// float32 before the add), so results are bit-identical across
// implementations — except NaN payload bits, which Go leaves unspecified
// (NaN-ness itself is deterministic).
func SqDistsF32(dst []float32, q []float32, cols []float32, n, stride int) {
	if n == 0 {
		return
	}
	checkSlab(len(dst), len(q), len(cols), n, stride)
	if useAsm.Load() && n >= 8 {
		n8 := n &^ 7
		sqDistsAVX2(&dst[0], &q[0], &cols[0], n8, len(q), stride)
		if n8 == n {
			return
		}
		sqDistsGeneric(dst[n8:n], q, cols[n8:], n-n8, stride)
		return
	}
	sqDistsGeneric(dst[:n], q, cols, n, stride)
}

// PruneBox sets mask[i] = 1 when point i of the dimension-major slab lies
// inside the closed box [lo, hi] in every dimension, and 0 otherwise
// (layout as in SqDistsF32; len(lo) = len(hi) is the dimensionality).
// A NaN coordinate never tests inside, matching Go's comparison
// semantics, so decisions are bit-identical across implementations.
func PruneBox(mask []byte, lo, hi []float32, cols []float32, n, stride int) {
	if n == 0 {
		return
	}
	if len(lo) != len(hi) {
		panic("kernel: PruneBox lo/hi length mismatch")
	}
	checkSlab(len(mask), len(lo), len(cols), n, stride)
	if useAsm.Load() && n >= 8 {
		n8 := n &^ 7
		pruneBoxAVX2(&mask[0], &lo[0], &hi[0], &cols[0], n8, len(lo), stride)
		if n8 == n {
			return
		}
		pruneBoxGeneric(mask[n8:n], lo, hi, cols[n8:], n-n8, stride)
		return
	}
	pruneBoxGeneric(mask[:n], lo, hi, cols, n, stride)
}

// MinSqDistToBox returns the squared Euclidean distance from q to the
// closed axis-aligned box [lo, hi] (0 when q is inside). This is the
// float64 subtree-pruning primitive of the k-NN descent; it is pure Go in
// every build — it touches len(q) ≤ 8 scalars per call, where dispatch
// overhead would exceed the vector win.
func MinSqDistToBox(q, lo, hi []float64) float64 {
	s := 0.0
	for c := range q {
		// Branchless per-dimension excess: at most one of the two deltas is
		// positive, and inside the box both are ≤ 0. Data-dependent branches
		// here mispredict constantly on real traversals.
		v := q[c]
		d := max(lo[c]-v, v-hi[c], 0)
		s += d * d
	}
	return s
}

// checkSlab validates one dimension-major kernel call up front so the
// implementations can run unchecked: dst covers n outputs, the slab holds
// every addressed element (column d-1 ends at (d-1)*stride + n), and the
// chunk fits its stride.
func checkSlab(dstLen, dim, colsLen, n, stride int) {
	if dim == 0 {
		panic("kernel: zero-dimensional call")
	}
	if stride < n {
		panic("kernel: column stride shorter than point count")
	}
	if dstLen < n {
		panic("kernel: output shorter than point count")
	}
	if colsLen < (dim-1)*stride+n {
		panic("kernel: slab shorter than dim*stride layout requires")
	}
}

// sqDistsGeneric is the portable scan kernel: one pass per coordinate
// column, accumulating into dst. The explicit float32 conversion of each
// product bars the compiler from fusing multiply and add (Go permits FMA
// contraction otherwise), which keeps results bit-identical to the
// mul-then-add AVX2 kernel on every platform.
func sqDistsGeneric(dst, q, cols []float32, n, stride int) {
	col := cols[:n]
	q0 := q[0]
	for i := range dst {
		d := col[i] - q0
		dst[i] = float32(d * d)
	}
	for c := 1; c < len(q); c++ {
		col = cols[c*stride : c*stride+n]
		qc := q[c]
		for i := range dst {
			d := col[i] - qc
			dst[i] += float32(d * d)
		}
	}
}

// pruneBoxGeneric is the portable box filter: column passes narrowing the
// mask. Comparisons are the Go-native >=/<=, so NaN excludes — the same
// decision the AVX2 ordered-compare predicates make.
func pruneBoxGeneric(mask []byte, lo, hi, cols []float32, n, stride int) {
	col := cols[:n]
	for i := range mask {
		if col[i] >= lo[0] && col[i] <= hi[0] {
			mask[i] = 1
		} else {
			mask[i] = 0
		}
	}
	for c := 1; c < len(lo); c++ {
		col = cols[c*stride : c*stride+n]
		lc, hc := lo[c], hi[c]
		for i := range mask {
			if !(col[i] >= lc && col[i] <= hc) {
				mask[i] = 0
			}
		}
	}
}
