//go:build !amd64 || noasm

package kernel

// No accelerated implementation in this build: hasAVX2 stays false and
// useAsm stays unset, so the dispatchers never reach the stubs below.
// They exist only to satisfy the references in kernel.go.

func sqDistsAVX2(dst, q, cols *float32, n, dim, stride int) {
	panic("kernel: sqDistsAVX2 called in a build without assembly")
}

func pruneBoxAVX2(mask *byte, lo, hi, cols *float32, n, dim, stride int) {
	panic("kernel: pruneBoxAVX2 called in a build without assembly")
}
