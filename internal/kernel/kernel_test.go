package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// refSqDists is an independent straight-line reference: point-major
// iteration, float64 accumulation of float32-rounded products. It mirrors
// the contract (each product rounded to f32, summed in order) without
// sharing code with either implementation.
func refSqDists(q, cols []float32, n, stride int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for c := range q {
			d := cols[c*stride+i] - q[c]
			s += float32(float64(d) * float64(d))
		}
		out[i] = s
	}
	return out
}

func refPruneBox(lo, hi, cols []float32, n, stride int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		in := byte(1)
		for c := range lo {
			v := cols[c*stride+i]
			if !(v >= lo[c] && v <= hi[c]) {
				in = 0
			}
		}
		out[i] = in
	}
	return out
}

func randSlab(rng *rand.Rand, dim, n, stride int) []float32 {
	slab := make([]float32, (dim-1)*stride+n)
	for i := range slab {
		slab[i] = float32(rng.NormFloat64() * 100)
	}
	return slab
}

func TestSqDistsF32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, impl := range []string{"go", "avx2"} {
		if !Available(impl) {
			continue
		}
		if err := SetImpl(impl); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			dim := 1 + rng.Intn(8)
			n := rng.Intn(70)
			stride := n + rng.Intn(5)
			if stride == 0 {
				stride = 1
			}
			slab := randSlab(rng, dim, n, stride)
			q := make([]float32, dim)
			for c := range q {
				q[c] = float32(rng.NormFloat64() * 100)
			}
			dst := make([]float32, n)
			SqDistsF32(dst, q, slab, n, stride)
			want := refSqDists(q, slab, n, stride)
			for i := range dst {
				if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
					t.Fatalf("impl=%s trial=%d dim=%d n=%d: dst[%d]=%x want %x",
						impl, trial, dim, n, i, math.Float32bits(dst[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
	resetImpl(t)
}

func TestPruneBoxMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, impl := range []string{"go", "avx2"} {
		if !Available(impl) {
			continue
		}
		if err := SetImpl(impl); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			dim := 1 + rng.Intn(8)
			n := rng.Intn(70)
			stride := n + rng.Intn(5)
			if stride == 0 {
				stride = 1
			}
			slab := randSlab(rng, dim, n, stride)
			lo := make([]float32, dim)
			hi := make([]float32, dim)
			for c := range lo {
				a := float32(rng.NormFloat64() * 100)
				b := float32(rng.NormFloat64() * 100)
				if a > b {
					a, b = b, a
				}
				lo[c], hi[c] = a, b
			}
			mask := make([]byte, n)
			PruneBox(mask, lo, hi, slab, n, stride)
			want := refPruneBox(lo, hi, slab, n, stride)
			for i := range mask {
				if mask[i] != want[i] {
					t.Fatalf("impl=%s trial=%d dim=%d n=%d: mask[%d]=%d want %d",
						impl, trial, dim, n, i, mask[i], want[i])
				}
			}
		}
	}
	resetImpl(t)
}

func TestMinSqDistToBox(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	cases := []struct {
		q    []float64
		want float64
	}{
		{[]float64{0.5, 0.5}, 0},           // inside
		{[]float64{0, 1}, 0},               // on the corner
		{[]float64{2, 0.5}, 1},             // right face
		{[]float64{-3, 0.5}, 9},            // left face
		{[]float64{2, 3}, 1 + 4},           // outside corner
		{[]float64{-1, -1}, 2},             // opposite corner
		{[]float64{0.25, -0.5}, 0.25},      // below
		{[]float64{1.5, 1.5}, 0.25 + 0.25}, // diagonal
	}
	for _, c := range cases {
		if got := MinSqDistToBox(c.q, lo, hi); got != c.want {
			t.Errorf("MinSqDistToBox(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestImplSelection(t *testing.T) {
	if !Available("go") {
		t.Fatal("pure-Go implementation must always be available")
	}
	if err := SetImpl("go"); err != nil {
		t.Fatal(err)
	}
	if Impl() != "go" {
		t.Fatalf("Impl() = %q after SetImpl(go)", Impl())
	}
	if err := SetImpl("neon"); err == nil {
		t.Fatal("SetImpl of an unknown implementation must fail")
	}
	if Available("avx2") {
		if err := SetImpl("avx2"); err != nil {
			t.Fatal(err)
		}
		if Impl() != "avx2" {
			t.Fatalf("Impl() = %q after SetImpl(avx2)", Impl())
		}
	} else if err := SetImpl("avx2"); err == nil {
		t.Fatal("SetImpl(avx2) must fail when unavailable")
	}
	resetImpl(t)
}

func TestZeroPointCallsAreNoops(t *testing.T) {
	// n == 0 must not touch (or validate) the slab at all.
	SqDistsF32(nil, []float32{1}, nil, 0, 0)
	PruneBox(nil, []float32{0}, []float32{1}, nil, 0, 0)
}

func TestCheckSlabPanics(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"zero-dim", func() {
			SqDistsF32(make([]float32, 4), nil, make([]float32, 4), 4, 4)
		}},
		{"stride<n", func() {
			SqDistsF32(make([]float32, 4), []float32{0}, make([]float32, 4), 4, 3)
		}},
		{"short-dst", func() {
			SqDistsF32(make([]float32, 3), []float32{0}, make([]float32, 4), 4, 4)
		}},
		{"short-slab", func() {
			SqDistsF32(make([]float32, 4), []float32{0, 0}, make([]float32, 7), 4, 4)
		}},
		{"prune-lo-hi-mismatch", func() {
			PruneBox(make([]byte, 4), []float32{0}, []float32{0, 1}, make([]float32, 4), 4, 4)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.call()
		})
	}
}

// resetImpl restores the init-time implementation choice so test order
// cannot leak a forced implementation into other tests.
func resetImpl(t *testing.T) {
	t.Helper()
	useAsm.Store(hasAVX2)
}
