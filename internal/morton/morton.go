// Package morton implements ParGeo's Morton (Z-order) spatial sort
// (Module 2): quantize each coordinate to b = floor(64/d) bits over the
// data bounding box, interleave the bits into a 64-bit code, and sort by
// code with the parallel radix sort. Morton order places spatially nearby
// points nearby in memory and is the standard preprocessing step for
// spatial locality (the paper's §6.3 discusses its role in the Zd-tree).
package morton

import (
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// BitsPerDim returns the number of quantization bits used per dimension for
// a d-dimensional code.
func BitsPerDim(dim int) int {
	if dim <= 0 {
		panic("morton: non-positive dimension")
	}
	b := 64 / dim
	if b > 21 {
		b = 21 // 3x21 = 63 bits is the conventional cap; finer adds nothing
	}
	return b
}

// quantize maps coordinate v on axis c to its cell index in [0, maxCell]
// (clamped to the box).
func quantize(v float64, box geom.Box, c int, maxCell uint64) uint64 {
	ext := box.Max[c] - box.Min[c]
	if ext <= 0 {
		return 0
	}
	f := (v - box.Min[c]) / ext
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	cell := uint64(f * float64(maxCell))
	if cell > maxCell {
		cell = maxCell
	}
	return cell
}

// interleave spreads bit k of cell to position k*dim+c of the code.
func interleave(code, cell uint64, bits, dim, c int) uint64 {
	for k := 0; k < bits; k++ {
		code |= ((cell >> uint(k)) & 1) << uint(k*dim+c)
	}
	return code
}

// Encode computes the Morton code of coordinates p inside box (coordinates
// are clamped to the box).
func Encode(p []float64, box geom.Box) uint64 {
	dim := len(p)
	bits := BitsPerDim(dim)
	maxCell := uint64(1)<<bits - 1
	var code uint64
	for c := 0; c < dim; c++ {
		code = interleave(code, quantize(p[c], box, c, maxCell), bits, dim, c)
	}
	return code
}

// EncodeF32 computes the Morton code of float32 coordinates p inside box.
// Quantization uses at most 21 bits per axis — well inside float32's 24-bit
// mantissa — so a point stored as float32 lands in the same cell as its
// float64 original whenever the rounding error does not cross a cell
// boundary; codes from the two representations differ by at most one cell
// per axis.
func EncodeF32(p []float32, box geom.Box) uint64 {
	dim := len(p)
	bits := BitsPerDim(dim)
	maxCell := uint64(1)<<bits - 1
	var code uint64
	for c := 0; c < dim; c++ {
		code = interleave(code, quantize(float64(p[c]), box, c, maxCell), bits, dim, c)
	}
	return code
}

// EncodeCols computes the Morton code of row i of a dimension-major float32
// column store: coordinate c of row i lives at cols[c*stride+i]. This is
// the layout the kd-tree leaf slabs and the engine's recent-write ring use,
// so routing stays strided reads with no row materialization.
func EncodeCols(cols []float32, stride, i, dim int, box geom.Box) uint64 {
	bits := BitsPerDim(dim)
	maxCell := uint64(1)<<bits - 1
	var code uint64
	for c := 0; c < dim; c++ {
		code = interleave(code, quantize(float64(cols[c*stride+i]), box, c, maxCell), bits, dim, c)
	}
	return code
}

// Codes computes the Morton code of every point, in parallel.
func Codes(pts geom.Points) []uint64 {
	n := pts.Len()
	box := geom.BoundingBoxAll(pts)
	codes := make([]uint64, n)
	parlay.For(n, 512, func(i int) {
		codes[i] = Encode(pts.At(i), box)
	})
	return codes
}

// Sort returns the point indices in Morton order (parallel radix sort on
// the codes).
func Sort(pts geom.Points) []int32 {
	n := pts.Len()
	codes := Codes(pts)
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	parlay.SortPairs(codes, idx)
	return idx
}

// SortPoints returns a new point buffer with the points permuted into
// Morton order.
func SortPoints(pts geom.Points) geom.Points {
	return pts.Gather(Sort(pts))
}
