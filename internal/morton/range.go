package morton

import (
	"math"
	mathbits "math/bits"

	"pargeo/internal/geom"
)

// Morton-range geometry: helpers that relate an interval of Morton codes to
// the region of space it covers. A code interval [lo, hi] is not a box — it
// is a union of axis-aligned cells along the Z-curve — but it decomposes
// into O(bits) *aligned* cells (code prefixes), and each aligned cell IS a
// box. These helpers perform that decomposition and derive conservative
// spatial predicates from it, which is what lets a Morton-sharded index
// prune whole shards against a query box or a k-NN radius.
//
// Conservativeness: Encode clamps points outside the quantization box to
// the boundary cells, and the float quantization itself can misplace a
// point by up to one cell due to rounding. Cell boxes therefore extend to
// ±inf where the cell touches the quantization box boundary and are padded
// by one cell width elsewhere, so every point a shard can possibly contain
// lies inside the shard's reported region. Pruning decisions built on these
// boxes can only over-approximate, never drop a point.

// TotalBits returns the number of significant bits in a d-dimensional
// Morton code (dim * BitsPerDim).
func TotalBits(dim int) int { return dim * BitsPerDim(dim) }

// MaxCode returns the largest d-dimensional Morton code.
func MaxCode(dim int) uint64 {
	tb := TotalBits(dim)
	if tb >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<tb - 1
}

// Cell is an aligned Morton cell: the set of codes sharing the bits of Code
// above the Level low bits (Code's Level low bits are zero). A cell is an
// axis-aligned box in space.
type Cell struct {
	Code  uint64
	Level int // number of free low bits; 0 = a single code
}

// cellEnd returns the last code of the cell, and whether the cell is
// representable (Level <= total bits and aligned).
func (c Cell) cellEnd() uint64 {
	if c.Level >= 64 {
		return ^uint64(0)
	}
	return c.Code + (uint64(1)<<c.Level - 1)
}

// RangeCells decomposes the inclusive code interval [lo, hi] into maximal
// aligned cells, in increasing code order. It returns at most
// 2*TotalBits(dim) cells; an empty interval (lo > hi) yields none.
func RangeCells(lo, hi uint64, dim int) []Cell {
	tb := TotalBits(dim)
	max := MaxCode(dim)
	if hi > max {
		hi = max
	}
	if lo > hi {
		return nil
	}
	var out []Cell
	l := lo
	for {
		// Largest alignment available at l, capped by the code width.
		s := tb
		if l != 0 {
			if tz := mathbits.TrailingZeros64(l); tz < s {
				s = tz
			}
		}
		// Shrink until the cell fits inside [l, hi].
		for s > 0 {
			end := Cell{Code: l, Level: s}.cellEnd()
			if end >= l && end <= hi {
				break
			}
			s--
		}
		c := Cell{Code: l, Level: s}
		out = append(out, c)
		end := c.cellEnd()
		if end >= hi {
			return out
		}
		l = end + 1
	}
}

// CellBox returns a conservative box containing every point that Encode
// (with quantization box world) can map into the cell. Sides touching the
// quantization boundary extend to ±inf (Encode clamps outside points into
// the boundary cells); interior sides are padded by one cell width to
// absorb float quantization rounding. A degenerate world extent in some
// dimension makes that dimension unbounded (every coordinate quantizes to
// cell 0 there).
func CellBox(c Cell, dim int, world geom.Box) geom.Box {
	bits := BitsPerDim(dim)
	maxCell := uint64(1)<<bits - 1
	out := geom.EmptyBox(dim)
	for d := 0; d < dim; d++ {
		// Coordinate bit k of dimension d lives at code bit k*dim + d.
		// Bits below the cell's free level range over all values.
		var minc, maxc uint64
		for k := 0; k < bits; k++ {
			p := k*dim + d
			if p < c.Level {
				maxc |= uint64(1) << k
			} else {
				b := (c.Code >> uint(p)) & 1
				minc |= b << k
				maxc |= b << k
			}
		}
		ext := world.Max[d] - world.Min[d]
		if !(ext > 0) {
			// Degenerate extent: Encode sends every coordinate to cell 0.
			if minc == 0 {
				out.Min[d], out.Max[d] = math.Inf(-1), math.Inf(1)
			} else {
				// No point can reach a nonzero cell: empty side.
				out.Min[d], out.Max[d] = math.Inf(1), math.Inf(-1)
			}
			continue
		}
		w := ext / float64(maxCell) // one cell width
		if minc == 0 {
			out.Min[d] = math.Inf(-1) // clamped underflow lands here
		} else {
			out.Min[d] = world.Min[d] + ext*(float64(minc)/float64(maxCell)) - w
		}
		if maxc == maxCell {
			out.Max[d] = math.Inf(1) // clamped overflow lands here
		} else {
			out.Max[d] = world.Min[d] + ext*(float64(maxc+1)/float64(maxCell)) + w
		}
	}
	return out
}

// cellEmpty reports whether the conservative cell box is empty (possible
// only under a degenerate world extent).
func cellEmpty(b geom.Box) bool {
	for d := range b.Min {
		if b.Min[d] > b.Max[d] {
			return true
		}
	}
	return false
}

// RangeBoxes returns the conservative boxes of the aligned cells covering
// the inclusive code interval [lo, hi] (empty cells dropped).
func RangeBoxes(lo, hi uint64, dim int, world geom.Box) []geom.Box {
	cells := RangeCells(lo, hi, dim)
	out := make([]geom.Box, 0, len(cells))
	for _, c := range cells {
		b := CellBox(c, dim, world)
		if !cellEmpty(b) {
			out = append(out, b)
		}
	}
	return out
}

// RangeBound returns one conservative box containing every point whose code
// lies in the inclusive interval [lo, hi] — the union bound of RangeBoxes.
// Looser than the cell list but O(dim) to test against.
func RangeBound(lo, hi uint64, dim int, world geom.Box) geom.Box {
	u := geom.EmptyBox(dim)
	for _, b := range RangeBoxes(lo, hi, dim, world) {
		u.Union(b)
	}
	return u
}

// BoxesIntersect reports whether any box of the set intersects box — the
// overlap predicate over a cached RangeBoxes result (a shard router keeps
// the decomposition precomputed per shard and calls this per query).
func BoxesIntersect(boxes []geom.Box, box geom.Box) bool {
	for _, b := range boxes {
		if b.Intersects(box) {
			return true
		}
	}
	return false
}

// BoxesMinSqDist returns the minimum squared distance from q to the box
// set (+inf for an empty set) — the distance bound over a cached
// RangeBoxes result.
func BoxesMinSqDist(boxes []geom.Box, q []float64) float64 {
	best := math.Inf(1)
	for _, b := range boxes {
		if d := b.SqDistToPoint(q); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best
}

// RangeOverlapsBox reports whether any point with a code in the inclusive
// interval [lo, hi] can lie inside box. Conservative: false guarantees the
// interval holds no point of the box; true may be a false positive.
func RangeOverlapsBox(lo, hi uint64, dim int, world, box geom.Box) bool {
	return BoxesIntersect(RangeBoxes(lo, hi, dim, world), box)
}

// RangeMinSqDist returns a lower bound on the squared distance from q to
// any point whose code lies in the inclusive interval [lo, hi] (+inf when
// the interval covers no representable point).
func RangeMinSqDist(lo, hi uint64, dim int, world geom.Box, q []float64) float64 {
	return BoxesMinSqDist(RangeBoxes(lo, hi, dim, world), q)
}
