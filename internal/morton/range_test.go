package morton

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/rng"
)

// TestRangeCellsCoverExactly: the aligned-cell decomposition of [lo, hi]
// must be ordered, contiguous, aligned, and cover exactly the interval.
func TestRangeCellsCoverExactly(t *testing.T) {
	r := rng.NewXoshiro256(7)
	for _, dim := range []int{1, 2, 3, 4, 5} {
		max := MaxCode(dim)
		tb := TotalBits(dim)
		for trial := 0; trial < 200; trial++ {
			a := r.Next64() & max
			b := r.Next64() & max
			if a > b {
				a, b = b, a
			}
			cells := RangeCells(a, b, dim)
			if len(cells) == 0 {
				t.Fatalf("dim %d: empty decomposition of [%d, %d]", dim, a, b)
			}
			if len(cells) > 2*tb {
				t.Fatalf("dim %d: %d cells for [%d, %d], want <= %d", dim, len(cells), a, b, 2*tb)
			}
			next := a
			for _, c := range cells {
				if c.Code != next {
					t.Fatalf("dim %d: cell starts at %d, want %d", dim, c.Code, next)
				}
				if c.Level < 64 && c.Code&(uint64(1)<<c.Level-1) != 0 {
					t.Fatalf("dim %d: cell %d not aligned to level %d", dim, c.Code, c.Level)
				}
				end := c.cellEnd()
				if end < c.Code || end > b {
					t.Fatalf("dim %d: cell [%d, %d] escapes [%d, %d]", dim, c.Code, end, a, b)
				}
				next = end + 1
			}
			if last := cells[len(cells)-1].cellEnd(); last != b {
				t.Fatalf("dim %d: decomposition ends at %d, want %d", dim, last, b)
			}
		}
	}
	if got := RangeCells(5, 4, 2); got != nil {
		t.Fatalf("empty interval decomposed to %v", got)
	}
}

// TestRangeCellsFullSpace: the whole code space must decompose into one cell,
// including dim=4 where the code occupies all 64 bits.
func TestRangeCellsFullSpace(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		cells := RangeCells(0, MaxCode(dim), dim)
		if len(cells) != 1 || cells[0].Code != 0 || cells[0].Level != TotalBits(dim) {
			t.Fatalf("dim %d: full-space decomposition %v", dim, cells)
		}
	}
}

// worldAndCodes builds a test universe: points inside (and some clamped
// outside) a world box, with their Morton codes.
func worldAndCodes(t *testing.T, dim int, n int, seed uint64) (geom.Points, geom.Box, []uint64) {
	t.Helper()
	pts := generators.UniformCube(n, dim, seed)
	world := geom.BoundingBoxAll(pts)
	// Displace a tail of points outside the world box so clamping is
	// exercised: their codes land in boundary cells.
	for i := n - n/10; i < n; i++ {
		p := pts.At(i)
		p[0] += 1e6
		if i%2 == 0 {
			p[dim-1] -= 1e6
		}
	}
	codes := make([]uint64, n)
	for i := 0; i < n; i++ {
		codes[i] = Encode(pts.At(i), world)
	}
	return pts, world, codes
}

// TestRangeOverlapsBoxConservative: whenever a point with a code inside the
// interval lies inside the query box, RangeOverlapsBox must say true (no
// false negatives — false positives are allowed by contract).
func TestRangeOverlapsBoxConservative(t *testing.T) {
	for _, dim := range []int{2, 3} {
		pts, world, codes := worldAndCodes(t, dim, 600, uint64(dim)*11+1)
		r := rng.NewXoshiro256(uint64(dim) * 101)
		for trial := 0; trial < 120; trial++ {
			lo := r.Next64() & MaxCode(dim)
			hi := r.Next64() & MaxCode(dim)
			if lo > hi {
				lo, hi = hi, lo
			}
			// Random query box around a random point.
			c := pts.At(int(r.Next64() % uint64(pts.Len())))
			box := geom.EmptyBox(dim)
			for d := 0; d < dim; d++ {
				w := r.Float64() * 40
				box.Min[d] = c[d] - w
				box.Max[d] = c[d] + w
			}
			any := false
			for i := 0; i < pts.Len(); i++ {
				if codes[i] >= lo && codes[i] <= hi && box.Contains(pts.At(i)) {
					any = true
					break
				}
			}
			if any && !RangeOverlapsBox(lo, hi, dim, world, box) {
				t.Fatalf("dim %d: RangeOverlapsBox false negative for [%d, %d]", dim, lo, hi)
			}
		}
	}
}

// TestRangeMinSqDistLowerBound: the reported bound must never exceed the
// true distance to any point whose code is in the interval.
func TestRangeMinSqDistLowerBound(t *testing.T) {
	for _, dim := range []int{2, 3} {
		pts, world, codes := worldAndCodes(t, dim, 600, uint64(dim)*13+2)
		r := rng.NewXoshiro256(uint64(dim) * 211)
		q := make([]float64, dim)
		for trial := 0; trial < 120; trial++ {
			lo := r.Next64() & MaxCode(dim)
			hi := r.Next64() & MaxCode(dim)
			if lo > hi {
				lo, hi = hi, lo
			}
			for d := range q {
				q[d] = r.Float64()*200 - 50
			}
			bound := RangeMinSqDist(lo, hi, dim, world, q)
			for i := 0; i < pts.Len(); i++ {
				if codes[i] < lo || codes[i] > hi {
					continue
				}
				if d := geom.SqDist(q, pts.At(i)); d < bound {
					t.Fatalf("dim %d: bound %v exceeds true distance %v", dim, bound, d)
				}
			}
		}
	}
}

// TestRangeBoundContainsMembers: every point is inside the union bound of
// any interval containing its code — including clamped outliers.
func TestRangeBoundContainsMembers(t *testing.T) {
	dim := 2
	pts, world, codes := worldAndCodes(t, dim, 400, 99)
	// Split the space at the median code, as a shard router would.
	mid := codes[len(codes)/2]
	low := RangeBound(0, mid, dim, world)
	high := RangeBound(mid+1, MaxCode(dim), dim, world)
	for i := 0; i < pts.Len(); i++ {
		b := low
		if codes[i] > mid {
			b = high
		}
		if !b.Contains(pts.At(i)) {
			t.Fatalf("point %d (code %d) outside its shard bound", i, codes[i])
		}
	}
}

// TestCellBoxConservativeDegenerateWorlds is the conservativeness
// differential for degenerate quantization boxes: for worlds with a
// zero-extent dimension, near-epsilon extents (down to subnormal widths),
// and healthy extents mixed in, EVERY point — in-world, clamped far
// outside, or sitting exactly on the degenerate axis value — must lie
// inside at least one conservative cell box of whichever code interval its
// Morton code falls in. A violation means a Morton-sharded router could
// prune the shard actually holding the point.
func TestCellBoxConservativeDegenerateWorlds(t *testing.T) {
	const dim = 2
	worlds := []geom.Box{
		{Min: []float64{0, 5}, Max: []float64{10, 5}},           // zero extent in y
		{Min: []float64{0, 5}, Max: []float64{10, 5 + 1e-9}},    // near-epsilon extent
		{Min: []float64{0, 5}, Max: []float64{10, 5 + 1e-300}},  // subnormal cell width
		{Min: []float64{-3, -3}, Max: []float64{-3, -3}},        // zero extent in both
		{Min: []float64{0, -1e12}, Max: []float64{1e-12, 1e12}}, // epsilon x, huge y
	}
	r := rng.NewXoshiro256(321)
	for wi, world := range worlds {
		// Probe points: inside the box, on its boundary, just outside, and
		// far outside (clamped); all combinations per axis.
		var probes []([]float64)
		offsets := []float64{0, 0.25, 0.5, 1, -0.1, 1.1, -1e6, 1e6, 1e-320}
		for _, fx := range offsets {
			for _, fy := range offsets {
				p := []float64{
					world.Min[0] + fx*(world.Max[0]-world.Min[0]+1e-30),
					world.Min[1] + fy*(world.Max[1]-world.Min[1]+1e-30),
				}
				// Also absolute displacements, which dominate when the
				// extent itself is tiny or zero.
				probes = append(probes, p,
					[]float64{world.Min[0] + fx, world.Min[1] + fy})
			}
		}
		max := MaxCode(dim)
		for trial := 0; trial < 50; trial++ {
			// A random shard-style cut of the code space.
			a := r.Next64() & max
			b := r.Next64() & max
			if a > b {
				a, b = b, a
			}
			intervals := [][2]uint64{{0, a}, {a, b}, {b, max}}
			for _, iv := range intervals {
				boxes := RangeBoxes(iv[0], iv[1], dim, world)
				for pi, p := range probes {
					code := Encode(p, world)
					if code < iv[0] || code > iv[1] {
						continue
					}
					in := false
					for _, bx := range boxes {
						if bx.Contains(p) {
							in = true
							break
						}
					}
					if !in {
						t.Fatalf("world %d probe %d %v (code %d) escapes the conservative boxes of [%d, %d]",
							wi, pi, p, code, iv[0], iv[1])
					}
					// The distance lower bound must never exceed the true
					// distance to a member point (zero: p is a member).
					if d := BoxesMinSqDist(boxes, p); d != 0 {
						t.Fatalf("world %d probe %d: minSqDist %v to an interval containing the point", wi, pi, d)
					}
				}
			}
		}
	}
}

// TestCellBoxDegenerateExtent: a world box flat in one dimension must yield
// unbounded cell boxes there (every coordinate quantizes to cell 0), and
// empty boxes for unreachable cells.
func TestCellBoxDegenerateExtent(t *testing.T) {
	world := geom.Box{Min: []float64{0, 5}, Max: []float64{10, 5}} // flat in y
	cells := RangeCells(0, MaxCode(2), 2)
	b := CellBox(cells[0], 2, world)
	if !math.IsInf(b.Min[1], -1) || !math.IsInf(b.Max[1], 1) {
		t.Fatalf("degenerate dimension not unbounded: %v", b)
	}
	// A cell requiring a nonzero y-cell is unreachable.
	unreachable := Cell{Code: 2, Level: 0} // y bit set
	if eb := CellBox(unreachable, 2, world); !cellEmpty(eb) {
		t.Fatalf("unreachable cell has non-empty box: %v", eb)
	}
	if RangeOverlapsBox(2, 2, 2, world, geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}) {
		t.Fatal("unreachable cell overlaps universe")
	}
}
