package morton

import (
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestBitsPerDim(t *testing.T) {
	cases := map[int]int{1: 21, 2: 21, 3: 21, 4: 16, 5: 12, 7: 9, 8: 8}
	for dim, want := range cases {
		if got := BitsPerDim(dim); got != want {
			t.Fatalf("BitsPerDim(%d) = %d, want %d", dim, got, want)
		}
	}
}

func TestEncodeOrdering2D(t *testing.T) {
	// In Z-order, the four quadrant representatives sort as
	// (lo,lo) < (hi,lo) < (lo,hi) < (hi,hi) with x as bit 0.
	box := geom.EmptyBox(2)
	box.Expand([]float64{0, 0})
	box.Expand([]float64{1, 1})
	ll := Encode([]float64{0.1, 0.1}, box)
	hl := Encode([]float64{0.9, 0.1}, box)
	lh := Encode([]float64{0.1, 0.9}, box)
	hh := Encode([]float64{0.9, 0.9}, box)
	if !(ll < hl && hl < lh && lh < hh) {
		t.Fatalf("quadrant order wrong: %x %x %x %x", ll, hl, lh, hh)
	}
}

func TestEncodeClamps(t *testing.T) {
	box := geom.EmptyBox(2)
	box.Expand([]float64{0, 0})
	box.Expand([]float64{1, 1})
	out := Encode([]float64{-5, 7}, box)
	in := Encode([]float64{0, 1}, box)
	if out != in {
		t.Fatalf("clamping failed: %x vs %x", out, in)
	}
}

func TestSortIsPermutationAndOrdered(t *testing.T) {
	for _, dim := range []int{2, 3, 5} {
		pts := generators.UniformCube(10000, dim, uint64(dim)+40)
		idx := Sort(pts)
		if len(idx) != 10000 {
			t.Fatalf("dim=%d: %d indices", dim, len(idx))
		}
		seen := make([]bool, 10000)
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("dim=%d: duplicate index %d", dim, i)
			}
			seen[i] = true
		}
		// Codes along the output order must be non-decreasing.
		box := geom.BoundingBoxAll(pts)
		prev := uint64(0)
		for k, i := range idx {
			c := Encode(pts.At(int(i)), box)
			if c < prev {
				t.Fatalf("dim=%d: codes out of order at %d", dim, k)
			}
			prev = c
		}
	}
}

func TestSortMatchesComparatorSort(t *testing.T) {
	pts := generators.UniformCube(5000, 3, 50)
	got := Sort(pts)
	box := geom.BoundingBoxAll(pts)
	want := make([]int32, 5000)
	for i := range want {
		want[i] = int32(i)
	}
	codes := make([]uint64, 5000)
	for i := range codes {
		codes[i] = Encode(pts.At(i), box)
	}
	sort.SliceStable(want, func(a, b int) bool { return codes[want[a]] < codes[want[b]] })
	for i := range got {
		if codes[got[i]] != codes[want[i]] {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func TestMortonLocality(t *testing.T) {
	// Spatial locality: the average distance between Morton-consecutive
	// points should be much smaller than between random pairs.
	pts := generators.UniformCube(20000, 2, 60)
	ordered := SortPoints(pts)
	sumAdj := 0.0
	for i := 1; i < ordered.Len(); i++ {
		sumAdj += ordered.SqDist(i-1, i)
	}
	avgAdj := sumAdj / float64(ordered.Len()-1)
	sumRand := 0.0
	for i := 0; i < 1000; i++ {
		sumRand += pts.SqDist(i, (i*7919+13)%20000)
	}
	avgRand := sumRand / 1000
	if avgAdj*10 > avgRand {
		t.Fatalf("Morton order shows no locality: adj %.2f vs rand %.2f", avgAdj, avgRand)
	}
}

func TestEncodeF32MatchesEncode(t *testing.T) {
	// A float32 round-trip of a coordinate moves it by at most one
	// quantization cell per axis, so the f32 code must equal the f64 code
	// whenever re-encoding the rounded coordinates as float64 does.
	for _, dim := range []int{2, 3, 5} {
		pts := generators.UniformCube(2000, dim, uint64(60+dim))
		box := geom.BoundingBoxAll(pts)
		p32 := make([]float32, dim)
		p64 := make([]float64, dim)
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i)
			for c := 0; c < dim; c++ {
				p32[c] = float32(p[c])
				p64[c] = float64(p32[c])
			}
			if got, want := EncodeF32(p32, box), Encode(p64, box); got != want {
				t.Fatalf("dim %d point %d: EncodeF32 %#x, Encode of rounded coords %#x", dim, i, got, want)
			}
		}
	}
}

func TestEncodeColsMatchesEncodeF32(t *testing.T) {
	// EncodeCols reads the dim-major layout: coordinate c of row i at
	// cols[c*stride+i]. Every row must produce the same code as the
	// row-materialized EncodeF32.
	for _, dim := range []int{2, 3, 5} {
		pts := generators.UniformCube(500, dim, uint64(70+dim))
		box := geom.BoundingBoxAll(pts)
		stride := pts.Len() + 3 // stride larger than row count must not matter
		cols := make([]float32, stride*dim)
		row := make([]float32, dim)
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i)
			for c := 0; c < dim; c++ {
				cols[c*stride+i] = float32(p[c])
			}
		}
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i)
			for c := 0; c < dim; c++ {
				row[c] = float32(p[c])
			}
			if got, want := EncodeCols(cols, stride, i, dim, box), EncodeF32(row, box); got != want {
				t.Fatalf("dim %d row %d: EncodeCols %#x, EncodeF32 %#x", dim, i, got, want)
			}
		}
	}
}

func TestEncodeF32Clamps(t *testing.T) {
	box := geom.Box{Min: []float64{0, 0}, Max: []float64{1, 1}}
	lo := EncodeF32([]float32{-5, -5}, box)
	hi := EncodeF32([]float32{9, 9}, box)
	if lo != Encode([]float64{0, 0}, box) || hi != Encode([]float64{1, 1}, box) {
		t.Fatalf("EncodeF32 does not clamp to the box: lo %#x hi %#x", lo, hi)
	}
}
