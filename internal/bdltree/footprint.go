package bdltree

import "unsafe"

// MemoryFootprint estimates the heap bytes of the tree's storage — point
// buffers, global-id and permutation arrays, vEB node arrays, tombstone
// bitmaps, and leaf-order coordinate caches — that are not already
// recorded in seen, and records them. Passing one seen map across the
// versions of a persistent chain therefore measures the chain's total
// without double-counting shared structure: a version derived with
// PersistentInsert/PersistentDelete shares untouched arrays with its
// parent, and those arrays are charged to whichever version was visited
// first. Keys added to seen are opaque identity tokens (internal array
// pointers); callers should treat the map as a black box seeded empty.
//
// The estimate covers the dominant O(n)-sized arrays and ignores
// fixed-size headers, so it is a floor — accurate to within a few percent
// for trees past a few hundred points.
func (t *Tree) MemoryFootprint(seen map[any]struct{}) uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	// charge counts one array once across all versions sharing it: the
	// identity token is the array's first-element pointer, which survives
	// reslicing and is shared exactly when the storage is.
	charge := func(key any, bytes int) {
		if key == nil || bytes == 0 {
			return
		}
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		total += uint64(bytes)
	}
	count := func(vt *vebTree) {
		if vt == nil {
			return
		}
		charge(unsafe.SliceData(vt.pts.Data), len(vt.pts.Data)*8)
		charge(unsafe.SliceData(vt.orig), len(vt.orig)*4)
		charge(unsafe.SliceData(vt.idx), len(vt.idx)*4)
		charge(unsafe.SliceData(vt.nodes), len(vt.nodes)*int(unsafe.Sizeof(vnode{})))
		charge(unsafe.SliceData(vt.dead), len(vt.dead))
		charge(unsafe.SliceData(vt.coordsF32), len(vt.coordsF32)*4)
	}
	count(t.buffer)
	for _, vt := range t.trees {
		count(vt)
	}
	return total
}
