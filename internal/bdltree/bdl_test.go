package bdltree

import (
	"math"
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// bruteKNN is the oracle: exact k nearest among (coords, gids), excluding
// one id.
func bruteKNN(coords geom.Points, gids []int32, q []float64, k int, exclude int32) []int32 {
	type cand struct {
		id int32
		d  float64
	}
	var cs []cand
	for i := 0; i < coords.Len(); i++ {
		if gids[i] == exclude {
			continue
		}
		cs = append(cs, cand{gids[i], geom.SqDist(q, coords.At(i))})
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].d != cs[b].d {
			return cs[a].d < cs[b].d
		}
		return cs[a].id < cs[b].id
	})
	if len(cs) > k {
		cs = cs[:k]
	}
	out := make([]int32, len(cs))
	for i, c := range cs {
		out[i] = c.id
	}
	return out
}

// knnDistancesMatch compares result distance multisets (ties may resolve to
// different ids).
func knnDistancesMatch(coords geom.Points, byID map[int32][]float64, q []float64, got, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	gd := make([]float64, len(got))
	wd := make([]float64, len(want))
	for i := range got {
		gd[i] = geom.SqDist(q, byID[got[i]])
		wd[i] = geom.SqDist(q, byID[want[i]])
	}
	sort.Float64s(gd)
	sort.Float64s(wd)
	for i := range gd {
		if math.Abs(gd[i]-wd[i]) > 1e-9*(1+wd[i]) {
			return false
		}
	}
	return true
}

func idMap(coords geom.Points, gids []int32) map[int32][]float64 {
	m := make(map[int32][]float64, len(gids))
	for i, g := range gids {
		m[g] = coords.At(i)
	}
	return m
}

func trees() []struct {
	name string
	mk   func(dim int) Dynamic
} {
	return []struct {
		name string
		mk   func(dim int) Dynamic
	}{
		{"BDL-object", func(d int) Dynamic { return New(d, Options{Split: ObjectMedian, BufferSize: 64}) }},
		{"BDL-spatial", func(d int) Dynamic { return New(d, Options{Split: SpatialMedian, BufferSize: 64}) }},
		{"B1-object", func(d int) Dynamic { return NewB1(d, ObjectMedian) }},
		{"B2-object", func(d int) Dynamic { return NewB2(d, ObjectMedian) }},
		{"B2-spatial", func(d int) Dynamic { return NewB2(d, SpatialMedian) }},
	}
}

func TestInsertThenKNNMatchesBrute(t *testing.T) {
	for _, dim := range []int{2, 5} {
		pts := generators.UniformCube(3000, dim, uint64(dim))
		for _, tc := range trees() {
			tr := tc.mk(dim)
			ids := tr.Insert(pts)
			if tr.Size() != 3000 {
				t.Fatalf("%s: size %d after insert", tc.name, tr.Size())
			}
			m := idMap(pts, ids)
			queries := pts.Slice(0, 50)
			got := tr.KNN(queries, 5, ids[:50])
			for i := 0; i < 50; i++ {
				want := bruteKNN(pts, ids, queries.At(i), 5, ids[i])
				if !knnDistancesMatch(pts, m, queries.At(i), got[i], want) {
					t.Fatalf("%s d=%d: knn mismatch at query %d: got %v want %v",
						tc.name, dim, i, got[i], want)
				}
			}
		}
	}
}

func TestBatchInsertIncremental(t *testing.T) {
	dim := 3
	all := generators.UniformCube(2000, dim, 7)
	for _, tc := range trees() {
		tr := tc.mk(dim)
		var ids []int32
		for b := 0; b < 10; b++ {
			batch := all.Slice(b*200, (b+1)*200)
			ids = append(ids, tr.Insert(batch)...)
		}
		if tr.Size() != 2000 {
			t.Fatalf("%s: size %d after 10 batches", tc.name, tr.Size())
		}
		m := idMap(all, ids)
		queries := all.Slice(0, 30)
		got := tr.KNN(queries, 3, ids[:30])
		for i := range got {
			want := bruteKNN(all, ids, queries.At(i), 3, ids[i])
			if !knnDistancesMatch(all, m, queries.At(i), got[i], want) {
				t.Fatalf("%s: incremental knn mismatch at %d", tc.name, i)
			}
		}
	}
}

func TestDeleteThenKNN(t *testing.T) {
	dim := 2
	pts := generators.UniformCube(1000, dim, 9)
	for _, tc := range trees() {
		tr := tc.mk(dim)
		ids := tr.Insert(pts)
		// Delete the first 300 points by coordinates.
		removed := tr.Delete(pts.Slice(0, 300))
		if removed != 300 {
			t.Fatalf("%s: removed %d, want 300", tc.name, removed)
		}
		if tr.Size() != 700 {
			t.Fatalf("%s: size %d after delete", tc.name, tr.Size())
		}
		// Queries must only ever return surviving points.
		rest := pts.Slice(300, 1000)
		restIDs := ids[300:]
		m := idMap(rest, restIDs)
		queries := rest.Slice(0, 30)
		got := tr.KNN(queries, 4, restIDs[:30])
		for i := range got {
			want := bruteKNN(rest, restIDs, queries.At(i), 4, restIDs[i])
			if !knnDistancesMatch(rest, m, queries.At(i), got[i], want) {
				t.Fatalf("%s: post-delete knn mismatch at %d: got %v want %v",
					tc.name, i, got[i], want)
			}
		}
	}
}

func TestBDLLogStructure(t *testing.T) {
	// Figure 7's scenario with X = 64: inserting X, then X+1, then X+1,
	// then X-1 points walks the bitmask through 1, 10, 11, 100.
	x := 64
	tr := New(2, Options{Split: ObjectMedian, BufferSize: x})
	mk := func(n int, seed uint64) geom.Points { return generators.UniformCube(n, 2, seed) }

	tr.Insert(mk(x, 1)) // F = 001, buffer empty
	if got := tr.TreeSizes(); got[0] != 0 || got[1] != x {
		t.Fatalf("after X inserts: sizes %v", got)
	}
	tr.Insert(mk(x+1, 2)) // 1 in buffer, tree0 -> tree1
	if got := tr.TreeSizes(); got[0] != 1 || got[1] != 0 || got[2] != 2*x {
		t.Fatalf("after X+1 inserts: sizes %v", got)
	}
	tr.Insert(mk(x+1, 3)) // 2 in buffer, tree0 rebuilt, tree1 intact
	if got := tr.TreeSizes(); got[0] != 2 || got[1] != x || got[2] != 2*x {
		t.Fatalf("after 2nd X+1 inserts: sizes %v", got)
	}
	tr.Insert(mk(x-1, 4)) // buffer fills: trees 0,1 -> tree 2, 1 point left in buffer
	got := tr.TreeSizes()
	if got[0] != 1 || got[1] != 0 || got[2] != 0 || len(got) < 4 || got[3] != 4*x {
		t.Fatalf("after X-1 inserts: sizes %v (want buffer=1, tree2=%d per Fig. 7d)", got, 4*x)
	}
}

func TestBDLDeleteRebalance(t *testing.T) {
	x := 64
	tr := New(2, Options{Split: ObjectMedian, BufferSize: x})
	pts := generators.UniformCube(4*x, 2, 5)
	tr.Insert(pts)
	// Tree 2 holds 4x points. Deleting 3x of them drops it below half
	// capacity (2x), which must trigger a gather + reinsert.
	tr.Delete(pts.Slice(0, 3*x))
	if tr.Size() != x {
		t.Fatalf("size %d, want %d", tr.Size(), x)
	}
	sizes := tr.TreeSizes()
	// The surviving x points must have moved into tree 0 (capacity x).
	if len(sizes) < 2 || sizes[1] != x {
		t.Fatalf("rebalance sizes %v, want tree0 = %d", sizes, x)
	}
	if len(sizes) >= 4 && sizes[3] != 0 {
		t.Fatalf("tree2 should be empty after rebalance: %v", sizes)
	}
}

func TestDeleteEverything(t *testing.T) {
	pts := generators.UniformCube(500, 3, 6)
	for _, tc := range trees() {
		tr := tc.mk(3)
		tr.Insert(pts)
		if got := tr.Delete(pts); got != 500 {
			t.Fatalf("%s: deleted %d, want 500", tc.name, got)
		}
		if tr.Size() != 0 {
			t.Fatalf("%s: size %d after full delete", tc.name, tr.Size())
		}
		// Re-insert works after emptying.
		tr.Insert(pts.Slice(0, 100))
		if tr.Size() != 100 {
			t.Fatalf("%s: size %d after re-insert", tc.name, tr.Size())
		}
	}
}

func TestVEBOrderIsPermutation(t *testing.T) {
	for l := 1; l <= 12; l++ {
		tab := vebOrder(l)
		n := 1<<l - 1
		seen := make([]bool, n)
		for h := 1; h <= n; h++ {
			s := tab[h]
			if s < 0 || int(s) >= n || seen[s] {
				t.Fatalf("l=%d: bad slot %d for heap %d", l, s, h)
			}
			seen[s] = true
		}
		// Root is always laid out first.
		if tab[1] != 0 {
			t.Fatalf("l=%d: root slot %d", l, tab[1])
		}
	}
}

func TestVEBOrderRecursiveContiguity(t *testing.T) {
	// For l = 4 (lb = lt = 2): top 3 nodes occupy slots 0..2 and each of
	// the 4 bottom subtrees occupies a contiguous 3-slot block — the
	// layout of Figure 13.
	tab := vebOrder(4)
	if tab[1] != 0 || tab[2] != 1 || tab[3] != 2 {
		t.Fatalf("top tree slots: %d %d %d", tab[1], tab[2], tab[3])
	}
	for j := 0; j < 4; j++ {
		root := 4 + j
		base := tab[root]
		if base != int32(3+3*j) {
			t.Fatalf("bottom subtree %d root slot = %d, want %d", j, base, 3+3*j)
		}
		if tab[2*root] != base+1 || tab[2*root+1] != base+2 {
			t.Fatalf("bottom subtree %d children at %d,%d", j, tab[2*root], tab[2*root+1])
		}
	}
}

func TestMixedWorkload(t *testing.T) {
	// Interleaved inserts and deletes with continuous correctness checks.
	dim := 3
	all := generators.UniformCube(3000, dim, 12)
	for _, tc := range trees() {
		tr := tc.mk(dim)
		live := map[int32][]float64{}
		ids := tr.Insert(all.Slice(0, 1000))
		for i, id := range ids {
			live[id] = all.At(i)
		}
		tr.Delete(all.Slice(200, 500)) // delete 300
		for i := 200; i < 500; i++ {
			delete(live, ids[i])
		}
		ids2 := tr.Insert(all.Slice(1000, 2000))
		for i, id := range ids2 {
			live[id] = all.At(1000 + i)
		}
		if tr.Size() != len(live) {
			t.Fatalf("%s: size %d, want %d", tc.name, tr.Size(), len(live))
		}
		// Validate a few queries against the live map.
		liveCoords := geom.NewPoints(len(live), dim)
		liveIDs := make([]int32, 0, len(live))
		k := 0
		for id, c := range live {
			liveCoords.Set(k, c)
			liveIDs = append(liveIDs, id)
			k++
		}
		q := all.Slice(2000, 2020)
		got := tr.KNN(q, 3, nil)
		m := idMap(liveCoords, liveIDs)
		for i := range got {
			want := bruteKNN(liveCoords, liveIDs, q.At(i), 3, -1)
			if !knnDistancesMatch(liveCoords, m, q.At(i), got[i], want) {
				t.Fatalf("%s: mixed workload knn mismatch at %d", tc.name, i)
			}
		}
	}
}
