package bdltree

import (
	"testing"

	"pargeo/internal/geom"
)

// TestSpatialMedianOnLine: all points on a diagonal line makes spatial
// splits maximally uneven; the vEB builder's object-median fallback must
// keep the trees usable and queries exact.
func TestSpatialMedianOnLine(t *testing.T) {
	n := 2000
	pts := geom.NewPoints(n, 5)
	for i := 0; i < n; i++ {
		v := float64(i)
		pts.Set(i, []float64{v, v, v, v, v})
	}
	tr := New(5, Options{Split: SpatialMedian, BufferSize: 64})
	ids := tr.Insert(pts)
	got := tr.KNN(pts.Slice(0, 10), 2, ids[:10])
	for i := 0; i < 10; i++ {
		// On the line, the 2 nearest of point i are i-1, i+1 (or the two
		// successors at the ends).
		for _, id := range got[i] {
			d := int(id) - i
			if d < 0 {
				d = -d
			}
			if d == 0 || d > 2 {
				t.Fatalf("query %d returned %d", i, id)
			}
		}
	}
}

// TestManyIdenticalPoints: duplicates must be storable, queryable, and
// deletable.
func TestManyIdenticalPoints(t *testing.T) {
	n := 300
	pts := geom.NewPoints(n, 2)
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{7, 7})
	}
	for _, tc := range trees() {
		tr := tc.mk(2)
		tr.Insert(pts)
		if tr.Size() != n {
			t.Fatalf("%s: size %d", tc.name, tr.Size())
		}
		q := geom.Points{Dim: 2, Data: []float64{7, 7}}
		res := tr.KNN(q, 5, nil)
		if len(res[0]) != 5 {
			t.Fatalf("%s: got %d neighbors", tc.name, len(res[0]))
		}
		// Deleting the coordinate removes every copy.
		if got := tr.Delete(q); got != n {
			t.Fatalf("%s: deleted %d, want %d", tc.name, got, n)
		}
	}
}

// TestAlternatingInsertDelete stresses the bitmask/rebalance machinery
// with a see-saw workload.
func TestAlternatingInsertDelete(t *testing.T) {
	tr := New(2, Options{BufferSize: 32})
	total := 0
	for round := 0; round < 30; round++ {
		batchN := 17 + round*3
		pts := geom.NewPoints(batchN, 2)
		for i := 0; i < batchN; i++ {
			pts.Set(i, []float64{float64(round*1000 + i), float64(i)})
		}
		tr.Insert(pts)
		total += batchN
		if round%3 == 2 {
			del := pts.Slice(0, batchN/2)
			removed := tr.Delete(del)
			if removed != batchN/2 {
				t.Fatalf("round %d: removed %d, want %d", round, removed, batchN/2)
			}
			total -= removed
		}
		if tr.Size() != total {
			t.Fatalf("round %d: size %d, want %d", round, tr.Size(), total)
		}
	}
	// Structure sanity: tree sizes are within capacity.
	sizes := tr.TreeSizes()
	if sizes[0] >= 32 {
		t.Fatalf("buffer overflows X: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > 32<<(i-1) {
			t.Fatalf("tree %d exceeds capacity: %v", i-1, sizes)
		}
	}
}
