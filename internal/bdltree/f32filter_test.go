package bdltree

import (
	"fmt"
	"testing"

	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// Differential tests for the float32 leaf filter in the BDL-tree: the
// shared-buffer k-NN protocol re-arms the filter per static tree (each tree
// has its own magnitude gate), and tombstoned points must never be counted
// by the filter's eager threshold. As in kdtree, the filter only discards —
// survivors are re-verified in float64 — so answers are exact.

// TestBDLF32NearTies drives a multi-tree BDL structure (several insert
// batches, then a deletion creating tombstones) with distance gaps of
// ~1e-12 at magnitude ~1000, far below float32 resolution. Returned
// distances must be the exact float64 ranking.
func TestBDLF32NearTies(t *testing.T) {
	const (
		dim  = 3
		base = 1000.0
		gap  = 1e-12
	)
	tr := New(dim, Options{BufferSize: 16})
	m := &oracle.LiveSet{Dim: dim}
	row := make([]float64, dim)
	mk := func(i int) []float64 {
		off := float64(i) * gap
		if i%8 == 7 {
			off = float64(i-1) * gap // exact duplicate of predecessor
		}
		for c := 0; c < dim; c++ {
			row[c] = 0
		}
		row[i%dim] = base + off
		return row
	}
	// Three batches -> buffer tree + multiple static trees.
	for b := 0; b < 3; b++ {
		batch := geom.NewPoints(24, dim)
		for i := 0; i < 24; i++ {
			batch.Set(i, mk(b*24+i))
		}
		ids := tr.Insert(batch)
		m.Insert(ids, batch)
	}
	// Tombstone a slice of the points (delete-by-coordinates).
	dead := geom.NewPoints(8, dim)
	for i := 0; i < 8; i++ {
		dead.Set(i, mk(3*i))
	}
	tr.Delete(dead)
	m.Remove(dead)

	live := m.Points()
	probes := geom.NewPoints(2, dim)
	probes.Set(0, make([]float64, dim))
	probes.Set(1, mk(30))
	for _, k := range []int{1, 5, 16, 40} {
		res := tr.KNN(probes, k, nil)
		for qi := 0; qi < probes.Len(); qi++ {
			q := probes.At(qi)
			wantD := oracle.KNNDists(live, q, k, -1)
			lbl := fmt.Sprintf("k%d/q%d", k, qi)
			if len(res[qi]) != len(wantD) {
				t.Fatalf("%s: got %d neighbors, oracle %d", lbl, len(res[qi]), len(wantD))
			}
			for j, gid := range res[qi] {
				c := m.CoordsOf(gid)
				if c == nil {
					t.Fatalf("%s: returned dead/unknown gid %d", lbl, gid)
				}
				if d := geom.SqDist(q, c); d != wantD[j] {
					t.Fatalf("%s: dist[%d] = %.17g, oracle %.17g", lbl, j, d, wantD[j])
				}
			}
		}
	}
}

// TestBDLF32LargeCoordFallback pins the per-tree magnitude gate: a tree
// whose coordinates exceed the float32-safe bound answers through the exact
// float64 scan, and mixing such a tree with filtered trees in one sharded
// query stays exact (the shared buffer is re-armed per tree).
func TestBDLF32LargeCoordFallback(t *testing.T) {
	const dim = 2
	tr := New(dim, Options{BufferSize: 8})
	m := &oracle.LiveSet{Dim: dim}
	small := geom.NewPoints(16, dim)
	for i := 0; i < 16; i++ {
		small.Set(i, []float64{float64(i), float64(i % 5)})
	}
	big := geom.NewPoints(16, dim)
	for i := 0; i < 16; i++ {
		big.Set(i, []float64{1e30 * float64(i), -1e29 * float64(i%7)})
	}
	ids := tr.Insert(small)
	m.Insert(ids, small)
	ids = tr.Insert(big)
	m.Insert(ids, big)

	live := m.Points()
	probes := geom.NewPoints(2, dim)
	probes.Set(0, []float64{3, 3})
	probes.Set(1, []float64{5e30, 0})
	for _, k := range []int{1, 4, 10} {
		res := tr.KNN(probes, k, nil)
		for qi := 0; qi < probes.Len(); qi++ {
			q := probes.At(qi)
			wantD := oracle.KNNDists(live, q, k, -1)
			for j, gid := range res[qi] {
				if d := geom.SqDist(q, m.CoordsOf(gid)); d != wantD[j] {
					t.Fatalf("k%d/q%d: dist[%d] = %v, oracle %v", k, qi, j, d, wantD[j])
				}
			}
		}
	}
}
