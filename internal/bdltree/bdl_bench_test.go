package bdltree

import (
	"fmt"
	"testing"

	"pargeo/internal/generators"
)

func BenchmarkConstruction(b *testing.B) {
	pts := generators.UniformCube(100000, 5, 1)
	variants := []struct {
		name string
		mk   func() Dynamic
	}{
		{"BDL", func() Dynamic { return New(5, Options{}) }},
		{"B1", func() Dynamic { return NewB1(5, ObjectMedian) }},
		{"B2", func() Dynamic { return NewB2(5, ObjectMedian) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := v.mk()
				tr.Insert(pts)
			}
		})
	}
}

func BenchmarkBatchInsert(b *testing.B) {
	pts := generators.UniformCube(100000, 5, 2)
	batch := pts.Len() / 10
	for _, x := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("BDL/X=%d", x), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := New(5, Options{BufferSize: x})
				for j := 0; j < 10; j++ {
					tr.Insert(pts.Slice(j*batch, (j+1)*batch))
				}
			}
		})
	}
}

func BenchmarkKNNOverTrees(b *testing.B) {
	// k-NN cost vs the number of live static trees: insert in batch
	// patterns that leave 1 vs many trees.
	pts := generators.UniformCube(60000, 3, 3)
	b.Run("one-tree", func(b *testing.B) {
		tr := New(3, Options{BufferSize: 1024})
		ids := tr.Insert(pts.Slice(0, 1<<15)) // 32768 = one tree exactly... roughly
		q := pts.Slice(0, 5000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.KNN(q, 5, ids[:5000])
		}
	})
	b.Run("many-trees", func(b *testing.B) {
		tr := New(3, Options{BufferSize: 1024})
		var ids []int32
		for j := 0; j*6000 < (1 << 15); j++ {
			lo := j * 6000
			hi := lo + 6000
			if hi > 1<<15 {
				hi = 1 << 15
			}
			ids = append(ids, tr.Insert(pts.Slice(lo, hi))...)
		}
		q := pts.Slice(0, 5000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.KNN(q, 5, ids[:5000])
		}
	})
}

func BenchmarkVEBBuild(b *testing.B) {
	pts := generators.UniformCube(100000, 3, 4)
	ids := make([]int32, pts.Len())
	for i := range ids {
		ids[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := pts.Gather(ids)
		newVEBTree(cp, ids, ObjectMedian)
	}
}
