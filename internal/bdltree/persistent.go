package bdltree

import "pargeo/internal/geom"

// Persistent (copy-on-write) batch updates.
//
// The logarithmic method makes the BDL-tree naturally persistent: a batch
// insertion only ever *reads* the surviving static trees (it destroys some,
// builds new ones, and leaves the rest untouched), and a batch deletion's
// only in-place writes are to the per-tree tombstone bitmaps. PersistentInsert
// and PersistentDelete exploit this to produce a brand-new *Tree that shares
// every untouched vebTree — node arrays, point copies, index permutations and
// global ids included — with the receiver, which stays fully queryable and
// immutable. One update therefore copies O(live points of rebuilt trees)
// for an insertion and O(n/64) bitmap words for a deletion, never the whole
// structure.
//
// This is the storage layer of internal/engine's snapshot protocol: readers
// query a published *Tree while the single committer derives the next one
// from it and installs it with an atomic pointer swap.

// shallowClone copies the Tree header and the trees slice; the vebTrees
// themselves are shared with the receiver.
func (t *Tree) shallowClone() *Tree {
	return &Tree{
		dim:    t.dim,
		x:      t.x,
		split:  t.split,
		buffer: t.buffer,
		trees:  append([]*vebTree(nil), t.trees...),
		nextID: t.nextID,
		size:   t.size,
	}
}

// cloneForErase returns a copy of the vebTree whose tombstone bitmap may be
// written without affecting the receiver. The point buffer, global ids,
// index permutation, and vEB node array are immutable after construction
// and remain shared.
func (t *vebTree) cloneForErase() *vebTree {
	if t == nil {
		return nil
	}
	cp := *t
	cp.dead = append([]bool(nil), t.dead...)
	return &cp
}

// PersistentInsert returns a new tree containing the receiver's live points
// plus the batch, along with the global ids assigned to the batch. The
// receiver is not modified and remains safe for concurrent queries; the two
// trees share all static trees the insertion did not rebuild.
func (t *Tree) PersistentInsert(batch geom.Points) (*Tree, []int32) {
	nt := t.shallowClone()
	// Insert never writes into a surviving vebTree: it drains the buffer and
	// the destroyed trees read-only (livePoints) and builds replacements from
	// scratch, so operating on the shallow clone is already copy-on-write.
	ids := nt.Insert(batch)
	return nt, ids
}

// PersistentDelete returns a new tree with every live point whose
// coordinates match a batch point removed, along with the number removed.
// The receiver is not modified and remains safe for concurrent queries.
func (t *Tree) PersistentDelete(batch geom.Points) (*Tree, int) {
	nt := t.shallowClone()
	// Delete writes tombstones in place, so clone the bitmaps first. Trees
	// that fall below half capacity are then rebuilt via reinsert, which only
	// constructs fresh vebTrees; its id remapping never matches the (older)
	// ids held by shared trees, so sharing orig arrays is safe.
	nt.buffer = nt.buffer.cloneForErase()
	for i, tr := range nt.trees {
		nt.trees[i] = tr.cloneForErase()
	}
	removed := nt.Delete(batch)
	return nt, removed
}
