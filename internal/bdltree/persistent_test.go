package bdltree

import (
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// sortedIDs returns the tree's live global ids, sorted.
func sortedIDs(t *Tree) []int32 {
	_, ids := t.Points()
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPersistentInsertPreservesParent: the parent version must be byte-for-
// byte unaffected by persistent insertions derived from it, across enough
// rounds to trigger static-tree destruction and rebuilding.
func TestPersistentInsertPreservesParent(t *testing.T) {
	base := New(3, Options{BufferSize: 32})
	seedBatch := generators.UniformCube(200, 3, 1)
	base.Insert(seedBatch)
	wantIDs := sortedIDs(base)
	wantSizes := append([]int(nil), base.TreeSizes()...)

	cur := base
	for round := 0; round < 8; round++ {
		next, ids := cur.PersistentInsert(generators.UniformCube(75, 3, uint64(round)+2))
		if len(ids) != 75 {
			t.Fatalf("round %d: %d ids", round, len(ids))
		}
		if next.Size() != cur.Size()+75 {
			t.Fatalf("round %d: child size %d", round, next.Size())
		}
		cur = next
	}
	if !idsEqual(sortedIDs(base), wantIDs) {
		t.Fatal("parent id set changed under persistent inserts")
	}
	for i, s := range base.TreeSizes() {
		if s != wantSizes[i] {
			t.Fatalf("parent tree sizes changed: %v != %v", base.TreeSizes(), wantSizes)
		}
	}
}

// TestPersistentDeletePreservesParent: deletions must tombstone only the
// child's bitmap copies; the parent keeps answering with the full set.
func TestPersistentDeletePreservesParent(t *testing.T) {
	base := New(2, Options{BufferSize: 32})
	batch := generators.UniformCube(500, 2, 7)
	base.Insert(batch)
	wantSize := base.Size()
	wantIDs := sortedIDs(base)

	// Delete in slices deep enough to trigger half-capacity rebuilds.
	cur := base
	for off := 0; off < 400; off += 100 {
		sub := geom.Points{Data: batch.Data[off*2 : (off+100)*2], Dim: 2}
		next, removed := cur.PersistentDelete(sub)
		if removed != 100 {
			t.Fatalf("offset %d: removed %d", off, removed)
		}
		if next.Size() != cur.Size()-100 {
			t.Fatalf("offset %d: child size %d", off, next.Size())
		}
		cur = next
	}
	if cur.Size() != 100 {
		t.Fatalf("final child size %d", cur.Size())
	}
	if base.Size() != wantSize || !idsEqual(sortedIDs(base), wantIDs) {
		t.Fatal("parent changed under persistent deletes")
	}
	// The parent's queries still see deleted points.
	q := geom.Points{Data: batch.Data[:2], Dim: 2}
	res := base.KNN(q, 1, nil)
	if len(res[0]) != 1 {
		t.Fatal("parent knn broken")
	}
	p, ids := base.Points()
	found := false
	for i := range ids {
		if ids[i] == res[0][0] && geom.SqDist(p.At(i), q.At(0)) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("parent must still contain the deleted point at distance 0")
	}
}

// TestPersistentChainMatchesInPlace: a chain of persistent updates must land
// on exactly the same live point multiset as the same updates in place.
func TestPersistentChainMatchesInPlace(t *testing.T) {
	inPlace := New(2, Options{BufferSize: 16})
	persist := New(2, Options{BufferSize: 16})
	for round := 0; round < 10; round++ {
		b := generators.SeedSpreader(120, 2, uint64(round)+1)
		inPlace.Insert(b)
		persist, _ = persist.PersistentInsert(b)
		if round%3 == 2 {
			old := generators.SeedSpreader(120, 2, uint64(round)-1)
			sub := geom.Points{Data: old.Data[:40*2], Dim: 2}
			a := inPlace.Delete(sub)
			var d int
			persist, d = persist.PersistentDelete(sub)
			if a != d {
				t.Fatalf("round %d: in-place removed %d, persistent %d", round, a, d)
			}
		}
		if inPlace.Size() != persist.Size() {
			t.Fatalf("round %d: sizes diverge %d vs %d", round, inPlace.Size(), persist.Size())
		}
		ap, _ := inPlace.Points()
		bp, _ := persist.Points()
		if !sameCoordMultiset(ap, bp) {
			t.Fatalf("round %d: live point multisets diverge", round)
		}
	}
}

func sameCoordMultiset(a, b geom.Points) bool {
	if a.Len() != b.Len() {
		return false
	}
	count := make(map[[2]float64]int, a.Len())
	for i := 0; i < a.Len(); i++ {
		p := a.At(i)
		count[[2]float64{p[0], p[1]}]++
	}
	for i := 0; i < b.Len(); i++ {
		p := b.At(i)
		count[[2]float64{p[0], p[1]}]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
