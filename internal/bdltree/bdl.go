package bdltree

import (
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// DefaultBufferSize is the default buffer-tree capacity X (§5: "the sizes
// of all of the trees can be multiplied by a buffer size X, which is a
// constant that is tuned for performance").
const DefaultBufferSize = 1024

// Tree is the parallel batch-dynamic BDL-tree: a buffer tree of capacity X
// and static vEB trees with capacities X·2^i (Figure 7).
type Tree struct {
	dim    int
	x      int
	split  SplitRule
	buffer *vebTree   // < X live points (slot -1 of the structure)
	trees  []*vebTree // trees[i] holds up to X·2^i points (nil if empty)
	nextID int32      // monotone global id generator
	size   int        // total live points
}

// Options configure the BDL-tree.
type Options struct {
	Split      SplitRule
	BufferSize int // X; default DefaultBufferSize
}

// New returns an empty BDL-tree for dim-dimensional points.
func New(dim int, opts Options) *Tree {
	if opts.BufferSize <= 0 {
		opts.BufferSize = DefaultBufferSize
	}
	return &Tree{dim: dim, x: opts.BufferSize, split: opts.Split}
}

// Size returns the number of live points.
func (t *Tree) Size() int { return t.size }

// NumTrees returns the number of non-empty static trees (excluding the
// buffer tree).
func (t *Tree) NumTrees() int {
	n := 0
	for _, tr := range t.trees {
		if tr.size() > 0 {
			n++
		}
	}
	return n
}

// Insert performs the batch insertion of Algorithm 3: combine the batch
// with the buffer contents, move |P| mod X points into a fresh buffer tree,
// and rebuild the static trees indicated by the bitmask difference
// F_new = F + |P|/X, constructing all new trees in parallel.
func (t *Tree) Insert(batch geom.Points) []int32 {
	if batch.Dim != t.dim {
		panic("bdltree: dimension mismatch")
	}
	b := batch.Len()
	ids := make([]int32, b)
	for i := range ids {
		ids[i] = t.nextID
		t.nextID++
	}
	t.insertWithIDs(batch, ids)
	return ids
}

// InsertWithIDs performs the batch insertion of Insert with caller-assigned
// global ids (one per batch row) instead of tree-local ones. This is the
// entry point for shard trees, whose ids must be unique across a whole
// sharded engine: the caller reserves a global id block and each shard
// inserts its slice of the batch carrying the matching slice of ids. The
// internal id generator is advanced past every supplied id, so internal
// reassignment (deletion rebalancing) can never collide with a live
// caller-assigned id.
func (t *Tree) InsertWithIDs(batch geom.Points, ids []int32) {
	if batch.Dim != t.dim {
		panic("bdltree: dimension mismatch")
	}
	if batch.Len() != len(ids) {
		panic("bdltree: id count mismatch")
	}
	for _, id := range ids {
		if id >= t.nextID {
			t.nextID = id + 1
		}
	}
	t.insertWithIDs(batch, ids)
}

// insertWithIDs is the shared body of Insert and InsertWithIDs: ids are
// already assigned and t.nextID already advanced past them.
func (t *Tree) insertWithIDs(batch geom.Points, ids []int32) {
	b := batch.Len()
	t.size += b
	// Loose points: buffer contents + batch.
	coords := make([]float64, 0, (t.buffer.size()+b)*t.dim)
	gids := make([]int32, 0, t.buffer.size()+b)
	coords, gids = t.buffer.livePoints(coords, gids)
	coords = append(coords, batch.Data...)
	gids = append(gids, ids...)
	t.buffer = nil

	loose := len(gids)
	newBufCount := loose % t.x
	k := loose / t.x
	if k == 0 {
		t.rebuildBuffer(coords, gids, loose)
		return
	}
	// Bitmask arithmetic: F_new = F + k.
	f := 0
	for i, tr := range t.trees {
		if tr.size() > 0 {
			f |= 1 << i
		}
	}
	fnew := f + k
	destroy := f &^ fnew
	create := fnew &^ f
	// Gather the points of destroyed trees plus the loose non-buffer
	// points into one pool.
	pool := geom.Points{Data: append([]float64(nil), coords[newBufCount*t.dim:]...), Dim: t.dim}
	poolIDs := append([]int32(nil), gids[newBufCount:]...)
	for i := range t.trees {
		if destroy&(1<<i) != 0 {
			pool.Data, poolIDs = t.trees[i].livePoints(pool.Data, poolIDs)
			t.trees[i] = nil
		}
	}
	t.rebuildBuffer(coords, gids, newBufCount)
	// Build the created trees in parallel, filling the largest first.
	var slots []int
	for i := 0; (1 << i) <= create; i++ {
		if create&(1<<i) != 0 {
			slots = append(slots, i)
		}
	}
	for len(t.trees) <= slots[len(slots)-1] {
		t.trees = append(t.trees, nil)
	}
	// Assign contiguous pool ranges, largest tree first.
	type job struct{ slot, lo, hi int }
	jobs := make([]job, 0, len(slots))
	offset := pool.Len()
	for s := len(slots) - 1; s >= 0; s-- {
		slot := slots[s]
		cap := t.x << slot
		lo := offset - cap
		if lo < 0 {
			lo = 0
		}
		jobs = append(jobs, job{slot, lo, offset})
		offset = lo
	}
	if offset != 0 {
		// With full source trees the pool exactly fits the created trees;
		// partially-full trees (after deletions) can leave a remainder,
		// which goes into the smallest created tree's slot via a direct
		// rebuild of that slot with the extra points.
		last := &jobs[len(jobs)-1]
		last.lo = 0
	}
	parlay.For(len(jobs), 1, func(j int) {
		jb := jobs[j]
		if jb.lo >= jb.hi {
			return
		}
		sub := geom.Points{Data: pool.Data[jb.lo*t.dim : jb.hi*t.dim], Dim: t.dim}
		cp := geom.Points{Data: append([]float64(nil), sub.Data...), Dim: t.dim}
		t.trees[jb.slot] = newVEBTree(cp, append([]int32(nil), poolIDs[jb.lo:jb.hi]...), t.split)
	})
}

func (t *Tree) rebuildBuffer(coords []float64, gids []int32, count int) {
	if count == 0 {
		t.buffer = nil
		return
	}
	cp := geom.Points{Data: append([]float64(nil), coords[:count*t.dim]...), Dim: t.dim}
	t.buffer = newVEBTree(cp, append([]int32(nil), gids[:count]...), t.split)
}

// Delete performs the batch deletion of Algorithm 4: erase the batch from
// every tree in parallel, then gather the points of any tree that fell
// below half capacity and reinsert them.
func (t *Tree) Delete(batch geom.Points) int {
	if batch.Dim != t.dim {
		panic("bdltree: dimension mismatch")
	}
	cand := make([]int32, batch.Len())
	for i := range cand {
		cand[i] = int32(i)
	}
	all := append([]*vebTree{t.buffer}, t.trees...)
	removed := make([]int, len(all))
	parlay.For(len(all), 1, func(i int) {
		removed[i] = all[i].erase(batch, cand)
	})
	total := 0
	for _, r := range removed {
		total += r
	}
	t.size -= total
	// Rebalance: trees below half capacity are emptied and reinserted.
	var coords []float64
	var gids []int32
	if t.buffer.size() == 0 {
		t.buffer = nil
	}
	for i, tr := range t.trees {
		if tr == nil {
			continue
		}
		if tr.size() == 0 {
			t.trees[i] = nil
			continue
		}
		if tr.size() < (t.x<<i)/2 {
			coords, gids = tr.livePoints(coords, gids)
			t.trees[i] = nil
		}
	}
	if len(gids) > 0 {
		t.reinsert(coords, gids)
	}
	return total
}

// reinsert is Insert for points that already carry global ids.
func (t *Tree) reinsert(coords []float64, gids []int32) {
	t.size -= len(gids) // Insert re-adds them
	sub := geom.Points{Data: coords, Dim: t.dim}
	newIDs := t.Insert(sub)
	// Restore the original ids (Insert assigned fresh ones).
	idmap := make(map[int32]int32, len(newIDs))
	for i, nid := range newIDs {
		idmap[nid] = gids[i]
	}
	t.remapIDs(idmap)
}

func (t *Tree) remapIDs(idmap map[int32]int32) {
	all := append([]*vebTree{t.buffer}, t.trees...)
	for _, tr := range all {
		if tr == nil {
			continue
		}
		for i, g := range tr.orig {
			if ng, ok := idmap[g]; ok {
				tr.orig[i] = ng
			}
		}
	}
}

// KNN returns, for each query coordinate row, the global ids of its k
// nearest live points. Data-parallel over the queries; each query reuses
// one k-NN buffer across the buffer tree and every static tree
// (Appendix C.4). exclude[i] (optional) is a global id skipped for query i.
func (t *Tree) KNN(queries geom.Points, k int, exclude []int32) [][]int32 {
	return t.KNNPooled(queries, k, exclude, nil)
}

// KNNPooled is KNN drawing per-worker k-NN buffers from pool instead of
// allocating one per query block, so long-lived callers (the engine's
// grouped query combiner) reuse buffers across calls. A nil pool — or one
// built for a different k — falls back to per-block allocation.
func (t *Tree) KNNPooled(queries geom.Points, k int, exclude []int32, pool *kdtree.BufferPool) [][]int32 {
	if pool != nil && pool.K() != k {
		pool = nil
	}
	n := queries.Len()
	out := make([][]int32, n)
	all := append([]*vebTree{t.buffer}, t.trees...)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		var buf *kdtree.KNNBuffer
		if pool != nil {
			buf = pool.Get()
		} else {
			buf = kdtree.NewKNNBuffer(k)
		}
		for i := lo; i < hi; i++ {
			buf.Reset()
			ex := int32(-1)
			if exclude != nil {
				ex = exclude[i]
			}
			q := queries.At(i)
			for _, tr := range all {
				tr.knnInto(q, ex, buf)
			}
			out[i] = buf.Result(nil)
		}
		if pool != nil {
			pool.Put(buf)
		}
	})
	return out
}

// Points returns the coordinates and global ids of all live points (test /
// verification helper).
func (t *Tree) Points() (geom.Points, []int32) {
	var coords []float64
	var gids []int32
	coords, gids = t.buffer.livePoints(coords, gids)
	for _, tr := range t.trees {
		coords, gids = tr.livePoints(coords, gids)
	}
	return geom.Points{Data: coords, Dim: t.dim}, gids
}

// TreeSizes returns the live sizes [buffer, tree0, tree1, ...] for
// structural tests (Figure 7's configurations).
func (t *Tree) TreeSizes() []int {
	out := []int{t.buffer.size()}
	for _, tr := range t.trees {
		out = append(out, tr.size())
	}
	return out
}
