package bdltree

import (
	"fmt"
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// Differential tests for the BDL-tree: after every batch insertion and
// deletion, k-NN and range queries are re-answered by the brute-force
// oracle over a sequentially maintained model of the live set. The model
// mirrors the tree's delete-by-coordinates semantics (a batch point removes
// every live point with equal coordinates).

// verify checks tree k-NN and range answers against the oracle over the
// model's current live set.
func verifyModel(t *testing.T, tr *Tree, m *oracle.LiveSet, seed uint64, label string) {
	t.Helper()
	if tr.Size() != len(m.IDs) {
		t.Fatalf("%s: tree size %d, model %d", label, tr.Size(), len(m.IDs))
	}
	live := m.Points()

	// k-NN at external probes, compared by distance sequences.
	probes := generators.UniformCube(6, m.Dim, seed)
	for _, k := range []int{1, 4, 10} {
		res := tr.KNN(probes, k, nil)
		for qi := 0; qi < probes.Len(); qi++ {
			q := probes.At(qi)
			wantD := oracle.KNNDists(live, q, k, -1)
			if len(res[qi]) != len(wantD) {
				t.Fatalf("%s: k=%d probe %d returned %d of %d", label, k, qi, len(res[qi]), len(wantD))
			}
			for j, gid := range res[qi] {
				c := m.CoordsOf(gid)
				if c == nil {
					t.Fatalf("%s: k=%d returned dead/unknown gid %d", label, k, gid)
				}
				if d := geom.SqDist(q, c); d != wantD[j] {
					t.Fatalf("%s: k=%d probe %d dist[%d]=%v oracle %v", label, k, qi, j, d, wantD[j])
				}
			}
		}
	}

	// Range queries compared as exact gid sets.
	if live.Len() > 0 {
		bb := geom.EmptyBox(m.Dim)
		for i := 0; i < live.Len(); i++ {
			bb.Expand(live.At(i))
		}
		mid := make([]float64, m.Dim)
		for c := 0; c < m.Dim; c++ {
			mid[c] = (bb.Min[c] + bb.Max[c]) / 2
		}
		boxes := []geom.Box{
			{Min: bb.Min, Max: bb.Max},                                    // everything
			{Min: bb.Min, Max: mid},                                       // corner
			{Min: append([]float64(nil), live.At(0)...), Max: live.At(0)}, // degenerate on a point
			{Min: mid, Max: append([]float64(nil), bb.Max...)},            // opposite corner
		}
		for bi, box := range boxes {
			wantIdx := oracle.RangeSearch(live, box)
			want := make([]int32, len(wantIdx))
			for i, li := range wantIdx {
				want[i] = m.IDs[li]
			}
			got := tr.RangeSearch(box)
			if !sameGidSet(got, want) {
				t.Fatalf("%s: box %d gid set mismatch (%d vs %d)", label, bi, len(got), len(want))
			}
			if cnt := tr.RangeCount(box); cnt != len(want) {
				t.Fatalf("%s: box %d count %d, oracle %d", label, bi, cnt, len(want))
			}
		}
	}
}

func sameGidSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestBDLTreeMatchesOracleAfterUpdates(t *testing.T) {
	gens := []struct {
		name string
		gen  func(n, dim int, seed uint64) geom.Points
	}{
		{"Uniform", generators.UniformCube},
		{"InSphere", generators.InSphere},
		{"OnSphere", generators.OnSphere},
		{"SeedSpreader", generators.SeedSpreader},
	}
	for _, g := range gens {
		for _, dim := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/d%d", g.name, dim), func(t *testing.T) {
				tr := New(dim, Options{BufferSize: 32})
				m := &oracle.LiveSet{Dim: dim}
				var batches []geom.Points
				for round := 0; round < 6; round++ {
					seed := uint64(round)*11 + 1
					batch := g.gen(150, dim, seed)
					batches = append(batches, batch)
					ids := tr.Insert(batch)
					m.Insert(ids, batch)
					verifyModel(t, tr, m, seed*3+1, fmt.Sprintf("after insert %d", round))

					if round >= 2 {
						// Delete half of an old batch (coordinate matching).
						old := batches[round-2]
						sub := geom.Points{Data: old.Data[:75*dim], Dim: dim}
						got := tr.Delete(sub)
						want := m.Remove(sub)
						if got != want {
							t.Fatalf("round %d: tree removed %d, model %d", round, got, want)
						}
						verifyModel(t, tr, m, seed*5+2, fmt.Sprintf("after delete %d", round))
					}
				}
			})
		}
	}
}

// TestBDLTreeDuplicatesAndDegenerate: duplicate coordinates (batch deletion
// must take every copy) and an all-identical point set.
func TestBDLTreeDuplicatesAndDegenerate(t *testing.T) {
	tr := New(2, Options{BufferSize: 16})
	m := &oracle.LiveSet{Dim: 2}

	base := generators.UniformCube(60, 2, 3)
	dup := geom.NewPoints(180, 2)
	for i := 0; i < 180; i++ {
		dup.Set(i, base.At(i%60))
	}
	ids := tr.Insert(dup)
	m.Insert(ids, dup)
	verifyModel(t, tr, m, 9, "duplicates inserted")

	// Deleting one batch row must kill all three copies of each point.
	sub := geom.Points{Data: base.Data[:20*2], Dim: 2}
	got := tr.Delete(sub)
	want := m.Remove(sub)
	if got != 60 || got != want {
		t.Fatalf("duplicate delete removed %d (model %d), want 60", got, want)
	}
	verifyModel(t, tr, m, 10, "duplicates deleted")

	// All-identical points.
	same := geom.NewPoints(50, 2)
	for i := 0; i < 50; i++ {
		same.Set(i, []float64{-7.5, 4.25})
	}
	ids = tr.Insert(same)
	m.Insert(ids, same)
	verifyModel(t, tr, m, 11, "identical block inserted")
	one := geom.Points{Data: []float64{-7.5, 4.25}, Dim: 2}
	got = tr.Delete(one)
	want = m.Remove(one)
	if got != 50 || got != want {
		t.Fatalf("identical delete removed %d (model %d), want 50", got, want)
	}
	verifyModel(t, tr, m, 12, "identical block deleted")
}
