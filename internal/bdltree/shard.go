package bdltree

import (
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
)

// Shard-facing API: a Morton-sharded engine runs one BDL-tree per shard and
// needs three things the batch API does not give it — construction from a
// pre-partitioned slice, insertion under engine-assigned global ids, and a
// k-NN entry point that accumulates into a caller-owned buffer so one
// query's candidate set (and its shrinking radius bound) can be threaded
// across several shard trees.

// NewFromSorted builds a tree directly from a pre-sorted contiguous slice
// of points carrying their global ids — the per-shard construction step of
// a sharded bulk load, where the caller has Morton-sorted the input and cut
// it into per-shard slices. The slice order is preserved into the initial
// buffer/static-tree layout, so Morton-sorted input keeps spatially nearby
// points nearby in the built trees' storage.
func NewFromSorted(dim int, opts Options, pts geom.Points, ids []int32) *Tree {
	t := New(dim, opts)
	if pts.Len() > 0 {
		t.InsertWithIDs(pts, ids)
	}
	return t
}

// PersistentInsertWithIDs is PersistentInsert under caller-assigned global
// ids: it returns a new tree containing the receiver's live points plus the
// batch, leaving the receiver untouched and queryable. See InsertWithIDs
// for the id contract.
func (t *Tree) PersistentInsertWithIDs(batch geom.Points, ids []int32) *Tree {
	nt := t.shallowClone()
	nt.InsertWithIDs(batch, ids)
	return nt
}

// KNNInto adds the tree's candidates for query q into buf, which the caller
// owns and may have pre-loaded with candidates from other trees. The
// buffer's current k-th-distance bound prunes this tree's traversal, so
// visiting a sequence of shard trees through one buffer gives each
// successive tree a tighter radius — the shared shrinking-radius walk of a
// sharded k-NN. exclude (or -1) is a global id to skip.
func (t *Tree) KNNInto(q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	t.buffer.knnInto(q, exclude, buf)
	for _, tr := range t.trees {
		tr.knnInto(q, exclude, buf)
	}
}
