package bdltree

import (
	"sort"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/parlay"
)

// Shard-facing API: a Morton-sharded engine runs one BDL-tree per shard and
// needs a few things the batch API does not give it — construction from a
// pre-partitioned slice, insertion under engine-assigned global ids, a
// k-NN entry point that accumulates into a caller-owned buffer so one
// query's candidate set (and its shrinking radius bound) can be threaded
// across several shard trees, and the migration primitives (ExtractRange,
// Merge) an online repartitioner uses to split a hot shard's tree or fuse
// two cold neighbors.

// NewFromSorted builds a tree directly from a pre-sorted contiguous slice
// of points carrying their global ids — the per-shard construction step of
// a sharded bulk load, where the caller has Morton-sorted the input and cut
// it into per-shard slices. The slice order is preserved into the initial
// buffer/static-tree layout, so Morton-sorted input keeps spatially nearby
// points nearby in the built trees' storage.
func NewFromSorted(dim int, opts Options, pts geom.Points, ids []int32) *Tree {
	t := New(dim, opts)
	if pts.Len() > 0 {
		t.InsertWithIDs(pts, ids)
	}
	return t
}

// PersistentInsertWithIDs is PersistentInsert under caller-assigned global
// ids: it returns a new tree containing the receiver's live points plus the
// batch, leaving the receiver untouched and queryable. See InsertWithIDs
// for the id contract.
func (t *Tree) PersistentInsertWithIDs(batch geom.Points, ids []int32) *Tree {
	nt := t.shallowClone()
	nt.InsertWithIDs(batch, ids)
	return nt
}

// ExtractRange returns the tree's live points whose Morton code under the
// quantization box world lies in the inclusive code interval [lo, hi], in
// ascending code order, along with those codes and the points' global ids.
// This is the extraction half of a shard migration: a repartitioner pulls a
// shard's live points out code-sorted, cuts the sorted run at the new
// boundary, and feeds each piece straight back into NewFromSorted. An empty
// interval (lo > hi) yields nothing. The returned buffers are fresh and do
// not alias the tree.
func (t *Tree) ExtractRange(world geom.Box, lo, hi uint64) ([]uint64, geom.Points, []int32) {
	pts, ids := t.Points()
	n := pts.Len()
	if n == 0 || lo > hi {
		return nil, geom.Points{Dim: t.dim}, nil
	}
	codes := make([]uint64, n)
	parlay.For(n, 512, func(i int) { codes[i] = morton.Encode(pts.At(i), world) })
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	parlay.SortPairs(codes, idx)
	from := sort.Search(n, func(i int) bool { return codes[i] >= lo })
	to := sort.Search(n, func(i int) bool { return codes[i] > hi })
	if from >= to {
		return nil, geom.Points{Dim: t.dim}, nil
	}
	sub := idx[from:to]
	outIDs := make([]int32, len(sub))
	for i, j := range sub {
		outIDs[i] = ids[j]
	}
	return codes[from:to], pts.Gather(sub), outIDs
}

// Merge builds one fresh tree (with a's options) holding every live point
// of a and b, laid out in ascending Morton order under world — the fusion
// half of a shard migration, used when two cold adjacent Morton-range
// shards collapse into one. The inputs are read-only and stay queryable;
// their code runs are merged (not concatenated), so the result is sorted
// even if the two trees' ranges interleave.
func Merge(world geom.Box, a, b *Tree) *Tree {
	all := ^uint64(0)
	ca, pa, ia := a.ExtractRange(world, 0, all)
	cb, pb, ib := b.ExtractRange(world, 0, all)
	dim := a.dim
	n := len(ia) + len(ib)
	pts := geom.Points{Data: make([]float64, 0, n*dim), Dim: dim}
	ids := make([]int32, 0, n)
	i, j := 0, 0
	for i < len(ia) || j < len(ib) {
		if j >= len(ib) || (i < len(ia) && ca[i] <= cb[j]) {
			pts.Data = append(pts.Data, pa.At(i)...)
			ids = append(ids, ia[i])
			i++
		} else {
			pts.Data = append(pts.Data, pb.At(j)...)
			ids = append(ids, ib[j])
			j++
		}
	}
	return NewFromSorted(dim, Options{Split: a.split, BufferSize: a.x}, pts, ids)
}

// KNNInto adds the tree's candidates for query q into buf, which the caller
// owns and may have pre-loaded with candidates from other trees. The
// buffer's current k-th-distance bound prunes this tree's traversal, so
// visiting a sequence of shard trees through one buffer gives each
// successive tree a tighter radius — the shared shrinking-radius walk of a
// sharded k-NN. exclude (or -1) is a global id to skip.
func (t *Tree) KNNInto(q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	t.buffer.knnInto(q, exclude, buf)
	for _, tr := range t.trees {
		tr.knnInto(q, exclude, buf)
	}
}
