package bdltree

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// Dynamic is the batch-dynamic interface shared by the BDL-tree and the two
// baselines, so the benchmarks (Fig. 11, Fig. 14) drive all three
// uniformly.
type Dynamic interface {
	Insert(batch geom.Points) []int32
	Delete(batch geom.Points) int
	KNN(queries geom.Points, k int, exclude []int32) [][]int32
	Size() int
}

var (
	_ Dynamic = (*Tree)(nil)
	_ Dynamic = (*B1)(nil)
	_ Dynamic = (*B2)(nil)
)

// B1 is the first baseline of §6.3: a single kd-tree fully rebuilt on every
// batch insertion or deletion. Queries are fast (the tree is always
// perfectly balanced); updates are expensive.
type B1 struct {
	dim    int
	split  SplitRule
	coords []float64
	gids   []int32
	tree   *vebTree
	nextID int32
}

// NewB1 returns an empty rebuild-always baseline tree.
func NewB1(dim int, split SplitRule) *B1 {
	return &B1{dim: dim, split: split}
}

// Size returns the number of live points.
func (b *B1) Size() int { return len(b.gids) }

func (b *B1) rebuild() {
	if len(b.gids) == 0 {
		b.tree = nil
		return
	}
	cp := geom.Points{Data: append([]float64(nil), b.coords...), Dim: b.dim}
	b.tree = newVEBTree(cp, append([]int32(nil), b.gids...), b.split)
}

// Insert appends the batch and rebuilds the tree.
func (b *B1) Insert(batch geom.Points) []int32 {
	ids := make([]int32, batch.Len())
	for i := range ids {
		ids[i] = b.nextID
		b.nextID++
	}
	b.coords = append(b.coords, batch.Data...)
	b.gids = append(b.gids, ids...)
	b.rebuild()
	return ids
}

// Delete removes every live point matching a batch coordinate and rebuilds.
func (b *B1) Delete(batch geom.Points) int {
	key := func(p []float64) string { return coordKey(p) }
	del := make(map[string]bool, batch.Len())
	for i := 0; i < batch.Len(); i++ {
		del[key(batch.At(i))] = true
	}
	n := len(b.gids)
	keep := parlay.PackIndex(n, func(i int) bool {
		return !del[key(b.coords[i*b.dim:(i+1)*b.dim])]
	})
	removed := n - len(keep)
	if removed == 0 {
		return 0
	}
	newCoords := make([]float64, 0, len(keep)*b.dim)
	newIDs := make([]int32, 0, len(keep))
	for _, i := range keep {
		newCoords = append(newCoords, b.coords[int(i)*b.dim:(int(i)+1)*b.dim]...)
		newIDs = append(newIDs, b.gids[i])
	}
	b.coords, b.gids = newCoords, newIDs
	b.rebuild()
	return removed
}

// KNN answers queries data-parallel on the single balanced tree.
func (b *B1) KNN(queries geom.Points, k int, exclude []int32) [][]int32 {
	n := queries.Len()
	out := make([][]int32, n)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			ex := int32(-1)
			if exclude != nil {
				ex = exclude[i]
			}
			b.tree.knnInto(queries.At(i), ex, buf)
			out[i] = buf.Result(nil)
		}
	})
	return out
}

func coordKey(p []float64) string {
	buf := make([]byte, 0, len(p)*8)
	for _, v := range p {
		bits := uint64(0)
		// Normalize -0 to +0 so equal coordinates compare equal.
		if v != 0 {
			bits = f64bits(v)
		}
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	}
	return string(buf)
}

// B2 is the second baseline of §6.3: points are inserted directly into the
// existing spatial structure (leaf buffers) without recomputing any splits,
// and deletions tombstone points in place. Updates are nearly free; the
// tree can become arbitrarily unbalanced (Fig. 14 / Appendix D).
type B2 struct {
	dim    int
	split  SplitRule
	root   *b2node
	nextID int32
	size   int
}

type b2node struct {
	minC, maxC  [kdtree.MaxDim]float64
	splitVal    float64
	splitDim    int8
	left, right *b2node
	coords      []float64 // leaf points (SoA rows)
	gids        []int32
	dead        []bool
	liveN       int
}

// b2LeafCap is the initial leaf capacity; leaves grow beyond it on insert
// (the "separate memory buffer at each leaf node" of §6.3).
const b2LeafCap = 16

// NewB2 returns an empty insert-in-place baseline tree.
func NewB2(dim int, split SplitRule) *B2 {
	return &B2{dim: dim, split: split}
}

// Size returns the number of live points.
func (b *B2) Size() int { return b.size }

// Insert routes each point to its leaf and appends it there. The first
// batch builds the initial structure.
func (b *B2) Insert(batch geom.Points) []int32 {
	ids := make([]int32, batch.Len())
	for i := range ids {
		ids[i] = b.nextID
		b.nextID++
	}
	b.size += batch.Len()
	if b.root == nil {
		idx := make([]int32, batch.Len())
		for i := range idx {
			idx[i] = int32(i)
		}
		b.root = b.buildNode(batch, ids, idx, true)
		return ids
	}
	for i := 0; i < batch.Len(); i++ {
		b.insertOne(batch.At(i), ids[i])
	}
	return ids
}

func (b *B2) buildNode(pts geom.Points, gids []int32, idx []int32, par bool) *b2node {
	nd := &b2node{}
	dim := b.dim
	for c := 0; c < dim; c++ {
		nd.minC[c], nd.maxC[c] = inf, -inf
	}
	for _, i := range idx {
		p := pts.At(int(i))
		for c := 0; c < dim; c++ {
			if p[c] < nd.minC[c] {
				nd.minC[c] = p[c]
			}
			if p[c] > nd.maxC[c] {
				nd.maxC[c] = p[c]
			}
		}
	}
	if len(idx) <= b2LeafCap {
		nd.coords = make([]float64, 0, (len(idx)+b2LeafCap)*dim)
		nd.gids = make([]int32, 0, len(idx)+b2LeafCap)
		for _, i := range idx {
			nd.coords = append(nd.coords, pts.At(int(i))...)
			nd.gids = append(nd.gids, gids[i])
			nd.dead = append(nd.dead, false)
		}
		nd.liveN = len(idx)
		return nd
	}
	c := 0
	bw := nd.maxC[0] - nd.minC[0]
	for d := 1; d < dim; d++ {
		if w := nd.maxC[d] - nd.minC[d]; w > bw {
			c, bw = d, w
		}
	}
	var mid int
	if b.split == SpatialMedian {
		val := (nd.minC[c] + nd.maxC[c]) / 2
		mid = kdtree.PartitionVal(pts, idx, c, val)
		if mid == 0 || mid == len(idx) {
			mid = len(idx) / 2
			kdtree.NthElement(pts, idx, mid, c)
		}
		nd.splitVal = val
	} else {
		mid = len(idx) / 2
		kdtree.NthElement(pts, idx, mid, c)
		nd.splitVal = pts.Coord(int(idx[mid]), c)
	}
	nd.splitDim = int8(c)
	if par && len(idx) > 8192 {
		parlay.Do(
			func() { nd.left = b.buildNode(pts, gids, idx[:mid], true) },
			func() { nd.right = b.buildNode(pts, gids, idx[mid:], true) },
		)
	} else {
		nd.left = b.buildNode(pts, gids, idx[:mid], false)
		nd.right = b.buildNode(pts, gids, idx[mid:], false)
	}
	return nd
}

func (b *B2) insertOne(p []float64, gid int32) {
	nd := b.root
	for {
		// Expand bounding boxes along the path.
		for c := 0; c < b.dim; c++ {
			if p[c] < nd.minC[c] {
				nd.minC[c] = p[c]
			}
			if p[c] > nd.maxC[c] {
				nd.maxC[c] = p[c]
			}
		}
		if nd.left == nil {
			nd.coords = append(nd.coords, p...)
			nd.gids = append(nd.gids, gid)
			nd.dead = append(nd.dead, false)
			nd.liveN++
			return
		}
		if p[nd.splitDim] < nd.splitVal {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
}

// Delete tombstones matching points in place (§6.3: "it does almost no work
// other than tombstoning the deleted points").
func (b *B2) Delete(batch geom.Points) int {
	removed := 0
	for i := 0; i < batch.Len(); i++ {
		removed += b.deleteOne(b.root, batch.At(i))
	}
	b.size -= removed
	return removed
}

func (b *B2) deleteOne(nd *b2node, p []float64) int {
	if nd == nil {
		return 0
	}
	for c := 0; c < b.dim; c++ {
		if p[c] < nd.minC[c] || p[c] > nd.maxC[c] {
			return 0
		}
	}
	if nd.left == nil {
		removed := 0
		for i := range nd.gids {
			if nd.dead[i] {
				continue
			}
			if coordsEqual(nd.coords[i*b.dim:(i+1)*b.dim], p) {
				nd.dead[i] = true
				nd.liveN--
				removed++
			}
		}
		return removed
	}
	return b.deleteOne(nd.left, p) + b.deleteOne(nd.right, p)
}

// KNN answers queries data-parallel on the in-place structure.
func (b *B2) KNN(queries geom.Points, k int, exclude []int32) [][]int32 {
	n := queries.Len()
	out := make([][]int32, n)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			ex := int32(-1)
			if exclude != nil {
				ex = exclude[i]
			}
			b.knnRec(b.root, queries.At(i), ex, buf)
			out[i] = buf.Result(nil)
		}
	})
	return out
}

func (b *B2) knnRec(nd *b2node, q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	if nd == nil {
		return
	}
	if nd.left == nil {
		for i := range nd.gids {
			if nd.dead[i] || nd.gids[i] == exclude {
				continue
			}
			buf.Insert(nd.gids[i], geom.SqDist(q, nd.coords[i*b.dim:(i+1)*b.dim]))
		}
		return
	}
	near, far := nd.left, nd.right
	if q[nd.splitDim] >= nd.splitVal {
		near, far = far, near
	}
	b.knnRec(near, q, exclude, buf)
	if !buf.Full() || b.boxSqDist(far, q) < buf.Bound() {
		b.knnRec(far, q, exclude, buf)
	}
}

func (b *B2) boxSqDist(nd *b2node, q []float64) float64 {
	s := 0.0
	for c := 0; c < b.dim; c++ {
		if v := q[c]; v < nd.minC[c] {
			d := nd.minC[c] - v
			s += d * d
		} else if v > nd.maxC[c] {
			d := v - nd.maxC[c]
			s += d * d
		}
	}
	return s
}
