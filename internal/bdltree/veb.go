// Package bdltree implements the BDL-tree (§5, Appendix C): a parallel
// batch-dynamic kd-tree built with the logarithmic method. A BDL-tree is a
// buffer tree of capacity X plus a set of static trees with capacities
// X·2^i; batch insertions rebuild the smallest prefix of trees needed
// (bitmask arithmetic, Algorithm 3), batch deletions erase in parallel from
// every tree and reinsert the contents of any tree that falls below half
// capacity (Algorithm 4), and k-NN queries run data-parallel across query
// points, sharing one k-NN buffer per query across all the trees
// (Appendix C.4).
//
// The static trees are laid out in the cache-oblivious van Emde Boas order
// (Appendix C.1.1, Algorithm 1): the array slot of every node is assigned
// by the recursive top-half/bottom-half decomposition, so any root-to-leaf
// traversal touches O(log_B n) cache blocks for every block size B.
// Navigation uses heap indices (children 2h, 2h+1) translated through the
// memoized vEB position table.
//
// Leaf scan layout: like kdtree, every vEB tree caches its leaf
// coordinates as dimension-major (SoA) float32 slabs — a leaf owning rows
// [lo,hi) stores coordinate c of its i-th point at coordsF32[lo·Dim+c·m+i]
// with m = hi−lo — and the k-NN and range inner loops run the
// internal/kernel scan primitives over those columns. The float32 pass is
// a filter only: every candidate it admits is re-verified against the
// exact float64 coordinates, trees whose magnitudes exceed the f32-safe
// bound never arm the filter, and the shared k-NN buffer is re-armed per
// static tree (each tree carries its own magnitude gate). Results are
// identical to the float64 scan.
//
// The package also provides the two baselines the paper evaluates against
// (§6.3): B1, which rebuilds one static tree on every update, and B2, which
// inserts into leaf buffers in place and tombstones deletions.
package bdltree

import (
	"math"
	"sync"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/kernel"
	"pargeo/internal/parlay"
)

var inf = math.Inf(1)

// SplitRule mirrors kdtree.SplitRule for the two median heuristics.
type SplitRule = kdtree.SplitRule

const (
	// ObjectMedian splits at the median point (balanced trees).
	ObjectMedian = kdtree.ObjectMedian
	// SpatialMedian splits at the box midpoint (cheaper, can skew).
	SpatialMedian = kdtree.SpatialMedian
)

// vebOrder returns the vEB slot of every heap index for a complete binary
// tree with l levels: slot[heap] for heap in [1, 2^l). The table follows
// Algorithm 1's recursion: a tree of l levels is the top lt = l - ⌈⌈(l+1)/2⌉⌉
// levels laid out first, followed by its 2^lt bottom subtrees of
// lb = ⌈⌈(l+1)/2⌉⌉ levels each, consecutively.
func vebOrder(l int) []int32 {
	table := make([]int32, 1<<l)
	next := int32(0)
	var rec func(root int, levels int)
	rec = func(root, levels int) {
		if levels == 1 {
			table[root] = next
			next++
			return
		}
		lb := hyperceiling((levels + 1) / 2)
		lt := levels - lb
		rec(root, lt) // top half, itself recursively in vEB order
		// Bottom subtree roots are the descendants of root at depth lt.
		first := root << lt
		for j := 0; j < 1<<lt; j++ {
			rec(first+j, lb)
		}
	}
	rec(1, l)
	return table
}

// hyperceiling returns the smallest power of two >= n.
func hyperceiling(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

var vebMemo sync.Map // levels -> []int32

func vebTable(l int) []int32 {
	if v, ok := vebMemo.Load(l); ok {
		return v.([]int32)
	}
	t := vebOrder(l)
	vebMemo.Store(l, t)
	return t
}

// vnode is one static-tree node stored at its vEB slot.
type vnode struct {
	minC, maxC [kdtree.MaxDim]float64
	splitVal   float64
	lo, hi     int32 // subtree's range in the tree's index permutation
	splitDim   int8
}

// vebTree is one static kd-tree of the BDL structure: a local copy of its
// points, their original (global) ids, tombstones, and the vEB-ordered node
// array.
type vebTree struct {
	pts    geom.Points
	orig   []int32 // global ids, parallel to pts
	idx    []int32 // permutation of local indices; node ranges index this
	nodes  []vnode
	levels int
	dead   []bool // local tombstones (BDL erases lazily; rebalance compacts)
	live   int
	split  SplitRule
	leaf   int
	// coordsF32 caches coordinates as dimension-major (SoA) float32 slabs,
	// one per leaf, mirroring kdtree.Tree.CoordsF32: a leaf owning idx range
	// [lo, hi) with m points stores coordinate c of its i-th point at
	// coordsF32[lo*dim + c*m + i]. The k-NN and range inner loops scan these
	// columns through internal/kernel as a conservative filter and re-verify
	// survivors (and tombstones) against the float64 truth in pts. Built
	// once after construction; immutable, so persistent clones share it.
	coordsF32 []float32
	// maxAbs / f32ok gate the filter exactly as kdtree.Tree does: largest
	// |coordinate| from the root box, and whether f32 scanning is sound
	// (finite, NaN-free, within kdtree.F32SafeMax).
	maxAbs float64
	f32ok  bool
}

// vebLeafSize is the per-leaf point capacity ("a small constant number of
// points", Bentley).
const vebLeafSize = 16

// newVEBTree builds a static tree over the given points (a copy is taken
// via Gather by the caller). Parallel construction per Algorithm 1: the top
// half of each recursive level is laid out before the bottom subtrees,
// which build in parallel.
func newVEBTree(pts geom.Points, orig []int32, split SplitRule) *vebTree {
	n := pts.Len()
	if n == 0 {
		return nil
	}
	numLeaves := hyperceiling((n + vebLeafSize - 1) / vebLeafSize)
	levels := 1
	for 1<<(levels-1) < numLeaves {
		levels++
	}
	t := &vebTree{
		pts:    pts,
		orig:   orig,
		idx:    make([]int32, n),
		nodes:  make([]vnode, 1<<levels-1),
		levels: levels,
		dead:   make([]bool, n),
		live:   n,
		split:  split,
		leaf:   vebLeafSize,
	}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	table := vebTable(levels)
	t.build(1, 1, 0, int32(n), table)
	dim := pts.Dim
	// Fill the dimension-major leaf slabs (leaves are the deepest heap
	// level) and derive the f32-filter gate from the root box.
	t.coordsF32 = make([]float32, n*dim)
	firstLeaf := 1 << (levels - 1)
	parlay.For(firstLeaf, 0, func(j int) {
		nd := &t.nodes[table[firstLeaf+j]]
		m := int(nd.hi - nd.lo)
		if m == 0 {
			return
		}
		slab := t.coordsF32[int(nd.lo)*dim : (int(nd.lo)+m)*dim]
		for i := 0; i < m; i++ {
			p := pts.At(int(t.idx[int(nd.lo)+i]))
			for c := 0; c < dim; c++ {
				slab[c*m+i] = float32(p[c])
			}
		}
	})
	root := &t.nodes[table[1]]
	a := 0.0
	for c := 0; c < dim; c++ {
		if !(root.minC[c] <= root.maxC[c]) { // NaN box
			return t
		}
		if v := math.Abs(root.minC[c]); v > a {
			a = v
		}
		if v := math.Abs(root.maxC[c]); v > a {
			a = v
		}
	}
	if a > kdtree.F32SafeMax {
		return t
	}
	t.maxAbs, t.f32ok = a, true
	return t
}

// build constructs the subtree at heap index h (depth levels counted from
// 1) over idx[lo:hi].
func (t *vebTree) build(h, depth int, lo, hi int32, table []int32) {
	nd := &t.nodes[table[h]]
	nd.lo, nd.hi = lo, hi
	dim := t.pts.Dim
	for c := 0; c < dim; c++ {
		nd.minC[c], nd.maxC[c] = inf, -inf
	}
	for i := lo; i < hi; i++ {
		p := t.pts.At(int(t.idx[i]))
		for c := 0; c < dim; c++ {
			if p[c] < nd.minC[c] {
				nd.minC[c] = p[c]
			}
			if p[c] > nd.maxC[c] {
				nd.maxC[c] = p[c]
			}
		}
	}
	if depth == t.levels { // leaf
		return
	}
	n := hi - lo
	var mid int32
	if n == 0 {
		mid = lo
		nd.splitDim = 0
		nd.splitVal = 0
	} else {
		c := 0
		bw := nd.maxC[0] - nd.minC[0]
		for d := 1; d < dim; d++ {
			if w := nd.maxC[d] - nd.minC[d]; w > bw {
				c, bw = d, w
			}
		}
		switch t.split {
		case SpatialMedian:
			val := (nd.minC[c] + nd.maxC[c]) / 2
			mid = lo + int32(kdtree.PartitionVal(t.pts, t.idx[lo:hi], c, val))
			if mid == lo || mid == hi {
				mid = lo + n/2
				kdtree.NthElement(t.pts, t.idx[lo:hi], int(n/2), c)
			}
			nd.splitVal = val
		default:
			mid = lo + n/2
			kdtree.NthElement(t.pts, t.idx[lo:hi], int(n/2), c)
			nd.splitVal = t.pts.Coord(int(t.idx[mid]), c)
		}
		nd.splitDim = int8(c)
	}
	if n > 8192 {
		parlay.Do(
			func() { t.build(2*h, depth+1, lo, mid, table) },
			func() { t.build(2*h+1, depth+1, mid, hi, table) },
		)
	} else {
		t.build(2*h, depth+1, lo, mid, table)
		t.build(2*h+1, depth+1, mid, hi, table)
	}
}

// knnInto adds this tree's neighbors of query q into buf (the shared-buffer
// protocol of Appendix C.4). exclude is a global id to skip (-1 none). The
// float32 column filter is re-armed per tree — each static tree carries its
// own magnitude gate — while the candidate bound carries across trees.
func (t *vebTree) knnInto(q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	if t == nil || t.live == 0 {
		return
	}
	buf.PrepareF32(q, t.maxAbs, t.f32ok)
	table := vebTable(t.levels)
	t.knnRec(1, 1, q, exclude, buf, table)
}

// scanLeaf is the bdltree analogue of kdtree's filtered leaf scan: the
// kernel computes the whole leaf's f32 squared distances from the
// dimension-major slab, and only candidates within the refine threshold
// are checked against tombstones and re-measured in float64. The eager
// first-leaf threshold is sound only while every scanned point is a live
// candidate, so it is gated on the tree having no tombstones.
func (t *vebTree) scanLeaf(nd *vnode, q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	dim := t.pts.Dim
	m := int(nd.hi - nd.lo)
	if !buf.ScanF32() {
		// Fallback (huge or NaN coordinates): exact scalar float64 scan.
		for i := nd.lo; i < nd.hi; i++ {
			li := t.idx[i]
			if !t.dead[li] {
				if g := t.orig[li]; g != exclude {
					buf.Insert(g, geom.SqDist(q, t.pts.At(int(li))))
				}
			}
		}
		return
	}
	base := int(nd.lo) * dim
	dists := buf.DistScratch(m)
	kernel.SqDistsF32(dists, buf.Q32(dim), t.coordsF32[base:base+m*dim], m, m)
	thr := buf.RefineThreshold()
	eager := false
	if math.IsInf(thr, 1) && t.live == t.pts.Len() {
		eager = true
		thr = buf.EagerThreshold(dists)
	}
	for i := 0; i < m; i++ {
		if float64(dists[i]) <= thr {
			li := t.idx[int(nd.lo)+i]
			if !t.dead[li] {
				if g := t.orig[li]; g != exclude {
					buf.Insert(g, geom.SqDist(q, t.pts.At(int(li))))
					if t2 := buf.RefineThreshold(); t2 < thr {
						thr = t2
					}
				}
			}
		}
	}
	if eager {
		buf.SealEager()
	}
}

func (t *vebTree) knnRec(h, depth int, q []float64, exclude int32, buf *kdtree.KNNBuffer, table []int32) {
	nd := &t.nodes[table[h]]
	if nd.lo >= nd.hi {
		return
	}
	if depth == t.levels {
		t.scanLeaf(nd, q, exclude, buf)
		return
	}
	near, far := 2*h, 2*h+1
	if q[nd.splitDim] >= nd.splitVal {
		near, far = far, near
	}
	t.knnRec(near, depth+1, q, exclude, buf, table)
	fn := &t.nodes[table[far]]
	if fn.lo < fn.hi && (!buf.Full() || t.boxSqDist(fn, q) < buf.Bound()) {
		t.knnRec(far, depth+1, q, exclude, buf, table)
	}
}

func (t *vebTree) boxSqDist(nd *vnode, q []float64) float64 {
	dim := t.pts.Dim
	return kernel.MinSqDistToBox(q, nd.minC[:dim], nd.maxC[:dim])
}

// erase tombstones every live point whose coordinates exactly match a batch
// point, descending only into subtrees whose boxes contain candidates
// (Algorithm 2's structure, with lazy leaf removal). Returns the number of
// points newly tombstoned.
func (t *vebTree) erase(batch geom.Points, cand []int32) int {
	if t == nil || t.live == 0 || len(cand) == 0 {
		return 0
	}
	table := vebTable(t.levels)
	removed := t.eraseRec(1, 1, batch, cand, table)
	t.live -= removed
	return removed
}

func (t *vebTree) eraseRec(h, depth int, batch geom.Points, cand []int32, table []int32) int {
	nd := &t.nodes[table[h]]
	if nd.lo >= nd.hi {
		return 0
	}
	// Keep only candidates inside this node's box.
	dim := t.pts.Dim
	kept := cand[:0:0]
	for _, ci := range cand {
		p := batch.At(int(ci))
		in := true
		for c := 0; c < dim; c++ {
			if p[c] < nd.minC[c] || p[c] > nd.maxC[c] {
				in = false
				break
			}
		}
		if in {
			kept = append(kept, ci)
		}
	}
	if len(kept) == 0 {
		return 0
	}
	if depth == t.levels {
		removed := 0
		for i := nd.lo; i < nd.hi; i++ {
			li := t.idx[i]
			if t.dead[li] {
				continue
			}
			pc := t.pts.At(int(li))
			for _, ci := range kept {
				if coordsEqual(pc, batch.At(int(ci))) {
					t.dead[li] = true
					removed++
					break
				}
			}
		}
		return removed
	}
	if len(kept) > 2048 {
		var a, b int
		parlay.Do(
			func() { a = t.eraseRec(2*h, depth+1, batch, kept, table) },
			func() { b = t.eraseRec(2*h+1, depth+1, batch, kept, table) },
		)
		return a + b
	}
	return t.eraseRec(2*h, depth+1, batch, kept, table) +
		t.eraseRec(2*h+1, depth+1, batch, kept, table)
}

func coordsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// livePoints appends the coordinates and global ids of all live points.
func (t *vebTree) livePoints(coords []float64, ids []int32) ([]float64, []int32) {
	if t == nil {
		return coords, ids
	}
	dim := t.pts.Dim
	for li := 0; li < t.pts.Len(); li++ {
		if !t.dead[li] {
			coords = append(coords, t.pts.At(li)...)
			ids = append(ids, t.orig[li])
		}
	}
	_ = dim
	return coords, ids
}

// size returns the live point count.
func (t *vebTree) size() int {
	if t == nil {
		return 0
	}
	return t.live
}
