package bdltree

import (
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestBDLRangeSearchMatchesBrute(t *testing.T) {
	pts := generators.UniformCube(3000, 3, 21)
	tr := New(3, Options{BufferSize: 128})
	ids := tr.Insert(pts)
	for trial := 0; trial < 15; trial++ {
		c := pts.At(trial * 200)
		w := 3 + float64(trial)
		box := geom.EmptyBox(3)
		box.Expand([]float64{c[0] - w, c[1] - w, c[2] - w})
		box.Expand([]float64{c[0] + w, c[1] + w, c[2] + w})
		got := tr.RangeSearch(box)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []int32
		for i := 0; i < pts.Len(); i++ {
			if box.Contains(pts.At(i)) {
				want = append(want, ids[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
		if tr.RangeCount(box) != len(want) {
			t.Fatalf("trial %d: count mismatch", trial)
		}
	}
}

func TestBDLRangeRespectsDeletes(t *testing.T) {
	pts := generators.UniformCube(1000, 2, 22)
	tr := New(2, Options{BufferSize: 64})
	ids := tr.Insert(pts)
	tr.Delete(pts.Slice(0, 500))
	box := geom.BoundingBoxAll(pts) // everything
	got := tr.RangeSearch(box)
	if len(got) != 500 {
		t.Fatalf("range after delete returned %d, want 500", len(got))
	}
	deleted := map[int32]bool{}
	for _, id := range ids[:500] {
		deleted[id] = true
	}
	for _, id := range got {
		if deleted[id] {
			t.Fatalf("deleted id %d returned", id)
		}
	}
}

func TestBDLRangeAcrossBatches(t *testing.T) {
	pts := generators.UniformCube(1000, 2, 23)
	tr := New(2, Options{BufferSize: 64})
	// Insert in 10 batches so points are spread across several trees and
	// the buffer.
	for b := 0; b < 10; b++ {
		tr.Insert(pts.Slice(b*100, (b+1)*100))
	}
	box := geom.BoundingBoxAll(pts)
	if got := tr.RangeSearch(box); len(got) != 1000 {
		t.Fatalf("full-box range returned %d", len(got))
	}
	empty := geom.EmptyBox(2)
	empty.Expand([]float64{-100, -100})
	empty.Expand([]float64{-99, -99})
	if got := tr.RangeSearch(empty); len(got) != 0 {
		t.Fatalf("empty-box range returned %d", len(got))
	}
}
