package bdltree

import (
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// rangeRec collects live points inside box from the subtree at heap h.
func (t *vebTree) rangeRec(h, depth int, box geom.Box, out *[]int32, table []int32) {
	nd := &t.nodes[table[h]]
	if nd.lo >= nd.hi {
		return
	}
	dim := t.pts.Dim
	disjoint := false
	inside := true
	for c := 0; c < dim; c++ {
		if nd.maxC[c] < box.Min[c] || nd.minC[c] > box.Max[c] {
			disjoint = true
			break
		}
		if nd.minC[c] < box.Min[c] || nd.maxC[c] > box.Max[c] {
			inside = false
		}
	}
	if disjoint {
		return
	}
	if inside || depth == t.levels {
		base := int(nd.lo) * dim
		for i := nd.lo; i < nd.hi; i++ {
			li := t.idx[i]
			if !t.dead[li] && (inside || box.Contains(t.leafCoords[base:base+dim])) {
				*out = append(*out, t.orig[li])
			}
			base += dim
		}
		return
	}
	t.rangeRec(2*h, depth+1, box, out, table)
	t.rangeRec(2*h+1, depth+1, box, out, table)
}

// rangeSearch returns the global ids of live points inside the closed box.
func (t *vebTree) rangeSearch(box geom.Box) []int32 {
	if t == nil || t.live == 0 {
		return nil
	}
	var out []int32
	t.rangeRec(1, 1, box, &out, vebTable(t.levels))
	return out
}

// RangeSearch returns the global ids of all live points inside the closed
// box, querying the buffer tree and every static tree (in parallel across
// trees for large structures).
func (t *Tree) RangeSearch(box geom.Box) []int32 {
	all := append([]*vebTree{t.buffer}, t.trees...)
	results := make([][]int32, len(all))
	parlay.For(len(all), 1, func(i int) {
		results[i] = all[i].rangeSearch(box)
	})
	var out []int32
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// RangeCount returns the number of live points inside the closed box.
func (t *Tree) RangeCount(box geom.Box) int {
	return len(t.RangeSearch(box))
}
