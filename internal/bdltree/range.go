package bdltree

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/kernel"
	"pargeo/internal/parlay"
)

// vebRangeChunk is the leaf-scan chunk of the f32 range prefilter:
// PruneBox masks land in a fixed stack buffer so range queries allocate
// nothing per leaf (spatial-median trees can have leaves well beyond
// vebLeafSize, so the scan is chunked).
const vebRangeChunk = 64

// vebRangeCtx carries one range query's state down the recursion: the
// exact float64 box plus — when the tree's f32 filter is sound — its
// conservatively widened float32 image (2× the coordinate error bound per
// side, as in kdtree). Every truly-inside point passes the widened f32
// test; survivors are re-verified against the float64 truth, so results
// are exact.
type vebRangeCtx struct {
	box        geom.Box
	lo32, hi32 [kdtree.MaxDim]float32
	f32        bool
}

func (t *vebTree) makeRangeCtx(box geom.Box) vebRangeCtx {
	rc := vebRangeCtx{box: box}
	if !t.f32ok {
		return rc
	}
	pad := 2 * t.maxAbs * kdtree.F32CoordErr
	for c := 0; c < t.pts.Dim; c++ {
		if math.IsNaN(box.Min[c]) || math.IsNaN(box.Max[c]) {
			return rc
		}
		rc.lo32[c] = float32(box.Min[c] - pad)
		rc.hi32[c] = float32(box.Max[c] + pad)
	}
	rc.f32 = true
	return rc
}

// rangeLeaf collects the live in-box points of one leaf. inside means the
// whole leaf box is covered, so only tombstones need checking; otherwise
// the f32 column filter discards far points in bulk and every survivor is
// re-verified against the exact float64 coordinates.
func (t *vebTree) rangeLeaf(nd *vnode, rc *vebRangeCtx, inside bool, out *[]int32) {
	dim := t.pts.Dim
	if inside {
		for i := nd.lo; i < nd.hi; i++ {
			if li := t.idx[i]; !t.dead[li] {
				*out = append(*out, t.orig[li])
			}
		}
		return
	}
	m := int(nd.hi - nd.lo)
	if !rc.f32 {
		for i := nd.lo; i < nd.hi; i++ {
			li := t.idx[i]
			if !t.dead[li] && rc.box.Contains(t.pts.At(int(li))) {
				*out = append(*out, t.orig[li])
			}
		}
		return
	}
	slab := t.coordsF32[int(nd.lo)*dim:]
	var mask [vebRangeChunk]byte
	for off := 0; off < m; off += vebRangeChunk {
		cn := m - off
		if cn > vebRangeChunk {
			cn = vebRangeChunk
		}
		kernel.PruneBox(mask[:cn], rc.lo32[:dim], rc.hi32[:dim], slab[off:], cn, m)
		for i := 0; i < cn; i++ {
			if mask[i] != 0 {
				li := t.idx[int(nd.lo)+off+i]
				if !t.dead[li] && rc.box.Contains(t.pts.At(int(li))) {
					*out = append(*out, t.orig[li])
				}
			}
		}
	}
}

// rangeRec collects live points inside the box from the subtree at heap h.
func (t *vebTree) rangeRec(h, depth int, rc *vebRangeCtx, out *[]int32, table []int32) {
	nd := &t.nodes[table[h]]
	if nd.lo >= nd.hi {
		return
	}
	dim := t.pts.Dim
	disjoint := false
	inside := true
	for c := 0; c < dim; c++ {
		if nd.maxC[c] < rc.box.Min[c] || nd.minC[c] > rc.box.Max[c] {
			disjoint = true
			break
		}
		if nd.minC[c] < rc.box.Min[c] || nd.maxC[c] > rc.box.Max[c] {
			inside = false
		}
	}
	if disjoint {
		return
	}
	if inside || depth == t.levels {
		t.rangeLeaf(nd, rc, inside, out)
		return
	}
	t.rangeRec(2*h, depth+1, rc, out, table)
	t.rangeRec(2*h+1, depth+1, rc, out, table)
}

// rangeSearch returns the global ids of live points inside the closed box.
func (t *vebTree) rangeSearch(box geom.Box) []int32 {
	if t == nil || t.live == 0 {
		return nil
	}
	var out []int32
	rc := t.makeRangeCtx(box)
	t.rangeRec(1, 1, &rc, &out, vebTable(t.levels))
	return out
}

// RangeSearch returns the global ids of all live points inside the closed
// box, querying the buffer tree and every static tree (in parallel across
// trees for large structures).
func (t *Tree) RangeSearch(box geom.Box) []int32 {
	all := append([]*vebTree{t.buffer}, t.trees...)
	results := make([][]int32, len(all))
	parlay.For(len(all), 1, func(i int) {
		results[i] = all[i].rangeSearch(box)
	})
	var out []int32
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// RangeCount returns the number of live points inside the closed box.
func (t *Tree) RangeCount(box geom.Box) int {
	return len(t.RangeSearch(box))
}
