package bdltree

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/oracle"
)

// TestInsertWithIDsRoundTrip: caller-assigned ids must come back from
// queries, and internally assigned ids (later plain Inserts, deletion
// rebalancing) must never collide with them.
func TestInsertWithIDsRoundTrip(t *testing.T) {
	const dim = 2
	tr := New(dim, Options{BufferSize: 32})
	batch := generators.UniformCube(300, dim, 1)
	ids := make([]int32, batch.Len())
	for i := range ids {
		ids[i] = int32(1000 + 7*i) // sparse, non-contiguous global ids
	}
	tr.InsertWithIDs(batch, ids)
	if tr.Size() != 300 {
		t.Fatalf("size %d", tr.Size())
	}
	_, gids := tr.Points()
	seen := make(map[int32]bool, len(gids))
	for _, g := range gids {
		seen[g] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("assigned id %d lost", id)
		}
	}
	// A later plain Insert must mint ids beyond every caller-assigned one.
	more := tr.Insert(generators.UniformCube(50, dim, 2))
	for _, id := range more {
		if seen[id] {
			t.Fatalf("fresh id %d collides with caller-assigned id", id)
		}
	}
	// Deletion rebalancing (reinsert + remap) must preserve surviving ids.
	tr.Delete(geom.Points{Data: batch.Data[:200*dim], Dim: dim})
	_, gids = tr.Points()
	want := make(map[int32]bool)
	for i := 200; i < 300; i++ {
		want[ids[i]] = true
	}
	for _, id := range more {
		want[id] = true
	}
	if len(gids) != len(want) {
		t.Fatalf("%d live after delete, want %d", len(gids), len(want))
	}
	for _, g := range gids {
		if !want[g] {
			t.Fatalf("unexpected id %d after rebalance", g)
		}
	}
}

// TestNewFromSortedMatchesInsert: per-shard construction from a pre-sorted
// slice must answer identically to incremental insertion.
func TestNewFromSortedMatchesInsert(t *testing.T) {
	const dim = 3
	pts := generators.UniformCube(500, dim, 9)
	ids := make([]int32, pts.Len())
	for i := range ids {
		ids[i] = int32(i) * 3
	}
	tr := NewFromSorted(dim, Options{BufferSize: 64}, pts, ids)
	if tr.Size() != pts.Len() {
		t.Fatalf("size %d", tr.Size())
	}
	probes := generators.UniformCube(20, dim, 10)
	for i := 0; i < probes.Len(); i++ {
		q := probes.At(i)
		got := tr.KNN(geom.Points{Data: q, Dim: dim}, 4, nil)[0]
		wantD := oracle.KNNDists(pts, q, 4, -1)
		for j, id := range got {
			if geom.SqDist(q, pts.At(int(id)/3)) != wantD[j] {
				t.Fatalf("probe %d: knn[%d] distance mismatch", i, j)
			}
		}
	}
	if NewFromSorted(dim, Options{}, geom.Points{Dim: dim}, nil).Size() != 0 {
		t.Fatal("empty NewFromSorted not empty")
	}
}

// TestKNNIntoSharedBuffer: feeding several trees through one buffer must
// answer k-NN over their union — the sharded engine's shared
// shrinking-radius walk.
func TestKNNIntoSharedBuffer(t *testing.T) {
	const dim = 2
	all := generators.UniformCube(600, dim, 21)
	// Split into three disjoint "shards" of very different sizes.
	cuts := []int{0, 50, 400, 600}
	trees := make([]*Tree, 3)
	for s := 0; s < 3; s++ {
		sub := all.Slice(cuts[s], cuts[s+1])
		ids := make([]int32, sub.Len())
		for i := range ids {
			ids[i] = int32(cuts[s] + i)
		}
		trees[s] = NewFromSorted(dim, Options{BufferSize: 16}, sub, ids)
	}
	probes := generators.UniformCube(30, dim, 22)
	for k := range []int{1, 5, 700} { // 700 > total: short answers
		k = []int{1, 5, 700}[k]
		buf := kdtree.NewKNNBuffer(k)
		for i := 0; i < probes.Len(); i++ {
			q := probes.At(i)
			buf.Reset()
			for _, tr := range trees {
				tr.KNNInto(q, -1, buf)
			}
			ids := buf.Result(nil)
			wantD := oracle.KNNDists(all, q, k, -1)
			if len(ids) != len(wantD) {
				t.Fatalf("k=%d probe %d: got %d results, want %d", k, i, len(ids), len(wantD))
			}
			for j, id := range ids {
				if geom.SqDist(q, all.At(int(id))) != wantD[j] {
					t.Fatalf("k=%d probe %d: result %d distance mismatch", k, i, j)
				}
			}
		}
	}
}
