package bdltree

import (
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/oracle"
)

// TestInsertWithIDsRoundTrip: caller-assigned ids must come back from
// queries, and internally assigned ids (later plain Inserts, deletion
// rebalancing) must never collide with them.
func TestInsertWithIDsRoundTrip(t *testing.T) {
	const dim = 2
	tr := New(dim, Options{BufferSize: 32})
	batch := generators.UniformCube(300, dim, 1)
	ids := make([]int32, batch.Len())
	for i := range ids {
		ids[i] = int32(1000 + 7*i) // sparse, non-contiguous global ids
	}
	tr.InsertWithIDs(batch, ids)
	if tr.Size() != 300 {
		t.Fatalf("size %d", tr.Size())
	}
	_, gids := tr.Points()
	seen := make(map[int32]bool, len(gids))
	for _, g := range gids {
		seen[g] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("assigned id %d lost", id)
		}
	}
	// A later plain Insert must mint ids beyond every caller-assigned one.
	more := tr.Insert(generators.UniformCube(50, dim, 2))
	for _, id := range more {
		if seen[id] {
			t.Fatalf("fresh id %d collides with caller-assigned id", id)
		}
	}
	// Deletion rebalancing (reinsert + remap) must preserve surviving ids.
	tr.Delete(geom.Points{Data: batch.Data[:200*dim], Dim: dim})
	_, gids = tr.Points()
	want := make(map[int32]bool)
	for i := 200; i < 300; i++ {
		want[ids[i]] = true
	}
	for _, id := range more {
		want[id] = true
	}
	if len(gids) != len(want) {
		t.Fatalf("%d live after delete, want %d", len(gids), len(want))
	}
	for _, g := range gids {
		if !want[g] {
			t.Fatalf("unexpected id %d after rebalance", g)
		}
	}
}

// TestNewFromSortedMatchesInsert: per-shard construction from a pre-sorted
// slice must answer identically to incremental insertion.
func TestNewFromSortedMatchesInsert(t *testing.T) {
	const dim = 3
	pts := generators.UniformCube(500, dim, 9)
	ids := make([]int32, pts.Len())
	for i := range ids {
		ids[i] = int32(i) * 3
	}
	tr := NewFromSorted(dim, Options{BufferSize: 64}, pts, ids)
	if tr.Size() != pts.Len() {
		t.Fatalf("size %d", tr.Size())
	}
	probes := generators.UniformCube(20, dim, 10)
	for i := 0; i < probes.Len(); i++ {
		q := probes.At(i)
		got := tr.KNN(geom.Points{Data: q, Dim: dim}, 4, nil)[0]
		wantD := oracle.KNNDists(pts, q, 4, -1)
		for j, id := range got {
			if geom.SqDist(q, pts.At(int(id)/3)) != wantD[j] {
				t.Fatalf("probe %d: knn[%d] distance mismatch", i, j)
			}
		}
	}
	if NewFromSorted(dim, Options{}, geom.Points{Dim: dim}, nil).Size() != 0 {
		t.Fatal("empty NewFromSorted not empty")
	}
}

// TestExtractRange: the migration extraction must return exactly the live
// points whose codes fall in the interval, code-sorted, with their ids —
// differentially against a brute-force re-encoding of Points().
func TestExtractRange(t *testing.T) {
	const dim = 2
	pts := generators.UniformCube(400, dim, 31)
	tr := New(dim, Options{BufferSize: 32})
	ids := tr.Insert(pts)
	// Delete a slice so tombstones are in play.
	tr.Delete(geom.Points{Data: pts.Data[:80*dim], Dim: dim})
	world := geom.BoundingBoxAll(pts)

	live, liveIDs := tr.Points()
	codeOf := make(map[int32]uint64, live.Len())
	for i := 0; i < live.Len(); i++ {
		codeOf[liveIDs[i]] = morton.Encode(live.At(i), world)
	}
	allCodes := make([]uint64, 0, len(codeOf))
	for _, c := range codeOf {
		allCodes = append(allCodes, c)
	}
	sort.Slice(allCodes, func(i, j int) bool { return allCodes[i] < allCodes[j] })
	mid := allCodes[len(allCodes)/2]

	for _, iv := range []struct{ lo, hi uint64 }{
		{0, ^uint64(0)},
		{0, mid},
		{mid + 1, ^uint64(0)},
		{mid, mid},
		{5, 1}, // empty interval
	} {
		codes, sub, subIDs := tr.ExtractRange(world, iv.lo, iv.hi)
		want := 0
		for _, c := range codeOf {
			if c >= iv.lo && c <= iv.hi {
				want++
			}
		}
		if len(subIDs) != want || sub.Len() != want || len(codes) != want {
			t.Fatalf("[%d,%d]: extracted %d points, want %d", iv.lo, iv.hi, len(subIDs), want)
		}
		for i := range subIDs {
			if codes[i] < iv.lo || codes[i] > iv.hi {
				t.Fatalf("[%d,%d]: code %d outside interval", iv.lo, iv.hi, codes[i])
			}
			if i > 0 && codes[i-1] > codes[i] {
				t.Fatalf("[%d,%d]: codes not sorted at %d", iv.lo, iv.hi, i)
			}
			if got := morton.Encode(sub.At(i), world); got != codes[i] {
				t.Fatalf("[%d,%d]: row %d code %d, re-encoded %d", iv.lo, iv.hi, i, codes[i], got)
			}
			if codeOf[subIDs[i]] != codes[i] {
				t.Fatalf("[%d,%d]: id %d carries wrong code", iv.lo, iv.hi, subIDs[i])
			}
		}
	}
	_ = ids
}

// TestMerge: fusing two trees must yield the exact union of their live
// points (ids preserved), whether their code ranges are adjacent — the
// shard-merge case — or interleaved.
func TestMerge(t *testing.T) {
	const dim = 2
	all := generators.UniformCube(500, dim, 33)
	world := geom.BoundingBoxAll(all)
	opts := Options{BufferSize: 16}

	build := func(sub geom.Points, base int) *Tree {
		ids := make([]int32, sub.Len())
		for i := range ids {
			ids[i] = int32(base + i)
		}
		tr := New(dim, opts)
		tr.InsertWithIDs(sub, ids)
		return tr
	}
	for name, cut := range map[string]int{"adjacent": 200, "interleaved": 0} {
		var a, b *Tree
		if cut > 0 {
			// Morton-sort first so the two trees own adjacent code ranges.
			sorted := morton.SortPoints(all)
			a, b = build(sorted.Slice(0, cut), 0), build(sorted.Slice(cut, sorted.Len()), cut)
		} else {
			// Even/odd rows: the two trees' code ranges fully interleave.
			ev := geom.Points{Dim: dim}
			od := geom.Points{Dim: dim}
			for i := 0; i < all.Len(); i++ {
				if i%2 == 0 {
					ev.Data = append(ev.Data, all.At(i)...)
				} else {
					od.Data = append(od.Data, all.At(i)...)
				}
			}
			a, b = build(ev, 0), build(od, 1000)
		}
		m := Merge(world, a, b)
		if m.Size() != a.Size()+b.Size() {
			t.Fatalf("%s: merged size %d, want %d", name, m.Size(), a.Size()+b.Size())
		}
		wantIDs := make(map[int32][]float64)
		for _, tr := range []*Tree{a, b} {
			p, g := tr.Points()
			for i, id := range g {
				wantIDs[id] = append([]float64(nil), p.At(i)...)
			}
		}
		mp, mg := m.Points()
		if len(mg) != len(wantIDs) {
			t.Fatalf("%s: %d ids, want %d", name, len(mg), len(wantIDs))
		}
		for i, id := range mg {
			w, ok := wantIDs[id]
			if !ok {
				t.Fatalf("%s: unexpected id %d", name, id)
			}
			if geom.SqDist(w, mp.At(i)) != 0 {
				t.Fatalf("%s: id %d moved", name, id)
			}
		}
		// Merged tree answers queries over the union exactly.
		probes := generators.UniformCube(10, dim, 35)
		for i := 0; i < probes.Len(); i++ {
			q := probes.At(i)
			got := m.KNN(geom.Points{Data: q, Dim: dim}, 3, nil)[0]
			wantD := oracle.KNNDists(all, q, 3, -1)
			for j, id := range got {
				if geom.SqDist(q, wantIDs[id]) != wantD[j] {
					t.Fatalf("%s: probe %d knn[%d] mismatch", name, i, j)
				}
			}
		}
	}
}

// TestKNNIntoSharedBuffer: feeding several trees through one buffer must
// answer k-NN over their union — the sharded engine's shared
// shrinking-radius walk.
func TestKNNIntoSharedBuffer(t *testing.T) {
	const dim = 2
	all := generators.UniformCube(600, dim, 21)
	// Split into three disjoint "shards" of very different sizes.
	cuts := []int{0, 50, 400, 600}
	trees := make([]*Tree, 3)
	for s := 0; s < 3; s++ {
		sub := all.Slice(cuts[s], cuts[s+1])
		ids := make([]int32, sub.Len())
		for i := range ids {
			ids[i] = int32(cuts[s] + i)
		}
		trees[s] = NewFromSorted(dim, Options{BufferSize: 16}, sub, ids)
	}
	probes := generators.UniformCube(30, dim, 22)
	for k := range []int{1, 5, 700} { // 700 > total: short answers
		k = []int{1, 5, 700}[k]
		buf := kdtree.NewKNNBuffer(k)
		for i := 0; i < probes.Len(); i++ {
			q := probes.At(i)
			buf.Reset()
			for _, tr := range trees {
				tr.KNNInto(q, -1, buf)
			}
			ids := buf.Result(nil)
			wantD := oracle.KNNDists(all, q, k, -1)
			if len(ids) != len(wantD) {
				t.Fatalf("k=%d probe %d: got %d results, want %d", k, i, len(ids), len(wantD))
			}
			for j, id := range ids {
				if geom.SqDist(q, all.At(int(id))) != wantD[j] {
					t.Fatalf("k=%d probe %d: result %d distance mismatch", k, i, j)
				}
			}
		}
	}
}
