// Package emst computes the Euclidean minimum spanning tree via the
// well-separated pair decomposition (ParGeo Module 3, after Callahan &
// Kosaraju and the ParGeo/Wang-et-al. EMST pipeline):
//
//  1. build a kd-tree, compute a WSPD with separation 2;
//  2. for each well-separated pair, compute the exact bichromatic closest
//     pair between the two node point sets (dual-tree search, in parallel
//     across pairs) — with s >= 2 the EMST is a subset of these candidate
//     edges, plus all intra-leaf pairs;
//  3. run Kruskal (parallel sort + sequential union-find) on the
//     candidates.
//
// The result is the exact EMST in any (low) dimension.
package emst

import (
	"math"

	"pargeo/internal/closestpair"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
	"pargeo/internal/unionfind"
	"pargeo/internal/wspd"
)

// Edge is a weighted tree edge between point indices U and V.
type Edge struct {
	U, V   int32
	SqDist float64
}

// Compute returns the EMST edges (n-1 of them for n >= 1 distinct points).
//
// The tree is built with leaf size 1: the MST-subset-of-BCCP-edges theorem
// requires every emitted WSPD pair to be genuinely 2-separated, and
// single-point leaves guarantee that (multi-point leaves would force the
// WSPD to emit occasional non-separated leaf pairs, for which one BCCP
// edge per pair is not enough).
func Compute(pts geom.Points) []Edge {
	t := kdtree.Build(pts, kdtree.Options{Split: kdtree.ObjectMedian, LeafSize: 1})
	return ComputeFromTree(t)
}

// ComputeFromTree computes the EMST over the points of an existing kd-tree.
func ComputeFromTree(t *kdtree.Tree) []Edge {
	n := t.Pts.Len()
	if n < 2 {
		return nil
	}
	pairs := wspd.Compute(t, 2.0)

	// One candidate edge per WSPD pair: the exact BCCP of the pair.
	cands := make([]Edge, len(pairs))
	parlay.For(len(pairs), 8, func(i int) {
		r := closestpair.BCCPNodes(t, t, pairs[i].A, pairs[i].B,
			closestpair.Result{A: -1, B: -1, SqDist: math.Inf(1)})
		cands[i] = Edge{U: r.A, V: r.B, SqDist: r.SqDist}
	})

	// Intra-leaf candidate edges (the WSPD recursion does not descend into
	// leaves, so pairs inside one leaf are covered here).
	leafEdges := collectLeafEdges(t)
	cands = append(cands, leafEdges...)

	// Kruskal.
	parlay.Sort(cands, func(a, b Edge) bool {
		if a.SqDist != b.SqDist {
			return a.SqDist < b.SqDist
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	uf := unionfind.New(n)
	out := make([]Edge, 0, n-1)
	for _, e := range cands {
		if e.U < 0 {
			continue
		}
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			if len(out) == n-1 {
				break
			}
		}
	}
	return out
}

func collectLeafEdges(t *kdtree.Tree) []Edge {
	// The flat preorder arena makes leaf collection a linear scan — no
	// recursive pointer walk.
	var leaves []*kdtree.Node
	for i := range t.Nodes {
		if nd := &t.Nodes[i]; nd.IsLeaf() && nd.Size() > 1 {
			leaves = append(leaves, nd)
		}
	}
	counts := make([]int, len(leaves))
	for i, l := range leaves {
		m := l.Size()
		counts[i] = m * (m - 1) / 2
	}
	total := parlay.ScanInts(counts)
	out := make([]Edge, total)
	parlay.For(len(leaves), 4, func(i int) {
		ids := t.Points(leaves[i])
		k := counts[i]
		for a := 0; a < len(ids); a++ {
			pa := t.Pts.At(int(ids[a]))
			for b := a + 1; b < len(ids); b++ {
				out[k] = Edge{U: ids[a], V: ids[b], SqDist: geom.SqDist(pa, t.Pts.At(int(ids[b])))}
				k++
			}
		}
	})
	return out
}

// TotalWeight returns the sum of Euclidean edge lengths.
func TotalWeight(edges []Edge) float64 {
	s := 0.0
	for _, e := range edges {
		s += math.Sqrt(e.SqDist)
	}
	return s
}

// Prim is the quadratic oracle (exact EMST by Prim's algorithm on the
// complete graph) used to validate Compute in tests.
func Prim(pts geom.Points) []Edge {
	n := pts.Len()
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int32, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestDist[j] = pts.SqDist(0, j)
		bestFrom[j] = 0
	}
	out := make([]Edge, 0, n-1)
	for len(out) < n-1 {
		u, best := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && bestDist[j] < best {
				u, best = j, bestDist[j]
			}
		}
		if u < 0 {
			break
		}
		inTree[u] = true
		out = append(out, Edge{U: bestFrom[u], V: int32(u), SqDist: best})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := pts.SqDist(u, j); d < bestDist[j] {
					bestDist[j] = d
					bestFrom[j] = int32(u)
				}
			}
		}
	}
	return out
}
