package emst

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/unionfind"
)

func TestEMSTMatchesPrim(t *testing.T) {
	for _, dim := range []int{2, 3, 5} {
		for _, n := range []int{2, 5, 50, 300} {
			pts := generators.UniformCube(n, dim, uint64(n*dim))
			got := Compute(pts)
			want := Prim(pts)
			if len(got) != n-1 || len(want) != n-1 {
				t.Fatalf("dim=%d n=%d: edge counts %d / %d", dim, n, len(got), len(want))
			}
			gw, ww := TotalWeight(got), TotalWeight(want)
			if math.Abs(gw-ww) > 1e-9*(1+ww) {
				t.Fatalf("dim=%d n=%d: weight %.12g, Prim %.12g", dim, n, gw, ww)
			}
		}
	}
}

func TestEMSTIsSpanningTree(t *testing.T) {
	pts := generators.SeedSpreader(5000, 2, 3)
	edges := Compute(pts)
	if len(edges) != 4999 {
		t.Fatalf("%d edges for 5000 points", len(edges))
	}
	uf := unionfind.New(5000)
	for _, e := range edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("cycle at edge %v", e)
		}
	}
	if uf.Count() != 1 {
		t.Fatalf("not spanning: %d components", uf.Count())
	}
}

func TestEMSTClusteredMatchesPrim(t *testing.T) {
	pts := generators.SeedSpreader(400, 3, 9)
	gw := TotalWeight(Compute(pts))
	ww := TotalWeight(Prim(pts))
	if math.Abs(gw-ww) > 1e-9*(1+ww) {
		t.Fatalf("clustered weight %.12g vs Prim %.12g", gw, ww)
	}
}

func TestEMSTTrivial(t *testing.T) {
	if e := Compute(geom.NewPoints(0, 2)); e != nil {
		t.Fatal("empty input")
	}
	if e := Compute(geom.Points{Dim: 2, Data: []float64{1, 1}}); e != nil {
		t.Fatal("single point")
	}
	two := geom.Points{Dim: 2, Data: []float64{0, 0, 3, 4}}
	e := Compute(two)
	if len(e) != 1 || e[0].SqDist != 25 {
		t.Fatalf("two points: %v", e)
	}
}

func TestUnionFind(t *testing.T) {
	uf := unionfind.New(10)
	if uf.Count() != 10 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) || uf.Union(0, 1) {
		t.Fatal("union semantics")
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Fatal("connected wrong")
	}
	uf.Union(2, 3)
	uf.Union(1, 3)
	if !uf.Connected(0, 2) || uf.Count() != 7 {
		t.Fatalf("merge wrong: count=%d", uf.Count())
	}
}
