//go:build race

package kdtree

// raceEnabled: see alloc_norace_test.go.
const raceEnabled = true
