package kdtree

import (
	"fmt"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// Differential tests: every query the kd-tree answers is re-answered by the
// brute-force oracle. k-NN answers are compared by their sorted distance
// sequences (the tie-insensitive signature — equidistant points may be
// picked in any order); range answers are compared as exact index sets.

type distCase struct {
	name string
	gen  func(n, dim int, seed uint64) geom.Points
}

var distCases = []distCase{
	{"Uniform", generators.UniformCube},
	{"InSphere", generators.InSphere},
	{"OnSphere", generators.OnSphere},
	{"SeedSpreader", generators.SeedSpreader},
	{"Duplicated", func(n, dim int, seed uint64) geom.Points {
		// Every point appears ~4 times: heavy ties in both k-NN and range.
		base := generators.UniformCube((n+3)/4, dim, seed)
		pts := geom.NewPoints(n, dim)
		for i := 0; i < n; i++ {
			pts.Set(i, base.At(i%base.Len()))
		}
		return pts
	}},
	{"Collinear", func(n, dim int, seed uint64) geom.Points {
		// All points on a line: degenerate boxes in every split dimension.
		pts := geom.NewPoints(n, dim)
		row := make([]float64, dim)
		for i := 0; i < n; i++ {
			for c := range row {
				row[c] = float64(i) * float64(c+1)
			}
			pts.Set(i, row)
		}
		return pts
	}},
	{"SinglePoint", func(n, dim int, seed uint64) geom.Points {
		// n copies of one coordinate: zero-width boxes everywhere.
		pts := geom.NewPoints(n, dim)
		row := make([]float64, dim)
		for c := range row {
			row[c] = 3.25
		}
		for i := 0; i < n; i++ {
			pts.Set(i, row)
		}
		return pts
	}},
}

func checkKNNDists(t *testing.T, pts geom.Points, got []int32, q []float64, wantD []float64, label string) {
	t.Helper()
	if len(got) != len(wantD) {
		t.Fatalf("%s: got %d neighbors, oracle %d", label, len(got), len(wantD))
	}
	for j, id := range got {
		if d := geom.SqDist(q, pts.At(int(id))); d != wantD[j] {
			t.Fatalf("%s: neighbor %d at sqdist %v, oracle %v", label, j, d, wantD[j])
		}
	}
}

func TestKNNMatchesOracle(t *testing.T) {
	const n = 400
	for _, tc := range distCases {
		for _, dim := range []int{2, 3, 5} {
			for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
				for seed := uint64(1); seed <= 3; seed++ {
					label := fmt.Sprintf("%s/d%d/%v/seed%d", tc.name, dim, split, seed)
					pts := tc.gen(n, dim, seed)
					tr := Build(pts, Options{Split: split})
					queries := make([]int32, 0, 20)
					for i := 0; i < 20; i++ {
						queries = append(queries, int32((i*37)%n))
					}
					for _, k := range []int{1, 5, 16} {
						res := tr.KNN(queries, k)
						for qi, q := range queries {
							wantD := oracle.KNNDists(pts, pts.At(int(q)), k, q)
							checkKNNDists(t, pts, res[qi],
								pts.At(int(q)), wantD, label+fmt.Sprintf("/k%d/q%d", k, q))
						}
					}
				}
			}
		}
	}
}

func TestRangeMatchesOracle(t *testing.T) {
	const n = 500
	for _, tc := range distCases {
		for _, dim := range []int{2, 3} {
			for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
				seed := uint64(7)
				label := fmt.Sprintf("%s/d%d/%v", tc.name, dim, split)
				pts := tc.gen(n, dim, seed)
				tr := Build(pts, Options{Split: split})
				boxes := rangeProbeBoxes(pts, dim)
				for bi, box := range boxes {
					want := oracle.RangeSearch(pts, box)
					got := tr.RangeSearch(box)
					if !sameIndexSet(got, want) {
						t.Fatalf("%s/box%d: range set mismatch (%d vs %d)",
							label, bi, len(got), len(want))
					}
					if cnt := tr.RangeCount(box); cnt != len(want) {
						t.Fatalf("%s/box%d: count %d, oracle %d", label, bi, cnt, len(want))
					}
				}
			}
		}
	}
}

// rangeProbeBoxes builds boxes exercising all cases: containing everything,
// nothing, partial overlap, and degenerate zero-volume boxes on a point
// (closed-boundary semantics).
func rangeProbeBoxes(pts geom.Points, dim int) []geom.Box {
	lo, hi := make([]float64, dim), make([]float64, dim)
	bb := geom.EmptyBox(dim)
	for i := 0; i < pts.Len(); i++ {
		bb.Expand(pts.At(i))
	}
	var boxes []geom.Box
	// Everything.
	for c := 0; c < dim; c++ {
		lo[c], hi[c] = bb.Min[c]-1, bb.Max[c]+1
	}
	boxes = append(boxes, cloneBox(lo, hi))
	// Nothing.
	for c := 0; c < dim; c++ {
		lo[c], hi[c] = bb.Max[c]+10, bb.Max[c]+20
	}
	boxes = append(boxes, cloneBox(lo, hi))
	// Quadrants and slabs.
	for c := 0; c < dim; c++ {
		mid := (bb.Min[c] + bb.Max[c]) / 2
		for d := 0; d < dim; d++ {
			lo[d], hi[d] = bb.Min[d]-1, bb.Max[d]+1
		}
		lo[c], hi[c] = bb.Min[c], mid
		boxes = append(boxes, cloneBox(lo, hi))
	}
	// Degenerate box exactly on a data point: boundary must be inside.
	p := pts.At(pts.Len() / 2)
	boxes = append(boxes, cloneBox(p, p))
	return boxes
}

func cloneBox(lo, hi []float64) geom.Box {
	return geom.Box{
		Min: append([]float64(nil), lo...),
		Max: append([]float64(nil), hi...),
	}
}

func sameIndexSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int32]int, len(a))
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		seen[x]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}
