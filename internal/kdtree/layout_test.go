package kdtree

import (
	"fmt"
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

func boxAround(c []float64, w float64) geom.Box {
	b := geom.EmptyBox(len(c))
	lo := make([]float64, len(c))
	hi := make([]float64, len(c))
	for d := range c {
		lo[d], hi[d] = c[d]-w, c[d]+w
	}
	b.Expand(lo)
	b.Expand(hi)
	return b
}

// TestPreorderLayoutInvariant checks the flat arena's structural contract
// on every generator distribution (including the degenerate ones), both
// split rules, and both build modes: the root is slot 0, a node's left
// child is the next slot, the right child starts immediately after the left
// subtree (so every subtree occupies one contiguous, gap-free node range),
// the whole arena is exactly covered, children partition their parent's
// point range, and the leaf-coordinate cache mirrors Idx.
func TestPreorderLayoutInvariant(t *testing.T) {
	const n = 700
	for _, tc := range distCases {
		for _, dim := range []int{2, 3, 5} {
			for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
				for _, serial := range []bool{false, true} {
					label := fmt.Sprintf("%s/d%d/%v/serial=%v", tc.name, dim, split, serial)
					pts := tc.gen(n, dim, 5)
					tr := Build(pts, Options{Split: split, LeafSize: 8, Serial: serial})
					checkPreorder(t, tr, label)
				}
			}
		}
	}
	// Leaf size 1 (the EMST configuration) exercises the 2n-1 node shape.
	pts := generators.UniformCube(500, 2, 3)
	tr := Build(pts, Options{LeafSize: 1})
	if want := 2*500 - 1; len(tr.Nodes) != want {
		t.Fatalf("LeafSize=1: %d nodes, want %d", len(tr.Nodes), want)
	}
	checkPreorder(t, tr, "LeafSize=1")
}

func checkPreorder(t *testing.T, tr *Tree, label string) {
	t.Helper()
	if len(tr.Idx) == 0 {
		if len(tr.Nodes) != 0 {
			t.Fatalf("%s: empty tree with %d nodes", label, len(tr.Nodes))
		}
		return
	}
	var walk func(ni int32) int32 // returns the subtree's node count
	walk = func(ni int32) int32 {
		nd := &tr.Nodes[ni]
		if nd.Lo > nd.Hi {
			t.Fatalf("%s: node %d has inverted range [%d,%d)", label, ni, nd.Lo, nd.Hi)
		}
		if nd.IsLeaf() {
			if nd.Right != 0 {
				t.Fatalf("%s: leaf %d has right child %d", label, ni, nd.Right)
			}
			return 1
		}
		if nd.Left != ni+1 {
			t.Fatalf("%s: node %d left child at %d, want %d (preorder adjacency)",
				label, ni, nd.Left, ni+1)
		}
		lc := walk(nd.Left)
		if nd.Right != ni+1+lc {
			t.Fatalf("%s: node %d right child at %d, want %d (left subtree spans %d nodes)",
				label, ni, nd.Right, ni+1+lc, lc)
		}
		l, r := tr.Left(nd), tr.Right(nd)
		if l.Lo != nd.Lo || r.Hi != nd.Hi || l.Hi != r.Lo {
			t.Fatalf("%s: node %d children do not partition [%d,%d): [%d,%d)+[%d,%d)",
				label, ni, nd.Lo, nd.Hi, l.Lo, l.Hi, r.Lo, r.Hi)
		}
		return 1 + lc + walk(nd.Right)
	}
	if total := walk(0); total != int32(len(tr.Nodes)) {
		t.Fatalf("%s: reachable subtree has %d nodes, arena holds %d (gaps or orphans)",
			label, total, len(tr.Nodes))
	}
	root := tr.Root()
	if root.Lo != 0 || int(root.Hi) != len(tr.Idx) {
		t.Fatalf("%s: root range [%d,%d), want [0,%d)", label, root.Lo, root.Hi, len(tr.Idx))
	}
	// CoordsF32 mirrors Idx leaf by leaf in dimension-major order: leaf
	// [Lo,Hi) with m points stores coordinate c of its i-th point at
	// CoordsF32[Lo*dim + c*m + i], rounded to float32.
	dim := tr.Pts.Dim
	var walkLeaves func(ni int32)
	walkLeaves = func(ni int32) {
		nd := &tr.Nodes[ni]
		if !nd.IsLeaf() {
			walkLeaves(nd.Left)
			walkLeaves(nd.Right)
			return
		}
		m := int(nd.Hi - nd.Lo)
		slab := tr.CoordsF32[int(nd.Lo)*dim : int(nd.Lo)*dim+m*dim]
		for i := 0; i < m; i++ {
			want := tr.Pts.At(int(tr.Idx[int(nd.Lo)+i]))
			for c := 0; c < dim; c++ {
				if got := slab[c*m+i]; got != float32(want[c]) {
					t.Fatalf("%s: leaf [%d,%d) slab[%d*%d+%d] = %v, want f32(%v)",
						label, nd.Lo, nd.Hi, c, m, i, got, want[c])
				}
			}
		}
	}
	walkLeaves(0)
}

// TestObjectNodeCountExact cross-checks the O(log m) level-walk node
// counter against the naive recursion for every size and several leaf
// capacities.
func TestObjectNodeCountExact(t *testing.T) {
	var naive func(m, leaf int32) int32
	naive = func(m, leaf int32) int32 {
		if m <= leaf {
			return 1
		}
		return 1 + naive(m/2, leaf) + naive(m-m/2, leaf)
	}
	for _, leaf := range []int32{1, 2, 3, 5, 16, 31} {
		for m := int32(1); m <= 3000; m++ {
			if got, want := objectNodeCount(m, leaf), naive(m, leaf); got != want {
				t.Fatalf("objectNodeCount(%d, %d) = %d, want %d", m, leaf, got, want)
			}
		}
	}
}

// TestAllKNNMatchesOracle runs the batched AllKNN against the brute-force
// oracle on every distribution, dimension set, and split rule: each row's
// distance signature must match the oracle exactly, including the sqDists
// output and the -1/+Inf padding.
func TestAllKNNMatchesOracle(t *testing.T) {
	const n = 300
	for _, tc := range distCases {
		for _, dim := range []int{2, 3, 5} {
			for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
				pts := tc.gen(n, dim, 9)
				tr := Build(pts, Options{Split: split})
				for _, k := range []int{1, 5, 16} {
					label := fmt.Sprintf("%s/d%d/%v/k%d", tc.name, dim, split, k)
					sq := make([]float64, n*k)
					ids := tr.AllKNN(k, sq)
					for p := 0; p < n; p++ {
						wantD := oracle.KNNDists(pts, pts.At(p), k, int32(p))
						row := ids[p*k : (p+1)*k]
						for j, want := range wantD {
							id := row[j]
							if id < 0 {
								t.Fatalf("%s/p%d: row ends at %d, oracle has %d", label, p, j, len(wantD))
							}
							got := geom.SqDist(pts.At(p), pts.At(int(id)))
							if got != want {
								t.Fatalf("%s/p%d: neighbor %d at sqdist %v, oracle %v", label, p, j, got, want)
							}
							if sq[p*k+j] != want {
								t.Fatalf("%s/p%d: sqDists[%d] = %v, oracle %v", label, p, j, sq[p*k+j], want)
							}
						}
						for j := len(wantD); j < k; j++ {
							if row[j] != -1 || !isInf(sq[p*k+j]) {
								t.Fatalf("%s/p%d: padding at %d is (%d, %v), want (-1, +Inf)",
									label, p, j, row[j], sq[p*k+j])
							}
						}
					}
				}
			}
		}
	}
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

// TestAllKthSqDistMatchesOracle checks the O(n)-output batch k-th-distance
// pass (the core-distance substrate) against the oracle, including the
// +Inf convention when fewer than k neighbors exist.
func TestAllKthSqDistMatchesOracle(t *testing.T) {
	pts := generators.SeedSpreader(400, 3, 2)
	tr := Build(pts, Options{})
	for _, k := range []int{1, 4, 16} {
		got := tr.AllKthSqDist(k)
		for p := 0; p < pts.Len(); p++ {
			wantD := oracle.KNNDists(pts, pts.At(p), k, int32(p))
			want := math.Inf(1)
			if len(wantD) == k {
				want = wantD[k-1]
			}
			if got[p] != want {
				t.Fatalf("k=%d p=%d: got %v, oracle %v", k, p, got[p], want)
			}
		}
	}
	tiny := Build(generators.UniformCube(5, 2, 1), Options{})
	for _, d := range tiny.AllKthSqDist(8) {
		if !isInf(d) {
			t.Fatalf("5-point tree, k=8: got %v, want +Inf", d)
		}
	}
}

// TestAllKNNSubsetTree checks that a tree built over an index subset pads
// the rows of absent points.
func TestAllKNNSubsetTree(t *testing.T) {
	pts := generators.UniformCube(200, 2, 4)
	idx := make([]int32, 0, 100)
	for i := 0; i < 200; i += 2 {
		idx = append(idx, int32(i))
	}
	tr := BuildIndexed(pts, idx, Options{})
	const k = 3
	sq := make([]float64, 200*k)
	ids := tr.AllKNN(k, sq)
	for p := 0; p < 200; p++ {
		if p%2 == 1 {
			for j := 0; j < k; j++ {
				if ids[p*k+j] != -1 || !isInf(sq[p*k+j]) {
					t.Fatalf("absent point %d row not padded: %v", p, ids[p*k:(p+1)*k])
				}
			}
			continue
		}
		for j := 0; j < k; j++ {
			id := ids[p*k+j]
			if id < 0 || id%2 == 1 || id == int32(p) {
				t.Fatalf("point %d neighbor %d = %d: must be a distinct even (in-tree) id", p, j, id)
			}
		}
	}
}
