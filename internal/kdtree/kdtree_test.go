package kdtree

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func bruteKNN(pts geom.Points, q []float64, k int, exclude int32) []int32 {
	type cand struct {
		id int32
		d  float64
	}
	var cs []cand
	for i := 0; i < pts.Len(); i++ {
		if int32(i) == exclude {
			continue
		}
		cs = append(cs, cand{int32(i), geom.SqDist(q, pts.At(i))})
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].d != cs[b].d {
			return cs[a].d < cs[b].d
		}
		return cs[a].id < cs[b].id
	})
	if len(cs) > k {
		cs = cs[:k]
	}
	out := make([]int32, len(cs))
	for i := range cs {
		out[i] = cs[i].id
	}
	return out
}

func distsMatch(pts geom.Points, q []float64, got, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	gd := make([]float64, len(got))
	wd := make([]float64, len(want))
	for i := range got {
		gd[i] = geom.SqDist(q, pts.At(int(got[i])))
		wd[i] = geom.SqDist(q, pts.At(int(want[i])))
	}
	sort.Float64s(gd)
	sort.Float64s(wd)
	for i := range gd {
		if gd[i] != wd[i] {
			return false
		}
	}
	return true
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
		for _, dim := range []int{2, 3, 5} {
			pts := generators.UniformCube(2000, dim, uint64(dim)*7+uint64(split))
			tree := Build(pts, Options{Split: split})
			queries := make([]int32, 40)
			for i := range queries {
				queries[i] = int32(i * 50)
			}
			for _, k := range []int{1, 3, 10} {
				res := tree.KNN(queries, k)
				for qi, q := range queries {
					want := bruteKNN(pts, pts.At(int(q)), k, q)
					if !distsMatch(pts, pts.At(int(q)), res[qi], want) {
						t.Fatalf("split=%v dim=%d k=%d query %d: got %v want %v",
							split, dim, k, q, res[qi], want)
					}
				}
			}
		}
	}
}

func TestKNNClusteredData(t *testing.T) {
	pts := generators.SeedSpreader(3000, 2, 3)
	tree := Build(pts, Options{})
	queries := []int32{0, 100, 2999}
	res := tree.KNN(queries, 5)
	for qi, q := range queries {
		want := bruteKNN(pts, pts.At(int(q)), 5, q)
		if !distsMatch(pts, pts.At(int(q)), res[qi], want) {
			t.Fatalf("clustered query %d mismatch", q)
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	pts := generators.UniformCube(3000, 3, 17)
	tree := Build(pts, Options{})
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		box := geom.EmptyBox(3)
		c := pts.At(r.Intn(3000))
		w := 2 + r.Float64()*10
		lo := []float64{c[0] - w, c[1] - w, c[2] - w}
		hi := []float64{c[0] + w, c[1] + w, c[2] + w}
		box.Expand(lo)
		box.Expand(hi)
		got := tree.RangeSearch(box)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []int32
		for i := 0; i < pts.Len(); i++ {
			if box.Contains(pts.At(i)) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
		if cnt := tree.RangeCount(box); cnt != len(want) {
			t.Fatalf("trial %d: RangeCount %d, want %d", trial, cnt, len(want))
		}
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	pts := generators.UniformCube(5000, 2, 23)
	for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
		tree := Build(pts, Options{Split: split, LeafSize: 8})
		// Every point appears exactly once in the leaf ranges.
		seen := make([]bool, pts.Len())
		var walk func(nd *Node)
		walk = func(nd *Node) {
			if nd.IsLeaf() {
				for i := nd.Lo; i < nd.Hi; i++ {
					id := tree.Idx[i]
					if seen[id] {
						t.Fatalf("point %d appears twice", id)
					}
					seen[id] = true
					// Point inside node box.
					p := pts.At(int(id))
					for c := 0; c < pts.Dim; c++ {
						if p[c] < nd.MinC[c] || p[c] > nd.MaxC[c] {
							t.Fatalf("point %d outside its leaf box", id)
						}
					}
				}
				return
			}
			l, r := tree.Left(nd), tree.Right(nd)
			if l.Lo != nd.Lo || r.Hi != nd.Hi || l.Hi != r.Lo {
				t.Fatalf("split=%v: child ranges inconsistent", split)
			}
			walk(l)
			walk(r)
		}
		walk(tree.Root())
		for i, s := range seen {
			if !s {
				t.Fatalf("split=%v: point %d missing", split, i)
			}
		}
		if tree.Height() > 40 {
			t.Fatalf("split=%v: tree suspiciously deep: %d", split, tree.Height())
		}
	}
}

func TestBuildSerialMatchesParallel(t *testing.T) {
	pts := generators.UniformCube(20000, 3, 31)
	ts := Build(pts, Options{Serial: true})
	tp := Build(pts, Options{})
	// Same query results regardless of build concurrency.
	queries := []int32{1, 500, 19999}
	rs := ts.KNN(queries, 4)
	rp := tp.KNN(queries, 4)
	for i := range rs {
		if !distsMatch(pts, pts.At(int(queries[i])), rs[i], rp[i]) {
			t.Fatalf("serial/parallel build disagree on query %d", queries[i])
		}
	}
}

func TestKNNBufferBasics(t *testing.T) {
	b := NewKNNBuffer(3)
	if b.Full() {
		t.Fatal("fresh buffer full")
	}
	for i := 0; i < 20; i++ {
		b.Insert(int32(i), float64(20-i)) // distances 20..1
	}
	res := b.Result(nil)
	if len(res) != 3 {
		t.Fatalf("result len %d", len(res))
	}
	// The three nearest have distances 1, 2, 3 -> ids 19, 18, 17.
	want := []int32{19, 18, 17}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("result %v, want %v", res, want)
		}
	}
}

func TestKNNBufferFewerThanK(t *testing.T) {
	b := NewKNNBuffer(5)
	b.Insert(7, 1.5)
	b.Insert(3, 0.5)
	res := b.Result(nil)
	if len(res) != 2 || res[0] != 3 || res[1] != 7 {
		t.Fatalf("partial result %v", res)
	}
}

func TestKNNBufferProperty(t *testing.T) {
	// Property: buffer result equals the k smallest distances inserted.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		k := 4
		b := NewKNNBuffer(k)
		type kv struct {
			id int32
			d  float64
		}
		var all []kv
		for i, v := range raw {
			d := v * v // non-negative; skip NaN and +Inf (unrepresentable distances)
			if d != d || d > 1e300 {
				continue
			}
			all = append(all, kv{int32(i), d})
			b.Insert(int32(i), d)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		if len(all) > k {
			all = all[:k]
		}
		res := b.Result(nil)
		if len(res) != len(all) {
			return false
		}
		for i := range res {
			// Compare by distance (ties may reorder ids).
			var gd float64
			for _, a := range all {
				if a.id == res[i] {
					gd = a.d
					break
				}
			}
			_ = gd
			if i > 0 {
				// sorted by distance
				continue
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	empty := Build(geom.NewPoints(0, 2), Options{})
	if empty.Root() != nil {
		t.Fatal("empty tree should have nil root")
	}
	if res := empty.RangeSearch(geom.EmptyBox(2)); len(res) != 0 {
		t.Fatal("empty range search")
	}
	one := Build(geom.Points{Dim: 2, Data: []float64{1, 2}}, Options{})
	buf := NewKNNBuffer(3)
	one.KNNInto([]float64{0, 0}, -1, buf)
	if res := buf.Result(nil); len(res) != 1 || res[0] != 0 {
		t.Fatalf("single-point knn: %v", res)
	}
}

// TestParallelBuildUnderScheduler pins GOMAXPROCS above 1 so the nested
// fork-join build path through parlay's work-stealing scheduler runs even on
// single-core hosts (and under -race in CI), on both uniform and clustered
// (skew-prone) inputs.
func TestParallelBuildUnderScheduler(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, tc := range []struct {
		name string
		pts  geom.Points
	}{
		{"uniform", generators.UniformCube(60000, 3, 5)},
		{"seedspreader", generators.SeedSpreader(60000, 3, 6)},
	} {
		for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
			par := Build(tc.pts, Options{Split: split})
			ser := Build(tc.pts, Options{Split: split, Serial: true})
			if par.Root() == nil || par.Root().Size() != tc.pts.Len() {
				t.Fatalf("%s/%v: bad root", tc.name, split)
			}
			// Every point appears exactly once across the leaf ranges.
			seen := make([]bool, tc.pts.Len())
			var walk func(nd *Node)
			walk = func(nd *Node) {
				if nd.IsLeaf() {
					for i := nd.Lo; i < nd.Hi; i++ {
						id := par.Idx[i]
						if seen[id] {
							t.Fatalf("%s/%v: point %d appears twice", tc.name, split, id)
						}
						seen[id] = true
					}
					return
				}
				l, r := par.Left(nd), par.Right(nd)
				if l.Lo != nd.Lo || r.Hi != nd.Hi || l.Hi != r.Lo {
					t.Fatalf("%s/%v: child ranges inconsistent", tc.name, split)
				}
				walk(l)
				walk(r)
			}
			walk(par.Root())
			for i, s := range seen {
				if !s {
					t.Fatalf("%s/%v: point %d missing", tc.name, split, i)
				}
			}
			if h1, h2 := par.Height(), ser.Height(); h1 != h2 {
				t.Fatalf("%s/%v: parallel height %d != serial height %d", tc.name, split, h1, h2)
			}
		}
	}
}
