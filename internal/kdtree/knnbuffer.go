package kdtree

import "math"

// F32CoordErr bounds the absolute error a float32-rounded coordinate can
// carry, as a fraction of the data's largest magnitude: rounding to f32 is
// within half an ulp, i.e. |x| · 2⁻²⁴ ≤ maxAbs · 2⁻²⁴ per value, and a
// filter-side coordinate difference involves two rounded values
// (maxAbs · 2⁻²³). 2⁻²¹ gives that bound a 4× safety margin.
const F32CoordErr = 0x1p-21

// KNNBuffer is the paper's "k-NN buffer" (Appendix C.1.3): a bounded buffer
// that maintains the k nearest neighbors seen so far with amortized O(1)
// inserts. It holds up to 2k candidates; when full, a selection partition
// around the k-th smallest distance discards the far half. The partition is
// O(k) and runs once per k inserts, giving the amortized constant bound.
//
// The buffer also carries the per-query state of the float32 column filter
// (PrepareF32): the query's f32 image, the filter's distance error bound,
// and the scratch column the kernel writes squared distances into — so a
// pooled buffer makes the whole filtered scan path allocation-free.
type KNNBuffer struct {
	k     int
	ids   []int32
	dists []float64
	n     int     // live candidates in the buffer
	bound float64 // current upper bound on the k-th nearest distance

	seeded bool // bound came from SeedBound (no compaction yet)

	// float32 filter state, valid for the query PrepareF32 saw last.
	f32     bool            // filter armed for this query
	fresh   bool            // no leaf scanned since PrepareF32
	q32     [MaxDim]float32 // f32 image of the query point
	errD    float64         // bound on |f32 distance − true distance|
	thr     float64         // cached refinement threshold (squared, f32 scale)
	thrFor  float64         // Bound() value thr was computed for
	scratch []float32       // kernel output column, grown on demand
	sel     []float32       // EagerThreshold quickselect scratch
}

// knnScratchInit pre-sizes the kernel scratch column to cover default-sized
// leaves (kdtree LeafSize 32, bdltree vEB leaves 16) without ever growing —
// the zero-alloc guarantee of the scan path. Larger user-set leaves (or
// skewed spatial-median vEB leaves) grow it once per buffer.
const knnScratchInit = 64

// NewKNNBuffer returns a buffer for k neighbors.
func NewKNNBuffer(k int) *KNNBuffer {
	return &KNNBuffer{
		k:       k,
		ids:     make([]int32, 2*k),
		dists:   make([]float64, 2*k),
		bound:   inf,
		scratch: make([]float32, knnScratchInit),
		sel:     make([]float32, knnScratchInit),
	}
}

// Reset clears the buffer for reuse on a new query.
func (b *KNNBuffer) Reset() {
	b.n = 0
	b.bound = inf
	b.seeded = false
}

// K returns the configured neighbor count.
func (b *KNNBuffer) K() int { return b.k }

// Full reports whether at least k candidates have been collected.
func (b *KNNBuffer) Full() bool { return b.n >= b.k }

// Bound returns the current upper bound on the k-th nearest squared
// distance: +inf until the buffer establishes one by compaction, or the
// value a caller primed via SeedBound. Used for subtree pruning.
func (b *KNNBuffer) Bound() float64 { return b.bound }

// SeedBound primes a fresh (just Reset) buffer with an externally proven
// upper bound s on the query's k-th nearest squared distance, arming
// subtree pruning and the f32 refine threshold from the first leaf. The
// bound must be STRICT — s > the true k-th distance — because inserts
// reject d ≥ bound and pruning drops boxes at ≥ bound: a merely equal seed
// could discard the k-th neighbor itself. Callers holding a non-strict
// bound B (e.g. the triangle-inequality hand-off in AllKNN, where
// √B = k-th(p) + |pq| can be exactly attained by collinear points) must
// inflate it by a relative epsilon and skip seeding when B = 0.
//
// Soundness: every point at distance < s is still inserted and no box
// containing one is pruned, so with ≥ k candidates in range the result is
// exact — identical to the unseeded scan up to the order exact ties are
// kept.
func (b *KNNBuffer) SeedBound(s float64) {
	if b.n == 0 && s < b.bound {
		b.bound = s
		b.seeded = true
	}
}

// tightenBound lowers the pruning bound to s mid-scan when a scanned leaf
// proves a tighter upper bound on the k-th distance than the caller's seed
// (see scanLeafF32). Zero is refused: a zero bound would reject the
// duplicate points that realize it.
func (b *KNNBuffer) tightenBound(s float64) {
	if s > 0 && s < b.bound {
		b.bound = s
	}
}

// Insert offers candidate id at squared distance d.
func (b *KNNBuffer) Insert(id int32, d float64) {
	if d >= b.bound {
		return
	}
	b.ids[b.n] = id
	b.dists[b.n] = d
	b.n++
	if b.n == len(b.ids) {
		b.compact()
	}
}

// compact partitions the buffer around the k-th smallest distance and drops
// everything beyond it.
func (b *KNNBuffer) compact() {
	if b.k <= 8 {
		// Small k (the batch k-NN regime): selection-sort the k smallest to
		// the front in ascending order — fewer ops than quickselect at this
		// size, and the sorted prefix makes the later result sort a no-op.
		for i := 0; i < b.k; i++ {
			mi := i
			for j := i + 1; j < b.n; j++ {
				if b.dists[j] < b.dists[mi] {
					mi = j
				}
			}
			if mi != i {
				b.swap(i, mi)
			}
		}
		b.n = b.k
		b.bound = b.dists[b.k-1]
		return
	}
	b.selectK(0, b.n-1, b.k-1)
	b.n = b.k
	b.bound = 0
	for i := 0; i < b.k; i++ {
		if b.dists[i] > b.bound {
			b.bound = b.dists[i]
		}
	}
}

// selectK performs in-place quickselect so that position kth holds the
// element of rank kth by distance.
func (b *KNNBuffer) selectK(lo, hi, kth int) {
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if b.dists[mid] < b.dists[lo] {
			b.swap(mid, lo)
		}
		if b.dists[hi] < b.dists[lo] {
			b.swap(hi, lo)
		}
		if b.dists[hi] < b.dists[mid] {
			b.swap(hi, mid)
		}
		pivot := b.dists[mid]
		i, j := lo, hi
		for i <= j {
			for b.dists[i] < pivot {
				i++
			}
			for b.dists[j] > pivot {
				j--
			}
			if i <= j {
				b.swap(i, j)
				i++
				j--
			}
		}
		if kth <= j {
			hi = j
		} else if kth >= i {
			lo = i
		} else {
			return
		}
	}
}

func (b *KNNBuffer) swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.dists[i], b.dists[j] = b.dists[j], b.dists[i]
}

// sortPrefix compacts to at most k candidates, sorts them by increasing
// distance, and returns their count.
func (b *KNNBuffer) sortPrefix() int {
	m := b.n
	if m > b.k {
		b.compact()
		m = b.k
	}
	// Insertion sort by distance: m <= k is small.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && b.dists[j] < b.dists[j-1]; j-- {
			b.swap(j, j-1)
		}
	}
	return m
}

// Result appends the k nearest candidate ids (sorted by increasing
// distance) to dst and returns it. Fewer than k are returned when fewer
// candidates were inserted.
func (b *KNNBuffer) Result(dst []int32) []int32 {
	m := b.sortPrefix()
	return append(dst, b.ids[:m]...)
}

// ResultInto writes the nearest candidate ids (sorted by increasing
// distance) into ids — and, when dists is non-nil, their squared distances
// into dists — without allocating, and returns the count written. Both
// destinations must have room for K() entries.
func (b *KNNBuffer) ResultInto(ids []int32, dists []float64) int {
	m := b.sortPrefix()
	copy(ids, b.ids[:m])
	if dists != nil {
		copy(dists, b.dists[:m])
	}
	return m
}

// PrepareF32 arms the float32 column filter for one query: it snapshots
// the query's f32 image and precomputes the filter's distance error bound
// errD = maxAbs · F32CoordErr · √dim, where maxAbs is the largest
// coordinate magnitude involved (tree data or query). treeOK is the
// tree-side gate (finite, NaN-free, within F32SafeMax coordinates); the
// query side is gated here the same way. When either fails, the filter is
// disarmed and scans fall back to exact float64.
//
// Soundness of the filter (the refinement-bound argument): for a candidate
// at true distance d < √Bound(), its f32-scanned squared distance is at
// most ((d + errD)·(1+ε))² with ε the f32 accumulation error (< 2⁻²⁰ for
// ≤ 8 dims); RefineThreshold returns (√Bound() + errD)² · (1 + 2⁻¹⁸),
// which dominates it — so every candidate that could enter the buffer
// passes the filter, and skipped points provably could not. Survivors are
// re-measured in float64, which is what makes f32 a filter, never the
// answer.
func (b *KNNBuffer) PrepareF32(q []float64, treeMaxAbs float64, treeOK bool) {
	b.f32 = false
	if !treeOK {
		return
	}
	qMax := 0.0
	for _, v := range q {
		a := math.Abs(v)
		if !(a <= F32SafeMax) { // NaN or beyond the safe range
			return
		}
		if a > qMax {
			qMax = a
		}
	}
	combined := treeMaxAbs
	if qMax > combined {
		combined = qMax
	}
	for c, v := range q {
		b.q32[c] = float32(v)
	}
	b.errD = combined * F32CoordErr * math.Sqrt(float64(len(q)))
	b.thrFor = math.NaN() // never equal to a Bound() — forces recompute
	b.f32 = true
	b.fresh = true
}

// ScanF32 reports whether the float32 filter is armed for the current
// query (set by PrepareF32, cleared when the data or query cannot be
// safely filtered in f32).
func (b *KNNBuffer) ScanF32() bool { return b.f32 }

// Q32 returns the float32 image of the prepared query's first dim
// coordinates — the kernel-side query vector.
func (b *KNNBuffer) Q32(dim int) []float32 { return b.q32[:dim] }

// DistScratch returns a length-m float32 column for the kernel to write
// squared distances into, reusing (and growing at most once) the buffer's
// scratch.
func (b *KNNBuffer) DistScratch(m int) []float32 {
	if cap(b.scratch) < m {
		b.scratch = make([]float32, m)
	}
	return b.scratch[:m]
}

// RefineThreshold returns the f32-scale squared-distance threshold below
// which a scanned candidate must be re-measured in float64 — the current
// Bound() widened by the filter's error (see PrepareF32). Recomputed only
// when the bound has moved since the last call; +Inf while the buffer is
// not yet full (every point refines, exactly as the f64 path would).
func (b *KNNBuffer) RefineThreshold() float64 {
	bd := b.Bound()
	if bd == b.thrFor {
		return b.thr
	}
	b.thrFor = bd
	if math.IsInf(bd, 1) {
		b.thr = inf
	} else {
		r := math.Sqrt(bd) + b.errD
		b.thr = r * r * (1 + 0x1p-18)
	}
	return b.thr
}

// SealEager establishes a real pruning bound as soon as k candidates
// exist: the lazy scheme only sets one at the first 2k-full compaction,
// which leaves subtree pruning (and the refine threshold) disarmed for the
// first leaves of every query. Called after each leaf scanned in the
// unbounded phase; a no-op once a bound exists.
func (b *KNNBuffer) SealEager() {
	if b.n >= b.k && math.IsInf(b.bound, 1) {
		b.compact()
	}
}

// EagerThreshold derives a provisional refinement threshold from the f32
// squared distances of one leaf's points while the buffer is still
// unbounded (fewer than 2k inserts, Bound() = +Inf). It takes the
// (k+1)-th smallest f32 distance — the +1 absorbs the query point itself
// when it sits in this leaf — and widens it by the filter's error, giving
// a provable upper bound B on the true k-th nearest distance: at least k
// non-query points have true distance ≤ B. Points beyond the widened B
// cannot be among the k nearest and are safely skipped before any float64
// work, which is what keeps the first-leaf scan from paying full-precision
// distances (and buffer churn) for an entire leaf.
//
// Skipping here may change which of several exactly-tied candidates
// survives compaction relative to a scan without the filter; the result's
// distance multiset — and, when distances are distinct, the ids — are
// unchanged. Returns +Inf (filter nothing) when the leaf cannot even
// bound k neighbors.
func (b *KNNBuffer) EagerThreshold(dists []float32) float64 {
	m := len(dists)
	if m <= b.k {
		return inf
	}
	kk := b.k + 1
	var kth float64
	if kk <= 16 {
		// Small k: track the kk smallest in one pass. Most values lose a
		// single compare against the running max; replacements (which
		// rescan the kk-tracker) decay geometrically down the leaf.
		if cap(b.sel) < kk {
			b.sel = make([]float32, kk)
		}
		sel := b.sel[:kk]
		copy(sel, dists[:kk])
		mx, mi := sel[0], 0
		for i := 1; i < kk; i++ {
			if sel[i] > mx {
				mx, mi = sel[i], i
			}
		}
		for _, v := range dists[kk:] {
			if v < mx {
				sel[mi] = v
				mx, mi = sel[0], 0
				for i := 1; i < kk; i++ {
					if sel[i] > mx {
						mx, mi = sel[i], i
					}
				}
			}
		}
		kth = float64(mx)
	} else {
		if cap(b.sel) < m {
			b.sel = make([]float32, m)
		}
		sel := b.sel[:m]
		copy(sel, dists)
		kth = float64(selectF32(sel, b.k))
	}
	r := math.Sqrt(kth)*(1+0x1p-18) + b.errD
	return r * r * (1 + 0x1p-18)
}

// selectF32 quickselects rank kth (0-indexed) of s by value and returns
// that element. Mutates s.
func selectF32(s []float32, kth int) float32 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if kth <= j {
			hi = j
		} else if kth >= i {
			lo = i
		} else {
			break
		}
	}
	return s[kth]
}

// KthDist returns the exact k-th nearest squared distance collected so far
// (+inf if fewer than k candidates). Unlike Bound — which may be stale
// between compactions, or a caller-seeded overestimate, and is only an
// upper bound for pruning — KthDist always compacts first, so it is exact.
func (b *KNNBuffer) KthDist() float64 {
	if b.n < b.k {
		return inf
	}
	if b.n > b.k {
		b.compact()
		return b.bound
	}
	// Exactly k candidates: they are the answer, whatever b.bound says.
	mx := 0.0
	for _, d := range b.dists[:b.k] {
		if d > mx {
			mx = d
		}
	}
	return mx
}
