package kdtree

// KNNBuffer is the paper's "k-NN buffer" (Appendix C.1.3): a bounded buffer
// that maintains the k nearest neighbors seen so far with amortized O(1)
// inserts. It holds up to 2k candidates; when full, a selection partition
// around the k-th smallest distance discards the far half. The partition is
// O(k) and runs once per k inserts, giving the amortized constant bound.
type KNNBuffer struct {
	k     int
	ids   []int32
	dists []float64
	n     int     // live candidates in the buffer
	bound float64 // current upper bound on the k-th nearest distance
}

// NewKNNBuffer returns a buffer for k neighbors.
func NewKNNBuffer(k int) *KNNBuffer {
	return &KNNBuffer{
		k:     k,
		ids:   make([]int32, 2*k),
		dists: make([]float64, 2*k),
		bound: inf,
	}
}

// Reset clears the buffer for reuse on a new query.
func (b *KNNBuffer) Reset() {
	b.n = 0
	b.bound = inf
}

// K returns the configured neighbor count.
func (b *KNNBuffer) K() int { return b.k }

// Full reports whether at least k candidates have been collected.
func (b *KNNBuffer) Full() bool { return b.n >= b.k }

// Bound returns the current upper bound on the k-th nearest squared
// distance (+inf until k candidates have been seen). Used for subtree
// pruning.
func (b *KNNBuffer) Bound() float64 {
	if b.n < b.k {
		return inf
	}
	return b.bound
}

// Insert offers candidate id at squared distance d.
func (b *KNNBuffer) Insert(id int32, d float64) {
	if d >= b.bound {
		return
	}
	b.ids[b.n] = id
	b.dists[b.n] = d
	b.n++
	if b.n == len(b.ids) {
		b.compact()
	}
}

// compact partitions the buffer around the k-th smallest distance and drops
// everything beyond it.
func (b *KNNBuffer) compact() {
	b.selectK(0, b.n-1, b.k-1)
	b.n = b.k
	b.bound = 0
	for i := 0; i < b.k; i++ {
		if b.dists[i] > b.bound {
			b.bound = b.dists[i]
		}
	}
}

// selectK performs in-place quickselect so that position kth holds the
// element of rank kth by distance.
func (b *KNNBuffer) selectK(lo, hi, kth int) {
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if b.dists[mid] < b.dists[lo] {
			b.swap(mid, lo)
		}
		if b.dists[hi] < b.dists[lo] {
			b.swap(hi, lo)
		}
		if b.dists[hi] < b.dists[mid] {
			b.swap(hi, mid)
		}
		pivot := b.dists[mid]
		i, j := lo, hi
		for i <= j {
			for b.dists[i] < pivot {
				i++
			}
			for b.dists[j] > pivot {
				j--
			}
			if i <= j {
				b.swap(i, j)
				i++
				j--
			}
		}
		if kth <= j {
			hi = j
		} else if kth >= i {
			lo = i
		} else {
			return
		}
	}
}

func (b *KNNBuffer) swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.dists[i], b.dists[j] = b.dists[j], b.dists[i]
}

// sortPrefix compacts to at most k candidates, sorts them by increasing
// distance, and returns their count.
func (b *KNNBuffer) sortPrefix() int {
	m := b.n
	if m > b.k {
		b.compact()
		m = b.k
	}
	// Insertion sort by distance: m <= k is small.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && b.dists[j] < b.dists[j-1]; j-- {
			b.swap(j, j-1)
		}
	}
	return m
}

// Result appends the k nearest candidate ids (sorted by increasing
// distance) to dst and returns it. Fewer than k are returned when fewer
// candidates were inserted.
func (b *KNNBuffer) Result(dst []int32) []int32 {
	m := b.sortPrefix()
	return append(dst, b.ids[:m]...)
}

// ResultInto writes the nearest candidate ids (sorted by increasing
// distance) into ids — and, when dists is non-nil, their squared distances
// into dists — without allocating, and returns the count written. Both
// destinations must have room for K() entries.
func (b *KNNBuffer) ResultInto(ids []int32, dists []float64) int {
	m := b.sortPrefix()
	copy(ids, b.ids[:m])
	if dists != nil {
		copy(dists, b.dists[:m])
	}
	return m
}

// KthDist returns the exact k-th nearest squared distance collected so far
// (+inf if fewer than k candidates). Unlike Bound — which may be stale
// between compactions and is only an upper bound for pruning — KthDist
// compacts first, so it is exact.
func (b *KNNBuffer) KthDist() float64 {
	if b.n > b.k {
		b.compact()
	}
	return b.Bound()
}
