package kdtree

import (
	"fmt"
	"math"
	"testing"

	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// Differential tests for the float32 leaf filter: the dimension-major f32
// scan may only ever DISCARD points that provably cannot enter the answer —
// every survivor is re-verified in float64 — so results must be exactly the
// float64 answer, id for id whenever the distances make the answer unique.
// These tests pin that contract across every point distribution, and on
// adversarial inputs whose distance gaps are far below float32 resolution.

// knnIDsDists answers one query through the production path (KNNInto with a
// fresh buffer) and returns sorted ids plus exact float64 squared distances.
func knnIDsDists(tr *Tree, q []float64, k int, exclude int32) ([]int32, []float64) {
	buf := NewKNNBuffer(k)
	tr.KNNInto(q, exclude, buf)
	ids := make([]int32, k)
	dists := make([]float64, k)
	m := buf.ResultInto(ids, dists)
	return ids[:m], dists[:m]
}

// TestF32FilterIDExact checks tree answers id-for-id against the oracle
// whenever the answer is unique (all k distances pairwise distinct and
// strictly below the (k+1)-th), and by exact float64 distance signature
// otherwise — heavy duplicates included. A float32 filter that dropped a
// true neighbor or admitted a wrong id fails here.
func TestF32FilterIDExact(t *testing.T) {
	const n = 400
	for _, tc := range distCases {
		for _, dim := range []int{2, 3, 5} {
			for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
				label := fmt.Sprintf("%s/d%d/%v", tc.name, dim, split)
				pts := tc.gen(n, dim, 11)
				tr := Build(pts, Options{Split: split})
				for qi := 0; qi < n; qi += 17 {
					q := pts.At(qi)
					ex := int32(qi)
					for _, k := range []int{1, 5, 16} {
						wantIDs := oracle.KNN(pts, q, k, ex)
						wantD := make([]float64, len(wantIDs))
						for j, id := range wantIDs {
							wantD[j] = geom.SqDist(q, pts.At(int(id)))
						}
						gotIDs, gotD := knnIDsDists(tr, q, k, ex)
						lbl := fmt.Sprintf("%s/q%d/k%d", label, qi, k)
						if len(gotIDs) != len(wantIDs) {
							t.Fatalf("%s: got %d neighbors, oracle %d", lbl, len(gotIDs), len(wantIDs))
						}
						for j := range gotD {
							if gotD[j] != wantD[j] {
								t.Fatalf("%s: dist[%d] = %v, oracle %v", lbl, j, gotD[j], wantD[j])
							}
						}
						// The answer set is unique iff no distance repeats
						// inside the top k and the k-th beats the (k+1)-th.
						unique := true
						for j := 1; j < len(wantD); j++ {
							if wantD[j] == wantD[j-1] {
								unique = false
							}
						}
						if next := oracle.KNNDists(pts, q, k+1, ex); len(next) > len(wantD) &&
							len(wantD) > 0 && next[len(wantD)] == wantD[len(wantD)-1] {
							unique = false
						}
						if unique {
							for j := range gotIDs {
								if gotIDs[j] != wantIDs[j] {
									t.Fatalf("%s: id[%d] = %d, oracle %d", lbl, j, gotIDs[j], wantIDs[j])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestF32FilterNearTies drives the filter with distance gaps of ~1e-12 at
// coordinate magnitude ~1000 — about eight decimal orders below float32
// resolution there, so every candidate collapses to the same float32
// distance and only the float64 refinement can order them. Some points are
// exact duplicates (gap 0). The k-NN answer must still be the float64
// ranking, id for id where distances are distinct.
func TestF32FilterNearTies(t *testing.T) {
	const (
		n    = 64
		base = 1000.0
		gap  = 1e-12
	)
	for _, dim := range []int{2, 3, 5} {
		pts := geom.NewPoints(n, dim)
		row := make([]float64, dim)
		for i := 0; i < n; i++ {
			// Shells around base with sub-f32 spacing; every 8th point
			// duplicates its predecessor exactly.
			off := float64(i) * gap
			if i%8 == 7 {
				off = float64(i-1) * gap
			}
			for c := 0; c < dim; c++ {
				row[c] = 0
			}
			row[i%dim] = base + off
			pts.Set(i, row)
		}
		q := make([]float64, dim)
		for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
			tr := Build(pts, Options{Split: split})
			for _, k := range []int{1, 5, 16, 40} {
				wantD := oracle.KNNDists(pts, q, k, -1)
				gotIDs, gotD := knnIDsDists(tr, q, k, -1)
				lbl := fmt.Sprintf("d%d/%v/k%d", dim, split, k)
				if len(gotD) != len(wantD) {
					t.Fatalf("%s: got %d neighbors, oracle %d", lbl, len(gotD), len(wantD))
				}
				wantIDs := oracle.KNN(pts, q, k, -1)
				for j := range gotD {
					if gotD[j] != wantD[j] {
						t.Fatalf("%s: dist[%d] = %.17g, oracle %.17g", lbl, j, gotD[j], wantD[j])
					}
					// Distinct-distance positions must agree id-for-id.
					tied := (j > 0 && wantD[j] == wantD[j-1]) ||
						(j+1 < len(wantD) && wantD[j] == wantD[j+1])
					if !tied && gotIDs[j] != wantIDs[j] {
						t.Fatalf("%s: id[%d] = %d, oracle %d", lbl, j, gotIDs[j], wantIDs[j])
					}
				}
			}
		}
	}
}

// TestF32FilterLargeCoordFallback pins the safety gate: coordinates beyond
// F32SafeMax must disable the filter (conversion could overflow or lose the
// error bound), and queries must fall back to the exact float64 scan.
func TestF32FilterLargeCoordFallback(t *testing.T) {
	const n = 100
	for _, dim := range []int{2, 3} {
		pts := geom.NewPoints(n, dim)
		row := make([]float64, dim)
		for i := 0; i < n; i++ {
			for c := 0; c < dim; c++ {
				row[c] = 1e30 * float64((i*13+c*7)%97) / 97
			}
			pts.Set(i, row)
		}
		tr := Build(pts, Options{})
		if tr.f32ok {
			t.Fatalf("d%d: f32 filter enabled on coords ~1e30 (> F32SafeMax)", dim)
		}
		for qi := 0; qi < n; qi += 9 {
			q := pts.At(qi)
			wantD := oracle.KNNDists(pts, q, 5, int32(qi))
			_, gotD := knnIDsDists(tr, q, 5, int32(qi))
			for j := range gotD {
				if gotD[j] != wantD[j] {
					t.Fatalf("d%d/q%d: dist[%d] = %v, oracle %v", dim, qi, j, gotD[j], wantD[j])
				}
			}
		}
	}
}

// TestF32FilterNonFiniteCoords: NaN/Inf coordinates also force the exact
// fallback rather than scanning garbage float32 slabs.
func TestF32FilterNonFiniteCoords(t *testing.T) {
	pts := geom.NewPoints(8, 2)
	for i := 0; i < 8; i++ {
		pts.Set(i, []float64{float64(i), float64(i) * 2})
	}
	pts.Set(3, []float64{math.Inf(1), 1})
	tr := Build(pts, Options{})
	if tr.f32ok {
		t.Fatal("f32 filter enabled with a +Inf coordinate")
	}
}
