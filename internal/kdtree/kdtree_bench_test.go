package kdtree

import (
	"fmt"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func BenchmarkBuild(b *testing.B) {
	for _, dim := range []int{2, 5} {
		for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
			pts := generators.UniformCube(100000, dim, uint64(dim))
			b.Run(fmt.Sprintf("d=%d/%s", dim, split), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Build(pts, Options{Split: split})
				}
			})
		}
	}
}

func BenchmarkKNNQuery(b *testing.B) {
	for _, dim := range []int{2, 5, 7} {
		pts := generators.UniformCube(100000, dim, uint64(dim))
		t := Build(pts, Options{})
		b.Run(fmt.Sprintf("d=%d/k=5", dim), func(b *testing.B) {
			buf := NewKNNBuffer(5)
			for i := 0; i < b.N; i++ {
				buf.Reset()
				q := i % pts.Len()
				t.KNNInto(pts.At(q), int32(q), buf)
			}
		})
	}
}

func BenchmarkKNNBatch(b *testing.B) {
	pts := generators.UniformCube(100000, 2, 9)
	t := Build(pts, Options{})
	queries := make([]int32, pts.Len())
	for i := range queries {
		queries[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.KNN(queries, 5)
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	pts := generators.UniformCube(100000, 3, 10)
	t := Build(pts, Options{})
	boxes := make([]geom.Box, 256)
	for i := range boxes {
		c := pts.At(i * 390)
		bx := geom.EmptyBox(3)
		bx.Expand([]float64{c[0] - 6, c[1] - 6, c[2] - 6})
		bx.Expand([]float64{c[0] + 6, c[1] + 6, c[2] + 6})
		boxes[i] = bx
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RangeSearchParallel(boxes)
	}
}

func BenchmarkAllKNN(b *testing.B) {
	for _, dim := range []int{2, 5} {
		pts := generators.UniformCube(100000, dim, uint64(dim))
		t := Build(pts, Options{})
		b.Run(fmt.Sprintf("d=%d/k=5", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.AllKNN(5, nil)
			}
		})
	}
}

func BenchmarkKNNBufferInsert(b *testing.B) {
	buf := NewKNNBuffer(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Insert(int32(i), float64((i*2654435761)&0xffff))
	}
}
