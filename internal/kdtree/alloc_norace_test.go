//go:build !race

package kdtree

// raceEnabled reports whether the race detector is active. The allocation
// regression test always exercises the build paths (so the -race CI job
// covers them), but only asserts exact allocation counts without the
// detector, whose instrumentation allocates on its own.
const raceEnabled = false
