// Package kdtree implements ParGeo's static parallel kd-tree (Module 1):
// parallel construction with object-median or spatial-median splits,
// exact k-nearest-neighbor search with the paper's 2k quickselect buffer
// (single-query KNNInto and the batched, data-parallel AllKNN), and
// orthogonal range search. The tree also exposes its node structure
// (bounding boxes, children, subtree point ranges), which the WSPD, EMST,
// and bichromatic-closest-pair modules traverse directly.
//
// Construction follows §2 and Appendix C.1: split along the widest
// dimension of the node's bounding box, either at the object median (median
// point coordinate, via quickselect) or the spatial median (midpoint of the
// box extent); recursion on the two sides forks through parlay's
// work-stealing scheduler (nested fork-join, no depth limit) until subtrees
// fall below the sequential grain, so skewed splits rebalance dynamically.
// Points are never copied out of the caller's buffer: the tree permutes a
// single index array, and each node owns a contiguous range of it.
//
// On layout: nodes live in one flat arena (Tree.Nodes), allocated in bulk
// and laid out in DFS preorder — every subtree occupies a contiguous node
// range, a node's left child is the next arena slot, and children are
// addressed by int32 index instead of pointer. Object-median trees have
// data-independent shapes, so the arena is carved into exact disjoint
// per-subtree ranges during the parallel build (lock-free, O(1)
// allocations); spatial-median builds carve worst-case slabs (bounded by a
// minimum leaf fill) and compact to gap-free preorder afterwards. This is
// the general tree's analogue of the paper's cache-oblivious van Emde Boas
// order for the BDL static trees (Appendix C.1.1, see bdltree/veb.go):
// contiguous, pointer-free, and cache-friendly for the traversals ParGeo
// performs.
//
// Leaf scan layout: the tree caches each leaf's coordinates as a
// dimension-major (SoA) float32 slab (Tree.CoordsF32). A leaf owning Idx
// positions [Lo, Hi) with m = Hi−Lo points stores coordinate c of its i-th
// point at CoordsF32[Lo*Dim + c*m + i] — m-long columns, one per
// dimension, filled at build time while the leaf's points are cache-hot.
// The k-NN and range inner loops hand whole columns to internal/kernel
// (SqDistsF32, PruneBox), which scans them 8 points per vector op on
// hosts with AVX2 and in tight pure-Go loops elsewhere. float32 is a
// conservative FILTER, never the answer: the scan discards only points
// that provably cannot matter under the f32 error bound (see
// KNNBuffer.PrepareF32 and docs/ARCHITECTURE.md "Scan kernels"), and every
// surviving candidate is re-verified against the retained float64
// coordinates in Pts — results are exact, id for id. Trees whose
// coordinates cannot be safely filtered in float32 (magnitudes beyond
// F32SafeMax, NaN boxes) fall back to scalar float64 scans of Pts.
package kdtree

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/kernel"
	"pargeo/internal/parlay"
)

var inf = math.Inf(1)

// F32SafeMax is the largest coordinate magnitude (tree point or query) the
// float32 filter path accepts. Below it, squared distances over MaxDim
// dimensions stay finite in float32 (8·(2e18)² ≈ 3.2e37 < MaxFloat32) and
// the filter's absolute error bound holds; beyond it — or when a bounding
// box carries NaN — queries fall back to exact scalar float64 scans.
// bdltree applies the same gate to its static trees.
const F32SafeMax = 1e18

// MaxDim is the largest supported dimensionality (the paper evaluates up to
// 7 dimensions; boxes are stored inline for allocation-free nodes).
const MaxDim = 8

// SplitRule selects the node-splitting heuristic (§6.3: "splitting the
// points based on either using the object median ... or the spatial
// median").
type SplitRule int

const (
	// ObjectMedian splits at the median point coordinate along the widest
	// dimension: balanced trees, higher build cost.
	ObjectMedian SplitRule = iota
	// SpatialMedian splits at the midpoint of the bounding-box extent:
	// cheaper splits, possibly unbalanced trees.
	SpatialMedian
)

func (s SplitRule) String() string {
	if s == ObjectMedian {
		return "object"
	}
	return "spatial"
}

// Options configure tree construction.
type Options struct {
	Split    SplitRule
	LeafSize int // max points per leaf; default 32 (one f32 scan chunk)
	Serial   bool
}

// Node is a kd-tree node stored in the tree's flat preorder arena. Leaves
// have Left == 0 and own the index range [Lo, Hi) of Tree.Idx; internal
// nodes carry the split plane and address their children by arena index
// (Left is always the node's own index + 1 — preorder). Every node (incl.
// internal) owns its subtree's contiguous range [Lo, Hi).
type Node struct {
	MinC, MaxC  [MaxDim]float64 // bounding box (first Dim entries valid)
	Lo, Hi      int32           // owned range of Tree.Idx
	Left, Right int32           // children as Tree.Nodes indices; 0 = leaf
	SplitVal    float64
	SplitDim    int8
}

// IsLeaf reports whether the node is a leaf. (Index 0 is the root, which is
// never anyone's child, so 0 doubles as the nil child.)
func (nd *Node) IsLeaf() bool { return nd.Left == 0 }

// Size returns the number of points in the node's subtree.
func (nd *Node) Size() int { return int(nd.Hi - nd.Lo) }

// Tree is a static kd-tree over an externally owned point buffer.
type Tree struct {
	Pts geom.Points
	Idx []int32 // permutation of the point indices; leaves own ranges
	// Nodes is the preorder node arena: Nodes[0] is the root, every subtree
	// occupies a contiguous range, and a node's left child immediately
	// follows it. Allocated in bulk — builds do O(1) allocations.
	Nodes []Node
	// CoordsF32 caches point coordinates in dimension-major (SoA) float32
	// columns, one slab per leaf: a leaf owning Idx range [Lo, Hi) with
	// m = Hi−Lo points stores coordinate c of its i-th point at
	// CoordsF32[Lo*Dim + c*m + i]. The k-NN and range inner loops scan
	// these columns through internal/kernel as a conservative filter and
	// re-verify survivors against the float64 truth in Pts.
	CoordsF32 []float32
	// maxAbs is the largest |coordinate| in the tree (from the root box)
	// and f32ok whether the float32 filter path is sound for this data
	// (finite, below F32SafeMax, NaN-free box). Derived once after build.
	maxAbs float64
	f32ok  bool
	opts   Options
}

// Root returns the root node, or nil for an empty tree.
func (t *Tree) Root() *Node {
	if len(t.Nodes) == 0 {
		return nil
	}
	return &t.Nodes[0]
}

// Left returns nd's left child (nd must be internal).
func (t *Tree) Left(nd *Node) *Node { return &t.Nodes[nd.Left] }

// Right returns nd's right child (nd must be internal).
func (t *Tree) Right(nd *Node) *Node { return &t.Nodes[nd.Right] }

// Build constructs a kd-tree over all points in pts.
func Build(pts geom.Points, opts Options) *Tree {
	n := pts.Len()
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	return BuildIndexed(pts, idx, opts)
}

// BuildIndexed constructs a kd-tree over the subset of pts given by idx.
// The tree takes ownership of idx and permutes it in place.
func BuildIndexed(pts geom.Points, idx []int32, opts Options) *Tree {
	if pts.Dim > MaxDim {
		panic("kdtree: dimension exceeds MaxDim")
	}
	if opts.LeafSize <= 0 {
		opts.LeafSize = 32
	}
	t := &Tree{Pts: pts, Idx: idx, opts: opts}
	n := len(idx)
	if n == 0 {
		return t
	}
	// The dimension-major leaf slabs are filled as each leaf is built,
	// while its points are still warm from the bounding-box pass.
	t.CoordsF32 = make([]float32, n*pts.Dim)
	par := !opts.Serial
	switch opts.Split {
	case SpatialMedian:
		// Spatial splits are data-dependent, so subtree node counts are not
		// known up front: carve worst-case slabs (bounded by the minimum
		// leaf fill the builder guarantees), then compact to gap-free
		// preorder.
		arena := make([]Node, spatialNodeBound(int32(n), int32(opts.LeafSize)))
		used := t.buildSpatial(arena, 0, 0, int32(n), par)
		t.Nodes = compactPreorder(arena, used)
	default: // ObjectMedian
		// Object-median shapes depend only on subtree sizes, so the exact
		// node count — and every subtree's exact arena range — is known
		// before building: one bulk make, disjoint lock-free carving.
		t.Nodes = make([]Node, objectNodeCount(int32(n), int32(opts.LeafSize)))
		t.buildObject(0, 0, int32(n), par)
	}
	t.finishF32()
	return t
}

// finishF32 derives the float32-filter gate from the root bounding box
// (already computed by the build): the filter is sound only when every
// dimension's extent is finite, NaN-free, and within F32SafeMax. Checking
// the box rather than rescanning points is free and race-free; a NaN
// coordinate that a min/max pass absorbs silently was never supported by
// the exact search paths, exactly as before this layout.
func (t *Tree) finishF32() {
	root := t.Root()
	if root == nil {
		return
	}
	maxAbs := 0.0
	for c := 0; c < t.Pts.Dim; c++ {
		mn, mx := root.MinC[c], root.MaxC[c]
		if !(mn <= mx) { // NaN, or inverted from an all-NaN column
			return
		}
		a := math.Max(math.Abs(mn), math.Abs(mx))
		if a > F32SafeMax {
			return
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	t.maxAbs = maxAbs
	t.f32ok = true
}

// parallelBuildThreshold: below this many points a subtree builds serially —
// the fork-join grain. Above it the two children fork as nested Do tasks and
// the scheduler balances the recursion tree, however skewed the splits.
const parallelBuildThreshold = 4096

// objectNodeCount returns the exact node count of an object-median subtree
// over m points: splitting m > leafSize yields children of ⌊m/2⌋ and ⌈m/2⌉
// points, so the shape is a function of m alone. All subtree sizes at one
// depth differ by at most one, which lets the whole profile walk down in
// O(log m) steps tracking two (size, count) pairs — no allocation.
func objectNodeCount(m, leafSize int32) int32 {
	if m <= leafSize {
		return 1
	}
	L := int64(leafSize)
	var leaves, internal int64
	s := int64(m) // smaller of the (at most two) sizes at this level
	cs := int64(1)
	cs1 := int64(0) // count of size-(s+1) nodes
	for {
		if s+1 <= L {
			leaves += cs + cs1
			break
		}
		if s <= L {
			leaves += cs
			cs = 0
		}
		internal += cs + cs1
		// Children of a size-s node are ⌊s/2⌋ and ⌈s/2⌉ (and of s+1,
		// ⌊(s+1)/2⌋ and ⌈(s+1)/2⌉), so the next level again holds only the
		// two sizes ⌊s/2⌋ and ⌊s/2⌋+1.
		if s%2 == 0 {
			cs = 2*cs + cs1
		} else {
			cs1 = cs + 2*cs1
		}
		s /= 2
	}
	return int32(leaves + internal)
}

// minLeafFill is the smallest point count the builder allows a non-root
// leaf: object-median children of a splittable node have ≥ ⌈leafSize/2⌉
// points, and the spatial-median builder falls back to the object median
// whenever the midpoint cut would leave a side smaller than that. The fill
// floor is what bounds the arena: ≤ ⌊m/fill⌋ leaves, ≤ 2⌊m/fill⌋−1 nodes.
func minLeafFill(leafSize int32) int32 { return (leafSize + 1) / 2 }

// spatialNodeBound returns an upper bound on the node count of a
// spatial-median subtree over m points, given the minimum leaf fill.
func spatialNodeBound(m, leafSize int32) int32 {
	l := m / minLeafFill(leafSize)
	if l < 1 {
		l = 1
	}
	return 2*l - 1
}

// buildObject fills the subtree rooted at arena slot node over Idx[lo:hi).
// Exact object-median counting makes the carving tight: the subtree
// occupies exactly [node, node+objectNodeCount(hi-lo)).
func (t *Tree) buildObject(node, lo, hi int32, par bool) {
	nd := &t.Nodes[node]
	nd.Lo, nd.Hi = lo, hi
	t.computeBox(nd, par)
	n := hi - lo
	if int(n) <= t.opts.LeafSize {
		t.fillLeafSlab(lo, hi) // leaf: Left stays 0
		return
	}
	dim := widestDim(nd, t.Pts.Dim)
	mid := lo + n/2
	t.nthElement(lo, hi, mid, dim)
	nd.SplitVal = t.Pts.Coord(int(t.Idx[mid]), dim)
	nd.SplitDim = int8(dim)
	nd.Left = node + 1
	nd.Right = node + 1 + objectNodeCount(mid-lo, int32(t.opts.LeafSize))
	if par && int(n) > parallelBuildThreshold {
		parlay.Do(
			func() { t.buildObject(nd.Left, lo, mid, true) },
			func() { t.buildObject(nd.Right, mid, hi, true) },
		)
	} else {
		t.buildObject(nd.Left, lo, mid, false)
		t.buildObject(nd.Right, mid, hi, false)
	}
}

// buildSpatial fills the subtree rooted at arena slot node over Idx[lo:hi),
// carving child slabs by the worst-case bound, and returns the number of
// nodes the subtree actually used (its gap-free size after compaction).
func (t *Tree) buildSpatial(arena []Node, node, lo, hi int32, par bool) int32 {
	nd := &arena[node]
	nd.Lo, nd.Hi = lo, hi
	t.computeBox(nd, par)
	n := hi - lo
	if int(n) <= t.opts.LeafSize {
		t.fillLeafSlab(lo, hi)
		return 1
	}
	leafSize := int32(t.opts.LeafSize)
	dim := widestDim(nd, t.Pts.Dim)
	splitVal := (nd.MinC[dim] + nd.MaxC[dim]) / 2
	mid := t.partition(lo, hi, dim, splitVal)
	if fill := minLeafFill(leafSize); mid-lo < fill || hi-mid < fill {
		// Degenerate or heavily skewed spatial cut: fall back to the object
		// median. This guarantees progress (the classic mid==lo/hi case) and
		// keeps every leaf at least half full, which is what bounds the
		// arena and the tree depth.
		mid = lo + n/2
		t.nthElement(lo, hi, mid, dim)
		splitVal = t.Pts.Coord(int(t.Idx[mid]), dim)
	}
	nd.SplitVal = splitVal
	nd.SplitDim = int8(dim)
	nd.Left = node + 1
	nd.Right = node + 1 + spatialNodeBound(mid-lo, leafSize)
	if par && int(n) > parallelBuildThreshold {
		// The result cells live only in the (rare) fork branch: hoisting
		// them out would heap-box them on every call, since the closures
		// write to them.
		var lUsed, rUsed int32
		parlay.Do(
			func() { lUsed = t.buildSpatial(arena, nd.Left, lo, mid, true) },
			func() { rUsed = t.buildSpatial(arena, nd.Right, mid, hi, true) },
		)
		return 1 + lUsed + rUsed
	}
	return 1 + t.buildSpatial(arena, nd.Left, lo, mid, false) +
		t.buildSpatial(arena, nd.Right, mid, hi, false)
}

// compactPreorder re-emits the (possibly gappy) slab-carved arena as a
// gap-free preorder array of exactly total nodes. A node's new left child
// index is its own index + 1; the right child lands right after the left
// subtree, restoring the contiguous-subtree invariant with zero slack.
func compactPreorder(arena []Node, total int32) []Node {
	out := make([]Node, total)
	next := int32(0)
	var rec func(old int32)
	rec = func(old int32) {
		nd := arena[old]
		self := next
		next++
		if nd.Left != 0 {
			l, r := nd.Left, nd.Right
			nd.Left = next
			rec(l)
			nd.Right = next
			rec(r)
		}
		out[self] = nd
	}
	rec(0)
	return out
}

// fillLeafSlab transposes the coordinates of Idx[lo:hi) — a freshly built
// leaf's points, still cache-hot from its bounding-box pass — into the
// leaf's dimension-major float32 slab: m-long columns, one per dimension,
// starting at CoordsF32[lo*Dim].
func (t *Tree) fillLeafSlab(lo, hi int32) {
	dim := t.Pts.Dim
	m := int(hi - lo)
	slab := t.CoordsF32[int(lo)*dim : int(lo)*dim+m*dim]
	for i := 0; i < m; i++ {
		p := t.Pts.At(int(t.Idx[int(lo)+i]))
		for c := 0; c < dim; c++ {
			slab[c*m+i] = float32(p[c])
		}
	}
}

// computeBox fills the node's bounding box over its index range.
func (t *Tree) computeBox(nd *Node, par bool) {
	dim := t.Pts.Dim
	for c := 0; c < dim; c++ {
		nd.MinC[c] = inf
		nd.MaxC[c] = -inf
	}
	n := int(nd.Hi - nd.Lo)
	if par && n > 1<<16 {
		type boxAcc struct{ mn, mx [MaxDim]float64 }
		id := boxAcc{}
		for c := 0; c < dim; c++ {
			id.mn[c] = inf
			id.mx[c] = -inf
		}
		acc := parlay.Reduce(n, 0, id,
			func(i int) boxAcc {
				var a boxAcc
				p := t.Pts.At(int(t.Idx[nd.Lo+int32(i)]))
				for c := 0; c < dim; c++ {
					a.mn[c], a.mx[c] = p[c], p[c]
				}
				for c := dim; c < MaxDim; c++ {
					a.mn[c], a.mx[c] = inf, -inf
				}
				return a
			},
			func(a, b boxAcc) boxAcc {
				for c := 0; c < dim; c++ {
					a.mn[c] = math.Min(a.mn[c], b.mn[c])
					a.mx[c] = math.Max(a.mx[c], b.mx[c])
				}
				return a
			})
		nd.MinC, nd.MaxC = acc.mn, acc.mx
		return
	}
	for i := nd.Lo; i < nd.Hi; i++ {
		p := t.Pts.At(int(t.Idx[i]))
		for c := 0; c < dim; c++ {
			if p[c] < nd.MinC[c] {
				nd.MinC[c] = p[c]
			}
			if p[c] > nd.MaxC[c] {
				nd.MaxC[c] = p[c]
			}
		}
	}
}

func widestDim(nd *Node, dim int) int {
	best, bw := 0, nd.MaxC[0]-nd.MinC[0]
	for c := 1; c < dim; c++ {
		if w := nd.MaxC[c] - nd.MinC[c]; w > bw {
			best, bw = c, w
		}
	}
	return best
}

// partition reorders Idx[lo:hi] so points with coord < splitVal precede the
// rest; returns the boundary.
func (t *Tree) partition(lo, hi int32, dim int, splitVal float64) int32 {
	i, j := lo, hi-1
	for i <= j {
		for i <= j && t.Pts.Coord(int(t.Idx[i]), dim) < splitVal {
			i++
		}
		for i <= j && t.Pts.Coord(int(t.Idx[j]), dim) >= splitVal {
			j--
		}
		if i < j {
			t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
			i++
			j--
		}
	}
	return i
}

// nthElement quickselects Idx[lo:hi] so Idx[kth] has rank kth-lo by the
// given coordinate (ties broken by index for determinism).
func (t *Tree) nthElement(lo, hi, kth int32, dim int) {
	key := func(i int32) float64 { return t.Pts.Coord(int(t.Idx[i]), dim) }
	for hi-lo > 1 {
		mid := (lo + hi - 1) / 2
		// Median-of-three.
		if key(mid) < key(lo) {
			t.Idx[mid], t.Idx[lo] = t.Idx[lo], t.Idx[mid]
		}
		if key(hi-1) < key(lo) {
			t.Idx[hi-1], t.Idx[lo] = t.Idx[lo], t.Idx[hi-1]
		}
		if key(hi-1) < key(mid) {
			t.Idx[hi-1], t.Idx[mid] = t.Idx[mid], t.Idx[hi-1]
		}
		pivot := key(mid)
		i, j := lo, hi-1
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
				i++
				j--
			}
		}
		if kth <= j {
			hi = j + 1
		} else if kth >= i {
			lo = i
		} else {
			return
		}
	}
}

// Points returns the point indices stored in the node's subtree.
func (t *Tree) Points(nd *Node) []int32 { return t.Idx[nd.Lo:nd.Hi] }

// --- k-nearest neighbors ----------------------------------------------

// KNN returns, for each query point index in queries, its k nearest
// neighbors among the tree's points (by index into Pts), excluding the
// query point itself when it is part of the tree. Queries run data-parallel
// (§5 "Data-Parallel k-NN"). Result row i occupies out[i*k : i*k+counts[i]].
func (t *Tree) KNN(queries []int32, k int) [][]int32 {
	out := make([][]int32, len(queries))
	parlay.ForBlocked(len(queries), 64, func(lo, hi int) {
		buf := NewKNNBuffer(k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			q := int(queries[i])
			t.KNNInto(t.Pts.At(q), int32(q), buf)
			out[i] = buf.Result(nil)
		}
	})
	return out
}

// KNNInto runs a single k-NN query for coordinates q into buf (which the
// caller Reset()s between unrelated queries but deliberately reuses across
// the multiple trees of a BDL-tree). exclude is a point index to skip (-1
// for none). With a reused buffer the query allocates nothing.
func (t *Tree) KNNInto(q []float64, exclude int32, buf *KNNBuffer) {
	if len(t.Nodes) > 0 {
		buf.PrepareF32(q, t.maxAbs, t.f32ok)
		t.knnRec(0, q, exclude, buf)
	}
}

func (t *Tree) knnRec(ni int32, q []float64, exclude int32, buf *KNNBuffer) {
	nd := &t.Nodes[ni]
	if nd.Left == 0 {
		if buf.ScanF32() {
			t.scanLeafF32(nd, q, exclude, buf)
		} else {
			// Fallback (huge or NaN coordinates): exact scalar scan of the
			// float64 truth.
			for i := nd.Lo; i < nd.Hi; i++ {
				if id := t.Idx[i]; id != exclude {
					buf.Insert(id, geom.SqDist(q, t.Pts.At(int(id))))
				}
			}
		}
		return
	}
	// Descend into the nearer child first.
	near, far := nd.Left, nd.Right
	ds := q[nd.SplitDim] - nd.SplitVal
	if ds >= 0 {
		near, far = far, near
	}
	t.knnRec(near, q, exclude, buf)
	// Paper heuristic (C.1.3): while no pruning bound exists (neither
	// collected from leaves nor seeded by the caller), eagerly visit the
	// sibling to establish one as fast as possible.
	bd := buf.Bound()
	if math.IsInf(bd, 1) {
		t.knnRec(far, q, exclude, buf)
		return
	}
	// The split-plane distance lower-bounds the far child's box distance,
	// so it prunes (or admits the box test) without touching the far node.
	if ds*ds < bd && boxSqDist(&t.Nodes[far], q, t.Pts.Dim) < bd {
		t.knnRec(far, q, exclude, buf)
	}
}

// scanLeafF32 is the filtered leaf scan: one kernel call computes the f32
// squared distances of the whole leaf's columns, then only candidates
// within the refinement threshold (the f32 image of the current bound,
// padded by the filter's error — see KNNBuffer.PrepareF32) are re-measured
// in float64 and offered to the buffer. Points the filter skips provably
// could not have been inserted, so results are exact, id for id.
func (t *Tree) scanLeafF32(nd *Node, q []float64, exclude int32, buf *KNNBuffer) {
	dim := t.Pts.Dim
	m := int(nd.Hi - nd.Lo)
	base := int(nd.Lo) * dim
	dists := buf.DistScratch(m)
	kernel.SqDistsF32(dists, buf.Q32(dim), t.CoordsF32[base:base+m*dim], m, m)
	thr := buf.RefineThreshold()
	eager := math.IsInf(thr, 1)
	if eager {
		// Unbounded (eager) phase: bound the true k-th distance from the
		// f32 scan itself, so even the first leaf refines only ~k points.
		thr = buf.EagerThreshold(dists)
	} else if buf.seeded && buf.fresh {
		// First leaf of a seeded query — for batch queries this is the
		// query's own leaf, whose (k+1)-th f32 distance usually beats the
		// triangle-inequality seed. Tighten both the refine threshold and
		// the pruning bound before paying any float64 work.
		if t2 := buf.EagerThreshold(dists); t2 < thr {
			thr = t2
			buf.tightenBound(t2)
		}
	}
	buf.fresh = false
	for i := 0; i < m; i++ {
		if float64(dists[i]) <= thr {
			if id := t.Idx[nd.Lo+int32(i)]; id != exclude {
				buf.Insert(id, geom.SqDist(q, t.Pts.At(int(id))))
				if t2 := buf.RefineThreshold(); t2 < thr {
					thr = t2
				}
			}
		}
	}
	if eager {
		buf.SealEager()
	}
}

func boxSqDist(nd *Node, q []float64, dim int) float64 {
	return kernel.MinSqDistToBox(q, nd.MinC[:dim], nd.MaxC[:dim])
}

// --- range search -------------------------------------------------------

// rangeChunk is the leaf-scan chunk: PruneBox masks land in a fixed stack
// buffer so range queries allocate nothing per leaf.
const rangeChunk = 64

// rangeCtx carries one range query's state down the recursion: the exact
// float64 box, plus — when the filter is sound — its conservatively
// widened float32 image for the column filter. The widening (2× the
// coordinate error bound per side) guarantees every truly-inside point
// passes the f32 filter; survivors are re-verified against the float64
// truth, so results are exact.
type rangeCtx struct {
	box        geom.Box
	lo32, hi32 [MaxDim]float32
	f32        bool
}

func (t *Tree) makeRangeCtx(box geom.Box) rangeCtx {
	rc := rangeCtx{box: box}
	if !t.f32ok {
		return rc
	}
	pad := 2 * t.maxAbs * F32CoordErr
	for c := 0; c < t.Pts.Dim; c++ {
		if math.IsNaN(box.Min[c]) || math.IsNaN(box.Max[c]) {
			return rc
		}
		rc.lo32[c] = float32(box.Min[c] - pad)
		rc.hi32[c] = float32(box.Max[c] + pad)
	}
	rc.f32 = true
	return rc
}

// RangeSearch returns the indices of all points inside the closed box.
func (t *Tree) RangeSearch(box geom.Box) []int32 {
	var out []int32
	if len(t.Nodes) > 0 {
		rc := t.makeRangeCtx(box)
		t.rangeRec(0, &rc, &out)
	}
	return out
}

// RangeCount returns the number of points inside the closed box.
func (t *Tree) RangeCount(box geom.Box) int {
	cnt := 0
	if len(t.Nodes) > 0 {
		rc := t.makeRangeCtx(box)
		t.rangeCountRec(0, &rc, &cnt)
	}
	return cnt
}

func (t *Tree) nodeBoxIn(nd *Node, box geom.Box) (inside, disjoint bool) {
	inside, disjoint = true, false
	for c := 0; c < t.Pts.Dim; c++ {
		if nd.MaxC[c] < box.Min[c] || nd.MinC[c] > box.Max[c] {
			return false, true
		}
		if nd.MinC[c] < box.Min[c] || nd.MaxC[c] > box.Max[c] {
			inside = false
		}
	}
	return inside, false
}

// rangeLeafF32 scans one leaf through the f32 column filter: PruneBox
// masks rangeChunk points at a time against the widened f32 box, and only
// masked-in points are verified against the exact float64 box. Appends ids
// to out when non-nil, else counts into cnt.
func (t *Tree) rangeLeafF32(nd *Node, rc *rangeCtx, out *[]int32, cnt *int) {
	dim := t.Pts.Dim
	m := int(nd.Hi - nd.Lo)
	base := int(nd.Lo) * dim
	slab := t.CoordsF32[base : base+m*dim]
	var mask [rangeChunk]byte
	for off := 0; off < m; off += rangeChunk {
		cn := m - off
		if cn > rangeChunk {
			cn = rangeChunk
		}
		kernel.PruneBox(mask[:cn], rc.lo32[:dim], rc.hi32[:dim], slab[off:], cn, m)
		for i := 0; i < cn; i++ {
			if mask[i] == 0 {
				continue
			}
			id := t.Idx[nd.Lo+int32(off+i)]
			if rc.box.Contains(t.Pts.At(int(id))) {
				if out != nil {
					*out = append(*out, id)
				} else {
					*cnt++
				}
			}
		}
	}
}

func (t *Tree) rangeLeafF64(nd *Node, rc *rangeCtx, out *[]int32, cnt *int) {
	for i := nd.Lo; i < nd.Hi; i++ {
		id := t.Idx[i]
		if rc.box.Contains(t.Pts.At(int(id))) {
			if out != nil {
				*out = append(*out, id)
			} else {
				*cnt++
			}
		}
	}
}

func (t *Tree) rangeRec(ni int32, rc *rangeCtx, out *[]int32) {
	nd := &t.Nodes[ni]
	inside, disjoint := t.nodeBoxIn(nd, rc.box)
	if disjoint {
		return
	}
	if inside {
		*out = append(*out, t.Idx[nd.Lo:nd.Hi]...)
		return
	}
	if nd.Left == 0 {
		if rc.f32 {
			t.rangeLeafF32(nd, rc, out, nil)
		} else {
			t.rangeLeafF64(nd, rc, out, nil)
		}
		return
	}
	t.rangeRec(nd.Left, rc, out)
	t.rangeRec(nd.Right, rc, out)
}

func (t *Tree) rangeCountRec(ni int32, rc *rangeCtx, cnt *int) {
	nd := &t.Nodes[ni]
	inside, disjoint := t.nodeBoxIn(nd, rc.box)
	if disjoint {
		return
	}
	if inside {
		*cnt += nd.Size()
		return
	}
	if nd.Left == 0 {
		if rc.f32 {
			t.rangeLeafF32(nd, rc, nil, cnt)
		} else {
			t.rangeLeafF64(nd, rc, nil, cnt)
		}
		return
	}
	t.rangeCountRec(nd.Left, rc, cnt)
	t.rangeCountRec(nd.Right, rc, cnt)
}

// RangeSearchParallel answers many box queries data-parallel.
func (t *Tree) RangeSearchParallel(boxes []geom.Box) [][]int32 {
	out := make([][]int32, len(boxes))
	parlay.For(len(boxes), 16, func(i int) {
		out[i] = t.RangeSearch(boxes[i])
	})
	return out
}

// --- node geometry helpers used by WSPD / BCCP --------------------------

// NodeSqDist returns the squared distance between the bounding boxes of two
// nodes (possibly from different trees over buffers of equal dimension).
func NodeSqDist(a, b *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		var d float64
		if b.MaxC[c] < a.MinC[c] {
			d = a.MinC[c] - b.MaxC[c]
		} else if a.MaxC[c] < b.MinC[c] {
			d = b.MinC[c] - a.MaxC[c]
		}
		s += d * d
	}
	return s
}

// NodeMaxSqDist returns the squared distance between the farthest corners
// of two nodes' boxes.
func NodeMaxSqDist(a, b *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		d := math.Max(b.MaxC[c]-a.MinC[c], a.MaxC[c]-b.MinC[c])
		s += d * d
	}
	return s
}

// NodeSqDiameter returns the squared diagonal length of the node's box.
func NodeSqDiameter(nd *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		d := nd.MaxC[c] - nd.MinC[c]
		s += d * d
	}
	return s
}

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var rec func(ni int32) int
	rec = func(ni int32) int {
		nd := &t.Nodes[ni]
		if nd.Left == 0 {
			return 1
		}
		l, r := rec(nd.Left), rec(nd.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(0)
}
