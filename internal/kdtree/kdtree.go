// Package kdtree implements ParGeo's static parallel kd-tree (Module 1):
// parallel construction with object-median or spatial-median splits,
// exact k-nearest-neighbor search with the paper's 2k quickselect buffer,
// and orthogonal range search. The tree also exposes its node structure
// (bounding boxes, children, subtree point ranges), which the WSPD, EMST,
// and bichromatic-closest-pair modules traverse directly.
//
// Construction follows §2 and Appendix C.1: split along the widest
// dimension of the node's bounding box, either at the object median (median
// point coordinate, via quickselect) or the spatial median (midpoint of the
// box extent); recursion on the two sides forks through parlay's
// work-stealing scheduler (nested fork-join, no depth limit) until subtrees
// fall below the sequential grain, so skewed splits rebalance dynamically.
// Points are never copied: the tree permutes a single index array, and each
// node owns a contiguous range of it.
//
// On layout: the paper stores BDL-tree nodes in the cache-oblivious van
// Emde Boas order (Appendix C.1.1). The general tree here uses DFS
// (preorder) layout, which is also contiguous and cache-friendly for the
// traversals ParGeo performs; the BDL static trees additionally provide the
// vEB index permutation (see bdltree/veb.go) to reproduce Algorithm 1.
package kdtree

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

var inf = math.Inf(1)

// MaxDim is the largest supported dimensionality (the paper evaluates up to
// 7 dimensions; boxes are stored inline for allocation-free nodes).
const MaxDim = 8

// SplitRule selects the node-splitting heuristic (§6.3: "splitting the
// points based on either using the object median ... or the spatial
// median").
type SplitRule int

const (
	// ObjectMedian splits at the median point coordinate along the widest
	// dimension: balanced trees, higher build cost.
	ObjectMedian SplitRule = iota
	// SpatialMedian splits at the midpoint of the bounding-box extent:
	// cheaper splits, possibly unbalanced trees.
	SpatialMedian
)

func (s SplitRule) String() string {
	if s == ObjectMedian {
		return "object"
	}
	return "spatial"
}

// Options configure tree construction.
type Options struct {
	Split    SplitRule
	LeafSize int // max points per leaf; default 16
	Serial   bool
}

// Node is a kd-tree node. Leaves have Left == nil and own the index range
// [Lo, Hi) of Tree.Idx; internal nodes carry the split plane. Every node
// (incl. internal) owns its subtree's contiguous range [Lo, Hi).
type Node struct {
	MinC, MaxC  [MaxDim]float64 // bounding box (first Dim entries valid)
	Left, Right *Node
	Lo, Hi      int32
	SplitVal    float64
	SplitDim    int8
}

// IsLeaf reports whether the node is a leaf.
func (nd *Node) IsLeaf() bool { return nd.Left == nil }

// Size returns the number of points in the node's subtree.
func (nd *Node) Size() int { return int(nd.Hi - nd.Lo) }

// Tree is a static kd-tree over an externally owned point buffer.
type Tree struct {
	Pts  geom.Points
	Idx  []int32 // permutation of the point indices; leaves own ranges
	Root *Node
	opts Options
}

// Build constructs a kd-tree over all points in pts.
func Build(pts geom.Points, opts Options) *Tree {
	n := pts.Len()
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	return BuildIndexed(pts, idx, opts)
}

// BuildIndexed constructs a kd-tree over the subset of pts given by idx.
// The tree takes ownership of idx and permutes it in place.
func BuildIndexed(pts geom.Points, idx []int32, opts Options) *Tree {
	if pts.Dim > MaxDim {
		panic("kdtree: dimension exceeds MaxDim")
	}
	if opts.LeafSize <= 0 {
		opts.LeafSize = 16
	}
	t := &Tree{Pts: pts, Idx: idx, opts: opts}
	if len(idx) > 0 {
		t.Root = t.build(0, int32(len(idx)), !opts.Serial)
	}
	return t
}

// parallelBuildThreshold: below this many points a subtree builds serially —
// the fork-join grain. Above it the two children fork as nested Do tasks and
// the scheduler balances the recursion tree, however skewed the splits.
const parallelBuildThreshold = 4096

func (t *Tree) build(lo, hi int32, par bool) *Node {
	nd := &Node{Lo: lo, Hi: hi}
	t.computeBox(nd, par)
	n := int(hi - lo)
	if n <= t.opts.LeafSize {
		return nd
	}
	dim := widestDim(nd, t.Pts.Dim)
	var mid int32
	switch t.opts.Split {
	case SpatialMedian:
		splitVal := (nd.MinC[dim] + nd.MaxC[dim]) / 2
		mid = t.partition(lo, hi, dim, splitVal)
		if mid == lo || mid == hi {
			// Degenerate spatial split (all points on one side): fall back
			// to the object median so progress is guaranteed.
			mid = lo + int32(n/2)
			t.nthElement(lo, hi, mid, dim)
		}
		nd.SplitVal = splitVal
	default: // ObjectMedian
		mid = lo + int32(n/2)
		t.nthElement(lo, hi, mid, dim)
		nd.SplitVal = t.Pts.Coord(int(t.Idx[mid]), dim)
	}
	nd.SplitDim = int8(dim)
	childPar := par && n > parallelBuildThreshold
	if childPar {
		parlay.Do(
			func() { nd.Left = t.build(lo, mid, true) },
			func() { nd.Right = t.build(mid, hi, true) },
		)
	} else {
		nd.Left = t.build(lo, mid, false)
		nd.Right = t.build(mid, hi, false)
	}
	return nd
}

// computeBox fills the node's bounding box over its index range.
func (t *Tree) computeBox(nd *Node, par bool) {
	dim := t.Pts.Dim
	for c := 0; c < dim; c++ {
		nd.MinC[c] = inf
		nd.MaxC[c] = -inf
	}
	n := int(nd.Hi - nd.Lo)
	if par && n > 1<<16 {
		type boxAcc struct{ mn, mx [MaxDim]float64 }
		id := boxAcc{}
		for c := 0; c < dim; c++ {
			id.mn[c] = inf
			id.mx[c] = -inf
		}
		acc := parlay.Reduce(n, 0, id,
			func(i int) boxAcc {
				var a boxAcc
				p := t.Pts.At(int(t.Idx[nd.Lo+int32(i)]))
				for c := 0; c < dim; c++ {
					a.mn[c], a.mx[c] = p[c], p[c]
				}
				for c := dim; c < MaxDim; c++ {
					a.mn[c], a.mx[c] = inf, -inf
				}
				return a
			},
			func(a, b boxAcc) boxAcc {
				for c := 0; c < dim; c++ {
					a.mn[c] = math.Min(a.mn[c], b.mn[c])
					a.mx[c] = math.Max(a.mx[c], b.mx[c])
				}
				return a
			})
		nd.MinC, nd.MaxC = acc.mn, acc.mx
		return
	}
	for i := nd.Lo; i < nd.Hi; i++ {
		p := t.Pts.At(int(t.Idx[i]))
		for c := 0; c < dim; c++ {
			if p[c] < nd.MinC[c] {
				nd.MinC[c] = p[c]
			}
			if p[c] > nd.MaxC[c] {
				nd.MaxC[c] = p[c]
			}
		}
	}
}

func widestDim(nd *Node, dim int) int {
	best, bw := 0, nd.MaxC[0]-nd.MinC[0]
	for c := 1; c < dim; c++ {
		if w := nd.MaxC[c] - nd.MinC[c]; w > bw {
			best, bw = c, w
		}
	}
	return best
}

// partition reorders Idx[lo:hi] so points with coord < splitVal precede the
// rest; returns the boundary.
func (t *Tree) partition(lo, hi int32, dim int, splitVal float64) int32 {
	i, j := lo, hi-1
	for i <= j {
		for i <= j && t.Pts.Coord(int(t.Idx[i]), dim) < splitVal {
			i++
		}
		for i <= j && t.Pts.Coord(int(t.Idx[j]), dim) >= splitVal {
			j--
		}
		if i < j {
			t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
			i++
			j--
		}
	}
	return i
}

// nthElement quickselects Idx[lo:hi] so Idx[kth] has rank kth-lo by the
// given coordinate (ties broken by index for determinism).
func (t *Tree) nthElement(lo, hi, kth int32, dim int) {
	key := func(i int32) float64 { return t.Pts.Coord(int(t.Idx[i]), dim) }
	for hi-lo > 1 {
		mid := (lo + hi - 1) / 2
		// Median-of-three.
		if key(mid) < key(lo) {
			t.Idx[mid], t.Idx[lo] = t.Idx[lo], t.Idx[mid]
		}
		if key(hi-1) < key(lo) {
			t.Idx[hi-1], t.Idx[lo] = t.Idx[lo], t.Idx[hi-1]
		}
		if key(hi-1) < key(mid) {
			t.Idx[hi-1], t.Idx[mid] = t.Idx[mid], t.Idx[hi-1]
		}
		pivot := key(mid)
		i, j := lo, hi-1
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
				i++
				j--
			}
		}
		if kth <= j {
			hi = j + 1
		} else if kth >= i {
			lo = i
		} else {
			return
		}
	}
}

// Points returns the point indices stored in the node's subtree.
func (t *Tree) Points(nd *Node) []int32 { return t.Idx[nd.Lo:nd.Hi] }

// --- k-nearest neighbors ----------------------------------------------

// KNN returns, for each query point index in queries, its k nearest
// neighbors among the tree's points (by index into Pts), excluding the
// query point itself when it is part of the tree. Queries run data-parallel
// (§5 "Data-Parallel k-NN"). Result row i occupies out[i*k : i*k+counts[i]].
func (t *Tree) KNN(queries []int32, k int) [][]int32 {
	out := make([][]int32, len(queries))
	parlay.ForBlocked(len(queries), 64, func(lo, hi int) {
		buf := NewKNNBuffer(k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			q := int(queries[i])
			t.KNNInto(t.Pts.At(q), int32(q), buf)
			out[i] = buf.Result(nil)
		}
	})
	return out
}

// KNNInto runs a single k-NN query for coordinates q into buf (which the
// caller Reset()s between unrelated queries but deliberately reuses across
// the multiple trees of a BDL-tree). exclude is a point index to skip (-1
// for none).
func (t *Tree) KNNInto(q []float64, exclude int32, buf *KNNBuffer) {
	if t.Root != nil {
		t.knnRec(t.Root, q, exclude, buf)
	}
}

func (t *Tree) knnRec(nd *Node, q []float64, exclude int32, buf *KNNBuffer) {
	if nd.IsLeaf() {
		for i := nd.Lo; i < nd.Hi; i++ {
			id := t.Idx[i]
			if id == exclude {
				continue
			}
			buf.Insert(id, geom.SqDist(q, t.Pts.At(int(id))))
		}
		return
	}
	// Descend into the nearer child first.
	near, far := nd.Left, nd.Right
	if q[nd.SplitDim] >= nd.SplitVal {
		near, far = far, near
	}
	t.knnRec(near, q, exclude, buf)
	// Paper heuristic (C.1.3): if the buffer is not yet full, eagerly visit
	// the sibling to establish a pruning bound as fast as possible;
	// otherwise prune by box distance.
	if !buf.Full() || boxSqDist(far, q, t.Pts.Dim) < buf.Bound() {
		t.knnRec(far, q, exclude, buf)
	}
}

func boxSqDist(nd *Node, q []float64, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		if v := q[c]; v < nd.MinC[c] {
			d := nd.MinC[c] - v
			s += d * d
		} else if v > nd.MaxC[c] {
			d := v - nd.MaxC[c]
			s += d * d
		}
	}
	return s
}

func boxMaxSqDist(nd *Node, q []float64, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		d := math.Max(math.Abs(q[c]-nd.MinC[c]), math.Abs(q[c]-nd.MaxC[c]))
		s += d * d
	}
	return s
}

// --- range search -------------------------------------------------------

// RangeSearch returns the indices of all points inside the closed box.
func (t *Tree) RangeSearch(box geom.Box) []int32 {
	var out []int32
	if t.Root != nil {
		t.rangeRec(t.Root, box, &out)
	}
	return out
}

// RangeCount returns the number of points inside the closed box.
func (t *Tree) RangeCount(box geom.Box) int {
	cnt := 0
	if t.Root != nil {
		t.rangeCountRec(t.Root, box, &cnt)
	}
	return cnt
}

func (t *Tree) nodeBoxIn(nd *Node, box geom.Box) (inside, disjoint bool) {
	inside, disjoint = true, false
	for c := 0; c < t.Pts.Dim; c++ {
		if nd.MaxC[c] < box.Min[c] || nd.MinC[c] > box.Max[c] {
			return false, true
		}
		if nd.MinC[c] < box.Min[c] || nd.MaxC[c] > box.Max[c] {
			inside = false
		}
	}
	return inside, false
}

func (t *Tree) rangeRec(nd *Node, box geom.Box, out *[]int32) {
	inside, disjoint := t.nodeBoxIn(nd, box)
	if disjoint {
		return
	}
	if inside {
		*out = append(*out, t.Idx[nd.Lo:nd.Hi]...)
		return
	}
	if nd.IsLeaf() {
		for i := nd.Lo; i < nd.Hi; i++ {
			if box.Contains(t.Pts.At(int(t.Idx[i]))) {
				*out = append(*out, t.Idx[i])
			}
		}
		return
	}
	t.rangeRec(nd.Left, box, out)
	t.rangeRec(nd.Right, box, out)
}

func (t *Tree) rangeCountRec(nd *Node, box geom.Box, cnt *int) {
	inside, disjoint := t.nodeBoxIn(nd, box)
	if disjoint {
		return
	}
	if inside {
		*cnt += nd.Size()
		return
	}
	if nd.IsLeaf() {
		for i := nd.Lo; i < nd.Hi; i++ {
			if box.Contains(t.Pts.At(int(t.Idx[i]))) {
				*cnt++
			}
		}
		return
	}
	t.rangeCountRec(nd.Left, box, cnt)
	t.rangeCountRec(nd.Right, box, cnt)
}

// RangeSearchParallel answers many box queries data-parallel.
func (t *Tree) RangeSearchParallel(boxes []geom.Box) [][]int32 {
	out := make([][]int32, len(boxes))
	parlay.For(len(boxes), 16, func(i int) {
		out[i] = t.RangeSearch(boxes[i])
	})
	return out
}

// --- node geometry helpers used by WSPD / BCCP --------------------------

// NodeSqDist returns the squared distance between the bounding boxes of two
// nodes (possibly from different trees over buffers of equal dimension).
func NodeSqDist(a, b *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		var d float64
		if b.MaxC[c] < a.MinC[c] {
			d = a.MinC[c] - b.MaxC[c]
		} else if a.MaxC[c] < b.MinC[c] {
			d = b.MinC[c] - a.MaxC[c]
		}
		s += d * d
	}
	return s
}

// NodeMaxSqDist returns the squared distance between the farthest corners
// of two nodes' boxes.
func NodeMaxSqDist(a, b *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		d := math.Max(b.MaxC[c]-a.MinC[c], a.MaxC[c]-b.MinC[c])
		s += d * d
	}
	return s
}

// NodeSqDiameter returns the squared diagonal length of the node's box.
func NodeSqDiameter(nd *Node, dim int) float64 {
	s := 0.0
	for c := 0; c < dim; c++ {
		d := nd.MaxC[c] - nd.MinC[c]
		s += d * d
	}
	return s
}

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	var rec func(nd *Node) int
	rec = func(nd *Node) int {
		if nd == nil {
			return 0
		}
		if nd.IsLeaf() {
			return 1
		}
		l, r := rec(nd.Left), rec(nd.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.Root)
}
