package kdtree

import "sync"

// BufferPool is a sync.Pool of KNNBuffers with a fixed neighbor count,
// letting hot query paths (the engine's grouped combiner, batched all-k-NN
// passes) reuse buffers across queries and across calls instead of
// allocating one per query-group member.
type BufferPool struct {
	k int
	p sync.Pool
}

// NewBufferPool returns a pool of k-neighbor buffers.
func NewBufferPool(k int) *BufferPool {
	bp := &BufferPool{k: k}
	bp.p.New = func() any { return NewKNNBuffer(k) }
	return bp
}

// K returns the neighbor count of the pooled buffers.
func (bp *BufferPool) K() int { return bp.k }

// Get returns a Reset buffer ready for a query.
func (bp *BufferPool) Get() *KNNBuffer {
	b := bp.p.Get().(*KNNBuffer)
	b.Reset()
	return b
}

// Put returns a buffer to the pool.
func (bp *BufferPool) Put(b *KNNBuffer) { bp.p.Put(b) }
