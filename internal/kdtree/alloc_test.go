package kdtree

import (
	"testing"

	"pargeo/internal/generators"
)

// Allocation-regression tests: the flat arena layout's contract is that a
// build performs O(1) allocations (the index permutation, the node arena,
// the leaf-coordinate cache, and — for spatial splits — the slab arena it
// compacts away) and that a query with a reused buffer performs none. These
// tests lock that in so a refactor cannot quietly reintroduce the
// one-allocation-per-node pointer design. Under -race the builds still run
// (for data-race coverage) but exact counts are not asserted — the
// detector's instrumentation allocates on its own.

// serialBuildAllocBudget bounds a serial Build: Tree header, Idx,
// LeafCoords, Nodes (plus, for spatial splits, the worst-case slab and the
// compaction closure) — with a little slack for runtime bookkeeping.
const serialBuildAllocBudget = 12

func TestBuildAllocationRegression(t *testing.T) {
	for _, n := range []int{10000, 30000} {
		pts := generators.UniformCube(n, 3, uint64(n))
		for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
			serial := testing.AllocsPerRun(5, func() {
				Build(pts, Options{Split: split, Serial: true})
			})
			// The parallel build adds O(forks) scheduler tasks — bounded by
			// n / parallelBuildThreshold, never by n / LeafSize.
			parallel := testing.AllocsPerRun(5, func() {
				Build(pts, Options{Split: split})
			})
			if raceEnabled {
				continue
			}
			if serial > serialBuildAllocBudget {
				t.Errorf("n=%d split=%v: serial Build did %.0f allocs, budget %d",
					n, split, serial, serialBuildAllocBudget)
			}
			forkBudget := float64(serialBuildAllocBudget + 8*(n/parallelBuildThreshold+1))
			if parallel > forkBudget {
				t.Errorf("n=%d split=%v: parallel Build did %.0f allocs, budget %.0f",
					n, split, parallel, forkBudget)
			}
		}
	}
}

// TestBuildAllocsDoNotScaleWithNodes is the sharper form of the regression:
// quadrupling the point count (16x the node count at LeafSize 4) must leave
// the serial allocation count unchanged.
func TestBuildAllocsDoNotScaleWithNodes(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	small := generators.UniformCube(8000, 2, 1)
	large := generators.UniformCube(32000, 2, 2)
	for _, split := range []SplitRule{ObjectMedian, SpatialMedian} {
		a := testing.AllocsPerRun(5, func() {
			Build(small, Options{Split: split, LeafSize: 4, Serial: true})
		})
		b := testing.AllocsPerRun(5, func() {
			Build(large, Options{Split: split, LeafSize: 4, Serial: true})
		})
		if b > a {
			t.Errorf("split=%v: allocs grew with input: %.0f (8k pts) -> %.0f (32k pts)",
				split, a, b)
		}
	}
}

func TestKNNIntoZeroAllocs(t *testing.T) {
	pts := generators.UniformCube(5000, 3, 7)
	tr := Build(pts, Options{})
	if !tr.f32ok {
		t.Fatal("expected the f32 leaf filter active; zero-alloc claim must cover the f32 scan path")
	}
	buf := NewKNNBuffer(8)
	q := pts.At(123)
	allocs := testing.AllocsPerRun(200, func() {
		buf.Reset()
		tr.KNNInto(q, 123, buf)
	})
	if raceEnabled {
		return
	}
	if allocs != 0 {
		t.Errorf("KNNInto with reused buffer did %.2f allocs/run, want 0", allocs)
	}
}

func TestRangeCountZeroAllocs(t *testing.T) {
	pts := generators.UniformCube(5000, 3, 9)
	tr := Build(pts, Options{})
	c := pts.At(2500)
	box := boxAround(c, 4)
	allocs := testing.AllocsPerRun(200, func() {
		tr.RangeCount(box)
	})
	if raceEnabled {
		return
	}
	if allocs != 0 {
		t.Errorf("RangeCount did %.2f allocs/run, want 0", allocs)
	}
}

// allknnSerialAllocBudget bounds a sub-grain (single-worker) AllKNN pass:
// the result slice, the buffer pool and its one KNNBuffer (id/dist rows
// plus the f32 query and distance scratch), and the ancestor-path slice.
// Nothing may scale with the number of queries — the seeded co-traversal
// reuses one buffer across the whole batch.
const allknnSerialAllocBudget = 24

func TestAllKNNAllocsConstantSerial(t *testing.T) {
	for _, n := range []int{500, 2000} {
		pts := generators.UniformCube(n, 3, 21)
		tr := Build(pts, Options{})
		if !tr.f32ok {
			t.Fatal("expected the f32 leaf filter active")
		}
		allocs := testing.AllocsPerRun(5, func() {
			tr.AllKNN(4, nil)
		})
		if raceEnabled {
			return
		}
		if allocs > allknnSerialAllocBudget {
			t.Errorf("n=%d: AllKNN did %.0f allocs/run, budget %d (per-query allocation crept in)",
				n, allocs, allknnSerialAllocBudget)
		}
	}
}
