package kdtree

import "pargeo/internal/geom"

// NthElement reorders idx so idx[kth] holds the element of rank kth by
// coordinate dim (quickselect with median-of-three pivots). Shared by this
// package's builder and the BDL-tree's vEB builder.
func NthElement(pts geom.Points, idx []int32, kth int, dim int) {
	lo, hi := 0, len(idx)
	key := func(i int) float64 { return pts.Coord(int(idx[i]), dim) }
	for hi-lo > 1 {
		mid := (lo + hi - 1) / 2
		if key(mid) < key(lo) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if key(hi-1) < key(lo) {
			idx[hi-1], idx[lo] = idx[lo], idx[hi-1]
		}
		if key(hi-1) < key(mid) {
			idx[hi-1], idx[mid] = idx[mid], idx[hi-1]
		}
		pivot := key(mid)
		i, j := lo, hi-1
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if kth <= j {
			hi = j + 1
		} else if kth >= i {
			lo = i
		} else {
			return
		}
	}
}

// PartitionVal reorders idx so elements with coordinate dim < val precede
// the rest, returning the boundary position.
func PartitionVal(pts geom.Points, idx []int32, dim int, val float64) int {
	i, j := 0, len(idx)-1
	for i <= j {
		for i <= j && pts.Coord(int(idx[i]), dim) < val {
			i++
		}
		for i <= j && pts.Coord(int(idx[j]), dim) >= val {
			j--
		}
		if i < j {
			idx[i], idx[j] = idx[j], idx[i]
			i++
			j--
		}
	}
	return i
}
