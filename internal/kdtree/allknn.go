package kdtree

import "pargeo/internal/parlay"

// AllKNN computes, for every point stored in the tree, its k nearest
// neighbors among the tree's points (excluding the point itself), in one
// data-parallel batch pass. Results are flat and row-major by point index:
// the neighbors of point p occupy ids[p*k : (p+1)*k], sorted by increasing
// distance and padded with -1 when fewer than k neighbors exist (and, for
// trees built over an index subset, for points absent from the tree). If
// sqDists is non-nil it must have length Pts.Len()*k and receives the
// matching squared distances (+Inf padding).
//
// Queries are issued in leaf (Idx) order, so consecutive queries are
// spatially adjacent and traverse overlapping node paths, and each query's
// coordinates come straight from the contiguous LeafCoords cache. Workers
// draw KNNBuffers from a pool, reusing one buffer across an entire block of
// queries — the batch allocates nothing per query beyond the result rows.
//
// This is the batch entry point the closest-pair reduction, the clustering
// pipeline's core distances, and the k-NN graph generator share.
func (t *Tree) AllKNN(k int, sqDists []float64) []int32 {
	if k <= 0 {
		panic("kdtree: AllKNN requires k >= 1")
	}
	n := t.Pts.Len()
	if sqDists != nil && len(sqDists) != n*k {
		panic("kdtree: AllKNN sqDists length must be Pts.Len()*k")
	}
	ids := make([]int32, n*k)
	if len(t.Idx) != n {
		// Subset tree: rows of points outside the tree stay padded.
		parlay.For(n*k, 0, func(i int) {
			ids[i] = -1
			if sqDists != nil {
				sqDists[i] = inf
			}
		})
	}
	if len(t.Idx) == 0 {
		return ids
	}
	pool := NewBufferPool(k)
	parlay.ForBlocked(len(t.Idx), 64, func(lo, hi int) {
		buf := pool.Get()
		for i := lo; i < hi; i++ {
			pid := t.Idx[i]
			buf.Reset()
			t.knnRec(0, t.LeafCoord(i), pid, buf)
			row := ids[int(pid)*k : (int(pid)+1)*k]
			var drow []float64
			if sqDists != nil {
				drow = sqDists[int(pid)*k : (int(pid)+1)*k]
			}
			m := buf.ResultInto(row, drow)
			for j := m; j < k; j++ {
				row[j] = -1
				if drow != nil {
					drow[j] = inf
				}
			}
		}
		pool.Put(buf)
	})
	return ids
}

// AllKthSqDist computes, for every point stored in the tree, the squared
// distance to its k-th nearest neighbor (excluding itself) — the batch form
// of KNNBuffer.KthDist, and the quantity DBSCAN/HDBSCAN core distances are
// built from. Entry p is +Inf when point p has fewer than k neighbors or is
// absent from a subset tree. Unlike AllKNN it materializes no neighbor
// matrix: output is O(n) however large k is.
func (t *Tree) AllKthSqDist(k int) []float64 {
	if k <= 0 {
		panic("kdtree: AllKthSqDist requires k >= 1")
	}
	n := t.Pts.Len()
	out := make([]float64, n)
	if len(t.Idx) != n {
		parlay.For(n, 0, func(i int) { out[i] = inf })
	}
	pool := NewBufferPool(k)
	parlay.ForBlocked(len(t.Idx), 64, func(lo, hi int) {
		buf := pool.Get()
		for i := lo; i < hi; i++ {
			pid := t.Idx[i]
			buf.Reset()
			t.knnRec(0, t.LeafCoord(i), pid, buf)
			out[pid] = buf.KthDist()
		}
		pool.Put(buf)
	})
	return out
}
