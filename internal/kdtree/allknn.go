package kdtree

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// allknnGrain is the subtree size below which the batch pass runs
// sequentially on one worker (one pooled buffer, one seed chain).
const allknnGrain = 2048

// seedFromPrev primes buf for a query at point q using the previous query
// in the batch: if the previous point prev had exact k-th squared distance
// prevKth, the triangle inequality bounds this query's k-th distance by
// √prevKth + |prev−q| (prev itself plus k-th-ball(prev) minus q is k
// points ≠ q within that radius). Inflated to a strict bound as SeedBound
// requires; zero radius (exact duplicates) cannot be made strict and is
// skipped. Queries run in leaf (Idx) order, so prev is spatially adjacent
// and the seed is tight — pruning and the f32 refine threshold are armed
// from the first leaf, skipping the eager phase entirely.
func seedFromPrev(buf *KNNBuffer, prev []float64, prevKth float64, q []float64) {
	if math.IsInf(prevKth, 1) {
		return
	}
	r := math.Sqrt(prevKth) + math.Sqrt(geom.SqDist(prev, q))
	if r > 0 {
		r *= 1 + 0x1p-30
		buf.SeedBound(r * r)
	}
}

// allknnState threads one worker's query chain through a sequential run of
// leaves: the reused buffer plus the previous query point and its exact
// k-th distance (the seed for the next query).
type allknnState struct {
	buf     *KNNBuffer
	prev    []float64
	prevKth float64
}

// allknnPar fans the batch pass out over the tree: subtrees larger than
// allknnGrain fork through the scheduler (each side gets its own copy of
// the ancestor path), smaller ones run sequentially with one pooled
// buffer. emit consumes one finished query's buffer and returns the exact
// k-th squared distance (+Inf when under k), which seeds the next query.
func (t *Tree) allknnPar(ni int32, path []int32, pool *BufferPool, emit func(int32, *KNNBuffer) float64) {
	nd := &t.Nodes[ni]
	if nd.Left == 0 || nd.Size() <= allknnGrain {
		st := allknnState{buf: pool.Get(), prevKth: inf}
		t.allknnWalk(ni, path, &st, emit)
		pool.Put(st.buf)
		return
	}
	lp := make([]int32, len(path)+1, len(path)+16)
	copy(lp, path)
	lp[len(path)] = ni
	rp := make([]int32, len(path)+1, len(path)+16)
	copy(rp, path)
	rp[len(path)] = ni
	parlay.Do(
		func() { t.allknnPar(nd.Left, lp, pool, emit) },
		func() { t.allknnPar(nd.Right, rp, pool, emit) },
	)
}

// allknnWalk visits the leaves of subtree ni in order and answers each
// leaf's self-queries bottom-up: the query point is already in this leaf,
// so the leaf is scanned first (with the seed from the previous query in
// the chain), and the rest of the tree is covered by walking the ancestor
// path upward, descending into each ancestor's other child only when its
// box beats the current bound. That replaces the per-query root descent —
// by the time siblings are tested, the bound is already tight, so almost
// all of them prune on the one box test.
func (t *Tree) allknnWalk(ni int32, path []int32, st *allknnState, emit func(int32, *KNNBuffer) float64) {
	nd := &t.Nodes[ni]
	if nd.Left != 0 {
		path = append(path, ni)
		t.allknnWalk(nd.Left, path, st, emit)
		t.allknnWalk(nd.Right, path, st, emit)
		return
	}
	dim := t.Pts.Dim
	buf := st.buf
	for i := nd.Lo; i < nd.Hi; i++ {
		pid := t.Idx[i]
		q := t.Pts.At(int(pid))
		buf.Reset()
		if st.prev != nil {
			seedFromPrev(buf, st.prev, st.prevKth, q)
		}
		buf.PrepareF32(q, t.maxAbs, t.f32ok)
		if buf.ScanF32() {
			t.scanLeafF32(nd, q, pid, buf)
		} else {
			for j := nd.Lo; j < nd.Hi; j++ {
				if id := t.Idx[j]; id != pid {
					buf.Insert(id, geom.SqDist(q, t.Pts.At(int(id))))
				}
			}
		}
		child := ni
		for j := len(path) - 1; j >= 0; j-- {
			anc := &t.Nodes[path[j]]
			// Signed distance from q to the ancestor's split plane, oriented
			// toward the sibling. Both split rules partition so that the
			// left child's coords are ≤ SplitVal ≤ the right child's, so a
			// positive pd lower-bounds the distance to the sibling's box —
			// a one-multiply prune that usually saves the per-axis box test.
			// (q can sit past the plane among duplicates; then pd ≤ 0 and
			// only the exact box test decides.)
			sib := anc.Left
			pd := q[anc.SplitDim] - anc.SplitVal
			if sib == child {
				sib = anc.Right
				pd = -pd
			}
			bd := buf.Bound()
			if math.IsInf(bd, 1) ||
				((pd <= 0 || pd*pd < bd) && boxSqDist(&t.Nodes[sib], q, dim) < bd) {
				t.knnRec(sib, q, pid, buf)
			}
			child = path[j]
		}
		st.prev, st.prevKth = q, emit(pid, buf)
	}
}

// AllKNN computes, for every point stored in the tree, its k nearest
// neighbors among the tree's points (excluding the point itself), in one
// data-parallel batch pass. Results are flat and row-major by point index:
// the neighbors of point p occupy ids[p*k : (p+1)*k], sorted by increasing
// distance and padded with -1 when fewer than k neighbors exist (and, for
// trees built over an index subset, for points absent from the tree). If
// sqDists is non-nil it must have length Pts.Len()*k and receives the
// matching squared distances (+Inf padding).
//
// Queries run in leaf (Idx) order as a bottom-up co-traversal: each query
// starts at its own leaf, seeds its pruning bound from the previous
// (spatially adjacent) query via the triangle inequality, and covers the
// rest of the tree by testing ancestor siblings against that bound — see
// allknnWalk. Workers draw KNNBuffers from a pool and reuse one across an
// entire subtree of queries; the batch allocates nothing per query beyond
// the result rows.
//
// This is the batch entry point the closest-pair reduction, the clustering
// pipeline's core distances, and the k-NN graph generator share.
func (t *Tree) AllKNN(k int, sqDists []float64) []int32 {
	if k <= 0 {
		panic("kdtree: AllKNN requires k >= 1")
	}
	n := t.Pts.Len()
	if sqDists != nil && len(sqDists) != n*k {
		panic("kdtree: AllKNN sqDists length must be Pts.Len()*k")
	}
	ids := make([]int32, n*k)
	if len(t.Idx) != n {
		// Subset tree: rows of points outside the tree stay padded.
		parlay.For(n*k, 0, func(i int) {
			ids[i] = -1
			if sqDists != nil {
				sqDists[i] = inf
			}
		})
	}
	if len(t.Idx) == 0 {
		return ids
	}
	pool := NewBufferPool(k)
	t.allknnPar(0, make([]int32, 0, 16), pool, func(pid int32, buf *KNNBuffer) float64 {
		row := ids[int(pid)*k : (int(pid)+1)*k]
		var drow []float64
		if sqDists != nil {
			drow = sqDists[int(pid)*k : (int(pid)+1)*k]
		}
		m := buf.ResultInto(row, drow)
		for j := m; j < k; j++ {
			row[j] = -1
			if drow != nil {
				drow[j] = inf
			}
		}
		if m < k {
			return inf
		}
		// ResultInto sorted the kept prefix, so the exact k-th distance for
		// the next query's seed is just its last entry.
		return buf.dists[k-1]
	})
	return ids
}

// AllKthSqDist computes, for every point stored in the tree, the squared
// distance to its k-th nearest neighbor (excluding itself) — the batch form
// of KNNBuffer.KthDist, and the quantity DBSCAN/HDBSCAN core distances are
// built from. Entry p is +Inf when point p has fewer than k neighbors or is
// absent from a subset tree. Unlike AllKNN it materializes no neighbor
// matrix: output is O(n) however large k is. Batched exactly like AllKNN
// (leaf-ordered bottom-up co-traversal with seeded bounds).
func (t *Tree) AllKthSqDist(k int) []float64 {
	if k <= 0 {
		panic("kdtree: AllKthSqDist requires k >= 1")
	}
	n := t.Pts.Len()
	out := make([]float64, n)
	if len(t.Idx) != n {
		parlay.For(n, 0, func(i int) { out[i] = inf })
	}
	if len(t.Idx) == 0 {
		return out
	}
	pool := NewBufferPool(k)
	t.allknnPar(0, make([]int32, 0, 16), pool, func(pid int32, buf *KNNBuffer) float64 {
		d := buf.KthDist()
		out[pid] = d
		return d
	})
	return out
}
