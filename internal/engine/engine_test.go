package engine

import (
	"sync"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// checkAgainstOracle verifies engine KNN / RangeSearch / RangeCount answers
// against brute force over the sequential live-set model.
func checkAgainstOracle(t *testing.T, e *Engine, m *oracle.LiveSet, seed uint64) {
	t.Helper()
	if e.Size() != len(m.IDs) {
		t.Fatalf("size %d, mirror has %d", e.Size(), len(m.IDs))
	}
	pts := m.Points()
	probes := generators.UniformCube(8, m.Dim, seed)
	for i := 0; i < probes.Len(); i++ {
		q := probes.At(i)
		got := e.KNN(q, 5)
		wantD := oracle.KNNDists(pts, q, 5, -1)
		if len(got) != len(wantD) {
			t.Fatalf("knn returned %d of %d", len(got), len(wantD))
		}
		for j, id := range got {
			d := geom.SqDist(q, m.CoordsOf(id))
			if d != wantD[j] {
				t.Fatalf("knn dist[%d]=%v, oracle %v", j, d, wantD[j])
			}
		}
	}
	box := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	if n := e.RangeCount(box); n != len(m.IDs) {
		t.Fatalf("universe count %d != %d", n, len(m.IDs))
	}
	half := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{50, 1e9}}
	gotIDs := e.RangeSearch(half)
	wantIdx := oracle.RangeSearch(pts, half)
	if len(gotIDs) != len(wantIdx) {
		t.Fatalf("range size %d != %d", len(gotIDs), len(wantIdx))
	}
	want := make(map[int32]bool, len(wantIdx))
	for _, i := range wantIdx {
		want[m.IDs[i]] = true
	}
	for _, id := range gotIDs {
		if !want[id] {
			t.Fatalf("range returned id %d not in oracle set", id)
		}
	}
}

func TestEngineSequentialLifecycle(t *testing.T) {
	e := New(2, Options{BufferSize: 64})
	m := &oracle.LiveSet{Dim: 2}
	if e.Size() != 0 || e.Epoch() != 0 {
		t.Fatal("fresh engine must be empty at epoch 0")
	}
	// KNN/range on the empty engine must answer, not hang or panic.
	if got := e.KNN([]float64{0, 0}, 3); len(got) != 0 {
		t.Fatalf("empty engine knn: %v", got)
	}

	lastEpoch := uint64(0)
	for round := 0; round < 6; round++ {
		batch := generators.UniformCube(300, 2, uint64(round)+1)
		res := e.Insert(batch)
		if len(res.IDs) != batch.Len() {
			t.Fatalf("round %d: got %d ids", round, len(res.IDs))
		}
		if res.Epoch <= lastEpoch {
			t.Fatalf("epoch must advance: %d -> %d", lastEpoch, res.Epoch)
		}
		lastEpoch = res.Epoch
		m.Insert(res.IDs, batch)
		checkAgainstOracle(t, e, m, uint64(round)*17+3)

		// Delete a prefix of an earlier batch.
		if round >= 2 {
			old := generators.UniformCube(300, 2, uint64(round)-1)
			sub := geom.Points{Data: old.Data[:100*2], Dim: 2}
			res := e.Delete(sub)
			if want := m.Remove(sub); res.Deleted != want {
				t.Fatalf("deleted %d, mirror removed %d", res.Deleted, want)
			}
			checkAgainstOracle(t, e, m, uint64(round)*31+7)
		}
	}
}

// TestSnapshotIsolation: a snapshot handle keeps answering from its version
// after later commits.
func TestSnapshotIsolation(t *testing.T) {
	e := New(3, Options{BufferSize: 32})
	first := generators.UniformCube(500, 3, 1)
	e.Insert(first)
	snap := e.Snapshot()
	wantSize := snap.Size()
	wantEpoch := snap.Epoch()
	universe := geom.Box{
		Min: []float64{-1e9, -1e9, -1e9},
		Max: []float64{1e9, 1e9, 1e9},
	}
	wantIDs := append([]int32(nil), snap.RangeSearch(universe)...)

	e.Insert(generators.UniformCube(700, 3, 2))
	e.Delete(geom.Points{Data: first.Data[:50*3], Dim: 3})

	if snap.Size() != wantSize || snap.Epoch() != wantEpoch {
		t.Fatalf("snapshot mutated: size %d epoch %d", snap.Size(), snap.Epoch())
	}
	got := snap.RangeSearch(universe)
	if len(got) != len(wantIDs) {
		t.Fatalf("snapshot range drifted: %d != %d", len(got), len(wantIDs))
	}
	if e.Size() != wantSize+700-50 {
		t.Fatalf("engine head size %d", e.Size())
	}
}

// TestConcurrentQueryGrouping: a burst of concurrent queries must all be
// answered correctly (the combiner path), matching brute force.
func TestConcurrentQueryGrouping(t *testing.T) {
	e := New(2, Options{})
	pts := generators.UniformCube(2000, 2, 5)
	res := e.Insert(pts)
	idOf := make(map[int32][]float64, len(res.IDs))
	for i, id := range res.IDs {
		idOf[id] = pts.At(i)
	}
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := generators.UniformCube(10, 2, uint64(c)*13+1)
			for i := 0; i < probes.Len(); i++ {
				q := probes.At(i)
				k := 1 + (c+i)%7 // mixed k across the group
				got := e.KNN(q, k)
				wantD := oracle.KNNDists(pts, q, k, -1)
				if len(got) != len(wantD) {
					errs <- "knn result length"
					return
				}
				for j, id := range got {
					if geom.SqDist(q, idOf[id]) != wantD[j] {
						errs <- "knn distance mismatch"
						return
					}
				}
				box := geom.Box{Min: []float64{q[0] - 5, q[1] - 5}, Max: []float64{q[0] + 5, q[1] + 5}}
				if e.RangeCount(box) != oracle.RangeCount(pts, box) {
					errs <- "range count mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestWriteCoalescing: concurrent writers commit correctly and every id
// lands exactly once.
func TestWriteCoalescing(t *testing.T) {
	e := New(2, Options{BufferSize: 128})
	const writers = 16
	var wg sync.WaitGroup
	idsCh := make(chan []int32, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := generators.UniformCube(150, 2, uint64(w)+100)
			res := e.Insert(batch)
			if len(res.IDs) != 150 {
				idsCh <- nil
				return
			}
			idsCh <- res.IDs
		}()
	}
	wg.Wait()
	close(idsCh)
	seen := make(map[int32]bool)
	for ids := range idsCh {
		if ids == nil {
			t.Fatal("writer got wrong id count")
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	if e.Size() != writers*150 {
		t.Fatalf("size %d after %d inserts", e.Size(), writers*150)
	}
	universe := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	if got := e.RangeCount(universe); got != writers*150 {
		t.Fatalf("count %d", got)
	}
}
