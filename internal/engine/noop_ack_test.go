package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/internal/geom"
	"pargeo/internal/wal"
)

// TestNoopAckDurableUnderLoad is the no-op-commit-under-load regression
// cell: while writers keep publishing epochs, concurrent no-op deletes
// (coordinates that never existed) must only ever report epochs that are
// covered by the durable prefix. The old code read the live epoch with no
// lock and waited on LSN 0, so in relaxed mode a no-op could vouch for a
// concurrently published, not-yet-fsynced epoch; crashing without a clean
// Close then recovered an epoch BELOW one the engine had acknowledged.
func TestNoopAckDurableUnderLoad(t *testing.T) {
	for _, syncEvery := range []int{1, 64} {
		t.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(t *testing.T) {
			fs := wal.NewMemFS()
			opts := durOpts(fs, 4, func(d *Durability) {
				d.SyncEvery = syncEvery
				// Tiny segments force rotations (each an fsync), so in
				// relaxed mode the durable prefix advances mid-run and the
				// reported no-op epochs are non-trivial.
				d.SegmentSize = 512
			})
			e, err := Open(2, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Founding insert establishes the partition.
			seed := geom.NewPoints(32, 2)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < seed.Len(); i++ {
				seed.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
			}
			if res := e.Insert(seed); res.Err != nil {
				t.Fatal(res.Err)
			}

			const writers, deleters, perG = 3, 3, 150
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w) + 100))
					for !stop.Load() {
						p := geom.Points{Data: []float64{r.Float64() * 100, r.Float64() * 100}, Dim: 2}
						if res := e.Insert(p); res.Err != nil {
							t.Errorf("writer %d: %v", w, res.Err)
							return
						}
					}
				}()
			}
			reported := make([]uint64, deleters)
			var dwg sync.WaitGroup
			for d := 0; d < deleters; d++ {
				d := d
				dwg.Add(1)
				go func() {
					defer dwg.Done()
					for i := 0; i < perG; i++ {
						// Far outside every inserted coordinate: matches
						// nothing, so the commit publishes nothing.
						p := geom.Points{Data: []float64{1e6 + float64(d), 1e6 + float64(i)}, Dim: 2}
						res := e.Delete(p)
						if res.Err != nil {
							t.Errorf("deleter %d: %v", d, res.Err)
							return
						}
						if res.Deleted != 0 || len(res.IDs) != 0 {
							t.Errorf("deleter %d: no-op delete reported IDs=%v Deleted=%d", d, res.IDs, res.Deleted)
							return
						}
						if res.Epoch > reported[d] {
							reported[d] = res.Epoch
						}
					}
				}()
			}
			dwg.Wait()
			stop.Store(true)
			wg.Wait()
			if t.Failed() {
				e.Close()
				return
			}

			// Crash WITHOUT a clean Close: the reboot image keeps only what
			// fsync covered. Every epoch a no-op acknowledged must still be
			// reached by recovery.
			img := fs.CrashImage(true)
			e.Close()
			re, err := Open(2, durOpts(img, 4, func(d *Durability) {
				d.SyncEvery = syncEvery
				d.SegmentSize = 512
			}))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer re.Close()
			var maxReported uint64
			for _, ep := range reported {
				if ep > maxReported {
					maxReported = ep
				}
			}
			if got := re.Epoch(); got < maxReported {
				t.Fatalf("recovered epoch %d below no-op-acknowledged epoch %d: ack vouched for a non-durable epoch", got, maxReported)
			}
		})
	}
}

// TestCheckpointAfterCloseRejected: a checkpoint submitted after Close
// must be refused with ErrClosed and must not touch the directory — the
// old code would happily write checkpoint files and prune WAL segments
// under a directory a successor process may already be recovering from.
func TestCheckpointAfterCloseRejected(t *testing.T) {
	fs := wal.NewMemFS()
	e, err := Open(2, durOpts(fs, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Insert(geom.Points{Data: []float64{1, 2, 3, 4}, Dim: 2}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != ErrClosed {
		t.Fatalf("Checkpoint after Close: err = %v, want ErrClosed", err)
	}
	after, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("Checkpoint after Close modified the directory: %v -> %v", before, after)
	}
	re, err := Open(2, durOpts(fs, 2, nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	re.Close()
}

// TestCloseRacesCheckpointTrigger hammers Close against the automatic
// background checkpoint trigger (CheckpointEvery=1: every commit arms
// one) and concurrent explicit Checkpoint calls. Every Checkpoint must
// return nil or ErrClosed (never a write-on-closed-log error), nothing
// acknowledged may be lost, and the engine's goroutines must unwind.
func TestCloseRacesCheckpointTrigger(t *testing.T) {
	func() { // warm global pools so the leak baseline is clean
		fs := wal.NewMemFS()
		e, _ := Open(2, durOpts(fs, 4, nil))
		e.Insert(geom.Points{Data: []float64{1, 1}, Dim: 2})
		e.Close()
	}()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		fs := wal.NewMemFS()
		opts := durOpts(fs, 4, func(d *Durability) {
			d.CheckpointEvery = 1
			d.SegmentSize = 256
		})
		e, err := Open(2, opts)
		if err != nil {
			t.Fatal(err)
		}
		var acked atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*10 + w)))
				for {
					p := geom.Points{Data: []float64{r.Float64() * 100, r.Float64() * 100}, Dim: 2}
					res := e.Insert(p)
					if res.Err != nil {
						if res.Err != ErrClosed {
							t.Errorf("round %d writer %d: %v", round, w, res.Err)
						}
						return
					}
					acked.Add(1)
				}
			}()
		}
		wg.Add(1)
		go func() { // explicit checkpoints racing the background trigger and Close
			defer wg.Done()
			for {
				err := e.Checkpoint()
				if err == ErrClosed {
					return
				}
				if err != nil {
					t.Errorf("round %d: concurrent Checkpoint: %v", round, err)
					return
				}
			}
		}()
		for deadline := time.Now().Add(5 * time.Second); acked.Load() < 20; {
			if time.Now().After(deadline) {
				t.Fatal("writers made no progress")
			}
			time.Sleep(time.Millisecond)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		wg.Wait()
		if err := e.Checkpoint(); err != ErrClosed {
			t.Fatalf("round %d: Checkpoint after Close: %v", round, err)
		}
		re, err := Open(2, durOpts(fs, 4, nil))
		if err != nil {
			t.Fatalf("round %d: reopen after close/checkpoint race: %v", round, err)
		}
		if got := int64(re.Size()); got != acked.Load() {
			t.Fatalf("round %d: recovered %d points, acked %d", round, got, acked.Load())
		}
		re.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutine leak: %d after close, baseline %d", g, baseline)
	}
}
