package engine

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/oracle"
)

// TestSnapshotAllKNNPadding: the sharded batch k-NN must honor the
// single-tree row contract exactly — rows sorted by distance, padded with
// -1 ids and +Inf squared distances when k exceeds the live population —
// including when k exceeds every shard, when shards are empty, and on an
// entirely empty engine. Differential against the brute-force oracle.
func TestSnapshotAllKNNPadding(t *testing.T) {
	const dim = 2
	// Identical founding points leave S-1 shards empty; the spread batch
	// then populates some shards while others stay empty.
	e := New(dim, Options{BufferSize: 16, Shards: 4})
	m := &oracle.LiveSet{Dim: dim}
	same := geom.NewPoints(40, dim)
	for i := 0; i < 40; i++ {
		same.Set(i, []float64{7, 7})
	}
	res := e.Insert(same)
	m.Insert(res.IDs, same)
	spread := generators.UniformCube(80, dim, 41)
	res = e.Insert(spread)
	m.Insert(res.IDs, spread)
	empty := 0
	for _, n := range e.Snapshot().ShardSizes() {
		if n == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("test premise: at least one empty shard")
	}

	snap := e.Snapshot()
	pts := m.Points()
	n := snap.Size()
	queries := generators.UniformCube(12, dim, 43)
	for _, k := range []int{1, 5, n, n + 1, 3 * n} {
		dists := make([]float64, queries.Len()*k)
		ids := snap.AllKNN(queries, k, dists)
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.At(qi)
			row := ids[qi*k : (qi+1)*k]
			drow := dists[qi*k : (qi+1)*k]
			wantD := oracle.KNNDists(pts, q, k, -1)
			for j := 0; j < k; j++ {
				if j < len(wantD) {
					if row[j] < 0 {
						t.Fatalf("k=%d q=%d: row[%d] padded early (want %d real results)", k, qi, j, len(wantD))
					}
					if got := geom.SqDist(q, m.CoordsOf(row[j])); got != wantD[j] {
						t.Fatalf("k=%d q=%d: dist[%d]=%v, oracle %v", k, qi, j, got, wantD[j])
					}
					if drow[j] != wantD[j] {
						t.Fatalf("k=%d q=%d: sqDists[%d]=%v, oracle %v", k, qi, j, drow[j], wantD[j])
					}
				} else {
					if row[j] != -1 {
						t.Fatalf("k=%d q=%d: pad id row[%d]=%d, want -1", k, qi, j, row[j])
					}
					if !math.IsInf(drow[j], 1) {
						t.Fatalf("k=%d q=%d: pad dist row[%d]=%v, want +Inf", k, qi, j, drow[j])
					}
				}
			}
		}
	}

	// Entirely empty engine: every row fully padded.
	e2 := New(dim, Options{Shards: 4})
	ids := e2.Snapshot().AllKNN(queries, 3, nil)
	for i, id := range ids {
		if id != -1 {
			t.Fatalf("empty engine: ids[%d]=%d, want -1", i, id)
		}
	}
}

// TestSnapshotKNNInto: the exported shared-buffer fan-out must match the
// oracle (with and without an excluded id), so callers can thread one
// buffer across snapshots exactly as across bdltree shard trees.
func TestSnapshotKNNInto(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 32, Shards: 4})
	m := &oracle.LiveSet{Dim: dim}
	pts := generators.UniformCube(300, dim, 47)
	res := e.Insert(pts)
	m.Insert(res.IDs, pts)

	snap := e.Snapshot()
	all := m.Points()
	probes := generators.UniformCube(10, dim, 48)
	buf := kdtree.NewKNNBuffer(6)
	for i := 0; i < probes.Len(); i++ {
		q := probes.At(i)
		buf.Reset()
		snap.KNNInto(q, -1, buf)
		got := buf.Result(nil)
		wantD := oracle.KNNDists(all, q, 6, -1)
		if len(got) != len(wantD) {
			t.Fatalf("probe %d: %d results, want %d", i, len(got), len(wantD))
		}
		for j, id := range got {
			if geom.SqDist(q, m.CoordsOf(id)) != wantD[j] {
				t.Fatalf("probe %d: dist[%d] mismatch", i, j)
			}
		}
		// Excluding the nearest id must reproduce the oracle minus it.
		ex := got[0]
		buf.Reset()
		snap.KNNInto(q, ex, buf)
		got2 := buf.Result(nil)
		for _, id := range got2 {
			if id == ex {
				t.Fatalf("probe %d: excluded id %d returned", i, ex)
			}
		}
		if geom.SqDist(q, m.CoordsOf(got2[0])) != wantD[1] {
			t.Fatalf("probe %d: exclusion shifted distances wrongly", i)
		}
	}
}
