package engine

import (
	"sync"
	"sync/atomic"

	"pargeo/internal/bdltree"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// Options configure an Engine.
type Options struct {
	// Split selects the kd-tree splitting rule for all tree versions.
	Split bdltree.SplitRule
	// BufferSize is the BDL buffer-tree capacity X (0 = bdltree default).
	BufferSize int
}

// Snapshot is one immutable committed version of the point set: a frozen
// BDL-tree plus the epoch at which it was published. All methods are safe
// for concurrent use and always answer from this version, regardless of
// later commits.
type Snapshot struct {
	tree  *bdltree.Tree
	epoch uint64
}

// Epoch returns the snapshot's commit epoch (0 for the empty initial
// version).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Size returns the number of live points in the snapshot.
func (s *Snapshot) Size() int { return s.tree.Size() }

// KNN returns, for each query row, the global ids of its k nearest points,
// data-parallel over the queries.
func (s *Snapshot) KNN(queries geom.Points, k int) [][]int32 {
	return s.tree.KNN(queries, k, nil)
}

// RangeSearch returns the global ids of all points inside the closed box.
func (s *Snapshot) RangeSearch(box geom.Box) []int32 {
	return s.tree.RangeSearch(box)
}

// RangeCount returns the number of points inside the closed box.
func (s *Snapshot) RangeCount(box geom.Box) int {
	return s.tree.RangeCount(box)
}

// Points returns the coordinates and global ids of the snapshot's live
// points (a verification helper for differential tests; O(n)).
func (s *Snapshot) Points() (geom.Points, []int32) {
	return s.tree.Points()
}

// UpdateResult reports a committed update.
type UpdateResult struct {
	// IDs are the global ids assigned to this request's inserted points,
	// in batch order.
	IDs []int32
	// Deleted is the number of live points removed by this request's
	// deletion batch. Within a commit group, deletion batches apply in
	// arrival order (all before any insertion), so a point matched by two
	// coalesced requests is counted against the earlier one.
	Deleted int
	// Epoch is the epoch of the snapshot that made this update visible.
	Epoch uint64
}

type updateReq struct {
	ins, del geom.Points
	res      UpdateResult
	done     chan struct{}
	lead     chan struct{} // baton: receiver becomes the next committer
}

const (
	qKNN = iota
	qRange
	qCount
)

type queryReq struct {
	kind  int
	q     []float64 // qKNN
	k     int       // qKNN
	box   geom.Box  // qRange, qCount
	ids   []int32   // result: qKNN, qRange
	count int       // result: qCount
	done  chan struct{}
	lead  chan struct{} // baton: receiver becomes the next group leader
}

// Engine is a concurrent spatial query service over the BDL-tree. See the
// package documentation for the snapshot/epoch protocol. All methods are
// safe for concurrent use by any number of goroutines.
type Engine struct {
	dim  int
	opts Options
	snap atomic.Pointer[Snapshot]

	// Write path: pending update requests and the committer baton.
	wmu      sync.Mutex
	wpending []*updateReq
	wactive  bool

	// Read path: pending query requests and the group-leader baton.
	qmu      sync.Mutex
	qpending []*queryReq
	qactive  bool

	// knnPools holds one KNNBuffer pool per requested k, so grouped k-NN
	// passes reuse buffers across queries and across groups instead of
	// allocating per query-group member.
	knnPools sync.Map // int (k) -> *kdtree.BufferPool
}

// knnPool returns the engine's shared buffer pool for k-neighbor queries.
func (e *Engine) knnPool(k int) *kdtree.BufferPool {
	if v, ok := e.knnPools.Load(k); ok {
		return v.(*kdtree.BufferPool)
	}
	v, _ := e.knnPools.LoadOrStore(k, kdtree.NewBufferPool(k))
	return v.(*kdtree.BufferPool)
}

// New returns an engine serving dim-dimensional points, publishing an empty
// epoch-0 snapshot.
func New(dim int, opts Options) *Engine {
	e := &Engine{dim: dim, opts: opts}
	e.snap.Store(&Snapshot{tree: bdltree.New(dim, bdltree.Options{
		Split:      opts.Split,
		BufferSize: opts.BufferSize,
	})})
	return e
}

// Snapshot returns the latest committed version. The handle stays valid —
// and keeps answering from its version — for as long as the caller holds
// it.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Size returns the live point count of the latest committed snapshot.
func (e *Engine) Size() int { return e.Snapshot().Size() }

// Epoch returns the latest committed epoch.
func (e *Engine) Epoch() uint64 { return e.Snapshot().Epoch() }

// --- write path ---------------------------------------------------------

// Update atomically applies a deletion batch and an insertion batch
// (deletions first) and blocks until the snapshot containing them is
// published. Either batch may be empty. Concurrent updates coalesce: all
// requests pending when a commit starts are applied together — insertions
// as one combined BDL-tree batch — and published as a single new snapshot.
func (e *Engine) Update(insert, del geom.Points) UpdateResult {
	if insert.Len() > 0 && insert.Dim != e.dim {
		panic("engine: insert batch dimension mismatch")
	}
	if del.Len() > 0 && del.Dim != e.dim {
		panic("engine: delete batch dimension mismatch")
	}
	req := &updateReq{ins: insert, del: del, done: make(chan struct{}), lead: make(chan struct{})}
	e.wmu.Lock()
	e.wpending = append(e.wpending, req)
	if e.wactive {
		e.wmu.Unlock()
		// Wait to be answered — or to inherit the committer baton from a
		// leader bounding its own time in office.
		select {
		case <-req.done:
			return req.res
		case <-req.lead:
		}
	} else {
		e.wactive = true
		e.wmu.Unlock()
	}
	// Committer: commit the pending group (which contains this request),
	// then either clear the baton or hand it to a still-pending waiter.
	// One group per leader bounds every caller's latency to one commit
	// beyond its own, however sustained the write load.
	e.wmu.Lock()
	group := e.wpending
	e.wpending = nil
	e.wmu.Unlock()
	e.commitGroup(group)
	e.wmu.Lock()
	if len(e.wpending) == 0 {
		e.wactive = false
	} else {
		close(e.wpending[0].lead)
	}
	e.wmu.Unlock()
	return req.res
}

// Insert commits a batch of new points and returns their assigned ids.
func (e *Engine) Insert(batch geom.Points) UpdateResult {
	return e.Update(batch, geom.Points{Dim: e.dim})
}

// Delete commits the removal of every live point whose coordinates match a
// batch point.
func (e *Engine) Delete(batch geom.Points) UpdateResult {
	return e.Update(geom.Points{Dim: e.dim}, batch)
}

// commitGroup derives the next tree version from the published snapshot
// copy-on-write, publishes it with one atomic store, and releases the
// waiters. Runs with the committer baton held (no concurrent commit).
func (e *Engine) commitGroup(group []*updateReq) {
	old := e.snap.Load()
	tree := old.tree

	// Deletions apply per request, in arrival order, so each result can
	// report its own removal count (a combined batch could not attribute
	// points matched by several requests). Chaining persistent deletes
	// keeps one commit: only the final version is published.
	perDeleted := make([]int, len(group))
	for i, r := range group {
		if r.del.Len() > 0 {
			tree, perDeleted[i] = tree.PersistentDelete(r.del)
		}
	}

	var insData []float64
	rows := make([]int, len(group)+1) // request i inserted rows [rows[i], rows[i+1])
	for i, r := range group {
		rows[i] = len(insData) / e.dim
		insData = append(insData, r.ins.Data...)
	}
	rows[len(group)] = len(insData) / e.dim
	var ids []int32
	if len(insData) > 0 {
		tree, ids = tree.PersistentInsert(geom.Points{Data: insData, Dim: e.dim})
	}

	epoch := old.epoch
	if tree != old.tree {
		epoch++
		e.snap.Store(&Snapshot{tree: tree, epoch: epoch})
	}
	for i, r := range group {
		r.res = UpdateResult{Deleted: perDeleted[i], Epoch: epoch}
		if lo, hi := rows[i], rows[i+1]; hi > lo {
			r.res.IDs = ids[lo:hi:hi]
		}
		close(r.done)
	}
}

// --- read path ----------------------------------------------------------

// KNN returns the global ids of the k nearest points to q (sorted by
// increasing distance; fewer than k when the set is smaller). Concurrent
// calls are grouped and answered as one data-parallel pass against a
// single snapshot.
func (e *Engine) KNN(q []float64, k int) []int32 {
	if len(q) != e.dim {
		panic("engine: query dimension mismatch")
	}
	req := &queryReq{kind: qKNN, q: q, k: k, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	return req.ids
}

// RangeSearch returns the global ids of all points inside the closed box.
func (e *Engine) RangeSearch(box geom.Box) []int32 {
	req := &queryReq{kind: qRange, box: box, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	return req.ids
}

// RangeCount returns the number of points inside the closed box.
func (e *Engine) RangeCount(box geom.Box) int {
	req := &queryReq{kind: qCount, box: box, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	return req.count
}

// submitQuery enqueues the request and either waits for a group leader to
// answer it or becomes the leader for one group. A leader that finds more
// queries pending after its group hands the baton to one of them instead
// of draining the queue itself, bounding every caller's latency to one
// group beyond its own under sustained load.
func (e *Engine) submitQuery(req *queryReq) {
	e.qmu.Lock()
	e.qpending = append(e.qpending, req)
	if e.qactive {
		e.qmu.Unlock()
		select {
		case <-req.done:
			return
		case <-req.lead:
		}
	} else {
		e.qactive = true
		e.qmu.Unlock()
	}
	e.qmu.Lock()
	group := e.qpending
	e.qpending = nil
	e.qmu.Unlock()
	e.runGroup(group)
	e.qmu.Lock()
	if len(e.qpending) == 0 {
		e.qactive = false
	} else {
		close(e.qpending[0].lead)
	}
	e.qmu.Unlock()
}

// runGroup answers one query group against a single snapshot load. k-NN
// requests sharing a k merge into one multi-query KNN pass; every pass and
// every range query of the group fans out through one parlay batch
// submission.
func (e *Engine) runGroup(group []*queryReq) {
	snap := e.snap.Load()
	// Solo fast path: an uncontended query (the common case at low
	// concurrency) skips the grouping machinery and answers directly.
	if len(group) == 1 {
		r := group[0]
		switch r.kind {
		case qKNN:
			r.ids = snap.tree.KNNPooled(geom.Points{Data: r.q, Dim: e.dim}, r.k, nil, e.knnPool(r.k))[0]
		case qRange:
			r.ids = snap.tree.RangeSearch(r.box)
		case qCount:
			r.count = snap.tree.RangeCount(r.box)
		}
		close(r.done)
		return
	}
	var thunks []func()
	byK := make(map[int][]*queryReq)
	for _, r := range group {
		switch r.kind {
		case qKNN:
			byK[r.k] = append(byK[r.k], r)
		case qRange:
			r := r
			thunks = append(thunks, func() { r.ids = snap.tree.RangeSearch(r.box) })
		case qCount:
			r := r
			thunks = append(thunks, func() { r.count = snap.tree.RangeCount(r.box) })
		}
	}
	for k, reqs := range byK {
		k, reqs := k, reqs
		batch := geom.NewPoints(len(reqs), e.dim)
		for i, r := range reqs {
			batch.Set(i, r.q)
		}
		thunks = append(thunks, func() {
			res := snap.tree.KNNPooled(batch, k, nil, e.knnPool(k))
			for i, r := range reqs {
				r.ids = res[i]
			}
		})
	}
	parlay.Submit(thunks).Wait()
	for _, r := range group {
		close(r.done)
	}
}
