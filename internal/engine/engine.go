package engine

import (
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pargeo/internal/bdltree"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/parlay"
	"pargeo/internal/wal"
)

// AutoShards, passed as Options.Shards, selects one shard per GOMAXPROCS
// worker at engine creation.
const AutoShards = -1

// DefaultShardSampleSize bounds how many points of the partition-defining
// commit are sampled to place shard boundaries.
const DefaultShardSampleSize = 4096

// Options configure an Engine.
type Options struct {
	// Split selects the kd-tree splitting rule for all tree versions.
	Split bdltree.SplitRule
	// BufferSize is the BDL buffer-tree capacity X (0 = bdltree default).
	BufferSize int
	// Shards is the number of Morton-range shards S: independent BDL-trees
	// whose disjoint updates commit in parallel. 0 or 1 runs unsharded
	// (one tree, one committer); AutoShards picks GOMAXPROCS. Boundaries
	// are sampled from the first committed insertion; with Rebalance set
	// they then track the live load online.
	Shards int
	// ShardSampleSize caps the boundary-placement sample (0 = default).
	ShardSampleSize int
	// Rebalance starts the background rebalancer on a sharded engine: a
	// goroutine that watches per-shard load (live size + committed-batch
	// EWMA + a recent-write sample), splits a hot shard's Morton range at
	// the weighted median code of its recent writes (merging the two
	// coldest adjacent shards to keep S constant), and — when enough
	// inserted rows land outside the partition's world box — rebuilds the
	// whole partition under a widened world so drifting workloads stop
	// aliasing into boundary cells. Call Close to stop it.
	// Engine.Rebalance runs one pass synchronously whether or not the
	// background loop is enabled.
	Rebalance bool
	// RebalanceInterval is the background rebalancer's pass period
	// (0 = DefaultRebalanceInterval).
	RebalanceInterval time.Duration
	// RebalanceFactor is the hot-shard threshold: a shard is split when its
	// load exceeds RebalanceFactor times the shard average
	// (0 = DefaultRebalanceFactor).
	RebalanceFactor float64
	// MaxPending bounds each commit queue: when an update arrives while a
	// combiner already has MaxPending requests parked behind its current
	// commit, the update is shed immediately with ErrOverloaded instead of
	// queuing without bound. Zero (the default) leaves the queues
	// unbounded — the embedded-use contract, where callers ARE the bound.
	// A serving deployment should set it: under a sustained arrival rate
	// past saturation an unbounded queue converts overload into unbounded
	// memory growth and unbounded ack latency, while a bounded one
	// converts it into prompt, typed shedding. The bound is per combiner
	// (each shard's stream plus the global stream), so the engine-wide
	// queue is at most (Shards+1)×MaxPending requests.
	MaxPending int
	// RetainEpochs enables MVCC retention: the engine keeps the most
	// recent RetainEpochs published snapshots (the live one included)
	// resolvable through AsOf and PinEpoch, forming a sliding time-travel
	// window over the commit history. Persistent BDL-tree versions share
	// untouched structure, so a retained epoch costs only the trees its
	// commit rebuilt; Stats().RetainedBytes reports the marginal memory.
	// 0 or 1 disables the window (only the live epoch resolves). Pin and
	// Snapshot.Release work regardless of this setting — a pinned epoch
	// stays resolvable however small the window is. Retention is
	// in-memory only: a reopened engine starts with just the recovered
	// epoch retained.
	RetainEpochs int
	// Durability, when non-nil, makes the engine durable: committed
	// batches are written ahead to a segmented, CRC-framed log and
	// checkpoints capture the full state, so Open recovers everything
	// acknowledged before a crash. See the Durability type and the
	// package documentation's durability section. Construct durable
	// engines with Open (New panics on a recovery error).
	Durability *Durability
}

// Rebalancer defaults (Options.RebalanceInterval / RebalanceFactor).
const (
	DefaultRebalanceInterval = 25 * time.Millisecond
	DefaultRebalanceFactor   = 2.0
)

// UpdateResult reports a committed update.
type UpdateResult struct {
	// IDs are the global ids assigned to this request's inserted points,
	// in batch order. Ids are engine-global: unique across all shards.
	IDs []int32
	// Deleted is the number of live points removed by this request's
	// deletion batch. Within a commit group, deletion batches apply in
	// arrival order (all before any insertion), so a point matched by two
	// coalesced requests is counted against the earlier one.
	Deleted int
	// Epoch is the epoch of the snapshot that made this update visible.
	Epoch uint64
	// Err is non-nil when the update was not durably committed: ErrClosed
	// for updates submitted after Close on a durable engine, or the WAL's
	// sticky write/sync error. When the failed step was the WAL append,
	// the update was not applied at all; when it was the post-publish
	// fsync wait, the update is visible in memory but its durability is
	// unknown (the engine is fail-stopped either way). Always nil on a
	// non-durable engine.
	Err error
}

type updateReq struct {
	ins    geom.Points
	insIDs []int32 // global ids reserved for ins rows, in batch order
	del    geom.Points
	part   *partition // partition the request was routed under (nil pre-founding)
	res    UpdateResult
	done   chan struct{}
	lead   chan struct{} // baton: receiver becomes the next committer
}

// ErrOverloaded is returned (via UpdateResult.Err) for updates shed at a
// full commit queue on an engine with Options.MaxPending set. The update
// was not applied at all; the caller may retry after backing off. The
// server layer maps it to the wire's StatusOverloaded.
var ErrOverloaded = errors.New("engine: overloaded: commit queue full")

// combiner is one flat-combining queue: the first arrival becomes the
// leader, later arrivals park, and a leader serves exactly one drained
// group before handing the baton on.
type combiner struct {
	mu      sync.Mutex
	pending []*updateReq
	active  bool
}

// shard is one Morton-range shard's write machinery. comb coalesces the
// shard's single-shard updates; commitMu serializes version preparation
// for this shard between its own committer, multi-shard committers, and
// the rebalancer (which takes every shard's lock). load is the shard's
// committed-batch EWMA — recent update rows per commit — read atomically
// by the rebalancer's hot-shard scoring and rewritten by it when a
// migration remaps shard ranges. recent is a ring of recently committed
// row coordinates (written under commitMu, read by the rebalancer under
// every commitMu): the write-load sample whose median Morton code places
// a split boundary where the writes are, not where the points are. The
// ring stores float32 in dimension-major order (coordinate c of slot i at
// recent[c*recentRows+i], matching the kd-tree leaf slab layout): Morton
// quantization uses at most 21 bits per axis, far below float32
// precision, and the rebalancer only ever reads the ring column-wise
// through morton.EncodeCols.
type shard struct {
	comb      combiner
	commitMu  sync.Mutex
	load      atomic.Uint64 // float64 bits of the committed-rows EWMA
	recent    []float32     // dim-major ring of sampled committed rows
	recentReq []int32       // per-row tag: which update request the row came from
	reqSeq    int32         // request tag generator
	recentW   int           // ring write cursor, in rows
}

// loadAlpha is the committed-batch EWMA smoothing factor: each commit of r
// rows moves the shard's load a quarter of the way toward r.
const loadAlpha = 0.25

// Recent-write reservoir geometry: ring capacity and rows sampled per
// update request.
const (
	recentRows      = 256
	samplePerCommit = 8
)

// sampleRows records a spread sample of one update request's committed
// coordinates in the shard's recent-write ring, tagging every sampled row
// with the request it came from — the tags let the rebalancer judge
// whether a candidate split boundary would divide the write STREAM
// (requests fall wholly on one side: good, parallel streams) or merely cut
// through every request (bad: each update would turn multi-shard). Caller
// holds the shard's commit lock.
func (sh *shard) sampleRows(batch geom.Points, dim int) {
	n := batch.Len()
	if n == 0 {
		return
	}
	if sh.recent == nil {
		sh.recent = make([]float32, recentRows*dim)
		sh.recentReq = make([]int32, recentRows)
	}
	tag := sh.reqSeq
	sh.reqSeq++
	step := n / samplePerCommit
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		slot := sh.recentW % recentRows
		p := batch.At(i)
		for c := 0; c < dim; c++ {
			sh.recent[c*recentRows+slot] = float32(p[c])
		}
		sh.recentReq[slot] = tag
		sh.recentW++
	}
}

// recentCount returns how many sampled rows the ring currently holds.
func (sh *shard) recentCount() int {
	if sh.recentW < recentRows {
		return sh.recentW
	}
	return recentRows
}

// sampleGroup records a committed group's write sample: every request's
// insert batch, falling back to the first non-empty delete batch when the
// group inserted nothing. ins/del return request i's batch as routed to
// this shard. Caller holds the shard's commit lock.
func (sh *shard) sampleGroup(n, dim int, ins, del func(i int) geom.Points) {
	sampled := false
	for i := 0; i < n; i++ {
		if b := ins(i); b.Len() > 0 {
			sh.sampleRows(b, dim)
			sampled = true
		}
	}
	if sampled {
		return
	}
	for i := 0; i < n; i++ {
		if b := del(i); b.Len() > 0 {
			sh.sampleRows(b, dim)
			return
		}
	}
}

// noteCommit folds a committed group's row count into the shard's EWMA.
// CAS loop: commits update under the shard's commit lock, but the
// rebalancer decays loads without holding it.
func (sh *shard) noteCommit(rows int) {
	for {
		old := sh.load.Load()
		next := math.Float64bits(math.Float64frombits(old)*(1-loadAlpha) + float64(rows)*loadAlpha)
		if sh.load.CompareAndSwap(old, next) {
			return
		}
	}
}

// scaleLoad multiplies the shard's EWMA by f (rebalancer decay / remap).
func (sh *shard) scaleLoad(f float64) {
	for {
		old := sh.load.Load()
		next := math.Float64bits(math.Float64frombits(old) * f)
		if sh.load.CompareAndSwap(old, next) {
			return
		}
	}
}

// loadEWMA returns the shard's committed-batch EWMA.
func (sh *shard) loadEWMA() float64 { return math.Float64frombits(sh.load.Load()) }

const (
	qKNN = iota
	qRange
	qCount
)

type queryReq struct {
	kind  int
	q     []float64 // qKNN
	k     int       // qKNN
	box   geom.Box  // qRange, qCount
	ids   []int32   // result: qKNN, qRange
	count int       // result: qCount
	done  chan struct{}
	lead  chan struct{} // baton: receiver becomes the next group leader
}

// Engine is a concurrent spatial query service over Morton-sharded
// BDL-trees. See the package documentation for the snapshot/epoch protocol
// and the two-phase shard publish. All methods are safe for concurrent use
// by any number of goroutines.
type Engine struct {
	dim    int
	opts   Options
	nshard int

	snap   atomic.Pointer[Snapshot]
	part   atomic.Pointer[partition] // set by the founding commit, replaced by migrations
	nextID atomic.Int64              // engine-global id block reservation

	// Rebalancer bookkeeping: inserted rows committed outside the current
	// partition's world box since the last repartition (the drift signal),
	// completed migrations, backoff state for triggered-but-unactionable
	// passes, and the background loop's stop channel.
	outOfWorld atomic.Int64
	rebalanced atomic.Uint64
	noopStreak atomic.Int32
	skipPasses atomic.Int32
	stop       chan struct{}
	rebalDone  chan struct{}
	closeOnce  sync.Once

	// Durability plumbing (all zero on a non-durable engine): the WAL,
	// its backing VFS and directory, shutdown coordination (closed gate +
	// in-flight update drain), and the automatic checkpoint trigger.
	log       *wal.Log
	durFS     wal.VFS
	durDir    string
	dur       Durability
	closed    atomic.Bool
	closeMu   sync.RWMutex
	ckptMu    sync.Mutex
	ckptWG    sync.WaitGroup
	ckptBusy  atomic.Bool
	sinceCkpt atomic.Int64

	// publishMu guards the snapshot swap (phase two of every commit): an
	// O(S) vector copy plus one atomic store, so the serialized section of
	// a commit is tiny regardless of batch size.
	publishMu sync.Mutex

	// MVCC retention (see retain.go): the ring of the last RetainEpochs
	// published snapshots and the pin table for epochs held past the
	// ring's watermark. retainMu orders ring trims against AsOf/Pin
	// lookups; publish sites take it briefly after the snapshot swap
	// (lock order: publishMu, then retainMu — never the reverse).
	retainMu sync.Mutex
	retained []*Snapshot
	pins     map[uint64]*pinEntry

	shards []*shard
	global combiner // multi-shard and pre-partition updates

	// Read path: pending query requests and the group-leader baton.
	qmu      sync.Mutex
	qpending []*queryReq
	qactive  bool

	// knnPools holds one KNNBuffer pool per requested k, so grouped k-NN
	// passes reuse buffers across queries and across groups instead of
	// allocating per query-group member.
	knnPools sync.Map // int (k) -> *kdtree.BufferPool

	// Serving counters, exported through Stats. The group counters sit
	// beside the request counters so an observer can read the coalescing
	// ratio (requests per combined pass) straight off the numbers.
	statUpdates     atomic.Uint64 // update requests acknowledged without error
	statCommits     atomic.Uint64 // snapshot publishes (groups that changed state)
	statQueries     atomic.Uint64 // query requests answered
	statQueryGroups atomic.Uint64 // combined read passes run
	statShed        atomic.Uint64 // updates shed at a full commit queue (MaxPending)
}

// knnPool returns the engine's shared buffer pool for k-neighbor queries.
func (e *Engine) knnPool(k int) *kdtree.BufferPool {
	if v, ok := e.knnPools.Load(k); ok {
		return v.(*kdtree.BufferPool)
	}
	v, _ := e.knnPools.LoadOrStore(k, kdtree.NewBufferPool(k))
	return v.(*kdtree.BufferPool)
}

// New returns an engine serving dim-dimensional points, publishing an empty
// epoch-0 snapshot. With Options.Durability set it recovers durable state
// exactly like Open, but panics on a recovery error; use Open to handle
// recovery failures.
func New(dim int, opts Options) *Engine {
	e, err := Open(dim, opts)
	if err != nil {
		panic("engine: " + err.Error())
	}
	return e
}

// newEngine builds the in-memory engine shell: options normalized, shards
// allocated, empty epoch-0 snapshot published, no background rebalancer
// yet (Open starts it after any recovery).
func newEngine(dim int, opts Options) *Engine {
	ns := opts.Shards
	if ns == AutoShards {
		ns = runtime.GOMAXPROCS(0)
	}
	if ns < 1 {
		ns = 1
	}
	if opts.ShardSampleSize <= 0 {
		opts.ShardSampleSize = DefaultShardSampleSize
	}
	if opts.RebalanceInterval <= 0 {
		opts.RebalanceInterval = DefaultRebalanceInterval
	}
	if opts.RebalanceFactor <= 0 {
		opts.RebalanceFactor = DefaultRebalanceFactor
	}
	e := &Engine{dim: dim, opts: opts, nshard: ns}
	e.shards = make([]*shard, ns)
	for i := range e.shards {
		e.shards[i] = &shard{}
	}
	seed := &Snapshot{eng: e, trees: []*bdltree.Tree{e.newTree()}}
	e.snap.Store(seed)
	e.retain(seed)
	return e
}

// startRebalancer starts the background rebalance loop when configured.
func (e *Engine) startRebalancer() {
	if e.opts.Rebalance && e.nshard > 1 {
		e.stop = make(chan struct{})
		e.rebalDone = make(chan struct{})
		go func() {
			defer close(e.rebalDone)
			e.rebalanceLoop()
		}()
	}
}

// Close shuts the engine down. On a durable engine it rejects new
// updates (UpdateResult.Err = ErrClosed), waits for every in-flight
// update to commit and acknowledge, stops the rebalancer and any
// background checkpoint, and closes the WAL with a final fsync — so a
// clean shutdown leaves no torn tail and loses nothing acknowledged,
// even in relaxed SyncEvery>1 mode. Queries keep serving from the last
// snapshot. On a non-durable engine Close only stops the background
// rebalancer and the engine keeps accepting updates (the pre-durability
// contract). Safe to call multiple times; later calls return nil.
func (e *Engine) Close() error {
	var err error
	e.closeOnce.Do(func() {
		if e.log != nil {
			e.closed.Store(true)
			// Taking the close lock exclusively waits out every in-flight
			// update (each holds it shared across its whole commit).
			e.closeMu.Lock()
			e.closeMu.Unlock() //nolint:staticcheck // empty critical section is the drain
		}
		if e.stop != nil {
			close(e.stop)
			<-e.rebalDone
		}
		if e.log != nil {
			e.ckptWG.Wait()
			err = e.log.Close()
		}
	})
	return err
}

func (e *Engine) newTree() *bdltree.Tree {
	return bdltree.New(e.dim, bdltree.Options{Split: e.opts.Split, BufferSize: e.opts.BufferSize})
}

// Snapshot returns the latest committed version. The handle stays valid —
// and keeps answering from its version — for as long as the caller holds
// it.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Size returns the live point count of the latest committed snapshot.
func (e *Engine) Size() int { return e.Snapshot().Size() }

// Epoch returns the latest committed epoch.
func (e *Engine) Epoch() uint64 { return e.Snapshot().Epoch() }

// Shards returns the engine's configured shard count.
func (e *Engine) Shards() int { return e.nshard }

// --- write path ---------------------------------------------------------

// Update atomically applies a deletion batch and an insertion batch
// (deletions first) and blocks until the snapshot containing them is
// published. Either batch may be empty. Concurrent updates coalesce per
// routing target: updates confined to one shard combine with that shard's
// stream and commit independently of — and in parallel with — other
// shards' streams; updates spanning shards combine on a global stream and
// publish all their shard versions in one swap, so readers see a
// multi-shard batch all-or-nothing.
func (e *Engine) Update(insert, del geom.Points) UpdateResult {
	if insert.Len() > 0 && insert.Dim != e.dim {
		panic("engine: insert batch dimension mismatch")
	}
	if del.Len() > 0 && del.Dim != e.dim {
		panic("engine: delete batch dimension mismatch")
	}
	if e.log != nil {
		// The shared close lock is taken BEFORE the closed check and held
		// for the whole commit: Close sets closed and then takes the lock
		// exclusively, so an update that passed the check finishes (and
		// reaches the WAL) before the log closes, and one that didn't is
		// rejected before touching anything.
		e.closeMu.RLock()
		defer e.closeMu.RUnlock()
		if e.closed.Load() {
			return UpdateResult{Err: ErrClosed}
		}
	}
	req := &updateReq{ins: insert, del: del, done: make(chan struct{}), lead: make(chan struct{})}
	if n := insert.Len(); n > 0 {
		base := e.nextID.Add(int64(n)) - int64(n)
		if base+int64(n) > math.MaxInt32 {
			// The id space is int32 end to end (bdltree global ids); a
			// wrapped id would collide with live ids across shards, so
			// exhausting ~2.1e9 cumulative insertions fails loudly.
			panic("engine: global id space exhausted")
		}
		req.insIDs = make([]int32, n)
		for i := range req.insIDs {
			req.insIDs[i] = int32(base) + int32(i)
		}
	}
	part := e.part.Load()
	req.part = part
	if part != nil {
		if s, single := singleShard(part, insert, del); single {
			if !e.submitUpdate(&e.shards[s].comb, req, func(group []*updateReq) {
				e.commitShard(s, group)
			}) {
				return e.shedUpdate()
			}
			return e.noteUpdateDone(req.res)
		}
	}
	if !e.submitUpdate(&e.global, req, e.commitGlobal) {
		return e.shedUpdate()
	}
	return e.noteUpdateDone(req.res)
}

// shedUpdate rejects one update at a full commit queue. The reserved id
// block is discarded — ids are engine-global and never reused, so a gap
// is harmless — and nothing was routed, logged, or applied.
func (e *Engine) shedUpdate() UpdateResult {
	e.statShed.Add(1)
	return UpdateResult{Err: ErrOverloaded}
}

// noteUpdateDone counts an acknowledged update on its way out.
func (e *Engine) noteUpdateDone(res UpdateResult) UpdateResult {
	if res.Err == nil {
		e.statUpdates.Add(1)
	}
	return res
}

// Insert commits a batch of new points and returns their assigned ids.
func (e *Engine) Insert(batch geom.Points) UpdateResult {
	return e.Update(batch, geom.Points{Dim: e.dim})
}

// Delete commits the removal of every live point whose coordinates match a
// batch point.
func (e *Engine) Delete(batch geom.Points) UpdateResult {
	return e.Update(geom.Points{Dim: e.dim}, batch)
}

// singleShard reports whether every row of both batches routes to one
// shard, and which. An empty update trivially routes to shard 0.
func singleShard(p *partition, ins, del geom.Points) (int, bool) {
	s := -1
	for _, batch := range []geom.Points{ins, del} {
		for i, n := 0, batch.Len(); i < n; i++ {
			sh := p.shardOf(batch.At(i))
			if s == -1 {
				s = sh
			} else if sh != s {
				return -1, false
			}
		}
	}
	if s == -1 {
		s = 0
	}
	return s, true
}

// submitUpdate runs the flat-combining protocol on c: enqueue req, then
// either wait to be answered or — as the leader — drain one group, commit
// it, and pass the baton to a still-pending waiter. One group per leader
// bounds every caller's latency to one commit beyond its own, however
// sustained the write load.
//
// With Options.MaxPending set, the enqueue is an admission decision: a
// request that would be the (MaxPending+1)-th parked behind the running
// commit is refused (returns false) without blocking — the commit queue
// is bounded, so a sustained arrival rate past saturation turns into
// prompt shedding instead of unbounded queue growth. An arrival that
// would become the leader is always admitted: it starts a commit rather
// than lengthening a queue.
func (e *Engine) submitUpdate(c *combiner, req *updateReq, commit func([]*updateReq)) bool {
	c.mu.Lock()
	if max := e.opts.MaxPending; max > 0 && c.active && len(c.pending) >= max {
		c.mu.Unlock()
		return false
	}
	c.pending = append(c.pending, req)
	if c.active {
		c.mu.Unlock()
		select {
		case <-req.done:
			return true
		case <-req.lead:
		}
	} else {
		c.active = true
		c.mu.Unlock()
	}
	c.mu.Lock()
	group := c.pending
	c.pending = nil
	c.mu.Unlock()
	commit(group)
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.active = false
	} else {
		close(c.pending[0].lead)
	}
	c.mu.Unlock()
	return true
}

// noteDrift counts a group's inserted rows that fall outside part's world
// box — the rebalancer's repartition signal. Called with part pinned by a
// held shard commit lock, so the count can never race a concurrent
// repartition's counter reset (which runs under every shard lock): rows
// counted here are genuinely out of the CURRENT world.
func (e *Engine) noteDrift(part *partition, group []*updateReq) {
	if part == nil {
		return
	}
	out := 0
	for _, r := range group {
		for i, n := 0, r.ins.Len(); i < n; i++ {
			if !part.world.Contains(r.ins.At(i)) {
				out++
			}
		}
	}
	if out > 0 {
		e.outOfWorld.Add(int64(out))
	}
}

// finish publishes each request's result and releases its waiter. A
// non-nil err (failed durability wait) still reports ids and epoch: the
// batch is visible in memory, but its durability is unknown.
func finish(group []*updateReq, perDeleted []int, epoch uint64, err error) {
	for i, r := range group {
		r.res = UpdateResult{IDs: r.insIDs, Deleted: perDeleted[i], Epoch: epoch, Err: err}
		close(r.done)
	}
}

// commitShard commits one shard-local group: phase one prepares the
// shard's next tree version copy-on-write under the shard's commit lock
// (other shards keep committing concurrently), phase two swaps the shard
// vector. Deletions apply per request in arrival order so each result
// reports its own removal count; insertions combine into one batch.
//
// A group member may have routed itself to shard s under a partition that a
// migration has since replaced — its rows might now belong to different
// shards (or to a different index of the same range). Holding the shard
// lock pins the current partition (the rebalancer swaps only while holding
// EVERY shard lock), so comparing each request's routing partition against
// the current one under the lock is a race-free staleness test; a stale
// group falls back to the multi-shard path, which re-routes every row under
// the current partition.
func (e *Engine) commitShard(s int, group []*updateReq) {
	sh := e.shards[s]
	sh.commitMu.Lock()
	cur := e.part.Load()
	for _, r := range group {
		if r.part != cur {
			sh.commitMu.Unlock()
			e.commitMulti(cur, group)
			return
		}
	}
	e.noteDrift(cur, group)
	old := e.snap.Load()
	tree := old.trees[s]
	perDeleted := make([]int, len(group))
	deleted := 0
	for i, r := range group {
		if r.del.Len() > 0 {
			tree, perDeleted[i] = tree.PersistentDelete(r.del)
			deleted += perDeleted[i]
		}
	}
	var insData []float64
	var insIDs []int32
	rows := 0
	for _, r := range group {
		insData = append(insData, r.ins.Data...)
		insIDs = append(insIDs, r.insIDs...)
		rows += r.ins.Len() + r.del.Len()
	}
	if len(insIDs) > 0 {
		tree = tree.PersistentInsertWithIDs(geom.Points{Data: insData, Dim: e.dim}, insIDs)
	}
	// Publish only when the live set actually changed: a deletion batch that
	// matched nothing (e.g. deletes against a still-empty engine) keeps the
	// current epoch and tree version instead of publishing a no-op clone.
	if len(insIDs) == 0 && deleted == 0 {
		sh.commitMu.Unlock()
		epoch, err := e.ackNoop()
		finish(group, perDeleted, epoch, err)
		return
	}
	epoch, lsn, err := e.publish(group, func(vec []*bdltree.Tree) { vec[s] = tree })
	if err != nil {
		sh.commitMu.Unlock()
		failGroup(group, err)
		return
	}
	sh.noteCommit(rows)
	sh.sampleGroup(len(group), e.dim,
		func(i int) geom.Points { return group[i].ins },
		func(i int) geom.Points { return group[i].del })
	sh.commitMu.Unlock()
	// The durability wait happens OUTSIDE the shard lock: other shards'
	// committers append and join the same group-commit fsync concurrently.
	finish(group, perDeleted, epoch, e.waitDurable(lsn))
}

// commitGlobal commits one group from the global stream: multi-shard
// updates, everything before the partition exists, and all updates of an
// unsharded engine.
func (e *Engine) commitGlobal(group []*updateReq) {
	part := e.part.Load()
	if part == nil {
		if e.nshard > 1 {
			for _, r := range group {
				if r.ins.Len() > 0 {
					e.commitFounding(group)
					return
				}
			}
		}
		// Unsharded engine, or a sharded one that has only ever seen
		// deletions (its single tree is still empty): the single-tree
		// commit is exactly the shard-0 commit.
		e.commitShard(0, group)
		return
	}
	e.commitMulti(part, group)
}

// commitFounding is the partition-defining commit of a sharded engine: the
// first committed insertion. It pools the group's insertions, samples their
// Morton codes to place the shard boundaries, sorts the pool into Morton
// order, cuts it into per-shard contiguous slices, builds all shard trees
// in parallel, and publishes partition and shard vector together. Deletion
// batches in the group apply before insertions, i.e. against the empty
// pre-partition tree: they remove nothing.
func (e *Engine) commitFounding(group []*updateReq) {
	var data []float64
	var ids []int32
	for _, r := range group {
		data = append(data, r.ins.Data...)
		ids = append(ids, r.insIDs...)
	}
	pool := geom.Points{Data: data, Dim: e.dim}
	part, trees := e.shardedBuild(geom.BoundingBoxAll(pool), pool, ids)

	// Publish snapshot and partition together; the partition pointer is
	// stored after (and under the same lock as) the S-wide snapshot, so
	// any writer that routes per-shard sees the S-wide vector. The WAL
	// record is appended before the swap, under the same lock, so the
	// durable epoch sequence matches the published one exactly.
	e.publishMu.Lock()
	cur := e.snap.Load()
	epoch := cur.epoch + 1
	var lsn uint64
	if e.log != nil {
		var err error
		lsn, err = e.appendCommit(epoch, group)
		if err != nil {
			e.publishMu.Unlock()
			failGroup(group, err)
			return
		}
	}
	next := &Snapshot{eng: e, part: part, trees: trees, epoch: epoch, size: pool.Len()}
	e.snap.Store(next)
	e.retain(next)
	e.part.Store(part)
	e.publishMu.Unlock()
	e.noteWALCommit()
	finish(group, make([]int, len(group)), epoch, e.waitDurable(lsn))
}

// shardedBuild is the shared bulk-construction step of the founding commit
// and of a full repartition: place S-1 boundaries at sampled quantiles of
// the pool's Morton codes under world, sort the pool into Morton order, cut
// it at the boundaries, and build every shard tree in parallel.
func (e *Engine) shardedBuild(world geom.Box, pool geom.Points, ids []int32) (*partition, []*bdltree.Tree) {
	codes := make([]uint64, pool.Len())
	parlay.For(pool.Len(), 512, func(i int) {
		codes[i] = morton.Encode(pool.At(i), world)
	})
	part := newPartition(e.dim, e.nshard, world, codes, e.opts.ShardSampleSize)

	idx := make([]int32, len(codes))
	for i := range idx {
		idx[i] = int32(i)
	}
	sortedCodes := append([]uint64(nil), codes...)
	parlay.SortPairs(sortedCodes, idx)
	sortedPts := pool.Gather(idx)
	sortedIDs := make([]int32, len(idx))
	for i, j := range idx {
		sortedIDs[i] = ids[j]
	}
	cut := make([]int, e.nshard+1)
	for s := 1; s < e.nshard; s++ {
		b := part.bounds[s-1]
		cut[s] = sort.Search(len(sortedCodes), func(i int) bool { return sortedCodes[i] > b })
	}
	cut[e.nshard] = len(sortedCodes)
	trees := make([]*bdltree.Tree, e.nshard)
	parlay.For(e.nshard, 1, func(s int) {
		trees[s] = bdltree.NewFromSorted(e.dim, bdltree.Options{
			Split:      e.opts.Split,
			BufferSize: e.opts.BufferSize,
		}, sortedPts.Slice(cut[s], cut[s+1]), sortedIDs[cut[s]:cut[s+1]])
	})
	return part, trees
}

// commitMulti commits one multi-shard group with the two-phase protocol:
//
//	phase 1 (parallel): under the affected shards' commit locks — taken in
//	  ascending shard order, so multi-shard committers cannot deadlock
//	  against each other, against single-shard committers, or against the
//	  rebalancer (which takes every lock, also ascending) — prepare every
//	  affected shard's next tree version copy-on-write, fanning the
//	  per-shard work out through the scheduler;
//	phase 2 (serialized, tiny): swap the shard-vector pointer once, making
//	  every shard's new version visible atomically.
//
// A reader therefore observes either none or all of a multi-shard batch.
//
// The routing produced from part is only valid while part is current. Once
// the affected locks are held, the check `e.part.Load() == part` decides:
// the rebalancer needs every shard lock to swap partitions, so if the
// pointer still matches under at least one held lock, no swap can complete
// before the locks are released. A mismatch means a migration won the race;
// the routing is discarded and recomputed under the new partition.
func (e *Engine) commitMulti(part *partition, group []*updateReq) {
	nG := len(group)
retry:
	for {
		S := part.shards()
		insBy := make([][]geom.Points, nG) // [request][shard]
		idsBy := make([][][]int32, nG)
		delBy := make([][]geom.Points, nG)
		touched := make([]bool, S)
		for i, r := range group {
			var aff []int
			insBy[i], idsBy[i], aff = part.splitByShard(r.ins, r.insIDs)
			for _, s := range aff {
				touched[s] = true
			}
			delBy[i], _, aff = part.splitByShard(r.del, nil)
			for _, s := range aff {
				touched[s] = true
			}
		}
		var affected []int
		for s := 0; s < S; s++ {
			if touched[s] {
				affected = append(affected, s)
			}
		}
		if len(affected) == 0 {
			// No shard lock is held here, so a concurrent publish can bump
			// the live epoch at any moment: the ack must report an epoch
			// covered by the durable prefix, not the raw snapshot read.
			epoch, err := e.ackNoop()
			finish(group, make([]int, nG), epoch, err)
			return
		}

		for _, s := range affected {
			e.shards[s].commitMu.Lock()
		}
		if cur := e.part.Load(); cur != part {
			// Raced a migration swap between routing and lock acquisition:
			// re-route the whole group under the new partition.
			for i := len(affected) - 1; i >= 0; i-- {
				e.shards[affected[i]].commitMu.Unlock()
			}
			part = cur
			continue retry
		}
		e.noteDrift(part, group)
		old := e.snap.Load()
		newTrees := make([]*bdltree.Tree, S) // nil = unchanged
		perDelShard := make([][]int, S)
		rowsShard := make([]int, S)
		thunks := make([]func(), len(affected))
		for t, s := range affected {
			s := s
			perDelShard[s] = make([]int, nG)
			thunks[t] = func() {
				tree := old.trees[s]
				deleted := 0
				for i := range group {
					if delBy[i][s].Len() > 0 {
						tree, perDelShard[s][i] = tree.PersistentDelete(delBy[i][s])
						deleted += perDelShard[s][i]
					}
					rowsShard[s] += insBy[i][s].Len() + delBy[i][s].Len()
				}
				var insData []float64
				var insIDs []int32
				for i := range group {
					insData = append(insData, insBy[i][s].Data...)
					insIDs = append(insIDs, idsBy[i][s]...)
				}
				if len(insIDs) > 0 {
					tree = tree.PersistentInsertWithIDs(geom.Points{Data: insData, Dim: e.dim}, insIDs)
				}
				if len(insIDs) > 0 || deleted > 0 {
					newTrees[s] = tree
					// One thunk per shard and the caller holds the shard's
					// commit lock until after Wait, so the ring write is
					// exclusive and ordered before the lock release.
					e.shards[s].sampleGroup(nG, e.dim,
						func(i int) geom.Points { return insBy[i][s] },
						func(i int) geom.Points { return delBy[i][s] })
				}
			}
		}
		parlay.Submit(thunks).Wait()

		var epoch, lsn uint64
		changed := false
		for _, s := range affected {
			if newTrees[s] != nil {
				changed = true
				break
			}
		}
		if changed {
			var err error
			epoch, lsn, err = e.publish(group, func(vec []*bdltree.Tree) {
				for _, s := range affected {
					if newTrees[s] != nil {
						vec[s] = newTrees[s]
					}
				}
			})
			if err != nil {
				for i := len(affected) - 1; i >= 0; i-- {
					e.shards[affected[i]].commitMu.Unlock()
				}
				failGroup(group, err)
				return
			}
			for _, s := range affected {
				if newTrees[s] != nil {
					e.shards[s].noteCommit(rowsShard[s])
				}
			}
		}
		for i := len(affected) - 1; i >= 0; i-- {
			e.shards[affected[i]].commitMu.Unlock()
		}
		perDeleted := make([]int, nG)
		for i := range group {
			for _, s := range affected {
				perDeleted[i] += perDelShard[s][i]
			}
		}
		if !changed {
			// Nothing published: ack like any other no-op commit, with a
			// durable-covered epoch rather than the raw live one.
			epoch, err := e.ackNoop()
			finish(group, perDeleted, epoch, err)
			return
		}
		finish(group, perDeleted, epoch, e.waitDurable(lsn))
		return
	}
}

// publish is phase two of a commit: replace the published shard vector's
// changed slots and bump the epoch, all under one short lock, with one
// atomic store. Callers prepared their tree versions beforehand and hold
// the commit locks of every slot they change, so concurrent publishes
// never clobber each other's slots.
//
// On a durable engine the group's WAL record is appended first, under
// the same lock — write-ahead: if the append fails, nothing is published
// (the error is returned and the in-memory state is untouched), and the
// durable epoch sequence always matches the published one. The returned
// lsn (0 when nothing was logged) feeds waitDurable AFTER the caller
// releases its shard locks, so fsync latency is paid outside every lock
// and concurrent commits share flushes.
func (e *Engine) publish(group []*updateReq, apply func(vec []*bdltree.Tree)) (uint64, uint64, error) {
	e.publishMu.Lock()
	cur := e.snap.Load()
	epoch := cur.epoch + 1
	var lsn uint64
	if e.log != nil {
		var err error
		lsn, err = e.appendCommit(epoch, group)
		if err != nil {
			e.publishMu.Unlock()
			return 0, 0, err
		}
	}
	vec := append([]*bdltree.Tree(nil), cur.trees...)
	apply(vec)
	size := 0
	for _, t := range vec {
		size += t.Size()
	}
	next := &Snapshot{eng: e, part: cur.part, trees: vec, epoch: epoch, size: size}
	e.snap.Store(next)
	e.retain(next)
	e.publishMu.Unlock()
	e.statCommits.Add(1)
	e.noteWALCommit()
	return epoch, lsn, nil
}

// --- read path ----------------------------------------------------------

// KNN returns the global ids of the k nearest points to q (sorted by
// increasing distance; fewer than k when the set is smaller). Concurrent
// calls are grouped and answered as one data-parallel pass against a
// single snapshot.
func (e *Engine) KNN(q []float64, k int) []int32 {
	if len(q) != e.dim {
		panic("engine: query dimension mismatch")
	}
	req := &queryReq{kind: qKNN, q: q, k: k, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	e.statQueries.Add(1)
	return req.ids
}

// RangeSearch returns the global ids of all points inside the closed box.
func (e *Engine) RangeSearch(box geom.Box) []int32 {
	req := &queryReq{kind: qRange, box: box, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	e.statQueries.Add(1)
	return req.ids
}

// RangeCount returns the number of points inside the closed box.
func (e *Engine) RangeCount(box geom.Box) int {
	req := &queryReq{kind: qCount, box: box, done: make(chan struct{}), lead: make(chan struct{})}
	e.submitQuery(req)
	e.statQueries.Add(1)
	return req.count
}

// submitQuery enqueues the request and either waits for a group leader to
// answer it or becomes the leader for one group. A leader that finds more
// queries pending after its group hands the baton to one of them instead
// of draining the queue itself, bounding every caller's latency to one
// group beyond its own under sustained load.
func (e *Engine) submitQuery(req *queryReq) {
	e.qmu.Lock()
	e.qpending = append(e.qpending, req)
	if e.qactive {
		e.qmu.Unlock()
		select {
		case <-req.done:
			return
		case <-req.lead:
		}
	} else {
		e.qactive = true
		e.qmu.Unlock()
	}
	e.qmu.Lock()
	group := e.qpending
	e.qpending = nil
	e.qmu.Unlock()
	e.runGroup(group)
	e.qmu.Lock()
	if len(e.qpending) == 0 {
		e.qactive = false
	} else {
		close(e.qpending[0].lead)
	}
	e.qmu.Unlock()
}

// runGroup answers one query group against a single snapshot load. k-NN
// requests sharing a k merge into one multi-query pass over the sharded
// snapshot; every pass and every range query of the group fans out through
// one parlay batch submission, and each fanned-out range query prunes and
// fans out again over the shards it overlaps.
func (e *Engine) runGroup(group []*queryReq) {
	e.statQueryGroups.Add(1)
	snap := e.snap.Load()
	// Solo fast path: an uncontended query (the common case at low
	// concurrency) skips the grouping machinery and answers directly.
	if len(group) == 1 {
		r := group[0]
		switch r.kind {
		case qKNN:
			r.ids = snap.knnPooled(geom.Points{Data: r.q, Dim: e.dim}, r.k, e.knnPool(r.k))[0]
		case qRange:
			r.ids = snap.RangeSearch(r.box)
		case qCount:
			r.count = snap.RangeCount(r.box)
		}
		close(r.done)
		return
	}
	var thunks []func()
	byK := make(map[int][]*queryReq)
	for _, r := range group {
		switch r.kind {
		case qKNN:
			byK[r.k] = append(byK[r.k], r)
		case qRange:
			r := r
			thunks = append(thunks, func() { r.ids = snap.RangeSearch(r.box) })
		case qCount:
			r := r
			thunks = append(thunks, func() { r.count = snap.RangeCount(r.box) })
		}
	}
	for k, reqs := range byK {
		k, reqs := k, reqs
		batch := geom.NewPoints(len(reqs), e.dim)
		for i, r := range reqs {
			batch.Set(i, r.q)
		}
		thunks = append(thunks, func() {
			res := snap.knnPooled(batch, k, e.knnPool(k))
			for i, r := range reqs {
				r.ids = res[i]
			}
		})
	}
	parlay.Submit(thunks).Wait()
	for _, r := range group {
		close(r.done)
	}
}
