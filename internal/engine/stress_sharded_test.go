package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// Cross-shard stress: writers commit batches that SPAN shards (thin
// y-bands crossing the x-median Morton boundary), so every insert and
// delete takes the two-phase multi-shard path. Readers continuously range-
// count each band; because a band's batch commits all-or-nothing across
// its shards, any observed count other than "static founding points" or
// "static + full batch" is a torn multi-shard commit. Run with -race.
//
// The long configuration (nightly CI) is enabled by PARGEO_STRESS=1 — it
// is too slow for the per-PR gate.

func shardedStress(t *testing.T, writers, readers, iters, foundingN, bandB int) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4})

	// Founding commit: uniform over [0,100]^2. Z-order quantiles of a
	// uniform square sit near the quadrant corners, so a thin y-band
	// spanning x in [0,100] crosses a shard boundary at x ~ 50.
	founding := generators.UniformCube(foundingN, dim, 1)
	e.Insert(founding)
	part := e.part.Load()
	if part == nil {
		t.Fatal("founding commit did not establish the partition")
	}

	// bandBatch returns band w's full deterministic batch: bandB points in
	// a thin y-band spanning the whole x-range.
	bandY := func(w int) float64 { return 10 + 80*float64(w)/float64(writers) }
	bandBatch := func(w int) geom.Points {
		pts := geom.NewPoints(bandB, dim)
		y := bandY(w)
		for j := 0; j < bandB; j++ {
			pts.Set(j, []float64{float64(j) * 100.0 / float64(bandB), y + float64(j%5)*0.001})
		}
		return pts
	}
	bandBox := func(w int) geom.Box {
		y := bandY(w)
		return geom.Box{Min: []float64{-1, y - 0.0005}, Max: []float64{101, y + 0.0055}}
	}

	// The test's premise is that bands span shards; verify, not assume.
	spanning := 0
	for w := 0; w < writers; w++ {
		if _, single := singleShard(part, bandBatch(w), geom.Points{Dim: dim}); !single {
			spanning++
		}
	}
	if spanning == 0 {
		t.Fatalf("no band spans a shard boundary; boundaries %v", part.bounds)
	}

	// Static founding population inside each band box, fixed for the run.
	static := make([]int, writers)
	for w := 0; w < writers; w++ {
		static[w] = e.RangeCount(bandBox(w))
	}

	var stop atomic.Bool
	var wwg, rwg sync.WaitGroup
	errs := make(chan string, writers+readers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
		stop.Store(true)
	}

	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			batch := bandBatch(w)
			for it := 0; it < iters && !stop.Load(); it++ {
				res := e.Insert(batch)
				if len(res.IDs) != bandB {
					fail("writer %d: insert returned %d ids", w, len(res.IDs))
					return
				}
				if got := e.RangeCount(bandBox(w)); got != static[w]+bandB {
					fail("writer %d: own band count %d after insert, want %d", w, got, static[w]+bandB)
					return
				}
				// The delete spans the same shards; its per-request count
				// must aggregate exactly across them.
				if del := e.Delete(batch); del.Deleted != bandB {
					fail("writer %d: deleted %d, want %d", w, del.Deleted, bandB)
					return
				}
				if got := e.RangeCount(bandBox(w)); got != static[w] {
					fail("writer %d: own band count %d after delete, want %d", w, got, static[w])
					return
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		r := r
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lastEpoch := uint64(0)
			rng := uint64(r)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				w := int(rng % uint64(writers))
				// All-or-nothing across shards: only the two legal counts
				// may ever be observed.
				if c := e.RangeCount(bandBox(w)); c != static[w] && c != static[w]+bandB {
					fail("reader %d: torn cross-shard commit: band %d count %d, want %d or %d",
						r, w, c, static[w], static[w]+bandB)
					return
				}
				snap := e.Snapshot()
				if snap.Epoch() < lastEpoch {
					fail("reader %d: epoch went backward %d -> %d", r, lastEpoch, snap.Epoch())
					return
				}
				lastEpoch = snap.Epoch()
				if got := snap.RangeCount(universeBox()); got != snap.Size() {
					fail("reader %d: snapshot universe count %d != size %d", r, got, snap.Size())
					return
				}
			}
		}()
	}

	wwg.Wait()
	stop.Store(true)
	rwg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if e.Size() != foundingN {
		t.Fatalf("final size %d, want %d", e.Size(), foundingN)
	}
}

func TestShardedCrossShardStress(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 10
	}
	shardedStress(t, 3, 5, iters, 2000, 150)
}

// TestShardedCrossShardStressLong is the nightly configuration: more
// writers and readers, a larger founding set and band batches, run under
// -race -count=3 by .github/workflows/stress.yml. Gated behind
// PARGEO_STRESS=1 because it is far too slow for per-PR CI.
func TestShardedCrossShardStressLong(t *testing.T) {
	if os.Getenv("PARGEO_STRESS") == "" {
		t.Skip("long stress: set PARGEO_STRESS=1 (nightly CI)")
	}
	shardedStress(t, 6, 10, 120, 20000, 500)
}
