package engine

import (
	"errors"
	"fmt"
)

// MVCC retention: time-travel reads over the engine's own version history.
//
// Every commit already produces an immutable Snapshot; retention simply
// stops discarding them on publish. The engine keeps the last
// Options.RetainEpochs published snapshots in a ring — persistent BDL-tree
// versions share all untouched structure, so a retained epoch costs only
// the marginal trees its commit rebuilt — plus a pin table for snapshots
// callers want to keep beyond the ring's watermark. AsOf answers "the
// point set as of epoch e" for any retained or pinned epoch; Pin/PinEpoch
// and Snapshot.Release bracket long-running analytics (AllKNN, KNNGraph,
// CoreDistances) that must keep one consistent version queryable while
// live writers keep committing past it.
//
// Invariants:
//
//   - The ring holds exactly the last min(RetainEpochs, published) epochs,
//     contiguous, ending at the live epoch. EVERY published epoch passes
//     through the ring — commit publishes, the founding commit, and
//     rebalancer migrations (whose durable form is a data-free KindNote
//     record) alike — so AsOf never has a gap inside the window.
//   - A pinned epoch stays queryable indefinitely, however far the live
//     epoch advances; releasing the last pin lets it fall out of AsOf the
//     moment it is also past the ring (there is no deferred sweep to wait
//     for — the ring trim at publish time IS the GC).
//   - Pins are in-memory state only. They do not survive Close/Open: a
//     recovered engine starts with an empty pin table and a ring seeded
//     with just the recovered epoch, because only the live point set is
//     durable (the WAL can rebuild any epoch's state, but the engine does
//     not retain historical versions across restarts).
//
// Memory: Stats().RetainedBytes estimates the heap bytes held ONLY by
// retention — static-tree structure reachable from retained or pinned
// snapshots but not from the live one, shared structure counted once.

// ErrEpochNotRetained is returned (wrapped, with detail) by AsOf and
// PinEpoch for an epoch outside the retention window: never published,
// newer than the latest commit, or already trimmed by the retention GC and
// not pinned.
var ErrEpochNotRetained = errors.New("engine: epoch not retained")

// pinEntry is one pinned epoch: the snapshot kept alive and its pin
// reference count (Pin/PinEpoch increment it, Snapshot.Release decrements).
type pinEntry struct {
	snap *Snapshot
	refs int
}

// retain records a freshly published snapshot in the retention ring and
// trims unpinned versions past the watermark — this trim is the whole
// retention GC. Called from every publish site (commit publish, founding
// commit, migration swap, recovery seed) under publishMu, so ring order is
// exactly epoch order and ring epochs are contiguous.
func (e *Engine) retain(next *Snapshot) {
	keep := e.opts.RetainEpochs
	if keep < 1 {
		keep = 1
	}
	e.retainMu.Lock()
	e.retained = append(e.retained, next)
	if excess := len(e.retained) - keep; excess > 0 {
		// Trimmed epochs that are pinned survive in the pin table (their
		// entries were created at Pin time and hold the snapshot); unpinned
		// ones become unreachable here. Shift in place rather than reslice
		// so the backing array cannot grow without bound.
		n := copy(e.retained, e.retained[excess:])
		clear(e.retained[n:])
		e.retained = e.retained[:n]
	}
	e.retainMu.Unlock()
}

// lookupRetained resolves a retained or pinned epoch. Caller holds
// retainMu.
func (e *Engine) lookupRetained(epoch uint64) (*Snapshot, error) {
	if n := len(e.retained); n > 0 {
		base := e.retained[0].epoch
		if epoch >= base && epoch-base < uint64(n) {
			return e.retained[epoch-base], nil
		}
	}
	if ent, ok := e.pins[epoch]; ok {
		return ent.snap, nil
	}
	window := uint64(0)
	if len(e.retained) > 0 {
		window = e.retained[0].epoch
	}
	return nil, fmt.Errorf("%w: epoch %d (retention window starts at epoch %d; see Options.RetainEpochs)",
		ErrEpochNotRetained, epoch, window)
}

// AsOf returns the snapshot published at exactly the given epoch: a
// time-travel read handle answering KNN/RangeSearch/RangeCount/AllKNN and
// the analytics jobs from the point set as it was at that commit. The
// epoch must be the live epoch, within the Options.RetainEpochs retention
// window, or pinned; anything else fails with ErrEpochNotRetained
// (errors.Is). The handle stays valid as long as the caller holds it, but
// only pinning keeps the epoch resolvable through AsOf for OTHER callers
// once it leaves the window.
func (e *Engine) AsOf(epoch uint64) (*Snapshot, error) {
	cur := e.snap.Load()
	if epoch == cur.epoch {
		return cur, nil
	}
	if epoch > cur.epoch {
		return nil, fmt.Errorf("%w: epoch %d is newer than the latest commit (epoch %d)",
			ErrEpochNotRetained, epoch, cur.epoch)
	}
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	return e.lookupRetained(epoch)
}

// Pin pins the latest committed snapshot and returns it: the snapshot's
// epoch stays resolvable through AsOf — and its versions stay out of the
// retention GC's reach — until a matching Snapshot.Release. Pin/Release
// pairs nest (an epoch is released when its last pin is); pinning is
// cheap, so bracketing every analytics job with Pin/defer Release is the
// intended idiom. Pins are in-memory only and do not survive Close/Open.
func (e *Engine) Pin() *Snapshot {
	s := e.snap.Load()
	e.retainMu.Lock()
	e.pinLocked(s)
	e.retainMu.Unlock()
	return s
}

// PinEpoch pins a retained (or already-pinned) epoch and returns its
// snapshot, failing with ErrEpochNotRetained exactly like AsOf. The
// resolve and the pin happen under one lock, so a concurrent publish
// cannot trim the epoch between them.
func (e *Engine) PinEpoch(epoch uint64) (*Snapshot, error) {
	if cur := e.snap.Load(); epoch > cur.epoch {
		return nil, fmt.Errorf("%w: epoch %d is newer than the latest commit (epoch %d)",
			ErrEpochNotRetained, epoch, cur.epoch)
	}
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	s, err := e.lookupRetained(epoch)
	if err != nil {
		return nil, err
	}
	e.pinLocked(s)
	return s, nil
}

// pinLocked increments the pin count of s's epoch. Caller holds retainMu.
func (e *Engine) pinLocked(s *Snapshot) {
	if e.pins == nil {
		e.pins = make(map[uint64]*pinEntry)
	}
	if ent, ok := e.pins[s.epoch]; ok {
		ent.refs++
		return
	}
	e.pins[s.epoch] = &pinEntry{snap: s, refs: 1}
}

// Release undoes one Pin or PinEpoch of this snapshot's epoch. When the
// last pin of the epoch is released, the epoch stops being resolvable
// through AsOf unless it is still inside the retention ring; the caller's
// own handle remains valid (snapshots are immutable) — Release only ends
// the obligation to keep the epoch findable for others. Releasing a
// snapshot that is not currently pinned panics: an unbalanced
// Pin/Release pair is a caller bug that would otherwise silently unpin
// someone else's epoch.
func (s *Snapshot) Release() {
	e := s.eng
	if e == nil {
		panic("engine: Release on a snapshot that does not belong to an engine")
	}
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	ent := e.pins[s.epoch]
	if ent == nil {
		panic("engine: Release without a matching Pin")
	}
	ent.refs--
	if ent.refs == 0 {
		delete(e.pins, s.epoch)
	}
}

// RetainWatermark returns the oldest epoch the retention ring currently
// holds (pinned epochs below it remain individually resolvable). With
// retention disabled it equals the live epoch.
func (e *Engine) RetainWatermark() uint64 {
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	if len(e.retained) == 0 {
		return e.snap.Load().epoch
	}
	return e.retained[0].epoch
}

// retainStats summarizes retention state for Stats: ring length, pinned
// epoch count, and the estimated heap bytes held only by retention —
// static-tree structure reachable from retained or pinned snapshots but
// NOT from the live snapshot, with structure shared between old versions
// counted once.
func (e *Engine) retainStats() (retained, pinned, bytes uint64) {
	live := e.snap.Load()
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	retained = uint64(len(e.retained))
	pinned = uint64(len(e.pins))
	seen := make(map[any]struct{})
	for _, t := range live.trees {
		t.MemoryFootprint(seen) // charge the live version first, for free
	}
	for _, s := range e.retained {
		if s == live {
			continue
		}
		for _, t := range s.trees {
			bytes += t.MemoryFootprint(seen)
		}
	}
	for _, ent := range e.pins {
		for _, t := range ent.snap.trees {
			bytes += t.MemoryFootprint(seen)
		}
	}
	return retained, pinned, bytes
}
