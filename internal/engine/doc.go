// Package engine is a concurrent spatial query service over the BDL-tree:
// it makes the batch-dynamic kd-tree of §5 safe — and fast — to share among
// many client goroutines issuing point queries and small updates, the
// serving shape the library's static batch API does not cover.
//
// # Snapshot protocol
//
// The engine never lets a query and an update touch the same mutable state.
// All reads go through an immutable published Snapshot — a BDL-tree version
// plus its epoch number — held behind a single atomic pointer:
//
//	queries:  load snap -> traverse the (frozen) tree version
//	updates:  derive next version copy-on-write -> publish with one store
//
// Tree versions are derived with bdltree.PersistentInsert and
// bdltree.PersistentDelete, which exploit the logarithmic method's own
// structure: an insertion rebuilds a prefix of the static trees and shares
// the rest with the parent version untouched; a deletion clones only the
// per-tree tombstone bitmaps. A commit is therefore cheap, proportional to
// the structural change, and the previous version stays valid for readers
// that loaded it before the swap.
//
// Consistency guarantee: every query (and every query group, below) runs
// entirely against one committed snapshot. A query never observes a
// half-applied batch — the counts, ids, and neighbors it returns are exactly
// those of some epoch's point set — and epochs observed by any single
// goroutine are monotonically non-decreasing. Updates are linearized by the
// commit order; Update blocks until the snapshot containing its batch is
// published, so a client's own writes are visible to its subsequent queries.
//
// # Write combining
//
// Concurrent small updates coalesce, amortizing the BDL-tree's batch cost
// exactly as the paper's batch-dynamic design intends (and as POP-style
// problem granularization argues for serving paths). The first writer to
// arrive becomes the committer; writers that arrive while a commit is in
// flight park on a pending list, and the whole list commits as one group.
// A committer serves exactly one group: if more writers are pending when
// it finishes, it hands the committer baton to one of them, so no caller's
// goroutine is conscripted into serving others indefinitely. Within one
// commit group, deletion batches apply in arrival order (each result
// reports its own removal count), all before any insertion; a writer
// observing its Update return is guaranteed the whole group is committed.
//
// # Query grouping
//
// Reads combine the same way: the first querier becomes the group leader
// and fans the collected group out through the parlay work-stealing
// scheduler (parlay.Submit) against one snapshot load — k-NN requests with
// equal k merge into a single data-parallel multi-query pass over the tree,
// so a burst of N single-point queries from N goroutines costs one
// scheduler entry, not N round-trips. A leader serves one group and hands
// the baton on, like the committer; an uncontended query (group of one)
// skips the grouping machinery and answers directly. Clients that need
// several queries against the same version use Engine.Snapshot and query
// the handle directly.
package engine
