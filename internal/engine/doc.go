// Package engine is a concurrent spatial query service over Morton-sharded
// BDL-trees: it makes the batch-dynamic kd-tree of §5 safe — and fast — to
// share among many client goroutines issuing point queries and small
// updates, and scales the write path past a single commit stream by
// partitioning space into shards whose updates commit independently.
//
// # Sharding
//
// Space is partitioned into S contiguous Morton-code ranges (S ≈
// GOMAXPROCS via AutoShards, or Options.Shards). The boundaries are first
// chosen by sampling the Morton codes of the first committed insertion
// (the "founding commit") and placing them at sample quantiles. Each shard
// owns one BDL-tree plus its persistent (copy-on-write) version chain and
// its own flat-combining committer. A spatial workload partitions
// naturally along the Morton curve: most small update batches are
// spatially local, fall entirely into one shard, and therefore commit
// without ever contending with the other shards' write streams.
//
// A partition VALUE is immutable — routing and pruning read whichever
// partition pointer they loaded without synchronization — but the
// engine's current partition is not frozen at the founding commit: with
// Options.Rebalance set, a background rebalancer replaces it online as
// the load moves (see "Online repartitioning" below). Writers that routed
// a batch under a partition that has since been replaced detect the swap
// under their shard commit locks and re-route; in-flight queries are
// untouched, because a snapshot carries the exact partition its tree
// vector was built under.
//
// # Online repartitioning
//
// The founding partition is a guess frozen at the first insertion; a
// workload that drifts or concentrates afterward would pile every write
// onto one shard's committer, and any point outside the founding world
// box is clamped by the Morton encoding into a boundary cell — a workload
// that outgrows the founding extent would route all of its inserts into
// the edge shards. The rebalancer (Options.Rebalance, or synchronous
// Engine.Rebalance calls) tracks per-shard load — live tree size plus an
// EWMA of committed update rows, with a small reservoir of recently
// committed row coordinates per shard — and migrates the partition in two
// granularities:
//
//   - split/merge: a hot shard's range is cut at the weighted median code
//     of its recent writes (falling back to its live-point median) and the
//     two coldest adjacent shards are fused, keeping S constant so the
//     per-shard lock/combiner vector never changes shape. Only the three
//     affected trees are rebuilt (bdltree.ExtractRange + NewFromSorted for
//     the halves, bdltree.Merge for the fused pair); the rest of the shard
//     vector is reused. Two triggers fire it: a shard dominating by
//     combined score (size imbalance) or one absorbing a disproportionate
//     share of recent write rows (a hot spot confined to a sliver of a
//     shard). A split is vetoed when the recent-write sample shows update
//     requests would straddle the cut — that would turn the stream's
//     single-shard commits into multi-shard ones instead of dividing it —
//     and a size-triggered split vetoed this way escalates to a full
//     repartition instead.
//   - full repartition: when enough inserted rows have routed outside the
//     world box (the drift counter), every boundary is re-placed at fresh
//     quantiles under a widened world — the live bounding box plus margin
//     — so clamped codes stop aliasing into boundary cells and successive
//     repartitions of a steady drift are geometrically spaced.
//
// Migration safety: a migration takes EVERY shard commit lock in
// ascending order — the same protocol multi-shard committers use, so it
// cannot deadlock against them — freezing the write path while the
// affected trees are rebuilt from their sorted live points. The new
// partition and its matching tree vector are then published in ONE
// snapshot pointer swap under the publish lock. Queries only ever read a
// snapshot's coupled (partition, tree-vector) pair, so they observe a
// migration atomically and keep seeing every committed batch
// all-or-nothing. A committer that routed its group under the old
// partition discovers the swap under its shard lock (commitShard compares
// each request's routing partition against the current one; commitMulti
// re-validates after acquiring its ascending lock set) and re-routes the
// whole group under the new partition — no update is lost or applied
// twice across a migration.
//
// # Snapshot protocol and two-phase publish
//
// The engine never lets a query and an update touch the same mutable
// state. All reads go through an immutable published Snapshot — the
// *vector* of per-shard tree versions plus its epoch — held behind a
// single atomic pointer:
//
//	queries:  load snap -> traverse the (frozen) shard versions
//	updates:  phase 1: prepare affected shards' next versions copy-on-write
//	          phase 2: swap the shard-vector pointer (one atomic store)
//
// Phase 1 is the expensive part (persistent BDL batch insertion/deletion,
// tree rebuilds) and runs outside any global lock: each shard's version
// preparation is guarded only by that shard's commit lock, so disjoint
// shards prepare and commit truly in parallel. Phase 2 is tiny — an O(S)
// pointer-vector copy and an epoch increment under one short publish lock
// — so the serialized fraction of a commit does not grow with batch size
// or tree size.
//
// A batch that spans multiple shards takes the global commit path: it
// acquires all affected shards' commit locks in ascending shard order
// (deadlock-free against both single-shard committers and other
// multi-shard committers), prepares every affected shard's version in
// parallel via the scheduler, and installs them with ONE vector swap.
// Readers therefore observe a multi-shard batch all-or-nothing: there is
// no instant at which some of its shards are visible and others are not.
//
// Consistency guarantee: every query (and every query group) runs entirely
// against one snapshot load. The counts, ids, and neighbors it returns are
// exactly those of some epoch's point set; epochs observed by any single
// goroutine are monotonically non-decreasing; and Update blocks until the
// snapshot containing its whole batch is published, so a client's own
// writes are visible to its subsequent queries. Global ids are assigned
// from one engine-wide counter (block-reserved per update), unique across
// shards.
//
// # Write combining
//
// Concurrent small updates coalesce per routing target, amortizing the
// BDL-tree's batch cost exactly as the paper's batch-dynamic design
// intends. The first writer to arrive at a shard's (or the global
// stream's) combiner becomes the committer; writers that arrive while a
// commit is in flight park on a pending list, and the whole list commits
// as one group. A committer serves exactly one group, then hands the baton
// to a pending waiter, so no caller is conscripted indefinitely. Within a
// group, deletion batches apply in arrival order (each result reports its
// own removal count), all before any insertion.
//
// # Query fan-out
//
// Queries prune and fan out over the shards using the partition's
// conservative Morton-range geometry (internal/morton's aligned-cell
// decomposition; clamped and rounding-displaced points are covered, so
// pruning never drops an answer):
//
//   - Range queries test the query box against each shard's cell boxes and
//     search only overlapping shards, in parallel via parlay.Submit,
//     concatenating the results.
//   - k-NN queries visit shards nearest-first through one shared k-NN
//     buffer: the buffer's k-th-distance bound shrinks as shards are
//     visited and prunes — with a sorted visit order, usually truncates —
//     the remaining shards. The bounded buffer (kdtree.KNNBuffer, the
//     paper's k-NN buffer) is simultaneously the merge structure: feeding
//     every visited shard through it yields the exact global k nearest.
//
// Reads combine like writes: the first querier becomes the group leader
// and fans the collected group out through the work-stealing scheduler
// against one snapshot load — k-NN requests with equal k merge into a
// single data-parallel multi-query pass. An uncontended query skips the
// grouping machinery. Clients that need several queries against the same
// version use Engine.Snapshot and query the handle directly.
//
// # Storage
//
// Tree versions are derived with bdltree.PersistentInsertWithIDs and
// bdltree.PersistentDelete, which exploit the logarithmic method's own
// structure: an insertion rebuilds a prefix of the static trees and shares
// the rest with the parent version untouched; a deletion clones only the
// per-tree tombstone bitmaps. A commit is therefore cheap, proportional to
// the structural change of its own shard, and a superseded version stays
// valid for readers that loaded it before the swap.
//
// # Retention and time travel
//
// Snapshots are already immutable versions; retention merely keeps some
// of them resolvable after they are superseded. With Options.RetainEpochs
// = N the engine holds the last N published snapshots in a ring and
// Engine.AsOf(epoch) returns any of them — a read-only handle answering
// KNN, range, and analytics queries against exactly that epoch's point
// set. Because versions are persistent (copy-on-write), a retained epoch
// costs only the structure its own commit rebuilt, not a copy of the
// dataset; Stats reports the marginal footprint as RetainedBytes.
//
// Engine.Pin (or PinEpoch) takes a reference that keeps a version
// resolvable past the ring until the matching Snapshot.Release — the
// idiom for long analytics jobs (see analytics.go: KNNGraph,
// CoreDistances, AllKNN) that must read one consistent version while
// writers keep committing past it. Pins are refcounted per epoch;
// Release panics on over-release rather than corrupting the table.
// RetainWatermark is the oldest currently resolvable epoch — the GC
// boundary the ring trim advances.
//
// Every snapshot-install site feeds the ring — ordinary publishes, the
// founding commit, rebalancer migrations (whose note epochs change no
// live points but still consume epochs, so AsOf across a migration
// resolves), and recovery. Recovery RESETS the ring: the recovered epoch
// is not contiguous with anything the process held before, and
// pre-restart history (including pins, which are per-process serving
// state, or per-connection state at the server layer) does not survive —
// see examples/analytics for the end-to-end shape.
//
// # Durability
//
// With Options.Durability set (construct via Open, not New), the engine
// writes every commit ahead to a segmented, CRC-framed log
// (internal/wal) before the snapshot swap that makes it visible:
//
//	publish: append WAL record (under the publish lock) -> swap snapshot
//	ack:     after the record's group-commit fsync (SyncEvery<=1), or
//	         immediately, with a background fsync every K records
//	         (SyncEvery=K>1: prefix durability to the last sync)
//
// The append sits INSIDE the publish critical section, so the log's
// record order is exactly the epoch order and a failed append publishes
// nothing (the group is rejected, UpdateResult.Err). The fsync wait sits
// OUTSIDE the shard commit locks, so parallel shard committers share
// group-commit fsyncs instead of serializing on the disk. Rebalancer
// migrations consume an epoch without changing the live set; they log an
// empty "note" record the same way, keeping the epoch chain contiguous.
//
// Engine.Checkpoint serializes the current snapshot — each shard's tree
// extracted in Morton order via bdltree.ExtractRange, plus the partition
// geometry, epoch, and id watermark — into an atomically-renamed
// checkpoint file, then truncates WAL segments (and older checkpoints)
// it supersedes. Snapshots are immutable, so a checkpoint is a
// consistent cut at its epoch no matter how many commits land while it
// is written; Durability.CheckpointEvery runs one in the background
// every K commits.
//
// Open recovers by loading the newest valid checkpoint (falling back
// past corrupt ones), replaying WAL records after its epoch — each
// record re-validated by CRC, a torn tail discarded, any epoch gap
// rejected loudly — and rebuilding the shard trees from the result.
// Everything acknowledged under SyncEvery=1 survives any crash;
// relaxed-mode acks survive to the last background sync. After any WAL
// write or sync error the engine fail-stops: the error is sticky and
// every subsequent update (including no-ops) is rejected, because "acked
// means durable" cannot be promised past an unknown disk state.
//
// All durable file I/O goes through the wal.VFS interface; tests inject
// wal.MemFS to enumerate every crash point deterministically (see
// crash_matrix_test.go).
//
// For where this package sits in the whole system — the layer diagram,
// the lifecycle of an update and of a k-NN query through client, server,
// engine, and WAL, and the cross-layer invariants — see
// docs/ARCHITECTURE.md at the repository root.
package engine
