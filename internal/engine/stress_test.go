package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// The stress test drives the engine from many goroutines at once and checks
// the package's consistency guarantee from the outside:
//
//   - Slab all-or-nothing: each writer owns disjoint coordinate slabs and
//     always inserts or deletes a slab's full batch in one Update, so ANY
//     committed snapshot holds either all B points of a slab or none.
//     A reader observing a partial slab count has seen a torn commit.
//   - Snapshot self-consistency: for any snapshot handle, Size() must equal
//     a full-universe RangeCount and the anchor k-NN answer must be the
//     fixed known set — regardless of commits racing past it.
//   - Epoch monotonicity per goroutine.
//   - Oracle agreement: after every committed batch, the owning writer
//     brute-force-checks its slab's range and k-NN answers on a fresh
//     snapshot.
//
// Run with -race; the test is sized to stay useful under `-race -short`.

const (
	slabSide  = 5.0  // slab extent in x and y
	slabPitch = 10.0 // x spacing between slab origins
	slabB     = 200  // points per slab batch
)

// slabBatch returns slab s's full deterministic batch: a grid of distinct
// coordinates inside [s*pitch, s*pitch+side] x [0, side].
func slabBatch(s int) geom.Points {
	pts := geom.NewPoints(slabB, 2)
	for j := 0; j < slabB; j++ {
		pts.Set(j, []float64{
			float64(s)*slabPitch + float64(j%50)*0.1,
			float64(j/50) * 0.1,
		})
	}
	return pts
}

func slabBox(s int) geom.Box {
	x0 := float64(s) * slabPitch
	return geom.Box{Min: []float64{x0 - 0.5, -0.5}, Max: []float64{x0 + slabSide + 0.5, slabSide + 0.5}}
}

func universeBox() geom.Box {
	return geom.Box{Min: []float64{-1e12, -1e12}, Max: []float64{1e12, 1e12}}
}

func TestEngineStress(t *testing.T) {
	const (
		writers = 2
		readers = 6
	)
	slabsPerWriter := 3
	iters := 40
	if testing.Short() {
		iters = 12
	}

	e := New(2, Options{BufferSize: 64})

	// Anchors: a far-away fixed constellation never touched by writers. The
	// 8-NN of the probe is the same exact id sequence in every committed
	// snapshot, so any reader can verify k-NN answers at any time.
	anchors := geom.NewPoints(64, 2)
	for j := 0; j < 64; j++ {
		anchors.Set(j, []float64{1e6 + float64(j)*0.5, 0})
	}
	ares := e.Insert(anchors)
	anchorProbe := []float64{1e6 - 1, 0}
	wantAnchors := ares.IDs[:8] // distances strictly increase with j

	var stop atomic.Bool
	var wwg, rwg sync.WaitGroup
	errs := make(chan string, writers+readers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
		stop.Store(true)
	}

	// checkSlabOracle brute-force-verifies slab s on a fresh snapshot,
	// expecting the slab present (full=true) or absent.
	checkSlabOracle := func(s int, full bool) {
		snap := e.Snapshot()
		box := slabBox(s)
		got := snap.RangeSearch(box)
		want := 0
		if full {
			want = slabB
		}
		if len(got) != want {
			fail("slab %d: committed range has %d points, want %d", s, len(got), want)
			return
		}
		if !full {
			return
		}
		// k-NN at the slab's origin must match brute force over the batch.
		batch := slabBatch(s)
		q := batch.At(0)
		ids := snap.KNN(geom.Points{Data: q, Dim: 2}, 4)[0]
		wantD := oracle.KNNDists(batch, q, 4, -1)
		coords, gids := snap.Points()
		byID := make(map[int32][]float64, len(gids))
		for i, g := range gids {
			byID[g] = coords.At(i)
		}
		for j, id := range ids {
			if geom.SqDist(q, byID[id]) != wantD[j] {
				fail("slab %d: knn dist %d mismatches oracle", s, j)
				return
			}
		}
	}

	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for it := 0; it < iters && !stop.Load(); it++ {
				s := writers*(it%slabsPerWriter) + w // own slabs only
				batch := slabBatch(s)
				res := e.Insert(batch)
				if len(res.IDs) != slabB {
					fail("writer %d: insert returned %d ids", w, len(res.IDs))
					return
				}
				checkSlabOracle(s, true)
				// Deleted is per-request, so the count is exact even when
				// the request coalesces with another writer's commit group.
				if del := e.Delete(batch); del.Deleted != slabB {
					fail("writer %d: deleted %d, want %d", w, del.Deleted, slabB)
					return
				}
				checkSlabOracle(s, false)
			}
		}()
	}

	for r := 0; r < readers; r++ {
		r := r
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lastEpoch := uint64(0)
			rng := uint64(r)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				s := int(rng % uint64(writers*slabsPerWriter))
				// All-or-nothing slab observation through the engine facade.
				if c := e.RangeCount(slabBox(s)); c != 0 && c != slabB {
					fail("reader %d: torn slab %d count %d", r, s, c)
					return
				}
				// Snapshot self-consistency + epoch monotonicity.
				snap := e.Snapshot()
				if snap.Epoch() < lastEpoch {
					fail("reader %d: epoch went backward %d -> %d", r, lastEpoch, snap.Epoch())
					return
				}
				lastEpoch = snap.Epoch()
				if got := snap.RangeCount(universeBox()); got != snap.Size() {
					fail("reader %d: snapshot universe count %d != size %d", r, got, snap.Size())
					return
				}
				// The anchor constellation answers identically forever.
				got := e.KNN(anchorProbe, 8)
				if len(got) != 8 {
					fail("reader %d: anchor knn returned %d", r, len(got))
					return
				}
				for j := range got {
					if got[j] != wantAnchors[j] {
						fail("reader %d: anchor knn[%d]=%d want %d", r, j, got[j], wantAnchors[j])
						return
					}
				}
			}
		}()
	}

	// Writers run a fixed workload; once they finish, stop the readers.
	wwg.Wait()
	stop.Store(true)
	rwg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
