package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// Pinned-reader stress: long-running analytics over pinned snapshots while
// writers churn and a rebalancer thread migrates the partition. Each
// analytics goroutine pins the latest epoch, runs KNNGraph/CoreDistances/
// AllKNN over it, and asserts frozen-world invariants the whole time:
//
//   - the pinned snapshot's size, epoch, and universe count never change,
//     however many commits and migrations happen after the pin;
//   - AsOf(pinned epoch) keeps resolving to a same-sized version for as
//     long as the pin is held, even when the epoch is far behind the
//     retention watermark;
//   - the analytics answers are internally consistent (no node lists
//     itself, pad rows only when the set is smaller than k).
//
// Run with -race. The long configuration (nightly stress.yml) is enabled
// by PARGEO_STRESS=1.

func pinnedReaderStress(t *testing.T, analysts, rounds, foundingN, batchB int) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4, RetainEpochs: 8})
	defer e.Close()

	founding := generators.UniformCube(foundingN, dim, 1)
	if res := e.Insert(founding); res.Err != nil {
		t.Fatal(res.Err)
	}

	var stop atomic.Bool
	errs := make(chan string, analysts+2)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
		stop.Store(true)
	}

	var wg sync.WaitGroup
	// Writer: drifting inserts+deletes so migrations and repartitions
	// actually trigger underneath the pins.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev geom.Points
		prevSet := false
		for r := 0; r < rounds && !stop.Load(); r++ {
			batch := geom.NewPoints(batchB, dim)
			drift := 30 * float64(r)
			for j := 0; j < batchB; j++ {
				batch.Set(j, []float64{drift + float64(j)*0.1, 50 + float64(j%7)*0.01})
			}
			var res UpdateResult
			if prevSet {
				res = e.Update(batch, prev)
			} else {
				res = e.Insert(batch)
			}
			if res.Err != nil {
				fail("writer round %d: %v", r, res.Err)
				return
			}
			prev, prevSet = batch, true
		}
	}()
	// Rebalancer thread: continuous manual passes until everyone stops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			e.Rebalance()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for a := 0; a < analysts; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; !stop.Load(); it++ {
				s := e.Pin()
				epoch, size := s.Epoch(), s.Size()
				k := 3 + (a+it)%3
				switch it % 3 {
				case 0:
					g := s.KNNGraph(k)
					if len(g.IDs) != size || len(g.Neighbors) != size*k {
						s.Release()
						fail("analyst %d: graph shape %d/%d over size %d", a, len(g.IDs), len(g.Neighbors), size)
						return
					}
					for i, id := range g.IDs {
						for j := 0; j < k; j++ {
							if g.Neighbors[i*k+j] == id {
								s.Release()
								fail("analyst %d: node %d is its own neighbor", a, id)
								return
							}
						}
					}
				case 1:
					ids, core := s.CoreDistances(k)
					if len(ids) != size || len(core) != size {
						s.Release()
						fail("analyst %d: core shape %d/%d over size %d", a, len(ids), len(core), size)
						return
					}
				case 2:
					pts, _ := s.Points()
					ids := s.AllKNN(pts, k, nil)
					if len(ids) != size*k {
						s.Release()
						fail("analyst %d: allknn shape %d over size %d", a, len(ids), size)
						return
					}
				}
				// The pinned version must not have moved underneath the job,
				// and its epoch must still resolve while pinned.
				if s.Epoch() != epoch || s.Size() != size {
					s.Release()
					fail("analyst %d: pinned snapshot mutated: %d/%d -> %d/%d",
						a, epoch, size, s.Epoch(), s.Size())
					return
				}
				got, err := e.AsOf(epoch)
				if err != nil {
					s.Release()
					fail("analyst %d: AsOf(pinned %d) while held: %v", a, epoch, err)
					return
				}
				if got.Size() != size {
					s.Release()
					fail("analyst %d: AsOf(pinned %d) size %d, want %d", a, epoch, got.Size(), size)
					return
				}
				s.Release()
			}
		}()
	}

	// Writer finishing stops everyone.
	go func() {
		for !stop.Load() {
			time.Sleep(time.Millisecond)
			if e.Epoch() >= uint64(rounds) {
				stop.Store(true)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if st := e.Stats(); st.PinnedEpochs != 0 {
		t.Fatalf("pins leaked: %d epochs still pinned after shutdown", st.PinnedEpochs)
	}
}

func TestPinnedAnalyticsStress(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	pinnedReaderStress(t, 2, rounds, 2000, 150)
}

// TestPinnedAnalyticsStressLong is the nightly configuration (stress.yml):
// more analysts, rounds, and mass, under -race -count=3. Gated behind
// PARGEO_STRESS=1 — far too slow for per-PR CI.
func TestPinnedAnalyticsStressLong(t *testing.T) {
	if os.Getenv("PARGEO_STRESS") == "" {
		t.Skip("long stress: set PARGEO_STRESS=1 (nightly CI)")
	}
	pinnedReaderStress(t, 4, 120, 10000, 400)
}
