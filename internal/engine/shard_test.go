package engine

import (
	"sync"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// TestShardedLifecycleOracle runs the sequential lifecycle differentially
// against the brute-force mirror on a sharded engine: every KNN and range
// answer must match brute force exactly, across rounds of inserts and
// deletes whose points straddle every shard boundary (the batches are
// uniform over the whole domain).
func TestShardedLifecycleOracle(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		e := New(2, Options{BufferSize: 64, Shards: shards, ShardSampleSize: 128})
		m := &oracle.LiveSet{Dim: 2}
		lastEpoch := uint64(0)
		for round := 0; round < 6; round++ {
			batch := generators.UniformCube(300, 2, uint64(round)+1)
			res := e.Insert(batch)
			if len(res.IDs) != batch.Len() {
				t.Fatalf("shards=%d round %d: got %d ids", shards, round, len(res.IDs))
			}
			if res.Epoch <= lastEpoch {
				t.Fatalf("shards=%d: epoch must advance: %d -> %d", shards, lastEpoch, res.Epoch)
			}
			lastEpoch = res.Epoch
			m.Insert(res.IDs, batch)
			checkAgainstOracle(t, e, m, uint64(round)*17+3)

			if round >= 2 {
				old := generators.UniformCube(300, 2, uint64(round)-1)
				sub := geom.Points{Data: old.Data[:100*2], Dim: 2}
				res := e.Delete(sub)
				if want := m.Remove(sub); res.Deleted != want {
					t.Fatalf("shards=%d: deleted %d, mirror removed %d", shards, res.Deleted, want)
				}
				checkAgainstOracle(t, e, m, uint64(round)*31+7)
			}
		}
		if got := e.Snapshot().Shards(); got != shards {
			t.Fatalf("snapshot has %d shards, want %d", got, shards)
		}
	}
}

// TestShardedFanoutEdgeCases drives the fan-out paths through their
// boundary conditions: query boxes crossing shard boundaries, k larger
// than any single shard's population (forcing a multi-shard merge), k
// larger than the whole set, probes far outside the founding world box,
// and shards left empty by a skewed founding sample.
func TestShardedFanoutEdgeCases(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 32, Shards: 4, ShardSampleSize: 64})
	m := &oracle.LiveSet{Dim: dim}

	// Founding commit: uniform points establish interior boundaries.
	base := generators.UniformCube(400, dim, 3)
	res := e.Insert(base)
	m.Insert(res.IDs, base)

	sizes := e.Snapshot().ShardSizes()
	if len(sizes) != 4 {
		t.Fatalf("shard vector %v", sizes)
	}
	for s, n := range sizes {
		if n == 0 {
			t.Fatalf("founding left shard %d empty on uniform data: %v", s, sizes)
		}
	}

	// Outliers far outside the world box: clamped into the edge shards.
	outliers := geom.NewPoints(8, dim)
	for i := 0; i < 8; i++ {
		outliers.Set(i, []float64{1e6 * float64(1+i%2) * float64(1-2*(i%3%2)), -1e5 * float64(i)})
	}
	res = e.Insert(outliers)
	m.Insert(res.IDs, outliers)
	checkAgainstOracle(t, e, m, 11)

	pts := m.Points()
	// k beyond any single shard's population, and beyond the whole set:
	// the merge must still return globally exact, distance-sorted answers.
	for _, k := range []int{150, 5000} {
		q := []float64{50, 50}
		got := e.KNN(q, k)
		wantD := oracle.KNNDists(pts, q, k, -1)
		if len(got) != len(wantD) {
			t.Fatalf("k=%d: got %d neighbors, want %d", k, len(got), len(wantD))
		}
		for j, id := range got {
			if geom.SqDist(q, m.CoordsOf(id)) != wantD[j] {
				t.Fatalf("k=%d: neighbor %d distance mismatch", k, j)
			}
		}
	}
	// Boxes straddling every boundary: thin horizontal and vertical slabs,
	// plus the universe.
	for _, box := range []geom.Box{
		{Min: []float64{-1e12, 40}, Max: []float64{1e12, 60}},
		{Min: []float64{40, -1e12}, Max: []float64{60, 1e12}},
		{Min: []float64{-1e12, -1e12}, Max: []float64{1e12, 1e12}},
	} {
		got := e.RangeSearch(box)
		want := oracle.RangeSearch(pts, box)
		if len(got) != len(want) {
			t.Fatalf("straddling box: %d results, oracle %d", len(got), len(want))
		}
		if e.RangeCount(box) != len(want) {
			t.Fatal("straddling box: count mismatch")
		}
	}

	// A skewed founding sample (every point identical) leaves S-1 shards
	// empty; the engine must keep answering exactly.
	e2 := New(dim, Options{BufferSize: 16, Shards: 4})
	m2 := &oracle.LiveSet{Dim: dim}
	same := geom.NewPoints(50, dim)
	for i := 0; i < 50; i++ {
		same.Set(i, []float64{7, 7})
	}
	r2 := e2.Insert(same)
	m2.Insert(r2.IDs, same)
	spread := generators.UniformCube(200, dim, 9)
	r2 = e2.Insert(spread)
	m2.Insert(r2.IDs, spread)
	empty := 0
	for _, n := range e2.Snapshot().ShardSizes() {
		if n == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("identical founding points should leave empty shards")
	}
	checkAgainstOracle(t, e2, m2, 13)
	if del := e2.Delete(same); del.Deleted != 50 {
		t.Fatalf("deleted %d duplicates, want 50", del.Deleted)
	}
	m2.Remove(same)
	checkAgainstOracle(t, e2, m2, 17)
}

// TestShardedParallelWriters: concurrent writers whose batches land in
// disjoint shards (single-shard fast path) and writers whose batches span
// all shards (two-phase multi-shard path) interleave; ids must land
// exactly once and the final state must match the sum of commits.
func TestShardedParallelWriters(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4})
	// Founding: uniform over [0,100]^2 so quadrant-ish boundaries exist.
	e.Insert(generators.UniformCube(1000, dim, 1))

	const writers = 8
	const perWriter = 120
	var wg sync.WaitGroup
	idsCh := make(chan []int32, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []int32
			if w%2 == 0 {
				// Tight cluster: routes single-shard almost surely.
				batch := geom.NewPoints(perWriter, dim)
				cx := 10 + 20*float64(w)/2
				for i := 0; i < perWriter; i++ {
					batch.Set(i, []float64{cx + float64(i%10)*0.01, cx + float64(i/10)*0.01})
				}
				got = e.Insert(batch).IDs
			} else {
				// Spread over the whole domain: multi-shard commit.
				batch := generators.UniformCube(perWriter, dim, uint64(w)*77+5)
				got = e.Insert(batch).IDs
			}
			idsCh <- got
		}()
	}
	wg.Wait()
	close(idsCh)
	seen := make(map[int32]bool)
	for ids := range idsCh {
		if len(ids) != perWriter {
			t.Fatalf("writer got %d ids", len(ids))
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	if e.Size() != 1000+writers*perWriter {
		t.Fatalf("size %d", e.Size())
	}
	universe := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	if got := e.RangeCount(universe); got != e.Size() {
		t.Fatalf("count %d != size %d", got, e.Size())
	}
}
