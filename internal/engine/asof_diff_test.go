package engine

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// epochState is the oracle's view of the live set as of one published
// epoch: an immutable copy of the sequential model taken right after the
// commit (or migration) that published it.
type epochState struct {
	epoch uint64
	ids   []int32
	pts   geom.Points
}

func captureEpoch(epoch uint64, m *oracle.LiveSet) epochState {
	return epochState{
		epoch: epoch,
		ids:   append([]int32(nil), m.IDs...),
		pts:   geom.Points{Data: append([]float64(nil), m.Coords...), Dim: m.Dim},
	}
}

// TestAsOfDifferential drives a sharded engine through inserts, deletes,
// multi-shard commits, and forced migrations — recording the sequential
// oracle state at every published epoch — then checks that AsOf(e) answers
// KNN, RangeSearch, and RangeCount for EVERY retained epoch exactly as the
// brute-force oracle replayed to e. This is the tentpole's correctness
// contract: time travel returns the point set as it was, not as it is.
func TestAsOfDifferential(t *testing.T) {
	const keep = 64
	e := New(2, Options{BufferSize: 32, Shards: 4, RetainEpochs: keep})
	defer e.Close()
	m := &oracle.LiveSet{Dim: 2}
	var states []epochState
	states = append(states, captureEpoch(0, m))

	record := func(res UpdateResult, ins geom.Points, del geom.Points) {
		t.Helper()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if del.Len() > 0 {
			m.Remove(del)
		}
		if ins.Len() > 0 {
			m.Insert(res.IDs, ins)
		}
		if res.Epoch != states[len(states)-1].epoch+1 {
			// A no-op group acks at an already-recorded epoch; nothing new
			// to capture (and nothing published).
			if res.Epoch > states[len(states)-1].epoch {
				t.Fatalf("epoch gap: recorded %d, ack %d", states[len(states)-1].epoch, res.Epoch)
			}
			return
		}
		states = append(states, captureEpoch(res.Epoch, m))
	}

	for round := 0; round < 14; round++ {
		seed := uint64(round)*3 + 1
		switch round % 4 {
		case 0, 1:
			// Plain insert; large enough to span several shards (a
			// multi-shard commit) once the partition exists.
			batch := generators.UniformCube(120, 2, seed)
			record(e.Insert(batch), batch, geom.Points{Dim: 2})
		case 2:
			// Mixed update: delete a slice of known-live coordinates and
			// insert fresh ones in one request.
			victims := sampleLive(m, 30, round)
			batch := generators.UniformCube(60, 2, seed)
			record(e.Update(batch, victims), batch, victims)
		case 3:
			// Skewed insert to heat one shard, then a synchronous
			// rebalance pass: if it migrates, it publishes a note epoch
			// whose live set equals the previous epoch's.
			batch := generators.UniformCube(250, 2, seed)
			for i := 0; i < batch.Len(); i++ {
				batch.At(i)[0] *= 0.04
			}
			record(e.Insert(batch), batch, geom.Points{Dim: 2})
			before := e.Epoch()
			if e.Rebalance() != RebalanceNone && e.Epoch() == before+1 {
				states = append(states, captureEpoch(before+1, m))
			}
		}
	}
	if e.Epoch() != states[len(states)-1].epoch {
		t.Fatalf("live epoch %d, last recorded %d", e.Epoch(), states[len(states)-1].epoch)
	}
	if e.Rebalances() == 0 {
		t.Fatal("the run must cross at least one migration for the differential to mean anything")
	}

	// Every state inside the retention window must answer exactly like the
	// oracle replayed to its epoch.
	watermark := e.RetainWatermark()
	probes := generators.UniformCube(6, 2, 999)
	boxes := []geom.Box{
		{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}},
		{Min: []float64{0, 0}, Max: []float64{0.4, 0.7}},
		{Min: []float64{0.02, 0.1}, Max: []float64{0.06, 0.9}},
	}
	checked := 0
	for _, st := range states {
		if st.epoch < watermark {
			continue
		}
		s, err := e.AsOf(st.epoch)
		if err != nil {
			t.Fatalf("AsOf(%d): %v (watermark %d)", st.epoch, err, watermark)
		}
		if s.Size() != len(st.ids) {
			t.Fatalf("epoch %d: size %d, oracle %d", st.epoch, s.Size(), len(st.ids))
		}
		coordsOf := make(map[int32][]float64, len(st.ids))
		for i, id := range st.ids {
			coordsOf[id] = st.pts.At(i)
		}
		for p := 0; p < probes.Len(); p++ {
			q := probes.At(p)
			got := s.KNN(geom.Points{Data: q, Dim: 2}, 7)[0]
			wantD := oracle.KNNDists(st.pts, q, 7, -1)
			if len(got) != len(wantD) {
				t.Fatalf("epoch %d: knn returned %d of %d", st.epoch, len(got), len(wantD))
			}
			for j, id := range got {
				c := coordsOf[id]
				if c == nil {
					t.Fatalf("epoch %d: knn returned id %d not live at that epoch", st.epoch, id)
				}
				if d := geom.SqDist(q, c); d != wantD[j] {
					t.Fatalf("epoch %d: knn dist[%d]=%v, oracle %v", st.epoch, j, d, wantD[j])
				}
			}
		}
		for _, box := range boxes {
			gotIDs := s.RangeSearch(box)
			wantIdx := oracle.RangeSearch(st.pts, box)
			if len(gotIDs) != len(wantIdx) {
				t.Fatalf("epoch %d: range %d ids, oracle %d", st.epoch, len(gotIDs), len(wantIdx))
			}
			want := make(map[int32]bool, len(wantIdx))
			for _, i := range wantIdx {
				want[st.ids[i]] = true
			}
			for _, id := range gotIDs {
				if !want[id] {
					t.Fatalf("epoch %d: range returned id %d outside the oracle set", st.epoch, id)
				}
			}
			if n := s.RangeCount(box); n != len(wantIdx) {
				t.Fatalf("epoch %d: count %d, oracle %d", st.epoch, n, len(wantIdx))
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d epochs checked; the run must retain a meaningful history", checked)
	}
}

// sampleLive copies n live coordinates out of the model (deterministically
// spread across the set) to use as a deletion batch.
func sampleLive(m *oracle.LiveSet, n, salt int) geom.Points {
	live := len(m.IDs)
	if live == 0 {
		return geom.Points{Dim: m.Dim}
	}
	if n > live {
		n = live
	}
	out := geom.Points{Dim: m.Dim}
	step := live / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i++ {
		row := (i*step + salt) % live
		out.Data = append(out.Data, m.Coords[row*m.Dim:(row+1)*m.Dim]...)
	}
	return out
}
