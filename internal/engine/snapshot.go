package engine

import (
	"math"
	"sort"

	"pargeo/internal/bdltree"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// Snapshot is one immutable committed version of the point set: the coupled
// vector of per-shard BDL-tree versions published together by a commit,
// plus the epoch at which the vector was swapped in. All methods are safe
// for concurrent use and always answer from this version, regardless of
// later commits. An unsharded engine (and a sharded one before its
// partition-defining first insertion) carries a single tree and no
// partition.
type Snapshot struct {
	eng   *Engine    // owner, for Release (nil only in tests that build Snapshots by hand)
	part  *partition // nil until sharded mode is established
	trees []*bdltree.Tree
	epoch uint64
	size  int
}

// Epoch returns the snapshot's commit epoch (0 for the empty initial
// version).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Size returns the number of live points in the snapshot.
func (s *Snapshot) Size() int { return s.size }

// Shards returns the number of shards the snapshot's version vector holds
// (1 until a sharded engine's partition is established).
func (s *Snapshot) Shards() int { return len(s.trees) }

// ShardSizes returns the live point count of every shard, in shard order (a
// balance-inspection helper; O(S)).
func (s *Snapshot) ShardSizes() []int {
	out := make([]int, len(s.trees))
	for i, tr := range s.trees {
		out[i] = tr.Size()
	}
	return out
}

// KNN returns, for each query row, the global ids of its k nearest points
// (sorted by increasing distance), data-parallel over the queries. Each
// query walks the shards nearest-first through one shared k-NN buffer, so
// the radius bound established by earlier shards prunes — usually skips —
// the rest.
func (s *Snapshot) KNN(queries geom.Points, k int) [][]int32 {
	return s.knnPooled(queries, k, nil)
}

// knnPooled is KNN drawing per-worker buffers from pool (nil: allocate).
func (s *Snapshot) knnPooled(queries geom.Points, k int, pool *kdtree.BufferPool) [][]int32 {
	n := queries.Len()
	out := make([][]int32, n)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		var buf *kdtree.KNNBuffer
		if pool != nil {
			buf = pool.Get()
		} else {
			buf = kdtree.NewKNNBuffer(k)
		}
		var order []shardDist
		for i := lo; i < hi; i++ {
			buf.Reset()
			order = s.knnOne(queries.At(i), -1, buf, order)
			out[i] = buf.Result(nil)
		}
		if pool != nil {
			pool.Put(buf)
		}
	})
	return out
}

// KNNInto accumulates the snapshot's candidates for query q into buf, which
// the caller owns and may have pre-loaded with candidates from elsewhere —
// the multi-shard analogue of bdltree.Tree.KNNInto, with the same contract:
// shards feed one shared buffer whose shrinking k-th-distance bound prunes
// the remaining shards, and the buffer afterward holds exactly the global k
// nearest. exclude (or -1) is a global id to skip.
func (s *Snapshot) KNNInto(q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	s.knnOne(q, exclude, buf, nil)
}

// AllKNN answers one k-NN query per row of queries against the snapshot,
// returning flat row-major ids: query i's neighbors occupy
// ids[i*k : (i+1)*k], sorted by increasing distance and padded with -1 when
// the snapshot holds fewer than k live points (empty shards included). If
// sqDists is non-nil it must have length queries.Len()*k and receives the
// matching squared distances (+Inf padding) — exactly the row contract of
// kdtree.Tree.AllKNN, so sharded and single-tree batch answers are
// interchangeable.
func (s *Snapshot) AllKNN(queries geom.Points, k int, sqDists []float64) []int32 {
	if k <= 0 {
		panic("engine: AllKNN requires k >= 1")
	}
	n := queries.Len()
	if sqDists != nil && len(sqDists) != n*k {
		panic("engine: AllKNN sqDists length must be queries.Len()*k")
	}
	ids := make([]int32, n*k)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(k)
		var order []shardDist
		for i := lo; i < hi; i++ {
			buf.Reset()
			order = s.knnOne(queries.At(i), -1, buf, order)
			row := ids[i*k : (i+1)*k]
			var drow []float64
			if sqDists != nil {
				drow = sqDists[i*k : (i+1)*k]
			}
			m := buf.ResultInto(row, drow)
			for j := m; j < k; j++ {
				row[j] = -1
				if drow != nil {
					drow[j] = math.Inf(1)
				}
			}
		}
	})
	return ids
}

type shardDist struct {
	s int
	d float64
}

// knnOne accumulates the k nearest neighbors of q into buf. Shards are
// visited in increasing order of their conservative Morton-range distance
// bound; once the buffer is full, any shard whose bound is at or beyond the
// current k-th distance — and, the order being sorted, every shard after it
// — is pruned. scratch is reused across calls to avoid allocation.
func (s *Snapshot) knnOne(q []float64, exclude int32, buf *kdtree.KNNBuffer, scratch []shardDist) []shardDist {
	if s.part == nil || len(s.trees) == 1 {
		s.trees[0].KNNInto(q, exclude, buf)
		return scratch
	}
	order := scratch[:0]
	for sh := range s.trees {
		if s.trees[sh].Size() == 0 {
			continue
		}
		order = append(order, shardDist{sh, s.part.minSqDist(sh, q)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	for _, sd := range order {
		if sd.d >= buf.Bound() { // Bound() is +inf until k candidates seen
			break
		}
		s.trees[sd.s].KNNInto(q, exclude, buf)
	}
	return order
}

// rangeShards returns the shards that can intersect box (all of them in
// unsharded mode).
func (s *Snapshot) rangeShards(box geom.Box) []int {
	if s.part == nil || len(s.trees) == 1 {
		return []int{0}
	}
	var out []int
	for sh := range s.trees {
		if s.trees[sh].Size() > 0 && s.part.overlaps(sh, box) {
			out = append(out, sh)
		}
	}
	return out
}

// RangeSearch returns the global ids of all points inside the closed box:
// shards pruned by box-vs-Morton-range overlap, survivors searched as one
// parallel fan-out, results concatenated in shard order.
func (s *Snapshot) RangeSearch(box geom.Box) []int32 {
	shards := s.rangeShards(box)
	if len(shards) == 0 {
		return nil
	}
	if len(shards) == 1 {
		return s.trees[shards[0]].RangeSearch(box)
	}
	parts := make([][]int32, len(shards))
	thunks := make([]func(), len(shards))
	for i, sh := range shards {
		i, sh := i, sh
		thunks[i] = func() { parts[i] = s.trees[sh].RangeSearch(box) }
	}
	parlay.Submit(thunks).Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// RangeCount returns the number of points inside the closed box, with the
// same shard pruning and fan-out as RangeSearch.
func (s *Snapshot) RangeCount(box geom.Box) int {
	shards := s.rangeShards(box)
	if len(shards) == 0 {
		return 0
	}
	if len(shards) == 1 {
		return s.trees[shards[0]].RangeCount(box)
	}
	counts := make([]int, len(shards))
	thunks := make([]func(), len(shards))
	for i, sh := range shards {
		i, sh := i, sh
		thunks[i] = func() { counts[i] = s.trees[sh].RangeCount(box) }
	}
	parlay.Submit(thunks).Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Points returns the coordinates and global ids of the snapshot's live
// points across all shards (a verification helper for differential tests;
// O(n)).
func (s *Snapshot) Points() (geom.Points, []int32) {
	var dim int
	var coords []float64
	var gids []int32
	for _, tr := range s.trees {
		pts, ids := tr.Points()
		dim = pts.Dim
		coords = append(coords, pts.Data...)
		gids = append(gids, ids...)
	}
	return geom.Points{Data: coords, Dim: dim}, gids
}
