package engine

import (
	"sort"

	"pargeo/internal/geom"
	"pargeo/internal/morton"
)

// partition is one immutable Morton-range space partition: shard s owns the
// inclusive code interval (bounds[s-1], bounds[s]] (with implicit 0-1 = -1
// and bounds[S-1] = MaxCode). The first committed insertion creates the
// founding partition (boundaries chosen by sampling that commit's points);
// the rebalancer may later replace it wholesale — split/merge keeps the
// world box and moves one boundary pair, a full repartition widens the
// world and re-places every boundary — but a partition value itself never
// mutates, so routing, pruning, and publish decisions read whichever
// partition pointer they loaded without synchronization.
type partition struct {
	dim    int
	world  geom.Box // quantization box of the defining commit
	bounds []uint64 // S-1 ascending inclusive upper bounds

	// Conservative per-shard geometry, precomputed from the aligned-cell
	// decomposition of each shard's code interval: cellBoxes for tight
	// pruning, unionBox for an O(dim) quick test. Every point a shard can
	// contain — including points outside world, which Encode clamps into
	// boundary cells — lies inside these regions.
	cellBoxes [][]geom.Box
	unionBox  []geom.Box
}

func (p *partition) shards() int { return len(p.bounds) + 1 }

// codeRange returns shard s's inclusive code interval; empty intervals
// (possible when sampled boundaries collide) come back as lo > hi.
func (p *partition) codeRange(s int) (lo, hi uint64) {
	max := morton.MaxCode(p.dim)
	if s == 0 {
		lo = 0
	} else {
		if p.bounds[s-1] == max {
			return 1, 0 // nothing above MaxCode: empty shard
		}
		lo = p.bounds[s-1] + 1
	}
	if s < len(p.bounds) {
		hi = p.bounds[s]
	} else {
		hi = max
	}
	return lo, hi
}

// shardOf returns the shard owning the point's Morton code.
func (p *partition) shardOf(coords []float64) int {
	code := morton.Encode(coords, p.world)
	return sort.Search(len(p.bounds), func(i int) bool { return code <= p.bounds[i] })
}

// overlaps reports whether shard s can hold a point inside box
// (conservative: false guarantees no member of the shard is in the box).
// The O(dim) union-box test rejects most shards before the cell pass.
func (p *partition) overlaps(s int, box geom.Box) bool {
	return p.unionBox[s].Intersects(box) && morton.BoxesIntersect(p.cellBoxes[s], box)
}

// minSqDist returns a lower bound on the squared distance from q to any
// point shard s can hold (+inf for an empty shard).
func (p *partition) minSqDist(s int, q []float64) float64 {
	return morton.BoxesMinSqDist(p.cellBoxes[s], q)
}

// newPartition places S-1 boundaries at the quantiles of a sample of the
// defining commit's Morton codes. Duplicate quantiles (heavily skewed or
// tiny samples) simply leave some shards empty — routing and pruning treat
// an empty code interval consistently, and the rebalancer can later merge
// them away.
func newPartition(dim, shards int, world geom.Box, codes []uint64, sampleSize int) *partition {
	sample := make([]uint64, 0, sampleSize)
	if len(codes) <= sampleSize {
		sample = append(sample, codes...)
	} else {
		stride := len(codes) / sampleSize
		for i := 0; i < len(codes); i += stride {
			sample = append(sample, codes[i])
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	bounds := make([]uint64, shards-1)
	for j := range bounds {
		if len(sample) == 0 {
			bounds[j] = 0
			continue
		}
		idx := (j + 1) * len(sample) / shards
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		bounds[j] = sample[idx]
	}
	return newPartitionFromBounds(dim, world, bounds)
}

// newPartitionFromBounds builds a partition directly from S-1 ascending
// inclusive upper bounds, precomputing each shard's conservative cell-box
// geometry. This is the constructor the rebalancer uses after moving a
// boundary pair (split/merge keeps the world box) or re-placing every
// boundary under a widened world.
func newPartitionFromBounds(dim int, world geom.Box, bounds []uint64) *partition {
	shards := len(bounds) + 1
	p := &partition{dim: dim, world: world, bounds: bounds}
	p.cellBoxes = make([][]geom.Box, shards)
	p.unionBox = make([]geom.Box, shards)
	for s := 0; s < shards; s++ {
		lo, hi := p.codeRange(s)
		p.cellBoxes[s] = morton.RangeBoxes(lo, hi, dim, world)
		u := geom.EmptyBox(dim)
		for _, b := range p.cellBoxes[s] {
			u.Union(b)
		}
		p.unionBox[s] = u
	}
	return p
}

// splitByShard partitions a batch's rows by owning shard, preserving row
// order within each shard. Returned per-shard batches alias fresh storage;
// ids (optional, parallel to rows) are split alongside.
func (p *partition) splitByShard(batch geom.Points, ids []int32) (bySh []geom.Points, idsBy [][]int32, affected []int) {
	n := batch.Len()
	s := p.shards()
	rowShard := make([]int32, n)
	counts := make([]int, s)
	for i := 0; i < n; i++ {
		sh := p.shardOf(batch.At(i))
		rowShard[i] = int32(sh)
		counts[sh]++
	}
	bySh = make([]geom.Points, s)
	idsBy = make([][]int32, s)
	for sh := 0; sh < s; sh++ {
		if counts[sh] == 0 {
			bySh[sh] = geom.Points{Dim: p.dim}
			continue
		}
		affected = append(affected, sh)
		bySh[sh] = geom.Points{Data: make([]float64, 0, counts[sh]*p.dim), Dim: p.dim}
		if ids != nil {
			idsBy[sh] = make([]int32, 0, counts[sh])
		}
	}
	for i := 0; i < n; i++ {
		sh := rowShard[i]
		bySh[sh].Data = append(bySh[sh].Data, batch.At(i)...)
		if ids != nil {
			idsBy[sh] = append(idsBy[sh], ids[i])
		}
	}
	return bySh, idsBy, affected
}
