package engine

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pargeo/internal/geom"
	"pargeo/internal/oracle"
	"pargeo/internal/wal"
)

// The crash-point matrix: a deterministic scripted workload is run
// against a MemFS armed to crash at the Nth fallible file-system
// operation, for EVERY reachable N, crossed with {clean, torn-write}
// failure modes and {keep, drop}-unsynced reboot images. Recovery from
// each of the 4N images must reproduce exactly the state an oracle
// (LiveSet replay of the script prefix) predicts for the recovered
// epoch, and the recovered epoch must lie in [last acked, last
// submitted] — acknowledged batches are never lost (SyncEvery=1 acks
// after fsync), and at most the one in-flight batch may surface beyond
// them.

// crashStep is one scripted operation: an update (ins/del) or a manual
// checkpoint.
type crashStep struct {
	ins  geom.Points
	del  geom.Points
	ckpt bool
}

const crashSegSize = 256 // tiny segments force rotations mid-script

func crashScriptOpts(fs wal.VFS) Options {
	return Options{Shards: 4, Durability: &Durability{
		Dir: "db", FS: fs, SyncEvery: 1, SegmentSize: crashSegSize,
	}}
}

// buildCrashScript returns the scripted steps plus the oracle state
// after every published epoch: states[e] is the canonical live set an
// engine recovered at epoch e must hold. Every update step changes the
// live set, so step i publishes exactly epoch i (checkpoint steps
// publish nothing). Delete batches are drawn from the simulated live
// set so none is a no-op.
func buildCrashScript() (steps []crashStep, states [][]string) {
	rng := rand.New(rand.NewSource(42))
	model := &oracle.LiveSet{Dim: 2}
	nextID := int32(0)
	states = append(states, modelState(model)) // epoch 0: pre-founding

	insert := func(n int) {
		pts := geom.NewPoints(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
		}
		steps = append(steps, crashStep{ins: pts})
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = nextID
			nextID++
		}
		model.Insert(ids, pts)
		states = append(states, modelState(model))
	}
	del := func(n int) {
		live := model.Points()
		batch := geom.Points{Dim: 2}
		stride := live.Len() / n
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < live.Len() && batch.Len() < n; i += stride {
			batch.Data = append(batch.Data, live.At(i)...)
		}
		steps = append(steps, crashStep{del: batch})
		model.Remove(batch)
		states = append(states, modelState(model))
	}
	ckpt := func() { steps = append(steps, crashStep{ckpt: true}) }

	insert(12) // founding
	insert(8)
	del(4)
	insert(8)
	ckpt() // mid-script checkpoint: crash points inside WriteCheckpoint + prune
	insert(6)
	del(5)
	insert(8)
	del(3)
	ckpt() // second checkpoint: prunes segments with live history behind it
	insert(8)
	insert(6)
	del(4)
	insert(8)
	return steps, states
}

// runCrashScript executes the script on fs, tolerating injected
// failures, and returns the highest acknowledged epoch. With
// SyncEvery=1 an acknowledged epoch is durable by contract.
func runCrashScript(fs wal.VFS, steps []crashStep) (lastAcked uint64) {
	e, err := Open(2, crashScriptOpts(fs))
	if err != nil {
		return 0 // crashed inside Open: nothing was ever acknowledged
	}
	defer e.Close() // post-crash Close errors are expected; recovery is the test
	for _, s := range steps {
		if s.ckpt {
			e.Checkpoint() //nolint:errcheck // injected failure: WAL retains everything
			continue
		}
		if res := e.Update(s.ins, s.del); res.Err == nil {
			lastAcked = res.Epoch
		}
		// No-op cell: a delete matching nothing publishes no epoch, but
		// the epoch it reports is still an acknowledgement — folding it
		// into lastAcked makes verifyRecovery enforce, for every crash
		// image, that no-op acks only ever vouch for durable epochs.
		if res := e.Delete(geom.Points{Data: []float64{500, 500}, Dim: 2}); res.Err == nil && res.Epoch > lastAcked {
			lastAcked = res.Epoch
		}
	}
	return lastAcked
}

// verifyRecovery opens the crash image, checks the recovered epoch
// against the acked/submitted window, and compares the live set with
// the oracle state for that epoch. When cont is set it additionally
// commits one batch on the recovered engine and reopens once more, so
// the log chain continued from a recovered epoch is itself validated.
func verifyRecovery(t *testing.T, img *wal.MemFS, states [][]string, lastAcked uint64, label string, cont bool) {
	t.Helper()
	re, err := Open(2, crashScriptOpts(img))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	epoch := re.Epoch()
	if epoch < lastAcked || epoch > lastAcked+1 {
		t.Fatalf("%s: recovered epoch %d outside [%d, %d]", label, epoch, lastAcked, lastAcked+1)
	}
	if int(epoch) >= len(states) {
		t.Fatalf("%s: recovered epoch %d beyond script (%d states)", label, epoch, len(states))
	}
	diffStates(t, label, engineState(re), states[epoch])
	if cont {
		res := re.Insert(geom.Points{Data: []float64{-5, -5, 105, 105}, Dim: 2})
		if res.Err != nil {
			t.Fatalf("%s: post-recovery insert: %v", label, res.Err)
		}
		want := engineState(re)
		wantEpoch := re.Epoch()
		if err := re.Close(); err != nil {
			t.Fatalf("%s: close after recovery: %v", label, err)
		}
		re2, err := Open(2, crashScriptOpts(img))
		if err != nil {
			t.Fatalf("%s: second recovery: %v", label, err)
		}
		if got := re2.Epoch(); got != wantEpoch {
			t.Fatalf("%s: second recovery epoch %d, want %d", label, got, wantEpoch)
		}
		diffStates(t, label+" (second recovery)", engineState(re2), want)
		re2.Close()
		return
	}
	re.Close()
}

func TestCrashRecoveryMatrix(t *testing.T) {
	steps, states := buildCrashScript()

	// Probe run: no crash. Counts the fault-injection space and proves
	// the workload covers the interesting boundaries (≥2 segment
	// rotations, checkpoints with pruning) rather than vacuously passing.
	probe := wal.NewMemFS()
	if got, want := runCrashScript(probe, steps), uint64(len(states)-1); got != want {
		t.Fatalf("probe run acked epoch %d, want %d", got, want)
	}
	total := probe.Ops()
	names, err := probe.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	maxSeq, ckpts := 0, 0
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ckpt") {
			ckpts++
		}
		var seq int
		if _, err := fmt.Sscanf(n, "wal-%016x.seg", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq < 3 {
		t.Fatalf("workload produced only %d segments; need ≥3 so the matrix covers rotations", maxSeq)
	}
	if ckpts == 0 {
		t.Fatal("workload left no checkpoint; matrix would not cover checkpoint crash points")
	}
	if total < 30 {
		t.Fatalf("only %d fault-injection points; workload too small to be meaningful", total)
	}

	stride := 1
	if testing.Short() {
		stride = 3
	}
	cells := 0
	for n := 1; n <= total; n += stride {
		for _, torn := range []bool{false, true} {
			fs := wal.NewMemFS()
			fs.SetCrash(n, torn)
			acked := runCrashScript(fs, steps)
			for _, drop := range []bool{false, true} {
				label := fmt.Sprintf("op %d/%d torn=%v drop=%v", n, total, torn, drop)
				verifyRecovery(t, fs.CrashImage(drop), states, acked, label, n%5 == 0)
				cells++
			}
		}
	}
	t.Logf("crash matrix: %d cells over %d fault points (%d segments, stride %d)", cells, total, maxSeq, stride)
}

// TestCrashRecoveryStress: randomized kill points under CONCURRENT
// writers with the rebalancer and automatic checkpoints on — the
// non-deterministic companion to the exhaustive single-threaded matrix.
// Each writer tags its points with (writer, seq) in the coordinates;
// after recovery every acknowledged point must be present (SyncEvery=1:
// ack ⇒ fsynced ⇒ survives either reboot image) and every recovered
// point must have been submitted. Run via PARGEO_STRESS=1 (nightly CI,
// -race).
func TestCrashRecoveryStress(t *testing.T) {
	if os.Getenv("PARGEO_STRESS") == "" {
		t.Skip("set PARGEO_STRESS=1 to run crash-recovery stress")
	}
	rounds := 30
	if testing.Short() {
		rounds = 5
	}
	const writers = 6
	for round := 0; round < rounds; round++ {
		seed := int64(round)
		rng := rand.New(rand.NewSource(seed))
		fs := wal.NewMemFS()
		opts := crashScriptOpts(fs)
		opts.Rebalance = true
		opts.RebalanceInterval = time.Millisecond
		opts.Durability.CheckpointEvery = 8
		e, err := Open(2, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Arm the crash somewhere inside the workload's op range.
		fs.SetCrash(10+rng.Intn(400), rng.Intn(2) == 0)

		type wstate struct {
			submitted int
			acked     map[int]int32 // seq -> id
		}
		ws := make([]wstate, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			ws[w].acked = map[int]int32{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seq := 0; seq < 200; seq++ {
					// Coordinates encode (writer, seq) exactly.
					p := geom.Points{Data: []float64{float64(w*1000 + seq), float64(seq)}, Dim: 2}
					ws[w].submitted = seq + 1
					res := e.Insert(p)
					if res.Err != nil {
						return
					}
					ws[w].acked[seq] = res.IDs[0]
				}
			}()
		}
		wg.Wait()
		e.Close() //nolint:errcheck // post-crash close error is expected

		img := fs.CrashImage(rng.Intn(2) == 0)
		re, err := Open(2, crashScriptOpts(img))
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		pts, ids := re.Snapshot().Points()
		seenID := map[int32]bool{}
		recovered := map[int]bool{} // w*1000+seq
		for i, id := range ids {
			if seenID[id] {
				t.Fatalf("round %d: duplicate id %d after recovery", round, id)
			}
			seenID[id] = true
			c := pts.At(i)
			w, seq := int(c[0])/1000, int(c[1])
			if w < 0 || w >= writers || seq >= ws[w].submitted {
				t.Fatalf("round %d: recovered point %v was never submitted", round, c)
			}
			recovered[w*1000+seq] = true
		}
		for w := range ws {
			for seq, id := range ws[w].acked {
				if !recovered[w*1000+seq] {
					t.Fatalf("round %d: writer %d seq %d (id %d) was acked but lost", round, w, seq, id)
				}
			}
		}
		re.Close()
	}
}
