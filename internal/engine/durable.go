package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"pargeo/internal/bdltree"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
	"pargeo/internal/wal"
)

// ErrClosed is returned (via UpdateResult.Err) for updates submitted
// after Close on a durable engine.
var ErrClosed = errors.New("engine: closed")

// Durability configures the engine's write-ahead log and checkpointing.
// Pass it via Options.Durability and construct the engine with Open.
type Durability struct {
	// Dir holds the WAL segments and checkpoint files.
	Dir string
	// SyncEvery selects the durability mode. 0 or 1: every update is
	// acknowledged only after its WAL record is fsynced (concurrent
	// commits share fsyncs via group commit). K>1: updates are
	// acknowledged immediately and the log fsyncs every K records — a
	// crash can lose up to the last K-1 acknowledged batches, but always
	// a suffix (prefix durability to the most recent sync).
	SyncEvery int
	// CheckpointEvery triggers an automatic background checkpoint after
	// that many committed WAL records. 0 disables automatic checkpoints;
	// Engine.Checkpoint remains available.
	CheckpointEvery int
	// SegmentSize is the WAL segment rotation threshold in bytes
	// (0 = wal default).
	SegmentSize int
	// FS overrides the file system (tests inject wal.MemFS for
	// deterministic crash injection). nil = the real file system.
	FS wal.VFS
}

// Open constructs an engine, recovering durable state first when
// Options.Durability is set: it loads the newest valid checkpoint,
// replays WAL records past its epoch (discarding any torn tail), rebuilds
// the shard trees, and opens a fresh WAL segment for new commits. The
// recovered engine resumes at the recovered epoch with the recovered
// id-generator watermark, so ids never collide across restarts.
func Open(dim int, opts Options) (*Engine, error) {
	e := newEngine(dim, opts)
	if d := opts.Durability; d != nil && d.Dir != "" {
		if err := e.recoverDurable(*d); err != nil {
			return nil, err
		}
	}
	e.startRebalancer()
	return e, nil
}

// recoverDurable restores state from d.Dir and opens the WAL for
// appending. Called once, before the engine is visible to any other
// goroutine.
func (e *Engine) recoverDurable(d Durability) error {
	fs := d.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if err := fs.MkdirAll(d.Dir); err != nil {
		return err
	}
	ckpt, err := wal.LoadLatestCheckpoint(fs, d.Dir)
	if err != nil {
		return err
	}
	var afterEpoch uint64
	basePts := geom.Points{Dim: e.dim}
	var baseIDs []int32
	var nextID int64
	if ckpt != nil {
		if ckpt.Dim != e.dim {
			return fmt.Errorf("engine: %s holds dim-%d data, engine is dim-%d", d.Dir, ckpt.Dim, e.dim)
		}
		afterEpoch = ckpt.Epoch
		basePts, baseIDs = ckpt.Pts, ckpt.IDs
		nextID = ckpt.NextID
	}
	recs, err := wal.ScanLog(fs, d.Dir, e.dim, afterEpoch)
	if err != nil {
		return err
	}
	pts, ids := replayRecords(e.dim, basePts, baseIDs, recs)
	finalEpoch := afterEpoch + uint64(len(recs))
	for _, id := range ids {
		if int64(id) >= nextID {
			nextID = int64(id) + 1
		}
	}
	e.nextID.Store(nextID)

	topts := bdltree.Options{Split: e.opts.Split, BufferSize: e.opts.BufferSize}
	var snap *Snapshot
	var part *partition
	switch {
	case pts.Len() == 0:
		// Nothing live (possibly after epochs of churn): the engine is
		// structurally pre-founding again, just at a later epoch.
		snap = &Snapshot{trees: []*bdltree.Tree{e.newTree()}, epoch: finalEpoch}
	case e.nshard == 1:
		t := bdltree.NewFromSorted(e.dim, topts, pts, ids)
		snap = &Snapshot{trees: []*bdltree.Tree{t}, epoch: finalEpoch, size: t.Size()}
	case ckpt != nil && ckpt.HasPart && len(recs) == 0 && ckpt.Shards == e.nshard:
		// Exact restore: no replay and an unchanged shard count, so the
		// checkpoint's own partition can be reinstated and each shard
		// rebuilt from its (code-sorted) extract.
		part = newPartitionFromBounds(e.dim, ckpt.World, ckpt.Bounds)
		bySh, idsBy, _ := part.splitByShard(pts, ids)
		trees := make([]*bdltree.Tree, e.nshard)
		parlay.For(e.nshard, 1, func(s int) {
			trees[s] = bdltree.NewFromSorted(e.dim, topts, bySh[s], idsBy[s])
		})
		snap = &Snapshot{part: part, trees: trees, epoch: finalEpoch, size: pts.Len()}
	default:
		// Replay changed the live set (or the shard count changed):
		// refound the partition over the recovered points, under a world
		// at least as wide as the checkpoint's.
		world := geom.BoundingBoxAll(pts)
		if ckpt != nil && ckpt.HasPart {
			world.Union(ckpt.World)
		}
		var trees []*bdltree.Tree
		part, trees = e.shardedBuild(world, pts, ids)
		size := 0
		for _, t := range trees {
			size += t.Size()
		}
		snap = &Snapshot{part: part, trees: trees, epoch: finalEpoch, size: size}
	}
	snap.eng = e
	e.snap.Store(snap)
	// Retention restarts at the recovered epoch: the ring newEngine seeded
	// holds the discarded epoch-0 shell (not contiguous with finalEpoch),
	// and historical versions are not durable, so the window begins here.
	e.retainMu.Lock()
	e.retained = e.retained[:0]
	e.retainMu.Unlock()
	e.retain(snap)
	if part != nil {
		e.part.Store(part)
	}

	log, err := wal.OpenLog(fs, d.Dir, e.dim, wal.LogOptions{
		SegmentSize: d.SegmentSize,
		SyncEvery:   d.SyncEvery,
	}, finalEpoch+1)
	if err != nil {
		return err
	}
	e.log = log
	e.durFS, e.durDir, e.dur = fs, d.Dir, d
	return nil
}

// replayRecords applies commit records to a base live set and returns
// the final live points and ids. It reproduces the engine's group
// semantics exactly: a delete row tombstones EVERY live point whose
// coordinates match it bit-for-bit, all of a record's deletes apply
// before any of its inserts, and note records change nothing.
func replayRecords(dim int, basePts geom.Points, baseIDs []int32, recs []wal.Record) (geom.Points, []int32) {
	data := append([]float64(nil), basePts.Data...)
	ids := append([]int32(nil), baseIDs...)
	alive := make([]bool, len(ids))
	for i := range alive {
		alive[i] = true
	}
	key := func(row []float64) string {
		b := make([]byte, 0, dim*8)
		for _, v := range row {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return string(b)
	}
	index := make(map[string][]int, len(ids))
	for i := range ids {
		k := key(data[i*dim : (i+1)*dim])
		index[k] = append(index[k], i)
	}
	for _, rec := range recs {
		if rec.Kind != wal.KindCommit {
			continue
		}
		for _, d := range rec.Dels {
			for r, n := 0, d.Len(); r < n; r++ {
				k := key(d.At(r))
				for _, i := range index[k] {
					alive[i] = false
				}
				delete(index, k)
			}
		}
		for r, n := 0, rec.Ins.Len(); r < n; r++ {
			i := len(ids)
			data = append(data, rec.Ins.At(r)...)
			ids = append(ids, rec.IDs[r])
			alive = append(alive, true)
			k := key(rec.Ins.At(r))
			index[k] = append(index[k], i)
		}
	}
	var outData []float64
	var outIDs []int32
	for i := range ids {
		if alive[i] {
			outData = append(outData, data[i*dim:(i+1)*dim]...)
			outIDs = append(outIDs, ids[i])
		}
	}
	return geom.Points{Data: outData, Dim: dim}, outIDs
}

// walBodyPool recycles commit-record body buffers: encoding runs on the
// hot write path (under publishMu), and a serving workload would
// otherwise allocate tens of KB of garbage per commit.
var walBodyPool = sync.Pool{New: func() any { return new(walScratch) }}

type walScratch struct {
	body []byte
	ins  []float64
	ids  []int32
	dels []geom.Points
}

// appendCommit encodes one commit group as a WAL commit-record body and
// appends it at epoch. The encoding is routing-independent — every
// delete batch in request order, then the combined insert batch —
// because the engine's final state after a group is the same however the
// group was fanned out across shards. The scratch buffers are recycled:
// Append has fully consumed the body by the time it returns.
func (e *Engine) appendCommit(epoch uint64, group []*updateReq) (uint64, error) {
	sc := walBodyPool.Get().(*walScratch)
	sc.dels, sc.ins, sc.ids = sc.dels[:0], sc.ins[:0], sc.ids[:0]
	for _, r := range group {
		if r.del.Len() > 0 {
			sc.dels = append(sc.dels, r.del)
		}
		sc.ins = append(sc.ins, r.ins.Data...)
		sc.ids = append(sc.ids, r.insIDs...)
	}
	sc.body = wal.AppendCommitBody(sc.body[:0], sc.dels, geom.Points{Data: sc.ins, Dim: e.dim}, sc.ids)
	lsn, err := e.log.Append(wal.KindCommit, epoch, sc.body)
	walBodyPool.Put(sc)
	return lsn, err
}

// waitDurable blocks until the record at lsn is durable (no-op for
// non-durable engines and relaxed SyncEvery>1 mode). lsn 0 means the
// commit appended nothing (it changed no state); even then a poisoned
// log rejects the ack — the engine is fail-stopped, and acknowledging a
// no-op would vouch for a current epoch whose durability is unknown.
func (e *Engine) waitDurable(lsn uint64) error {
	if e.log == nil {
		return nil
	}
	if lsn == 0 {
		return e.log.Err()
	}
	return e.log.WaitDurable(lsn)
}

// ackNoop produces the epoch and error for a commit that changed no state
// (a delete matching nothing, or a multi-shard route that touched no
// shard). The reported epoch must honor the same acked⇒durable-prefix
// contract as a real commit's: the naked published epoch won't do,
// because a concurrently publishing commit can have bumped it past the
// last fsync in relaxed SyncEvery>1 mode. Under publishMu the published
// epoch and the log tail correspond exactly (every append happens under
// that lock); waiting on the tail LSN makes the published epoch safe to
// report in strict mode, and in relaxed mode — where WaitDurable returns
// immediately by design — the ack falls back to the last fsync-covered
// epoch, a statement that survives any crash.
func (e *Engine) ackNoop() (uint64, error) {
	if e.log == nil {
		return e.snap.Load().epoch, nil
	}
	e.publishMu.Lock()
	epoch := e.snap.Load().epoch
	tail := e.log.TailLSN()
	e.publishMu.Unlock()
	err := e.log.WaitDurable(tail)
	if durable := e.log.DurableEpoch(); durable < epoch {
		epoch = durable
	}
	if err == nil {
		// WaitDurable returns nil without looking at the log in relaxed
		// mode; a poisoned log must still reject the ack.
		err = e.log.Err()
	}
	return epoch, err
}

// noteWALCommit counts a committed WAL record toward the automatic
// checkpoint trigger. Checkpoints run in the background so the write
// path never stalls behind one; a background checkpoint's error is
// dropped — the WAL retains everything, so only log length suffers.
func (e *Engine) noteWALCommit() {
	if e.log == nil || e.dur.CheckpointEvery <= 0 {
		return
	}
	if e.sinceCkpt.Add(1) < int64(e.dur.CheckpointEvery) {
		return
	}
	if !e.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	e.sinceCkpt.Store(0)
	e.ckptWG.Add(1)
	go func() {
		defer e.ckptWG.Done()
		defer e.ckptBusy.Store(false)
		e.Checkpoint()
	}()
}

// Checkpoint durably serializes the current snapshot — each shard's tree
// extracted in Morton-code order — records its epoch, and truncates WAL
// segments (and older checkpoints) the new checkpoint supersedes. The
// snapshot is immutable, so the checkpoint is a consistent cut at its
// epoch no matter how many commits land while it is written. Returns an
// error on a non-durable engine.
func (e *Engine) Checkpoint() error {
	if e.log == nil {
		return errors.New("engine: not durable (no Options.Durability)")
	}
	// The shared close lock serializes checkpoints against Close exactly
	// like updates: a checkpoint in flight when Close begins finishes
	// (Close's exclusive lock waits it out) before the log closes, and one
	// submitted after Close began is rejected — it would otherwise write
	// checkpoint files and prune WAL segments under a directory that a
	// successor process may already be recovering from.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	snap := e.snap.Load()
	c := &wal.Checkpoint{
		Epoch:  snap.epoch,
		NextID: e.nextID.Load(),
		Dim:    e.dim,
		Shards: e.nshard,
		Pts:    geom.Points{Dim: e.dim},
	}
	if part := snap.part; part != nil {
		c.HasPart = true
		c.World = part.world
		c.Bounds = part.bounds
		var data []float64
		var ids []int32
		for s := range snap.trees {
			lo, hi := part.codeRange(s)
			_, pts, sids := snap.trees[s].ExtractRange(part.world, lo, hi)
			data = append(data, pts.Data...)
			ids = append(ids, sids...)
		}
		if len(ids) != snap.size {
			// A live point encoded outside its shard's range (broken
			// partition invariant, should be impossible): fall back to the
			// exhaustive walk rather than checkpoint a partial state.
			c.Pts, c.IDs = snap.Points()
			c.HasPart = false
		} else {
			c.Pts = geom.Points{Data: data, Dim: e.dim}
			c.IDs = ids
		}
	} else {
		c.Pts, c.IDs = snap.Points()
	}
	if err := wal.WriteCheckpoint(e.durFS, e.durDir, c); err != nil {
		return err
	}
	if err := e.log.PrunePast(c.Epoch); err != nil {
		return err
	}
	wal.PruneCheckpoints(e.durFS, e.durDir, c.Epoch)
	return nil
}

// failGroup rejects every request of a group with err: the commit was
// not applied (its WAL append failed before the snapshot swap).
func failGroup(group []*updateReq, err error) {
	for _, r := range group {
		r.res = UpdateResult{Err: err}
		close(r.done)
	}
}
