package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
	"pargeo/internal/wal"
)

// durOpts returns durable engine options over fs with strict sync.
func durOpts(fs wal.VFS, shards int, tune func(*Durability)) Options {
	d := &Durability{Dir: "db", FS: fs, SyncEvery: 1}
	if tune != nil {
		tune(d)
	}
	return Options{Shards: shards, Durability: d}
}

// liveState extracts an engine snapshot's live set as a canonical sorted
// list of "id@coords" strings, comparable across engines and models.
func liveState(pts geom.Points, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%d@%v", id, pts.At(i))
	}
	sort.Strings(out)
	return out
}

func engineState(e *Engine) []string {
	pts, ids := e.Snapshot().Points()
	return liveState(pts, ids)
}

func modelState(m *oracle.LiveSet) []string {
	return liveState(m.Points(), m.IDs)
}

func diffStates(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d live points, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: live set mismatch at %d: %s vs %s", label, i, got[i], want[i])
		}
	}
}

// TestDurableRestartRoundTrip is the basic durability smoke test:
// commit, checkpoint mid-stream, close cleanly, reopen, verify the
// exact live set, epoch continuity, and that the id generator does not
// re-issue ids after restart.
func TestDurableRestartRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	e, err := Open(2, durOpts(fs, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	model := &oracle.LiveSet{Dim: 2}
	rng := rand.New(rand.NewSource(7))
	batch := func(n int) geom.Points {
		p := geom.NewPoints(n, 2)
		for i := 0; i < n; i++ {
			p.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
		}
		return p
	}
	for step := 0; step < 8; step++ {
		ins := batch(16)
		res := e.Insert(ins)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		model.Insert(res.IDs, ins)
		if step == 3 {
			// Delete a quarter of the live set by coordinates.
			del := geom.Points{Dim: 2}
			for i := 0; i < len(model.IDs); i += 4 {
				del.Data = append(del.Data, model.Coords[i*2:(i+1)*2]...)
			}
			dres := e.Delete(del)
			if dres.Err != nil {
				t.Fatal(dres.Err)
			}
			if got := model.Remove(del); got != dres.Deleted {
				t.Fatalf("deleted %d, model %d", dres.Deleted, got)
			}
		}
		if step == 5 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	epoch := e.Epoch()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if res := e.Insert(batch(1)); res.Err != ErrClosed {
		t.Fatalf("insert after close: %v", res.Err)
	}

	re, err := Open(2, durOpts(fs, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Epoch(); got != epoch {
		t.Fatalf("recovered epoch %d, want %d", got, epoch)
	}
	diffStates(t, "after restart", engineState(re), modelState(model))
	// New ids must not collide with recovered ones.
	seen := map[int32]bool{}
	for _, id := range model.IDs {
		seen[id] = true
	}
	ins := batch(8)
	res := re.Insert(ins)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, id := range res.IDs {
		if seen[id] {
			t.Fatalf("id %d re-issued after restart", id)
		}
	}
	model.Insert(res.IDs, ins)
	diffStates(t, "after post-restart insert", engineState(re), modelState(model))
}

// TestDurableDimMismatchRejected: opening a directory that holds data of
// a different dimensionality must fail, not silently corrupt.
func TestDurableDimMismatchRejected(t *testing.T) {
	fs := wal.NewMemFS()
	e, err := Open(3, durOpts(fs, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	e.Insert(geom.Points{Data: []float64{1, 2, 3}, Dim: 3})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := Open(2, durOpts(fs, 2, nil)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

// checkpoint round-trip property test: for every distribution × dim —
// including duplicate-coordinate and tombstone-heavy inputs — the
// serialize→restore cycle (ExtractRange → checkpoint encode → decode →
// NewFromSorted inside Checkpoint/Open) must reproduce a tree that
// answers KNN and range queries exactly like the brute-force oracle over
// the surviving live set.
func TestCheckpointRoundTripProperty(t *testing.T) {
	type distCase struct {
		name string
		gen  func(n, dim int, seed uint64) geom.Points
	}
	cases := []distCase{
		{"Uniform", generators.UniformCube},
		{"InSphere", generators.InSphere},
		{"OnSphere", generators.OnSphere},
		{"SeedSpreader", generators.SeedSpreader},
		{"Duplicated", func(n, dim int, seed uint64) geom.Points {
			base := generators.UniformCube((n+3)/4, dim, seed)
			pts := geom.NewPoints(n, dim)
			for i := 0; i < n; i++ {
				pts.Set(i, base.At(i%base.Len()))
			}
			return pts
		}},
		{"Collinear", func(n, dim int, seed uint64) geom.Points {
			pts := geom.NewPoints(n, dim)
			row := make([]float64, dim)
			for i := 0; i < n; i++ {
				for c := range row {
					row[c] = float64(i) * float64(c+1)
				}
				pts.Set(i, row)
			}
			return pts
		}},
		{"SinglePoint", func(n, dim int, seed uint64) geom.Points {
			pts := geom.NewPoints(n, dim)
			row := make([]float64, dim)
			for c := range row {
				row[c] = 3.25
			}
			for i := 0; i < n; i++ {
				pts.Set(i, row)
			}
			return pts
		}},
	}
	const n = 240
	dims := []int{2, 3, 5}
	if testing.Short() {
		dims = []int{2, 3}
	}
	for _, tc := range cases {
		for _, dim := range dims {
			t.Run(fmt.Sprintf("%s/d%d", tc.name, dim), func(t *testing.T) {
				fs := wal.NewMemFS()
				e, err := Open(dim, durOpts(fs, 4, nil))
				if err != nil {
					t.Fatal(err)
				}
				model := &oracle.LiveSet{Dim: dim}
				pts := tc.gen(n, dim, 11)
				res := e.Insert(pts)
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				model.Insert(res.IDs, pts)
				// Tombstone-heavy: delete half the batch by coordinates
				// (under Duplicated/SinglePoint this wipes whole duplicate
				// groups, exactly the BDL delete semantics).
				del := geom.Points{Dim: dim}
				for i := 0; i < n; i += 2 {
					del.Data = append(del.Data, pts.At(i)...)
				}
				dres := e.Delete(del)
				if dres.Err != nil {
					t.Fatal(dres.Err)
				}
				if got := model.Remove(del); got != dres.Deleted {
					t.Fatalf("deleted %d, model %d", dres.Deleted, got)
				}
				if err := e.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if err := e.Close(); err != nil {
					t.Fatal(err)
				}

				re, err := Open(dim, durOpts(fs, 4, nil))
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				diffStates(t, "restored", engineState(re), modelState(model))

				// Query equivalence vs the brute-force oracle.
				live := model.Points()
				for qi := 0; qi < 12; qi++ {
					q := pts.At((qi * 17) % n)
					for _, k := range []int{1, 4} {
						got := re.KNN(q, k)
						want := oracle.KNNDists(live, q, k, -1)
						if len(got) != len(want) {
							t.Fatalf("q%d k%d: %d neighbors, oracle %d", qi, k, len(got), len(want))
						}
						for j, id := range got {
							c := model.CoordsOf(id)
							if c == nil {
								t.Fatalf("q%d k%d: dead id %d", qi, k, id)
							}
							if d := geom.SqDist(q, c); d != want[j] {
								t.Fatalf("q%d k%d: neighbor %d at %v, oracle %v", qi, k, j, d, want[j])
							}
						}
					}
					box := geom.EmptyBox(dim)
					box.Expand(pts.At((qi * 13) % n))
					box.Expand(pts.At((qi*13 + 31) % n))
					gotIDs := append([]int32(nil), re.RangeSearch(box)...)
					var wantIDs []int32
					for i, id := range model.IDs {
						if box.Contains(live.At(i)) {
							wantIDs = append(wantIDs, id)
						}
					}
					sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
					sort.Slice(wantIDs, func(a, b int) bool { return wantIDs[a] < wantIDs[b] })
					if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
						t.Fatalf("q%d: range ids %v, oracle %v", qi, gotIDs, wantIDs)
					}
					if c := re.RangeCount(box); c != len(wantIDs) {
						t.Fatalf("q%d: range count %d, oracle %d", qi, c, len(wantIDs))
					}
				}
			})
		}
	}
}

// TestCloseWithInflightCommits is the Close regression test: concurrent
// writers race a Close; every update must either be acknowledged durably
// or rejected with ErrClosed (never hang, never ack-then-lose), the
// engine's goroutines must exit, and the clean shutdown must leave no
// torn tail — everything acknowledged must survive reopen.
func TestCloseWithInflightCommits(t *testing.T) {
	// Warm up global state (parlay workers, pools) so the goroutine
	// baseline below measures only this test's leaks.
	func() {
		fs := wal.NewMemFS()
		e, _ := Open(2, durOpts(fs, 4, nil))
		e.Insert(geom.Points{Data: []float64{1, 1}, Dim: 2})
		e.Close()
	}()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	fs := wal.NewMemFS()
	opts := durOpts(fs, 4, nil)
	opts.Rebalance = true
	opts.RebalanceInterval = time.Millisecond
	e, err := Open(2, opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	type ack struct {
		id int32
		x  float64
		y  float64
	}
	ackedCh := make(chan ack, 1<<16)
	var nAcked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				x, y := rng.Float64()*100, rng.Float64()*100
				res := e.Insert(geom.Points{Data: []float64{x, y}, Dim: 2})
				if res.Err != nil {
					if res.Err != ErrClosed {
						t.Errorf("writer %d: %v", w, res.Err)
					}
					return
				}
				// Acked: with SyncEvery=1 this point is durable NOW.
				ackedCh <- ack{res.IDs[0], x, y}
				nAcked.Add(1)
			}
		}()
	}
	// Close only once real commits are in flight, so the shutdown truly
	// races active writers rather than an idle engine.
	for deadline := time.Now().Add(5 * time.Second); nAcked.Load() < 50; {
		if time.Now().After(deadline) {
			t.Fatal("writers made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(ackedCh)

	// No goroutine leak: rebalancer, checkpointer, and all commit paths
	// must have unwound. (Parlay's worker pool is global and counted in
	// the baseline.)
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutine leak: %d after close, baseline %d", g, baseline)
	}

	re, err := Open(2, durOpts(fs, 4, nil))
	if err != nil {
		t.Fatalf("reopen after clean shutdown: %v", err)
	}
	defer re.Close()
	pts, ids := re.Snapshot().Points()
	have := map[int32][]float64{}
	for i, id := range ids {
		have[id] = pts.At(i)
	}
	nacked := 0
	for a := range ackedCh {
		nacked++
		c, ok := have[a.id]
		if !ok {
			t.Fatalf("acked id %d lost on clean shutdown", a.id)
		}
		if c[0] != a.x || c[1] != a.y {
			t.Fatalf("acked id %d coords %v, want [%v %v]", a.id, c, a.x, a.y)
		}
	}
	if nacked < 50 {
		t.Fatalf("only %d updates acked before Close; test raced to nothing", nacked)
	}
}

// TestCloseRelaxedModeFlushesTail: in SyncEvery>1 mode a clean Close
// must fsync the unsynced tail so nothing acknowledged is lost.
func TestCloseRelaxedModeFlushesTail(t *testing.T) {
	fs := wal.NewMemFS()
	e, err := Open(2, durOpts(fs, 2, func(d *Durability) { d.SyncEvery = 64 }))
	if err != nil {
		t.Fatal(err)
	}
	model := &oracle.LiveSet{Dim: 2}
	for i := 0; i < 100; i++ {
		p := geom.Points{Data: []float64{float64(i), float64(i % 7)}, Dim: 2}
		res := e.Insert(p)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		model.Insert(res.IDs, p)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(2, durOpts(fs, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	diffStates(t, "relaxed clean shutdown", engineState(re), modelState(model))
}
