package engine

import (
	"math"
	"sort"
	"time"

	"pargeo/internal/bdltree"
	"pargeo/internal/geom"
	"pargeo/internal/morton"
	"pargeo/internal/wal"
)

// Online repartitioning. The founding commit's partition is a guess frozen
// at the first insertion: a workload that drifts or concentrates afterward
// piles every write onto one shard's committer (collapsing to a single
// commit stream) and, once points leave the founding world box entirely,
// aliases all of them into the boundary cells of the edge shards. The
// rebalancer tracks per-shard load online and migrates the partition to
// follow it, in two granularities:
//
//   - split/merge: the hot shard's Morton range is cut at the weighted
//     median code of its live points and the two coldest adjacent shards
//     are fused, keeping S constant (so the per-shard lock/combiner vector
//     never changes shape). Only the three affected trees are rebuilt; the
//     rest of the shard vector is reused as-is.
//   - full repartition: when enough inserted rows have landed outside the
//     partition's world box, every boundary is re-placed at fresh quantiles
//     under a widened world (live bounding box plus margin), so clamped
//     codes stop aliasing and the drifted mass spreads over all S shards.
//
// Migration safety: a migration runs with EVERY shard commit lock held (in
// ascending order, the same protocol multi-shard committers use, so it
// cannot deadlock against them), which freezes the write path while the
// affected trees are rebuilt from their sorted live points. The new
// partition and the new shard vector are then published in ONE snapshot
// pointer swap under the publish lock — queries, which only ever read a
// snapshot's coupled (partition, tree-vector) pair, observe the migration
// atomically and keep seeing every committed batch all-or-nothing.
// Committers that routed a batch under the old partition detect the swap
// under their shard locks (see commitShard / commitMulti) and re-route.

// RebalanceAction reports what a rebalance pass did.
type RebalanceAction int

// Rebalance pass outcomes.
const (
	// RebalanceNone: the partition was left unchanged.
	RebalanceNone RebalanceAction = iota
	// RebalanceSplitMerge: one hot shard was split at its weighted median
	// code and two cold adjacent shards were merged.
	RebalanceSplitMerge
	// RebalanceRepartition: the whole partition was rebuilt under a widened
	// world box.
	RebalanceRepartition
)

// Rebalancer policy constants.
const (
	// driftMinRows and driftFraction gate the full repartition: it fires
	// once at least driftMinRows inserted rows — and at least driftFraction
	// of the live size — have routed outside the world box.
	driftMinRows  = 256
	driftFraction = 1.0 / 32

	// loadEWMAWeight converts the committed-batch EWMA (recent rows per
	// commit) into live-size units for the hot-shard score, so a shard
	// absorbing the whole write stream reads hot even while deletions keep
	// its live size flat.
	loadEWMAWeight = 16.0

	// minHotRows is the smallest committed-rows EWMA the write-skew
	// trigger takes seriously; below it a shard's "heat" is noise.
	minHotRows = 128.0

	// loadDecay cools every shard's EWMA each pass, so a shard stays hot
	// only while commits keep landing on it.
	loadDecay = 0.9

	// worldPad widens each repartitioned world-box side by this fraction of
	// the live extent, giving a drifting workload headroom before the next
	// repartition; successive repartitions of a steady drift are therefore
	// geometrically spaced.
	worldPad = 0.5
)

// Rebalances returns the number of completed partition migrations
// (split/merge and full repartitions).
func (e *Engine) Rebalances() uint64 { return e.rebalanced.Load() }

// ShardLoads returns each shard's current load score: live size plus the
// weighted committed-batch EWMA the rebalancer scores hot shards by.
func (e *Engine) ShardLoads() []float64 {
	snap := e.snap.Load()
	out := make([]float64, e.nshard)
	for i := range out {
		sz := 0
		if i < len(snap.trees) {
			sz = snap.trees[i].Size()
		}
		out[i] = float64(sz) + loadEWMAWeight*e.shards[i].loadEWMA()
	}
	return out
}

// rebalanceLoop is the background rebalancer started by New when
// Options.Rebalance is set on a sharded engine; Close stops it.
func (e *Engine) rebalanceLoop() {
	t := time.NewTicker(e.opts.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.Rebalance()
		}
	}
}

// Rebalance runs one rebalance pass synchronously and reports what it did.
// It is a no-op on an unsharded engine and before the founding commit.
// Safe for concurrent use (migrating passes serialize on the shard commit
// locks); tests and callers that disable the background loop can drive
// migration deterministically through it.
//
// A pass is cheap when nothing is wrong: the triggers are evaluated
// lock-free against the published snapshot and the atomic EWMAs, so a
// balanced engine's write path is never frozen by the ticker. Only a
// firing trigger escalates to the locked phase (every shard commit lock,
// ascending — queries keep running against the snapshot throughout), where
// the decision is re-derived before acting. A locked pass that fires a
// trigger but finds no admissible migration (unsplittable codes, vetoed
// cuts, no merge pair) backs off exponentially, so a persistently
// triggered-but-unactionable shard cannot keep re-paying the locked
// analysis every tick.
func (e *Engine) Rebalance() RebalanceAction {
	if e.nshard < 2 || e.part.Load() == nil {
		return RebalanceNone
	}
	for _, sh := range e.shards {
		sh.scaleLoad(loadDecay)
	}
	if d := e.triggers(e.snap.Load()); !d.fired {
		return RebalanceNone
	}
	if e.skipPasses.Load() > 0 {
		e.skipPasses.Add(-1)
		return RebalanceNone
	}

	for _, sh := range e.shards {
		sh.commitMu.Lock()
	}
	defer func() {
		for i := e.nshard - 1; i >= 0; i-- {
			e.shards[i].commitMu.Unlock()
		}
	}()

	snap := e.snap.Load()
	part := e.part.Load() // stable: swaps require the locks we hold
	act := e.rebalanceLocked(snap, part)
	if act == RebalanceNone {
		// Triggered but nothing actionable: exponential backoff (capped at
		// ~1s of default-interval passes) before the next locked attempt.
		next := e.noopStreak.Add(1)
		if next > 6 {
			next = 6
		}
		e.skipPasses.Store(1<<next - 1)
	} else {
		e.noopStreak.Store(0)
		e.skipPasses.Store(0)
		e.rebalanced.Add(1)
	}
	return act
}

// decision is one evaluation of the migration triggers.
type decision struct {
	fired       bool
	repartition bool      // drift trigger: full repartition
	hot         int       // shard to split (when !repartition)
	writeTrig   bool      // hot fired on write share rather than score
	scores      []float64 // per-shard size + weighted-EWMA scores
	ewmas       []float64 // per-shard committed-rows EWMAs
}

// triggers evaluates the migration triggers against a snapshot: the drift
// counter (full repartition) and the two hot-shard conditions. Pure reads
// — callable lock-free as the pre-check, and re-run under the locks before
// acting.
func (e *Engine) triggers(snap *Snapshot) decision {
	if snap.size == 0 || len(snap.trees) != e.nshard {
		return decision{}
	}
	if oow := e.outOfWorld.Load(); oow >= driftMinRows && float64(oow) >= driftFraction*float64(snap.size) {
		return decision{fired: true, repartition: true}
	}
	scores := make([]float64, e.nshard)
	ewmas := make([]float64, e.nshard)
	total, totalE := 0.0, 0.0
	hot, hotE := 0, 0
	for i := range scores {
		ewmas[i] = e.shards[i].loadEWMA()
		scores[i] = float64(snap.trees[i].Size()) + loadEWMAWeight*ewmas[i]
		total += scores[i]
		totalE += ewmas[i]
		if scores[i] > scores[hot] {
			hot = i
		}
		if ewmas[i] > ewmas[hotE] {
			hotE = i
		}
	}
	f := e.opts.RebalanceFactor
	// Two independent hot triggers: a shard dominating by combined score
	// (size imbalance), or one absorbing a disproportionate share of the
	// recent write rows even while its size stays unremarkable — the
	// signature of a hot spot confined to a sliver of a shard.
	if scores[hot] > f*total/float64(e.nshard) {
		return decision{fired: true, hot: hot, scores: scores, ewmas: ewmas}
	}
	if ewmas[hotE] >= minHotRows && ewmas[hotE] > f*totalE/float64(e.nshard) {
		return decision{fired: true, hot: hotE, writeTrig: true, scores: scores, ewmas: ewmas}
	}
	return decision{}
}

// rebalanceLocked re-derives the triggers under all shard locks and
// executes the indicated migration.
func (e *Engine) rebalanceLocked(snap *Snapshot, part *partition) RebalanceAction {
	d := e.triggers(snap)
	switch {
	case !d.fired:
		return RebalanceNone
	case d.repartition:
		if e.repartitionLocked(snap) {
			return RebalanceRepartition
		}
		return RebalanceNone
	default:
		return e.splitMergeLocked(snap, part, d.scores, d.ewmas, d.hot, d.writeTrig)
	}
}

// splitMergeLocked splits the hot shard's Morton range at the weighted
// median code (the median of its recent-write sample, falling back to its
// live-point median) and merges the coldest adjacent pair, so the shard
// count stays S. writeTrig selects the merge guard: a size-triggered split
// refuses a merge that would just mint the next hot shard by score; a
// write-triggered split refuses one that would concentrate the write
// stream again, but happily fuses big COLD shards. Returns RebalanceNone
// when the hot shard cannot be split (too few points, all codes equal) or
// no admissible merge pair exists.
func (e *Engine) splitMergeLocked(snap *Snapshot, part *partition, scores, ewmas []float64, hot int, writeTrig bool) RebalanceAction {
	S := e.nshard
	lo, hi := part.codeRange(hot)
	codes, pts, ids := snap.trees[hot].ExtractRange(part.world, lo, hi)
	if len(ids) != snap.trees[hot].Size() {
		// A live point encodes outside its shard's range: the partition
		// invariant is broken (should be impossible). Rebuilding everything
		// restores it; losing points to a bad incremental cut must not.
		if e.repartitionLocked(snap) {
			return RebalanceRepartition
		}
		return RebalanceNone
	}
	if len(codes) < 2 || codes[0] == codes[len(codes)-1] {
		return RebalanceNone // nothing to separate
	}
	// Weighted median cut: the median Morton code of the shard's recent
	// committed rows, so the boundary lands in the middle of the WRITE
	// load — a hot spot occupying a sliver of a big shard is isolated in
	// one or two splits, where a population median would dilute it across
	// O(log) splits. Fallback: the live-point median.
	cutCode, ok, streamsDivide := e.writeMedianCut(hot, part, lo, hi, codes)
	if ok && !streamsDivide {
		// The write sample says recent update requests would STRADDLE any
		// boundary near the write median — a cut here would turn the hot
		// stream's single-shard commits into multi-shard ones instead of
		// dividing it. For a write-triggered split that means the split
		// cannot help at all: leave the partition alone. For a
		// size-triggered split the imbalance is real and must still be
		// fixed, but by a clean full repartition (fresh quantiles, no
		// boundary through the live write region) rather than a cut that
		// would sabotage the write path it is trying to relieve.
		if writeTrig {
			return RebalanceNone
		}
		if e.repartitionLocked(snap) {
			return RebalanceRepartition
		}
		return RebalanceNone
	}
	if !ok {
		pivot := codes[len(codes)/2]
		if pivot > codes[0] {
			cutCode = pivot - 1
		} else {
			j := sort.Search(len(codes), func(i int) bool { return codes[i] > pivot })
			cutCode = codes[j] - 1
		}
	}
	cutIdx := sort.Search(len(codes), func(i int) bool { return codes[i] > cutCode })

	// Build the post-split span list: every shard's inclusive upper bound
	// and tree, with the hot shard replaced by its two halves.
	type span struct {
		hi    uint64 // inclusive upper bound of the span's code range
		tree  *bdltree.Tree
		score float64
		ewma  float64
		fresh bool // one of the split halves
	}
	opts := bdltree.Options{Split: e.opts.Split, BufferSize: e.opts.BufferSize}
	spans := make([]span, 0, S+1)
	for s := 0; s < S; s++ {
		bound := morton.MaxCode(e.dim)
		if s < S-1 {
			bound = part.bounds[s]
		}
		if s == hot {
			left := bdltree.NewFromSorted(e.dim, opts, pts.Slice(0, cutIdx), ids[:cutIdx])
			right := bdltree.NewFromSorted(e.dim, opts, pts.Slice(cutIdx, pts.Len()), ids[cutIdx:])
			halfE := ewmas[s] / 2
			spans = append(spans,
				span{hi: cutCode, tree: left, score: scores[s] / 2, ewma: halfE, fresh: true},
				span{hi: bound, tree: right, score: scores[s] / 2, ewma: halfE, fresh: true})
			continue
		}
		spans = append(spans, span{hi: bound, tree: snap.trees[s], score: scores[s], ewma: ewmas[s]})
	}

	// Coldest admissible adjacent pair, excluding the freshly split pair.
	best, bestScore := -1, math.Inf(1)
	for i := 0; i+1 < len(spans); i++ {
		if spans[i].fresh && spans[i+1].fresh {
			continue
		}
		c := spans[i].score + spans[i+1].score
		if writeTrig {
			// Don't re-concentrate the stream we are dividing; fusing big
			// cold shards is exactly the intended counter-move.
			if spans[i].ewma+spans[i+1].ewma > ewmas[hot]/2 {
				continue
			}
		} else if c >= scores[hot] {
			continue // merging would just mint the next hot shard
		}
		if c < bestScore {
			best, bestScore = i, c
		}
	}
	if best < 0 {
		return RebalanceNone
	}
	merged := span{
		hi:    spans[best+1].hi,
		tree:  bdltree.Merge(part.world, spans[best].tree, spans[best+1].tree),
		ewma:  spans[best].ewma + spans[best+1].ewma,
		score: bestScore,
	}
	spans = append(spans[:best], append([]span{merged}, spans[best+2:]...)...)

	newBounds := make([]uint64, S-1)
	newTrees := make([]*bdltree.Tree, S)
	size := 0
	for i, sp := range spans {
		if i < S-1 {
			newBounds[i] = sp.hi
		}
		newTrees[i] = sp.tree
		size += sp.tree.Size()
	}
	if !e.swapPartition(newPartitionFromBounds(e.dim, part.world, newBounds), newTrees, size) {
		return RebalanceNone
	}
	for i, sp := range spans {
		e.shards[i].load.Store(math.Float64bits(sp.ewma))
	}
	return RebalanceSplitMerge
}

// writeMedianCut returns the median Morton code (under part's world) of
// shard s's recent-write sample, clamped so that both sides of the cut
// keep at least one live point; ok=false when the sample is too thin to
// trust. streamsDivide reports whether the sampled update requests mostly
// fall WHOLLY on one side of that cut — the precondition for a
// write-triggered split to actually parallelize the stream rather than
// turn each request into a multi-shard commit. live is the shard's sorted
// live code list (len >= 2, not all equal). Caller holds every shard lock,
// so the ring is stable.
func (e *Engine) writeMedianCut(s int, part *partition, lo, hi uint64, live []uint64) (cut uint64, ok, streamsDivide bool) {
	sh := e.shards[s]
	n := sh.recentCount()
	if n < 4*samplePerCommit {
		return 0, false, false
	}
	type row struct {
		code uint64
		req  int32
	}
	sample := make([]row, 0, n)
	for i := 0; i < n; i++ {
		c := morton.EncodeCols(sh.recent, recentRows, i, e.dim, part.world)
		if c >= lo && c <= hi {
			sample = append(sample, row{c, sh.recentReq[i]})
		}
	}
	if len(sample) < 2*samplePerCommit {
		return 0, false, false // mostly stale rows from before a migration
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i].code < sample[j].code })
	cut = sample[len(sample)/2].code
	// Clamp into the open interior of the live code span.
	if cut >= live[len(live)-1] {
		cut = live[len(live)-1] - 1
	}
	if cut < live[0] {
		cut = live[0]
	}
	// Straddle census: of the sampled requests with at least two surviving
	// rows (a single-row request cannot testify either way — ring wrap and
	// the range filter routinely thin old requests down to one row), how
	// many have rows on both sides of the cut?
	side := make(map[int32]uint8, 32)
	rows := make(map[int32]int, 32)
	for _, r := range sample {
		bit := uint8(1)
		if r.code > cut {
			bit = 2
		}
		side[r.req] |= bit
		rows[r.req]++
	}
	multi, straddle := 0, 0
	for req, m := range side {
		if rows[req] < 2 {
			continue
		}
		multi++
		if m == 3 {
			straddle++
		}
	}
	if multi == 0 {
		// Every surviving request is a single row: point-sized updates
		// cannot straddle any boundary, so the cut divides the stream.
		return cut, true, true
	}
	streamsDivide = straddle*3 <= multi
	return cut, true, streamsDivide
}

// repartitionLocked rebuilds the whole partition from the snapshot's live
// points under a widened world box: fresh quantile boundaries, all S trees
// rebuilt in Morton order. Resets the drift counter.
func (e *Engine) repartitionLocked(snap *Snapshot) bool {
	pts, ids := snap.Points()
	if pts.Len() == 0 {
		e.outOfWorld.Store(0)
		return false
	}
	world := geom.BoundingBoxAll(pts)
	for d := 0; d < e.dim; d++ {
		if ext := world.Max[d] - world.Min[d]; ext > 0 {
			world.Min[d] -= worldPad * ext
			world.Max[d] += worldPad * ext
		}
	}
	part, trees := e.shardedBuild(world, pts, ids)
	size := 0
	for _, t := range trees {
		size += t.Size()
	}
	if !e.swapPartition(part, trees, size) {
		return false
	}
	e.outOfWorld.Store(0)
	// The drifted mass now spreads over fresh ranges; keep the total write
	// heat but spread it evenly, letting real commits re-concentrate it.
	tot := 0.0
	for _, sh := range e.shards {
		tot += sh.loadEWMA()
	}
	for _, sh := range e.shards {
		sh.load.Store(math.Float64bits(tot / float64(e.nshard)))
	}
	return true
}

// swapPartition is a migration's phase two: publish the new partition and
// its matching shard vector in one snapshot pointer swap under the publish
// lock. Caller holds every shard commit lock, so no commit's publish can
// interleave and the routing pointer update cannot race a router that has
// already validated under a held lock.
//
// A migration publishes an epoch without changing the live point set, so
// on a durable engine it logs a data-free note record to keep the WAL's
// epoch sequence gap-free. If the append fails (poisoned or closed log)
// the migration is abandoned — returns false with the partition
// untouched — keeping the in-memory epoch sequence aligned with the
// durable one.
func (e *Engine) swapPartition(part *partition, trees []*bdltree.Tree, size int) bool {
	e.publishMu.Lock()
	cur := e.snap.Load()
	epoch := cur.epoch + 1
	if e.log != nil {
		if _, err := e.log.Append(wal.KindNote, epoch, nil); err != nil {
			e.publishMu.Unlock()
			return false
		}
	}
	next := &Snapshot{eng: e, part: part, trees: trees, epoch: epoch, size: size}
	e.snap.Store(next)
	e.retain(next)
	e.part.Store(part)
	e.publishMu.Unlock()
	// Shard indices shift meaning across a migration; drop the recent-write
	// rings rather than misattribute their rows (they refill within a few
	// commits, and the EWMAs are remapped explicitly by the callers).
	for _, sh := range e.shards {
		sh.recentW = 0
	}
	return true
}
