package engine

import (
	"errors"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
	"pargeo/internal/wal"
)

// TestRetainWindow verifies the sliding AsOf window: the last RetainEpochs
// epochs resolve, older ones fail typed, future ones fail typed, and the
// window tracks the live epoch as commits advance.
func TestRetainWindow(t *testing.T) {
	const keep = 4
	e := New(2, Options{BufferSize: 64, RetainEpochs: keep})
	defer e.Close()

	sizes := map[uint64]int{0: 0} // epoch -> live size at that epoch
	total := 0
	for round := 0; round < 10; round++ {
		batch := generators.UniformCube(50, 2, uint64(round)+1)
		res := e.Insert(batch)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		total += batch.Len()
		sizes[res.Epoch] = total
	}

	live := e.Epoch()
	if live != 10 {
		t.Fatalf("live epoch %d, want 10", live)
	}
	for epoch := uint64(0); epoch <= live; epoch++ {
		s, err := e.AsOf(epoch)
		inWindow := epoch > live-keep
		if inWindow {
			if err != nil {
				t.Fatalf("AsOf(%d) inside window: %v", epoch, err)
			}
			if s.Epoch() != epoch {
				t.Fatalf("AsOf(%d) returned epoch %d", epoch, s.Epoch())
			}
			if s.Size() != sizes[epoch] {
				t.Fatalf("AsOf(%d) size %d, want %d", epoch, s.Size(), sizes[epoch])
			}
		} else {
			if !errors.Is(err, ErrEpochNotRetained) {
				t.Fatalf("AsOf(%d) outside window: got %v, want ErrEpochNotRetained", epoch, err)
			}
		}
	}
	if _, err := e.AsOf(live + 1); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("AsOf(future) = %v, want ErrEpochNotRetained", err)
	}
	if w := e.RetainWatermark(); w != live-keep+1 {
		t.Fatalf("watermark %d, want %d", w, live-keep+1)
	}

	st := e.Stats()
	if st.RetainedEpochs != keep {
		t.Fatalf("RetainedEpochs %d, want %d", st.RetainedEpochs, keep)
	}
	if st.PinnedEpochs != 0 {
		t.Fatalf("PinnedEpochs %d, want 0", st.PinnedEpochs)
	}
	if st.RetainedBytes == 0 {
		t.Fatal("RetainedBytes must be nonzero with old versions retained")
	}
}

// TestRetainDisabled checks the default: no window, only the live epoch
// resolves, and RetainedBytes stays zero.
func TestRetainDisabled(t *testing.T) {
	e := New(2, Options{BufferSize: 64})
	defer e.Close()
	res := e.Insert(generators.UniformCube(100, 2, 1))
	e.Insert(generators.UniformCube(100, 2, 2))

	if _, err := e.AsOf(e.Epoch()); err != nil {
		t.Fatalf("AsOf(live): %v", err)
	}
	if _, err := e.AsOf(res.Epoch); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("AsOf(previous) = %v, want ErrEpochNotRetained", err)
	}
	st := e.Stats()
	if st.RetainedEpochs != 1 || st.RetainedBytes != 0 {
		t.Fatalf("disabled retention: RetainedEpochs=%d RetainedBytes=%d, want 1/0",
			st.RetainedEpochs, st.RetainedBytes)
	}
}

// TestPinOutlivesWindow pins an epoch, advances the live epoch far past the
// retention window, and checks the pin keeps the epoch resolvable (with its
// contents intact) until the last nested Release.
func TestPinOutlivesWindow(t *testing.T) {
	e := New(2, Options{BufferSize: 64, RetainEpochs: 2})
	defer e.Close()

	first := generators.UniformCube(80, 2, 7)
	if res := e.Insert(first); res.Err != nil {
		t.Fatal(res.Err)
	}
	pinned := e.Pin()
	second := e.Pin() // nested pin of the same epoch
	pinnedEpoch := pinned.Epoch()
	wantSize := pinned.Size()

	for round := 0; round < 8; round++ {
		e.Insert(generators.UniformCube(40, 2, uint64(round)+100))
	}
	if e.Epoch() <= pinnedEpoch+2 {
		t.Fatal("test needs the pinned epoch to fall out of the ring")
	}

	s, err := e.AsOf(pinnedEpoch)
	if err != nil {
		t.Fatalf("AsOf(pinned) after trim: %v", err)
	}
	if s.Size() != wantSize {
		t.Fatalf("pinned snapshot size %d, want %d", s.Size(), wantSize)
	}
	if got := e.Stats().PinnedEpochs; got != 1 {
		t.Fatalf("PinnedEpochs %d, want 1 (nested pins share the epoch)", got)
	}

	second.Release()
	if _, err := e.AsOf(pinnedEpoch); err != nil {
		t.Fatalf("epoch must stay pinned until the LAST release: %v", err)
	}
	pinned.Release()
	if _, err := e.AsOf(pinnedEpoch); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("AsOf after final release = %v, want ErrEpochNotRetained", err)
	}
	// The caller's own handle stays usable after Release.
	if got := pinned.KNN(geom.Points{Data: []float64{0.5, 0.5}, Dim: 2}, 3); len(got) != 1 {
		t.Fatalf("released handle must still answer queries: %v", got)
	}
}

// TestPinEpoch pins a historical (non-live) retained epoch and checks the
// typed failure for epochs outside the window.
func TestPinEpoch(t *testing.T) {
	e := New(2, Options{BufferSize: 64, RetainEpochs: 3})
	defer e.Close()
	var epochs []uint64
	for round := 0; round < 6; round++ {
		res := e.Insert(generators.UniformCube(30, 2, uint64(round)+1))
		epochs = append(epochs, res.Epoch)
	}
	old := epochs[1] // long gone from a 3-epoch ring
	if _, err := e.PinEpoch(old); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("PinEpoch(trimmed) = %v, want ErrEpochNotRetained", err)
	}
	if _, err := e.PinEpoch(e.Epoch() + 5); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("PinEpoch(future) = %v, want ErrEpochNotRetained", err)
	}
	mid := epochs[4]
	s, err := e.PinEpoch(mid)
	if err != nil {
		t.Fatalf("PinEpoch(%d): %v", mid, err)
	}
	for round := 0; round < 6; round++ {
		e.Insert(generators.UniformCube(30, 2, uint64(round)+50))
	}
	if _, err := e.AsOf(mid); err != nil {
		t.Fatalf("pinned historical epoch must survive the window: %v", err)
	}
	s.Release()
}

// TestReleaseUnbalancedPanics: Release without a matching Pin is a caller
// bug and must not silently unpin someone else's epoch.
func TestReleaseUnbalancedPanics(t *testing.T) {
	e := New(2, Options{BufferSize: 64})
	defer e.Close()
	e.Insert(generators.UniformCube(10, 2, 1))
	s := e.Snapshot() // never pinned
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Pin must panic")
		}
	}()
	s.Release()
}

// TestRetainNoteEpochs is the regression test for the rebalance/retention
// interaction: a migration publishes an epoch whose durable form is a
// data-free KindNote record, and that epoch must be a first-class retained
// version — resolvable through AsOf, answering queries, with the same live
// set as the epoch before it.
func TestRetainNoteEpochs(t *testing.T) {
	dir := t.TempDir()
	fs := wal.OSFS{}
	e, err := Open(2, Options{
		BufferSize:   32,
		Shards:       4,
		RetainEpochs: 64,
		Durability:   &Durability{Dir: dir, FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Concentrate writes to make one shard hot, then force a migration.
	for round := 0; round < 6; round++ {
		e.Insert(generators.UniformCube(200, 2, uint64(round)+1))
	}
	hot := generators.UniformCube(800, 2, 99)
	for i := 0; i < hot.Len(); i++ {
		hot.At(i)[0] = hot.At(i)[0] * 0.05 // squeeze into a corner
	}
	e.Insert(hot)

	before := e.Epoch()
	act := e.Rebalance()
	if act == RebalanceNone {
		t.Skip("no migration triggered; nothing to regress against")
	}
	noteEpoch := before + 1
	if e.Epoch() < noteEpoch {
		t.Fatalf("rebalance did not publish: epoch %d", e.Epoch())
	}

	pre, err := e.AsOf(before)
	if err != nil {
		t.Fatalf("AsOf(pre-migration): %v", err)
	}
	note, err := e.AsOf(noteEpoch)
	if err != nil {
		t.Fatalf("AsOf(note epoch): %v — a KindNote publish must be retained", err)
	}
	if note.Size() != pre.Size() {
		t.Fatalf("migration changed the live set: %d -> %d", pre.Size(), note.Size())
	}
	// Same answers from both sides of the migration.
	q := []float64{0.02, 0.5}
	preIDs := make(map[int32]bool)
	for _, id := range pre.KNN(geom.Points{Data: q, Dim: 2}, 10)[0] {
		preIDs[id] = true
	}
	for _, id := range note.KNN(geom.Points{Data: q, Dim: 2}, 10)[0] {
		if !preIDs[id] {
			t.Fatalf("note-epoch KNN returned id %d absent from the pre-migration answer", id)
		}
	}
}

// TestRetainNoopAck checks the no-op-ack/retention interaction: the epoch a
// no-op commit acknowledges at is always one that actually published, so
// with retention on it must resolve through AsOf.
func TestRetainNoopAck(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(2, Options{
		BufferSize:   64,
		RetainEpochs: 16,
		Durability:   &Durability{Dir: dir, FS: wal.OSFS{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	res := e.Insert(generators.UniformCube(100, 2, 1))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Delete a point that does not exist: a no-op group, acknowledged
	// without publishing.
	miss := geom.Points{Data: []float64{1e6, 1e6}, Dim: 2}
	noop := e.Delete(miss)
	if noop.Err != nil {
		t.Fatal(noop.Err)
	}
	if noop.Deleted != 0 {
		t.Fatalf("deleted %d, want 0", noop.Deleted)
	}
	s, err := e.AsOf(noop.Epoch)
	if err != nil {
		t.Fatalf("AsOf(no-op ack epoch %d): %v", noop.Epoch, err)
	}
	if s.Size() != 100 {
		t.Fatalf("no-op ack epoch size %d, want 100", s.Size())
	}
	if e.Epoch() != res.Epoch {
		t.Fatalf("no-op must not publish: epoch %d, want %d", e.Epoch(), res.Epoch)
	}
}

// TestRetainRecovery restates the documented semantics: pins and the
// retention window are in-memory only. A reopened engine resolves exactly
// the recovered epoch; pinned and retained history is gone.
func TestRetainRecovery(t *testing.T) {
	dir := t.TempDir()
	fs := wal.OSFS{}
	opts := Options{BufferSize: 64, RetainEpochs: 8, Durability: &Durability{Dir: dir, FS: fs}}
	e, err := Open(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	var old uint64
	for round := 0; round < 5; round++ {
		res := e.Insert(generators.UniformCube(40, 2, uint64(round)+1))
		if round == 2 {
			old = res.Epoch
			if _, err := e.PinEpoch(old); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveEpoch, liveSize := e.Epoch(), e.Size()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Epoch() != liveEpoch || e2.Size() != liveSize {
		t.Fatalf("recovered epoch/size %d/%d, want %d/%d", e2.Epoch(), e2.Size(), liveEpoch, liveSize)
	}
	st := e2.Stats()
	if st.RetainedEpochs != 1 || st.PinnedEpochs != 0 {
		t.Fatalf("recovered retention state %d/%d, want 1 retained, 0 pinned",
			st.RetainedEpochs, st.PinnedEpochs)
	}
	if _, err := e2.AsOf(old); !errors.Is(err, ErrEpochNotRetained) {
		t.Fatalf("pre-crash pin must not survive recovery: AsOf = %v", err)
	}
	if _, err := e2.AsOf(liveEpoch); err != nil {
		t.Fatalf("AsOf(recovered epoch): %v", err)
	}
}

// TestAnalyticsJobs checks KNNGraph and CoreDistances against the oracle's
// self-excluding brute force on a pinned snapshot.
func TestAnalyticsJobs(t *testing.T) {
	e := New(2, Options{BufferSize: 32, Shards: 4})
	defer e.Close()
	res := e.Insert(generators.UniformCube(300, 2, 11))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	s := e.Pin()
	defer s.Release()

	// Mutate past the pin so the job provably reads the pinned version.
	e.Insert(generators.UniformCube(300, 2, 12))

	pts, gids := s.Points()
	pos := make(map[int32]int, len(gids)) // global id -> row in pts
	for i, g := range gids {
		pos[g] = i
	}

	const k = 5
	g := s.KNNGraph(k)
	if len(g.IDs) != pts.Len() || len(g.Neighbors) != pts.Len()*k {
		t.Fatalf("graph shape: %d nodes, %d edges", len(g.IDs), len(g.Neighbors))
	}
	for i := 0; i < pts.Len(); i++ {
		self := pos[g.IDs[i]]
		wantD := oracle.KNNDists(pts, pts.At(self), k, int32(self))
		for j := 0; j < k; j++ {
			nb := g.Neighbors[i*k+j]
			if nb == g.IDs[i] {
				t.Fatalf("node %d lists itself as a neighbor", g.IDs[i])
			}
			d := geom.SqDist(pts.At(self), pts.At(pos[nb]))
			if d != wantD[j] {
				t.Fatalf("edge (%d,%d) dist %v, oracle %v", i, j, d, wantD[j])
			}
			if d != g.SqDists[i*k+j] {
				t.Fatalf("SqDists[%d,%d]=%v, recomputed %v", i, j, g.SqDists[i*k+j], d)
			}
		}
	}

	const minPts = 4
	coreIDs, core := s.CoreDistances(minPts)
	for i := range coreIDs {
		self := pos[coreIDs[i]]
		wantD := oracle.KNNDists(pts, pts.At(self), minPts, int32(self))
		want := wantD[minPts-1]
		if got := core[i] * core[i]; !almostEq(got, want) {
			t.Fatalf("core distance of id %d: %v² = %v, oracle %v", coreIDs[i], core[i], got, want)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	return d <= 1e-12*(1+scale)
}
