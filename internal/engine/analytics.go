package engine

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// Snapshot analytics: long-running, whole-dataset jobs that make sense
// precisely BECAUSE snapshots are immutable versions. Each job reads one
// consistent point set from start to finish while live writers keep
// committing past it — the intended idiom is
//
//	s := eng.Pin()
//	defer s.Release()
//	g := s.KNNGraph(k)
//
// so the version stays resolvable (and its memory accounted under
// Stats().RetainedBytes) for exactly the job's duration. The jobs are
// data-parallel over the points and answer every query with the
// self-excluding convention of the cluster package: a point is never its
// own neighbor.

// KNNGraph is a directed k-nearest-neighbor graph over one snapshot's live
// points: node i (global id IDs[i]) has edges to the k live points nearest
// to it, itself excluded.
type KNNGraph struct {
	// K is the requested out-degree.
	K int
	// IDs are the graph's nodes: every live global id, in snapshot
	// (shard-concatenated) order.
	IDs []int32
	// Neighbors is flat row-major: node i's edges are
	// Neighbors[i*K : (i+1)*K], global ids sorted by increasing distance,
	// padded with -1 when the snapshot holds fewer than K other points.
	Neighbors []int32
	// SqDists holds the matching squared edge lengths (+Inf padding),
	// parallel to Neighbors.
	SqDists []float64
}

// KNNGraph computes the directed k-NN graph of the snapshot's live points:
// for every point, its k nearest OTHER live points (the self-excluding
// convention of the cluster package, unlike AllKNN which answers arbitrary
// query rows and excludes nothing). One parallel pass; O(n·k) output. The
// result is wholly owned by the caller and stays valid after Release.
func (s *Snapshot) KNNGraph(k int) *KNNGraph {
	if k <= 0 {
		panic("engine: KNNGraph requires k >= 1")
	}
	pts, gids := s.Points()
	n := pts.Len()
	g := &KNNGraph{
		K:         k,
		IDs:       gids,
		Neighbors: make([]int32, n*k),
		SqDists:   make([]float64, n*k),
	}
	s.allKNNExcluding(pts, gids, k, g.Neighbors, g.SqDists)
	return g
}

// CoreDistances computes the HDBSCAN core distance of every live point: its
// distance (not squared) to its minPts-th nearest OTHER live point, +Inf for
// points with fewer than minPts live others — the same convention as
// cluster.CoreDistances, evaluated against a consistent pinned version
// instead of a static array. Returns the global ids in snapshot order and
// the parallel core distances.
func (s *Snapshot) CoreDistances(minPts int) ([]int32, []float64) {
	if minPts <= 0 {
		panic("engine: CoreDistances requires minPts >= 1")
	}
	pts, gids := s.Points()
	n := pts.Len()
	sq := make([]float64, n*minPts)
	s.allKNNExcluding(pts, gids, minPts, nil, sq)
	core := make([]float64, n)
	for i := range core {
		core[i] = math.Sqrt(sq[i*minPts+minPts-1])
	}
	return gids, core
}

// allKNNExcluding is the shared inner pass of the analytics jobs: AllKNN's
// blocked parallel loop, with query i excluding its own global id. ids (if
// non-nil) and sqDists (if non-nil) receive flat row-major results with
// -1/+Inf padding.
func (s *Snapshot) allKNNExcluding(queries geom.Points, gids []int32, k int, ids []int32, sqDists []float64) {
	n := queries.Len()
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(k)
		var order []shardDist
		row := make([]int32, k)
		drow := make([]float64, k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			order = s.knnOne(queries.At(i), gids[i], buf, order)
			m := buf.ResultInto(row, drow)
			for j := m; j < k; j++ {
				row[j] = -1
				drow[j] = math.Inf(1)
			}
			if ids != nil {
				copy(ids[i*k:(i+1)*k], row)
			}
			if sqDists != nil {
				copy(sqDists[i*k:(i+1)*k], drow)
			}
		}
	})
}
