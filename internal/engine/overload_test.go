package engine

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// TestMaxPendingSheds fills a bounded commit queue deterministically by
// stalling one shard's commit lock: a leader blocks mid-commit, one
// waiter parks (the single MaxPending=1 slot), and the next arrival must
// be shed with the typed ErrOverloaded — immediately, without blocking —
// while other shards keep admitting, everything admitted commits
// normally, and nothing shed leaves any trace in the live set.
func TestMaxPendingSheds(t *testing.T) {
	e := New(2, Options{Shards: 2, MaxPending: 1})
	defer e.Close()
	// Founding commit: a real partition so updates route per shard.
	if res := e.Insert(generators.UniformCube(512, 2, 7)); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Pick the stall point and the control point from the live partition:
	// probe the world box's diagonal for two points on different shards.
	part := e.part.Load()
	lerp := func(t float64) []float64 {
		w := part.world
		out := make([]float64, len(w.Min))
		for i := range out {
			out[i] = w.Min[i] + t*(w.Max[i]-w.Min[i])
		}
		return out
	}
	p := lerp(0.25)
	s := part.shardOf(p)
	var q []float64
	for t64 := 0.0; t64 <= 1.0; t64 += 1.0 / 64 {
		if cand := lerp(t64); part.shardOf(cand) != s {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no probe point routed off the stalled shard")
	}
	comb := &e.shards[s].comb
	pending := func() (active bool, n int) {
		comb.mu.Lock()
		defer comb.mu.Unlock()
		return comb.active, len(comb.pending)
	}
	await := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			runtime.Gosched()
		}
	}
	ins := func(pt []float64) UpdateResult {
		return e.Insert(geom.Points{Data: pt, Dim: 2})
	}

	// Stall shard s's commit path, then stack the queue one step at a time.
	e.shards[s].commitMu.Lock()
	results := make(chan UpdateResult, 2)
	go func() { results <- ins(p) }() // A: leader, drains itself, blocks committing
	await("leader to start committing", func() bool { a, n := pending(); return a && n == 0 })
	go func() { results <- ins(p) }() // B: parks, fills the MaxPending=1 slot
	await("waiter to park", func() bool { _, n := pending(); return n == 1 })

	// C arrives at a full queue: shed synchronously, typed, no state.
	res := ins(p)
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("arrival at full queue: %+v, want ErrOverloaded", res)
	}
	if len(res.IDs) != 0 || res.Epoch != 0 || res.Deleted != 0 {
		t.Fatalf("shed result carries state: %+v", res)
	}
	// The OTHER shard's queue is idle: admission is per stream, so load on
	// one shard must not shed writes bound elsewhere.
	if other := ins(q); other.Err != nil {
		t.Fatalf("insert on unloaded shard during stall: %v", other.Err)
	}
	if st := e.Stats(); st.Shed != 1 || st.CommitQueue != 1 {
		t.Fatalf("mid-stall stats: shed=%d queue=%d, want 1, 1", st.Shed, st.CommitQueue)
	}

	// Release the stall: A and B both commit and acknowledge.
	e.shards[s].commitMu.Unlock()
	var acked []int32
	for i := 0; i < 2; i++ {
		r := <-results
		if r.Err != nil {
			t.Fatalf("admitted update failed: %v", r.Err)
		}
		acked = append(acked, r.IDs...)
	}
	_, ids := e.Snapshot().Points()
	live := map[int32]bool{}
	for _, id := range ids {
		live[id] = true
	}
	for _, id := range acked {
		if !live[id] {
			t.Fatalf("acked id %d missing from live set", id)
		}
	}
	// 512 seed + A + B + the other-shard insert; C (shed) left no trace.
	if len(ids) != 512+3 {
		t.Fatalf("live %d points, want %d", len(ids), 512+3)
	}
	if st := e.Stats(); st.Shed != 1 || st.CommitQueue != 0 {
		t.Fatalf("drained stats: shed=%d queue=%d, want 1, 0", st.Shed, st.CommitQueue)
	}
}

// TestMaxPendingUnsetNeverSheds: the embedded-use default (MaxPending=0)
// must keep the pre-overload contract — no update is ever refused, no
// matter how many stack up.
func TestMaxPendingUnsetNeverSheds(t *testing.T) {
	e := New(2, Options{Shards: 2})
	defer e.Close()
	if res := e.Insert(generators.UniformCube(64, 2, 3)); res.Err != nil {
		t.Fatal(res.Err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.Insert(geom.Points{Data: []float64{0.5, float64(w)}, Dim: 2})
			if res.Err != nil {
				t.Errorf("writer %d refused: %v", w, res.Err)
			}
		}()
	}
	wg.Wait()
	if st := e.Stats(); st.Shed != 0 {
		t.Fatalf("unbounded engine shed %d updates", st.Shed)
	}
}

// TestCommitQueueGauge: the queue-depth gauge reflects parked updates
// while a commit is held open and returns to zero once drained.
func TestCommitQueueGauge(t *testing.T) {
	e := New(2, Options{})
	defer e.Close()
	if st := e.Stats(); st.CommitQueue != 0 {
		t.Fatalf("idle queue depth %d", st.CommitQueue)
	}
	// Park a wave of concurrent writers; sampled mid-flight the gauge must
	// be consistent with the bound [0, writers] and drain back to zero.
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Insert(geom.Points{Data: []float64{float64(w), 1}, Dim: 2})
		}()
	}
	if d := e.queueDepth(); d > 16 {
		t.Errorf("mid-flight queue depth %d > 16 writers", d)
	}
	wg.Wait()
	if st := e.Stats(); st.CommitQueue != 0 {
		t.Fatalf("drained queue depth %d, want 0", st.CommitQueue)
	}
}
