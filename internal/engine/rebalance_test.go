package engine

import (
	"sync"
	"testing"
	"time"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// offsetPoints returns a copy of pts translated by (dx, dy).
func offsetPoints(pts geom.Points, dx, dy float64) geom.Points {
	out := geom.Points{Data: append([]float64(nil), pts.Data...), Dim: pts.Dim}
	for i := 0; i < out.Len(); i++ {
		p := out.At(i)
		p[0] += dx
		p[1] += dy
	}
	return out
}

// scalePoints returns a copy of pts scaled into box [lo,hi]^2 assuming the
// source covers its own bounding box.
func scaleInto(pts geom.Points, lo, hi float64) geom.Points {
	b := geom.BoundingBoxAll(pts)
	out := geom.Points{Data: append([]float64(nil), pts.Data...), Dim: pts.Dim}
	for i := 0; i < out.Len(); i++ {
		p := out.At(i)
		for c := range p {
			ext := b.Max[c] - b.Min[c]
			f := 0.0
			if ext > 0 {
				f = (p[c] - b.Min[c]) / ext
			}
			p[c] = lo + f*(hi-lo)
		}
	}
	return out
}

// TestRebalanceSplitMergeHotShard: concentrating mass into one shard must
// trigger a split/merge that lowers the maximum shard population, keeps the
// shard count, preserves every live point, and leaves all query answers
// exactly equal to brute force.
func TestRebalanceSplitMergeHotShard(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4, ShardSampleSize: 256})
	m := &oracle.LiveSet{Dim: dim}

	founding := generators.UniformCube(1000, dim, 1)
	res := e.Insert(founding)
	m.Insert(res.IDs, founding)
	boundsBefore := append([]uint64(nil), e.part.Load().bounds...)

	// Hammer one quadrant: a spread-out cluster so its shard becomes hot
	// but its Morton codes still separate at a median.
	world := geom.BoundingBoxAll(founding)
	cluster := scaleInto(generators.UniformCube(3000, dim, 2), world.Min[0], world.Min[0]+(world.Max[0]-world.Min[0])*0.4)
	res = e.Insert(cluster)
	m.Insert(res.IDs, cluster)

	sizesBefore := e.Snapshot().ShardSizes()
	maxBefore := 0
	for _, s := range sizesBefore {
		if s > maxBefore {
			maxBefore = s
		}
	}
	epochBefore := e.Epoch()

	act := e.Rebalance()
	if act != RebalanceSplitMerge {
		t.Fatalf("rebalance action %v, want split/merge (shard sizes %v)", act, sizesBefore)
	}
	if e.Rebalances() != 1 {
		t.Fatalf("migration count %d", e.Rebalances())
	}
	if e.Epoch() != epochBefore+1 {
		t.Fatalf("migration must publish one epoch: %d -> %d", epochBefore, e.Epoch())
	}
	if got := e.Snapshot().Shards(); got != 4 {
		t.Fatalf("shard count changed to %d", got)
	}
	if e.Size() != len(m.IDs) {
		t.Fatalf("size %d after migration, want %d", e.Size(), len(m.IDs))
	}
	sizesAfter := e.Snapshot().ShardSizes()
	maxAfter := 0
	for _, s := range sizesAfter {
		if s > maxAfter {
			maxAfter = s
		}
	}
	if maxAfter >= maxBefore {
		t.Fatalf("split did not lower the hot shard: %v -> %v", sizesBefore, sizesAfter)
	}
	boundsAfter := e.part.Load().bounds
	same := len(boundsBefore) == len(boundsAfter)
	if same {
		for i := range boundsAfter {
			if boundsAfter[i] != boundsBefore[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("migration left the partition boundaries unchanged")
	}
	checkAgainstOracle(t, e, m, 7)

	// The engine keeps committing correctly against the migrated partition:
	// single-shard and spanning batches, plus deletions of pre-migration
	// points (routed under the new partition by coordinates).
	more := generators.UniformCube(500, dim, 3)
	res = e.Insert(more)
	m.Insert(res.IDs, more)
	del := geom.Points{Data: cluster.Data[:200*dim], Dim: dim}
	dres := e.Delete(del)
	if want := m.Remove(del); dres.Deleted != want {
		t.Fatalf("post-migration delete removed %d, want %d", dres.Deleted, want)
	}
	checkAgainstOracle(t, e, m, 11)
}

// TestRebalanceRepartitionOnDrift: once inserts land outside the founding
// world box (clamped into boundary cells), a rebalance pass must rebuild
// the partition under a widened world; answers stay exact before, during,
// and after, and the drifted region stops aliasing.
func TestRebalanceRepartitionOnDrift(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4, ShardSampleSize: 256})
	m := &oracle.LiveSet{Dim: dim}

	founding := generators.UniformCube(2000, dim, 5)
	res := e.Insert(founding)
	m.Insert(res.IDs, founding)
	world0 := e.part.Load().world

	// Drift: a whole batch far outside the founding box.
	drifted := offsetPoints(generators.UniformCube(600, dim, 6), 500, 500)
	res = e.Insert(drifted)
	m.Insert(res.IDs, drifted)
	checkAgainstOracle(t, e, m, 13) // conservative edge cells keep answers exact pre-migration
	if got := e.outOfWorld.Load(); got != 600 {
		t.Fatalf("drift counter %d, want 600", got)
	}

	if act := e.Rebalance(); act != RebalanceRepartition {
		t.Fatalf("rebalance action %v, want repartition", act)
	}
	part := e.part.Load()
	if part.world.Max[0] <= world0.Max[0] {
		t.Fatalf("world box not widened: %v -> %v", world0, part.world)
	}
	for i := 0; i < drifted.Len(); i++ {
		if !part.world.Contains(drifted.At(i)) {
			t.Fatal("repartitioned world does not cover the drifted mass")
		}
	}
	if e.outOfWorld.Load() != 0 {
		t.Fatal("drift counter not reset by repartition")
	}
	checkAgainstOracle(t, e, m, 17)

	// Fresh inserts in the drifted region are in-world now.
	more := offsetPoints(generators.UniformCube(300, dim, 7), 480, 480)
	res = e.Insert(more)
	m.Insert(res.IDs, more)
	if got := e.outOfWorld.Load(); got != 0 {
		t.Fatalf("in-world inserts still counted as drift: %d", got)
	}
	checkAgainstOracle(t, e, m, 19)
}

// TestRebalanceBackgroundLoop: Options.Rebalance must start a loop that
// migrates without manual passes, and Close must stop it.
func TestRebalanceBackgroundLoop(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4, Rebalance: true, RebalanceInterval: time.Millisecond})
	defer e.Close()
	m := &oracle.LiveSet{Dim: dim}

	founding := generators.UniformCube(1000, dim, 9)
	res := e.Insert(founding)
	m.Insert(res.IDs, founding)
	drifted := offsetPoints(generators.UniformCube(600, dim, 10), 300, 300)
	res = e.Insert(drifted)
	m.Insert(res.IDs, drifted)

	deadline := time.Now().Add(5 * time.Second)
	for e.Rebalances() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Rebalances() == 0 {
		t.Fatal("background rebalancer never migrated")
	}
	checkAgainstOracle(t, e, m, 23)
	e.Close()
	e.Close() // idempotent
}

// TestRebalanceConcurrentWriters: migrations racing live writers must lose
// no update — the commit paths detect a swapped partition under their shard
// locks and re-route. Writers mix single-shard and spanning batches while a
// rebalancer thread migrates continuously.
func TestRebalanceConcurrentWriters(t *testing.T) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4})
	founding := generators.UniformCube(1000, dim, 11)
	e.Insert(founding)

	const writers = 6
	const perWriter = 40
	const batchB = 50
	var wg sync.WaitGroup
	type commit struct {
		ids []int32
		pts geom.Points
	}
	results := make([][]commit, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perWriter; r++ {
				var batch geom.Points
				switch w % 3 {
				case 0: // tight cluster: single-shard path
					batch = scaleInto(generators.UniformCube(batchB, dim, uint64(w*1000+r)), 10+float64(w), 12+float64(w))
				case 1: // spanning batch: multi-shard path
					batch = generators.UniformCube(batchB, dim, uint64(w*1000+r))
				default: // drifting out of the founding box
					batch = offsetPoints(generators.UniformCube(batchB, dim, uint64(w*1000+r)), float64(100+3*r), float64(100+3*r))
				}
				res := e.Insert(batch)
				if len(res.IDs) != batchB {
					t.Errorf("writer %d round %d: %d ids", w, r, len(res.IDs))
					return
				}
				results[w] = append(results[w], commit{res.IDs, batch})
			}
		}()
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Rebalance()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	if e.Size() != 1000+writers*perWriter*batchB {
		t.Fatalf("size %d, want %d", e.Size(), 1000+writers*perWriter*batchB)
	}
	// Every id exactly once, and every committed point present.
	_, gids := e.Snapshot().Points()
	seen := make(map[int32]bool, len(gids))
	for _, id := range gids {
		if seen[id] {
			t.Fatalf("id %d present twice after migrations", id)
		}
		seen[id] = true
	}
	for w := range results {
		for _, c := range results[w] {
			for _, id := range c.ids {
				if !seen[id] {
					t.Fatalf("writer %d lost id %d across a migration", w, id)
				}
			}
		}
	}
}

// TestPreFoundingDeletes: deletes (and empty updates) issued before any
// insertion has ever committed must return a zero UpdateResult at the
// current epoch — no panic, no wedge, no spurious epoch churn — from many
// goroutines at once, on sharded and unsharded engines alike.
func TestPreFoundingDeletes(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := New(2, Options{Shards: shards})
		const gor = 8
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					batch := generators.UniformCube(20, 2, uint64(g*10+i)+1)
					res := e.Delete(batch)
					if res.Deleted != 0 || len(res.IDs) != 0 {
						t.Errorf("shards=%d: pre-founding delete result %+v", shards, res)
						return
					}
					if res.Epoch != 0 {
						t.Errorf("shards=%d: pre-founding delete advanced the epoch to %d", shards, res.Epoch)
						return
					}
					if res := e.Update(geom.Points{Dim: 2}, geom.Points{Dim: 2}); res.Epoch != 0 {
						t.Errorf("shards=%d: empty update advanced the epoch", shards)
						return
					}
				}
			}()
		}
		wg.Wait()
		if e.Epoch() != 0 || e.Size() != 0 {
			t.Fatalf("shards=%d: epoch %d size %d after pre-founding deletes", shards, e.Epoch(), e.Size())
		}
		// The founding insertion must still establish the partition normally.
		m := &oracle.LiveSet{Dim: 2}
		batch := generators.UniformCube(400, 2, 99)
		res := e.Insert(batch)
		if res.Epoch == 0 || len(res.IDs) != 400 {
			t.Fatalf("shards=%d: founding after deletes: %+v", shards, res)
		}
		m.Insert(res.IDs, batch)
		checkAgainstOracle(t, e, m, 31)
	}
}
