package engine

// Stats is a point-in-time snapshot of the engine's serving counters.
// The request/group pairs expose the flat-combining coalescing ratio:
// Updates/Commits and Queries/QueryGroups say how many concurrent
// requests each combined pass absorbed on average.
type Stats struct {
	// Epoch is the current snapshot's epoch.
	Epoch uint64
	// DurableEpoch is the highest epoch covered by a completed fsync. On
	// a non-durable engine it equals Epoch (there is no weaker prefix to
	// report).
	DurableEpoch uint64
	// Size is the number of live points.
	Size uint64
	// Shards is the shard count.
	Shards uint64
	// Rebalances counts completed shard migrations and repartitions.
	Rebalances uint64
	// Updates counts update requests acknowledged without error.
	Updates uint64
	// Commits counts snapshot publishes: commit groups that changed
	// state. No-op groups acknowledge without publishing.
	Commits uint64
	// Queries counts KNN/RangeSearch/RangeCount requests answered.
	Queries uint64
	// QueryGroups counts combined read passes run.
	QueryGroups uint64
	// Shed counts updates rejected with ErrOverloaded at a full commit
	// queue (Options.MaxPending). Always zero with MaxPending unset.
	Shed uint64
	// CommitQueue is the number of updates currently parked on the commit
	// queues (every shard's stream plus the global stream), sampled at the
	// Stats call. With MaxPending set it is bounded by
	// (Shards+1)×MaxPending; the ratio against that bound is the
	// backpressure gauge a serving layer watches.
	CommitQueue uint64
	// RetainedEpochs is the current length of the MVCC retention ring:
	// how many recent epochs (the live one included) resolve through
	// AsOf. At most Options.RetainEpochs; at least 1.
	RetainedEpochs uint64
	// PinnedEpochs is the number of distinct epochs currently pinned
	// (Pin/PinEpoch without a matching Release), whether or not they are
	// also inside the retention ring.
	PinnedEpochs uint64
	// RetainedBytes estimates the heap bytes held only by retention:
	// tree structure reachable from retained or pinned snapshots but not
	// from the live one, with structure shared between old versions
	// counted once. Zero when nothing but the live epoch is held.
	RetainedBytes uint64
}

// Stats returns the engine's serving counters. The counters are read
// individually (not under a lock), so ratios between them are approximate
// under concurrent load; each counter is itself exact.
func (e *Engine) Stats() Stats {
	snap := e.snap.Load()
	s := Stats{
		Epoch:        snap.epoch,
		DurableEpoch: snap.epoch,
		Size:         uint64(snap.size),
		Shards:       uint64(e.nshard),
		Rebalances:   e.rebalanced.Load(),
		Updates:      e.statUpdates.Load(),
		Commits:      e.statCommits.Load(),
		Queries:      e.statQueries.Load(),
		QueryGroups:  e.statQueryGroups.Load(),
		Shed:         e.statShed.Load(),
		CommitQueue:  e.queueDepth(),
	}
	if e.log != nil {
		s.DurableEpoch = e.log.DurableEpoch()
	}
	s.RetainedEpochs, s.PinnedEpochs, s.RetainedBytes = e.retainStats()
	return s
}

// queueDepth sums the pending counts of every commit queue. Each queue is
// read under its own lock, so the sum is a consistent-enough sample for a
// gauge, not an atomic snapshot of all queues at one instant.
func (e *Engine) queueDepth() uint64 {
	depth := func(c *combiner) uint64 {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		return uint64(n)
	}
	total := depth(&e.global)
	for _, sh := range e.shards {
		total += depth(&sh.comb)
	}
	return total
}
