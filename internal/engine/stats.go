package engine

// Stats is a point-in-time snapshot of the engine's serving counters.
// The request/group pairs expose the flat-combining coalescing ratio:
// Updates/Commits and Queries/QueryGroups say how many concurrent
// requests each combined pass absorbed on average.
type Stats struct {
	// Epoch is the current snapshot's epoch.
	Epoch uint64
	// DurableEpoch is the highest epoch covered by a completed fsync. On
	// a non-durable engine it equals Epoch (there is no weaker prefix to
	// report).
	DurableEpoch uint64
	// Size is the number of live points.
	Size uint64
	// Shards is the shard count.
	Shards uint64
	// Rebalances counts completed shard migrations and repartitions.
	Rebalances uint64
	// Updates counts update requests acknowledged without error.
	Updates uint64
	// Commits counts snapshot publishes: commit groups that changed
	// state. No-op groups acknowledge without publishing.
	Commits uint64
	// Queries counts KNN/RangeSearch/RangeCount requests answered.
	Queries uint64
	// QueryGroups counts combined read passes run.
	QueryGroups uint64
}

// Stats returns the engine's serving counters. The counters are read
// individually (not under a lock), so ratios between them are approximate
// under concurrent load; each counter is itself exact.
func (e *Engine) Stats() Stats {
	snap := e.snap.Load()
	s := Stats{
		Epoch:        snap.epoch,
		DurableEpoch: snap.epoch,
		Size:         uint64(snap.size),
		Shards:       uint64(e.nshard),
		Rebalances:   e.rebalanced.Load(),
		Updates:      e.statUpdates.Load(),
		Commits:      e.statCommits.Load(),
		Queries:      e.statQueries.Load(),
		QueryGroups:  e.statQueryGroups.Load(),
	}
	if e.log != nil {
		s.DurableEpoch = e.log.DurableEpoch()
	}
	return s
}
