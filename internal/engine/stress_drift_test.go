package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/oracle"
)

// Drifting hot-spot stress: every writer is a "mover" whose churn region
// slides diagonally OUT of the founding world box round after round, so
// inserts start clamping into boundary Morton cells and the frozen
// partition would funnel the entire write stream into one edge shard. A
// rebalancer thread migrates the partition continuously (splits, merges,
// and drift-triggered full repartitions with widened worlds) while the
// movers commit and concurrent readers assert, across every migration swap:
//
//   - all-or-nothing visibility: each mover's lane holds either its static
//     founding population or static + one full batch, never anything else,
//     even while the lane's points sit outside the original world box;
//   - per-goroutine epoch monotonicity;
//   - snapshot self-consistency (universe count == size).
//
// Run with -race. The long configuration (nightly stress.yml) is enabled by
// PARGEO_STRESS=1.

func driftStress(t *testing.T, writers, readers, rounds, foundingN, batchB int) {
	const dim = 2
	e := New(dim, Options{BufferSize: 64, Shards: 4})
	defer e.Close()

	founding := generators.UniformCube(foundingN, dim, 1)
	fres := e.Insert(founding)
	if e.part.Load() == nil {
		t.Fatal("founding commit did not establish the partition")
	}

	// Mover w owns a thin y-lane; each round its batch slides +drift in x
	// AND +drift in y·0 (lane fixed) — the x slide exits the founding box
	// after a few rounds, and a shared diagonal offset pushes every lane's
	// x AND the global mass outward so codes clamp to corner cells.
	laneY := func(w int) float64 { return 10 + 80*float64(w)/float64(writers) }
	moverBatch := func(w, r int) geom.Points {
		pts := geom.NewPoints(batchB, dim)
		y := laneY(w)
		drift := 30 * float64(r) // exits the ~[0,100] founding box quickly
		for j := 0; j < batchB; j++ {
			pts.Set(j, []float64{drift + float64(j)*100.0/float64(batchB), y + float64(j%5)*0.001})
		}
		return pts
	}
	laneBox := func(w int) geom.Box {
		y := laneY(w)
		return geom.Box{Min: []float64{-1e9, y - 0.0005}, Max: []float64{1e9, y + 0.0055}}
	}

	static := make([]int, writers)
	for w := 0; w < writers; w++ {
		static[w] = e.RangeCount(laneBox(w))
	}

	var stop atomic.Bool
	var wwg, rwg, bwg sync.WaitGroup
	errs := make(chan string, writers+readers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
		stop.Store(true)
	}

	// The rebalancer thread: continuous manual passes (denser pressure
	// than the background ticker). The short sleep keeps it from
	// monopolizing a single-CPU host between preemptions, so passes
	// actually interleave with the movers' commits.
	rebalDone := make(chan struct{})
	bwg.Add(1)
	go func() {
		defer bwg.Done()
		for {
			select {
			case <-rebalDone:
				return
			default:
				e.Rebalance()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	finalIDs := make([][]int32, writers)
	finalPts := make([]geom.Points, writers)
	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			var prev geom.Points
			prevSet := false
			for r := 0; r < rounds && !stop.Load(); r++ {
				batch := moverBatch(w, r)
				var res UpdateResult
				if prevSet {
					res = e.Update(batch, prev) // move: new in, old out, one commit
				} else {
					res = e.Insert(batch)
				}
				if len(res.IDs) != batchB {
					fail("mover %d: %d ids", w, len(res.IDs))
					return
				}
				// Own-lane read-your-writes across the migration machinery.
				if got := e.RangeCount(laneBox(w)); got != static[w]+batchB {
					fail("mover %d round %d: own lane count %d, want %d", w, r, got, static[w]+batchB)
					return
				}
				prev, prevSet = batch, true
				finalIDs[w], finalPts[w] = res.IDs, batch
			}
		}()
	}

	for rd := 0; rd < readers; rd++ {
		rd := rd
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lastEpoch := uint64(0)
			rng := uint64(rd)*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				w := int(rng % uint64(writers))
				if c := e.RangeCount(laneBox(w)); c != static[w] && c != static[w]+batchB {
					fail("reader %d: torn lane %d across migration: count %d, want %d or %d",
						rd, w, c, static[w], static[w]+batchB)
					return
				}
				snap := e.Snapshot()
				if snap.Epoch() < lastEpoch {
					fail("reader %d: epoch went backward %d -> %d", rd, lastEpoch, snap.Epoch())
					return
				}
				lastEpoch = snap.Epoch()
				if got := snap.RangeCount(universeBox()); got != snap.Size() {
					fail("reader %d: snapshot universe count %d != size %d", rd, got, snap.Size())
					return
				}
			}
		}()
	}

	wwg.Wait()
	stop.Store(true)
	rwg.Wait()
	close(rebalDone)
	bwg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// The drift must have left a migration trigger armed at the latest; on
	// a single-CPU host the concurrent rebalancer thread may not have been
	// scheduled between the last out-of-world commit and shutdown, so give
	// it deterministic final passes before asserting.
	// (128 passes outlast any backoff the concurrent thread accumulated.)
	for i := 0; i < 128 && e.Rebalances() == 0; i++ {
		e.Rebalance()
	}
	if e.Rebalances() == 0 {
		t.Fatal("drifting movers never triggered a migration")
	}
	if e.Size() != foundingN+writers*batchB {
		t.Fatalf("final size %d, want %d", e.Size(), foundingN+writers*batchB)
	}
	// Full differential close-out: the live set is exactly founding + each
	// mover's last batch; every query class must match brute force.
	m := &oracle.LiveSet{Dim: dim}
	m.Insert(fres.IDs, founding)
	for w := 0; w < writers; w++ {
		m.Insert(finalIDs[w], finalPts[w])
	}
	checkAgainstOracle(t, e, m, 41)
}

func TestDriftRebalanceStress(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 6
	}
	driftStress(t, 3, 4, rounds, 2000, 120)
}

// TestDriftRebalanceStressLong is the nightly configuration (stress.yml):
// more movers, readers, rounds, and mass, under -race -count=3. Gated
// behind PARGEO_STRESS=1 — far too slow for per-PR CI.
func TestDriftRebalanceStressLong(t *testing.T) {
	if os.Getenv("PARGEO_STRESS") == "" {
		t.Skip("long stress: set PARGEO_STRESS=1 (nightly CI)")
	}
	driftStress(t, 6, 8, 60, 20000, 400)
}
