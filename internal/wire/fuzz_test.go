package wire

import (
	"bytes"
	"testing"
)

// The fuzz contract mirrors internal/wal's: the decoders must never
// panic or read past the input on ANY byte string, a decode error must
// consume nothing, and an accepted frame must re-encode byte-identically
// — the protocol has one canonical encoding, so a server echoing decoded
// data can never smuggle bytes it did not validate.

// seedMutations derives adversarial variants of a valid frame: single
// bit flips across header, CRC, and body; a torn tail; a duplicated
// frame (the second must decode independently).
func seedMutations(f *testing.F, frames [][]byte) {
	for _, v := range frames {
		f.Add(v)
		for _, bit := range []int{0, 7, 35, len(v)*8 - 1} {
			fl := append([]byte{}, v...)
			fl[bit/8] ^= 1 << (bit % 8)
			f.Add(fl)
		}
		f.Add(v[:len(v)/2])
		f.Add(append(append([]byte{}, v...), v...))
	}
}

func FuzzRequestDecode(f *testing.F) {
	var frames [][]byte
	reqs := sampleRequests()
	for i := range reqs {
		frames = append(frames, AppendRequest(nil, &reqs[i]))
	}
	seedMutations(f, frames)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRequest(data, 2)
		if err != nil {
			if n != 0 {
				t.Fatalf("consumed %d on error %v", n, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if re := AppendRequest(nil, &r); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs\n got %x\nwant %x", re, data[:n])
		}
	})
}

func FuzzResponseDecode(f *testing.F) {
	var frames [][]byte
	resps := sampleResponses()
	for i := range resps {
		frames = append(frames, AppendResponse(nil, &resps[i]))
	}
	// Extra StatusOverloaded seeds beyond the samples: hint values at the
	// u32 edges and a hint colliding with a message length, so mutations
	// explore the retry-hint/message-length boundary specifically.
	for _, r := range []Response{
		{Op: OpRange, ID: 1, Status: StatusOverloaded, RetryAfterMillis: 1},
		{Op: OpStats, ID: 2, Status: StatusOverloaded, RetryAfterMillis: 1 << 31, ErrMsg: "x"},
		{Op: OpUpdate, ID: 3, Status: StatusOverloaded, RetryAfterMillis: 4, ErrMsg: "\x04\x00\x00\x00"},
	} {
		frames = append(frames, AppendResponse(nil, &r))
	}
	seedMutations(f, frames)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeResponse(data, 2)
		if err != nil {
			if n != 0 {
				t.Fatalf("consumed %d on error %v", n, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if re := AppendResponse(nil, &r); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs\n got %x\nwant %x", re, data[:n])
		}
	})
}
