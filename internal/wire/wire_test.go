package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"pargeo/internal/geom"
)

func pts(dim int, vals ...float64) geom.Points {
	return geom.Points{Data: vals, Dim: dim}
}

// sampleRequests covers every op, including empty batches and zero k.
func sampleRequests() []Request {
	return []Request{
		{Op: OpHello, ID: 1},
		{Op: OpKNN, ID: 2, K: 3, Queries: pts(2, 1, 2, 3, 4)},
		{Op: OpKNN, ID: 3, K: 0, Queries: geom.Points{Dim: 2}},
		{Op: OpRange, ID: 4, Box: geom.Box{Min: []float64{0, -1}, Max: []float64{10, 11}}},
		{Op: OpRangeCount, ID: 5, Box: geom.Box{Min: []float64{-5, -5}, Max: []float64{5, 5}}},
		{Op: OpUpdate, ID: 6, Ins: pts(2, 9, 9, 8, 8), Del: pts(2, 1, 2)},
		{Op: OpUpdate, ID: 7, Ins: geom.Points{Dim: 2}, Del: geom.Points{Dim: 2}},
		{Op: OpEpoch, ID: 8},
		{Op: OpCheckpoint, ID: 9},
		{Op: OpStats, ID: 10},
		{Op: OpKNN, ID: 11, K: 2, Queries: pts(2, 5, 6), AsOf: 42},
		{Op: OpRange, ID: 12, Box: geom.Box{Min: []float64{0, 0}, Max: []float64{1, 1}}, AsOf: 7},
		{Op: OpRangeCount, ID: 13, Box: geom.Box{Min: []float64{0, 0}, Max: []float64{1, 1}}, AsOf: ^uint64(0)},
		{Op: OpPin, ID: 14},
		{Op: OpPin, ID: 15, Epoch: 31},
		{Op: OpUnpin, ID: 16, Epoch: 31},
	}
}

// sampleResponses covers every op and status, including empty results.
func sampleResponses() []Response {
	return []Response{
		{Op: OpHello, ID: 1, Dim: 2, Shards: 4},
		{Op: OpKNN, ID: 2, Neighbors: [][]int32{{1, 2, 3}, nil, {7}}},
		{Op: OpKNN, ID: 3},
		{Op: OpRange, ID: 4, IDs: []int32{5, 6, 7}},
		{Op: OpRange, ID: 5},
		{Op: OpRangeCount, ID: 6, Count: 42},
		{Op: OpUpdate, ID: 7, IDs: []int32{11, 12}, Deleted: 1, Epoch: 9},
		{Op: OpUpdate, ID: 8, Epoch: 3},
		{Op: OpEpoch, ID: 9, Epoch: 77},
		{Op: OpCheckpoint, ID: 10, Epoch: 78},
		{Op: OpStats, ID: 11, Stats: []Stat{{Name: "epoch", Value: 7}, {Name: "size", Value: 100}}},
		{Op: OpStats, ID: 12},
		{Op: OpUpdate, ID: 13, Status: StatusClosed, ErrMsg: "engine: closed"},
		{Op: OpKNN, ID: 14, Status: StatusError, ErrMsg: "boom"},
		{Op: OpEpoch, ID: 15, Status: StatusError, ErrMsg: ""},
		{Op: OpKNN, ID: 16, Status: StatusOverloaded, RetryAfterMillis: 12, ErrMsg: "server: overloaded (reads)"},
		{Op: OpUpdate, ID: 17, Status: StatusOverloaded, RetryAfterMillis: 0, ErrMsg: ""},
		{Op: OpUpdate, ID: 18, Status: StatusOverloaded, RetryAfterMillis: ^uint32(0), ErrMsg: "engine: overloaded: commit queue full"},
		{Op: OpPin, ID: 19, Epoch: 55},
		{Op: OpUnpin, ID: 20, Epoch: 55},
		{Op: OpKNN, ID: 21, Status: StatusNotRetained, ErrMsg: "engine: epoch not retained"},
		{Op: OpPin, ID: 22, Status: StatusNotRetained, ErrMsg: "engine: epoch not retained: epoch 3"},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range sampleRequests() {
		buf := AppendRequest(nil, &want)
		got, n, err := DecodeRequest(buf, 2)
		if err != nil {
			t.Fatalf("op %d: decode: %v", want.Op, err)
		}
		if n != len(buf) {
			t.Fatalf("op %d: consumed %d of %d", want.Op, n, len(buf))
		}
		re := AppendRequest(nil, &got)
		if !bytes.Equal(re, buf) {
			t.Fatalf("op %d: re-encode differs\n got %x\nwant %x", want.Op, re, buf)
		}
		if got.Op != want.Op || got.ID != want.ID || got.K != want.K {
			t.Fatalf("op %d: header mismatch: %+v vs %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range sampleResponses() {
		buf := AppendResponse(nil, &want)
		got, n, err := DecodeResponse(buf, 2)
		if err != nil {
			t.Fatalf("op %d status %d: decode: %v", want.Op, want.Status, err)
		}
		if n != len(buf) {
			t.Fatalf("op %d: consumed %d of %d", want.Op, n, len(buf))
		}
		re := AppendResponse(nil, &got)
		if !bytes.Equal(re, buf) {
			t.Fatalf("op %d: re-encode differs\n got %x\nwant %x", want.Op, re, buf)
		}
		if got.Status != want.Status || got.ErrMsg != want.ErrMsg || got.Epoch != want.Epoch {
			t.Fatalf("op %d: field mismatch: %+v vs %+v", want.Op, got, want)
		}
		if got.RetryAfterMillis != want.RetryAfterMillis {
			t.Fatalf("op %d: retry hint %d, want %d", want.Op, got.RetryAfterMillis, want.RetryAfterMillis)
		}
		if want.Op == OpStats && want.Status == StatusOK && !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("stats mismatch: %+v vs %+v", got.Stats, want.Stats)
		}
	}
}

// TestDecodeRejects: structurally broken frames must fail with ErrCorrupt
// and consumed 0, never panic or over-read.
func TestDecodeRejects(t *testing.T) {
	good := AppendRequest(nil, &Request{Op: OpKNN, ID: 1, K: 2, Queries: pts(2, 1, 2)})
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:5],
		"torn payload": good[:len(good)-3],
		"crc flip":     append(append([]byte{}, good[:5]...), append([]byte{good[5] ^ 0xff}, good[6:]...)...),
		"zero length":  {0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, buf := range cases {
		if _, n, err := DecodeRequest(buf, 2); !errors.Is(err, ErrCorrupt) && err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		} else if n != 0 {
			t.Errorf("%s: consumed %d on error", name, n)
		}
	}

	// An overloaded response torn between the status byte and the retry
	// hint must be rejected, not decoded with a garbage hint: truncate the
	// payload right after the status byte and re-stamp the frame.
	over := AppendResponse(nil, &Response{Op: OpKNN, ID: 1, Status: StatusOverloaded, RetryAfterMillis: 250, ErrMsg: "shed"})
	torn := appendFrame(nil, over[frameHeaderSize:frameHeaderSize+respMinSize])
	if _, n, err := DecodeResponse(torn, 2); !errors.Is(err, ErrCorrupt) || n != 0 {
		t.Errorf("overloaded response without retry hint: err=%v n=%d, want ErrCorrupt, 0", err, n)
	}

	// A KNN request whose row count claims more coords than the payload
	// holds must be rejected before any allocation sized from it.
	huge := &Request{Op: OpKNN, ID: 1, K: 1, Queries: pts(2, 1, 2)}
	buf := AppendRequest(nil, huge)
	// Rewrite the row count (payload offset 9+8+4: header, as-of epoch, k)
	// to an absurd value and re-stamp the CRC so only the semantic check
	// can catch it.
	payload := append([]byte{}, buf[frameHeaderSize:]...)
	payload[21], payload[22], payload[23], payload[24] = 0xff, 0xff, 0xff, 0x7f
	reframed := appendFrame(nil, payload)
	if _, n, err := DecodeRequest(reframed, 2); !errors.Is(err, ErrCorrupt) || n != 0 {
		t.Errorf("oversized row count: err=%v n=%d, want ErrCorrupt, 0", err, n)
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream []byte
	reqs := sampleRequests()
	for i := range reqs {
		stream = AppendRequest(stream, &reqs[i])
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := range reqs {
		var err error
		buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, n, err := DecodeRequest(buf, 2)
		if err != nil || n != len(buf) {
			t.Fatalf("frame %d: decode n=%d err=%v", i, n, err)
		}
		if got.ID != reqs[i].ID {
			t.Fatalf("frame %d: id %d, want %d", i, got.ID, reqs[i].ID)
		}
	}
	if _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}

	// A stream torn mid-frame reports ErrUnexpectedEOF, not a clean EOF.
	r = bytes.NewReader(stream[:len(stream)-4])
	var err error
	for err == nil {
		buf, err = ReadFrame(r, buf)
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream: err=%v, want io.ErrUnexpectedEOF", err)
	}

	// A hostile length prefix is rejected before allocation.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(bad), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile length: err=%v, want ErrCorrupt", err)
	}
}
