// Package wire is the engine's network protocol: length-prefixed,
// CRC-framed request/response records, the same framing discipline as the
// write-ahead log in internal/wal. A frame is
//
//	[4] payload length (little-endian)
//	[4] CRC32 (Castagnoli) of payload
//	payload
//
// and a payload opens with the operation byte and a caller-chosen 64-bit
// request id echoed verbatim in the response — connections multiplex any
// number of in-flight requests and responses may arrive out of order.
//
// Request payload:
//
//	[1] op
//	[8] request id
//	op-specific body:
//	  Hello                 (empty)
//	  KNN                   [8] as-of epoch (0 = live),
//	                        [4] k, [4] n, n×dim×[8] query coords
//	  Range / RangeCount    [8] as-of epoch (0 = live),
//	                        dim×[8] box min, dim×[8] box max
//	  Update                [4] nins, nins×dim×[8] coords,
//	                        [4] ndel, ndel×dim×[8] coords
//	  Epoch / Checkpoint / Stats  (empty)
//	  Pin                   [8] epoch (0 = pin the latest commit)
//	  Unpin                 [8] epoch
//
// The read ops carry an as-of epoch: zero (the common case) answers from
// the live snapshot, nonzero answers from that exact retained or pinned
// epoch — StatusNotRetained when the server no longer holds it. Pin makes
// an epoch durable against the server's retention GC for the LIFETIME OF
// THE CONNECTION: the server releases a connection's surviving pins when
// the connection closes, and pins never survive a server restart.
//
// Response payload:
//
//	[1] op (echoes the request's)
//	[8] request id
//	[1] status
//	status = Overloaded: [4] retry-after hint (milliseconds),
//	                     [4] message length, message bytes
//	status ≠ OK (other): [4] message length, message bytes
//	status = OK, op-specific body:
//	  Hello        [4] dim, [4] shards
//	  KNN          [4] n, n × { [4] m, m×[4] neighbor ids }
//	  Range        [4] m, m×[4] ids
//	  RangeCount   [8] count
//	  Update       [4] nids, nids×[4] ids, [8] deleted, [8] epoch
//	  Epoch        [8] epoch
//	  Checkpoint   [8] epoch
//	  Stats        [4] n, n × { [2] name length, name bytes, [8] value }
//	  Pin          [8] epoch pinned
//	  Unpin        [8] epoch released
//
// The point dimensionality is a property of the connection, established
// by the Hello exchange (the server's engine fixes it), and is passed to
// the decoders rather than carried per frame — exactly like the WAL's
// records. Decoders validate every length against the remaining bytes
// before sizing any allocation from it, never read past the input, and
// only ever return CRC-verified data that re-encodes byte-identically.
//
// For where this protocol sits in the whole system — the layer diagram
// and the request lifecycles through client, server, engine, and WAL —
// see docs/ARCHITECTURE.md at the repository root.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pargeo/internal/geom"
)

// Operations.
const (
	OpHello byte = iota + 1
	OpKNN
	OpRange
	OpRangeCount
	OpUpdate
	OpEpoch
	OpCheckpoint
	OpStats
	OpPin
	OpUnpin

	opMax = OpUnpin
)

// Response status codes. The codes are the wire form of the engine's
// typed errors: clients map StatusClosed back to their typed
// server-closed error rather than matching message strings.
const (
	StatusOK          byte = 0 // op-specific body follows
	StatusClosed      byte = 1 // engine closed (engine.ErrClosed)
	StatusError       byte = 2 // any other engine/server failure
	StatusOverloaded  byte = 3 // shed by admission control; retry-after hint follows
	StatusNotRetained byte = 4 // as-of / pin epoch outside the retention window (engine.ErrEpochNotRetained)
)

const (
	frameHeaderSize = 8
	reqMinSize      = 9  // op + id
	respMinSize     = 10 // op + id + status

	// MaxFrameSize bounds one frame's payload; decoders and ReadFrame
	// reject larger length prefixes before allocating, so a corrupt or
	// hostile length cannot trigger a huge allocation.
	MaxFrameSize = 1 << 28

	// maxDim mirrors the WAL checkpoint's plausibility bound on point
	// dimensionality.
	maxDim = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid frame or payload.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Request is one decoded client request.
type Request struct {
	Op byte
	ID uint64

	K       int32       // OpKNN
	Queries geom.Points // OpKNN
	Box     geom.Box    // OpRange, OpRangeCount
	Ins     geom.Points // OpUpdate
	Del     geom.Points // OpUpdate

	// AsOf is the time-travel epoch of a read op (OpKNN, OpRange,
	// OpRangeCount): 0 answers from the live snapshot, nonzero from that
	// exact retained or pinned epoch.
	AsOf uint64
	// Epoch is OpPin's target (0 = pin the latest commit) and OpUnpin's
	// required epoch to release.
	Epoch uint64
}

// Response is one decoded server response.
type Response struct {
	Op     byte
	ID     uint64
	Status byte
	ErrMsg string // Status ≠ StatusOK

	// RetryAfterMillis is the server's backoff hint on a StatusOverloaded
	// response: roughly one current service time for the shed request's
	// class, so a well-behaved client retries after the congestion it
	// observed has had a chance to drain. Zero on every other status.
	RetryAfterMillis uint32

	Dim       int32     // OpHello
	Shards    int32     // OpHello
	Neighbors [][]int32 // OpKNN: per-query neighbor ids
	IDs       []int32   // OpRange results; OpUpdate assigned ids
	Count     uint64    // OpRangeCount
	Deleted   uint64    // OpUpdate
	Epoch     uint64    // OpUpdate, OpEpoch, OpCheckpoint; OpPin/OpUnpin: the epoch pinned/released
	Stats     []Stat    // OpStats
}

// Stat is one named counter of a Stats response.
type Stat struct {
	Name  string
	Value uint64
}

// appendFrame wraps payload in the length+CRC frame header.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

func appendCoords(dst []byte, data []float64) []byte {
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendPoints appends [4]rows + coords; rows is derived from the data,
// so an encoded batch is always self-consistent.
func appendPoints(dst []byte, p geom.Points) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Len()))
	return appendCoords(dst, p.Data)
}

// AppendRequest appends r as one complete frame to dst.
func AppendRequest(dst []byte, r *Request) []byte {
	p := make([]byte, 0, reqMinSize+16+8*(len(r.Queries.Data)+len(r.Ins.Data)+len(r.Del.Data)+len(r.Box.Min)+len(r.Box.Max)))
	p = append(p, r.Op)
	p = binary.LittleEndian.AppendUint64(p, r.ID)
	switch r.Op {
	case OpKNN:
		p = binary.LittleEndian.AppendUint64(p, r.AsOf)
		p = binary.LittleEndian.AppendUint32(p, uint32(r.K))
		p = appendPoints(p, r.Queries)
	case OpRange, OpRangeCount:
		p = binary.LittleEndian.AppendUint64(p, r.AsOf)
		p = appendCoords(p, r.Box.Min)
		p = appendCoords(p, r.Box.Max)
	case OpUpdate:
		p = appendPoints(p, r.Ins)
		p = appendPoints(p, r.Del)
	case OpPin, OpUnpin:
		p = binary.LittleEndian.AppendUint64(p, r.Epoch)
	}
	return appendFrame(dst, p)
}

// AppendResponse appends r as one complete frame to dst.
func AppendResponse(dst []byte, r *Response) []byte {
	p := make([]byte, 0, respMinSize+32+4*len(r.IDs)+len(r.ErrMsg))
	p = append(p, r.Op)
	p = binary.LittleEndian.AppendUint64(p, r.ID)
	p = append(p, r.Status)
	if r.Status != StatusOK {
		if r.Status == StatusOverloaded {
			p = binary.LittleEndian.AppendUint32(p, r.RetryAfterMillis)
		}
		p = binary.LittleEndian.AppendUint32(p, uint32(len(r.ErrMsg)))
		p = append(p, r.ErrMsg...)
		return appendFrame(dst, p)
	}
	switch r.Op {
	case OpHello:
		p = binary.LittleEndian.AppendUint32(p, uint32(r.Dim))
		p = binary.LittleEndian.AppendUint32(p, uint32(r.Shards))
	case OpKNN:
		p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Neighbors)))
		for _, ids := range r.Neighbors {
			p = appendIDs(p, ids)
		}
	case OpRange:
		p = appendIDs(p, r.IDs)
	case OpRangeCount:
		p = binary.LittleEndian.AppendUint64(p, r.Count)
	case OpUpdate:
		p = appendIDs(p, r.IDs)
		p = binary.LittleEndian.AppendUint64(p, r.Deleted)
		p = binary.LittleEndian.AppendUint64(p, r.Epoch)
	case OpEpoch, OpCheckpoint, OpPin, OpUnpin:
		p = binary.LittleEndian.AppendUint64(p, r.Epoch)
	case OpStats:
		p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Stats)))
		for _, s := range r.Stats {
			p = binary.LittleEndian.AppendUint16(p, uint16(len(s.Name)))
			p = append(p, s.Name...)
			p = binary.LittleEndian.AppendUint64(p, s.Value)
		}
	}
	return appendFrame(dst, p)
}

func appendIDs(dst []byte, ids []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst
}

// frame validates the outer frame of buf and returns its payload and the
// bytes consumed.
func frame(buf []byte, minPayload int) ([]byte, int, error) {
	if len(buf) < frameHeaderSize {
		return nil, 0, fmt.Errorf("%w: short frame header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(buf)
	if n < uint32(minPayload) || n > MaxFrameSize {
		return nil, 0, fmt.Errorf("%w: bad payload length %d", ErrCorrupt, n)
	}
	if uint64(len(buf)-frameHeaderSize) < uint64(n) {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	payload := buf[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, frameHeaderSize + int(n), nil
}

// body is a bounds-checked cursor over a payload body.
type body struct {
	b   []byte
	off int
}

func (c *body) u16() (uint16, bool) {
	if len(c.b)-c.off < 2 {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, true
}

func (c *body) u32() (uint32, bool) {
	if len(c.b)-c.off < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, true
}

func (c *body) u64() (uint64, bool) {
	if len(c.b)-c.off < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, true
}

func (c *body) rest() int { return len(c.b) - c.off }

// coords decodes count float64s, caller having validated the length.
func (c *body) coords(count int) []float64 {
	data := make([]float64, count)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off+i*8:]))
	}
	c.off += count * 8
	return data
}

// points decodes one [4]rows+coords batch, validating rows first.
func (c *body) points(dim int, what string) (geom.Points, error) {
	rows, ok := c.u32()
	if !ok {
		return geom.Points{}, fmt.Errorf("%w: missing %s rows", ErrCorrupt, what)
	}
	if uint64(rows)*uint64(dim)*8 > uint64(c.rest()) {
		return geom.Points{}, fmt.Errorf("%w: %s batch overruns", ErrCorrupt, what)
	}
	return geom.Points{Data: c.coords(int(rows) * dim), Dim: dim}, nil
}

// ids decodes one [4]count+ids list, validating count first.
func (c *body) ids(what string) ([]int32, error) {
	count, ok := c.u32()
	if !ok {
		return nil, fmt.Errorf("%w: missing %s count", ErrCorrupt, what)
	}
	if uint64(count)*4 > uint64(c.rest()) {
		return nil, fmt.Errorf("%w: %s ids overrun", ErrCorrupt, what)
	}
	if count == 0 {
		return nil, nil
	}
	ids := make([]int32, count)
	for i := range ids {
		v, _ := c.u32()
		ids[i] = int32(v)
	}
	return ids, nil
}

// DecodeRequest decodes one request frame from the front of buf. Any
// structural problem returns ErrCorrupt with consumed 0.
func DecodeRequest(buf []byte, dim int) (Request, int, error) {
	if dim <= 0 || dim > maxDim {
		return Request{}, 0, fmt.Errorf("%w: implausible dim %d", ErrCorrupt, dim)
	}
	payload, n, err := frame(buf, reqMinSize)
	if err != nil {
		return Request{}, 0, err
	}
	var r Request
	r.Op = payload[0]
	r.ID = binary.LittleEndian.Uint64(payload[1:])
	c := &body{b: payload[reqMinSize:]}
	switch r.Op {
	case OpHello, OpEpoch, OpCheckpoint, OpStats:
		// No body.
	case OpKNN:
		asof, ok := c.u64()
		if !ok {
			return Request{}, 0, fmt.Errorf("%w: KNN missing as-of epoch", ErrCorrupt)
		}
		r.AsOf = asof
		k, ok := c.u32()
		if !ok {
			return Request{}, 0, fmt.Errorf("%w: KNN missing k", ErrCorrupt)
		}
		r.K = int32(k)
		if r.Queries, err = c.points(dim, "KNN query"); err != nil {
			return Request{}, 0, err
		}
	case OpRange, OpRangeCount:
		asof, ok := c.u64()
		if !ok {
			return Request{}, 0, fmt.Errorf("%w: range missing as-of epoch", ErrCorrupt)
		}
		r.AsOf = asof
		if c.rest() != 2*dim*8 {
			return Request{}, 0, fmt.Errorf("%w: range box size %d, want %d", ErrCorrupt, c.rest(), 2*dim*8)
		}
		r.Box.Min = c.coords(dim)
		r.Box.Max = c.coords(dim)
	case OpPin, OpUnpin:
		epoch, ok := c.u64()
		if !ok {
			return Request{}, 0, fmt.Errorf("%w: pin op missing epoch", ErrCorrupt)
		}
		r.Epoch = epoch
	case OpUpdate:
		if r.Ins, err = c.points(dim, "insert"); err != nil {
			return Request{}, 0, err
		}
		if r.Del, err = c.points(dim, "delete"); err != nil {
			return Request{}, 0, err
		}
	default:
		return Request{}, 0, fmt.Errorf("%w: unknown request op %d", ErrCorrupt, r.Op)
	}
	if c.rest() != 0 {
		return Request{}, 0, fmt.Errorf("%w: request op %d: %d trailing bytes", ErrCorrupt, r.Op, c.rest())
	}
	return r, n, nil
}

// DecodeResponse decodes one response frame from the front of buf. Any
// structural problem returns ErrCorrupt with consumed 0.
func DecodeResponse(buf []byte, dim int) (Response, int, error) {
	if dim <= 0 || dim > maxDim {
		return Response{}, 0, fmt.Errorf("%w: implausible dim %d", ErrCorrupt, dim)
	}
	payload, n, err := frame(buf, respMinSize)
	if err != nil {
		return Response{}, 0, err
	}
	var r Response
	r.Op = payload[0]
	r.ID = binary.LittleEndian.Uint64(payload[1:])
	r.Status = payload[9]
	if r.Op < OpHello || r.Op > opMax {
		return Response{}, 0, fmt.Errorf("%w: unknown response op %d", ErrCorrupt, r.Op)
	}
	c := &body{b: payload[respMinSize:]}
	if r.Status != StatusOK {
		if r.Status != StatusClosed && r.Status != StatusError && r.Status != StatusOverloaded && r.Status != StatusNotRetained {
			return Response{}, 0, fmt.Errorf("%w: unknown status %d", ErrCorrupt, r.Status)
		}
		if r.Status == StatusOverloaded {
			hint, ok := c.u32()
			if !ok {
				return Response{}, 0, fmt.Errorf("%w: overloaded response missing retry hint", ErrCorrupt)
			}
			r.RetryAfterMillis = hint
		}
		m, ok := c.u32()
		if !ok || uint64(m) > uint64(c.rest()) {
			return Response{}, 0, fmt.Errorf("%w: error message overruns", ErrCorrupt)
		}
		r.ErrMsg = string(c.b[c.off : c.off+int(m)])
		c.off += int(m)
		if c.rest() != 0 {
			return Response{}, 0, fmt.Errorf("%w: error response: %d trailing bytes", ErrCorrupt, c.rest())
		}
		return r, n, nil
	}
	switch r.Op {
	case OpHello:
		d, ok := c.u32()
		s, ok2 := c.u32()
		if !ok || !ok2 {
			return Response{}, 0, fmt.Errorf("%w: short hello", ErrCorrupt)
		}
		r.Dim, r.Shards = int32(d), int32(s)
	case OpKNN:
		nq, ok := c.u32()
		if !ok {
			return Response{}, 0, fmt.Errorf("%w: KNN missing query count", ErrCorrupt)
		}
		// Each per-query list needs ≥4 bytes for its own count.
		if uint64(nq)*4 > uint64(c.rest()) {
			return Response{}, 0, fmt.Errorf("%w: KNN query count %d overruns", ErrCorrupt, nq)
		}
		if nq > 0 {
			r.Neighbors = make([][]int32, nq)
			for i := range r.Neighbors {
				if r.Neighbors[i], err = c.ids("neighbor"); err != nil {
					return Response{}, 0, err
				}
			}
		}
	case OpRange:
		if r.IDs, err = c.ids("range"); err != nil {
			return Response{}, 0, err
		}
	case OpRangeCount:
		v, ok := c.u64()
		if !ok {
			return Response{}, 0, fmt.Errorf("%w: short range count", ErrCorrupt)
		}
		r.Count = v
	case OpUpdate:
		if r.IDs, err = c.ids("update"); err != nil {
			return Response{}, 0, err
		}
		del, ok := c.u64()
		ep, ok2 := c.u64()
		if !ok || !ok2 {
			return Response{}, 0, fmt.Errorf("%w: short update result", ErrCorrupt)
		}
		r.Deleted, r.Epoch = del, ep
	case OpEpoch, OpCheckpoint, OpPin, OpUnpin:
		v, ok := c.u64()
		if !ok {
			return Response{}, 0, fmt.Errorf("%w: short epoch", ErrCorrupt)
		}
		r.Epoch = v
	case OpStats:
		ns, ok := c.u32()
		if !ok {
			return Response{}, 0, fmt.Errorf("%w: stats missing count", ErrCorrupt)
		}
		// Each stat needs ≥10 bytes (name length + value).
		if uint64(ns)*10 > uint64(c.rest()) {
			return Response{}, 0, fmt.Errorf("%w: stats count %d overruns", ErrCorrupt, ns)
		}
		if ns > 0 {
			r.Stats = make([]Stat, ns)
			for i := range r.Stats {
				m, ok := c.u16()
				if !ok || uint64(m) > uint64(c.rest()) {
					return Response{}, 0, fmt.Errorf("%w: stat name overruns", ErrCorrupt)
				}
				name := string(c.b[c.off : c.off+int(m)])
				c.off += int(m)
				v, ok := c.u64()
				if !ok {
					return Response{}, 0, fmt.Errorf("%w: stat missing value", ErrCorrupt)
				}
				r.Stats[i] = Stat{Name: name, Value: v}
			}
		}
	}
	if c.rest() != 0 {
		return Response{}, 0, fmt.Errorf("%w: response op %d: %d trailing bytes", ErrCorrupt, r.Op, c.rest())
	}
	return r, n, nil
}

// ReadFrame reads one complete frame (header plus payload) from r,
// reusing buf's storage when it is large enough. It validates only the
// length bound — CRC and structure are the decoders' job — so a torn or
// hostile stream fails fast without a giant allocation. A clean EOF
// before any header byte returns io.EOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf[:0], err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return buf[:0], fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	total := frameHeaderSize + int(n)
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[frameHeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf[:0], err
	}
	return buf, nil
}
