package geom

import (
	"testing"
	"testing/quick"
)

func TestExactOrient2DNearDegenerate(t *testing.T) {
	// Points almost exactly on a line; the float filter is inconclusive
	// but the exact fallback must get the sign right.
	a := []float64{0, 0}
	b := []float64{1e16, 1e16}
	cAbove := []float64{5e15, 5e15 + 1} // 1 ulp-ish above the line
	cBelow := []float64{5e15, 5e15 - 1}
	cOn := []float64{5e15, 5e15}
	if Orient2D(a, b, cAbove) != 1 {
		t.Fatal("above should be +1")
	}
	if Orient2D(a, b, cBelow) != -1 {
		t.Fatal("below should be -1")
	}
	if Orient2D(a, b, cOn) != 0 {
		t.Fatal("on should be 0")
	}
}

func TestExactMatchesFilteredWhenConfident(t *testing.T) {
	// Property: the exact sign always matches the filter when the filter
	// is confident; here we simply check exact agrees with itself under
	// argument rotation (cyclic invariance) and antisymmetry.
	f := func(raw [6]int32) bool {
		a := []float64{float64(raw[0]), float64(raw[1])}
		b := []float64{float64(raw[2]), float64(raw[3])}
		c := []float64{float64(raw[4]), float64(raw[5])}
		s := orient2DExact(a, b, c)
		return s == orient2DExact(b, c, a) && s == -orient2DExact(b, a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactInCircleCocircular(t *testing.T) {
	// Four points exactly on the unit circle.
	a, b, c := []float64{1, 0}, []float64{0, 1}, []float64{-1, 0}
	if got := InCircle(a, b, c, []float64{0, -1}); got != 0 {
		t.Fatalf("cocircular point: %d", got)
	}
	// A point displaced by the smallest representable amount.
	in := []float64{0, -0.9999999999999999}
	if got := InCircle(a, b, c, in); got != 1 {
		t.Fatalf("barely-inside point: %d", got)
	}
}

func TestExactOrient3DNearCoplanar(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1e8, 0, 0}
	c := []float64{0, 1e8, 0}
	// d displaced off the plane by an amount far below the filter
	// threshold at this scale.
	dUp := []float64{3e7, 3e7, 1e-9}
	dDown := []float64{3e7, 3e7, -1e-9}
	dOn := []float64{3e7, 3e7, 0}
	if Orient3D(a, b, c, dUp) == Orient3D(a, b, c, dDown) {
		t.Fatal("up and down displacements must differ in sign")
	}
	if Orient3D(a, b, c, dOn) != 0 {
		t.Fatal("coplanar should be 0")
	}
}

func TestExactDet3(t *testing.T) {
	// Diagonal configuration: det(diag(2,3,4)) = 24 > 0, expressed as the
	// orientation of the three axis points against the origin.
	a := []float64{2, 0, 0}
	b := []float64{0, 3, 0}
	c := []float64{0, 0, 4}
	d := []float64{0, 0, 0}
	if orient3DExact(a, b, c, d) != 1 {
		t.Fatal("positive determinant expected")
	}
	if orient3DExact(b, a, c, d) != -1 {
		t.Fatal("swapped rows must flip the sign")
	}
}
