// Package geom is the geometric kernel shared by every ParGeo module: point
// storage, bounding boxes, distances, and the orientation / in-sphere /
// plane-side predicates the algorithms are built from.
//
// Point storage is a flat structure-of-arrays buffer (Points) holding n
// d-dimensional float64 coordinates contiguously. Algorithms address points
// by index, which keeps the hot loops allocation-free and cache-friendly and
// lets permutations be expressed over []int32 index slices — the same layout
// decision ParGeo makes with its pargeo::point<dim>.
package geom

import (
	"fmt"
	"math"
)

// Points is a flat, structure-of-arrays buffer of n points in R^d.
// Point i occupies Data[i*Dim : (i+1)*Dim].
type Points struct {
	Data []float64
	Dim  int
}

// NewPoints allocates storage for n d-dimensional points.
func NewPoints(n, dim int) Points {
	return Points{Data: make([]float64, n*dim), Dim: dim}
}

// Len returns the number of points.
func (p Points) Len() int {
	if p.Dim == 0 {
		return 0
	}
	return len(p.Data) / p.Dim
}

// At returns a slice aliasing the coordinates of point i.
func (p Points) At(i int) []float64 {
	return p.Data[i*p.Dim : i*p.Dim+p.Dim : i*p.Dim+p.Dim]
}

// Coord returns coordinate c of point i.
func (p Points) Coord(i, c int) float64 { return p.Data[i*p.Dim+c] }

// Set copies coords into point i.
func (p Points) Set(i int, coords []float64) {
	copy(p.Data[i*p.Dim:(i+1)*p.Dim], coords)
}

// Slice returns the sub-buffer containing points [lo, hi).
func (p Points) Slice(lo, hi int) Points {
	return Points{Data: p.Data[lo*p.Dim : hi*p.Dim], Dim: p.Dim}
}

// Gather returns a new buffer with the points at the given indices, in order.
func (p Points) Gather(idx []int32) Points {
	out := NewPoints(len(idx), p.Dim)
	for k, i := range idx {
		copy(out.Data[k*p.Dim:(k+1)*p.Dim], p.At(int(i)))
	}
	return out
}

// Append appends the coordinates of one point and returns the new buffer.
func (p Points) Append(coords []float64) Points {
	if len(coords) != p.Dim {
		panic(fmt.Sprintf("geom: appending %d-dim point to %d-dim buffer", len(coords), p.Dim))
	}
	p.Data = append(p.Data, coords...)
	return p
}

// SqDist returns the squared Euclidean distance between points i and j.
func (p Points) SqDist(i, j int) float64 {
	a := p.At(i)
	b := p.At(j)
	return SqDist(a, b)
}

// SqDist returns the squared Euclidean distance between coordinate slices.
func SqDist(a, b []float64) float64 {
	s := 0.0
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between coordinate slices.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Box is an axis-aligned bounding box in R^d.
type Box struct {
	Min, Max []float64
}

// EmptyBox returns a box that contains nothing (Min=+inf, Max=-inf).
func EmptyBox(dim int) Box {
	b := Box{Min: make([]float64, dim), Max: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		b.Min[i] = math.Inf(1)
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// Expand grows the box to include the point with the given coordinates.
func (b *Box) Expand(coords []float64) {
	for i, v := range coords {
		if v < b.Min[i] {
			b.Min[i] = v
		}
		if v > b.Max[i] {
			b.Max[i] = v
		}
	}
}

// Union grows the box to include box o.
func (b *Box) Union(o Box) {
	for i := range b.Min {
		if o.Min[i] < b.Min[i] {
			b.Min[i] = o.Min[i]
		}
		if o.Max[i] > b.Max[i] {
			b.Max[i] = o.Max[i]
		}
	}
}

// Contains reports whether the point lies inside the closed box.
func (b Box) Contains(coords []float64) bool {
	for i, v := range coords {
		if v < b.Min[i] || v > b.Max[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	for i := range b.Min {
		if o.Min[i] < b.Min[i] || o.Max[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two closed boxes overlap.
func (b Box) Intersects(o Box) bool {
	for i := range b.Min {
		if o.Max[i] < b.Min[i] || o.Min[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// SqDistToPoint returns the squared distance from the box to the point
// (zero if inside).
func (b Box) SqDistToPoint(coords []float64) float64 {
	s := 0.0
	for i, v := range coords {
		if v < b.Min[i] {
			d := b.Min[i] - v
			s += d * d
		} else if v > b.Max[i] {
			d := v - b.Max[i]
			s += d * d
		}
	}
	return s
}

// SqDistToBox returns the squared distance between two boxes (zero if they
// intersect).
func (b Box) SqDistToBox(o Box) float64 {
	s := 0.0
	for i := range b.Min {
		var d float64
		if o.Max[i] < b.Min[i] {
			d = b.Min[i] - o.Max[i]
		} else if b.Max[i] < o.Min[i] {
			d = o.Min[i] - b.Max[i]
		}
		s += d * d
	}
	return s
}

// MaxSqDistToPoint returns the squared distance from the point to the
// farthest corner of the box.
func (b Box) MaxSqDistToPoint(coords []float64) float64 {
	s := 0.0
	for i, v := range coords {
		d := math.Max(math.Abs(v-b.Min[i]), math.Abs(v-b.Max[i]))
		s += d * d
	}
	return s
}

// Diameter returns the squared length of the box diagonal.
func (b Box) SqDiameter() float64 {
	s := 0.0
	for i := range b.Min {
		d := b.Max[i] - b.Min[i]
		s += d * d
	}
	return s
}

// Center writes the box center into out.
func (b Box) Center(out []float64) {
	for i := range b.Min {
		out[i] = (b.Min[i] + b.Max[i]) / 2
	}
}

// WidestDim returns the dimension with the largest extent.
func (b Box) WidestDim() int {
	best, bestW := 0, b.Max[0]-b.Min[0]
	for i := 1; i < len(b.Min); i++ {
		if w := b.Max[i] - b.Min[i]; w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// BoundingBox computes the bounding box of the points at the given indices.
func BoundingBox(p Points, idx []int32) Box {
	b := EmptyBox(p.Dim)
	for _, i := range idx {
		b.Expand(p.At(int(i)))
	}
	return b
}

// BoundingBoxAll computes the bounding box of every point in the buffer.
func BoundingBoxAll(p Points) Box {
	b := EmptyBox(p.Dim)
	n := p.Len()
	for i := 0; i < n; i++ {
		b.Expand(p.At(i))
	}
	return b
}
