package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointsBasics(t *testing.T) {
	p := NewPoints(3, 2)
	p.Set(0, []float64{1, 2})
	p.Set(1, []float64{3, 4})
	p.Set(2, []float64{5, 6})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Coord(1, 1) != 4 {
		t.Fatalf("Coord(1,1) = %v", p.Coord(1, 1))
	}
	if got := p.At(2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("At(2) = %v", got)
	}
	s := p.Slice(1, 3)
	if s.Len() != 2 || s.Coord(0, 0) != 3 {
		t.Fatalf("Slice bad: %+v", s)
	}
	g := p.Gather([]int32{2, 0})
	if g.Coord(0, 0) != 5 || g.Coord(1, 0) != 1 {
		t.Fatalf("Gather bad: %+v", g)
	}
	if d := p.SqDist(0, 1); d != 8 {
		t.Fatalf("SqDist = %v", d)
	}
}

func TestBoxOperations(t *testing.T) {
	b := EmptyBox(2)
	if b.Contains([]float64{0, 0}) {
		t.Fatal("empty box contains point")
	}
	b.Expand([]float64{1, 1})
	b.Expand([]float64{3, 5})
	if !b.Contains([]float64{2, 3}) || b.Contains([]float64{0, 0}) {
		t.Fatal("contains wrong")
	}
	o := EmptyBox(2)
	o.Expand([]float64{4, 4})
	o.Expand([]float64{6, 6})
	if b.Intersects(o) {
		t.Fatal("disjoint boxes intersect") // b.max=(3,5), o.min=(4,4): disjoint in x
	}
	if d := b.SqDistToPoint([]float64{5, 5}); d != 4 {
		t.Fatalf("SqDistToPoint = %v", d)
	}
	if d := b.SqDistToBox(o); d != 1 {
		t.Fatalf("SqDistToBox = %v, want 1", d)
	}
	b.Union(o)
	if !b.ContainsBox(o) {
		t.Fatal("union does not contain operand")
	}
	if w := b.WidestDim(); w != 0 && w != 1 {
		t.Fatalf("WidestDim = %d", w)
	}
	c := make([]float64, 2)
	b.Center(c)
	if c[0] != 3.5 || c[1] != 3.5 {
		t.Fatalf("Center = %v", c)
	}
}

func TestOrient2D(t *testing.T) {
	a, b := []float64{0, 0}, []float64{1, 0}
	if Orient2D(a, b, []float64{0.5, 1}) != 1 {
		t.Fatal("left should be +1")
	}
	if Orient2D(a, b, []float64{0.5, -1}) != -1 {
		t.Fatal("right should be -1")
	}
	if Orient2D(a, b, []float64{2, 0}) != 0 {
		t.Fatal("collinear should be 0")
	}
}

func TestOrient3DAndPlaneSide(t *testing.T) {
	a, b, c := []float64{0, 0, 0}, []float64{1, 0, 0}, []float64{0, 1, 0}
	// PlaneSide3 positive above the CCW plane (normal +z).
	if PlaneSide3(a, b, c, []float64{0, 0, 1}) <= 0 {
		t.Fatal("above should be positive")
	}
	if PlaneSide3(a, b, c, []float64{0, 0, -1}) >= 0 {
		t.Fatal("below should be negative")
	}
	if Orient3D(a, b, c, []float64{0.2, 0.2, 0}) != 0 {
		t.Fatal("coplanar should be 0")
	}
	if Orient3D(a, b, c, []float64{0, 0, 1}) == 0 {
		t.Fatal("off-plane should be nonzero")
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) (CCW).
	a, b, c := []float64{1, 0}, []float64{0, 1}, []float64{-1, 0}
	if InCircle(a, b, c, []float64{0, 0}) != 1 {
		t.Fatal("origin should be inside")
	}
	if InCircle(a, b, c, []float64{2, 2}) != -1 {
		t.Fatal("(2,2) should be outside")
	}
	if InCircle(a, b, c, []float64{0, -1}) != 0 {
		t.Fatal("(0,-1) should be on the circle")
	}
}

func TestCircumball(t *testing.T) {
	center := make([]float64, 2)
	// Two points: midpoint.
	sq, ok := Circumball([][]float64{{0, 0}, {2, 0}}, center)
	if !ok || sq != 1 || center[0] != 1 || center[1] != 0 {
		t.Fatalf("two-point circumball: %v %v %v", sq, center, ok)
	}
	// Right triangle (0,0),(2,0),(0,2): circumcenter (1,1), r² = 2.
	sq, ok = Circumball([][]float64{{0, 0}, {2, 0}, {0, 2}}, center)
	if !ok || math.Abs(sq-2) > 1e-12 || math.Abs(center[0]-1) > 1e-12 {
		t.Fatalf("triangle circumball: %v %v", sq, center)
	}
	// 3D tetra circumball.
	c3 := make([]float64, 3)
	sq, ok = Circumball([][]float64{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, c3)
	if !ok || math.Abs(sq-1) > 1e-12 {
		t.Fatalf("tetra circumball: %v %v", sq, c3)
	}
	// Degenerate: collinear 3 points.
	if _, ok := Circumball([][]float64{{0, 0}, {1, 0}, {2, 0}}, center); ok {
		t.Fatal("collinear circumball should fail")
	}
	// Degenerate but not axis-aligned: exactly collinear triples whose
	// Gram matrix cancels to a ~1e-13 elimination residual instead of a
	// clean zero. An absolute pivot epsilon accepted these and solved
	// them into a garbage center (caught by TestCircumballProperty); the
	// pivot test must be relative to the matrix scale.
	for _, pts := range [][][]float64{
		{{16, 8}, {-8, 56}, {44, -48}},
		{{52, 44}, {-68, -28}, {12, 20}},
	} {
		if Orient2D(pts[0], pts[1], pts[2]) != 0 {
			t.Fatalf("test triple %v is not exactly collinear", pts)
		}
		if _, ok := Circumball(pts, center); ok {
			t.Fatalf("near-cancelling collinear circumball %v should fail", pts)
		}
	}
	// Empty and single-point supports.
	if sq, ok := Circumball(nil, center); !ok || sq != 0 {
		t.Fatal("empty circumball")
	}
	if sq, ok := Circumball([][]float64{{3, 4}}, center); !ok || sq != 0 || center[0] != 3 {
		t.Fatal("single-point circumball")
	}
}

func TestCircumballProperty(t *testing.T) {
	// Property: all support points are equidistant from the center.
	f := func(raw [6]float64) bool {
		pts := [][]float64{
			{math.Mod(raw[0], 100), math.Mod(raw[1], 100)},
			{math.Mod(raw[2], 100), math.Mod(raw[3], 100)},
			{math.Mod(raw[4], 100), math.Mod(raw[5], 100)},
		}
		for _, p := range pts {
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
			}
		}
		center := make([]float64, 2)
		sq, ok := Circumball(pts, center)
		if !ok {
			return true // degenerate input
		}
		for _, p := range pts {
			if math.Abs(SqDist(center, p)-sq) > 1e-6*(1+sq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrient2DProperty(t *testing.T) {
	// Antisymmetry: swapping two arguments flips the sign.
	f := func(raw [6]int16) bool {
		a := []float64{float64(raw[0]), float64(raw[1])}
		b := []float64{float64(raw[2]), float64(raw[3])}
		c := []float64{float64(raw[4]), float64(raw[5])}
		return Orient2D(a, b, c) == -Orient2D(b, a, c) &&
			Orient2D(a, b, c) == Orient2D(b, c, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
