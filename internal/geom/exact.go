package geom

import "math/big"

// Exact-arithmetic fallbacks for the geometric predicates. The fast paths
// in predicates.go evaluate the determinants in float64 with a forward
// error bound; when the magnitude falls inside the uncertainty interval the
// sign is recomputed here exactly with big.Rat (every float64 is exactly
// representable as a rational, so this incurs no rounding at all). The
// fallback triggers only on (near-)degenerate inputs, so its cost is
// invisible on the random workloads of the paper while making the
// predicates' signs — and therefore the hulls and triangulations — exact.

func ratOf(v float64) *big.Rat { return new(big.Rat).SetFloat64(v) }

// orient2DExact returns the exact sign of the 2D orientation determinant.
func orient2DExact(a, b, c []float64) int {
	// (b-a) x (c-a) over rationals.
	bax := new(big.Rat).Sub(ratOf(b[0]), ratOf(a[0]))
	bay := new(big.Rat).Sub(ratOf(b[1]), ratOf(a[1]))
	cax := new(big.Rat).Sub(ratOf(c[0]), ratOf(a[0]))
	cay := new(big.Rat).Sub(ratOf(c[1]), ratOf(a[1]))
	l := new(big.Rat).Mul(bax, cay)
	r := new(big.Rat).Mul(bay, cax)
	return l.Cmp(r)
}

// orient3DExact returns the exact sign of the 3x3 orientation determinant
// with rows (a-d, b-d, c-d).
func orient3DExact(a, b, c, d []float64) int {
	var m [3][3]*big.Rat
	rows := [3][]float64{a, b, c}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m[i][j] = new(big.Rat).Sub(ratOf(rows[i][j]), ratOf(d[j]))
		}
	}
	return det3(m).Sign()
}

func det3(m [3][3]*big.Rat) *big.Rat {
	minor := func(r0, r1, c0, c1 int) *big.Rat {
		l := new(big.Rat).Mul(m[r0][c0], m[r1][c1])
		r := new(big.Rat).Mul(m[r0][c1], m[r1][c0])
		return l.Sub(l, r)
	}
	out := new(big.Rat).Mul(m[0][0], minor(1, 2, 1, 2))
	t := new(big.Rat).Mul(m[0][1], minor(1, 2, 0, 2))
	out.Sub(out, t)
	t = new(big.Rat).Mul(m[0][2], minor(1, 2, 0, 1))
	return out.Add(out, t)
}

// inCircleExact returns the exact sign of the in-circle determinant for
// CCW triangle (a, b, c) and query d.
func inCircleExact(a, b, c, d []float64) int {
	var m [3][3]*big.Rat
	rows := [3][]float64{a, b, c}
	for i := 0; i < 3; i++ {
		dx := new(big.Rat).Sub(ratOf(rows[i][0]), ratOf(d[0]))
		dy := new(big.Rat).Sub(ratOf(rows[i][1]), ratOf(d[1]))
		lift := new(big.Rat).Mul(dx, dx)
		t := new(big.Rat).Mul(dy, dy)
		lift.Add(lift, t)
		m[i][0], m[i][1], m[i][2] = dx, dy, lift
	}
	return det3(m).Sign()
}
