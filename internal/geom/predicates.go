package geom

import "math"

// The predicates below follow the standard computational-geometry sign
// conventions (de Berg et al.). They are evaluated in double precision with
// a relative-error filter: when the computed determinant is smaller than an
// error bound proportional to the magnitude of its terms, the sign is
// reported as 0 (degenerate) rather than trusted. This "filtered float"
// approach matches what ParGeo does in practice (it also uses double
// arithmetic) and is sufficient for the randomized inputs used in the
// paper's evaluation; it avoids the enormous constant factors of exact
// arithmetic while never inventing a confident wrong sign on nearly
// degenerate inputs.

const orient2DErrBound = 3.3306690738754716e-16 * 4 // ~(3+16eps)eps

// Orient2D returns +1 if c lies to the left of directed line a->b, -1 if to
// the right, and 0 if the three points are exactly collinear. The float
// filter decides all but near-degenerate cases; those fall back to exact
// rational arithmetic (exact.go).
func Orient2D(a, b, c []float64) int {
	acx, acy := a[0]-c[0], a[1]-c[1]
	bcx, bcy := b[0]-c[0], b[1]-c[1]
	det := acx*bcy - acy*bcx
	detsum := math.Abs(acx*bcy) + math.Abs(acy*bcx)
	if det > detsum*orient2DErrBound {
		return 1
	}
	if det < -detsum*orient2DErrBound {
		return -1
	}
	return orient2DExact(a, b, c)
}

// Cross2D returns the raw signed area determinant (b-a) x (c-a).
func Cross2D(a, b, c []float64) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}

// Orient3D returns +1 if d lies below the plane through a,b,c (where
// "below" means Orient3D(a,b,c,d) sees a,b,c in counterclockwise order when
// viewed from above), -1 if above, 0 if (nearly) coplanar.
func Orient3D(a, b, c, d []float64) int {
	adx, ady, adz := a[0]-d[0], a[1]-d[1], a[2]-d[2]
	bdx, bdy, bdz := b[0]-d[0], b[1]-d[1], b[2]-d[2]
	cdx, cdy, cdz := c[0]-d[0], c[1]-d[1], c[2]-d[2]

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)
	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	errBound := 7.771561172376103e-16 * permanent // ~(7+56eps)eps
	if det > errBound {
		return 1
	}
	if det < -errBound {
		return -1
	}
	return orient3DExact(a, b, c, d)
}

// InCircle returns +1 if d lies strictly inside the circle through a, b, c
// (which must be in counterclockwise order), -1 if strictly outside, and 0
// if (nearly) on the circle.
func InCircle(a, b, c, d []float64) int {
	adx, ady := a[0]-d[0], a[1]-d[1]
	bdx, bdy := b[0]-d[0], b[1]-d[1]
	cdx, cdy := c[0]-d[0], c[1]-d[1]

	alift := adx*adx + ady*ady
	blift := bdx*bdx + bdy*bdy
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdx*cdy-cdx*bdy) + blift*(cdx*ady-adx*cdy) + clift*(adx*bdy-bdx*ady)
	permanent := alift*(math.Abs(bdx*cdy)+math.Abs(cdx*bdy)) +
		blift*(math.Abs(cdx*ady)+math.Abs(adx*cdy)) +
		clift*(math.Abs(adx*bdy)+math.Abs(bdx*ady))
	errBound := 1.1102230246251565e-15 * permanent
	if det > errBound {
		return 1
	}
	if det < -errBound {
		return -1
	}
	return inCircleExact(a, b, c, d)
}

// PlaneSide3 evaluates the signed volume of the tetrahedron (a, b, c, p):
// positive when p is on the positive side of the oriented plane (a,b,c).
// This is the raw determinant used for hull visibility tests, where the
// magnitude (distance proxy) matters, not only the sign.
func PlaneSide3(a, b, c, p []float64) float64 {
	abx, aby, abz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	acx, acy, acz := c[0]-a[0], c[1]-a[1], c[2]-a[2]
	apx, apy, apz := p[0]-a[0], p[1]-a[1], p[2]-a[2]
	// (ab x ac) . ap
	return (aby*acz-abz*acy)*apx + (abz*acx-abx*acz)*apy + (abx*acy-aby*acx)*apz
}

// Circumball computes the center and squared radius of the smallest ball
// whose boundary passes through all the given support points (1 to d+1
// points in R^d). For k support points it finds the circumcenter within
// their affine hull by solving the k-1 linear equations
//
//	2 (p_i - p_0) . x = |p_i|^2 - |p_0|^2
//
// restricted to x = p_0 + sum_j t_j (p_j - p_0), via Gaussian elimination
// with partial pivoting. Returns ok=false for (nearly) degenerate support
// sets. This is the algebra underlying every smallest-enclosing-ball
// variant in the seb package.
func Circumball(pts [][]float64, center []float64) (sqRadius float64, ok bool) {
	k := len(pts)
	d := len(center)
	if k == 0 {
		for i := range center {
			center[i] = 0
		}
		return 0, true
	}
	if k == 1 {
		copy(center, pts[0])
		return 0, true
	}
	if k > d+1 {
		return 0, false
	}
	m := k - 1
	// Build the m x m system A t = b where A[i][j] = v_i . v_j * 2,
	// b[i] = v_i . v_i, with v_i = p_{i+1} - p_0.
	v := make([][]float64, m)
	for i := 0; i < m; i++ {
		v[i] = make([]float64, d)
		for c := 0; c < d; c++ {
			v[i][c] = pts[i+1][c] - pts[0][c]
		}
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			dot := 0.0
			for c := 0; c < d; c++ {
				dot += v[i][c] * v[j][c]
			}
			a[i][j] = 2 * dot
		}
		selfDot := 0.0
		for c := 0; c < d; c++ {
			selfDot += v[i][c] * v[i][c]
		}
		b[i] = selfDot
	}
	// Gaussian elimination with partial pivoting. The singularity
	// threshold must be RELATIVE to the matrix scale: an exactly
	// collinear support set leaves a cancellation residual of order
	// scale*1e-16 in the eliminated column — far above any absolute
	// epsilon, which would accept the system and solve it into a garbage
	// center. Condition numbers past 1e12 mean the circumcenter has no
	// meaningful digits left anyway, so such supports are reported
	// degenerate.
	scale := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if ab := math.Abs(a[i][j]); ab > scale {
				scale = ab
			}
		}
	}
	tol := scale * 1e-12
	if tol < 1e-300 {
		tol = 1e-300
	}
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < tol {
			return 0, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	t := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < m; c++ {
			s -= a[r][c] * t[c]
		}
		t[r] = s / a[r][r]
	}
	copy(center, pts[0])
	for i := 0; i < m; i++ {
		for c := 0; c < d; c++ {
			center[c] += t[i] * v[i][c]
		}
	}
	sq := SqDist(center, pts[0])
	if math.IsNaN(sq) || math.IsInf(sq, 0) {
		return 0, false
	}
	return sq, true
}
