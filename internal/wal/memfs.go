package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrash is returned by every MemFS operation at and after an injected
// crash point: to the code under test it looks like the machine lost
// power mid-operation.
var ErrCrash = errors.New("wal: injected crash")

// MemFS is a deterministic in-memory VFS with fault injection — the test
// half of the durability design. It tracks, per file, how much of the
// data has been made durable by Sync, counts every fallible operation
// (Create, Write, Sync, Rename, Remove), and can be armed to crash at
// exactly the Nth such operation, optionally applying only a torn prefix
// of the crashing write. After the crash point every operation fails
// with ErrCrash; CrashImage then produces the file system a rebooted
// process would find, in either of the two adversarial limits (all
// unsynced data retained, or all of it lost).
//
// The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	ops     int // fallible operations performed so far
	crashAt int // crash when ops reaches this value; 0 = never
	torn    bool
	crashed bool
}

type memFile struct {
	data   []byte
	synced int // prefix length guaranteed durable
	closed bool
}

// NewMemFS returns an empty in-memory file system with no crash armed.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// SetCrash arms a crash at the op-th fallible operation from now
// (1-based: SetCrash(1, ...) fails the very next one). If torn is set
// and the crashing operation is a write, the first half of its bytes
// are applied (unsynced) before the failure — a torn write.
func (fs *MemFS) SetCrash(op int, torn bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = fs.ops + op
	fs.torn = torn
}

// Ops returns the number of fallible operations performed so far —
// the size of the crash-point enumeration space for a given workload.
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the armed crash point was reached.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// CrashImage returns a fresh MemFS holding what a rebooted process could
// find on disk. With dropUnsynced, every file is truncated to its last
// synced length (the adversarial limit where the page cache lost
// everything); otherwise all written data survived (the lucky limit).
// Any real crash outcome lies between the two, and a correct recovery
// procedure must handle both — plus the torn final write SetCrash can
// leave in either image.
func (fs *MemFS) CrashImage(dropUnsynced bool) *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := NewMemFS()
	for d := range fs.dirs {
		img.dirs[d] = true
	}
	for name, f := range fs.files {
		n := len(f.data)
		if dropUnsynced {
			n = f.synced
		}
		data := append([]byte(nil), f.data[:n]...)
		img.files[name] = &memFile{data: data, synced: len(data)}
	}
	return img
}

// step counts one fallible operation and reports whether it must crash.
// Caller holds fs.mu.
func (fs *MemFS) step() bool {
	if fs.crashed {
		return true
	}
	fs.ops++
	if fs.crashAt > 0 && fs.ops >= fs.crashAt {
		fs.crashed = true
		return true
	}
	return false
}

// MkdirAll implements VFS. Directory creation is metadata-only and not a
// crash point (the WAL creates its directory once, before any durability
// promise exists).
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrash
	}
	fs.dirs[filepath.Clean(dir)] = true
	return nil
}

// Create implements VFS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.step() {
		return nil, ErrCrash
	}
	f := &memFile{}
	fs.files[filepath.Clean(name)] = f
	return &memHandle{fs: fs, f: f}, nil
}

// ReadFile implements VFS.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrash
	}
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("wal: memfs: %s: no such file", name)
	}
	return append([]byte(nil), f.data...), nil
}

// ReadDir implements VFS.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrash
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			rest := name[len(prefix):]
			if !strings.ContainsRune(rest, filepath.Separator) {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements VFS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.step() {
		return ErrCrash
	}
	o := filepath.Clean(oldname)
	f, ok := fs.files[o]
	if !ok {
		return fmt.Errorf("wal: memfs: %s: no such file", oldname)
	}
	delete(fs.files, o)
	fs.files[filepath.Clean(newname)] = f
	return nil
}

// Remove implements VFS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.step() {
		return ErrCrash
	}
	n := filepath.Clean(name)
	if _, ok := fs.files[n]; !ok {
		return fmt.Errorf("wal: memfs: %s: no such file", name)
	}
	delete(fs.files, n)
	return nil
}

// memHandle is a writable handle into a MemFS file.
type memHandle struct {
	fs *MemFS
	f  *memFile
}

// Write implements File. A crashing write applies a torn prefix (half of
// p, unsynced) when the crash was armed torn, else nothing.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	already := h.fs.crashed
	if h.fs.step() {
		// Only the write that hits the crash point tears; operations after
		// the crash touch nothing (the machine is off).
		if h.fs.torn && !already && !h.f.closed {
			h.f.data = append(h.f.data, p[:len(p)/2]...)
		}
		return 0, ErrCrash
	}
	if h.f.closed {
		return 0, errors.New("wal: memfs: write on closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync implements File.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.step() {
		return ErrCrash
	}
	if h.f.closed {
		return errors.New("wal: memfs: sync on closed file")
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File. Closing is not a crash point: it makes no
// durability promise.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.closed = true
	return nil
}
