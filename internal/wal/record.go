package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"pargeo/internal/geom"
)

// Record kinds. A commit record carries one published engine epoch's worth
// of data — every delete batch (in request order) followed by the combined
// insert batch of the commit group. A note record carries no data: it
// exists so that epochs published without data (the rebalancer swapping
// partitions) still appear in the log, keeping replay's epoch-contiguity
// check tight.
const (
	KindCommit = 1
	KindNote   = 2
)

// Frame layout, little-endian:
//
//	[4] payload length
//	[4] CRC32 (Castagnoli) of payload
//	payload:
//	  [1] kind
//	  [8] epoch
//	  body (kind-specific, may be empty)
//
// Commit body:
//
//	[4] ndel
//	ndel × { [4] rows, rows*dim*[8] coords }
//	[4] nins
//	nins × [4] id
//	nins × dim × [8] coords
//
// dim is not stored per record; it is a property of the log's directory
// (recorded in every checkpoint) and passed to the decoder.
const (
	frameHeaderSize = 8
	payloadMinSize  = 9 // kind + epoch

	// maxRecordSize bounds a single frame's payload. Decoders reject
	// larger length prefixes before allocating, so a corrupt length
	// cannot trigger a huge allocation. 1 GiB comfortably exceeds any
	// real commit group.
	maxRecordSize = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid frame or payload. Replay
// treats a corrupt frame at the tail of the last segment as a torn write
// and discards it; anywhere else it is data loss and recovery fails loudly.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is a decoded WAL record.
type Record struct {
	Kind  byte
	Epoch uint64

	// KindCommit only.
	Dels []geom.Points // delete batches, request order
	Ins  geom.Points   // combined insert batch
	IDs  []int32       // ids parallel to Ins rows
}

// AppendCommitBody appends a commit record body for the given batches to
// dst and returns the extended slice. All batches must share dim; ids is
// parallel to ins rows.
func AppendCommitBody(dst []byte, dels []geom.Points, ins geom.Points, ids []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dels)))
	for _, d := range dels {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Len()))
		dst = appendCoords(dst, d.Data)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	dst = appendCoords(dst, ins.Data)
	return dst
}

func appendCoords(dst []byte, data []float64) []byte {
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendFrame appends a complete CRC-framed record to dst.
func appendFrame(dst []byte, kind byte, epoch uint64, body []byte) []byte {
	n := payloadMinSize + len(body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	// CRC over the payload; reserve the slot, fill after assembling.
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	payloadAt := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[payloadAt:], crcTable)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// DecodeRecord decodes one frame from the front of buf, returning the
// record and the number of bytes consumed. Any structural problem —
// truncated frame, oversized length, CRC mismatch, unknown kind, or a
// body that doesn't parse exactly — returns ErrCorrupt with consumed 0;
// the function never reads past len(buf) and never returns a record
// whose CRC did not verify.
func DecodeRecord(buf []byte, dim int) (rec Record, consumed int, err error) {
	if dim <= 0 || dim > maxCkptDim {
		return Record{}, 0, fmt.Errorf("%w: implausible dim %d", ErrCorrupt, dim)
	}
	if len(buf) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: short frame header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(buf)
	if n < payloadMinSize || n > maxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: bad payload length %d", ErrCorrupt, n)
	}
	if uint64(len(buf)-frameHeaderSize) < uint64(n) {
		return Record{}, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	rec.Kind = payload[0]
	rec.Epoch = binary.LittleEndian.Uint64(payload[1:])
	body := payload[payloadMinSize:]
	switch rec.Kind {
	case KindNote:
		if len(body) != 0 {
			return Record{}, 0, fmt.Errorf("%w: note record with body", ErrCorrupt)
		}
	case KindCommit:
		if err := decodeCommitBody(&rec, body, dim); err != nil {
			return Record{}, 0, err
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, rec.Kind)
	}
	return rec, frameHeaderSize + int(n), nil
}

// decodeCommitBody parses a commit body. Every length is validated
// against the remaining bytes before any allocation is sized from it, so
// corrupt (but CRC-colliding, e.g. fuzz-generated) input cannot cause
// over-reads or unbounded allocation.
func decodeCommitBody(rec *Record, body []byte, dim int) error {
	rowBytes := dim * 8
	off := 0
	u32 := func() (uint32, bool) {
		if len(body)-off < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	ndel, ok := u32()
	if !ok {
		return fmt.Errorf("%w: commit body: missing ndel", ErrCorrupt)
	}
	// Each delete batch needs ≥4 bytes; reject counts the body can't hold.
	if uint64(ndel) > uint64(len(body)-off)/4 {
		return fmt.Errorf("%w: commit body: ndel %d too large", ErrCorrupt, ndel)
	}
	rec.Dels = make([]geom.Points, 0, ndel)
	for i := uint32(0); i < ndel; i++ {
		rows, ok := u32()
		if !ok {
			return fmt.Errorf("%w: commit body: missing delete rows", ErrCorrupt)
		}
		if uint64(rows)*uint64(rowBytes) > uint64(len(body)-off) {
			return fmt.Errorf("%w: commit body: delete batch overruns", ErrCorrupt)
		}
		data, n := decodeCoords(body[off:], int(rows)*dim)
		off += n
		rec.Dels = append(rec.Dels, geom.Points{Data: data, Dim: dim})
	}
	nins, ok := u32()
	if !ok {
		return fmt.Errorf("%w: commit body: missing nins", ErrCorrupt)
	}
	if uint64(nins)*uint64(4+rowBytes) > uint64(len(body)-off) {
		return fmt.Errorf("%w: commit body: nins %d too large", ErrCorrupt, nins)
	}
	rec.IDs = make([]int32, nins)
	for i := range rec.IDs {
		v, _ := u32() // bounded by the nins check above
		rec.IDs[i] = int32(v)
	}
	data, n := decodeCoords(body[off:], int(nins)*dim)
	off += n
	rec.Ins = geom.Points{Data: data, Dim: dim}
	if off != len(body) {
		return fmt.Errorf("%w: commit body: %d trailing bytes", ErrCorrupt, len(body)-off)
	}
	return nil
}

// decodeCoords decodes count float64s from buf (caller has validated the
// length) and returns them with the byte count consumed.
func decodeCoords(buf []byte, count int) ([]float64, int) {
	data := make([]float64, count)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return data, count * 8
}
