package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Segment file layout: a 20-byte header ([8] magic "PGWAL001",
// [8] firstEpoch, [4] CRC32-C of the first 16 bytes) followed by frames
// (see record.go). firstEpoch is the epoch the first record appended to
// this segment will carry; checkpoint pruning uses it to decide which
// segments are dead without scanning them.
const (
	segMagic      = "PGWAL001"
	segHeaderSize = 20
	segSuffix     = ".seg"
	segPrefix     = "wal-"
)

// LogOptions tunes a Log.
type LogOptions struct {
	// SegmentSize is the byte threshold past which the next append
	// rotates to a fresh segment. <=0 means 4 MiB.
	SegmentSize int
	// SyncEvery selects the durability mode. 1 (or 0): every WaitDurable
	// joins a group-commit fsync and acked means durable. K>1: appends
	// are acked without waiting and the log fsyncs inline every K
	// records, so a crash can lose up to the last K-1 acked records
	// (prefix durability to the most recent sync).
	SyncEvery int
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Log is a segmented append-only record log. One goroutine's Append is
// serialized against every other's by an internal mutex; WaitDurable
// implements group commit — concurrent waiters elect one fsync-er whose
// single Sync covers every record appended before it started, so
// parallel single-shard commits don't serialize on the disk.
//
// Any write or sync error poisons the log: the error is sticky and every
// subsequent operation fails with it. A poisoned log's durable state is
// unknown past the last successful sync, and fail-stop is the only
// answer consistent with "acked means durable".
type Log struct {
	fs   VFS
	dir  string
	dim  int
	opts LogOptions

	mu        sync.Mutex
	cond      *sync.Cond
	file      File   // active segment
	seq       uint64 // active segment sequence number
	size      int    // bytes written to active segment
	baseEpoch uint64 // epoch covered before LSN 1: nextEpoch-1 at open
	appendLSN uint64 // records appended so far
	syncedLSN uint64 // records known durable
	syncing   bool   // a group-commit fsync is in flight
	sinceSync int    // records since last sync (SyncEvery>1 mode)
	err       error  // sticky poison
	closed    bool

	buf []byte // frame assembly scratch, reused across appends
}

func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	return seq, err == nil
}

func segHeader(firstEpoch uint64) []byte {
	h := make([]byte, 0, segHeaderSize)
	h = append(h, segMagic...)
	h = binary.LittleEndian.AppendUint64(h, firstEpoch)
	return binary.LittleEndian.AppendUint32(h, crc32.Checksum(h, crcTable))
}

func parseSegHeader(b []byte) (firstEpoch uint64, ok bool) {
	if len(b) < segHeaderSize || string(b[:8]) != segMagic {
		return 0, false
	}
	if crc32.Checksum(b[:16], crcTable) != binary.LittleEndian.Uint32(b[16:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[8:]), true
}

// listSegments returns the directory's segment sequence numbers, ascending.
func listSegments(fs VFS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenLog opens the log in dir for appending, starting a fresh segment
// after any existing ones (recovery has already scanned those; a fresh
// segment means a torn tail left by the crash can never be appended
// into). nextEpoch is the epoch the first appended record will carry.
func OpenLog(fs VFS, dir string, dim int, opts LogOptions, nextEpoch uint64) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 4 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	seqs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	var seq uint64 = 1
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1] + 1
		// A crash during rotation can leave a final segment whose header
		// never became durable. The recovery scan tolerates it only in
		// last position — remove it now, or it would sit in the middle of
		// the sequence once this log appends segments after it and poison
		// every later recovery.
		last := join(dir, segName(seqs[len(seqs)-1]))
		b, err := fs.ReadFile(last)
		if err != nil {
			return nil, err
		}
		if _, ok := parseSegHeader(b); !ok {
			if err := fs.Remove(last); err != nil {
				return nil, err
			}
		}
	}
	l := &Log{fs: fs, dir: dir, dim: dim, opts: opts, seq: seq, baseEpoch: nextEpoch - 1}
	l.cond = sync.NewCond(&l.mu)
	if err := l.startSegment(seq, nextEpoch); err != nil {
		return nil, err
	}
	return l, nil
}

// startSegment creates and initializes segment seq. Caller holds mu (or
// is the constructor).
func (l *Log) startSegment(seq uint64, firstEpoch uint64) error {
	f, err := l.fs.Create(join(l.dir, segName(seq)))
	if err != nil {
		return err
	}
	h := segHeader(firstEpoch)
	if _, err := f.Write(h); err != nil {
		f.Close()
		return err
	}
	l.file = f
	l.seq = seq
	l.size = len(h)
	return nil
}

// Append frames and writes one record, returning its LSN for WaitDurable.
// The caller is expected to append records with strictly consecutive
// epochs; replay validates that chain. In SyncEvery>1 mode the append
// fsyncs inline once enough records have accumulated.
func (l *Log) Append(kind byte, epoch uint64, body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= l.opts.SegmentSize {
		if err := l.rotateLocked(epoch); err != nil {
			return 0, err
		}
	}
	l.buf = appendFrame(l.buf[:0], kind, epoch, body)
	if _, err := l.file.Write(l.buf); err != nil {
		return 0, l.poison(err)
	}
	l.size += len(l.buf)
	l.appendLSN++
	lsn := l.appendLSN
	if l.opts.SyncEvery > 1 {
		l.sinceSync++
		if l.sinceSync >= l.opts.SyncEvery {
			if err := l.file.Sync(); err != nil {
				return 0, l.poison(err)
			}
			l.syncedLSN = l.appendLSN
			l.sinceSync = 0
		}
	}
	return lsn, nil
}

// WaitDurable blocks until the record at lsn is durable, electing a
// group-commit fsync-er as needed. In SyncEvery>1 mode it returns
// immediately: relaxed-durability callers ack without waiting.
func (l *Log) WaitDurable(lsn uint64) error {
	if l.opts.SyncEvery > 1 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncedLSN >= lsn {
			return nil
		}
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			// Someone else's fsync is in flight; it may or may not
			// cover lsn. Wait and re-check.
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.appendLSN // everything written before this Sync starts
		f := l.file
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.poison(err)
		} else if l.syncedLSN < target {
			l.syncedLSN = target
		}
		l.cond.Broadcast()
	}
}

// rotateLocked syncs and closes the active segment and starts the next.
// Rotation never strands un-durable acked records: the old segment is
// fsynced before it is abandoned. Caller holds mu.
func (l *Log) rotateLocked(nextEpoch uint64) error {
	// A group-commit fsync may be in flight on the file we are about to
	// close; wait it out (the fsync-er broadcasts on completion).
	for l.syncing {
		l.cond.Wait()
		if l.err != nil {
			return l.err
		}
	}
	if err := l.file.Sync(); err != nil {
		return l.poison(err)
	}
	l.syncedLSN = l.appendLSN
	l.sinceSync = 0
	l.file.Close()
	if err := l.startSegment(l.seq+1, nextEpoch); err != nil {
		return l.poison(err)
	}
	l.cond.Broadcast()
	return nil
}

// poison records the sticky error and wakes waiters. Caller holds mu.
func (l *Log) poison(err error) error {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	return l.err
}

// Err returns the log's sticky poison error, or nil while the log is
// healthy. Callers use it to fail-stop paths that would otherwise not
// touch the log at all (e.g. commits that changed nothing).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// TailLSN returns the LSN of the most recently appended record (0 when
// nothing has been appended since open). Passing it to WaitDurable waits
// for everything appended so far.
func (l *Log) TailLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLSN
}

// DurableEpoch returns the highest epoch known covered by a completed
// fsync. Callers append strictly consecutive epochs (replay enforces the
// chain), so the record at LSN i carries epoch baseEpoch+i and the synced
// LSN maps directly to a durable epoch. With nothing appended since open
// it reports the epoch recovery last established (everything on disk).
func (l *Log) DurableEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseEpoch + l.syncedLSN
}

// PrunePast deletes every segment whose records are fully covered by a
// checkpoint at ckptEpoch: segment k is dead when the next segment's
// firstEpoch is ≤ ckptEpoch+1, i.e. replay-from-checkpoint can start at
// k+1 without a gap. A crash mid-prune just leaves dead segments behind;
// they are harmless to replay and the next prune removes them.
func (l *Log) PrunePast(ckptEpoch uint64) error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if l.closed {
		// A closed log's directory may already belong to a successor
		// process's recovery scan; deleting segments under it would turn a
		// consistent prune into data loss.
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	seqs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(seqs); i++ {
		b, err := l.fs.ReadFile(join(l.dir, segName(seqs[i+1])))
		if err != nil {
			return err
		}
		next, ok := parseSegHeader(b)
		if !ok || next > ckptEpoch+1 {
			break
		}
		if err := l.fs.Remove(join(l.dir, segName(seqs[i]))); err != nil {
			return err
		}
	}
	return nil
}

// Close fsyncs the active segment (so a clean shutdown is durable even
// in relaxed mode) and closes the log. Appends after Close fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	if l.err != nil {
		l.file.Close()
		return l.err
	}
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return l.poison(err)
	}
	l.syncedLSN = l.appendLSN
	l.file.Close()
	return nil
}

// ScanLog reads every segment in dir and returns the decoded records
// with epoch > afterEpoch, in epoch order. It enforces the replay
// invariants:
//
//   - Within each segment, frames are decoded until the first invalid
//     frame; the rest of that segment is a torn tail (a crash mid-append,
//     or mid-rotation) and is discarded.
//   - Across the whole scan, record epochs must be strictly consecutive,
//     and the first record must have epoch ≤ afterEpoch+1. Any gap means
//     a segment that was pruned or lost while still needed — that is data
//     loss, and ScanLog fails loudly rather than silently resurrecting a
//     partial history.
//
// A segment with a missing or corrupt header is tolerated only as the
// final segment (a crash during rotation); earlier ones fail the scan.
func ScanLog(fs VFS, dir string, dim int, afterEpoch uint64) ([]Record, error) {
	seqs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	var recs []Record
	prevEpoch := afterEpoch // chain anchor once the first kept record arrives
	chainStarted := false
	for i, seq := range seqs {
		b, err := fs.ReadFile(join(dir, segName(seq)))
		if err != nil {
			return nil, err
		}
		if _, ok := parseSegHeader(b); !ok {
			if i == len(seqs)-1 {
				break // torn rotation: header never became durable
			}
			return nil, fmt.Errorf("%w: segment %016x: bad header", ErrCorrupt, seq)
		}
		off := segHeaderSize
		for off < len(b) {
			rec, n, err := DecodeRecord(b[off:], dim)
			if err != nil {
				break // torn tail of this segment
			}
			off += n
			if !chainStarted {
				if rec.Epoch > afterEpoch+1 {
					return nil, fmt.Errorf("%w: log starts at epoch %d, need %d", ErrCorrupt, rec.Epoch, afterEpoch+1)
				}
			} else if rec.Epoch != prevEpoch+1 {
				return nil, fmt.Errorf("%w: epoch gap: %d after %d", ErrCorrupt, rec.Epoch, prevEpoch)
			}
			chainStarted = true
			prevEpoch = rec.Epoch
			if rec.Epoch > afterEpoch {
				recs = append(recs, rec)
			}
		}
	}
	return recs, nil
}
