package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pargeo/internal/geom"
)

func pts(dim int, vals ...float64) geom.Points {
	return geom.Points{Data: vals, Dim: dim}
}

func commitRecord(epoch uint64, dels []geom.Points, ins geom.Points, ids []int32) []byte {
	return AppendCommitBody(nil, dels, ins, ids)
}

func TestRecordRoundTrip(t *testing.T) {
	dim := 3
	dels := []geom.Points{
		pts(dim, 1, 2, 3, 4, 5, 6),
		pts(dim),
		pts(dim, -0.5, 1e300, 0),
	}
	ins := pts(dim, 7, 8, 9, 10, 11, 12)
	ids := []int32{41, 42}
	body := commitRecord(9, dels, ins, ids)
	frame := appendFrame(nil, KindCommit, 9, body)

	rec, n, err := DecodeRecord(frame, dim)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d", n, len(frame))
	}
	if rec.Kind != KindCommit || rec.Epoch != 9 {
		t.Fatalf("kind/epoch = %d/%d", rec.Kind, rec.Epoch)
	}
	if len(rec.Dels) != len(dels) {
		t.Fatalf("dels = %d", len(rec.Dels))
	}
	for i := range dels {
		if !bytes.Equal(f64bytes(rec.Dels[i].Data), f64bytes(dels[i].Data)) {
			t.Fatalf("del %d mismatch", i)
		}
	}
	if !bytes.Equal(f64bytes(rec.Ins.Data), f64bytes(ins.Data)) {
		t.Fatal("ins mismatch")
	}
	if len(rec.IDs) != 2 || rec.IDs[0] != 41 || rec.IDs[1] != 42 {
		t.Fatalf("ids = %v", rec.IDs)
	}
}

func f64bytes(v []float64) []byte {
	return appendCoords(nil, v)
}

func TestRecordRejectsCorruption(t *testing.T) {
	dim := 2
	frame := appendFrame(nil, KindCommit, 1, commitRecord(1, nil, pts(dim, 1, 2), []int32{7}))
	// Any single bit flip must be rejected (or, for length-field flips,
	// at worst fail as truncated — never decode successfully).
	for i := 0; i < len(frame)*8; i++ {
		mut := append([]byte(nil), frame...)
		mut[i/8] ^= 1 << (i % 8)
		if _, _, err := DecodeRecord(mut, dim); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// Truncations at every length.
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeRecord(frame[:n], dim); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	// Wrong dim cannot pass the structural check silently.
	if rec, _, err := DecodeRecord(frame, 3); err == nil {
		t.Fatalf("dim mismatch accepted: %+v", rec)
	}
}

func TestLogAppendScan(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{SegmentSize: 1 << 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		var body []byte
		kind := byte(KindCommit)
		if e == 3 {
			kind = KindNote
		} else {
			body = commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)})
		}
		lsn, err := l.Append(kind, e, body)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ScanLog(fs, "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) {
			t.Fatalf("rec %d epoch %d", i, r.Epoch)
		}
	}
	if recs[2].Kind != KindNote {
		t.Fatal("epoch 3 should be a note")
	}
	// afterEpoch filtering.
	recs, err = ScanLog(fs, "d", dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Epoch != 4 {
		t.Fatalf("afterEpoch=3: %d recs", len(recs))
	}
}

func TestLogRotationAndPrune(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	// Tiny segments: every record rotates.
	l, err := OpenLog(fs, "d", dim, LogOptions{SegmentSize: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 6; e++ {
		body := commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)})
		if _, err := l.Append(KindCommit, e, body); err != nil {
			t.Fatal(err)
		}
	}
	seqs, _ := listSegments(fs, "d")
	if len(seqs) < 3 {
		t.Fatalf("expected rotations, got %d segments", len(seqs))
	}
	// Prune past epoch 4: segments fully below it must go, and the
	// surviving chain must still replay epochs 5..6.
	if err := l.PrunePast(4); err != nil {
		t.Fatal(err)
	}
	left, _ := listSegments(fs, "d")
	if len(left) >= len(seqs) {
		t.Fatalf("prune removed nothing (%d -> %d)", len(seqs), len(left))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ScanLog(fs, "d", dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Epoch != 5 || recs[1].Epoch != 6 {
		t.Fatalf("post-prune scan: %+v", recs)
	}
}

func TestScanDiscardsTornTail(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{SegmentSize: 1 << 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		lsn, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)}))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the 4th record's write in half, then take the crash image
	// that keeps unsynced data: the torn frame is present on disk.
	fs.SetCrash(1, true)
	if _, err := l.Append(KindCommit, 4, commitRecord(4, nil, pts(dim, 4, 0), []int32{4})); !errors.Is(err, ErrCrash) {
		t.Fatalf("append after crash: %v", err)
	}
	img := fs.CrashImage(false)
	recs, err := ScanLog(img, "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("torn tail not discarded: %d records", len(recs))
	}
	// The drop-unsynced image loses nothing acked either.
	recs, err = ScanLog(fs.CrashImage(true), "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("drop-unsynced image: %d records", len(recs))
	}
}

func TestScanRejectsEpochGap(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(KindCommit, 1, commitRecord(1, nil, pts(dim, 1, 0), []int32{1}))
	l.Append(KindCommit, 3, commitRecord(3, nil, pts(dim, 3, 0), []int32{3})) // gap: no epoch 2
	l.Close()
	if _, err := ScanLog(fs, "d", dim, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap not rejected: %v", err)
	}
	// A log whose first surviving record is past afterEpoch+1 is also a gap.
	fs2 := NewMemFS()
	l2, _ := OpenLog(fs2, "d", dim, LogOptions{}, 5)
	l2.Append(KindCommit, 5, commitRecord(5, nil, pts(dim, 5, 0), []int32{5}))
	l2.Close()
	if _, err := ScanLog(fs2, "d", dim, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("leading gap not rejected: %v", err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	errc := make(chan error, n)
	lsns := make(chan uint64, n)
	// Appends are serialized by the caller (consecutive epochs) but the
	// durability waits race: group commit must cover all of them.
	for e := uint64(1); e <= n; e++ {
		lsn, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)}))
		if err != nil {
			t.Fatal(err)
		}
		lsns <- lsn
	}
	close(lsns)
	for lsn := range lsns {
		go func(lsn uint64) { errc <- l.WaitDurable(lsn) }(lsn)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ScanLog(fs, "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestLogPoisonAfterSyncFailure(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(KindCommit, 1, commitRecord(1, nil, pts(dim, 1, 0), []int32{1}))
	if err != nil {
		t.Fatal(err)
	}
	fs.SetCrash(2, false) // next op is the write of record 2; op after is its fsync
	if _, err := l.Append(KindCommit, 2, commitRecord(2, nil, pts(dim, 2, 0), []int32{2})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn + 1); !errors.Is(err, ErrCrash) {
		t.Fatalf("sync failure not surfaced: %v", err)
	}
	// Sticky: everything afterwards fails.
	if _, err := l.Append(KindCommit, 3, nil); !errors.Is(err, ErrCrash) {
		t.Fatalf("log not poisoned: %v", err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, ErrCrash) {
		t.Fatalf("poisoned WaitDurable: %v", err)
	}
}

func TestRelaxedSyncEvery(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{SyncEvery: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 10; e++ {
		lsn, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)}))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil { // immediate in relaxed mode
			t.Fatal(err)
		}
	}
	// 10 records, sync every 4: epochs 1..8 are durable, 9..10 are not.
	img := fs.CrashImage(true)
	recs, err := ScanLog(img, "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("relaxed mode: %d durable records, want 8", len(recs))
	}
	// Clean Close syncs the tail.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = ScanLog(fs, "d", dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("after close: %d records, want 10", len(recs))
	}
}

// TestTailAndDurableEpoch pins the LSN↔epoch accounting that no-op
// commit acknowledgements lean on: the record at LSN i carries epoch
// baseEpoch+i, so DurableEpoch tracks the synced LSN exactly, in both
// sync modes and across an epoch base other than zero.
func TestTailAndDurableEpoch(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	const base = uint64(40) // log opened as if recovery ended at epoch 40
	l, err := OpenLog(fs, "d", dim, LogOptions{SyncEvery: 4}, base+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TailLSN(); got != 0 {
		t.Fatalf("fresh TailLSN = %d", got)
	}
	if got := l.DurableEpoch(); got != base {
		t.Fatalf("fresh DurableEpoch = %d, want %d", got, base)
	}
	for i := uint64(1); i <= 10; i++ {
		e := base + i
		lsn, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)}))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != i || l.TailLSN() != i {
			t.Fatalf("append %d: lsn %d tail %d", i, lsn, l.TailLSN())
		}
		// Relaxed mode syncs inline every 4 records.
		wantDurable := base + i/4*4
		if got := l.DurableEpoch(); got != wantDurable {
			t.Fatalf("after append %d: DurableEpoch %d, want %d", i, got, wantDurable)
		}
	}
	if err := l.Close(); err != nil { // final fsync covers the tail
		t.Fatal(err)
	}
	if got := l.DurableEpoch(); got != base+10 {
		t.Fatalf("after close: DurableEpoch %d, want %d", got, base+10)
	}

	// Strict mode: WaitDurable advances the durable epoch to the waited
	// record.
	fs2 := NewMemFS()
	l2, err := OpenLog(fs2, "d", dim, LogOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.Append(KindCommit, 1, commitRecord(1, nil, pts(dim, 1, 0), []int32{1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.DurableEpoch(); got != 0 {
		t.Fatalf("pre-wait DurableEpoch = %d", got)
	}
	if err := l2.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if got := l2.DurableEpoch(); got != 1 {
		t.Fatalf("post-wait DurableEpoch = %d, want 1", got)
	}
	l2.Close()
}

// TestPrunePastClosedRejected: a closed log must refuse to delete
// segments — its directory may already belong to a successor process's
// recovery scan.
func TestPrunePastClosedRejected(t *testing.T) {
	fs := NewMemFS()
	dim := 2
	l, err := OpenLog(fs, "d", dim, LogOptions{SegmentSize: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 6; e++ {
		if _, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before, _ := listSegments(fs, "d")
	if err := l.PrunePast(6); !errors.Is(err, ErrClosed) {
		t.Fatalf("PrunePast on closed log: err = %v, want ErrClosed", err)
	}
	after, _ := listSegments(fs, "d")
	if len(before) != len(after) {
		t.Fatalf("PrunePast on closed log removed segments: %d -> %d", len(before), len(after))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3, 5} {
		n := 200
		c := &Checkpoint{
			Epoch:   77,
			NextID:  int64(n) + 5,
			Dim:     dim,
			Shards:  4,
			HasPart: true,
			World:   geom.Box{Min: make([]float64, dim), Max: make([]float64, dim)},
			Bounds:  []uint64{100, 2000, 30000},
			Pts:     geom.Points{Data: make([]float64, n*dim), Dim: dim},
			IDs:     make([]int32, n),
		}
		for i := range c.World.Max {
			c.World.Max[i] = 1
		}
		for i := range c.Pts.Data {
			c.Pts.Data[i] = rng.NormFloat64()
		}
		for i := range c.IDs {
			c.IDs[i] = int32(i)
		}
		fs := NewMemFS()
		if err := WriteCheckpoint(fs, "d", c); err != nil {
			t.Fatal(err)
		}
		got, err := LoadLatestCheckpoint(fs, "d")
		if err != nil || got == nil {
			t.Fatalf("load: %v %v", got, err)
		}
		if got.Epoch != c.Epoch || got.NextID != c.NextID || got.Dim != dim || got.Shards != 4 || !got.HasPart {
			t.Fatalf("header mismatch: %+v", got)
		}
		if !bytes.Equal(f64bytes(got.Pts.Data), f64bytes(c.Pts.Data)) {
			t.Fatal("points mismatch")
		}
		if fmt.Sprint(got.Bounds) != fmt.Sprint(c.Bounds) || fmt.Sprint(got.IDs) != fmt.Sprint(c.IDs) {
			t.Fatal("bounds/ids mismatch")
		}
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	fs := NewMemFS()
	good := &Checkpoint{Epoch: 5, NextID: 1, Dim: 2, Shards: 1, Pts: geom.Points{Dim: 2}}
	if err := WriteCheckpoint(fs, "d", good); err != nil {
		t.Fatal(err)
	}
	// A corrupt newer checkpoint (simulating e.g. media corruption).
	bad := (&Checkpoint{Epoch: 9, NextID: 1, Dim: 2, Shards: 1, Pts: geom.Points{Dim: 2}}).Encode(nil)
	bad[len(bad)-10] ^= 0xff
	f, _ := fs.Create(join("d", ckptName(9)))
	f.Write(bad)
	f.Close()
	got, err := LoadLatestCheckpoint(fs, "d")
	if err != nil || got == nil || got.Epoch != 5 {
		t.Fatalf("fallback failed: %+v %v", got, err)
	}
	// Pruning keeps the target epoch and clears tmp leftovers.
	f, _ = fs.Create(join("d", ckptName(3)+ckptTmp))
	f.Close()
	PruneCheckpoints(fs, "d", 5)
	names, _ := fs.ReadDir("d")
	for _, name := range names {
		if name == ckptName(5) || name == ckptName(9) {
			continue
		}
		t.Fatalf("prune left %s", name)
	}
}

func TestMemFSCrashMatrixSmoke(t *testing.T) {
	// Every crash point in a tiny workload must leave a recoverable log:
	// scan succeeds on both crash images and yields a prefix of the
	// acked epochs (plus possibly the in-flight one).
	dim := 2
	workload := func(fs *MemFS) (acked uint64) {
		l, err := OpenLog(fs, "d", dim, LogOptions{SegmentSize: 96}, 1)
		if err != nil {
			return 0
		}
		defer l.Close()
		for e := uint64(1); e <= 6; e++ {
			lsn, err := l.Append(KindCommit, e, commitRecord(e, nil, pts(dim, float64(e), 0), []int32{int32(e)}))
			if err != nil {
				return
			}
			if err := l.WaitDurable(lsn); err != nil {
				return
			}
			acked = e
		}
		return
	}
	probe := NewMemFS()
	workload(probe)
	total := probe.Ops()
	if total < 10 {
		t.Fatalf("workload too small to be interesting: %d ops", total)
	}
	for n := 1; n <= total; n++ {
		for _, torn := range []bool{false, true} {
			for _, drop := range []bool{false, true} {
				fs := NewMemFS()
				fs.SetCrash(n, torn)
				acked := workload(fs)
				if !fs.Crashed() {
					t.Fatalf("crash %d not reached", n)
				}
				recs, err := ScanLog(fs.CrashImage(drop), "d", dim, 0)
				if err != nil {
					t.Fatalf("crash=%d torn=%v drop=%v: scan: %v", n, torn, drop, err)
				}
				got := uint64(len(recs))
				if got < acked || got > acked+1 {
					t.Fatalf("crash=%d torn=%v drop=%v: %d records, acked %d", n, torn, drop, got, acked)
				}
			}
		}
	}
}
