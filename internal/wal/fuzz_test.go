package wal

import (
	"bytes"
	"testing"

	"pargeo/internal/geom"
)

// fuzzSeedFrames returns valid frames plus adversarial mutations of
// them: bit flips, torn tails, and duplicated frames — the corruption
// shapes a real crash or media fault produces.
func fuzzSeedFrames() [][]byte {
	dim := 2
	var seeds [][]byte
	valid := [][]byte{
		appendFrame(nil, KindNote, 3, nil),
		appendFrame(nil, KindCommit, 1, AppendCommitBody(nil, nil, geom.Points{Dim: dim}, nil)),
		appendFrame(nil, KindCommit, 2, AppendCommitBody(nil,
			[]geom.Points{{Data: []float64{1, 2}, Dim: dim}},
			geom.Points{Data: []float64{3, 4, 5, 6}, Dim: dim}, []int32{10, 11})),
	}
	for _, v := range valid {
		seeds = append(seeds, v)
		for _, bit := range []int{0, 7, 35, len(v)*8 - 1} {
			mut := append([]byte(nil), v...)
			mut[bit/8] ^= 1 << (bit % 8)
			seeds = append(seeds, mut)
		}
		seeds = append(seeds, v[:len(v)/2])                            // torn tail
		seeds = append(seeds, append(append([]byte(nil), v...), v...)) // duplicated frame
	}
	return seeds
}

// FuzzRecordDecode asserts the decoder's safety contract on arbitrary
// bytes: no panic, no over-read (consumed ≤ len(data)), and any record
// it does return re-encodes to exactly the bytes consumed — which is
// only possible if the CRC verified over them.
func FuzzRecordDecode(f *testing.F) {
	for _, s := range fuzzSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dim := 2
		rec, n, err := DecodeRecord(data, dim)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with consumed=%d", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		var body []byte
		if rec.Kind == KindCommit {
			body = AppendCommitBody(nil, rec.Dels, rec.Ins, rec.IDs)
		}
		if !bytes.Equal(appendFrame(nil, rec.Kind, rec.Epoch, body), data[:n]) {
			t.Fatal("accepted record does not re-encode to its input")
		}
	})
}

// FuzzCheckpointDecode: same contract for checkpoint files. A decoded
// checkpoint must re-encode byte-identically, so nothing CRC-unverified
// or non-canonical is ever accepted.
func FuzzCheckpointDecode(f *testing.F) {
	full := &Checkpoint{
		Epoch: 4, NextID: 3, Dim: 2, Shards: 2,
		HasPart: true,
		World:   geom.Box{Min: []float64{0, 0}, Max: []float64{1, 1}},
		Bounds:  []uint64{123},
		Pts:     geom.Points{Data: []float64{0.5, 0.5, 0.25, 0.75}, Dim: 2},
		IDs:     []int32{1, 2},
	}
	empty := &Checkpoint{Epoch: 0, NextID: 0, Dim: 3, Shards: 1, Pts: geom.Points{Dim: 3}}
	for _, c := range []*Checkpoint{full, empty} {
		v := c.Encode(nil)
		f.Add(v)
		for _, bit := range []int{1, 64, 200, len(v)*8 - 3} {
			mut := append([]byte(nil), v...)
			mut[bit/8] ^= 1 << (bit % 8)
			f.Add(mut)
		}
		f.Add(v[:len(v)*3/4]) // torn tail
		f.Add(append(append([]byte(nil), v...), 0xde, 0xad))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Encode(nil), data) {
			t.Fatal("accepted checkpoint does not re-encode to its input")
		}
	})
}
