package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"pargeo/internal/geom"
)

// Checkpoint file layout, little-endian, CRC-trailed:
//
//	[8]  magic "PGCKPT01"
//	[8]  epoch
//	[8]  nextID
//	[4]  dim
//	[4]  shards (engine shard count at checkpoint time)
//	[1]  hasPart
//	if hasPart:
//	  dim×[8] world.Min, dim×[8] world.Max
//	  [4] nbounds, nbounds×[8] bounds
//	[8]  npts
//	npts×[4] ids
//	npts×dim×[8] coords
//	[4]  CRC32-C of everything above
//
// Points are stored flat (all shards concatenated, each shard's run in
// ExtractRange's code order). Shard membership is a pure function of a
// point's coordinates and the stored partition, so restore re-routes the
// flat set through the partition and rebuilds each shard with
// NewFromSorted — no per-shard framing needed.
const (
	ckptMagic   = "PGCKPT01"
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ckpt"
	ckptTmp     = ".tmp"
	ckptMinSize = 8 + 8 + 8 + 4 + 4 + 1 + 8 + 4

	// maxCkptDim bounds the dimension read from a checkpoint header so a
	// corrupt file cannot size allocations from garbage. Far above any
	// dimension the engine supports.
	maxCkptDim = 1 << 10
)

// Checkpoint is a full durable image of the engine's state at Epoch:
// the live point set with ids, the id-generator watermark, and the
// Morton partition (absent only for an engine that never committed —
// HasPart false, no points).
type Checkpoint struct {
	Epoch  uint64
	NextID int64
	Dim    int
	Shards int

	HasPart bool
	World   geom.Box
	Bounds  []uint64

	Pts geom.Points
	IDs []int32
}

func ckptName(epoch uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, epoch, ckptSuffix) }

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	epoch, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 16, 64)
	return epoch, err == nil
}

// Encode serializes the checkpoint, appending to dst.
func (c *Checkpoint) Encode(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, ckptMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, c.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.NextID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Dim))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Shards))
	if c.HasPart {
		dst = append(dst, 1)
		dst = appendCoords(dst, c.World.Min)
		dst = appendCoords(dst, c.World.Max)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Bounds)))
		for _, b := range c.Bounds {
			dst = binary.LittleEndian.AppendUint64(dst, b)
		}
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(c.IDs)))
	for _, id := range c.IDs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	dst = appendCoords(dst, c.Pts.Data)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

// DecodeCheckpoint parses a checkpoint file. Like DecodeRecord it is
// hardened against arbitrary input: every count is validated against the
// remaining bytes before it sizes an allocation, nothing is read past
// len(b), and no checkpoint is returned unless the trailing CRC (which
// covers the whole file) verifies.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < ckptMinSize {
		return nil, fmt.Errorf("%w: checkpoint too short", ErrCorrupt)
	}
	if string(b[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checkpoint CRC mismatch", ErrCorrupt)
	}
	c := &Checkpoint{}
	off := 8
	u32 := func() (uint32, bool) {
		if len(body)-off < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(body)-off < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, true
	}
	epoch, ok1 := u64()
	nextID, ok2 := u64()
	dim32, ok3 := u32()
	shards32, ok4 := u32()
	if !ok1 || !ok2 || !ok3 || !ok4 || len(body)-off < 1 {
		return nil, fmt.Errorf("%w: truncated checkpoint header", ErrCorrupt)
	}
	c.Epoch, c.NextID = epoch, int64(nextID)
	c.Dim, c.Shards = int(dim32), int(shards32)
	if c.Dim < 1 || c.Dim > maxCkptDim || c.Shards < 1 || c.Shards > maxCkptDim {
		return nil, fmt.Errorf("%w: implausible dim %d / shards %d", ErrCorrupt, c.Dim, c.Shards)
	}
	hasPart := body[off]
	off++
	if hasPart > 1 {
		return nil, fmt.Errorf("%w: bad hasPart byte", ErrCorrupt)
	}
	c.HasPart = hasPart == 1
	if c.HasPart {
		if len(body)-off < 2*c.Dim*8 {
			return nil, fmt.Errorf("%w: truncated world box", ErrCorrupt)
		}
		c.World.Min, _ = decodeCoords(body[off:], c.Dim)
		off += c.Dim * 8
		c.World.Max, _ = decodeCoords(body[off:], c.Dim)
		off += c.Dim * 8
		nb, ok := u32()
		if !ok || uint64(nb)*8 > uint64(len(body)-off) {
			return nil, fmt.Errorf("%w: truncated partition bounds", ErrCorrupt)
		}
		c.Bounds = make([]uint64, nb)
		for i := range c.Bounds {
			c.Bounds[i] = binary.LittleEndian.Uint64(body[off:])
			off += 8
		}
	}
	npts, ok := u64()
	// Division avoids overflow for adversarial 64-bit counts.
	if !ok || npts > uint64(len(body)-off)/uint64(4+c.Dim*8) {
		return nil, fmt.Errorf("%w: point count overruns checkpoint", ErrCorrupt)
	}
	c.IDs = make([]int32, npts)
	for i := range c.IDs {
		c.IDs[i] = int32(binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	data, n := decodeCoords(body[off:], int(npts)*c.Dim)
	off += n
	c.Pts = geom.Points{Data: data, Dim: c.Dim}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(body)-off)
	}
	return c, nil
}

// WriteCheckpoint durably writes c into dir using the write-sync-rename
// pattern: the bytes are synced under a temporary name, then atomically
// renamed to ckpt-<epoch>.ckpt. A crash at any point leaves either no
// visible checkpoint for this epoch or a complete one — never a partial
// file under the final name.
func WriteCheckpoint(fs VFS, dir string, c *Checkpoint) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	final := join(dir, ckptName(c.Epoch))
	tmp := final + ckptTmp
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(c.Encode(nil)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, final)
}

// listCheckpoints returns the checkpoint epochs present in dir,
// ascending. Temporary files are ignored.
func listCheckpoints(fs VFS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, name := range names {
		if epoch, ok := parseCkptName(name); ok {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// LoadLatestCheckpoint returns the highest-epoch checkpoint in dir that
// decodes cleanly, or nil if none exists. A corrupt newer checkpoint is
// skipped in favor of an older valid one — recovery then relies on the
// WAL chain to bridge the difference, and fails loudly if it cannot.
func LoadLatestCheckpoint(fs VFS, dir string) (*Checkpoint, error) {
	epochs, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		b, err := fs.ReadFile(join(dir, ckptName(epochs[i])))
		if err != nil {
			continue
		}
		c, err := DecodeCheckpoint(b)
		if err != nil {
			continue
		}
		return c, nil
	}
	return nil, nil
}

// PruneCheckpoints removes checkpoints older than keepEpoch and any
// leftover temporary files. Failures are ignored: stale checkpoints are
// only wasted space, and the next prune retries.
func PruneCheckpoints(fs VFS, dir string, keepEpoch uint64) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if strings.HasSuffix(name, ckptTmp) {
			fs.Remove(join(dir, name))
			continue
		}
		if epoch, ok := parseCkptName(name); ok && epoch < keepEpoch {
			fs.Remove(join(dir, name))
		}
	}
}
