package wal

import (
	"os"
	"path/filepath"
	"sort"
)

// VFS is the file-system surface the WAL and the checkpointer touch —
// deliberately tiny, so a test can substitute a deterministic in-memory
// implementation (MemFS) and fail or truncate the Nth operation. Every
// durability decision in this package is phrased against this interface:
// if a sequence of VFS calls recovers correctly under MemFS's crash
// images, the same sequence against OSFS is correct on any file system
// with POSIX write/fsync/atomic-rename semantics.
//
// Semantics required of an implementation:
//
//   - Create truncates; writes append to the created handle.
//   - Data written to a File is volatile until Sync returns; a crash may
//     retain any prefix of the unsynced suffix (including a torn final
//     write).
//   - Rename is atomic: after a crash the name refers to either the old
//     or the new file, never a mixture. Metadata operations (Create,
//     Rename, Remove) are treated as durable once they return, which is
//     what journaled file systems give the standard
//     write-sync-rename pattern.
type VFS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// ReadFile returns the named file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
}

// File is a writable file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable.
	Sync() error
	Close() error
}

// OSFS is the production VFS: the operating system's file system.
type OSFS struct{}

// MkdirAll implements VFS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements VFS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFile implements VFS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements VFS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements VFS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements VFS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// join builds a VFS path. OSFS paths use the host separator; MemFS keys
// by the joined string, so as long as both sides of a test use join the
// representations agree.
func join(dir, name string) string { return filepath.Join(dir, name) }
