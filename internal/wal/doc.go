// Package wal implements the engine's durability layer: a segmented,
// CRC-framed write-ahead log plus flat checkpoint files, all behind a
// tiny VFS interface so tests can inject crashes deterministically.
//
// # Record format
//
// Every log record is a length-prefixed, CRC32-C-protected frame
// ([4] payload length, [4] CRC, payload). The payload carries a kind
// byte, the engine epoch the record publishes, and a kind-specific body.
// A commit record (KindCommit) holds one commit group exactly as the
// engine applies it: every delete batch in request order, then the
// combined insert batch with its assigned ids. Because the engine's
// group semantics are routing-independent (final state = previous state
// − all delete matches + all inserts, regardless of how the group was
// fanned out across shards), one record per published epoch is
// sufficient for replay. A note record (KindNote) carries no data and
// exists so that epochs published without data — the rebalancer swapping
// partitions — keep the log's epoch sequence gap-free.
//
// Records live in segment files (wal-<seq>.seg), each beginning with a
// CRC-protected header naming the first epoch appended to it. Appends
// rotate to a fresh segment past a size threshold; rotation fsyncs the
// old segment before abandoning it, so acked records are never stranded
// un-durable. Checkpoints prune segments whose contents the checkpoint
// fully covers, using only the headers' first-epoch fields.
//
// # Group commit
//
// With SyncEvery=1, an append is acknowledged only after the record is
// fsynced — but concurrent committers share fsyncs: WaitDurable elects
// one fsync-er at a time, and its single Sync covers every record
// appended before it started, so parallel single-shard commits pay one
// disk flush per batch of concurrent commits rather than one each. With
// SyncEvery=K>1, appends are acknowledged immediately and the log
// fsyncs inline every K records: a crash may lose up to the last K−1
// acknowledged records, but never a non-suffix subset (prefix
// durability to the most recent sync).
//
// Any write or sync failure poisons the log permanently. Past the last
// successful sync the durable state is unknown, and fail-stop is the
// only behavior consistent with "acknowledged means durable".
//
// # Recovery invariants
//
// Recovery loads the newest checkpoint that decodes cleanly (checkpoint
// files are written with write-sync-rename, so a partial checkpoint is
// never visible under its final name), rebuilds the trees from its flat
// point set, and replays WAL records with epochs past the checkpoint's.
// ScanLog enforces two invariants:
//
//   - Torn tails are discarded, never "repaired": within a segment,
//     decoding stops at the first frame whose length, CRC, or structure
//     is invalid. A fresh segment is started on every open, so a torn
//     tail can never be appended into.
//   - Epochs are contiguous: across the surviving records, each epoch
//     must be exactly the predecessor's +1 (and the chain must reach
//     back to the checkpoint). Any gap means a needed record was lost,
//     and recovery fails loudly instead of resurrecting partial history.
//
// Together with the engine's commit protocol (the record is appended
// and, for SyncEvery=1, fsynced before the batch is acknowledged), this
// yields prefix durability: recovery restores exactly a prefix of the
// submitted commit history that includes every acknowledged batch — no
// lost acked batch, no partially applied batch.
//
// For where this package sits in the whole system — how the engine's
// commit path threads through the log and what recovery restores — see
// docs/ARCHITECTURE.md at the repository root.
package wal
