package hull3d

import (
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// Pseudohull point culling (§3 "Point Culling via Pseudohull Computation",
// after Tang et al.): grow a (generally non-convex) "pseudohull" by
// repeatedly splitting each facet toward its furthest visible point; points
// that end up inside the pseudohull cannot be hull vertices and are pruned.
// The final hull is computed over the survivors with the reservation-based
// parallel quickhull.
//
// Differences from Tang et al.'s GPU version, mirroring the paper's: the
// facet recursion forks through parlay's work-stealing scheduler rather
// than running in lock-step over preallocated GPU buffers; the furthest
// point per facet uses a parallel max-reduction; and growth stops once a
// facet holds fewer than CullThreshold points, which bounds recursion depth
// on skewed inputs while leaving only a negligible number of extra unpruned
// points.

// CullThreshold is the default facet point count below which the pseudohull
// stops growing.
const CullThreshold = 64

// Pseudo computes the 3D hull with pseudohull culling followed by the
// reservation-based parallel quickhull.
func Pseudo(pts geom.Points) [][3]int32 {
	facets, _ := PseudoWithStats(pts, CullThreshold)
	return facets
}

// PseudoWithStats additionally returns the number of points that survived
// pruning (the §6.1 statistic: e.g. 83669 of 10M for 3D-IS-10M vs 2316 for
// 3D-U-10M).
func PseudoWithStats(pts geom.Points, threshold int) ([][3]int32, int) {
	if threshold <= 0 {
		threshold = CullThreshold
	}
	h, ok := newHullState3(pts, nil)
	if !ok {
		return nil, 0
	}
	// The initial tetra corners participate in the final hull computation.
	var tetraVerts []int32
	for _, fi := range h.alive {
		for _, v := range h.facets[fi].v {
			tetraVerts = append(tetraVerts, v)
		}
	}
	survivors := make([][]int32, 4)
	parlay.For(4, 1, func(k int) {
		f := &h.facets[h.alive[k]]
		survivors[k] = pseudoRec(pts, f.v, f.pts, threshold)
	})
	var cand []int32
	cand = append(cand, tetraVerts...)
	for _, s := range survivors {
		cand = append(cand, s...)
	}
	cand = dedupeIDs(cand)
	gathered := pts.Gather(cand)
	sub := Quickhull(gathered)
	// Map facet vertex ids back to the original buffer.
	out := make([][3]int32, len(sub))
	for i, f := range sub {
		out[i] = [3]int32{cand[f[0]], cand[f[1]], cand[f[2]]}
	}
	return out, len(cand)
}

// pseudoRec grows the pseudohull under triangle tri over its assigned
// visible points cand, returning the ids that survive culling (leftover
// points of small facets plus the apex vertices chosen along the way).
func pseudoRec(pts geom.Points, tri [3]int32, cand []int32, threshold int) []int32 {
	if len(cand) == 0 {
		return nil
	}
	if len(cand) <= threshold {
		return cand
	}
	a, b, c := pts.At(int(tri[0])), pts.At(int(tri[1])), pts.At(int(tri[2]))
	fi := parlay.MaxIndexFloat(len(cand), 4096, func(i int) float64 {
		return geom.PlaneSide3(a, b, c, pts.At(int(cand[i])))
	})
	q := cand[fi]
	qc := pts.At(int(q))
	// Split toward q: three descendant triangles sharing apex q.
	tris := [3][3]int32{
		{tri[0], tri[1], q},
		{tri[1], tri[2], q},
		{tri[2], tri[0], q},
	}
	planes := [3][3][]float64{
		{a, b, qc},
		{b, c, qc},
		{c, a, qc},
	}
	var lists [3][]int32
	for s := 0; s < 3; s++ {
		s := s
		lists[s] = parlay.Pack(cand, func(i int) bool {
			p := cand[i]
			if p == q {
				return false
			}
			// Assign to the first sub-facet the point is strictly above;
			// earlier facets take precedence so each point lands once.
			for t := 0; t < s; t++ {
				if geom.PlaneSide3(planes[t][0], planes[t][1], planes[t][2], pts.At(int(p))) > 0 {
					return false
				}
			}
			return geom.PlaneSide3(planes[s][0], planes[s][1], planes[s][2], pts.At(int(p))) > 0
		})
	}
	var out [3][]int32
	run := func(s int) func() {
		return func() { out[s] = pseudoRec(pts, tris[s], lists[s], threshold) }
	}
	// Fork while a subproblem is above the sequential grain; the scheduler
	// balances the (skew-prone) facet tree, so no depth limit is needed.
	if len(cand) > 4096 {
		parlay.Do(run(0), run(1), run(2))
	} else {
		run(0)()
		run(1)()
		run(2)()
	}
	res := []int32{q}
	for s := 0; s < 3; s++ {
		res = append(res, out[s]...)
	}
	return res
}

func dedupeIDs(ids []int32) []int32 {
	seen := make(map[int32]bool, len(ids))
	out := ids[:0]
	for _, v := range ids {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DivideConquer computes the 3D hull with the paper's divide-and-conquer
// strategy: partition into c·numProc blocks, sequential quickhull per block
// (blocks in parallel), then the reservation-based parallel quickhull over
// the union of the block hulls' vertices.
func DivideConquer(pts geom.Points) [][3]int32 {
	n := pts.Len()
	const c = 4
	numBlocks := c * parlay.NumWorkers()
	if n < 8192 || numBlocks < 2 {
		return SequentialQuickhull(pts)
	}
	blockSize := (n + numBlocks - 1) / numBlocks
	subVerts := make([][]int32, numBlocks)
	parlay.For(numBlocks, 1, func(bk int) {
		lo := bk * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		sub := SequentialQuickhull(pts.Slice(lo, hi))
		verts := Vertices(sub)
		for i := range verts {
			verts[i] += int32(lo)
		}
		if sub == nil {
			// Degenerate block (coplanar points): keep all its points as
			// candidates so no hull vertex is lost.
			verts = make([]int32, hi-lo)
			for i := range verts {
				verts[i] = int32(lo + i)
			}
		}
		subVerts[bk] = verts
	})
	var union []int32
	for _, v := range subVerts {
		union = append(union, v...)
	}
	gathered := pts.Gather(union)
	sub := Quickhull(gathered)
	out := make([][3]int32, len(sub))
	for i, f := range sub {
		out[i] = [3]int32{union[f[0]], union[f[1]], union[f[2]]}
	}
	return out
}
