package hull3d

import (
	"fmt"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func benchSets(n int) []struct {
	name string
	pts  geom.Points
} {
	return []struct {
		name string
		pts  geom.Points
	}{
		{"U", generators.UniformCube(n, 3, 1)},
		{"IS", generators.InSphere(n, 3, 2)},
		{"statue", generators.Statue(n, 3)},
	}
}

func BenchmarkHull3D(b *testing.B) {
	algs := []struct {
		name string
		f    func(geom.Points) [][3]int32
	}{
		{"seqQuickhull", SequentialQuickhull},
		{"quickhull", Quickhull},
		{"randinc", func(p geom.Points) [][3]int32 { return RandInc(p, 1) }},
		{"pseudo", Pseudo},
		{"dnc", DivideConquer},
	}
	for _, s := range benchSets(50000) {
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", s.name, a.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.f(s.pts)
				}
			})
		}
	}
}

func BenchmarkPseudohullThresholds(b *testing.B) {
	pts := generators.InSphere(50000, 3, 4)
	for _, thr := range []int{16, 64, 512} {
		b.Run(fmt.Sprintf("thr=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PseudoWithStats(pts, thr)
			}
		})
	}
}
