package hull3d

import (
	"pargeo/internal/core"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// This file implements the paper's reservation-based parallel incremental
// convex hull in R³ (§3, Fig. 5). Per round:
//
//  1. select a batch of visible points (a prefix of the random permutation
//     for RandInc; per-facet furthest points for the quickhull flavor);
//  2. each batch point BFSes its visible facet set from its one stored
//     facet and reserves — via WriteMin of its priority — every visible
//     facet *and* every horizon-adjacent boundary facet (boundary facets
//     have their neighbor pointers rewired by the insertion, so two points
//     with touching horizons must not commit in the same round; this also
//     rules out the reflex artifacts Stein et al.'s GPU quickhull suffers
//     from, discussed in Appendix A);
//  3. points that hold all their reservations win;
//  4. winners delete their visible facets, build the horizon cone, and
//     redistribute the points stored on the dead facets — all in parallel,
//     with no locks, because winners' facet neighborhoods are disjoint.
//
// Rounds repeat until no visible points remain. The smallest-priority
// point in every batch always wins all of its writes, so at least one
// point commits per round and the algorithm terminates.
//
// Each phase below is a grain-1 parlay loop: one scheduler task per batch
// point, so the highly variable per-point BFS cost (a point may see one
// facet or hundreds) load-balances by work stealing instead of pinning a
// whole block of expensive points to one goroutine.

type visInfo struct {
	vis      []int32
	boundary []int32
}

// round executes one reserve/check/commit round for the given batch.
func (h *hullState3) round(batch []int32) {
	h.stats.AddRound()
	h.stats.AddPoints(int64(len(batch)))
	infos := make([]visInfo, len(batch))
	// Phase 1: BFS + reservation.
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		vis, boundary := h.visibleSet(q)
		infos[k] = visInfo{vis, boundary}
		h.stats.AddFacets(int64(len(vis)))
		h.stats.AddReservations(int64(len(vis) + len(boundary)))
		p := h.prio[q]
		for _, f := range vis {
			h.res.Reserve(int(f), p)
		}
		for _, f := range boundary {
			h.res.Reserve(int(f), p)
		}
	})
	// Phase 2: check.
	success := make([]bool, len(batch))
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		p := h.prio[q]
		ok := true
		for _, f := range infos[k].vis {
			if !h.res.Holds(int(f), p) {
				ok = false
				break
			}
		}
		if ok {
			for _, f := range infos[k].boundary {
				if !h.res.Holds(int(f), p) {
					ok = false
					break
				}
			}
		}
		success[k] = ok
		if ok {
			h.stats.AddSuccess()
		} else {
			h.stats.AddFailure()
		}
	})
	// Phase 3: commit. Horizon sizes are data dependent, so compute each
	// winner's ridge list first, then allocate contiguous facet storage
	// with a scan.
	winnerIdx := parlay.PackIndex(len(batch), func(k int) bool { return success[k] })
	ridgesOf := make([][]ridge, len(winnerIdx))
	parlay.For(len(winnerIdx), 1, func(w int) {
		info := infos[winnerIdx[w]]
		isVis := make(map[int32]bool, len(info.vis))
		for _, f := range info.vis {
			isVis[f] = true
		}
		ridgesOf[w] = h.horizonOf(info.vis, func(f int32) bool { return isVis[f] })
	})
	counts := make([]int, len(winnerIdx))
	for w := range counts {
		counts[w] = len(ridgesOf[w])
	}
	totalNew := parlay.ScanInts(counts) // counts becomes exclusive offsets
	base := int32(len(h.facets))
	h.facets = append(h.facets, make([]facet, totalNew)...)
	h.res.Grow(len(h.facets))
	h.stats.AddAlloc(int64(totalNew))
	parlay.For(len(winnerIdx), 1, func(w int) {
		k := int(winnerIdx[w])
		h.addCone(batch[k], infos[k].vis, ridgesOf[w], base+int32(counts[w]))
	})
	// Release surviving reservations.
	parlay.For(len(batch), 1, func(k int) {
		for _, f := range infos[k].vis {
			if !h.facets[f].dead {
				h.res.Release(int(f))
			}
		}
		for _, f := range infos[k].boundary {
			if !h.facets[f].dead {
				h.res.Release(int(f))
			}
		}
	})
	// Refresh the alive list.
	newAlive := make([]int32, totalNew)
	parlay.For(totalNew, 0, func(i int) { newAlive[i] = base + int32(i) })
	h.alive = append(parlay.Pack(h.alive, func(i int) bool { return !h.facets[h.alive[i]].dead }), newAlive...)
}

// RandInc computes the hull with the reservation-based parallel randomized
// incremental algorithm (§3 + Appendix A: per round, a prefix of
// c·numProc visible points of the random permutation attempts insertion).
func RandInc(pts geom.Points, seed uint64) [][3]int32 {
	return RandIncStats(pts, seed, nil)
}

// RandIncStats is RandInc with instrumentation for Fig. 12.
func RandIncStats(pts geom.Points, seed uint64, stats *core.Stats) [][3]int32 {
	n := pts.Len()
	h, ok := newHullState3(pts, stats)
	if !ok {
		return nil
	}
	perm := parlay.RandomPermutation(n, seed)
	parlay.For(n, 0, func(k int) { h.prio[perm[k]] = int64(k) })
	P := parlay.Pack(perm, func(k int) bool { return h.seed[perm[k]] >= 0 })
	batch := core.BatchSize(8)
	for len(P) > 0 {
		q := P
		if len(q) > batch {
			q = P[:batch]
		}
		h.round(q)
		P = parlay.Pack(P, func(i int) bool { return h.seed[P[i]] >= 0 })
	}
	return h.extract()
}

// Quickhull computes the hull with the reservation-based parallel quickhull
// (§3 + Appendix A: per round, the points furthest from up to c·numProc
// facets attempt insertion). When the number of facets is low it processes
// a single point per round, chosen from the facet with the most visible
// points (Appendix B's low-facet-count optimization, which maximizes the
// volume added per step while parallelism is unavailable anyway).
func Quickhull(pts geom.Points) [][3]int32 {
	return QuickhullStats(pts, nil)
}

// QuickhullStats is Quickhull with instrumentation for Fig. 12.
func QuickhullStats(pts geom.Points, stats *core.Stats) [][3]int32 {
	h, ok := newHullState3(pts, stats)
	if !ok {
		return nil
	}
	n := pts.Len()
	parlay.For(n, 0, func(i int) { h.prio[i] = int64(i) })
	batch := core.BatchSize(8)
	for {
		q := h.furthestBatch(batch)
		if len(q) == 0 {
			break
		}
		h.round(q)
	}
	return h.extract()
}

// furthestBatch returns, for up to r alive facets with assigned points, the
// point furthest above that facet. Facets with the most points first.
// With fewer than minFacetsForBatch candidate facets it returns a single
// point from the facet with the most visible points.
const minFacetsForBatch = 4

func (h *hullState3) furthestBatch(r int) []int32 {
	nonEmpty := parlay.Pack(h.alive, func(i int) bool {
		f := &h.facets[h.alive[i]]
		return !f.dead && len(f.pts) > 0
	})
	if len(nonEmpty) == 0 {
		return nil
	}
	if len(nonEmpty) < minFacetsForBatch {
		best := nonEmpty[0]
		for _, fi := range nonEmpty[1:] {
			if len(h.facets[fi].pts) > len(h.facets[best].pts) {
				best = fi
			}
		}
		return []int32{h.furthestOf(best)}
	}
	if len(nonEmpty) > r {
		parlay.Sort(nonEmpty, func(x, y int32) bool {
			lx, ly := len(h.facets[x].pts), len(h.facets[y].pts)
			if lx != ly {
				return lx > ly
			}
			return x < y
		})
		nonEmpty = nonEmpty[:r]
	}
	out := make([]int32, len(nonEmpty))
	parlay.For(len(nonEmpty), 4, func(k int) {
		out[k] = h.furthestOf(nonEmpty[k])
	})
	return out
}
