// Package hull3d implements the paper's 3-dimensional convex hull suite
// (§3, Fig. 9): the facet/ridge/horizon machinery, sequential quickhull and
// sequential randomized-incremental baselines, the reservation-based
// parallel randomized incremental and quickhull algorithms (Fig. 5), Tang
// et al.'s pseudohull point-culling heuristic, and the divide-and-conquer
// driver.
//
// The hull is a triangulated convex polytope: each facet stores its three
// vertices in counterclockwise order as seen from outside, plus the
// neighboring facet across each directed edge. Visible points are
// distributed across facets — each outside point stores one facet it can
// see, and the full visible set is recovered by a local breadth-first
// search over the facet adjacency graph when the point is processed (§3:
// "we only store the reference of an arbitrary visible facet to each
// visible point, from which we use a local breadth-first search to retrieve
// all of the visible facets only when needed").
package hull3d

import (
	"pargeo/internal/core"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

const (
	seedInside int32 = -1 // point determined interior
	seedOnHull int32 = -2 // point became a hull vertex
)

// facet is a hull triangle. Vertices v[0..2] are CCW from outside; nbr[i]
// is the facet across directed edge v[i] -> v[(i+1)%3].
type facet struct {
	v    [3]int32
	nbr  [3]int32
	pts  []int32 // visible points assigned to this facet
	dead bool
}

type hullState3 struct {
	pts      geom.Points
	facets   []facet
	res      *core.Reservations
	seed     []int32 // per point: facet id, or seedInside/seedOnHull
	prio     []int64
	alive    []int32    // alive facet ids
	interior [3]float64 // a point strictly inside the hull (tetra centroid)
	stats    *core.Stats
}

// visible reports whether point p is strictly outside facet f.
func (h *hullState3) visible(f *facet, p int32) bool {
	return geom.PlaneSide3(h.pts.At(int(f.v[0])), h.pts.At(int(f.v[1])), h.pts.At(int(f.v[2])), h.pts.At(int(p))) > 0
}

// newHullState3 builds the initial tetrahedron and assigns every point to a
// visible facet. ok is false for degenerate inputs (all points coplanar);
// callers fall back to a planar reduction.
func newHullState3(pts geom.Points, stats *core.Stats) (*hullState3, bool) {
	n := pts.Len()
	// v0, v1: extremes along x (lexicographic tiebreak).
	v0, v1 := int32(0), int32(0)
	for i := 1; i < n; i++ {
		if lex3Less(pts.At(i), pts.At(int(v0))) {
			v0 = int32(i)
		}
		if lex3Less(pts.At(int(v1)), pts.At(i)) {
			v1 = int32(i)
		}
	}
	if v0 == v1 {
		return nil, false
	}
	// v2: furthest from line v0-v1.
	a, b := pts.At(int(v0)), pts.At(int(v1))
	i2 := parlay.MaxIndexFloat(n, 0, func(i int) float64 {
		return sqDistToLine(a, b, pts.At(i))
	})
	v2 := int32(i2)
	if sqDistToLine(a, b, pts.At(i2)) == 0 {
		return nil, false // collinear
	}
	// v3: furthest from plane v0-v1-v2.
	c := pts.At(int(v2))
	i3 := parlay.MaxIndexFloat(n, 0, func(i int) float64 {
		s := geom.PlaneSide3(a, b, c, pts.At(i))
		if s < 0 {
			return -s
		}
		return s
	})
	v3 := int32(i3)
	if geom.PlaneSide3(a, b, c, pts.At(i3)) == 0 {
		return nil, false // coplanar
	}
	h := &hullState3{
		pts:   pts,
		seed:  make([]int32, n),
		prio:  make([]int64, n),
		stats: stats,
	}
	d := pts.At(int(v3))
	for k := 0; k < 3; k++ {
		h.interior[k] = (a[k] + b[k] + c[k] + d[k]) / 4
	}
	// Four tetra facets, each oriented outward (interior below the plane).
	quad := [4][3]int32{
		{v0, v1, v2},
		{v0, v1, v3},
		{v0, v2, v3},
		{v1, v2, v3},
	}
	h.facets = make([]facet, 4)
	for fi, tv := range quad {
		if geom.PlaneSide3(pts.At(int(tv[0])), pts.At(int(tv[1])), pts.At(int(tv[2])), h.interior[:]) > 0 {
			tv[1], tv[2] = tv[2], tv[1]
		}
		h.facets[fi] = facet{v: tv, nbr: [3]int32{-1, -1, -1}}
	}
	// Adjacency by matching directed edges: edge (u,w) of one facet matches
	// edge (w,u) of its neighbor.
	type edgeKey struct{ u, w int32 }
	owner := map[edgeKey][2]int32{} // edge -> (facet, edge slot)
	for fi := range h.facets {
		f := &h.facets[fi]
		for e := 0; e < 3; e++ {
			u, w := f.v[e], f.v[(e+1)%3]
			if m, ok := owner[edgeKey{w, u}]; ok {
				f.nbr[e] = m[0]
				h.facets[m[0]].nbr[m[1]] = int32(fi)
			} else {
				owner[edgeKey{u, w}] = [2]int32{int32(fi), int32(e)}
			}
		}
	}
	h.res = core.NewReservations(4)
	h.alive = []int32{0, 1, 2, 3}
	h.stats.AddAlloc(4)
	// Assign every point to its first visible facet.
	parlay.For(n, 512, func(i int) {
		p := int32(i)
		if p == v0 || p == v1 || p == v2 || p == v3 {
			h.seed[i] = seedOnHull
			return
		}
		h.seed[i] = seedInside
		for fi := int32(0); fi < 4; fi++ {
			if h.visible(&h.facets[fi], p) {
				h.seed[i] = fi
				break
			}
		}
	})
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	for fi := int32(0); fi < 4; fi++ {
		fi := fi
		h.facets[fi].pts = parlay.Pack(idx, func(i int) bool { return h.seed[i] == fi })
	}
	return h, true
}

func lex3Less(a, b []float64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

func sqDistToLine(a, b, p []float64) float64 {
	abx, aby, abz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	apx, apy, apz := p[0]-a[0], p[1]-a[1], p[2]-a[2]
	// |ab x ap|^2 / |ab|^2
	cx := aby*apz - abz*apy
	cy := abz*apx - abx*apz
	cz := abx*apy - aby*apx
	ab2 := abx*abx + aby*aby + abz*abz
	if ab2 == 0 {
		return 0
	}
	return (cx*cx + cy*cy + cz*cz) / ab2
}

// visibleSet runs the local BFS from q's seed facet, returning the facets
// visible to q and the non-visible boundary facets adjacent to the horizon.
func (h *hullState3) visibleSet(q int32) (vis, boundary []int32) {
	start := h.seed[q]
	visited := map[int32]bool{start: true}
	vis = append(vis, start)
	onBoundary := map[int32]bool{}
	for head := 0; head < len(vis); head++ {
		f := &h.facets[vis[head]]
		for e := 0; e < 3; e++ {
			nb := f.nbr[e]
			if visited[nb] {
				continue
			}
			visited[nb] = true
			if h.visible(&h.facets[nb], q) {
				vis = append(vis, nb)
			} else if !onBoundary[nb] {
				onBoundary[nb] = true
				boundary = append(boundary, nb)
			}
		}
	}
	return vis, boundary
}

// ridge is a directed horizon edge (u -> w) as seen CCW from q's side,
// together with the boundary facet across it and that facet's edge slot.
type ridge struct {
	u, w     int32
	boundary int32
	slot     int32
}

// horizonOf extracts the closed loop of horizon ridges of a visible set.
// isVis must report visibility of a facet id for the same point.
func (h *hullState3) horizonOf(vis []int32, isVis func(int32) bool) []ridge {
	var ridges []ridge
	for _, fi := range vis {
		f := &h.facets[fi]
		for e := 0; e < 3; e++ {
			nb := f.nbr[e]
			if isVis(nb) {
				continue
			}
			// Directed edge in the visible facet: u -> w; the matching slot
			// in the boundary facet is (w -> u).
			u, w := f.v[e], f.v[(e+1)%3]
			g := &h.facets[nb]
			slot := int32(-1)
			for s := 0; s < 3; s++ {
				if g.v[s] == w && g.v[(s+1)%3] == u {
					slot = int32(s)
					break
				}
			}
			ridges = append(ridges, ridge{u: u, w: w, boundary: nb, slot: slot})
		}
	}
	return ridges
}

// addCone replaces the visible set of winner q with a cone of new facets
// from the horizon to q. newFacet ids are preallocated as
// [base, base+len(ridges)). The caller guarantees exclusive access to the
// visible and boundary facets (via reservations or sequential execution).
func (h *hullState3) addCone(q int32, vis []int32, ridges []ridge, base int32) {
	// Map: horizon vertex u -> cone facet whose ridge starts at u. The
	// horizon is a closed loop, so each horizon vertex starts exactly one
	// ridge.
	startAt := make(map[int32]int32, len(ridges))
	for k, r := range ridges {
		startAt[r.u] = base + int32(k)
	}
	if len(startAt) != len(ridges) {
		// The horizon of an outside point on a convex polytope is a simple
		// closed loop; a repeated start vertex means the facet structure is
		// corrupt (an internal invariant violation, not a user error).
		panic("hull3d: malformed horizon loop")
	}
	for k, r := range ridges {
		fi := base + int32(k)
		// New facet (u, w, q); ridge direction (u->w as seen in the visible
		// facet) makes this CCW from outside: the old visible facet had
		// (u, w) directed with outside up, and q is on the outside.
		nf := facet{v: [3]int32{r.u, r.w, q}}
		// Neighbors: across (u,w) the boundary facet; across (w,q) the cone
		// facet starting at w; across (q,u) the cone facet ending at u —
		// i.e. the one whose ridge starts at the vertex preceding u; found
		// via startAt of... the cone facet with ridge (x,u) is the facet
		// that q->u belongs to; its id is startAt[?]. The facet with ridge
		// starting at w covers edge (w,q) reversed; the facet whose ridge
		// *ends* at u is the one preceding, which is startAt of the vertex
		// that precedes u on the horizon; we can find it as the facet
		// containing directed edge (u, q) reversed = (q, u) ... simpler:
		// facet with ridge ending at u is the unique facet F(x,u), and by
		// construction F(x,u).v[1] == u, so index it by its end vertex too.
		nf.nbr[0] = r.boundary
		nf.nbr[1] = startAt[r.w] // facet (w, x, q): shares edge (w, q)
		// nbr[2] (edge q->u) is the facet whose ridge ends at u; fill in a
		// second pass below.
		nf.nbr[2] = -1
		h.facets[fi] = nf
		// Rewire the boundary facet to point at the new cone facet.
		h.facets[r.boundary].nbr[r.slot] = fi
	}
	// Second pass: nbr[2] of facet (u,w,q) is the facet (x,u,q), which is
	// the facet whose ridge starts at x with end u — equivalently the facet
	// F with F.v[1] == u. Index by end vertex.
	endAt := make(map[int32]int32, len(ridges))
	for k := range ridges {
		endAt[ridges[k].w] = base + int32(k)
	}
	for k, r := range ridges {
		h.facets[base+int32(k)].nbr[2] = endAt[r.u]
	}
	// Kill the visible facets and redistribute their points over the cone.
	var gathered []int32
	for _, fi := range vis {
		h.facets[fi].dead = true
		gathered = append(gathered, h.facets[fi].pts...)
		h.facets[fi].pts = nil
	}
	h.stats.AddKilled(int64(len(vis)))
	h.seed[q] = seedOnHull
	for _, p := range gathered {
		if p == q {
			continue
		}
		h.seed[p] = seedInside
		for k := range ridges {
			fi := base + int32(k)
			if h.visible(&h.facets[fi], p) {
				h.seed[p] = fi
				h.facets[fi].pts = append(h.facets[fi].pts, p)
				break
			}
		}
	}
}

// extract returns the alive facets as vertex triples.
func (h *hullState3) extract() [][3]int32 {
	var out [][3]int32
	for fi := range h.facets {
		if !h.facets[fi].dead {
			out = append(out, h.facets[fi].v)
		}
	}
	return out
}

// Vertices returns the sorted unique vertex ids of a facet list.
func Vertices(facets [][3]int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, f := range facets {
		for _, v := range f {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	parlay.Sort(out, func(a, b int32) bool { return a < b })
	return out
}
