package hull3d

import (
	"pargeo/internal/core"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// insertOne adds one visible point to the hull sequentially: BFS the
// visible set, extract the horizon, and replace the visible region with the
// cone. Shared by the sequential drivers (and counts work for Fig. 12).
func (h *hullState3) insertOne(q int32) {
	vis, _ := h.visibleSet(q)
	h.stats.AddPoints(1)
	h.stats.AddFacets(int64(len(vis)))
	isVis := make(map[int32]bool, len(vis))
	for _, f := range vis {
		isVis[f] = true
	}
	ridges := h.horizonOf(vis, func(f int32) bool { return isVis[f] })
	base := int32(len(h.facets))
	h.facets = append(h.facets, make([]facet, len(ridges))...)
	h.res.Grow(len(h.facets))
	h.stats.AddAlloc(int64(len(ridges)))
	h.addCone(q, vis, ridges, base)
}

// furthestOf returns the point of facet fi's list furthest above its plane.
func (h *hullState3) furthestOf(fi int32) int32 {
	f := &h.facets[fi]
	a, b, c := h.pts.At(int(f.v[0])), h.pts.At(int(f.v[1])), h.pts.At(int(f.v[2]))
	best, bestD := f.pts[0], -1.0
	for _, p := range f.pts {
		if d := geom.PlaneSide3(a, b, c, h.pts.At(int(p))); d > bestD || (d == bestD && p < best) {
			best, bestD = p, d
		}
	}
	return best
}

// SequentialQuickhull is the optimized sequential 3D quickhull (the "Qhull"
// baseline of Fig. 9 and the no-reservation arm of Fig. 12): repeatedly
// take a facet with unprocessed visible points and insert the point
// furthest above it.
func SequentialQuickhull(pts geom.Points) [][3]int32 {
	return SequentialQuickhullStats(pts, nil)
}

// SequentialQuickhullStats is SequentialQuickhull with instrumentation.
func SequentialQuickhullStats(pts geom.Points, stats *core.Stats) [][3]int32 {
	h, ok := newHullState3(pts, stats)
	if !ok {
		return nil // degenerate (planar) input: no 3D hull
	}
	// Work-stack of facet ids that may have points.
	stack := append([]int32(nil), h.alive...)
	for len(stack) > 0 {
		fi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f := &h.facets[fi]
		if f.dead || len(f.pts) == 0 {
			continue
		}
		q := h.furthestOf(fi)
		before := len(h.facets)
		h.insertOne(q)
		h.stats.AddSuccess()
		for k := before; k < len(h.facets); k++ {
			if len(h.facets[k].pts) > 0 {
				stack = append(stack, int32(k))
			}
		}
		// fi may still be alive with leftover points if q's visible set did
		// not include it — cannot happen (q came from fi's list, so fi is
		// visible to q and died). Its points were redistributed above.
	}
	return h.extract()
}

// SequentialRandInc is the sequential randomized incremental hull (Clarkson
// & Shor order, one point per step): the second sequential baseline (the
// role CGAL's incremental hull plays in Fig. 9's comparison).
func SequentialRandInc(pts geom.Points, seed uint64) [][3]int32 {
	h, ok := newHullState3(pts, nil)
	if !ok {
		return nil
	}
	perm := parlay.RandomPermutation(pts.Len(), seed)
	for _, q := range perm {
		if h.seed[q] < 0 {
			continue // already interior or on hull
		}
		// The stored facet may have died since assignment; points are
		// redistributed eagerly on every insertion, so seed is always a
		// live visible facet here.
		h.insertOne(q)
	}
	return h.extract()
}
