package hull3d

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// TestDivideConquerWithCoplanarBlock: when a divide-and-conquer block is
// entirely coplanar its sequential sub-hull is degenerate; the driver must
// keep all of that block's points as candidates so no hull vertex is lost.
func TestDivideConquerWithCoplanarBlock(t *testing.T) {
	n := 20000
	pts := geom.NewPoints(n, 3)
	// First quarter: a planar grid at z = 0 extending beyond the rest, so
	// some of its points are true hull vertices.
	quarter := n / 4
	for i := 0; i < quarter; i++ {
		x := float64(i%100) * 2
		y := float64(i/100) * 2
		pts.Set(i, []float64{x - 50, y - 50, 0})
	}
	// Rest: a small ball far inside the grid's extent.
	rest := generators.InSphere(n-quarter, 3, 1)
	for i := 0; i < n-quarter; i++ {
		p := rest.At(i)
		pts.Set(quarter+i, []float64{p[0] / 10, p[1] / 10, p[2]/10 + 5})
	}
	got := DivideConquer(pts)
	ref := SequentialQuickhull(pts)
	checkHull(t, pts, got, "dnc-coplanar-block")
	if len(Vertices(got)) != len(Vertices(ref)) {
		t.Fatalf("vertex count %d vs sequential %d", len(Vertices(got)), len(Vertices(ref)))
	}
}

// TestPseudoTinyThreshold exercises deep pseudohull recursion.
func TestPseudoTinyThreshold(t *testing.T) {
	pts := generators.OnSphere(5000, 3, 2)
	facets, remaining := PseudoWithStats(pts, 1)
	checkHull(t, pts, facets, "pseudo-thr1")
	if remaining <= 0 || remaining > 5000 {
		t.Fatalf("remaining %d", remaining)
	}
	// Against the default threshold the hull must be identical.
	ref := SequentialQuickhull(pts)
	if len(Vertices(facets)) != len(Vertices(ref)) {
		t.Fatalf("threshold changed the hull: %d vs %d vertices",
			len(Vertices(facets)), len(Vertices(ref)))
	}
}

// TestNearlyDegenerateCloud: points in a pancake (tiny z extent) stress
// the plane-side predicates.
func TestNearlyDegeneratePancake(t *testing.T) {
	pts := generators.UniformCube(3000, 3, 3)
	for i := 0; i < pts.Len(); i++ {
		pts.At(i)[2] *= 1e-9 // squash z
	}
	ref := SequentialQuickhull(pts)
	if ref == nil {
		t.Skip("pancake collapsed to exact coplanarity")
	}
	for _, alg := range algos3[2:] {
		facets := alg.f(pts)
		checkHull(t, pts, facets, "pancake/"+alg.name)
	}
}

// TestHullOfHullIdempotent: the hull of the hull vertices is the hull.
func TestHullOfHullIdempotent(t *testing.T) {
	pts := generators.InSphere(5000, 3, 4)
	f1 := Quickhull(pts)
	vs := Vertices(f1)
	sub := pts.Gather(vs)
	f2 := Quickhull(sub)
	if len(Vertices(f2)) != len(vs) {
		t.Fatalf("hull of hull has %d vertices, want %d", len(Vertices(f2)), len(vs))
	}
}
