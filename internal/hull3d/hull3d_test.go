package hull3d

import (
	"math"
	"sort"
	"testing"

	"pargeo/internal/core"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// checkHull validates the full set of 3D hull invariants:
// containment, edge-manifoldness, Euler's formula, and local convexity.
func checkHull(t *testing.T, pts geom.Points, facets [][3]int32, label string) {
	t.Helper()
	if len(facets) < 4 {
		t.Fatalf("%s: too few facets: %d", label, len(facets))
	}
	// Scale-relative tolerance for containment.
	box := geom.BoundingBoxAll(pts)
	diam := math.Sqrt(box.SqDiameter())
	tol := 1e-9 * diam * diam * diam

	// 1. Containment: no point strictly above any facet.
	for fi, f := range facets {
		a, b, c := pts.At(int(f[0])), pts.At(int(f[1])), pts.At(int(f[2]))
		for i := 0; i < pts.Len(); i++ {
			if s := geom.PlaneSide3(a, b, c, pts.At(i)); s > tol {
				t.Fatalf("%s: point %d above facet %d by %g (tol %g)", label, i, fi, s, tol)
			}
		}
	}
	// 2. Each undirected edge appears in exactly two facets, once per
	// direction (closed orientable 2-manifold).
	type dedge struct{ u, w int32 }
	dir := map[dedge]int{}
	for _, f := range facets {
		for e := 0; e < 3; e++ {
			dir[dedge{f[e], f[(e+1)%3]}]++
		}
	}
	for k, cnt := range dir {
		if cnt != 1 {
			t.Fatalf("%s: directed edge %v appears %d times", label, k, cnt)
		}
		if dir[dedge{k.w, k.u}] != 1 {
			t.Fatalf("%s: edge %v missing its reverse", label, k)
		}
	}
	// 3. Euler's formula V - E + F = 2.
	verts := Vertices(facets)
	V, E, F := len(verts), len(dir)/2, len(facets)
	if V-E+F != 2 {
		t.Fatalf("%s: Euler check failed: V=%d E=%d F=%d", label, V, E, F)
	}
}

// hullVolume computes the signed volume via the divergence theorem; equal
// across algorithms iff they produce the same convex body.
func hullVolume(pts geom.Points, facets [][3]int32) float64 {
	vol := 0.0
	for _, f := range facets {
		a, b, c := pts.At(int(f[0])), pts.At(int(f[1])), pts.At(int(f[2]))
		vol += (a[0]*(b[1]*c[2]-b[2]*c[1]) -
			a[1]*(b[0]*c[2]-b[2]*c[0]) +
			a[2]*(b[0]*c[1]-b[1]*c[0])) / 6
	}
	return vol
}

var algos3 = []struct {
	name string
	f    func(pts geom.Points) [][3]int32
}{
	{"SequentialQuickhull", SequentialQuickhull},
	{"SequentialRandInc", func(p geom.Points) [][3]int32 { return SequentialRandInc(p, 7) }},
	{"RandInc", func(p geom.Points) [][3]int32 { return RandInc(p, 11) }},
	{"Quickhull", Quickhull},
	{"Pseudo", Pseudo},
	{"DivideConquer", DivideConquer},
}

func TestHull3DInvariants(t *testing.T) {
	cases := []struct {
		name string
		pts  geom.Points
	}{
		{"uniform-2k", generators.UniformCube(2000, 3, 1)},
		{"insphere-2k", generators.InSphere(2000, 3, 2)},
		{"onsphere-2k", generators.OnSphere(2000, 3, 3)},
		{"oncube-2k", generators.OnCube(2000, 3, 4)},
		{"statue-2k", generators.Statue(2000, 5)},
	}
	for _, tc := range cases {
		var refVol float64
		for ai, alg := range algos3 {
			facets := alg.f(tc.pts)
			checkHull(t, tc.pts, facets, tc.name+"/"+alg.name)
			vol := hullVolume(tc.pts, facets)
			if ai == 0 {
				refVol = vol
			} else if math.Abs(vol-refVol) > 1e-6*math.Abs(refVol) {
				t.Fatalf("%s/%s: volume %g differs from reference %g",
					tc.name, alg.name, vol, refVol)
			}
		}
	}
}

func TestHull3DLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := generators.UniformCube(50000, 3, 42)
	ref := SequentialQuickhull(pts)
	refVol := hullVolume(pts, ref)
	for _, alg := range algos3[2:] { // the parallel ones
		facets := alg.f(pts)
		checkHull(t, pts, facets, "large/"+alg.name)
		if vol := hullVolume(pts, facets); math.Abs(vol-refVol) > 1e-6*refVol {
			t.Fatalf("large/%s: volume %g vs %g", alg.name, vol, refVol)
		}
	}
}

func TestHull3DVertexSetsAgree(t *testing.T) {
	pts := generators.InSphere(3000, 3, 99)
	ref := Vertices(SequentialQuickhull(pts))
	for _, alg := range algos3[1:] {
		got := Vertices(alg.f(pts))
		if len(got) != len(ref) {
			t.Fatalf("%s: %d hull vertices, want %d", alg.name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: vertex sets differ at %d: %d vs %d", alg.name, i, got[i], ref[i])
			}
		}
	}
}

func TestHull3DTetrahedron(t *testing.T) {
	pts := geom.Points{Dim: 3, Data: []float64{
		0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1,
		0.1, 0.1, 0.1, 0.2, 0.2, 0.2, // interior points
	}}
	for _, alg := range algos3 {
		facets := alg.f(pts)
		if len(facets) != 4 {
			t.Fatalf("%s: tetra should have 4 facets, got %d", alg.name, len(facets))
		}
		vs := Vertices(facets)
		want := []int32{0, 1, 2, 3}
		for i := range want {
			if vs[i] != want[i] {
				t.Fatalf("%s: tetra vertices %v", alg.name, vs)
			}
		}
	}
}

func TestHull3DDegenerateInputs(t *testing.T) {
	// Coplanar points: no 3D hull; all algorithms must return nil and not
	// panic or loop.
	n := 100
	pts := geom.NewPoints(n, 3)
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{float64(i % 10), float64(i / 10), 0})
	}
	for _, alg := range algos3 {
		if f := alg.f(pts); f != nil {
			t.Fatalf("%s: coplanar input should give nil, got %d facets", alg.name, len(f))
		}
	}
	// Collinear.
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{float64(i), float64(2 * i), float64(3 * i)})
	}
	for _, alg := range algos3 {
		if f := alg.f(pts); f != nil {
			t.Fatalf("%s: collinear input should give nil", alg.name)
		}
	}
	// All identical.
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{1, 2, 3})
	}
	for _, alg := range algos3 {
		if f := alg.f(pts); f != nil {
			t.Fatalf("%s: identical points should give nil", alg.name)
		}
	}
}

func TestHull3DStatsReservationOverhead(t *testing.T) {
	// Fig. 12's shape at miniature scale: reservation-based quickhull
	// touches a comparable number of points/facets to the sequential one
	// (same asymptotic work).
	pts := generators.InSphere(20000, 3, 5)
	var seq, par core.Stats
	SequentialQuickhullStats(pts, &seq)
	QuickhullStats(pts, &par)
	if par.PointsTouched == 0 || seq.PointsTouched == 0 {
		t.Fatal("stats not collected")
	}
	ratio := float64(par.FacetsTouched) / float64(seq.FacetsTouched)
	if ratio > 10 {
		t.Fatalf("reservation facet overhead too large: %.1fx (%d vs %d)",
			ratio, par.FacetsTouched, seq.FacetsTouched)
	}
	if par.Successes == 0 || par.Failures < 0 {
		t.Fatalf("odd reservation stats: %+v", par)
	}
}

func TestPseudoPruning(t *testing.T) {
	// §6.1: after pseudohull pruning, far fewer points remain for uniform
	// data than for in-sphere data (relative to input size).
	u := generators.UniformCube(30000, 3, 6)
	_, remU := PseudoWithStats(u, 64)
	is := generators.InSphere(30000, 3, 7)
	_, remIS := PseudoWithStats(is, 64)
	if remU >= 30000/2 {
		t.Fatalf("pseudohull pruned almost nothing on uniform data: %d / 30000", remU)
	}
	if remIS <= remU {
		t.Fatalf("expected more survivors on in-sphere (%d) than uniform (%d)", remIS, remU)
	}
}

func TestVerticesSortedUnique(t *testing.T) {
	f := [][3]int32{{3, 1, 2}, {2, 1, 0}, {3, 2, 0}, {1, 3, 0}}
	v := Vertices(f)
	if !sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] }) {
		t.Fatalf("not sorted: %v", v)
	}
	if len(v) != 4 {
		t.Fatalf("want 4 unique, got %v", v)
	}
}
