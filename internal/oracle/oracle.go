// Package oracle provides brute-force reference implementations of the
// spatial queries the library answers with trees and clever geometry:
// k-nearest neighbors, orthogonal range search and count, closest pair,
// and convex-hull membership. Everything here is deliberately O(n·k) or
// O(n²) straight-line code with no data structures — slow, obviously
// correct, and therefore usable as the ground truth in differential tests
// across every package. Production code must not import it.
package oracle

import (
	"math"
	"sort"

	"pargeo/internal/geom"
)

// KNN returns the indices of the k points of pts nearest to q, sorted by
// increasing squared distance (ties broken by index). exclude is a point
// index to skip (-1 for none). Fewer than k indices are returned when the
// set is smaller.
func KNN(pts geom.Points, q []float64, k int, exclude int32) []int32 {
	n := pts.Len()
	type cand struct {
		id int32
		d  float64
	}
	cands := make([]cand, 0, n)
	for i := 0; i < n; i++ {
		if int32(i) == exclude {
			continue
		}
		cands = append(cands, cand{int32(i), geom.SqDist(q, pts.At(i))})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].id < cands[b].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// KNNDists returns the sorted squared distances from q to its k nearest
// points (the tie-insensitive signature of a k-NN answer: two correct
// results may pick different equidistant points, but never different
// distances).
func KNNDists(pts geom.Points, q []float64, k int, exclude int32) []float64 {
	ids := KNN(pts, q, k, exclude)
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = geom.SqDist(q, pts.At(int(id)))
	}
	return out
}

// LiveSet is a sequential model of a batch-dynamic structure's live point
// set (global id -> coordinates), mirroring the BDL-tree's
// delete-by-coordinates semantics: removing a batch point removes every
// live point with equal coordinates. Differential tests maintain one
// alongside the structure under test and answer reference queries over
// Points() with this package's brute-force functions.
type LiveSet struct {
	Dim    int
	IDs    []int32
	Coords []float64
}

// Insert records a committed batch and the global ids it was assigned.
func (m *LiveSet) Insert(ids []int32, pts geom.Points) {
	m.IDs = append(m.IDs, ids...)
	m.Coords = append(m.Coords, pts.Data...)
}

// Remove deletes every live point whose coordinates exactly match a batch
// point (order not preserved) and returns the number removed.
func (m *LiveSet) Remove(batch geom.Points) int {
	removed := 0
	for bi := 0; bi < batch.Len(); bi++ {
		q := batch.At(bi)
		for i := 0; i < len(m.IDs); {
			same := true
			for c := 0; c < m.Dim; c++ {
				if m.Coords[i*m.Dim+c] != q[c] {
					same = false
					break
				}
			}
			if same {
				last := len(m.IDs) - 1
				m.IDs[i] = m.IDs[last]
				copy(m.Coords[i*m.Dim:(i+1)*m.Dim], m.Coords[last*m.Dim:(last+1)*m.Dim])
				m.IDs = m.IDs[:last]
				m.Coords = m.Coords[:last*m.Dim]
				removed++
			} else {
				i++
			}
		}
	}
	return removed
}

// Points returns the live coordinates as a buffer whose row i carries
// global id IDs[i].
func (m *LiveSet) Points() geom.Points {
	return geom.Points{Data: m.Coords, Dim: m.Dim}
}

// CoordsOf returns the coordinates of a live global id (nil if dead or
// never assigned).
func (m *LiveSet) CoordsOf(id int32) []float64 {
	for i, g := range m.IDs {
		if g == id {
			return m.Coords[i*m.Dim : (i+1)*m.Dim]
		}
	}
	return nil
}

// RangeSearch returns the indices of all points inside the closed box, in
// increasing order.
func RangeSearch(pts geom.Points, box geom.Box) []int32 {
	var out []int32
	for i := 0; i < pts.Len(); i++ {
		if box.Contains(pts.At(i)) {
			out = append(out, int32(i))
		}
	}
	return out
}

// RangeCount returns the number of points inside the closed box.
func RangeCount(pts geom.Points, box geom.Box) int {
	return len(RangeSearch(pts, box))
}

// ClosestPair returns the indices (i < j) and squared distance of the
// closest pair of distinct points by exhaustive O(n²) comparison (ties
// broken by lexicographic index pair).
func ClosestPair(pts geom.Points) (i, j int32, sqDist float64) {
	n := pts.Len()
	bi, bj, bd := int32(-1), int32(-1), 0.0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := pts.SqDist(a, b)
			if bi < 0 || d < bd {
				bi, bj, bd = int32(a), int32(b), d
			}
		}
	}
	return bi, bj, bd
}

// InHull2D reports whether q lies inside or on the convex polygon whose
// vertices are pts rows hull (in counterclockwise order), within tolerance
// eps on each edge's line equation.
func InHull2D(pts geom.Points, hull []int32, q []float64, eps float64) bool {
	m := len(hull)
	if m == 0 {
		return false
	}
	if m == 1 {
		p := pts.At(int(hull[0]))
		return geom.Dist(p, q) <= eps
	}
	for i := 0; i < m; i++ {
		a := pts.At(int(hull[i]))
		b := pts.At(int(hull[(i+1)%m]))
		// q must not be strictly right of the directed edge a->b.
		cross := (b[0]-a[0])*(q[1]-a[1]) - (b[1]-a[1])*(q[0]-a[0])
		if cross < -eps {
			return false
		}
	}
	return true
}

// InHull3D reports whether q lies inside or on the convex polyhedron given
// by CCW facet triples over pts, within tolerance eps on each facet's
// plane equation (normalized by the facet normal's length).
func InHull3D(pts geom.Points, facets [][3]int32, q []float64, eps float64) bool {
	if len(facets) == 0 {
		return false
	}
	for _, f := range facets {
		a, b, c := pts.At(int(f[0])), pts.At(int(f[1])), pts.At(int(f[2]))
		ux, uy, uz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
		vx, vy, vz := c[0]-a[0], c[1]-a[1], c[2]-a[2]
		nx, ny, nz := uy*vz-uz*vy, uz*vx-ux*vz, ux*vy-uy*vx
		nlen := nx*nx + ny*ny + nz*nz
		if nlen == 0 {
			continue // degenerate facet constrains nothing
		}
		d := nx*(q[0]-a[0]) + ny*(q[1]-a[1]) + nz*(q[2]-a[2])
		// q must not be strictly outside (positive side of a CCW facet).
		if d > eps*math.Sqrt(nlen) {
			return false
		}
	}
	return true
}
