package oracle

import (
	"testing"

	"pargeo/internal/geom"
)

// The oracle is itself verified on tiny hand-checkable inputs — if the
// ground truth is wrong, every differential test downstream is meaningless.

func square() geom.Points {
	p := geom.NewPoints(4, 2)
	p.Set(0, []float64{0, 0})
	p.Set(1, []float64{2, 0})
	p.Set(2, []float64{2, 2})
	p.Set(3, []float64{0, 2})
	return p
}

func TestKNNByHand(t *testing.T) {
	p := square()
	got := KNN(p, []float64{0.1, 0.1}, 2, -1)
	if len(got) != 2 || got[0] != 0 {
		t.Fatalf("nearest to (0.1,0.1) must be point 0: %v", got)
	}
	// Equidistant ties break by index: from the center all four corners tie.
	got = KNN(p, []float64{1, 1}, 3, -1)
	want := []int32{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break by index: got %v", got)
		}
	}
	if got := KNN(p, []float64{0, 0}, 4, 0); len(got) != 3 {
		t.Fatalf("exclude must drop point 0: %v", got)
	}
	if d := KNNDists(p, []float64{0, 0}, 1, -1); d[0] != 0 {
		t.Fatalf("distance to self is 0, got %v", d)
	}
}

func TestRangeByHand(t *testing.T) {
	p := square()
	box := geom.Box{Min: []float64{-1, -1}, Max: []float64{2, 0.5}}
	got := RangeSearch(p, box)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("bottom edge box must hold points 0,1: %v", got)
	}
	// Closed-box semantics: the boundary is inside.
	box = geom.Box{Min: []float64{0, 0}, Max: []float64{0, 0}}
	if RangeCount(p, box) != 1 {
		t.Fatalf("degenerate box on a point must count it")
	}
}

func TestClosestPairByHand(t *testing.T) {
	p := geom.NewPoints(4, 2)
	p.Set(0, []float64{0, 0})
	p.Set(1, []float64{10, 0})
	p.Set(2, []float64{10.5, 0})
	p.Set(3, []float64{5, 5})
	i, j, d := ClosestPair(p)
	if i != 1 || j != 2 || d != 0.25 {
		t.Fatalf("closest pair (1,2,0.25), got (%d,%d,%v)", i, j, d)
	}
}

func TestHullMembership2D(t *testing.T) {
	p := square()
	hull := []int32{0, 1, 2, 3} // CCW
	if !InHull2D(p, hull, []float64{1, 1}, 1e-12) {
		t.Fatal("center is inside")
	}
	if !InHull2D(p, hull, []float64{0, 1}, 1e-12) {
		t.Fatal("edge point is inside (closed hull)")
	}
	if InHull2D(p, hull, []float64{-0.01, 1}, 1e-12) {
		t.Fatal("outside point accepted")
	}
}

func TestHullMembership3D(t *testing.T) {
	p := geom.NewPoints(4, 3)
	p.Set(0, []float64{0, 0, 0})
	p.Set(1, []float64{1, 0, 0})
	p.Set(2, []float64{0, 1, 0})
	p.Set(3, []float64{0, 0, 1})
	// CCW facets of the tetrahedron (outward normals).
	facets := [][3]int32{{0, 2, 1}, {0, 1, 3}, {0, 3, 2}, {1, 2, 3}}
	if !InHull3D(p, facets, []float64{0.1, 0.1, 0.1}, 1e-12) {
		t.Fatal("interior point rejected")
	}
	if InHull3D(p, facets, []float64{1, 1, 1}, 1e-12) {
		t.Fatal("exterior point accepted")
	}
	if !InHull3D(p, facets, []float64{0.5, 0.5, 0}, 1e-12) {
		t.Fatal("facet point is inside (closed hull)")
	}
}
