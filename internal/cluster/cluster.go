// Package cluster implements the clustering pipeline ParGeo's §2 motivates
// for its WSPD/EMST modules: "Our kd-tree can be used to generate a
// well-separated pair decomposition, which can in turn be used to compute
// the hierarchical DBSCAN". It provides:
//
//   - single-linkage dendrograms built from the Euclidean minimum spanning
//     tree (cutting the dendrogram at a height yields single-linkage
//     clusters);
//   - HDBSCAN* hierarchies: the same construction over the
//     mutual-reachability distance, whose MST is computed by running the
//     dual-tree EMST machinery over core distances obtained from the
//     kd-tree's k-NN search.
package cluster

import (
	"math"
	"sort"

	"pargeo/internal/emst"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
	"pargeo/internal/unionfind"
)

// Dendrogram is a single-linkage merge tree over n points: merge i joins
// the clusters containing A[i] and B[i] at Height[i] (non-decreasing).
type Dendrogram struct {
	N      int
	A, B   []int32
	Height []float64
}

// SingleLinkage builds the exact single-linkage dendrogram of pts via the
// EMST: sorting the MST edges by weight and merging in order is precisely
// single-linkage agglomeration.
func SingleLinkage(pts geom.Points) Dendrogram {
	edges := emst.Compute(pts)
	return dendrogramFromEdges(pts.Len(), edges)
}

func dendrogramFromEdges(n int, edges []emst.Edge) Dendrogram {
	sort.Slice(edges, func(i, j int) bool { return edges[i].SqDist < edges[j].SqDist })
	d := Dendrogram{N: n}
	uf := unionfind.New(n)
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			d.A = append(d.A, e.U)
			d.B = append(d.B, e.V)
			d.Height = append(d.Height, math.Sqrt(e.SqDist))
		}
	}
	return d
}

// Cut returns cluster labels (0..k-1) after merging all pairs with height
// < threshold. Singleton noise points get their own labels.
func (d Dendrogram) Cut(threshold float64) []int32 {
	uf := unionfind.New(d.N)
	for i := range d.Height {
		if d.Height[i] < threshold {
			uf.Union(d.A[i], d.B[i])
		}
	}
	labels := make([]int32, d.N)
	next := int32(0)
	rep := map[int32]int32{}
	for i := 0; i < d.N; i++ {
		r := uf.Find(int32(i))
		if l, ok := rep[r]; ok {
			labels[i] = l
		} else {
			rep[r] = next
			labels[i] = next
			next++
		}
	}
	return labels
}

// CutK returns labels for exactly k clusters (merging all but the k-1
// heaviest dendrogram merges); k is clamped to [1, N].
func (d Dendrogram) CutK(k int) []int32 {
	if k < 1 {
		k = 1
	}
	if k > d.N {
		k = d.N
	}
	keep := len(d.Height) - (k - 1)
	uf := unionfind.New(d.N)
	for i := 0; i < keep; i++ {
		uf.Union(d.A[i], d.B[i])
	}
	labels := make([]int32, d.N)
	next := int32(0)
	rep := map[int32]int32{}
	for i := 0; i < d.N; i++ {
		r := uf.Find(int32(i))
		if l, ok := rep[r]; ok {
			labels[i] = l
		} else {
			rep[r] = next
			labels[i] = next
			next++
		}
	}
	return labels
}

// NumClusters returns the cluster count at a given cut threshold.
func (d Dendrogram) NumClusters(threshold float64) int {
	c := d.N
	for _, h := range d.Height {
		if h < threshold {
			c--
		}
	}
	return c
}

// CoreDistances returns, for every point, its distance to its minPts-th
// nearest neighbor — the core distance of DBSCAN/HDBSCAN — via the
// kd-tree's batched AllKthSqDist pass (leaf-ordered queries, pooled
// buffers, O(n) output; +Inf when a point has fewer than minPts
// neighbors, matching the k-NN buffer's KthDist convention).
func CoreDistances(pts geom.Points, minPts int) []float64 {
	n := pts.Len()
	t := kdtree.Build(pts, kdtree.Options{})
	sq := t.AllKthSqDist(minPts)
	out := make([]float64, n)
	parlay.For(n, 0, func(i int) {
		out[i] = math.Sqrt(sq[i])
	})
	return out
}

// HDBSCAN builds the HDBSCAN* hierarchy: the single-linkage dendrogram of
// the mutual-reachability distance
//
//	d_mr(a, b) = max(core(a), core(b), dist(a, b)).
//
// The mutual-reachability MST is obtained by Prim's algorithm with the
// distance evaluated on demand; for the moderate sizes this library's
// clustering pipeline targets this is the standard dense construction
// (the paper's companion work accelerates it with a WSPD; the WSPD-based
// EMST here covers the pure-Euclidean case).
func HDBSCAN(pts geom.Points, minPts int) Dendrogram {
	n := pts.Len()
	if n == 0 {
		return Dendrogram{}
	}
	core := CoreDistances(pts, minPts)
	// Prim over the implicit complete mutual-reachability graph.
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int32, n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	inTree[0] = true
	cur := 0
	mrDist := func(a, b int) float64 {
		d := math.Sqrt(pts.SqDist(a, b))
		return math.Max(d, math.Max(core[a], core[b]))
	}
	var edges []emst.Edge
	for len(edges) < n-1 {
		// Relax from cur, then pick the global min — both data-parallel.
		parlay.ForBlocked(n, 2048, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if !inTree[j] {
					if d := mrDist(cur, j); d < best[j] {
						best[j] = d
						from[j] = int32(cur)
					}
				}
			}
		})
		next := parlay.MinIndexFloat(n, 2048, func(j int) float64 {
			if inTree[j] {
				return math.Inf(1)
			}
			return best[j]
		})
		if next < 0 || math.IsInf(best[next], 1) {
			break
		}
		edges = append(edges, emst.Edge{U: from[next], V: int32(next), SqDist: best[next] * best[next]})
		inTree[next] = true
		cur = next
	}
	return dendrogramFromEdges(n, edges)
}
