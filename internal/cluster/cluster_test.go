package cluster

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// twoBlobs builds two well-separated Gaussian-ish blobs.
func twoBlobs(n int, gap float64, seed uint64) geom.Points {
	half := n / 2
	pts := geom.NewPoints(n, 2)
	a := generators.InSphere(half, 2, seed)
	b := generators.InSphere(n-half, 2, seed+1)
	for i := 0; i < half; i++ {
		p := a.At(i)
		pts.Set(i, []float64{p[0] / 100, p[1] / 100})
	}
	for i := 0; i < n-half; i++ {
		p := b.At(i)
		pts.Set(half+i, []float64{p[0]/100 + gap, p[1] / 100})
	}
	return pts
}

func TestSingleLinkageDendrogramShape(t *testing.T) {
	pts := generators.UniformCube(500, 2, 1)
	d := SingleLinkage(pts)
	if len(d.Height) != 499 {
		t.Fatalf("%d merges for 500 points", len(d.Height))
	}
	for i := 1; i < len(d.Height); i++ {
		if d.Height[i] < d.Height[i-1] {
			t.Fatalf("heights not sorted at %d", i)
		}
	}
}

func TestTwoBlobsSeparate(t *testing.T) {
	pts := twoBlobs(400, 50, 2)
	d := SingleLinkage(pts)
	labels := d.CutK(2)
	// All of blob 1 must share a label, all of blob 2 another.
	l0 := labels[0]
	for i := 1; i < 200; i++ {
		if labels[i] != l0 {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	l1 := labels[200]
	if l1 == l0 {
		t.Fatal("blobs merged")
	}
	for i := 201; i < 400; i++ {
		if labels[i] != l1 {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
	// The top merge height is ~ the gap.
	top := d.Height[len(d.Height)-1]
	if top < 25 || top > 55 {
		t.Fatalf("top merge height %g, expected ~gap 50", top)
	}
}

func TestCutThresholdMonotone(t *testing.T) {
	pts := generators.SeedSpreader(1000, 2, 3)
	d := SingleLinkage(pts)
	prev := d.N + 1
	for _, thr := range []float64{0.001, 0.01, 0.1, 1, 10, 1e6} {
		c := d.NumClusters(thr)
		if c > prev {
			t.Fatalf("cluster count not monotone at threshold %g", thr)
		}
		prev = c
		labels := d.Cut(thr)
		distinct := map[int32]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != c {
			t.Fatalf("labels disagree with NumClusters: %d vs %d", len(distinct), c)
		}
	}
	if d.NumClusters(1e6) != 1 {
		t.Fatal("everything should merge at huge threshold")
	}
}

func TestCutKExactCounts(t *testing.T) {
	pts := generators.UniformCube(300, 2, 4)
	d := SingleLinkage(pts)
	for _, k := range []int{1, 2, 5, 17, 300} {
		labels := d.CutK(k)
		distinct := map[int32]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Fatalf("CutK(%d) produced %d clusters", k, len(distinct))
		}
	}
}

func TestCoreDistances(t *testing.T) {
	pts := generators.UniformCube(500, 2, 5)
	core := CoreDistances(pts, 4)
	// Verify against brute force for a few points.
	for _, i := range []int{0, 100, 499} {
		var ds []float64
		for j := 0; j < 500; j++ {
			if j != i {
				ds = append(ds, math.Sqrt(pts.SqDist(i, j)))
			}
		}
		// 4th smallest
		for a := 0; a < 4; a++ {
			min := a
			for b := a + 1; b < len(ds); b++ {
				if ds[b] < ds[min] {
					min = b
				}
			}
			ds[a], ds[min] = ds[min], ds[a]
		}
		if math.Abs(core[i]-ds[3]) > 1e-9*(1+ds[3]) {
			t.Fatalf("core distance of %d: %g want %g", i, core[i], ds[3])
		}
	}
}

func TestHDBSCANHierarchy(t *testing.T) {
	pts := twoBlobs(300, 40, 6)
	d := HDBSCAN(pts, 5)
	if len(d.Height) != 299 {
		t.Fatalf("%d merges", len(d.Height))
	}
	labels := d.CutK(2)
	l0 := labels[0]
	for i := 1; i < 150; i++ {
		if labels[i] != l0 {
			t.Fatalf("hdbscan split blob 1 at %d", i)
		}
	}
	if labels[150] == l0 {
		t.Fatal("hdbscan merged the blobs at k=2")
	}
	// Mutual reachability heights dominate Euclidean single-linkage
	// heights (d_mr >= d).
	sl := SingleLinkage(pts)
	if d.Height[0] < sl.Height[0]-1e-12 {
		t.Fatalf("first HDBSCAN merge (%g) below single-linkage (%g)", d.Height[0], sl.Height[0])
	}
}

func TestHDBSCANNoiseRobustness(t *testing.T) {
	// Single-linkage chains through a bridge of noise points; HDBSCAN with
	// minPts resists it. Build two blobs connected by a thin bridge.
	pts := twoBlobs(300, 10, 7)
	n := pts.Len()
	bridge := 8
	all := geom.NewPoints(n+bridge, 2)
	copy(all.Data, pts.Data)
	for i := 0; i < bridge; i++ {
		all.Set(n+i, []float64{0.3 + 9.4*float64(i+1)/float64(bridge+1), 0})
	}
	slTop := SingleLinkage(all).Height
	hdTop := HDBSCAN(all, 10).Height
	// The largest HDBSCAN merge must be substantially higher than the
	// largest single-linkage merge: the bridge points have large core
	// distances under minPts=10 and cannot chain the blobs cheaply.
	if hdTop[len(hdTop)-1] <= slTop[len(slTop)-1]*1.2 {
		t.Fatalf("bridge defeated HDBSCAN: sl top %g, hdbscan top %g",
			slTop[len(slTop)-1], hdTop[len(hdTop)-1])
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if d := HDBSCAN(geom.NewPoints(0, 2), 3); d.N != 0 {
		t.Fatal("empty HDBSCAN")
	}
	one := geom.Points{Dim: 2, Data: []float64{1, 1}}
	d := SingleLinkage(one)
	if len(d.Height) != 0 {
		t.Fatal("single point should have no merges")
	}
	if l := d.CutK(1); len(l) != 1 || l[0] != 0 {
		t.Fatalf("single point labels %v", l)
	}
}
