// Package graphgen implements ParGeo's spatial graph generators (Module 3):
// the k-NN graph, Delaunay graph, Gabriel graph, β-skeleton, and the
// WSPD-based t-spanner. Each generator composes the library's substrates
// exactly as Figure 1 indicates: k-NN graphs come from the kd-tree's k-NN
// search, β-skeletons use the kd-tree's range search for lune-emptiness
// tests, spanners come from the WSPD, and the Delaunay/Gabriel graphs come
// from the Delaunay triangulation.
package graphgen

import (
	"math"

	"pargeo/internal/delaunay"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
	"pargeo/internal/wspd"
)

// Edge is an undirected edge between point indices (U < V).
type Edge struct{ U, V int32 }

func mkEdge(u, v int32) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// KNNGraph returns the directed k-nearest-neighbor graph: row i lists the k
// nearest neighbors of point i. The rows are views into one flat AllKNN
// result buffer — the whole graph costs O(1) allocations beyond it.
func KNNGraph(pts geom.Points, k int) [][]int32 {
	t := kdtree.Build(pts, kdtree.Options{Split: kdtree.ObjectMedian})
	n := pts.Len()
	flat := t.AllKNN(k, nil)
	adj := make([][]int32, n)
	parlay.For(n, 0, func(i int) {
		row := flat[i*k : (i+1)*k]
		m := k
		for m > 0 && row[m-1] < 0 {
			m--
		}
		adj[i] = row[:m:m]
	})
	return adj
}

// KNNGraphEdges returns the undirected edge set of the k-NN graph.
func KNNGraphEdges(pts geom.Points, k int) []Edge {
	adj := KNNGraph(pts, k)
	seen := map[Edge]bool{}
	var out []Edge
	for u, nbrs := range adj {
		for _, v := range nbrs {
			e := mkEdge(int32(u), v)
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// DelaunayGraph returns the Delaunay graph edges (parallel triangulation).
func DelaunayGraph(pts geom.Points, seed uint64) []Edge {
	dt := delaunay.Parallel(pts, seed)
	des := dt.Edges()
	out := make([]Edge, len(des))
	for i, e := range des {
		out[i] = Edge{e.U, e.V}
	}
	return out
}

// GabrielGraph returns the Gabriel graph: edges (u,v) whose diametral disk
// contains no other point. Since the Gabriel graph is a subgraph of the
// Delaunay graph, it is computed by filtering Delaunay edges with a
// nearest-neighbor probe at each edge midpoint (data-parallel).
func GabrielGraph(pts geom.Points, seed uint64) []Edge {
	des := DelaunayGraph(pts, seed)
	t := kdtree.Build(pts, kdtree.Options{})
	keep := make([]bool, len(des))
	parlay.ForBlocked(len(des), 64, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(3)
		mid := make([]float64, 2)
		for i := lo; i < hi; i++ {
			e := des[i]
			u, v := pts.At(int(e.U)), pts.At(int(e.V))
			mid[0] = (u[0] + v[0]) / 2
			mid[1] = (u[1] + v[1]) / 2
			sqRad := geom.SqDist(u, v) / 4
			buf.Reset()
			t.KNNInto(mid, -1, buf)
			ids := buf.Result(nil)
			empty := true
			for _, id := range ids {
				if id == e.U || id == e.V {
					continue
				}
				if geom.SqDist(mid, pts.At(int(id))) < sqRad*(1-1e-12) {
					empty = false
				}
				break // nearest non-endpoint decides
			}
			keep[i] = empty
		}
	})
	return parlay.Pack(des, func(i int) bool { return keep[i] })
}

// BetaSkeleton returns the lune-based β-skeleton for β >= 1 (β = 1 is the
// Gabriel graph). An edge (u,v) survives iff the lune — the intersection of
// the two disks of radius β·|uv|/2 centered at (1-β/2)·u + (β/2)·v and
// (β/2)·u + (1-β/2)·v — contains no other point. Since for β >= 1 the
// β-skeleton is a subgraph of the Delaunay graph, Delaunay edges are
// filtered with a kd-tree range query over the lune's bounding box
// (the paper's use of range search for the β-skeleton, §2).
func BetaSkeleton(pts geom.Points, beta float64, seed uint64) []Edge {
	if beta < 1 {
		panic("graphgen: BetaSkeleton requires beta >= 1")
	}
	des := DelaunayGraph(pts, seed)
	t := kdtree.Build(pts, kdtree.Options{})
	keep := make([]bool, len(des))
	parlay.ForBlocked(len(des), 32, func(lo, hi int) {
		c1 := make([]float64, 2)
		c2 := make([]float64, 2)
		for i := lo; i < hi; i++ {
			e := des[i]
			u, v := pts.At(int(e.U)), pts.At(int(e.V))
			d := math.Sqrt(geom.SqDist(u, v))
			r := beta * d / 2
			for c := 0; c < 2; c++ {
				c1[c] = (1-beta/2)*u[c] + (beta/2)*v[c]
				c2[c] = (beta/2)*u[c] + (1-beta/2)*v[c]
			}
			// Candidates: points in the bounding box of the lune.
			box := geom.EmptyBox(2)
			for c := 0; c < 2; c++ {
				box.Min[c] = math.Max(c1[c]-r, c2[c]-r)
				box.Max[c] = math.Min(c1[c]+r, c2[c]+r)
			}
			empty := true
			for _, id := range t.RangeSearch(box) {
				if id == e.U || id == e.V {
					continue
				}
				p := pts.At(int(id))
				rr := r * r * (1 - 1e-12)
				if geom.SqDist(p, c1) < rr && geom.SqDist(p, c2) < rr {
					empty = false
					break
				}
			}
			keep[i] = empty
		}
	})
	return parlay.Pack(des, func(i int) bool { return keep[i] })
}

// RelativeNeighborhoodGraph returns the RNG: edges (u,v) such that no
// point is simultaneously closer to both u and v than they are to each
// other. It equals the lune-based β-skeleton at β = 2, sitting in the
// nesting EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay.
func RelativeNeighborhoodGraph(pts geom.Points, seed uint64) []Edge {
	return BetaSkeleton(pts, 2.0, seed)
}

// Spanner builds the WSPD-based t-spanner (§2): one edge between arbitrary
// representatives of each s-well-separated pair yields a t-spanner with
// t = (s+4)/(s-4) for s > 4.
func Spanner(pts geom.Points, s float64) []Edge {
	if s <= 4 {
		s = 6 // default: t = 5 spanner
	}
	t := kdtree.Build(pts, kdtree.Options{LeafSize: 1})
	pairs := wspd.Compute(t, s)
	out := make([]Edge, len(pairs))
	parlay.For(len(pairs), 256, func(i int) {
		a := t.Points(pairs[i].A)[0]
		b := t.Points(pairs[i].B)[0]
		out[i] = mkEdge(a, b)
	})
	return out
}

// StretchFactor returns the maximum over the sampled point pairs of
// graph-distance / Euclidean-distance (a verification helper for the
// spanner property; exact for small n when sample = n).
func StretchFactor(pts geom.Points, edges []Edge, sample int) float64 {
	n := pts.Len()
	if n < 2 {
		return 1
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	if sample > n {
		sample = n
	}
	worst := 1.0
	for src := 0; src < sample; src++ {
		dist := dijkstra(pts, adj, int32(src))
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			eu := math.Sqrt(pts.SqDist(src, v))
			if eu == 0 {
				continue
			}
			if math.IsInf(dist[v], 1) {
				return math.Inf(1)
			}
			if s := dist[v] / eu; s > worst {
				worst = s
			}
		}
	}
	return worst
}

// dijkstra computes single-source Euclidean-weighted shortest paths with a
// binary heap.
func dijkstra(pts geom.Points, adj [][]int32, src int32) []float64 {
	n := pts.Len()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	type qe struct {
		d float64
		v int32
	}
	heap := []qe{{0, src}}
	push := func(e qe) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() qe {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l].d < heap[small].d {
				small = l
			}
			if r < last && heap[r].d < heap[small].d {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for len(heap) > 0 {
		e := pop()
		if e.d > dist[e.v] {
			continue
		}
		for _, w := range adj[e.v] {
			nd := e.d + math.Sqrt(pts.SqDist(int(e.v), int(w)))
			if nd < dist[w] {
				dist[w] = nd
				push(qe{nd, w})
			}
		}
	}
	return dist
}
