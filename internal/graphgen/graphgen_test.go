package graphgen

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestKNNGraphDegreeAndCorrectness(t *testing.T) {
	pts := generators.UniformCube(500, 2, 1)
	k := 4
	adj := KNNGraph(pts, k)
	if len(adj) != 500 {
		t.Fatalf("rows %d", len(adj))
	}
	for u, nbrs := range adj {
		if len(nbrs) != k {
			t.Fatalf("point %d has %d neighbors", u, len(nbrs))
		}
		// Verify against brute force by distance multiset.
		kth := 0.0
		for _, v := range nbrs {
			if d := pts.SqDist(u, int(v)); d > kth {
				kth = d
			}
		}
		closer := 0
		for v := 0; v < 500; v++ {
			if v != u && pts.SqDist(u, v) < kth {
				closer++
			}
		}
		if closer > k {
			t.Fatalf("point %d: %d points closer than its kth neighbor", u, closer)
		}
	}
}

func TestGabrielSubsetOfDelaunay(t *testing.T) {
	pts := generators.UniformCube(400, 2, 2)
	de := edgeSet(DelaunayGraph(pts, 1))
	ga := GabrielGraph(pts, 1)
	if len(ga) == 0 || len(ga) >= len(de) {
		t.Fatalf("gabriel %d edges, delaunay %d", len(ga), len(de))
	}
	for _, e := range ga {
		if !de[e] {
			t.Fatalf("gabriel edge %v not in delaunay", e)
		}
	}
	// Brute-force verify the Gabriel property on every kept edge.
	for _, e := range ga {
		u, v := pts.At(int(e.U)), pts.At(int(e.V))
		mid := []float64{(u[0] + v[0]) / 2, (u[1] + v[1]) / 2}
		sqRad := geom.SqDist(u, v) / 4
		for p := 0; p < pts.Len(); p++ {
			if int32(p) == e.U || int32(p) == e.V {
				continue
			}
			if geom.SqDist(mid, pts.At(p)) < sqRad*(1-1e-9) {
				t.Fatalf("edge %v has point %d in its diametral disk", e, p)
			}
		}
	}
	// And verify no Delaunay edge wrongly dropped.
	gaSet := edgeSet(ga)
	for de1 := range de {
		u, v := pts.At(int(de1.U)), pts.At(int(de1.V))
		mid := []float64{(u[0] + v[0]) / 2, (u[1] + v[1]) / 2}
		sqRad := geom.SqDist(u, v) / 4
		empty := true
		for p := 0; p < pts.Len(); p++ {
			if int32(p) == de1.U || int32(p) == de1.V {
				continue
			}
			if geom.SqDist(mid, pts.At(p)) < sqRad*(1-1e-9) {
				empty = false
				break
			}
		}
		if empty && !gaSet[de1] {
			t.Fatalf("edge %v should be Gabriel but was dropped", de1)
		}
	}
}

func edgeSet(es []Edge) map[Edge]bool {
	m := make(map[Edge]bool, len(es))
	for _, e := range es {
		m[e] = true
	}
	return m
}

func TestBetaSkeletonNesting(t *testing.T) {
	pts := generators.UniformCube(400, 2, 3)
	b1 := BetaSkeleton(pts, 1.0, 1)
	b15 := BetaSkeleton(pts, 1.5, 1)
	b2 := BetaSkeleton(pts, 2.0, 1)
	// Larger beta => bigger lune => fewer edges (nested skeletons).
	if !(len(b2) <= len(b15) && len(b15) <= len(b1)) {
		t.Fatalf("skeleton sizes not nested: %d %d %d", len(b1), len(b15), len(b2))
	}
	s15 := edgeSet(b15)
	for _, e := range b2 {
		if !s15[e] {
			t.Fatalf("beta=2 edge %v missing from beta=1.5", e)
		}
	}
	// Beta = 1 equals the Gabriel graph.
	ga := edgeSet(GabrielGraph(pts, 1))
	if len(ga) != len(b1) {
		t.Fatalf("beta=1 (%d) != gabriel (%d)", len(b1), len(ga))
	}
	for _, e := range b1 {
		if !ga[e] {
			t.Fatalf("beta=1 edge %v not gabriel", e)
		}
	}
}

func TestSpannerStretch(t *testing.T) {
	pts := generators.UniformCube(300, 2, 4)
	s := 6.0
	edges := Spanner(pts, s)
	tBound := (s + 4) / (s - 4) // = 5
	got := StretchFactor(pts, edges, 40)
	if math.IsInf(got, 1) {
		t.Fatal("spanner not connected")
	}
	if got > tBound+1e-9 {
		t.Fatalf("stretch %.3f exceeds bound %.3f", got, tBound)
	}
}

func TestSpannerSparse(t *testing.T) {
	pts := generators.UniformCube(2000, 2, 5)
	edges := Spanner(pts, 6)
	// WSPD spanners are linear-size: far fewer edges than the complete
	// graph, more than a tree.
	if len(edges) < 1999 {
		t.Fatalf("too few edges: %d", len(edges))
	}
	if len(edges) > 2000*200 {
		t.Fatalf("spanner too dense: %d", len(edges))
	}
}

func TestKNNGraphEdgesUndirected(t *testing.T) {
	pts := generators.UniformCube(200, 2, 6)
	es := KNNGraphEdges(pts, 3)
	seen := map[Edge]bool{}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
	// Undirected closure of a directed 3-NN graph: between n*k/2 and n*k.
	if len(es) < 300 || len(es) > 600 {
		t.Fatalf("edge count %d out of range", len(es))
	}
}
