package graphgen

import (
	"testing"

	"pargeo/internal/emst"
	"pargeo/internal/generators"
)

func TestGraphNestingChain(t *testing.T) {
	// EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay — the classic proximity-graph
	// hierarchy, verified end to end on one point set.
	pts := generators.UniformCube(600, 2, 11)
	mst := emst.Compute(pts)
	rng := edgeSet(RelativeNeighborhoodGraph(pts, 1))
	gab := edgeSet(GabrielGraph(pts, 1))
	del := edgeSet(DelaunayGraph(pts, 1))
	for _, e := range mst {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !rng[Edge{u, v}] {
			t.Fatalf("EMST edge (%d,%d) missing from RNG", u, v)
		}
	}
	for e := range rng {
		if !gab[e] {
			t.Fatalf("RNG edge %v missing from Gabriel", e)
		}
	}
	for e := range gab {
		if !del[e] {
			t.Fatalf("Gabriel edge %v missing from Delaunay", e)
		}
	}
	if !(len(mst) <= len(rng) && len(rng) <= len(gab) && len(gab) <= len(del)) {
		t.Fatalf("sizes not nested: %d %d %d %d", len(mst), len(rng), len(gab), len(del))
	}
}

func TestRNGBruteForce(t *testing.T) {
	// Verify the RNG lune condition directly on a small set.
	pts := generators.UniformCube(120, 2, 12)
	rng := RelativeNeighborhoodGraph(pts, 1)
	for _, e := range rng {
		duv := pts.SqDist(int(e.U), int(e.V))
		for p := 0; p < pts.Len(); p++ {
			if int32(p) == e.U || int32(p) == e.V {
				continue
			}
			if pts.SqDist(int(e.U), p) < duv*(1-1e-9) && pts.SqDist(int(e.V), p) < duv*(1-1e-9) {
				t.Fatalf("edge %v has a closer witness %d", e, p)
			}
		}
	}
}
