// Package wspd computes the well-separated pair decomposition of Callahan
// and Kosaraju on top of the kd-tree (ParGeo Module 2). A WSPD with
// separation s covers every distinct pair of input points by exactly one
// pair of tree nodes (A, B) such that A and B each fit in a ball of radius
// r and the balls are at least s·r apart. ParGeo uses the WSPD to build the
// Euclidean minimum spanning tree and t-spanners (Module 3) and
// hierarchical clustering.
package wspd

import (
	"math"

	"pargeo/internal/kdtree"
	"pargeo/internal/parlay"
)

// Pair is one well-separated node pair.
type Pair struct {
	A, B *kdtree.Node
}

// WellSeparated reports whether nodes a and b are s-well-separated using
// the standard bounding-ball test: each box is enclosed in a ball with
// diameter equal to the box diagonal; the balls must be at least
// s * max-radius apart.
func WellSeparated(a, b *kdtree.Node, s float64, dim int) bool {
	diamA := math.Sqrt(kdtree.NodeSqDiameter(a, dim))
	diamB := math.Sqrt(kdtree.NodeSqDiameter(b, dim))
	maxRadius := math.Max(diamA, diamB) / 2
	centerDist := 0.0
	for c := 0; c < dim; c++ {
		d := (a.MinC[c]+a.MaxC[c])/2 - (b.MinC[c]+b.MaxC[c])/2
		centerDist += d * d
	}
	centerDist = math.Sqrt(centerDist)
	return centerDist-diamA/2-diamB/2 >= s*maxRadius
}

// forkThreshold: subtree size above which recursion forks a goroutine.
const forkThreshold = 8192

// Compute returns the WSPD of the tree with separation factor s (s = 2
// suffices for the EMST; spanners use larger s). The recursion over subtree
// pairs runs fork-join parallel; each forked task accumulates pairs into
// its own slice and the slices are concatenated at join points, so no
// synchronization is needed beyond the joins themselves.
func Compute(t *kdtree.Tree, s float64) []Pair {
	root := t.Root()
	if root == nil || root.IsLeaf() {
		return nil
	}
	dim := t.Pts.Dim

	var findPair func(a, b *kdtree.Node, out *[]Pair)
	findPair = func(a, b *kdtree.Node, out *[]Pair) {
		if WellSeparated(a, b, s, dim) {
			*out = append(*out, Pair{a, b})
			return
		}
		if a.IsLeaf() && b.IsLeaf() {
			// Two leaves that are not well separated: emit them anyway.
			// With multi-point leaves the decomposition remains a covering
			// (each point pair appears in exactly one emitted node pair);
			// consumers such as the exact BCCP handle non-separated leaf
			// pairs by brute force.
			*out = append(*out, Pair{a, b})
			return
		}
		// Split the node with the larger diameter.
		split, other := a, b
		if a.IsLeaf() || (!b.IsLeaf() && kdtree.NodeSqDiameter(b, dim) > kdtree.NodeSqDiameter(a, dim)) {
			split, other = b, a
		}
		sl, sr := t.Left(split), t.Right(split)
		if split.Size()+other.Size() > forkThreshold {
			var left, right []Pair
			parlay.Do(
				func() { findPair(sl, other, &left) },
				func() { findPair(sr, other, &right) },
			)
			*out = append(*out, left...)
			*out = append(*out, right...)
		} else {
			findPair(sl, other, out)
			findPair(sr, other, out)
		}
	}

	var rec func(nd *kdtree.Node, out *[]Pair)
	rec = func(nd *kdtree.Node, out *[]Pair) {
		if nd.IsLeaf() {
			return
		}
		l, r := t.Left(nd), t.Right(nd)
		if nd.Size() > forkThreshold {
			var left, right, cross []Pair
			parlay.Do(
				func() { rec(l, &left) },
				func() { rec(r, &right) },
				func() { findPair(l, r, &cross) },
			)
			*out = append(*out, left...)
			*out = append(*out, right...)
			*out = append(*out, cross...)
		} else {
			rec(l, out)
			rec(r, out)
			findPair(l, r, out)
		}
	}

	var pairs []Pair
	rec(root, &pairs)
	return pairs
}

// Count returns only the number of WSPD pairs, without materializing them.
func Count(t *kdtree.Tree, s float64) int {
	return len(Compute(t, s))
}
