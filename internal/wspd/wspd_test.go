package wspd

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/kdtree"
)

// TestWSPDCoversAllPairs verifies the defining property: every unordered
// pair of distinct points is covered by exactly one node pair (counting
// intra-leaf pairs as uncovered — the tree is built with leaf size 1 here
// so every pair must be covered).
func TestWSPDCoversAllPairs(t *testing.T) {
	for _, n := range []int{2, 10, 100, 400} {
		pts := generators.UniformCube(n, 2, uint64(n))
		tree := kdtree.Build(pts, kdtree.Options{LeafSize: 1})
		pairs := Compute(tree, 2.0)
		cover := make(map[[2]int32]int)
		for _, pr := range pairs {
			for _, a := range tree.Points(pr.A) {
				for _, b := range tree.Points(pr.B) {
					u, v := a, b
					if u > v {
						u, v = v, u
					}
					cover[[2]int32{u, v}]++
				}
			}
		}
		want := n * (n - 1) / 2
		if len(cover) != want {
			t.Fatalf("n=%d: covered %d pairs, want %d", n, len(cover), want)
		}
		for k, c := range cover {
			if c != 1 {
				t.Fatalf("n=%d: pair %v covered %d times", n, k, c)
			}
		}
	}
}

func TestWSPDSeparation(t *testing.T) {
	// Every emitted non-leaf pair must satisfy the separation predicate.
	pts := generators.UniformCube(500, 3, 3)
	tree := kdtree.Build(pts, kdtree.Options{LeafSize: 1})
	const s = 2.0
	pairs := Compute(tree, s)
	for _, pr := range pairs {
		// Leaf-size-1 trees have zero-diameter leaves; pairs of single
		// points are always well separated for any s.
		if !WellSeparated(pr.A, pr.B, s, 3) && pr.A.Size() > 1 && pr.B.Size() > 1 {
			t.Fatalf("pair not well separated: sizes %d/%d", pr.A.Size(), pr.B.Size())
		}
	}
}

func TestWSPDPairCountLinear(t *testing.T) {
	// Theory: the number of WSPD pairs is O(s^d · n). Sanity-check the
	// growth is roughly linear, not quadratic.
	n1, n2 := 2000, 4000
	p1 := generators.UniformCube(n1, 2, 5)
	p2 := generators.UniformCube(n2, 2, 6)
	c1 := len(Compute(kdtree.Build(p1, kdtree.Options{LeafSize: 1}), 2.0))
	c2 := len(Compute(kdtree.Build(p2, kdtree.Options{LeafSize: 1}), 2.0))
	if c1 < n1 || c2 < n2 {
		t.Fatalf("too few pairs: %d, %d", c1, c2)
	}
	ratio := float64(c2) / float64(c1)
	if ratio > 3.5 { // linear growth would give ~2
		t.Fatalf("pair count growth looks superlinear: %d -> %d (%.2fx)", c1, c2, ratio)
	}
}

func TestWSPDLargerSeparation(t *testing.T) {
	pts := generators.UniformCube(1000, 2, 7)
	tree := kdtree.Build(pts, kdtree.Options{LeafSize: 1})
	cs2 := len(Compute(tree, 2.0))
	cs4 := len(Compute(tree, 4.0))
	if cs4 <= cs2 {
		t.Fatalf("higher separation should produce more pairs: s=2 %d, s=4 %d", cs2, cs4)
	}
}

func TestWSPDEmptyAndSingle(t *testing.T) {
	p0 := generators.UniformCube(1, 2, 8)
	tree := kdtree.Build(p0, kdtree.Options{LeafSize: 1})
	if pairs := Compute(tree, 2.0); len(pairs) != 0 {
		t.Fatalf("single point: %d pairs", len(pairs))
	}
}
