package seb

import (
	"math"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func TestSEB7D(t *testing.T) {
	// The paper evaluates up to 7D; verify all algorithms agree there.
	pts := generators.UniformCube(5000, 7, 71)
	ref := WelzlSequential(pts, 1, Heuristics{MTF: true})
	checkEnclosing(t, pts, ref, "7d/ref")
	for _, alg := range sebAlgos[1:] {
		got := alg.f(pts)
		checkEnclosing(t, pts, got, "7d/"+alg.name)
		if relDiff(got.SqRadius, ref.SqRadius) > 1e-7 {
			t.Fatalf("7d %s: r²=%.12g want %.12g", alg.name, got.SqRadius, ref.SqRadius)
		}
	}
}

func TestSEBSupportOnBoundary(t *testing.T) {
	// The optimal ball's support points lie exactly on its boundary; find
	// them and verify they determine the same ball.
	pts := generators.InSphere(3000, 3, 72)
	b := Welzl(pts, 1, Heuristics{MTF: true})
	var support []int32
	for i := 0; i < pts.Len(); i++ {
		d := b.SqDistTo(pts.At(i))
		if math.Abs(d-b.SqRadius) <= b.SqRadius*1e-9 {
			support = append(support, int32(i))
		}
	}
	if len(support) < 2 || len(support) > 6 {
		t.Fatalf("odd support size %d", len(support))
	}
	sub := pts.Gather(support)
	b2 := WelzlSequential(sub, 1, Heuristics{})
	if relDiff(b2.SqRadius, b.SqRadius) > 1e-9 {
		t.Fatalf("support does not determine the ball: %g vs %g", b2.SqRadius, b.SqRadius)
	}
}

func TestSEBTranslationInvariance(t *testing.T) {
	pts := generators.UniformCube(2000, 3, 73)
	b1 := Sampling(pts, 1)
	shifted := geom.NewPoints(pts.Len(), 3)
	for i := 0; i < pts.Len(); i++ {
		p := pts.At(i)
		shifted.Set(i, []float64{p[0] + 1000, p[1] - 500, p[2] + 42})
	}
	b2 := Sampling(shifted, 1)
	if relDiff(b1.SqRadius, b2.SqRadius) > 1e-9 {
		t.Fatalf("radius not translation invariant: %g vs %g", b1.SqRadius, b2.SqRadius)
	}
	if math.Abs(b2.Center[0]-b1.Center[0]-1000) > 1e-6 {
		t.Fatalf("center did not translate: %v vs %v", b2.Center, b1.Center)
	}
}
