package seb

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// This file implements Larsson et al.'s iterative orthant scan (§4) and the
// paper's sampling-based bootstrap for it (Fig. 6).
//
// One orthant-scan pass partitions space into 2^min(d,6) orthants around
// the current ball center and finds, per orthant, the furthest point lying
// outside the ball. The pass is parallelized exactly as the paper
// describes: the input is divided into blocks, each block scanned
// sequentially, blocks in parallel, and the per-block orthant extrema
// merged afterwards. The ball is then recomputed as the exact smallest
// ball of the current support set plus the new extrema (constructBall).

// maxOrthantBits caps the orthant count at 2^6 = 64 for high dimensions.
const maxOrthantBits = 6

// scanResult carries per-orthant extrema from one scan.
type scanResult struct {
	ids   []int32   // per orthant: furthest outside point (-1 none)
	dists []float64 // per orthant: its squared distance
}

func (r *scanResult) hasOutlier() bool {
	for _, id := range r.ids {
		if id >= 0 {
			return true
		}
	}
	return false
}

// orthantScanPass scans the points with ids idx against ball b.
func orthantScanPass(pts geom.Points, idx []int32, b *Ball) scanResult {
	bits := pts.Dim
	if bits > maxOrthantBits {
		bits = maxOrthantBits
	}
	numOrth := 1 << bits
	merge := func(a, c scanResult) scanResult {
		for o := 0; o < numOrth; o++ {
			if c.ids[o] >= 0 && (a.ids[o] < 0 || c.dists[o] > a.dists[o]) {
				a.ids[o] = c.ids[o]
				a.dists[o] = c.dists[o]
			}
		}
		return a
	}
	fresh := func() scanResult {
		r := scanResult{ids: make([]int32, numOrth), dists: make([]float64, numOrth)}
		for o := range r.ids {
			r.ids[o] = -1
		}
		return r
	}
	n := len(idx)
	p := parlay.NumWorkers()
	nblocks := 4 * p
	if nblocks > n/1024+1 {
		nblocks = n/1024 + 1
	}
	blockSize := (n + nblocks - 1) / nblocks
	partial := make([]scanResult, nblocks)
	parlay.For(nblocks, 1, func(blk int) {
		r := fresh()
		lo, hi := blk*blockSize, (blk+1)*blockSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			p := pts.At(int(idx[i]))
			d := b.SqDistTo(p)
			if d <= b.SqRadius*(1+containsEps) {
				continue
			}
			o := 0
			for c := 0; c < bits; c++ {
				if p[c] >= b.Center[c] {
					o |= 1 << c
				}
			}
			if r.ids[o] < 0 || d > r.dists[o] {
				r.ids[o] = idx[i]
				r.dists[o] = d
			}
		}
		partial[blk] = r
	})
	acc := fresh()
	for _, r := range partial {
		if r.ids != nil {
			acc = merge(acc, r)
		}
	}
	return acc
}

// boundarySupport returns the candidate points lying (numerically) on the
// ball boundary — the support carried into the next iteration.
func boundarySupport(pts geom.Points, b *Ball, candidates []int32) []int32 {
	var out []int32
	for _, c := range candidates {
		d := b.SqDistTo(pts.At(int(c)))
		if math.Abs(d-b.SqRadius) <= b.SqRadius*1e-9 {
			out = append(out, c)
		}
	}
	if len(out) == 0 && len(candidates) > 0 {
		out = candidates[:1]
	}
	return out
}

// constructBall recomputes the exact smallest ball of a small candidate set
// (support ∪ extrema), per Fig. 6's constructBall.
func constructBall(pts geom.Points, candidates []int32) Ball {
	return sebOfSmall(pts, candidates)
}

// maxScanIterations bounds the orthant-scan loop; on the paper's inputs the
// loop converges in a handful of iterations, and the bound only guards
// against floating-point livelock (the fallback recomputes exactly with
// Welzl).
const maxScanIterations = 200

// initialBall seeds the iteration: the ball over the two points spanning
// the widest distance from the first point (a cheap diameter estimate).
func initialBall(pts geom.Points, idx []int32) (Ball, []int32) {
	p0 := idx[0]
	fi := parlay.MaxIndexFloat(len(idx), 0, func(i int) float64 {
		return pts.SqDist(int(p0), int(idx[i]))
	})
	p1 := idx[fi]
	support := []int32{p0, p1}
	b, ok := ballOf(pts, support)
	if !ok { // identical points
		b, _ = ballOf(pts, support[:1])
		support = support[:1]
	}
	return b, support
}

// scanLoop runs orthant-scan iterations over idx until no outliers remain,
// returning the exact ball (falling back to Welzl if progress stalls).
func scanLoop(pts geom.Points, idx []int32, b Ball, support []int32) Ball {
	for iter := 0; iter < maxScanIterations; iter++ {
		res := orthantScanPass(pts, idx, &b)
		if !res.hasOutlier() {
			return b // enclosing and equal to SEB of its support: optimal
		}
		cand := append([]int32(nil), support...)
		for _, id := range res.ids {
			if id >= 0 {
				cand = append(cand, id)
			}
		}
		nb := constructBall(pts, cand)
		if nb.SqRadius <= b.SqRadius*(1+1e-14) && iter > 0 {
			// No radius progress: floating-point stall. Fall back to the
			// exact parallel Welzl for a guaranteed answer.
			sub := pts.Gather(idx)
			return Welzl(sub, 0xfa11bac, Heuristics{MTF: true})
		}
		b = nb
		support = boundarySupport(pts, &b, cand)
	}
	sub := pts.Gather(idx)
	return Welzl(sub, 0xfa11bac, Heuristics{MTF: true})
}

// OrthantScan computes the smallest enclosing ball with Larsson et al.'s
// parallel iterative orthant scan ("Scan" in Fig. 10).
func OrthantScan(pts geom.Points) Ball {
	n := pts.Len()
	if n == 0 {
		return Ball{Dim: pts.Dim}
	}
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	b, support := initialBall(pts, idx)
	return scanLoop(pts, idx, b, support)
}

// SampleSegment is the constant sample-segment size of the sampling phase
// (Fig. 6's batch size c).
const SampleSegment = 4096

// Sampling computes the smallest enclosing ball with the paper's
// sampling-based algorithm (Fig. 6): bootstrap the support set from
// constant-size random samples until a sample arrives with no outliers,
// then finish with full orthant scans.
func Sampling(pts geom.Points, seed uint64) Ball {
	b, _ := SamplingStats(pts, seed)
	return b
}

// SamplingStats additionally reports the fraction of the input scanned
// during the sampling phase (§6.2 reports ~5% on average).
func SamplingStats(pts geom.Points, seed uint64) (Ball, float64) {
	n := pts.Len()
	if n == 0 {
		return Ball{Dim: pts.Dim}, 0
	}
	perm := parlay.RandomPermutation(n, seed)
	b, support := initialBall(pts, perm[:min(n, 64)])
	// Sampling phase: scan one unseen constant-size segment at a time
	// (equivalent to a random sample); stop when a sample has no outliers.
	scanned := 0
	for scanned < n {
		hi := scanned + SampleSegment
		if hi > n {
			hi = n
		}
		seg := perm[scanned:hi]
		scanned = hi
		res := orthantScanPass(pts, seg, &b)
		if !res.hasOutlier() {
			break // the current ball already covers a fresh random sample
		}
		cand := append([]int32(nil), support...)
		for _, id := range res.ids {
			if id >= 0 {
				cand = append(cand, id)
			}
		}
		b = constructBall(pts, cand)
		support = boundarySupport(pts, &b, cand)
	}
	frac := float64(scanned) / float64(n)
	// Final phase: full orthant scans until exact.
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	return scanLoop(pts, idx, b, support), frac
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
