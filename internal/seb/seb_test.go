package seb

import (
	"math"
	"testing"
	"testing/quick"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// bruteSEB is an O(n^4)-ish oracle: try all support sets of size 2 and 3
// (and 4 in 3D) and return the smallest ball containing everything.
func bruteSEB(pts geom.Points) Ball {
	n := pts.Len()
	best := Ball{Dim: pts.Dim, SqRadius: math.Inf(1)}
	try := func(support []int32) {
		b, ok := ballOf(pts, support)
		if !ok || b.SqRadius >= best.SqRadius {
			return
		}
		for i := 0; i < n; i++ {
			if !b.Contains(pts.At(i)) {
				return
			}
		}
		best = b
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			try([]int32{int32(i), int32(j)})
			for k := j + 1; k < n; k++ {
				try([]int32{int32(i), int32(j), int32(k)})
				if pts.Dim >= 3 {
					for l := k + 1; l < n; l++ {
						try([]int32{int32(i), int32(j), int32(k), int32(l)})
					}
				}
			}
		}
	}
	if n == 1 {
		try([]int32{0})
	}
	return best
}

var sebAlgos = []struct {
	name string
	f    func(pts geom.Points) Ball
}{
	{"WelzlSequential", func(p geom.Points) Ball { return WelzlSequential(p, 1, Heuristics{}) }},
	{"WelzlSeqMtf", func(p geom.Points) Ball { return WelzlSequential(p, 2, Heuristics{MTF: true}) }},
	{"WelzlSeqMtfPivot", func(p geom.Points) Ball { return WelzlSequential(p, 3, Heuristics{MTF: true, Pivot: true}) }},
	{"Welzl", func(p geom.Points) Ball { return Welzl(p, 4, Heuristics{}) }},
	{"WelzlMtf", func(p geom.Points) Ball { return Welzl(p, 5, Heuristics{MTF: true}) }},
	{"WelzlMtfPivot", func(p geom.Points) Ball { return Welzl(p, 6, Heuristics{MTF: true, Pivot: true}) }},
	{"OrthantScan", OrthantScan},
	{"Sampling", func(p geom.Points) Ball { return Sampling(p, 7) }},
}

func checkEnclosing(t *testing.T, pts geom.Points, b Ball, label string) {
	t.Helper()
	for i := 0; i < pts.Len(); i++ {
		d := b.SqDistTo(pts.At(i))
		if d > b.SqRadius*(1+1e-9) {
			t.Fatalf("%s: point %d outside ball (d²=%g r²=%g)", label, i, d, b.SqRadius)
		}
	}
}

func TestSEBMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, n := range []int{1, 2, 3, 5, 10, 25} {
			pts := generators.UniformCube(n, dim, uint64(n*dim)+9)
			want := bruteSEB(pts)
			for _, alg := range sebAlgos {
				got := alg.f(pts)
				checkEnclosing(t, pts, got, alg.name)
				if relDiff(got.SqRadius, want.SqRadius) > 1e-7 {
					t.Fatalf("%s (d=%d n=%d): r²=%.12g want %.12g",
						alg.name, dim, n, got.SqRadius, want.SqRadius)
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestSEBAgreementLarge(t *testing.T) {
	cases := []struct {
		name string
		pts  geom.Points
	}{
		{"2d-uniform", generators.UniformCube(20000, 2, 1)},
		{"2d-onsphere", generators.OnSphere(20000, 2, 2)},
		{"3d-insphere", generators.InSphere(20000, 3, 3)},
		{"5d-uniform", generators.UniformCube(20000, 5, 4)},
	}
	for _, tc := range cases {
		ref := sebAlgos[0].f(tc.pts)
		checkEnclosing(t, tc.pts, ref, tc.name+"/ref")
		for _, alg := range sebAlgos[1:] {
			got := alg.f(tc.pts)
			checkEnclosing(t, tc.pts, got, tc.name+"/"+alg.name)
			if relDiff(got.SqRadius, ref.SqRadius) > 1e-7 {
				t.Fatalf("%s/%s: r²=%.12g want %.12g", tc.name, alg.name, got.SqRadius, ref.SqRadius)
			}
		}
	}
}

func TestSEBKnownAnswer(t *testing.T) {
	// Four corners of a unit square: SEB centered at (0.5, 0.5), r² = 0.5.
	pts := geom.Points{Dim: 2, Data: []float64{0, 0, 1, 0, 0, 1, 1, 1}}
	for _, alg := range sebAlgos {
		b := alg.f(pts)
		if relDiff(b.SqRadius, 0.5) > 1e-12 {
			t.Fatalf("%s: square r² = %g, want 0.5", alg.name, b.SqRadius)
		}
		if math.Abs(b.Center[0]-0.5) > 1e-9 || math.Abs(b.Center[1]-0.5) > 1e-9 {
			t.Fatalf("%s: square center %v", alg.name, b.Center[:2])
		}
	}
	// Two points: diameter ball.
	p2 := geom.Points{Dim: 3, Data: []float64{0, 0, 0, 2, 0, 0}}
	for _, alg := range sebAlgos {
		b := alg.f(p2)
		if relDiff(b.SqRadius, 1) > 1e-12 {
			t.Fatalf("%s: two-point r² = %g, want 1", alg.name, b.SqRadius)
		}
	}
}

func TestSEBDegenerate(t *testing.T) {
	// All identical points: radius 0.
	n := 100
	pts := geom.NewPoints(n, 3)
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{3, 4, 5})
	}
	for _, alg := range sebAlgos {
		b := alg.f(pts)
		if b.SqRadius > 1e-18 {
			t.Fatalf("%s: identical points r² = %g", alg.name, b.SqRadius)
		}
	}
	// Empty input must not panic.
	for _, alg := range sebAlgos {
		_ = alg.f(geom.NewPoints(0, 2))
	}
	// Collinear points.
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{float64(i), float64(i), float64(i)})
	}
	want := 3.0 * float64(n-1) * float64(n-1) / 4
	for _, alg := range sebAlgos {
		b := alg.f(pts)
		checkEnclosing(t, pts, b, alg.name)
		if relDiff(b.SqRadius, want) > 1e-9 {
			t.Fatalf("%s: collinear r² = %g, want %g", alg.name, b.SqRadius, want)
		}
	}
}

func TestSEBProperty(t *testing.T) {
	// Property: on random small inputs, all algorithms agree with the
	// sequential Welzl reference and enclose every point.
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		n := len(raw) / 2
		if n > 60 {
			n = 60
		}
		pts := geom.NewPoints(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, []float64{raw[2*i], raw[2*i+1]})
		}
		for i := range pts.Data {
			if math.IsNaN(pts.Data[i]) || math.IsInf(pts.Data[i], 0) {
				return true
			}
			// Bound coordinates to keep the test numerically meaningful.
			pts.Data[i] = math.Mod(pts.Data[i], 1e6)
		}
		ref := WelzlSequential(pts, 1, Heuristics{})
		for _, alg := range sebAlgos[1:] {
			got := alg.f(pts)
			if relDiff(got.SqRadius, ref.SqRadius) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingScansFraction(t *testing.T) {
	pts := generators.UniformCube(200000, 3, 11)
	_, frac := SamplingStats(pts, 3)
	if frac <= 0 || frac > 1 {
		t.Fatalf("scan fraction out of range: %g", frac)
	}
	// §6.2: the sampling phase scans a small part of the input on uniform
	// data (paper: ~5% on average). Allow generous slack.
	if frac > 0.6 {
		t.Fatalf("sampling phase scanned %.0f%% of input", 100*frac)
	}
}

func TestBallOfSupports(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{0, 0, 2, 0, 1, 1}}
	// One point: zero ball.
	b, ok := ballOf(pts, []int32{0})
	if !ok || b.SqRadius != 0 {
		t.Fatalf("one-point ball: %+v ok=%v", b, ok)
	}
	// Two points: diameter.
	b, ok = ballOf(pts, []int32{0, 1})
	if !ok || relDiff(b.SqRadius, 1) > 1e-12 || b.Center[0] != 1 || b.Center[1] != 0 {
		t.Fatalf("two-point ball: %+v ok=%v", b, ok)
	}
	// Three points: circumcircle of (0,0),(2,0),(1,1) is centered (1,0), r=1.
	b, ok = ballOf(pts, []int32{0, 1, 2})
	if !ok || relDiff(b.SqRadius, 1) > 1e-12 || math.Abs(b.Center[0]-1) > 1e-12 || math.Abs(b.Center[1]) > 1e-12 {
		t.Fatalf("three-point ball: %+v ok=%v", b, ok)
	}
	// Degenerate: duplicate support points.
	dup := geom.Points{Dim: 2, Data: []float64{1, 1, 1, 1, 1, 1}}
	if _, ok := ballOf(dup, []int32{0, 1, 2}); ok {
		t.Fatal("degenerate support should not be ok")
	}
}
