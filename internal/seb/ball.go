// Package seb implements the paper's smallest-enclosing-ball suite (§4,
// Fig. 10):
//
//   - WelzlSequential — Welzl's classic randomized incremental algorithm
//     (the optimized sequential baseline, the role CGAL plays in Fig. 10),
//     with optional move-to-front and Gärtner pivoting heuristics;
//   - Welzl / WelzlMtf / WelzlMtfPivot — the first parallel implementation
//     of Welzl's algorithm (after Blelloch et al.): the earliest violator
//     in the remaining input is found with a parallel prefix-doubling
//     search, small prefixes are processed sequentially;
//   - OrthantScan — Larsson et al.'s iterative orthant scan, parallelized
//     over input blocks;
//   - Sampling — the paper's new sampling-based algorithm (Fig. 6), which
//     bootstraps the orthant scan with constant-size random samples so the
//     full input is scanned only a small number of times.
//
// The support-set algebra (smallest ball through <= d+1 boundary points) is
// geom.Circumball.
package seb

import (
	"math"

	"pargeo/internal/geom"
)

// MaxDim bounds the dimensionality (the paper evaluates d in {2, 3, 5, 7}).
const MaxDim = 8

// Ball is a d-dimensional ball. Center[:Dim] is valid.
type Ball struct {
	Center   [MaxDim]float64
	SqRadius float64
	Dim      int
}

// containsEps is the multiplicative slack used when testing containment:
// points within (1+eps)·r² are considered inside, which keeps the iterative
// algorithms from livelocking on floating-point noise at the boundary.
const containsEps = 1e-12

// Contains reports whether p lies in the (slightly inflated) ball.
func (b *Ball) Contains(p []float64) bool {
	return b.SqDistTo(p) <= b.SqRadius*(1+containsEps)+1e-300
}

// SqDistTo returns the squared distance from the center to p.
func (b *Ball) SqDistTo(p []float64) float64 {
	s := 0.0
	for c := 0; c < b.Dim; c++ {
		d := p[c] - b.Center[c]
		s += d * d
	}
	return s
}

// Radius returns the ball radius.
func (b *Ball) Radius() float64 { return math.Sqrt(b.SqRadius) }

// ballOf computes the smallest ball with all the given points on its
// boundary (the circumball within their affine hull). ok is false for
// degenerate (affinely dependent) support sets.
func ballOf(pts geom.Points, support []int32) (Ball, bool) {
	b := Ball{Dim: pts.Dim}
	if len(support) == 0 {
		return b, true
	}
	coords := make([][]float64, len(support))
	for i, s := range support {
		coords[i] = pts.At(int(s))
	}
	center := make([]float64, pts.Dim)
	sq, ok := geom.Circumball(coords, center)
	if !ok {
		return b, false
	}
	copy(b.Center[:pts.Dim], center)
	b.SqRadius = sq
	return b, true
}

// sebOfSmall computes the exact smallest enclosing ball of a small point
// subset (<= a few dozen points) with sequential Welzl over every
// permutation-free deterministic order; used as constructBall for the
// orthant-scan and sampling algorithms.
func sebOfSmall(pts geom.Points, idx []int32) Ball {
	work := append([]int32(nil), idx...)
	return welzlMtf(pts, work, nil)
}

// welzlMtf is the classic move-to-front Welzl recursion: compute the ball
// of the support, scan for a violator, recurse with the violator pinned to
// the support over the prefix before it, and move it to the front. The
// recursion depth is bounded by the support size (<= d+1), not n.
func welzlMtf(pts geom.Points, idx []int32, support []int32) Ball {
	b, ok := ballOf(pts, support)
	if !ok {
		// Degenerate support (duplicate/affinely dependent points): drop
		// the oldest support point; the minimal ball is unchanged because
		// the dependent point is already determined by the others.
		return welzlMtf(pts, idx, support[1:])
	}
	if len(support) == pts.Dim+1 {
		return b
	}
	for i := 0; i < len(idx); i++ {
		p := idx[i]
		if b.Contains(pts.At(int(p))) {
			continue
		}
		b = welzlMtf(pts, idx[:i], append(support, p))
		// Move-to-front: p will violate early in future scans.
		copy(idx[1:i+1], idx[:i])
		idx[0] = p
	}
	return b
}
