package seb

import (
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// Heuristics select the optional Welzl accelerations from §4.
type Heuristics struct {
	// MTF moves each violating point to the front of the working order so
	// it is rediscovered early in subsequent scans (Welzl's heuristic).
	MTF bool
	// Pivot replaces each violating point with the point furthest from the
	// current center before recursing (Gärtner's heuristic); the furthest
	// point is found with a parallel max-reduction in the parallel version.
	Pivot bool
}

// WelzlSequential computes the exact smallest enclosing ball with Welzl's
// randomized incremental algorithm, one point at a time — the sequential
// baseline of Fig. 10.
func WelzlSequential(pts geom.Points, seed uint64, h Heuristics) Ball {
	n := pts.Len()
	if n == 0 {
		return Ball{Dim: pts.Dim}
	}
	idx := parlay.RandomPermutation(n, seed)
	if h.Pivot {
		return welzlPivot(pts, idx, false)
	}
	return welzlLoop(pts, idx, nil, h, false)
}

// Welzl computes the exact smallest enclosing ball with the parallel
// version of Welzl's algorithm described by Blelloch et al. and §4:
// prefixes of exponentially increasing size are scanned in parallel for the
// earliest violating point; prefixes smaller than SequentialCutoff are
// processed sequentially (the paper uses 500000) since small prefixes have
// too little parallelism to amortize the primitives.
func Welzl(pts geom.Points, seed uint64, h Heuristics) Ball {
	n := pts.Len()
	if n == 0 {
		return Ball{Dim: pts.Dim}
	}
	idx := parlay.RandomPermutation(n, seed)
	if h.Pivot {
		return welzlPivot(pts, idx, true)
	}
	return welzlLoop(pts, idx, nil, h, true)
}

// SequentialCutoff is the prefix length below which the parallel Welzl
// algorithm degrades to the sequential scan (§4).
const SequentialCutoff = 500000

// welzlLoop is the shared driver. It runs the iterative restructuring of
// Welzl's recursion: scan for a violator of the current ball; on violation,
// recurse over the prefix before the violator with the violator pinned in
// the support set. parallel selects the prefix-doubling violator search.
func welzlLoop(pts geom.Points, idx []int32, support []int32, h Heuristics, parallel bool) Ball {
	b, ok := ballOf(pts, support)
	if !ok {
		return welzlLoop(pts, idx, support[1:], h, parallel)
	}
	if len(support) == pts.Dim+1 {
		return b
	}
	i := 0
	for i < len(idx) {
		// Find the first violator at or after i.
		var j int
		rest := idx[i:]
		if parallel && len(rest) > SequentialCutoff {
			j = parlay.FindFirst(len(rest), func(k int) bool {
				return !b.Contains(pts.At(int(rest[k])))
			})
		} else {
			j = -1
			for k, p := range rest {
				if !b.Contains(pts.At(int(p))) {
					j = k
					break
				}
			}
		}
		if j < 0 {
			return b
		}
		vi := i + j // absolute index of the violator
		p := idx[vi]
		b = welzlLoop(pts, idx[:vi], append(support, p), h, parallel)
		if h.MTF {
			copy(idx[1:vi+1], idx[:vi])
			idx[0] = p
			// The prefix content shifted but its set is unchanged; continue
			// scanning after the old violator position.
		}
		i = vi + 1
	}
	return b
}

// maxPivotIterations guards the pivot loop against floating-point stalls;
// the fallback recomputes exactly without pivoting.
const maxPivotIterations = 1000

// welzlPivot implements Gärtner's pivoting heuristic (§4): maintain the
// exact ball of a small support set; repeatedly find the point furthest
// from the current center (a parallel max-reduction in the parallel
// version), and if it violates the ball, recompute the exact ball of
// support ∪ {pivot} with the pivot pinned to the boundary. The radius
// strictly increases each iteration, and on termination the ball equals
// the smallest ball of its own support set while enclosing all points —
// which is exactly the smallest enclosing ball.
func welzlPivot(pts geom.Points, idx []int32, parallel bool) Ball {
	b, ok := ballOf(pts, idx[:1])
	if !ok {
		return Ball{Dim: pts.Dim}
	}
	support := []int32{idx[0]}
	for iter := 0; iter < maxPivotIterations; iter++ {
		var fi int
		if parallel && len(idx) > SequentialCutoff {
			fi = parlay.MaxIndexFloat(len(idx), 0, func(k int) float64 {
				return b.SqDistTo(pts.At(int(idx[k])))
			})
		} else {
			fi = 0
			bd := b.SqDistTo(pts.At(int(idx[0])))
			for k := 1; k < len(idx); k++ {
				if d := b.SqDistTo(pts.At(int(idx[k]))); d > bd {
					fi, bd = k, d
				}
			}
		}
		pivot := idx[fi]
		if b.Contains(pts.At(int(pivot))) {
			return b // furthest point inside: everything inside; optimal
		}
		cand := append([]int32(nil), support...)
		cand = append(cand, pivot)
		nb := welzlMtf(pts, cand, nil)
		if nb.SqRadius <= b.SqRadius*(1+1e-14) {
			// Stalled on floating-point noise: recompute exactly.
			return welzlLoop(pts, idx, nil, Heuristics{MTF: true}, parallel)
		}
		b = nb
		support = boundarySupport(pts, &b, cand)
	}
	return welzlLoop(pts, idx, nil, Heuristics{MTF: true}, parallel)
}
