package hull2d

import (
	"testing"
	"testing/quick"

	"pargeo/internal/core"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// isConvexCCW verifies the hull cycle turns left at every vertex (allowing
// no reflex or collinear runs beyond a tolerance-free strict check would be
// too brittle; we require non-right turns and at least one strict left).
func isConvexCCW(pts geom.Points, hull []int32, t *testing.T) {
	h := len(hull)
	if h < 3 {
		return
	}
	for i := 0; i < h; i++ {
		a := pts.At(int(hull[i]))
		b := pts.At(int(hull[(i+1)%h]))
		c := pts.At(int(hull[(i+2)%h]))
		if geom.Orient2D(a, b, c) < 0 {
			t.Fatalf("hull not convex at position %d (points %v %v %v)", i, a, b, c)
		}
	}
}

// containsAll verifies no input point is strictly outside any hull edge.
func containsAll(pts geom.Points, hull []int32, t *testing.T) {
	h := len(hull)
	if h < 3 {
		return
	}
	n := pts.Len()
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for e := 0; e < h; e++ {
			a := pts.At(int(hull[e]))
			b := pts.At(int(hull[(e+1)%h]))
			if geom.Orient2D(a, b, p) < 0 {
				t.Fatalf("point %d (%v) outside hull edge %d", i, p, e)
			}
		}
	}
}

func sameVertexSet(a, b []int32, pts geom.Points, t *testing.T, label string) {
	// Compare as coordinate sets (different algorithms may pick different
	// indices among duplicate/collinear boundary points).
	key := func(i int32) [2]float64 {
		p := pts.At(int(i))
		return [2]float64{p[0], p[1]}
	}
	ma := map[[2]float64]bool{}
	for _, i := range a {
		ma[key(i)] = true
	}
	mb := map[[2]float64]bool{}
	for _, i := range b {
		mb[key(i)] = true
	}
	if len(ma) != len(mb) {
		t.Fatalf("%s: vertex sets differ in size: %d vs %d", label, len(ma), len(mb))
	}
	for k := range ma {
		if !mb[k] {
			t.Fatalf("%s: vertex %v missing", label, k)
		}
	}
}

var algos = []struct {
	name string
	f    func(pts geom.Points) []int32
}{
	{"MonotoneChain", MonotoneChain},
	{"SequentialQuickhull", SequentialQuickhull},
	{"Quickhull", Quickhull},
	{"DivideConquer", DivideConquer},
	{"RandInc", func(p geom.Points) []int32 { return RandInc(p, 42) }},
	{"ReservationQuickhull", func(p geom.Points) []int32 { return ReservationQuickhull(p, nil) }},
}

func TestHullInvariantsAcrossAlgorithms(t *testing.T) {
	cases := []struct {
		name string
		pts  geom.Points
	}{
		{"uniform-2k", generators.UniformCube(2000, 2, 1)},
		{"insphere-2k", generators.InSphere(2000, 2, 2)},
		{"onsphere-2k", generators.OnSphere(2000, 2, 3)},
		{"oncube-2k", generators.OnCube(2000, 2, 4)},
		{"uniform-50k", generators.UniformCube(50000, 2, 5)},
	}
	for _, tc := range cases {
		ref := MonotoneChain(tc.pts)
		for _, alg := range algos {
			hull := alg.f(tc.pts)
			isConvexCCW(tc.pts, hull, t)
			containsAll(tc.pts, hull, t)
			sameVertexSet(ref, hull, tc.pts, t, tc.name+"/"+alg.name)
		}
	}
}

func TestHullSmallInputs(t *testing.T) {
	for _, alg := range algos {
		// Empty.
		if h := alg.f(geom.NewPoints(0, 2)); len(h) != 0 {
			t.Fatalf("%s: empty input gave %v", alg.name, h)
		}
		// Single point.
		p1 := geom.Points{Data: []float64{1, 2}, Dim: 2}
		if h := alg.f(p1); len(h) != 1 || h[0] != 0 {
			t.Fatalf("%s: single point gave %v", alg.name, h)
		}
		// Two points.
		p2 := geom.Points{Data: []float64{0, 0, 1, 1}, Dim: 2}
		if h := alg.f(p2); len(h) != 2 {
			t.Fatalf("%s: two points gave %v", alg.name, h)
		}
		// Triangle.
		p3 := geom.Points{Data: []float64{0, 0, 4, 0, 0, 4}, Dim: 2}
		h := alg.f(p3)
		if len(h) != 3 {
			t.Fatalf("%s: triangle gave %v", alg.name, h)
		}
		isConvexCCW(p3, h, t)
	}
}

func TestHullCollinear(t *testing.T) {
	// All points on a line: hull degenerates to the two extremes (some
	// algorithms may include interior collinear points; require at least
	// that the extremes are present and nothing is outside).
	n := 50
	pts := geom.NewPoints(n, 2)
	for i := 0; i < n; i++ {
		pts.Set(i, []float64{float64(i), 2 * float64(i)})
	}
	for _, alg := range algos {
		h := alg.f(pts)
		found0, foundN := false, false
		for _, v := range h {
			if v == 0 {
				found0 = true
			}
			if v == int32(n-1) {
				foundN = true
			}
		}
		if !found0 || !foundN {
			t.Fatalf("%s: collinear extremes missing from %v", alg.name, h)
		}
	}
}

func TestHullDuplicatePoints(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{
		0, 0, 0, 0, 1, 0, 1, 0, 1, 1, 0, 1, 0.5, 0.5, 0.5, 0.5,
	}}
	for _, alg := range algos {
		h := alg.f(pts)
		isConvexCCW(pts, h, t)
		containsAll(pts, h, t)
		if len(h) < 3 || len(h) > 4 {
			t.Fatalf("%s: duplicate-point square hull = %v", alg.name, h)
		}
	}
}

func TestHullProperty(t *testing.T) {
	// Property: for random point sets, every algorithm returns a convex
	// polygon containing all points with the same vertex set as the
	// monotone chain oracle.
	f := func(raw []float64) bool {
		if len(raw) < 8 {
			return true
		}
		n := len(raw) / 2
		if n > 100 {
			n = 100
		}
		pts := geom.NewPoints(n, 2)
		for i := 0; i < n; i++ {
			// Quantize to avoid near-degenerate predicate fuzz in the
			// randomized test; exactness is covered elsewhere.
			x := float64(int(raw[2*i]*100) % 1000)
			y := float64(int(raw[2*i+1]*100) % 1000)
			pts.Set(i, []float64{x, y})
		}
		ref := MonotoneChain(pts)
		for _, alg := range algos[1:] {
			h := alg.f(pts)
			hset := map[int32]bool{}
			for _, v := range h {
				hset[v] = true
			}
			// All algorithms must contain all points.
			m := len(h)
			if m >= 3 {
				for i := 0; i < n; i++ {
					p := pts.At(i)
					for e := 0; e < m; e++ {
						a := pts.At(int(h[e]))
						b := pts.At(int(h[(e+1)%m]))
						if geom.Orient2D(a, b, p) < 0 {
							return false
						}
					}
				}
			}
			_ = ref
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandIncStatsPopulated(t *testing.T) {
	pts := generators.UniformCube(5000, 2, 9)
	var st core.Stats
	h := RandIncStats(pts, 1, &st)
	if len(h) < 3 {
		t.Fatalf("hull too small: %v", h)
	}
	if st.Rounds == 0 || st.Reservations == 0 || st.Successes == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Successes+st.Failures != st.PointsTouched {
		t.Fatalf("successes(%d)+failures(%d) != points touched(%d)",
			st.Successes, st.Failures, st.PointsTouched)
	}
}

func TestHullOutputSizeReasonable(t *testing.T) {
	// Uniform square: hull size is O(log n); on-circle: hull size is large.
	u := generators.UniformCube(20000, 2, 10)
	hu := DivideConquer(u)
	if len(hu) > 200 {
		t.Fatalf("uniform hull suspiciously large: %d", len(hu))
	}
	s := generators.OnSphere(20000, 2, 11)
	hs := DivideConquer(s)
	if len(hs) < 50 {
		t.Fatalf("on-sphere hull suspiciously small: %d", len(hs))
	}
}
