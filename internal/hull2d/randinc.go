package hull2d

import (
	"pargeo/internal/core"
	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// This file implements the paper's reservation-based parallel incremental
// convex hull (§3, Fig. 5) specialized to R², where facets are directed
// hull edges and the horizon of a visible point is the pair of vertices
// bounding its contiguous chain of visible edges.
//
// Each round:
//
//	1. select a batch Q of visible points (a prefix of the random
//	   permutation for RandInc; the furthest point per facet for the
//	   quickhull flavor);
//	2. every q in Q walks its chain of visible edges (from the one visible
//	   edge stored with q — the paper's "store one arbitrary visible facet
//	   per point and BFS when needed") and reserves each edge by WriteMin
//	   of q's priority;
//	3. q succeeds if it still holds all its reservations;
//	4. winners replace their chains with two new edges through q and
//	   redistribute the points stored on the dead edges onto the new ones
//	   (or drop them as interior);
//	5. the visible-point set is packed, and surviving reservations are
//	   released.
//
// Winners mutate disjoint edge sets, so the commit phase is lock-free; the
// only sequential step is re-linking the O(|Q|) boundary pointers between
// adjacent winners.

type edge2 struct {
	a, b       int32 // directed edge a->b; hull is CCW, outside is the right side
	next, prev int32
	pts        []int32 // visible points assigned to this edge
	dead       bool
}

const (
	seedInside int32 = -1 // point determined interior
	seedOnHull int32 = -2 // point became a hull vertex
)

type hullState2 struct {
	pts   geom.Points
	edges []edge2
	res   *core.Reservations
	seed  []int32 // per point: visible edge id, or seedInside/seedOnHull
	prio  []int64 // per point: reservation priority (smaller wins)
	alive []int32 // alive edge ids (maintained incrementally)
	stats *core.Stats
}

// visible reports whether point p is strictly outside edge e.
func (h *hullState2) visible(e *edge2, p int32) bool {
	return geom.Cross2D(h.pts.At(int(e.a)), h.pts.At(int(e.b)), h.pts.At(int(p))) < 0
}

// RandInc computes the hull with the reservation-based parallel randomized
// incremental algorithm.
func RandInc(pts geom.Points, seed uint64) []int32 {
	return RandIncStats(pts, seed, nil)
}

// RandIncStats is RandInc with optional instrumentation for the
// reservation-overhead experiment.
func RandIncStats(pts geom.Points, seedVal uint64, stats *core.Stats) []int32 {
	n := pts.Len()
	if n <= 3 {
		return MonotoneChain(pts)
	}
	h, ok := newHullState2(pts, stats)
	if !ok {
		return MonotoneChain(pts) // degenerate input (collinear)
	}
	// Random priorities via a random permutation: prio[p] = position.
	perm := parlay.RandomPermutation(n, seedVal)
	parlay.For(n, 0, func(k int) { h.prio[perm[k]] = int64(k) })
	// P: visible points in priority order.
	P := parlay.Pack(perm, func(k int) bool { return h.seed[perm[k]] >= 0 })
	batch := core.BatchSize(8)
	for len(P) > 0 {
		q := P
		if len(q) > batch {
			q = P[:batch]
		}
		h.round(q)
		P = parlay.Pack(P, func(i int) bool { return h.seed[P[i]] >= 0 })
	}
	return h.extract()
}

// ReservationQuickhull computes the hull with the reservation-based
// quickhull flavor: each round processes, for up to c·numProc facets, the
// point furthest from that facet.
func ReservationQuickhull(pts geom.Points, stats *core.Stats) []int32 {
	n := pts.Len()
	if n <= 3 {
		return MonotoneChain(pts)
	}
	h, ok := newHullState2(pts, stats)
	if !ok {
		return MonotoneChain(pts)
	}
	// Priorities: point index (any fixed total order works).
	parlay.For(n, 0, func(i int) { h.prio[i] = int64(i) })
	batch := core.BatchSize(8)
	for {
		q := h.furthestBatch(batch)
		if len(q) == 0 {
			break
		}
		h.round(q)
	}
	return h.extract()
}

// newHullState2 builds the initial triangle and assigns every point to one
// visible edge. ok is false when the input is degenerate (all collinear).
func newHullState2(pts geom.Points, stats *core.Stats) (*hullState2, bool) {
	n := pts.Len()
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	lo, hi := extremeX(pts, idx)
	if lo == hi {
		return nil, false
	}
	pa, pb := pts.At(int(lo)), pts.At(int(hi))
	fi := parlay.MaxIndexFloat(n, 0, func(i int) float64 {
		c := geom.Cross2D(pa, pb, pts.At(i))
		if c < 0 {
			return -c
		}
		return c
	})
	far := int32(fi)
	if geom.Cross2D(pa, pb, pts.At(fi)) == 0 {
		return nil, false // everything collinear
	}
	// Orient the triangle CCW.
	v0, v1, v2 := lo, hi, far
	if geom.Cross2D(pts.At(int(v0)), pts.At(int(v1)), pts.At(int(v2))) < 0 {
		v1, v2 = v2, v1
	}
	h := &hullState2{
		pts:   pts,
		seed:  make([]int32, n),
		prio:  make([]int64, n),
		stats: stats,
	}
	h.edges = []edge2{
		{a: v0, b: v1, next: 1, prev: 2},
		{a: v1, b: v2, next: 2, prev: 0},
		{a: v2, b: v0, next: 0, prev: 1},
	}
	h.res = core.NewReservations(3)
	h.alive = []int32{0, 1, 2}
	h.stats.AddAlloc(3)
	// Assign every point to its first visible initial edge.
	parlay.For(n, 512, func(i int) {
		p := int32(i)
		if p == v0 || p == v1 || p == v2 {
			h.seed[i] = seedOnHull
			return
		}
		h.seed[i] = seedInside
		for e := int32(0); e < 3; e++ {
			if h.visible(&h.edges[e], p) {
				h.seed[i] = e
				break
			}
		}
	})
	// Build per-edge point lists (sequential over 3 edges, parallel inside
	// via pack).
	for e := int32(0); e < 3; e++ {
		e := e
		h.edges[e].pts = parlay.Pack(idx, func(i int) bool { return h.seed[i] == e })
	}
	return h, true
}

// furthestBatch returns, for up to r alive edges with assigned points, the
// point furthest outside that edge. Edges with the most points go first so
// rounds prune aggressively.
func (h *hullState2) furthestBatch(r int) []int32 {
	nonEmpty := parlay.Pack(h.alive, func(i int) bool { return len(h.edges[h.alive[i]].pts) > 0 })
	if len(nonEmpty) == 0 {
		return nil
	}
	if len(nonEmpty) > r {
		parlay.Sort(nonEmpty, func(x, y int32) bool {
			lx, ly := len(h.edges[x].pts), len(h.edges[y].pts)
			if lx != ly {
				return lx > ly
			}
			return x < y
		})
		nonEmpty = nonEmpty[:r]
	}
	out := make([]int32, len(nonEmpty))
	parlay.For(len(nonEmpty), 4, func(k int) {
		e := &h.edges[nonEmpty[k]]
		pa, pb := h.pts.At(int(e.a)), h.pts.At(int(e.b))
		best, bestD := e.pts[0], 0.0
		for _, p := range e.pts {
			if d := -geom.Cross2D(pa, pb, h.pts.At(int(p))); d > bestD || (d == bestD && p < best) {
				best, bestD = p, d
			}
		}
		out[k] = best
	})
	return out
}

// chainOf walks from q's seed edge in both directions, collecting the
// maximal contiguous run of edges visible to q, plus the two non-visible
// boundary edges on either side of the horizon. The boundary edges are
// reserved too: adding q rewires their linked-list pointers, so two points
// whose horizons touch must not commit in the same round (otherwise an old
// vertex between them could survive as a reflex vertex). Reserving the
// boundary serializes exactly those adjacent insertions while keeping
// points with disjoint neighborhoods fully parallel.
func (h *hullState2) chainOf(q int32) (chain []int32, outerPrev, outerNext int32) {
	start := h.seed[q]
	chain = []int32{start}
	guard := len(h.alive) + 4
	e := h.edges[start].prev
	for ; e != start && h.visible(&h.edges[e], q); e = h.edges[e].prev {
		chain = append(chain, 0)
		copy(chain[1:], chain)
		chain[0] = e
		if guard--; guard < 0 {
			break
		}
	}
	outerPrev = e
	guard = len(h.alive) + 4
	e = h.edges[start].next
	for ; e != chain[0] && h.visible(&h.edges[e], q); e = h.edges[e].next {
		chain = append(chain, e)
		if guard--; guard < 0 {
			break
		}
	}
	outerNext = e
	return chain, outerPrev, outerNext
}

type winner2 struct {
	q                    int32
	chain                []int32
	newE1, newE2         int32
	outerPrev, outerNext int32
}

// round executes one reserve/check/commit round for batch q.
func (h *hullState2) round(batch []int32) {
	h.stats.AddRound()
	h.stats.AddPoints(int64(len(batch)))
	chains := make([][]int32, len(batch))
	bounds := make([][2]int32, len(batch))
	// Phase 1: reservation (visible chain + horizon boundary).
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		ch, op, on := h.chainOf(q)
		chains[k] = ch
		bounds[k] = [2]int32{op, on}
		h.stats.AddFacets(int64(len(ch)))
		h.stats.AddReservations(int64(len(ch)) + 2)
		for _, e := range ch {
			h.res.Reserve(int(e), h.prio[q])
		}
		h.res.Reserve(int(op), h.prio[q])
		h.res.Reserve(int(on), h.prio[q])
	})
	// Phase 2: check.
	success := make([]bool, len(batch))
	parlay.For(len(batch), 1, func(k int) {
		q := batch[k]
		ok := h.res.Holds(int(bounds[k][0]), h.prio[q]) &&
			h.res.Holds(int(bounds[k][1]), h.prio[q])
		if ok {
			for _, e := range chains[k] {
				if !h.res.Holds(int(e), h.prio[q]) {
					ok = false
					break
				}
			}
		}
		success[k] = ok
		if ok {
			h.stats.AddSuccess()
		} else {
			h.stats.AddFailure()
		}
	})
	// Phase 3: commit winners. Allocate 2 new edges per winner.
	winnerIdx := parlay.PackIndex(len(batch), func(k int) bool { return success[k] })
	if len(winnerIdx) == 0 {
		// Cannot happen: the smallest priority in the batch wins all of its
		// writes. Defensive: release and return.
		h.releaseChains(chains, bounds)
		return
	}
	base := int32(len(h.edges))
	h.edges = append(h.edges, make([]edge2, 2*len(winnerIdx))...)
	h.res.Grow(len(h.edges))
	h.stats.AddAlloc(int64(2 * len(winnerIdx)))
	winners := make([]winner2, len(winnerIdx))
	parlay.For(len(winnerIdx), 1, func(w int) {
		k := int(winnerIdx[w])
		q := batch[k]
		ch := chains[k]
		first, last := &h.edges[ch[0]], &h.edges[ch[len(ch)-1]]
		e1, e2 := base+int32(2*w), base+int32(2*w)+1
		h.edges[e1] = edge2{a: first.a, b: q, next: e2}
		h.edges[e2] = edge2{a: q, b: last.b, prev: e1}
		winners[w] = winner2{q: q, chain: ch, newE1: e1, newE2: e2,
			outerPrev: first.prev, outerNext: last.next}
		h.seed[q] = seedOnHull
		// Kill the chain and redistribute its points.
		var gathered []int32
		for _, e := range ch {
			h.edges[e].dead = true
			gathered = append(gathered, h.edges[e].pts...)
			h.edges[e].pts = nil
		}
		h.stats.AddKilled(int64(len(ch)))
		ne1, ne2 := &h.edges[e1], &h.edges[e2]
		for _, p := range gathered {
			if p == q {
				continue
			}
			switch {
			case h.visible(ne1, p):
				h.seed[p] = e1
				ne1.pts = append(ne1.pts, p)
			case h.visible(ne2, p):
				h.seed[p] = e2
				ne2.pts = append(ne2.pts, p)
			default:
				h.seed[p] = seedInside
			}
		}
	})
	// Sequential boundary re-linking between winners and surviving edges.
	// endAt[v]: the new edge ending at vertex v.
	endAt := make(map[int32]int32, len(winners))
	startAt := make(map[int32]int32, len(winners))
	for _, w := range winners {
		endAt[h.edges[w.newE2].b] = w.newE2
		startAt[h.edges[w.newE1].a] = w.newE1
	}
	for _, w := range winners {
		if !h.edges[w.outerPrev].dead {
			h.edges[w.outerPrev].next = w.newE1
			h.edges[w.newE1].prev = w.outerPrev
		} else {
			b := endAt[h.edges[w.newE1].a]
			h.edges[b].next = w.newE1
			h.edges[w.newE1].prev = b
		}
		if !h.edges[w.outerNext].dead {
			h.edges[w.outerNext].prev = w.newE2
			h.edges[w.newE2].next = w.outerNext
		} else {
			b := startAt[h.edges[w.newE2].b]
			h.edges[b].prev = w.newE2
			h.edges[w.newE2].next = b
		}
	}
	// Release surviving reservations, then refresh the alive list.
	h.releaseChains(chains, bounds)
	newAlive := make([]int32, 0, 2*len(winners))
	for _, w := range winners {
		newAlive = append(newAlive, w.newE1, w.newE2)
	}
	h.alive = append(parlay.Pack(h.alive, func(i int) bool { return !h.edges[h.alive[i]].dead }), newAlive...)
}

func (h *hullState2) releaseChains(chains [][]int32, bounds [][2]int32) {
	parlay.For(len(chains), 1, func(k int) {
		for _, e := range chains[k] {
			if !h.edges[e].dead {
				h.res.Release(int(e))
			}
		}
		for _, e := range bounds[k] {
			if !h.edges[e].dead {
				h.res.Release(int(e))
			}
		}
	})
}

// extract walks the linked hull and returns the CCW vertex cycle.
func (h *hullState2) extract() []int32 {
	if len(h.alive) == 0 {
		return nil
	}
	start := h.alive[0]
	out := []int32{h.edges[start].a}
	for e := h.edges[start].next; e != start; e = h.edges[e].next {
		out = append(out, h.edges[e].a)
	}
	return canonical(out, h.pts)
}
