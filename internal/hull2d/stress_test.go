package hull2d

import (
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// TestReservationStress exercises the reservation-based algorithms across
// many seeds and data shapes, comparing hull vertex sets against the
// monotone-chain oracle. This is the safety net for the concurrency-
// critical code path (reservation, boundary relinking, redistribution).
func TestReservationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	shapes := []func(n int, seed uint64) geom.Points{
		func(n int, s uint64) geom.Points { return generators.UniformCube(n, 2, s) },
		func(n int, s uint64) geom.Points { return generators.OnSphere(n, 2, s) },
		func(n int, s uint64) geom.Points { return generators.SeedSpreader(n, 2, s) },
		func(n int, s uint64) geom.Points { return generators.VisualVar(n, s) },
	}
	for shapeID, shape := range shapes {
		for seed := uint64(0); seed < 6; seed++ {
			pts := shape(3000, seed*7+1)
			ref := MonotoneChain(pts)
			ri := RandInc(pts, seed)
			rq := ReservationQuickhull(pts, nil)
			sameVertexSet(ref, ri, pts, t, "randinc")
			sameVertexSet(ref, rq, pts, t, "resquickhull")
			isConvexCCW(pts, ri, t)
			isConvexCCW(pts, rq, t)
			_ = shapeID
		}
	}
}

// TestQuantizedGridHull: heavy coordinate duplication and collinearity
// (every point on an integer grid).
func TestQuantizedGridHull(t *testing.T) {
	pts := geom.NewPoints(900, 2)
	k := 0
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			pts.Set(k, []float64{float64(i), float64(j)})
			k++
		}
	}
	ref := MonotoneChain(pts)
	if len(ref) != 4 {
		t.Fatalf("strict grid hull should be the 4 corners, got %d", len(ref))
	}
	for _, alg := range algos[1:] {
		h := alg.f(pts)
		isConvexCCW(pts, h, t)
		containsAll(pts, h, t)
		// The reservation/quickhull variants may keep collinear boundary
		// points; corners must be present regardless.
		corners := map[[2]float64]bool{{0, 0}: false, {29, 0}: false, {0, 29}: false, {29, 29}: false}
		for _, v := range h {
			p := pts.At(int(v))
			key := [2]float64{p[0], p[1]}
			if _, ok := corners[key]; ok {
				corners[key] = true
			}
		}
		for c, seen := range corners {
			if !seen {
				t.Fatalf("%s: corner %v missing", alg.name, c)
			}
		}
	}
}
