// Package hull2d implements the paper's 2-dimensional convex hull suite
// (§3, Fig. 8):
//
//   - MonotoneChain — optimized sequential baseline (the role CGAL's
//     sequential hull plays in the paper's comparison)
//   - SequentialQuickhull — optimized sequential quickhull (the "Qhull"
//     baseline)
//   - Quickhull — parallel recursive quickhull (PBBS-style: parallel
//     filter + parallel furthest point per subproblem)
//   - RandInc — the paper's reservation-based parallel randomized
//     incremental algorithm, specialized to R² (facets are hull edges)
//   - DivideConquer — the paper's practical divide-and-conquer driver:
//     split into c·numProc blocks, sequential quickhull per block in
//     parallel, then a parallel hull of the union of block-hull vertices
//
// All entry points return the hull as point indices in counterclockwise
// order starting from the lexicographically smallest vertex.
package hull2d

import (
	"sort"

	"pargeo/internal/geom"
	"pargeo/internal/parlay"
)

// MonotoneChain computes the hull with Andrew's monotone chain in
// O(n log n): the optimized sequential baseline.
func MonotoneChain(pts geom.Points) []int32 {
	n := pts.Len()
	if n == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts.At(int(idx[a])), pts.At(int(idx[b]))
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	// Deduplicate identical points (hulls of multisets).
	uniq := idx[:1]
	for _, i := range idx[1:] {
		last := pts.At(int(uniq[len(uniq)-1]))
		p := pts.At(int(i))
		if p[0] != last[0] || p[1] != last[1] {
			uniq = append(uniq, i)
		}
	}
	idx = uniq
	n = len(idx)
	if n <= 2 {
		return append([]int32(nil), idx...)
	}
	hull := make([]int32, 0, 2*n)
	// Lower chain.
	for _, i := range idx {
		for len(hull) >= 2 &&
			geom.Cross2D(pts.At(int(hull[len(hull)-2])), pts.At(int(hull[len(hull)-1])), pts.At(int(i))) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	// Upper chain.
	lower := len(hull) + 1
	for k := n - 2; k >= 0; k-- {
		i := idx[k]
		for len(hull) >= lower &&
			geom.Cross2D(pts.At(int(hull[len(hull)-2])), pts.At(int(hull[len(hull)-1])), pts.At(int(i))) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	return canonical(hull[:len(hull)-1], pts)
}

// canonical rotates a CCW vertex cycle to start at the lexicographically
// smallest vertex, so all algorithms produce comparable output.
func canonical(h []int32, pts geom.Points) []int32 {
	if len(h) == 0 {
		return h
	}
	best := 0
	for i := 1; i < len(h); i++ {
		a, b := pts.At(int(h[i])), pts.At(int(h[best]))
		if a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]) {
			best = i
		}
	}
	out := make([]int32, 0, len(h))
	out = append(out, h[best:]...)
	out = append(out, h[:best]...)
	return out
}

// extremeXSerial returns the indices of the points with minimum and maximum
// (x, y) lexicographic order.
func extremeXSerial(pts geom.Points, idx []int32) (lo, hi int32) {
	lo, hi = idx[0], idx[0]
	for _, i := range idx[1:] {
		p := pts.At(int(i))
		pl, ph := pts.At(int(lo)), pts.At(int(hi))
		if p[0] < pl[0] || (p[0] == pl[0] && p[1] < pl[1]) {
			lo = i
		}
		if p[0] > ph[0] || (p[0] == ph[0] && p[1] > ph[1]) {
			hi = i
		}
	}
	return lo, hi
}

// extremeX returns the lexicographic extremes with a parallel reduction.
func extremeX(pts geom.Points, idx []int32) (lo, hi int32) {
	type pair struct{ lo, hi int32 }
	lex := func(a, b int32) bool { // a < b
		pa, pb := pts.At(int(a)), pts.At(int(b))
		return pa[0] < pb[0] || (pa[0] == pb[0] && pa[1] < pb[1])
	}
	r := parlay.Reduce(len(idx), 0, pair{-1, -1},
		func(i int) pair { return pair{idx[i], idx[i]} },
		func(a, b pair) pair {
			if a.lo < 0 {
				return b
			}
			if b.lo < 0 {
				return a
			}
			if lex(b.lo, a.lo) {
				a.lo = b.lo
			}
			if lex(a.hi, b.hi) {
				a.hi = b.hi
			}
			return a
		})
	return r.lo, r.hi
}

// SequentialQuickhull computes the hull with the classic recursive
// quickhull, processing the point furthest from each edge first: the
// optimized sequential quickhull baseline ("Qhull" in Fig. 8).
func SequentialQuickhull(pts geom.Points) []int32 {
	n := pts.Len()
	if n == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	if n <= 2 {
		return canonical(dedupe(idx, pts), pts)
	}
	lo, hi := extremeXSerial(pts, idx)
	if lo == hi {
		return []int32{lo} // all points identical
	}
	var upper, lower []int32
	a, b := pts.At(int(lo)), pts.At(int(hi))
	for _, i := range idx {
		if i == lo || i == hi {
			continue
		}
		c := geom.Cross2D(a, b, pts.At(int(i)))
		if c > 0 {
			upper = append(upper, i)
		} else if c < 0 {
			lower = append(lower, i)
		}
	}
	hull := []int32{lo}
	seqHullRec(pts, lower, lo, hi, &hull) // right of lo->hi: lower chain (CCW)
	hull = append(hull, hi)
	seqHullRec(pts, upper, hi, lo, &hull)
	return canonical(hull, pts)
}

// seqHullRec appends the hull vertices strictly between a and b (CCW) given
// cand, the points strictly right of the directed line a->b... by
// convention here cand holds the points on the outside of edge a->b, i.e.
// with Cross2D(a, b, p) < 0 when walking the hull counterclockwise.
func seqHullRec(pts geom.Points, cand []int32, a, b int32, hull *[]int32) {
	if len(cand) == 0 {
		return
	}
	pa, pb := pts.At(int(a)), pts.At(int(b))
	// Furthest point from line a-b (most negative cross = farthest outside).
	far := cand[0]
	farD := geom.Cross2D(pa, pb, pts.At(int(far)))
	for _, i := range cand[1:] {
		if d := geom.Cross2D(pa, pb, pts.At(int(i))); d < farD {
			far, farD = i, d
		}
	}
	pf := pts.At(int(far))
	var left, right []int32
	for _, i := range cand {
		if i == far {
			continue
		}
		p := pts.At(int(i))
		if geom.Cross2D(pa, pf, p) < 0 {
			left = append(left, i)
		} else if geom.Cross2D(pf, pb, p) < 0 {
			right = append(right, i)
		}
	}
	seqHullRec(pts, left, a, far, hull)
	*hull = append(*hull, far)
	seqHullRec(pts, right, far, b, hull)
}

func dedupe(idx []int32, pts geom.Points) []int32 {
	if len(idx) <= 1 {
		return idx
	}
	out := idx[:0:0]
	for _, i := range idx {
		dup := false
		for _, j := range out {
			a, b := pts.At(int(i)), pts.At(int(j))
			if a[0] == b[0] && a[1] == b[1] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, i)
		}
	}
	return out
}

// Quickhull computes the hull with the parallel recursive quickhull used by
// PBBS (referenced as the R² "QuickHull" in §6.1): each recursive call
// finds the furthest point with a parallel max-reduction and partitions the
// candidates with parallel filters; sibling calls run in parallel.
func Quickhull(pts geom.Points) []int32 {
	n := pts.Len()
	if n == 0 {
		return nil
	}
	if n <= 4096 {
		return SequentialQuickhull(pts)
	}
	idx := make([]int32, n)
	parlay.For(n, 0, func(i int) { idx[i] = int32(i) })
	lo, hi := extremeX(pts, idx)
	if lo == hi {
		return []int32{lo}
	}
	pa, pb := pts.At(int(lo)), pts.At(int(hi))
	upper := parlay.Pack(idx, func(i int) bool {
		k := idx[i]
		return k != lo && k != hi && geom.Cross2D(pa, pb, pts.At(int(k))) > 0
	})
	lower := parlay.Pack(idx, func(i int) bool {
		k := idx[i]
		return k != lo && k != hi && geom.Cross2D(pa, pb, pts.At(int(k))) < 0
	})
	var lowHull, upHull []int32
	parlay.Do(
		func() { lowHull = parHullRec(pts, lower, lo, hi) },
		func() { upHull = parHullRec(pts, upper, hi, lo) },
	)
	hull := make([]int32, 0, len(lowHull)+len(upHull)+2)
	hull = append(hull, lo)
	hull = append(hull, lowHull...)
	hull = append(hull, hi)
	hull = append(hull, upHull...)
	return canonical(hull, pts)
}

const parHullSeqThreshold = 2048

// parHullRec returns the CCW hull vertices strictly between a and b, given
// cand = points outside edge a->b (Cross2D(a,b,p) < 0).
func parHullRec(pts geom.Points, cand []int32, a, b int32) []int32 {
	if len(cand) == 0 {
		return nil
	}
	if len(cand) <= parHullSeqThreshold {
		var out []int32
		seqHullRec(pts, cand, a, b, &out)
		return out
	}
	pa, pb := pts.At(int(a)), pts.At(int(b))
	fi := parlay.MinIndexFloat(len(cand), 0, func(i int) float64 {
		return geom.Cross2D(pa, pb, pts.At(int(cand[i])))
	})
	far := cand[fi]
	pf := pts.At(int(far))
	var left, right []int32
	parlay.Do(
		func() {
			left = parlay.Pack(cand, func(i int) bool {
				k := cand[i]
				return k != far && geom.Cross2D(pa, pf, pts.At(int(k))) < 0
			})
		},
		func() {
			right = parlay.Pack(cand, func(i int) bool {
				k := cand[i]
				return k != far && geom.Cross2D(pf, pb, pts.At(int(k))) < 0
			})
		},
	)
	var lh, rh []int32
	parlay.Do(
		func() { lh = parHullRec(pts, left, a, far) },
		func() { rh = parHullRec(pts, right, far, b) },
	)
	out := make([]int32, 0, len(lh)+len(rh)+1)
	out = append(out, lh...)
	out = append(out, far)
	out = append(out, rh...)
	return out
}

// DivideConquer computes the hull with the paper's divide-and-conquer
// strategy (§3 "Parallel Divide-and-Conquer"): partition the input into
// c·numProc equal blocks, compute each block's hull with the sequential
// quickhull (blocks in parallel), then compute the hull of the union of the
// block-hull vertices with the parallel algorithm.
func DivideConquer(pts geom.Points) []int32 {
	n := pts.Len()
	const c = 4
	numBlocks := c * parlay.NumWorkers()
	if n < 4096 || numBlocks < 2 {
		return SequentialQuickhull(pts)
	}
	blockSize := (n + numBlocks - 1) / numBlocks
	subHulls := make([][]int32, numBlocks)
	parlay.For(numBlocks, 1, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		sub := SequentialQuickhull(pts.Slice(lo, hi))
		for i := range sub {
			sub[i] += int32(lo) // back to global indices
		}
		subHulls[b] = sub
	})
	var union []int32
	for _, h := range subHulls {
		union = append(union, h...)
	}
	gathered := pts.Gather(union)
	// The paper computes the final hull of the block-hull vertices with the
	// reservation-based parallel algorithm.
	final := ReservationQuickhull(gathered, nil)
	out := make([]int32, len(final))
	for i, k := range final {
		out[i] = union[k]
	}
	return out
}
