package server

import (
	"sync/atomic"
	"time"

	"pargeo/internal/wire"
)

// Limits bounds the number of concurrently executing requests per class.
// Zero for a class means unlimited — the pre-admission behavior. A
// request arriving at a full class is shed immediately with
// StatusOverloaded and a retry hint; it never queues server-side, so an
// overloaded server's response time stays flat instead of growing with
// the backlog (the clients hold the queue, where it can be shed by
// deadlines the server cannot see).
type Limits struct {
	// Reads bounds in-flight KNN, RangeSearch, and RangeCount requests.
	Reads int
	// Writes bounds in-flight Update requests.
	Writes int
	// Control bounds in-flight Epoch, Checkpoint, and Stats requests.
	Control int
}

// Request classes. Hello is unclassed: the handshake is one tiny
// engine-free response per connection and must not be shed — a client
// that cannot even learn the dimension cannot back off intelligently.
const (
	classRead = iota
	classWrite
	classControl
	numClasses

	classNone = -1
)

// classOf maps a wire op to its admission class.
func classOf(op byte) int {
	switch op {
	case wire.OpKNN, wire.OpRange, wire.OpRangeCount:
		return classRead
	case wire.OpUpdate:
		return classWrite
	case wire.OpEpoch, wire.OpCheckpoint, wire.OpStats, wire.OpPin, wire.OpUnpin:
		return classControl
	default:
		return classNone
	}
}

var className = [numClasses]string{"reads", "writes", "control"}

// admission is the server's per-class load shedder: a fixed in-flight
// budget per class, counters for observability, and a service-time EWMA
// that prices the retry hint returned with each shed.
type admission struct {
	gates [numClasses]gate
}

type gate struct {
	limit    int64
	inflight atomic.Int64
	shed     atomic.Uint64
	// ewmaNanos tracks the class's smoothed service time (α = 1/8, the
	// RFC 6298 sRTT gain). Plain load/update/store: a lost update under a
	// race skews a hint, not an invariant.
	ewmaNanos atomic.Uint64
}

func (a *admission) init(lim Limits) {
	a.gates[classRead].limit = int64(lim.Reads)
	a.gates[classWrite].limit = int64(lim.Writes)
	a.gates[classControl].limit = int64(lim.Control)
}

// admit reserves an in-flight slot for class, or sheds. classNone always
// admits without reserving (release ignores it symmetrically).
func (a *admission) admit(class int) bool {
	if class == classNone {
		return true
	}
	g := &a.gates[class]
	if g.limit <= 0 {
		g.inflight.Add(1)
		return true
	}
	if g.inflight.Add(1) > g.limit {
		g.inflight.Add(-1)
		g.shed.Add(1)
		return false
	}
	return true
}

func (a *admission) release(class int) {
	if class == classNone {
		return
	}
	a.gates[class].inflight.Add(-1)
}

// observe folds one completed request's service time into its class EWMA.
func (a *admission) observe(class int, d time.Duration) {
	if class == classNone || d < 0 {
		return
	}
	g := &a.gates[class]
	old := g.ewmaNanos.Load()
	if old == 0 {
		g.ewmaNanos.Store(uint64(d))
		return
	}
	g.ewmaNanos.Store(old - old/8 + uint64(d)/8)
}

// retryAfterMillis prices a shed: roughly one smoothed service time — the
// expected wait for an in-flight slot to free — clamped to [1ms, 1s] so a
// cold EWMA still tells the client to pause and a pathological one cannot
// park it for minutes.
func (a *admission) retryAfterMillis(class int) uint32 {
	var ewma uint64
	if class != classNone {
		ewma = a.gates[class].ewmaNanos.Load()
	}
	ms := ewma / uint64(time.Millisecond)
	if ms < 1 {
		return 1
	}
	if ms > 1000 {
		return 1000
	}
	return uint32(ms)
}
