package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pargeo/internal/engine"
	"pargeo/internal/wire"
)

// Server serves one engine on one listener.
type Server struct {
	eng *engine.Engine
	ln  net.Listener
	dim int
	adm admission

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	connWG sync.WaitGroup // connection reader goroutines
	reqWG  sync.WaitGroup // in-flight request handlers

	accepted atomic.Uint64 // connections accepted
	requests atomic.Uint64 // requests answered (any status)
}

// New returns a server for eng on ln with no admission limits. Call
// Serve to start accepting.
func New(eng *engine.Engine, dim int, ln net.Listener) *Server {
	return NewWithLimits(eng, dim, ln, Limits{})
}

// NewWithLimits returns a server that sheds requests beyond the
// per-class in-flight budgets in lim (see Limits). Call Serve to start
// accepting.
func NewWithLimits(eng *engine.Engine, dim int, ln net.Listener, lim Limits) *Server {
	s := &Server{eng: eng, ln: ln, dim: dim, conns: map[net.Conn]struct{}{}}
	s.adm.init(lim)
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve runs the accept loop until the listener fails or Shutdown closes
// it. A Shutdown-induced exit returns nil.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.accepted.Add(1)
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains the server: no new connections or requests, every
// in-flight request finishes and its response is flushed, then the
// connections close. Safe to call more than once. The engine is left
// open — closing it is the caller's next step.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.connWG.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	// In-flight handlers first: each still holds its connection open and
	// must get its response out before the close below cuts the stream.
	s.reqWG.Wait()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// conn is one connection's shared write side: responses from concurrent
// request handlers interleave frame-atomically under wmu. It also owns the
// connection's pin table — snapshots pinned by OpPin and not yet released
// by OpUnpin. Pins are connection-scoped: the teardown in serveConn
// releases every survivor, so a crashed or careless client cannot leak
// retained versions past its own lifetime (and, the engine's pins being
// in-memory, no pin survives a server restart either).
type conn struct {
	c   net.Conn
	wmu sync.Mutex
	wg  sync.WaitGroup // this connection's in-flight handlers

	pmu  sync.Mutex
	pins map[uint64]*connPin
	dead bool // teardown ran; late pins release immediately
}

// connPin is one connection's hold on one epoch: the pinned snapshot and
// how many of the connection's OpPins are open against it (the engine
// refcounts per Pin call, so release fires once per count).
type connPin struct {
	snap  *engine.Snapshot
	count int
}

// pin records one successful engine pin of s for this connection. A pin
// landing after teardown (the handler raced the reader loop's exit) is
// released on the spot rather than leaked.
func (c *conn) pin(s *engine.Snapshot) {
	c.pmu.Lock()
	if c.dead {
		c.pmu.Unlock()
		s.Release()
		return
	}
	if c.pins == nil {
		c.pins = make(map[uint64]*connPin)
	}
	if p, ok := c.pins[s.Epoch()]; ok {
		p.count++
	} else {
		c.pins[s.Epoch()] = &connPin{snap: s, count: 1}
	}
	c.pmu.Unlock()
}

// unpin releases one of this connection's pins of epoch, reporting whether
// the connection actually held one.
func (c *conn) unpin(epoch uint64) bool {
	c.pmu.Lock()
	p, ok := c.pins[epoch]
	if ok {
		p.count--
		if p.count == 0 {
			delete(c.pins, epoch)
		}
	}
	c.pmu.Unlock()
	if ok {
		p.snap.Release()
	}
	return ok
}

// releaseAll drops every pin the connection still holds (teardown).
func (c *conn) releaseAll() {
	c.pmu.Lock()
	pins := c.pins
	c.pins = nil
	c.dead = true
	c.pmu.Unlock()
	for _, p := range pins {
		for i := 0; i < p.count; i++ {
			p.snap.Release()
		}
	}
}

func (c *conn) writeFrame(buf []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.c.Write(buf)
	return err
}

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{c: nc}
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
		// Pins are connection-scoped: whatever the client left pinned is
		// released with the connection, after its in-flight handlers have
		// had their chance to record theirs.
		c.wg.Wait()
		c.releaseAll()
	}()
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(nc, buf)
		if err != nil {
			// EOF, peer reset, Shutdown's close, or a hostile length
			// prefix: the stream is over either way. A corrupt frame
			// cannot be answered — the request id inside it is not
			// trustworthy — so the connection drops and the client's
			// pending calls fail with the broken stream.
			return
		}
		req, _, err := wire.DecodeRequest(buf, s.dim)
		if err != nil {
			return // unsynchronized stream: drop the connection
		}
		// Admission first: a shed is answered inline on the reader
		// goroutine — constant cost, no handler spawned, no engine touched
		// — and the connection keeps serving. Backpressure rejects
		// requests, never streams.
		class := classOf(req.Op)
		if !s.adm.admit(class) {
			resp := &wire.Response{
				Op: req.Op, ID: req.ID,
				Status:           wire.StatusOverloaded,
				RetryAfterMillis: s.adm.retryAfterMillis(class),
				ErrMsg:           "server: overloaded (" + className[class] + ")",
			}
			s.requests.Add(1)
			if c.writeFrame(wire.AppendResponse(nil, resp)) != nil {
				return
			}
			continue
		}
		// The drain gate: a request that enters reqWG before Shutdown's
		// reqWG.Wait() completes fully, response included; one arriving
		// after the gate closes is answered StatusClosed without touching
		// the engine (which may be mid-Close by then).
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.adm.release(class)
			resp := &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusClosed, ErrMsg: engine.ErrClosed.Error()}
			c.writeFrame(wire.AppendResponse(nil, resp)) //nolint:errcheck // connection is closing anyway
			return
		}
		s.reqWG.Add(1)
		c.wg.Add(1)
		s.mu.Unlock()
		go func(req wire.Request, class int) {
			defer s.reqWG.Done()
			defer c.wg.Done()
			// The slot is held through the response write: a slow-reading
			// client consumes its own budget, not fresh admissions.
			defer s.adm.release(class)
			start := time.Now()
			resp := s.handle(c, &req)
			s.adm.observe(class, time.Since(start))
			s.requests.Add(1)
			c.writeFrame(wire.AppendResponse(nil, resp)) //nolint:errcheck // peer gone: nothing to tell it
		}(req, class)
	}
}

// handle executes one decoded request against the engine. c is the
// request's connection, owner of any pins the request creates.
func (s *Server) handle(c *conn, req *wire.Request) *wire.Response {
	resp := &wire.Response{Op: req.Op, ID: req.ID}
	switch req.Op {
	case wire.OpHello:
		resp.Dim = int32(s.dim)
		resp.Shards = int32(s.eng.Shards())
	case wire.OpKNN:
		if req.K < 1 {
			return s.fail(resp, fmt.Errorf("k = %d: want k ≥ 1", req.K))
		}
		if req.AsOf != 0 {
			// Time-travel read: resolve the retained epoch and answer from
			// it directly — historical reads skip the combiner (grouping
			// only helps when everyone reads the same version).
			snap, err := s.eng.AsOf(req.AsOf)
			if err != nil {
				return s.fail(resp, err)
			}
			if req.Queries.Len() > 0 {
				resp.Neighbors = snap.KNN(req.Queries, int(req.K))
			}
			break
		}
		if n := req.Queries.Len(); n == 1 {
			// Solo queries ride the engine's combiner so concurrent
			// connections group into one pass.
			resp.Neighbors = [][]int32{s.eng.KNN(req.Queries.At(0), int(req.K))}
		} else if n > 1 {
			// A multi-query request is already a batch: one parallel
			// pass over the snapshot, no grouping detour.
			resp.Neighbors = s.eng.Snapshot().KNN(req.Queries, int(req.K))
		}
	case wire.OpRange:
		snap, err := s.asOfSnapshot(req)
		if err != nil {
			return s.fail(resp, err)
		}
		if snap != nil {
			resp.IDs = snap.RangeSearch(req.Box)
		} else {
			resp.IDs = s.eng.RangeSearch(req.Box)
		}
	case wire.OpRangeCount:
		snap, err := s.asOfSnapshot(req)
		if err != nil {
			return s.fail(resp, err)
		}
		if snap != nil {
			resp.Count = uint64(snap.RangeCount(req.Box))
		} else {
			resp.Count = uint64(s.eng.RangeCount(req.Box))
		}
	case wire.OpUpdate:
		res := s.eng.Update(req.Ins, req.Del)
		if res.Err != nil {
			return s.fail(resp, res.Err)
		}
		resp.IDs = res.IDs
		resp.Deleted = uint64(res.Deleted)
		resp.Epoch = res.Epoch
	case wire.OpEpoch:
		resp.Epoch = s.eng.Epoch()
	case wire.OpCheckpoint:
		if err := s.eng.Checkpoint(); err != nil {
			return s.fail(resp, err)
		}
		resp.Epoch = s.eng.Stats().DurableEpoch
	case wire.OpStats:
		resp.Stats = s.statList()
	case wire.OpPin:
		var snap *engine.Snapshot
		if req.Epoch == 0 {
			snap = s.eng.Pin()
		} else {
			var err error
			if snap, err = s.eng.PinEpoch(req.Epoch); err != nil {
				return s.fail(resp, err)
			}
		}
		c.pin(snap)
		resp.Epoch = snap.Epoch()
	case wire.OpUnpin:
		if !c.unpin(req.Epoch) {
			return s.fail(resp, fmt.Errorf("epoch %d is not pinned by this connection", req.Epoch))
		}
		resp.Epoch = req.Epoch
	}
	return resp
}

// asOfSnapshot resolves a range request's as-of epoch (nil for a live
// read).
func (s *Server) asOfSnapshot(req *wire.Request) (*engine.Snapshot, error) {
	if req.AsOf == 0 {
		return nil, nil
	}
	return s.eng.AsOf(req.AsOf)
}

func (s *Server) fail(resp *wire.Response, err error) *wire.Response {
	resp.Status = wire.StatusError
	switch {
	case errors.Is(err, engine.ErrClosed):
		resp.Status = wire.StatusClosed
	case errors.Is(err, engine.ErrEpochNotRetained):
		// Typed, like Closed/Overloaded: the client re-materializes
		// engine.ErrEpochNotRetained from the status so callers can
		// errors.Is across the network boundary.
		resp.Status = wire.StatusNotRetained
	case errors.Is(err, engine.ErrOverloaded):
		// The engine's own commit-queue bound tripped: surface it exactly
		// like a server-side shed so the client's backoff treats both
		// layers' backpressure as one signal.
		resp.Status = wire.StatusOverloaded
		resp.RetryAfterMillis = s.adm.retryAfterMillis(classOf(resp.Op))
	}
	resp.ErrMsg = err.Error()
	return resp
}

// statList flattens the engine counters plus the server's own into the
// wire's name/value list, in a fixed order.
func (s *Server) statList() []wire.Stat {
	st := s.eng.Stats()
	return []wire.Stat{
		{Name: "epoch", Value: st.Epoch},
		{Name: "durable_epoch", Value: st.DurableEpoch},
		{Name: "size", Value: st.Size},
		{Name: "shards", Value: st.Shards},
		{Name: "rebalances", Value: st.Rebalances},
		{Name: "updates", Value: st.Updates},
		{Name: "commits", Value: st.Commits},
		{Name: "queries", Value: st.Queries},
		{Name: "query_groups", Value: st.QueryGroups},
		{Name: "shed", Value: st.Shed},
		{Name: "commit_queue", Value: st.CommitQueue},
		{Name: "retained_epochs", Value: st.RetainedEpochs},
		{Name: "pinned_epochs", Value: st.PinnedEpochs},
		{Name: "retained_bytes", Value: st.RetainedBytes},
		{Name: "connections", Value: s.accepted.Load()},
		{Name: "requests", Value: s.requests.Load()},
		{Name: "shed_reads", Value: s.adm.gates[classRead].shed.Load()},
		{Name: "shed_writes", Value: s.adm.gates[classWrite].shed.Load()},
		{Name: "shed_control", Value: s.adm.gates[classControl].shed.Load()},
		{Name: "inflight_reads", Value: uint64(s.adm.gates[classRead].inflight.Load())},
		{Name: "inflight_writes", Value: uint64(s.adm.gates[classWrite].inflight.Load())},
		{Name: "inflight_control", Value: uint64(s.adm.gates[classControl].inflight.Load())},
	}
}
