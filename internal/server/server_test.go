package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"

	"pargeo/client"
	"pargeo/internal/engine"
	"pargeo/internal/geom"
	"pargeo/internal/server"
	"pargeo/internal/wal"
)

// startServer spins up an engine + server on a loopback listener and
// returns them with the dial address. The caller owns shutdown order.
func startServer(t *testing.T, dim int, opts engine.Options) (*engine.Engine, *server.Server, string) {
	t.Helper()
	eng, err := engine.Open(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := server.New(eng, dim, ln)
	go srv.Serve() //nolint:errcheck // exits nil on Shutdown
	return eng, srv, ln.Addr().String()
}

func sortedIDs(ids []int32) []int32 {
	out := append([]int32{}, ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestLoopbackDifferential drives the facade's behaviors through the
// network stack and checks every answer against the same engine asked
// directly — the wire must be a transparent transport, including the
// engine-edge cases: the pre-founding Delete's zero-value UpdateResult
// must round-trip as exactly that, not as an error or a mangled result.
func TestLoopbackDifferential(t *testing.T) {
	fs := wal.NewMemFS()
	eng, srv, addr := startServer(t, 2, engine.Options{
		Shards:     4,
		Durability: &engine.Durability{Dir: "db", FS: fs, SyncEvery: 1},
	})
	defer func() { srv.Shutdown(); eng.Close() }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Dim() != 2 || c.Shards() != 4 {
		t.Fatalf("handshake: dim=%d shards=%d, want 2, 4", c.Dim(), c.Shards())
	}

	// Pre-founding, a delete matches nothing: the zero-value UpdateResult
	// (no ids, nothing deleted, epoch 0, no error) must survive the wire.
	res := c.Delete(geom.Points{Data: []float64{7, 7}, Dim: 2})
	if res.Err != nil || res.Deleted != 0 || len(res.IDs) != 0 || res.Epoch != 0 {
		t.Fatalf("pre-founding delete over the wire: %+v, want zero-value result", res)
	}

	// Founding insert, then a mixed workload mirrored through both paths.
	rng := rand.New(rand.NewSource(11))
	seed := geom.NewPoints(256, 2)
	for i := 0; i < seed.Len(); i++ {
		seed.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	res = c.Insert(seed)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.IDs) != seed.Len() {
		t.Fatalf("insert assigned %d ids for %d rows", len(res.IDs), seed.Len())
	}
	if got := c.Update(geom.Points{Dim: 2}, geom.Points{Data: seed.At(0), Dim: 2}); got.Err != nil || got.Deleted != 1 {
		t.Fatalf("delete of live point: %+v", got)
	}

	// Every query class: remote answer == direct engine answer.
	for i := 0; i < 20; i++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(8)
		remote, err := c.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if direct := eng.KNN(q, k); !reflect.DeepEqual(remote, direct) {
			t.Fatalf("KNN(%v, %d): remote %v, direct %v", q, k, remote, direct)
		}
		lo := []float64{rng.Float64() * 50, rng.Float64() * 50}
		box := geom.Box{Min: lo, Max: []float64{lo[0] + 25, lo[1] + 25}}
		remoteIDs, err := c.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		if direct := eng.RangeSearch(box); !reflect.DeepEqual(sortedIDs(remoteIDs), sortedIDs(direct)) {
			t.Fatalf("RangeSearch(%v): remote %v, direct %v", box, remoteIDs, direct)
		}
		n, err := c.RangeCount(box)
		if err != nil {
			t.Fatal(err)
		}
		if direct := eng.RangeCount(box); n != direct {
			t.Fatalf("RangeCount(%v): remote %d, direct %d", box, n, direct)
		}
	}

	// Multi-query batch path.
	queries := geom.NewPoints(16, 2)
	for i := 0; i < queries.Len(); i++ {
		queries.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	remote, err := c.KNNBatch(queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if direct := eng.Snapshot().KNN(queries, 3); !reflect.DeepEqual(remote, direct) {
		t.Fatalf("KNNBatch: remote %v, direct %v", remote, direct)
	}

	// Admin surface.
	if ep, err := c.Epoch(); err != nil || ep != eng.Epoch() {
		t.Fatalf("Epoch: %d, %v; engine at %d", ep, err, eng.Epoch())
	}
	if ep, err := c.Checkpoint(); err != nil || ep != eng.Epoch() {
		t.Fatalf("Checkpoint: %d, %v; engine at %d", ep, err, eng.Epoch())
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["size"] != uint64(eng.Size()) || st["shards"] != 4 || st["requests"] == 0 {
		t.Fatalf("stats: %v (engine size %d)", st, eng.Size())
	}

	// Client-side validation is typed and local: no request is sent.
	if _, err := c.KNN([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("dim-mismatched KNN accepted")
	}
	if _, err := c.KNN([]float64{1, 2}, 0); err == nil {
		t.Fatal("k=0 KNN accepted")
	}
}

// TestBatchedCallsCorrect hammers the client's combiner: concurrent solo
// KNNs (mergeable by k) and pure inserts (mergeable) from many
// goroutines must each get exactly their own answer back, and the
// merged inserts must hand out disjoint id spans.
func TestBatchedCallsCorrect(t *testing.T) {
	eng, srv, addr := startServer(t, 2, engine.Options{Shards: 4})
	defer func() { srv.Shutdown(); eng.Close() }()
	if res := eng.Insert(geom.Points{Data: []float64{0, 0, 100, 100, 50, 50, 25, 75}, Dim: 2}); res.Err != nil {
		t.Fatal(res.Err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 24
	var wg sync.WaitGroup
	idCh := make(chan []int32, callers)
	errCh := make(chan error, 2*callers)
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			q := []float64{rng.Float64() * 100, rng.Float64() * 100}
			before := eng.Epoch()
			ids, err := c.KNN(q, 2)
			if err != nil {
				errCh <- err
				return
			}
			direct := eng.KNN(q, 2)
			// The direct oracle races the other callers' inserts: it runs
			// on whatever snapshot is current NOW, while the server
			// answered on the snapshot current THEN. Only an unchanged
			// epoch across the whole exchange proves both saw the same
			// tree; otherwise a commit landed in between and a mismatch
			// means nothing.
			if eng.Epoch() == before && !reflect.DeepEqual(ids, direct) {
				errCh <- fmt.Errorf("caller %d: KNN %v: got %v, want %v", g, q, ids, direct)
			}
			rows := 1 + g%3
			batch := geom.NewPoints(rows, 2)
			for i := 0; i < rows; i++ {
				batch.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
			}
			res := c.Insert(batch)
			if res.Err != nil {
				errCh <- res.Err
				return
			}
			if len(res.IDs) != rows {
				errCh <- fmt.Errorf("caller %d: %d ids for %d rows", g, len(res.IDs), rows)
				return
			}
			idCh <- res.IDs
		}()
	}
	wg.Wait()
	close(errCh)
	close(idCh)
	for err := range errCh {
		t.Error(err)
	}
	seen := map[int32]bool{}
	for ids := range idCh {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d assigned to two callers: merged insert mis-split", id)
			}
			seen[id] = true
		}
	}
}

// TestShutdownDrains closes the server out from under a storm of
// writers: every call must resolve promptly as either a success or a
// typed closed error, and — because the drain completes before the
// engine closes — every success must be recovered from the WAL.
func TestShutdownDrains(t *testing.T) {
	fs := wal.NewMemFS()
	opts := engine.Options{
		Shards:     4,
		Durability: &engine.Durability{Dir: "db", FS: fs, SyncEvery: 1},
	}
	eng, srv, addr := startServer(t, 2, opts)
	if res := eng.Insert(geom.Points{Data: []float64{0, 0, 100, 100}, Dim: 2}); res.Err != nil {
		t.Fatal(res.Err)
	}

	const writers = 8
	var mu sync.Mutex
	acked := map[int32][]float64{}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			<-start
			for i := 0; ; i++ {
				p := []float64{rng.Float64() * 100, rng.Float64() * 100}
				res := c.Insert(geom.Points{Data: p, Dim: 2})
				if res.Err != nil {
					if !errors.Is(res.Err, client.ErrEngineClosed) && !errors.Is(res.Err, client.ErrConnClosed) {
						t.Errorf("writer %d: untyped shutdown error: %v", w, res.Err)
					}
					return
				}
				mu.Lock()
				acked[res.IDs[0]] = p
				mu.Unlock()
			}
		}()
	}
	close(start)
	// Let the storm build, then pull the plug mid-flight.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 50 {
			break
		}
	}
	srv.Shutdown()
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := engine.Open(2, engine.Options{
		Shards:     4,
		Durability: &engine.Durability{Dir: "db", FS: fs, SyncEvery: 1},
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	_, ids := re.Snapshot().Points()
	live := map[int32]bool{}
	for _, id := range ids {
		live[id] = true
	}
	mu.Lock()
	defer mu.Unlock()
	for id := range acked {
		if !live[id] {
			t.Fatalf("id %d acknowledged through the wire but lost across shutdown", id)
		}
	}
	t.Logf("drained shutdown preserved all %d acked inserts", len(acked))
}

// TestClosedEngineTyped: an engine closed under a live server must
// surface as the TYPED closed error through the wire — errors.Is against
// client.ErrEngineClosed, never a string match.
func TestClosedEngineTyped(t *testing.T) {
	fs := wal.NewMemFS()
	eng, srv, addr := startServer(t, 2, engine.Options{
		Shards:     2,
		Durability: &engine.Durability{Dir: "db", FS: fs, SyncEvery: 1},
	})
	defer srv.Shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if res := c.Insert(geom.Points{Data: []float64{1, 1}, Dim: 2}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	res := c.Insert(geom.Points{Data: []float64{2, 2}, Dim: 2})
	if !errors.Is(res.Err, client.ErrEngineClosed) {
		t.Fatalf("insert on closed engine: %v, want ErrEngineClosed", res.Err)
	}
	var remote *client.RemoteError
	if errors.As(res.Err, &remote) {
		t.Fatalf("closed engine surfaced as untyped RemoteError: %v", res.Err)
	}
}
