package server

import (
	"sync"
	"testing"
	"time"

	"pargeo/internal/wire"
)

func TestClassOf(t *testing.T) {
	cases := map[byte]int{
		wire.OpKNN: classRead, wire.OpRange: classRead, wire.OpRangeCount: classRead,
		wire.OpUpdate: classWrite,
		wire.OpEpoch:  classControl, wire.OpCheckpoint: classControl, wire.OpStats: classControl,
		wire.OpHello: classNone,
	}
	for op, want := range cases {
		if got := classOf(op); got != want {
			t.Errorf("classOf(%d) = %d, want %d", op, got, want)
		}
	}
}

// TestGateBudget: exactly limit admissions in flight; the limit+1'th
// sheds; a release readmits; classes do not share budget.
func TestGateBudget(t *testing.T) {
	var a admission
	a.init(Limits{Reads: 2, Writes: 1})
	for i := 0; i < 2; i++ {
		if !a.admit(classRead) {
			t.Fatalf("read %d shed under its budget", i)
		}
	}
	if a.admit(classRead) {
		t.Fatal("third read admitted past Reads=2")
	}
	if got := a.gates[classRead].shed.Load(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
	// A full read gate must not leak into writes or control.
	if !a.admit(classWrite) {
		t.Fatal("write shed by the read gate")
	}
	if !a.admit(classControl) {
		t.Fatal("unlimited control class shed")
	}
	a.release(classRead)
	if !a.admit(classRead) {
		t.Fatal("read shed after a release freed a slot")
	}
	// Hello never consumes a slot.
	for i := 0; i < 100; i++ {
		if !a.admit(classNone) {
			t.Fatal("classNone shed")
		}
	}
}

// TestGateBudgetConcurrent: under a storm of admit/release pairs the
// in-flight count never exceeds the limit and ends at zero — the
// add-then-check admission is exact, not approximate.
func TestGateBudgetConcurrent(t *testing.T) {
	var a admission
	a.init(Limits{Writes: 3})
	var wg sync.WaitGroup
	var admitted, shed int
	var mu sync.Mutex
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if a.admit(classWrite) {
					if n := a.gates[classWrite].inflight.Load(); n > 3 {
						t.Errorf("in-flight %d > limit 3", n)
					}
					a.release(classWrite)
					mu.Lock()
					admitted++
					mu.Unlock()
				} else {
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if n := a.gates[classWrite].inflight.Load(); n != 0 {
		t.Fatalf("in-flight %d after all released", n)
	}
	if got := a.gates[classWrite].shed.Load(); got != uint64(shed) {
		t.Fatalf("shed counter %d, callers saw %d", got, shed)
	}
	if admitted+shed != 16*1000 {
		t.Fatalf("accounting: %d admitted + %d shed != %d", admitted, shed, 16*1000)
	}
}

// TestRetryHint: the hint tracks the service-time EWMA and clamps to
// [1ms, 1s] at both ends.
func TestRetryHint(t *testing.T) {
	var a admission
	a.init(Limits{Reads: 1})
	if got := a.retryAfterMillis(classRead); got != 1 {
		t.Fatalf("cold hint %dms, want the 1ms floor", got)
	}
	a.observe(classRead, 40*time.Millisecond)
	if got := a.retryAfterMillis(classRead); got != 40 {
		t.Fatalf("hint after first observation %dms, want 40", got)
	}
	// EWMA smooths: one 8ms outlier moves a 40ms estimate by (8-40)/8.
	a.observe(classRead, 8*time.Millisecond)
	if got := a.retryAfterMillis(classRead); got != 36 {
		t.Fatalf("smoothed hint %dms, want 36", got)
	}
	a.observe(classRead, time.Hour)
	if got := a.retryAfterMillis(classRead); got != 1000 {
		t.Fatalf("pathological hint %dms, want the 1s ceiling", got)
	}
	a.observe(classRead, -time.Second) // clock step: ignored, not folded in
	if got := a.retryAfterMillis(classRead); got != 1000 {
		t.Fatalf("hint after negative duration %dms, want 1000", got)
	}
}
