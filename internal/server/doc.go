// Package server serves an engine over the wire protocol. One Server
// wraps one engine and one net.Listener; each accepted connection gets a
// reader goroutine, and every decoded request runs in its own goroutine —
// the server deliberately does NO batching of its own, because the
// engine's flat-combining committers and query group leaders already
// coalesce concurrent requests across all connections. A server-side
// queue would only serialize what the engine wants to see in parallel.
//
// # Admission control
//
// A server built with NewWithLimits bounds the number of concurrently
// executing requests per class — reads (KNN, RangeSearch, RangeCount),
// writes (Update), and control (Epoch, Checkpoint, Stats) — so that one
// class saturating cannot starve the others of goroutines or engine
// passes. A request arriving at a full class is answered immediately
// with StatusOverloaded and a retry-after hint priced from the class's
// smoothed service time; it is never queued server-side. That keeps the
// server's response latency flat under overload: the backlog lives in
// the clients, which can apply deadlines and backoff the server cannot.
// Hello is exempt (the handshake must always succeed so a client can
// learn enough to back off), and shutdown still wins — a request racing
// Shutdown gets StatusClosed, not StatusOverloaded. The engine's own
// commit-queue bound (engine.Options.MaxPending) surfaces through the
// same status, so clients see one backpressure signal regardless of
// which layer shed.
//
// Per-class shed counters and in-flight gauges join the engine counters
// in the Stats op ("shed_reads", "inflight_writes", ...), alongside the
// engine's "shed" and "commit_queue".
//
// # Shutdown
//
// Shutdown is a drain, not an abort: Shutdown stops the accept loop,
// fails fresh requests with StatusClosed, waits for every in-flight
// request to commit and its response to be written, then closes the
// connections. Only after Shutdown returns does the caller close the
// engine — so an acknowledged response always corresponds to an update
// the engine's durability contract covers.
//
// For where this package sits in the whole system — the layer diagram
// and the request lifecycles through client, server, engine, and WAL —
// see docs/ARCHITECTURE.md at the repository root.
package server
