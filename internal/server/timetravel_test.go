package server_test

import (
	"errors"
	"testing"
	"time"

	"pargeo/client"
	"pargeo/internal/engine"
	"pargeo/internal/geom"
)

// TestTimeTravelOverWire drives the as-of and pin surface end to end:
// remote AsOf answers match the embedded engine's for every retained
// epoch, typed ErrEpochNotRetained crosses the wire, pins held by one
// connection survive the retention GC and resist another connection's
// Unpin, and a dropped connection releases its pins.
func TestTimeTravelOverWire(t *testing.T) {
	eng, srv, addr := startServer(t, 2, engine.Options{Shards: 2, RetainEpochs: 4})
	defer func() { srv.Shutdown(); eng.Close() }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Commit a few epochs, remembering each epoch's expected universe
	// count.
	sizes := map[uint64]int{}
	total := 0
	for round := 0; round < 6; round++ {
		batch := geom.NewPoints(40, 2)
		for i := 0; i < batch.Len(); i++ {
			batch.Set(i, []float64{float64(round*40+i) * 0.01, float64(i) * 0.02})
		}
		res := c.Insert(batch)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		total += batch.Len()
		sizes[res.Epoch] = total
	}
	universe := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}

	epoch, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	for e := epoch - 3; e <= epoch; e++ {
		n, err := c.RangeCountAsOf(universe, e)
		if err != nil {
			t.Fatalf("RangeCountAsOf(%d): %v", e, err)
		}
		if n != sizes[e] {
			t.Fatalf("as-of epoch %d count %d, want %d", e, n, sizes[e])
		}
		ids, err := c.RangeSearchAsOf(universe, e)
		if err != nil || len(ids) != sizes[e] {
			t.Fatalf("RangeSearchAsOf(%d): %d ids, err %v", e, len(ids), err)
		}
		// The remote as-of KNN must match the embedded engine's answer
		// from the same snapshot.
		q := []float64{0.5, 0.3}
		got, err := c.KNNAsOf(q, 5, e)
		if err != nil {
			t.Fatalf("KNNAsOf(%d): %v", e, err)
		}
		snap, err := eng.AsOf(e)
		if err != nil {
			t.Fatal(err)
		}
		want := snap.KNN(geom.Points{Data: q, Dim: 2}, 5)[0]
		if len(got) != len(want) {
			t.Fatalf("as-of epoch %d knn: %v, embedded %v", e, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("as-of epoch %d knn: %v, embedded %v", e, got, want)
			}
		}
	}

	// Outside the window: typed across the wire.
	if _, err := c.RangeCountAsOf(universe, 1); !errors.Is(err, client.ErrEpochNotRetained) {
		t.Fatalf("trimmed epoch over the wire: %v, want ErrEpochNotRetained", err)
	}
	if _, err := c.KNNAsOf([]float64{0, 0}, 3, epoch+100); !errors.Is(err, client.ErrEpochNotRetained) {
		t.Fatalf("future epoch over the wire: %v, want ErrEpochNotRetained", err)
	}
	if _, err := c.PinEpoch(1); !errors.Is(err, client.ErrEpochNotRetained) {
		t.Fatalf("pin of trimmed epoch: %v, want ErrEpochNotRetained", err)
	}

	// Pin the latest epoch, push it out of the ring, and keep reading it.
	pinned, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	if pinned != epoch {
		t.Fatalf("pinned epoch %d, want latest %d", pinned, epoch)
	}
	for round := 0; round < 6; round++ {
		batch := geom.NewPoints(20, 2)
		for i := 0; i < batch.Len(); i++ {
			batch.Set(i, []float64{float64(i) * 0.03, 1 + float64(round)*0.1})
		}
		if res := c.Insert(batch); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if n, err := c.RangeCountAsOf(universe, pinned); err != nil || n != total {
		t.Fatalf("pinned epoch after trim: count %d err %v, want %d", n, err, total)
	}

	// A second connection cannot release the first's pin.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Unpin(pinned); err == nil || errors.Is(err, client.ErrEpochNotRetained) {
		t.Fatalf("foreign unpin must fail as a plain remote error, got %v", err)
	}
	c2.Close()

	// Unpin from the owner: the epoch (now far behind the window) stops
	// resolving.
	if err := c.Unpin(pinned); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RangeCountAsOf(universe, pinned); !errors.Is(err, client.ErrEpochNotRetained) {
		t.Fatalf("read after unpin: %v, want ErrEpochNotRetained", err)
	}
	if err := c.Unpin(pinned); err == nil {
		t.Fatal("double unpin must fail")
	}

	// Pins die with their connection: pin again, drop the client, and the
	// engine's pin table must drain.
	if _, err := c.Pin(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().PinnedEpochs; got != 1 {
		t.Fatalf("engine pinned epochs %d, want 1", got)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().PinnedEpochs != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection close did not release its pins")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
