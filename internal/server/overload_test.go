package server_test

import (
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/internal/engine"
	"pargeo/internal/geom"
	"pargeo/internal/server"
	"pargeo/internal/wire"
)

// rawConn speaks the wire protocol directly, below the client package,
// so tests can observe shed frames exactly as they leave the server.
type rawConn struct {
	t   *testing.T
	c   net.Conn
	buf []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c}
}

func (r *rawConn) send(req *wire.Request) {
	r.t.Helper()
	if _, err := r.c.Write(wire.AppendRequest(nil, req)); err != nil {
		r.t.Fatalf("send op %d: %v", req.Op, err)
	}
}

func (r *rawConn) recv() wire.Response {
	r.t.Helper()
	var err error
	r.buf, err = wire.ReadFrame(r.c, r.buf)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	resp, _, err := wire.DecodeResponse(r.buf, 2)
	if err != nil {
		r.t.Fatalf("decode: %v", err)
	}
	return resp
}

func (r *rawConn) stats() map[string]uint64 {
	r.t.Helper()
	r.send(&wire.Request{Op: wire.OpStats, ID: 99})
	resp := r.recv()
	out := map[string]uint64{}
	for _, st := range resp.Stats {
		out[st.Name] = st.Value
	}
	return out
}

func startLimited(t *testing.T, dim int, opts engine.Options, lim server.Limits) (*engine.Engine, *server.Server, string) {
	t.Helper()
	eng, err := engine.Open(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := server.NewWithLimits(eng, dim, ln, lim)
	go srv.Serve() //nolint:errcheck // exits nil on Shutdown
	return eng, srv, ln.Addr().String()
}

// TestShedTyped pins one read slot with a long multi-query KNN, then
// checks the whole overload contract from outside: the next read is
// answered StatusOverloaded with a hint — immediately, on a connection
// that keeps serving — while writes and control ride their own budgets
// untouched, the pinned read still completes correctly, and the shed
// shows up in the stats counters.
func TestShedTyped(t *testing.T) {
	eng, srv, addr := startLimited(t, 2, engine.Options{Shards: 2}, server.Limits{Reads: 1})
	defer func() { srv.Shutdown(); eng.Close() }()
	rng := rand.New(rand.NewSource(3))
	seed := geom.NewPoints(4096, 2)
	for i := 0; i < seed.Len(); i++ {
		seed.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	if res := eng.Insert(seed); res.Err != nil {
		t.Fatal(res.Err)
	}

	// A batch big enough to hold the read slot for a while (tens of ms at
	// least), but bounded; the poll below confirms it is actually pinned.
	big := geom.NewPoints(60000, 2)
	for i := 0; i < big.Len(); i++ {
		big.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	pinner := dialRaw(t, addr)
	prober := dialRaw(t, addr)
	ctrl := dialRaw(t, addr)

	var probe wire.Response
	for attempt := 0; ; attempt++ {
		if attempt == 10 {
			t.Fatal("10 pinned reads finished before the probe landed")
		}
		pinner.send(&wire.Request{Op: wire.OpKNN, ID: uint64(attempt), K: 8, Queries: big})
		for ctrl.stats()["inflight_reads"] == 0 {
		}
		prober.send(&wire.Request{Op: wire.OpKNN, ID: 1000, K: 1, Queries: geom.Points{Data: []float64{1, 1}, Dim: 2}})
		probe = prober.recv()
		// While the read gate is (still) full, the other classes admit.
		ctrl.send(&wire.Request{Op: wire.OpUpdate, ID: 2000, Ins: geom.Points{Data: []float64{5, 5}, Dim: 2}, Del: geom.Points{Dim: 2}})
		if wr := ctrl.recv(); wr.Status != wire.StatusOK {
			t.Fatalf("write during read overload: status %d (%s)", wr.Status, wr.ErrMsg)
		}
		pinned := pinner.recv()
		if pinned.Status != wire.StatusOK || len(pinned.Neighbors) != big.Len() {
			t.Fatalf("pinned read: status %d, %d rows, want OK with %d", pinned.Status, len(pinned.Neighbors), big.Len())
		}
		if probe.Status == wire.StatusOverloaded {
			break
		}
		// The pinned read finished before the probe arrived: it answered
		// normally. Legitimate, just unlucky — re-pin and retry.
		if probe.Status != wire.StatusOK {
			t.Fatalf("probe: status %d (%s), want OK or Overloaded", probe.Status, probe.ErrMsg)
		}
	}
	if probe.ID != 1000 || probe.Op != wire.OpKNN {
		t.Fatalf("shed echoed op %d id %d, want op %d id 1000", probe.Op, probe.ID, wire.OpKNN)
	}
	if probe.RetryAfterMillis < 1 || probe.RetryAfterMillis > 1000 {
		t.Fatalf("retry hint %dms outside [1, 1000]", probe.RetryAfterMillis)
	}
	if len(probe.Neighbors) != 0 {
		t.Fatalf("shed response carries %d result rows", len(probe.Neighbors))
	}

	// The shed connection was not dropped: the same conn serves the same
	// query once the slot frees.
	prober.send(&wire.Request{Op: wire.OpKNN, ID: 1001, K: 1, Queries: geom.Points{Data: []float64{1, 1}, Dim: 2}})
	if retried := prober.recv(); retried.Status != wire.StatusOK || len(retried.Neighbors) != 1 {
		t.Fatalf("retry after shed: status %d, %d rows", retried.Status, len(retried.Neighbors))
	}
	st := ctrl.stats()
	if st["shed_reads"] == 0 {
		t.Fatal("shed_reads counter still zero after an observed shed")
	}
	if st["shed_writes"] != 0 || st["shed_control"] != 0 {
		t.Fatalf("collateral sheds: writes=%d control=%d", st["shed_writes"], st["shed_control"])
	}
}

// TestShutdownUnderShedding pulls the plug while the server is actively
// shedding: every in-flight and queued request must still resolve with a
// typed status (OK, Overloaded, or Closed) — no hangs, no invented
// statuses — Shutdown must complete, and the handler goroutines must all
// exit.
func TestShutdownUnderShedding(t *testing.T) {
	baseline := runtime.NumGoroutine()
	eng, srv, addr := startLimited(t, 2, engine.Options{Shards: 2},
		server.Limits{Reads: 2, Writes: 2, Control: 2})
	rng := rand.New(rand.NewSource(17))
	seed := geom.NewPoints(4096, 2)
	for i := 0; i < seed.Len(); i++ {
		seed.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	if res := eng.Insert(seed); res.Err != nil {
		t.Fatal(res.Err)
	}

	const stormers = 12
	var (
		wg         sync.WaitGroup
		oks, sheds atomic.Uint64
		closeds    atomic.Uint64
	)
	for g := 0; g < stormers; g++ {
		g := g
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(g)))
			var buf []byte
			// Read stormers carry multi-query batches so handlers are slow
			// enough that >2 reliably overlap against Reads=2 — the test
			// needs the server demonstrably shedding when Shutdown lands.
			// The batches must outlast a scheduler slice (~10ms) or a
			// single-core host serializes the handlers and never sheds.
			batch := geom.NewPoints(32768, 2)
			for i := 0; i < batch.Len(); i++ {
				batch.Set(i, []float64{rng.Float64() * 100, rng.Float64() * 100})
			}
			for id := uint64(0); ; id++ {
				req := &wire.Request{Op: wire.OpKNN, ID: id, K: 4, Queries: batch}
				if g%3 == 0 {
					req = &wire.Request{Op: wire.OpUpdate, ID: id,
						Ins: geom.Points{Data: []float64{rng.Float64() * 100, rng.Float64() * 100}, Dim: 2},
						Del: geom.Points{Dim: 2}}
				}
				if _, err := c.Write(wire.AppendRequest(nil, req)); err != nil {
					return // shutdown cut the stream mid-write: fine
				}
				buf, err = wire.ReadFrame(c, buf)
				if err != nil {
					return // shutdown cut the stream before the response
				}
				resp, _, err := wire.DecodeResponse(buf, 2)
				if err != nil {
					t.Errorf("stormer %d: corrupt response: %v", g, err)
					return
				}
				switch resp.Status {
				case wire.StatusOK:
					oks.Add(1)
				case wire.StatusOverloaded:
					sheds.Add(1)
				case wire.StatusClosed:
					closeds.Add(1)
					return
				default:
					t.Errorf("stormer %d: status %d (%s)", g, resp.Status, resp.ErrMsg)
					return
				}
			}
		}()
	}

	// Wait until shedding is demonstrably happening, then shut down.
	for start := time.Now(); sheds.Load() == 0; time.Sleep(time.Millisecond) {
		if time.Since(start) > 30*time.Second {
			t.Fatal("storm never produced a shed")
		}
	}
	srv.Shutdown()
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: %d ok, %d shed, %d closed", oks.Load(), sheds.Load(), closeds.Load())
	if oks.Load() == 0 {
		t.Error("storm produced no successful requests")
	}

	// Handler and reader goroutines must all be gone: poll back down to
	// (near) the pre-test count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
