// Package unionfind provides a disjoint-set forest with union by rank and
// path halving — the substrate for Kruskal's algorithm in the EMST module.
package unionfind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
	count  int // number of live components
}

// New returns a forest of n singleton components.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's component, halving the path.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the components of a and b; reports whether a merge happened
// (false if they were already connected).
func (u *UF) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same component.
func (u *UF) Connected(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Count returns the number of components.
func (u *UF) Count() int { return u.count }
