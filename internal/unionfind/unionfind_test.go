package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("count %d", u.Count())
	}
	for i := int32(0); i < 5; i++ {
		if u.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, u.Find(i))
		}
		for j := i + 1; j < 5; j++ {
			if u.Connected(i, j) {
				t.Fatalf("%d and %d connected initially", i, j)
			}
		}
	}
}

func TestUnionSemantics(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union should not merge")
	}
	if u.Count() != 3 {
		t.Fatalf("count %d", u.Count())
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 1 {
		t.Fatalf("count %d after full merge", u.Count())
	}
	if !u.Connected(1, 2) {
		t.Fatal("transitive connectivity broken")
	}
}

func TestChainCompression(t *testing.T) {
	n := 10000
	u := New(n)
	for i := 1; i < n; i++ {
		u.Union(int32(i-1), int32(i))
	}
	if u.Count() != 1 {
		t.Fatalf("count %d", u.Count())
	}
	// After path halving, Find should be fast and consistent.
	root := u.Find(0)
	for i := 0; i < n; i += 97 {
		if u.Find(int32(i)) != root {
			t.Fatalf("element %d has different root", i)
		}
	}
}

func TestAgainstNaiveOracle(t *testing.T) {
	// Property: same connectivity as a naive label array under random
	// unions.
	f := func(ops []uint16) bool {
		n := 64
		u := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, op := range ops {
			a := int32(op) % int32(n)
			b := int32(op>>6) % int32(n)
			u.Union(a, b)
			if label[a] != label[b] {
				relabel(label[a], label[b])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u.Connected(int32(i), int32(j)) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 1000
	u := New(n)
	merges := 0
	for i := 0; i < 5000; i++ {
		if u.Union(int32(r.Intn(n)), int32(r.Intn(n))) {
			merges++
		}
	}
	if u.Count() != n-merges {
		t.Fatalf("count %d, want %d", u.Count(), n-merges)
	}
}
