// Package core implements the paper's central algorithmic device: the
// reservation technique for parallel incremental algorithms (§3, Fig. 5).
//
// A sequential incremental algorithm adds one point per round, mutating a
// shared structure (a convex hull, a triangulation). The reservation-based
// parallel version processes a *batch* of points per round in three
// phases:
//
//  1. reserve — each point, in parallel, performs an atomic priority write
//     (WriteMin of its priority) into every structure element ("facet") it
//     would modify;
//  2. check — each point verifies, in parallel, that it still holds all of
//     its reservations; points that do are "successful";
//  3. commit — successful points mutate the structure in parallel; their
//     modified element sets are guaranteed disjoint, so no locks are
//     needed.
//
// Because priorities are point IDs (positions in a random permutation for
// the randomized incremental variant), the set of winners each round is
// deterministic regardless of thread schedule — the technique inherits the
// "internally deterministic" property of Blelloch et al.'s deterministic
// reservations.
//
// This package provides the reservation slots, the round driver, and the
// instrumentation counters used for the reservation-overhead experiment
// (Fig. 12). The convex hull (hull2d, hull3d) and the Delaunay
// triangulation build on it.
package core

import (
	"sync/atomic"

	"pargeo/internal/parlay"
)

// NoOwner is the reservation value meaning "unreserved". All real
// priorities must be smaller.
const NoOwner int64 = 1<<63 - 1

// Reservations is a set of atomic reservation slots, one per structure
// element (facet, triangle, edge). The zero value is not ready; use Grow or
// NewReservations.
type Reservations struct {
	slots []int64
}

// NewReservations returns n unreserved slots.
func NewReservations(n int) *Reservations {
	r := &Reservations{slots: make([]int64, n)}
	for i := range r.slots {
		r.slots[i] = NoOwner
	}
	return r
}

// Len returns the number of slots.
func (r *Reservations) Len() int { return len(r.slots) }

// Grow appends unreserved slots until the set holds at least n.
func (r *Reservations) Grow(n int) {
	for len(r.slots) < n {
		r.slots = append(r.slots, NoOwner)
	}
}

// Reserve performs the priority write: slot i is claimed by priority p if p
// is smaller than the current claim. Safe for concurrent use.
func (r *Reservations) Reserve(i int, p int64) { parlay.WriteMin(&r.slots[i], p) }

// Holds reports whether priority p currently holds slot i.
func (r *Reservations) Holds(i int, p int64) bool {
	return atomic.LoadInt64(&r.slots[i]) == p
}

// Release resets slot i to unreserved. Call between rounds on surviving
// elements (newly created elements start unreserved).
func (r *Reservations) Release(i int) { atomic.StoreInt64(&r.slots[i], NoOwner) }

// ReleaseAll resets every slot in parallel.
func (r *Reservations) ReleaseAll() {
	parlay.For(len(r.slots), 0, func(i int) { r.slots[i] = NoOwner })
}

// Stats instruments a reservation-based run for the Fig. 12 overhead
// experiment. Counters are atomic so the parallel phases can bump them.
type Stats struct {
	Rounds         int64 // number of batch rounds executed
	PointsTouched  int64 // visible/conflict points examined across rounds
	FacetsTouched  int64 // visible facets examined (incl. re-examinations)
	Reservations   int64 // priority writes performed
	Successes      int64 // points whose reservation succeeded
	Failures       int64 // points that lost at least one reservation
	ElementsAlloc  int64 // structure elements created
	ElementsKilled int64 // structure elements deleted
}

// AddPoints atomically adds n to the points-touched counter.
func (s *Stats) AddPoints(n int64) {
	if s != nil {
		atomic.AddInt64(&s.PointsTouched, n)
	}
}

// AddFacets atomically adds n to the facets-touched counter.
func (s *Stats) AddFacets(n int64) {
	if s != nil {
		atomic.AddInt64(&s.FacetsTouched, n)
	}
}

// AddReservations atomically adds n to the reservation counter.
func (s *Stats) AddReservations(n int64) {
	if s != nil {
		atomic.AddInt64(&s.Reservations, n)
	}
}

// AddSuccess records a successful point.
func (s *Stats) AddSuccess() {
	if s != nil {
		atomic.AddInt64(&s.Successes, 1)
	}
}

// AddFailure records a failed point.
func (s *Stats) AddFailure() {
	if s != nil {
		atomic.AddInt64(&s.Failures, 1)
	}
}

// AddRound records one completed round.
func (s *Stats) AddRound() {
	if s != nil {
		atomic.AddInt64(&s.Rounds, 1)
	}
}

// AddAlloc records n created elements.
func (s *Stats) AddAlloc(n int64) {
	if s != nil {
		atomic.AddInt64(&s.ElementsAlloc, n)
	}
}

// AddKilled records n deleted elements.
func (s *Stats) AddKilled(n int64) {
	if s != nil {
		atomic.AddInt64(&s.ElementsKilled, n)
	}
}

// BatchSize returns the paper's round batch size c·numProc (§3, Appendix
// A): a small constant times the worker count. The constant trades round
// count against reservation contention.
func BatchSize(c int) int {
	if c <= 0 {
		c = 8
	}
	return c * parlay.NumWorkers()
}
