package core

import (
	"sync"
	"testing"

	"pargeo/internal/parlay"
)

func TestReserveLowestPriorityWins(t *testing.T) {
	r := NewReservations(1)
	parlay.For(1000, 1, func(i int) {
		r.Reserve(0, int64(1000-i))
	})
	if !r.Holds(0, 1) {
		t.Fatal("priority 1 should hold the slot")
	}
	if r.Holds(0, 2) {
		t.Fatal("priority 2 should not hold")
	}
	r.Release(0)
	if r.Holds(0, 1) {
		t.Fatal("released slot still held")
	}
}

func TestGrowPreservesAndExtends(t *testing.T) {
	r := NewReservations(2)
	r.Reserve(0, 5)
	r.Grow(10)
	if r.Len() != 10 {
		t.Fatalf("len %d", r.Len())
	}
	if !r.Holds(0, 5) {
		t.Fatal("grow lost a reservation")
	}
	// New slots are unreserved: any priority can take them.
	r.Reserve(9, 123)
	if !r.Holds(9, 123) {
		t.Fatal("new slot not claimable")
	}
}

func TestReleaseAll(t *testing.T) {
	r := NewReservations(100)
	for i := 0; i < 100; i++ {
		r.Reserve(i, int64(i))
	}
	r.ReleaseAll()
	for i := 0; i < 100; i++ {
		if r.Holds(i, int64(i)) {
			t.Fatalf("slot %d still held", i)
		}
	}
}

func TestReservationRoundInvariant(t *testing.T) {
	// Simulated round: m points each reserve a random subset of slots; the
	// globally smallest priority must always succeed, and two successful
	// points never share a slot.
	const slots = 64
	const m = 200
	r := NewReservations(slots)
	sets := make([][]int, m)
	for i := range sets {
		a := (i * 13) % slots
		b := (i * 29) % slots
		sets[i] = []int{a, b, (a + b) % slots}
	}
	parlay.For(m, 1, func(i int) {
		for _, s := range sets[i] {
			r.Reserve(s, int64(i))
		}
	})
	success := make([]bool, m)
	parlay.For(m, 1, func(i int) {
		ok := true
		for _, s := range sets[i] {
			if !r.Holds(s, int64(i)) {
				ok = false
				break
			}
		}
		success[i] = ok
	})
	if !success[0] {
		t.Fatal("smallest priority lost a reservation")
	}
	owner := map[int]int{}
	var mu sync.Mutex
	for i := 0; i < m; i++ {
		if !success[i] {
			continue
		}
		mu.Lock()
		for _, s := range sets[i] {
			if prev, ok := owner[s]; ok && prev != i {
				t.Fatalf("slot %d claimed by %d and %d", s, prev, i)
			}
			owner[s] = i
		}
		mu.Unlock()
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.AddPoints(5) // must not panic
	s.AddFacets(1)
	s.AddRound()
	s.AddSuccess()
	s.AddFailure()
	s.AddReservations(2)
	s.AddAlloc(1)
	s.AddKilled(1)
}

func TestBatchSize(t *testing.T) {
	if BatchSize(8) < 8 {
		t.Fatal("batch too small")
	}
	if BatchSize(0) != BatchSize(8) {
		t.Fatal("default c should be 8")
	}
}
