package generators

import (
	"math"
	"testing"

	"pargeo/internal/geom"
)

func TestUniformCubeBounds(t *testing.T) {
	n := 10000
	side := math.Sqrt(float64(n))
	pts := UniformCube(n, 3, 1)
	if pts.Len() != n || pts.Dim != 3 {
		t.Fatalf("shape %d x %d", pts.Len(), pts.Dim)
	}
	for i := 0; i < n; i++ {
		for _, v := range pts.At(i) {
			if v < 0 || v > side {
				t.Fatalf("point %d out of cube: %v", i, pts.At(i))
			}
		}
	}
	// Coverage: points should spread across the cube, not cluster.
	box := geom.BoundingBoxAll(pts)
	for c := 0; c < 3; c++ {
		if box.Max[c]-box.Min[c] < side*0.9 {
			t.Fatalf("dimension %d poorly covered: [%v, %v]", c, box.Min[c], box.Max[c])
		}
	}
}

func TestInSphereRadius(t *testing.T) {
	n := 5000
	radius := math.Sqrt(float64(n)) / 2
	pts := InSphere(n, 3, 2)
	maxR, minR := 0.0, math.Inf(1)
	for i := 0; i < n; i++ {
		r := math.Sqrt(geom.SqDist(pts.At(i), []float64{0, 0, 0}))
		if r > maxR {
			maxR = r
		}
		if r < minR {
			minR = r
		}
	}
	if maxR > radius*(1+1e-9) {
		t.Fatalf("point outside sphere: %v > %v", maxR, radius)
	}
	if minR > radius/2 {
		t.Fatalf("no points near center: min radius %v", minR)
	}
}

func TestOnSphereShell(t *testing.T) {
	n := 5000
	radius := math.Sqrt(float64(n)) / 2
	thick := 0.1 * 2 * radius
	pts := OnSphere(n, 3, 3)
	for i := 0; i < n; i++ {
		r := math.Sqrt(geom.SqDist(pts.At(i), []float64{0, 0, 0}))
		if r > radius*(1+1e-9) || r < radius-thick-1e-9 {
			t.Fatalf("point %d off shell: r=%v (radius %v, thick %v)", i, r, radius, thick)
		}
	}
}

func TestOnCubeShell(t *testing.T) {
	n := 5000
	side := math.Sqrt(float64(n))
	thick := 0.1 * side
	pts := OnCube(n, 3, 4)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		nearFace := false
		for c := 0; c < 3; c++ {
			if p[c] < 0 || p[c] > side {
				t.Fatalf("point %d outside cube", i)
			}
			if p[c] <= thick+1e-9 || p[c] >= side-thick-1e-9 {
				nearFace = true
			}
		}
		if !nearFace {
			t.Fatalf("point %d (%v) not near any face", i, p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := UniformCube(1000, 2, 42)
	b := UniformCube(1000, 2, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := UniformCube(1000, 2, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSeedSpreaderClusters(t *testing.T) {
	// Clustered data should have much smaller average nearest-pair
	// distances than uniform data of the same size.
	n := 5000
	ss := SeedSpreader(n, 2, 5)
	if ss.Len() != n {
		t.Fatalf("len %d", ss.Len())
	}
	u := UniformCube(n, 2, 5)
	avgNN := func(p geom.Points) float64 {
		s := 0.0
		cnt := 0
		for i := 0; i < 500; i++ {
			best := math.Inf(1)
			for j := 0; j < n; j += 7 {
				if i == j {
					continue
				}
				if d := p.SqDist(i, j); d < best {
					best = d
				}
			}
			s += math.Sqrt(best)
			cnt++
		}
		return s / float64(cnt)
	}
	if avgNN(ss) >= avgNN(u) {
		t.Fatal("seed spreader shows no clustering")
	}
}

func TestVisualVarShape(t *testing.T) {
	pts := VisualVar(3000, 6)
	if pts.Len() != 3000 || pts.Dim != 2 {
		t.Fatalf("shape %d x %d", pts.Len(), pts.Dim)
	}
}

func TestStatueDragonSurfaces(t *testing.T) {
	for _, gen := range []func(int, uint64) geom.Points{Statue, Dragon} {
		pts := gen(5000, 7)
		if pts.Len() != 5000 || pts.Dim != 3 {
			t.Fatalf("shape %d x %d", pts.Len(), pts.Dim)
		}
		// Surface data: the fraction of points on the convex hull must be
		// tiny relative to n (the property Fig. 9's real scans exercise).
		box := geom.BoundingBoxAll(pts)
		if box.SqDiameter() == 0 {
			t.Fatal("degenerate surface")
		}
	}
}
