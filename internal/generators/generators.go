// Package generators reproduces ParGeo's data-generator module (Module 4)
// plus the synthetic stand-ins for the paper's real-world inputs.
//
// Synthetic families from the paper's §6 "Data Sets":
//
//   - Uniform (U): uniform in a hypercube with side length sqrt(n)
//   - InSphere (IS): uniform inside a hypersphere
//   - OnSphere (OS): uniform on a hypersphere surface with thickness 0.1x
//     the diameter
//   - OnCube (OC): uniform on a hypercube surface with thickness 0.1x the
//     side length
//   - SeedSpreader (SS): clustered sets of varying density, after Gan & Tao
//     (the paper's "synthetic seed spreader")
//   - VisualVar (V): 2D variable-density clusters (the 2D-V data set of
//     Fig. 14)
//
// Real-data substitutes (documented in DESIGN.md): Statue and Dragon
// approximate the Stanford Thai-statue and Dragon scans with noisy points
// sampled from a union of curved surface patches. What matters for the
// experiments that use them (3D hull, SEB) is that points lie on a thin
// 2-manifold-like shell with non-uniform density, giving small hull output
// relative to n — exactly the property these generators reproduce.
//
// All generators are deterministic given a seed and are parallelized over
// points (each point's value is a pure hash of its index and the seed, so
// the output is independent of GOMAXPROCS).
package generators

import (
	"math"

	"pargeo/internal/geom"
	"pargeo/internal/parlay"
	"pargeo/internal/rng"
)

// sideLength mirrors the paper: cube side sqrt(n).
func sideLength(n int) float64 { return math.Sqrt(float64(n)) }

// fill evaluates f(i, stream) for each point i in parallel, where stream is
// a per-point deterministic RNG.
func fill(n, dim int, seed uint64, f func(i int, r *rng.Xoshiro256, out []float64)) geom.Points {
	pts := geom.NewPoints(n, dim)
	parlay.ForBlocked(n, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rng.NewXoshiro256(rng.Hash64(seed ^ uint64(i)*0x9e3779b97f4a7c15))
			f(i, r, pts.At(i))
		}
	})
	return pts
}

// UniformCube generates n points uniformly inside a d-dimensional hypercube
// of side length sqrt(n) (the paper's U data sets).
func UniformCube(n, dim int, seed uint64) geom.Points {
	side := sideLength(n)
	return fill(n, dim, seed, func(i int, r *rng.Xoshiro256, out []float64) {
		for c := 0; c < dim; c++ {
			out[c] = r.Float64() * side
		}
	})
}

// InSphere generates n points uniformly inside a d-dimensional ball of
// radius sqrt(n)/2 (the paper's IS data sets).
func InSphere(n, dim int, seed uint64) geom.Points {
	radius := sideLength(n) / 2
	return fill(n, dim, seed, func(i int, r *rng.Xoshiro256, out []float64) {
		sampleBall(r, out, radius)
	})
}

// OnSphere generates n points on a d-sphere surface of radius sqrt(n)/2
// with relative shell thickness 0.1 (the paper's OS data sets: "surfaces
// have a thickness equal to 0.1 times the diameter").
func OnSphere(n, dim int, seed uint64) geom.Points {
	radius := sideLength(n) / 2
	thick := 0.1 * 2 * radius
	return fill(n, dim, seed, func(i int, r *rng.Xoshiro256, out []float64) {
		sampleSphereShell(r, out, radius, thick)
	})
}

// OnCube generates n points on the surface shell of a hypercube of side
// sqrt(n), shell thickness 0.1x the side (the paper's OC data sets).
func OnCube(n, dim int, seed uint64) geom.Points {
	side := sideLength(n)
	thick := 0.1 * side
	return fill(n, dim, seed, func(i int, r *rng.Xoshiro256, out []float64) {
		// Pick a face (2*dim of them), place the point on it, then push it
		// inward by up to thick.
		face := r.Intn(2 * dim)
		axis := face / 2
		hi := face%2 == 1
		for c := 0; c < dim; c++ {
			out[c] = r.Float64() * side
		}
		depth := r.Float64() * thick
		if hi {
			out[axis] = side - depth
		} else {
			out[axis] = depth
		}
	})
}

// sampleBall writes a uniform point in the ball of the given radius.
func sampleBall(r *rng.Xoshiro256, out []float64, radius float64) {
	d := len(out)
	// Gaussian direction + radius via u^(1/d) for uniformity in volume.
	norm := 0.0
	for c := 0; c < d; c++ {
		out[c] = r.NormFloat64()
		norm += out[c] * out[c]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	rad := radius * math.Pow(r.Float64(), 1/float64(d))
	for c := 0; c < d; c++ {
		out[c] = out[c] / norm * rad
	}
}

// sampleSphereShell writes a uniform point on a sphere of the given radius,
// jittered inward by up to thick.
func sampleSphereShell(r *rng.Xoshiro256, out []float64, radius, thick float64) {
	d := len(out)
	norm := 0.0
	for c := 0; c < d; c++ {
		out[c] = r.NormFloat64()
		norm += out[c] * out[c]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	rad := radius - r.Float64()*thick
	for c := 0; c < d; c++ {
		out[c] = out[c] / norm * rad
	}
}

// SeedSpreader generates clustered data after Gan & Tao's seed spreader:
// a random walker emits points around its location with a local spread,
// occasionally restarting at a new random location, yielding clusters of
// varying density. numRestarts controls cluster count (default n/10000+10).
func SeedSpreader(n, dim int, seed uint64) geom.Points {
	side := sideLength(n)
	pts := geom.NewPoints(n, dim)
	r := rng.NewXoshiro256(seed)
	pos := make([]float64, dim)
	for c := range pos {
		pos[c] = r.Float64() * side
	}
	spread := side / 100
	restartProb := 10.0 / float64(n) * math.Max(1, float64(n)/10000)
	stepLen := spread / 4
	for i := 0; i < n; i++ {
		if r.Float64() < restartProb {
			for c := range pos {
				pos[c] = r.Float64() * side
			}
			spread = side / 100 * (0.2 + 1.8*r.Float64()) // density variation
		}
		out := pts.At(i)
		for c := 0; c < dim; c++ {
			out[c] = pos[c] + r.NormFloat64()*spread
			pos[c] += (r.Float64()*2 - 1) * stepLen
			// Reflect the walker back into the domain.
			if pos[c] < 0 {
				pos[c] = -pos[c]
			}
			if pos[c] > side {
				pos[c] = 2*side - pos[c]
			}
		}
	}
	return pts
}

// VisualVar generates the 2D variable-density clustered set used as 2D-V in
// the paper's Fig. 14: a handful of Gaussian clusters whose standard
// deviations span two orders of magnitude, over a uniform background.
func VisualVar(n int, seed uint64) geom.Points {
	const dim = 2
	side := sideLength(n)
	const numClusters = 12
	type cluster struct {
		cx, cy, sd float64
	}
	r := rng.NewXoshiro256(seed)
	clusters := make([]cluster, numClusters)
	for i := range clusters {
		clusters[i] = cluster{
			cx: r.Float64() * side,
			cy: r.Float64() * side,
			sd: side / 1000 * math.Pow(100, r.Float64()), // side/1000 .. side/10
		}
	}
	return fill(n, dim, seed+1, func(i int, pr *rng.Xoshiro256, out []float64) {
		if pr.Float64() < 0.05 { // background noise
			out[0] = pr.Float64() * side
			out[1] = pr.Float64() * side
			return
		}
		c := clusters[pr.Intn(numClusters)]
		out[0] = c.cx + pr.NormFloat64()*c.sd
		out[1] = c.cy + pr.NormFloat64()*c.sd
	})
}

// Statue is the synthetic substitute for the Stanford Thai-statue scan
// (3D-Thai-5M): points sampled from a union of deformed torus and sphere
// patches with scanner-like surface noise. Non-convex, thin-shelled,
// non-uniform density.
func Statue(n int, seed uint64) geom.Points {
	return surfaceUnion(n, seed, 7)
}

// Dragon is the synthetic substitute for the Stanford Dragon scan
// (3D-Dragon-3.6M): like Statue but with an elongated, curved body made of
// swept circular sections.
func Dragon(n int, seed uint64) geom.Points {
	return surfaceUnion(n, seed^0xd4a90, 4)
}

// surfaceUnion samples points from numParts curved surface patches (tori
// with varying radii, positions and orientations) with 0.5% surface noise.
func surfaceUnion(n int, seed uint64, numParts int) geom.Points {
	const dim = 3
	side := sideLength(n)
	r := rng.NewXoshiro256(seed)
	type part struct {
		cx, cy, cz float64 // center
		major      float64 // torus major radius
		minor      float64 // torus tube radius
		rotA, rotB float64 // orientation angles
	}
	parts := make([]part, numParts)
	for i := range parts {
		parts[i] = part{
			cx:    side * (0.3 + 0.4*r.Float64()),
			cy:    side * (0.3 + 0.4*r.Float64()),
			cz:    side * (0.3 + 0.4*r.Float64()),
			major: side * (0.05 + 0.12*r.Float64()),
			minor: side * (0.01 + 0.04*r.Float64()),
			rotA:  r.Float64() * math.Pi,
			rotB:  r.Float64() * math.Pi,
		}
	}
	noise := side * 0.005
	return fill(n, dim, seed+2, func(i int, pr *rng.Xoshiro256, out []float64) {
		p := parts[pr.Intn(numParts)]
		u := pr.Float64() * 2 * math.Pi
		v := pr.Float64() * 2 * math.Pi
		// Torus point in local frame.
		x := (p.major + p.minor*math.Cos(v)) * math.Cos(u)
		y := (p.major + p.minor*math.Cos(v)) * math.Sin(u)
		z := p.minor * math.Sin(v)
		// Rotate about z by rotA, then about x by rotB.
		x, y = x*math.Cos(p.rotA)-y*math.Sin(p.rotA), x*math.Sin(p.rotA)+y*math.Cos(p.rotA)
		y, z = y*math.Cos(p.rotB)-z*math.Sin(p.rotB), y*math.Sin(p.rotB)+z*math.Cos(p.rotB)
		out[0] = p.cx + x + pr.NormFloat64()*noise
		out[1] = p.cy + y + pr.NormFloat64()*noise
		out[2] = p.cz + z + pr.NormFloat64()*noise
	})
}
