package parlay

import "sync/atomic"

// deque is a Chase-Lev work-stealing deque of scheduler tasks (Chase & Lev,
// "Dynamic Circular Work-Stealing Deque", SPAA 2005, with the memory-order
// fixes of Lê et al., PPoPP 2013). The owning worker pushes and pops at the
// bottom (LIFO, so it executes its own most-recently-forked task next, which
// keeps the working set cache-hot); thieves steal from the top (FIFO, so a
// thief takes the oldest — and in divide-and-conquer workloads the largest —
// outstanding task, amortizing the steal over the most work).
//
// Go's sync/atomic operations are sequentially consistent, which is strictly
// stronger than the acquire/release fences the published algorithm needs, so
// the classic correctness argument carries over directly. Buffer slots are
// themselves atomic pointers because a thief may read a slot that the owner
// concurrently overwrites after index wrap-around; the CAS on top decides
// who owns the task, and a loser discards its (possibly stale) read.
type deque struct {
	top    atomic.Int64 // next index to steal from
	bottom atomic.Int64 // next index to push to
	buf    atomic.Pointer[dqBuf]
}

// dqBuf is a power-of-two circular buffer. Grown copies share task pointers
// with their predecessor; stale thieves that still hold the old buffer read
// the same logical entries there, so growth never invalidates a steal.
type dqBuf struct {
	mask  uint64
	slots []atomic.Pointer[task]
}

const dequeInitialSize = 256

func newDqBuf(size int) *dqBuf {
	return &dqBuf{mask: uint64(size - 1), slots: make([]atomic.Pointer[task], size)}
}

func (d *deque) init() { d.buf.Store(newDqBuf(dequeInitialSize)) }

// push appends t at the bottom. Only the owning worker may call push.
func (d *deque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp >= int64(len(buf.slots)) {
		buf = d.grow(buf, tp, b)
	}
	buf.slots[uint64(b)&buf.mask].Store(t)
	d.bottom.Store(b + 1)
}

// grow doubles the buffer, copying the live range [tp, b). Only the owner
// grows, and only from push, so the live range cannot move concurrently.
func (d *deque) grow(old *dqBuf, tp, b int64) *dqBuf {
	nb := newDqBuf(2 * len(old.slots))
	for i := tp; i < b; i++ {
		nb.slots[uint64(i)&nb.mask].Store(old.slots[uint64(i)&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// pop removes and returns the bottom task, or nil when the deque is empty.
// Only the owning worker may call pop. When exactly one task remains, owner
// and thieves race on top; the CAS arbitrates.
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Deque was empty: undo the decrement.
		d.bottom.Store(b + 1)
		return nil
	}
	buf := d.buf.Load()
	slot := &buf.slots[uint64(b)&buf.mask]
	t := slot.Load()
	if tp == b {
		// Last element: race thieves for it.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	if t != nil {
		// Clear the vacated slot so the completed task (and everything its
		// closure captures) becomes collectable while the deque idles. Safe:
		// a concurrent thief either already lost the CAS arbitration above
		// or, having observed bottom <= b, refused to touch index b at all.
		slot.Store(nil)
	}
	return t
}

// steal removes and returns the top task. It returns (nil, true) when the
// CAS lost to a concurrent steal or pop — the caller may retry — and
// (nil, false) when the deque is empty. Any goroutine may call steal.
func (d *deque) steal() (*task, bool) {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil, false
	}
	buf := d.buf.Load()
	slot := &buf.slots[uint64(tp)&buf.mask]
	t := slot.Load()
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil, true
	}
	// Winning the CAS grants exclusive ownership of index tp; clear it so
	// the stolen task doesn't linger in the buffer (stale readers of this
	// slot will fail their own CAS and discard what they loaded).
	slot.Store(nil)
	return t, false
}

// stealFrom steals with bounded retries on CAS contention.
func (d *deque) stealFrom() *task {
	for i := 0; i < 4; i++ {
		t, retry := d.steal()
		if t != nil {
			return t
		}
		if !retry {
			return nil
		}
	}
	return nil
}
