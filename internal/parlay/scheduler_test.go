package parlay

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// goid returns the current goroutine's id, parsed from the runtime.Stack
// header ("goroutine 123 [running]:"). Too slow for the scheduler hot path
// (see currentWorker), but fine for asserting in tests which goroutine ran
// a loop body.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for i := len("goroutine "); i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// withProcs runs f with GOMAXPROCS temporarily set to p.
func withProcs(t *testing.T, p int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// --- deque ---------------------------------------------------------------

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	var d deque
	d.init()
	var jn join
	jn.pending.Store(3)
	mk := func(id int, sink *[]int) *task {
		return &task{fn: func() { *sink = append(*sink, id) }, j: &jn}
	}
	var got []int
	d.push(mk(1, &got))
	d.push(mk(2, &got))
	d.push(mk(3, &got))
	// Thief sees the oldest task first.
	st, _ := d.steal()
	st.fn()
	// Owner sees the newest remaining task first.
	d.pop().fn()
	d.pop().fn()
	if d.pop() != nil {
		t.Fatal("deque should be empty")
	}
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestDequeGrowth(t *testing.T) {
	var d deque
	d.init()
	var jn join
	n := 4 * dequeInitialSize
	jn.pending.Store(int32(n))
	var sum int64
	for i := 0; i < n; i++ {
		i := i
		d.push(&task{fn: func() { sum += int64(i) }, j: &jn})
	}
	for {
		tk := d.pop()
		if tk == nil {
			break
		}
		tk.fn()
	}
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Fatalf("sum after growth = %d, want %d", sum, want)
	}
}

// TestDequeConcurrentStress checks the owner/thief protocol: every pushed
// task is executed exactly once, under concurrent pops and steals.
func TestDequeConcurrentStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 200000
	const thieves = 3
	var d deque
	d.init()
	var jn join
	jn.pending.Store(int32(n))
	execCount := make([]atomic.Int32, n)
	runTask := func(tk *task) {
		tk.fn()
		tk.j.finish()
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if tk := d.stealFrom(); tk != nil {
					runTask(tk)
				}
			}
		}()
	}
	// Owner: push all tasks, popping a few along the way.
	for i := 0; i < n; i++ {
		i := i
		d.push(&task{fn: func() { execCount[i].Add(1) }, j: &jn})
		if i%7 == 0 {
			if tk := d.pop(); tk != nil {
				runTask(tk)
			}
		}
	}
	for {
		tk := d.pop()
		if tk == nil && jn.done() {
			break
		}
		if tk != nil {
			runTask(tk)
		}
	}
	jn.wait()
	stop.Store(true)
	wg.Wait()
	for i := range execCount {
		if c := execCount[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

// --- nested fork-join ----------------------------------------------------

// treeSum sums [lo, hi) by nested binary fork-join through the public API.
func treeSum(lo, hi int) int64 {
	if hi-lo <= 64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}
	mid := (lo + hi) / 2
	var a, b int64
	Do(
		func() { a = treeSum(lo, mid) },
		func() { b = treeSum(mid, hi) },
	)
	return a + b
}

func TestNestedForkJoinCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		withProcs(t, p, func() {
			n := 1 << 16
			got := treeSum(0, n)
			want := int64(n) * int64(n-1) / 2
			if got != want {
				t.Fatalf("p=%d: treeSum = %d, want %d", p, got, want)
			}
		})
	}
}

// TestNestedForkJoinSkewed builds a deliberately lopsided recursion (97/3
// splits), the shape that defeated the old depth-limited fan-out, and
// checks the scheduler still computes the right answer.
func TestNestedForkJoinSkewed(t *testing.T) {
	withProcs(t, 4, func() {
		var skew func(lo, hi int) int64
		skew = func(lo, hi int) int64 {
			if hi-lo <= 64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			}
			mid := lo + (hi-lo)*97/100
			if mid <= lo {
				mid = lo + 1
			}
			var a, b int64
			Do(
				func() { a = skew(lo, mid) },
				func() { b = skew(mid, hi) },
			)
			return a + b
		}
		n := 1 << 15
		if got, want := skew(0, n), int64(n)*int64(n-1)/2; got != want {
			t.Fatalf("skewed treeSum = %d, want %d", got, want)
		}
	})
}

func TestDoManyThunks(t *testing.T) {
	withProcs(t, 4, func() {
		var cnt atomic.Int32
		var thunks []func()
		for i := 0; i < 100; i++ {
			thunks = append(thunks, func() { cnt.Add(1) })
		}
		Do(thunks...)
		if cnt.Load() != 100 {
			t.Fatalf("ran %d of 100 thunks", cnt.Load())
		}
	})
}

// --- steal path ----------------------------------------------------------

// TestStealPathDeterministic forces a steal: a worker forks a task and then
// blocks until some *other* worker has stolen and run it. Passing proves
// the fork/signal/wake/steal chain works end to end.
func TestStealPathDeterministic(t *testing.T) {
	for _, p := range []int{2, 4} {
		withProcs(t, p, func() {
			s := newSched(p)
			defer s.shutdown()
			stolen := make(chan struct{})
			rootStarted := make(chan struct{})
			ok := make(chan bool, 1)
			root := func() {
				// Running on a worker goroutine of s (the caller is blocked
				// until rootStarted, so it cannot have popped this task).
				close(rootStarted)
				Do(
					func() {
						// Hold the worker hostage: only a thief — another
						// worker or the external helper — can run the forked
						// sibling that releases us.
						select {
						case <-stolen:
							ok <- true
						case <-time.After(20 * time.Second):
							ok <- false
						}
					},
					func() { close(stolen) },
				)
			}
			// Route root onto a worker via the inject queue; the first thunk
			// runs inline on this goroutine and blocks until a worker has
			// picked root up.
			s.doThunks([]func(){func() { <-rootStarted }, root})
			if !<-ok {
				t.Fatalf("p=%d: forked task was never stolen", p)
			}
			if s.steals.Load() == 0 {
				t.Fatalf("p=%d: steal counter is zero after a forced steal", p)
			}
		})
	}
}

// TestStealsUnderSkewedLoop checks that a grain-1 loop with wildly uneven
// iteration costs actually migrates work between workers.
func TestStealsUnderSkewedLoop(t *testing.T) {
	withProcs(t, 4, func() {
		s := newSched(4)
		defer s.shutdown()
		var sum atomic.Int64
		n := 256
		s.parallelFor(n, func(b int) {
			// First blocks are ~100x more expensive.
			spin := 100
			if b < n/8 {
				spin = 10000
			}
			acc := 0
			for i := 0; i < spin; i++ {
				acc += i
			}
			sum.Add(int64(acc % 7))
			sum.Add(1)
		})
		if got := sum.Load(); got < int64(n) {
			t.Fatalf("loop dropped blocks: %d", got)
		}
		t.Logf("steals=%d tasksRun=%d", s.steals.Load(), s.tasksRun.Load())
		if s.tasksRun.Load() == 0 {
			t.Fatal("scheduler ran no tasks for a 256-block loop")
		}
	})
}

func TestPrivateSchedSingleWorker(t *testing.T) {
	withProcs(t, 2, func() {
		s := newSched(1)
		defer s.shutdown()
		var cnt atomic.Int32
		s.doThunks([]func(){
			func() { cnt.Add(1) },
			func() { cnt.Add(1) },
			func() { cnt.Add(1) },
		})
		if cnt.Load() != 3 {
			t.Fatalf("single-worker sched ran %d of 3 thunks", cnt.Load())
		}
	})
}

// --- sequential degradation ----------------------------------------------

// schedCounters snapshots the default scheduler's activity (zero if it has
// never started).
func schedCounters() (steals, tasks int64) {
	if s := defaultSchedPtr.Load(); s != nil {
		return s.steals.Load(), s.tasksRun.Load()
	}
	return 0, 0
}

// TestGOMAXPROCS1Bypass: with one processor, every primitive must take its
// sequential path — the scheduler sees no tasks at all.
func TestGOMAXPROCS1Bypass(t *testing.T) {
	withProcs(t, 1, func() {
		steals0, tasks0 := schedCounters()
		n := 100000
		if got := SumInt(n, 0, func(i int) int { return i }); got != n*(n-1)/2 {
			t.Fatalf("SumInt = %d", got)
		}
		a := make([]int, 50000)
		for i := range a {
			a[i] = (i * 2654435761) & 0xffff
		}
		Sort(a, func(x, y int) bool { return x < y })
		if !sort.IntsAreSorted(a) {
			t.Fatal("Sort failed under GOMAXPROCS=1")
		}
		if got := treeSum(0, 1<<14); got != int64(1<<14)*int64(1<<14-1)/2 {
			t.Fatalf("treeSum = %d", got)
		}
		ScanInts(a)
		steals1, tasks1 := schedCounters()
		if steals0 != steals1 || tasks0 != tasks1 {
			t.Fatalf("scheduler was engaged under GOMAXPROCS=1: steals %d->%d tasks %d->%d",
				steals0, steals1, tasks0, tasks1)
		}
	})
}

// TestBelowGrainRunsInline: an input at or below the grain must run on the
// calling goroutine, without creating tasks.
func TestBelowGrainRunsInline(t *testing.T) {
	withProcs(t, 4, func() {
		caller := goid()
		var bodyGoid uint64
		ForBlocked(100, 200, func(lo, hi int) { bodyGoid = goid() })
		if bodyGoid != caller {
			t.Fatalf("below-grain loop body ran on goroutine %d, caller is %d", bodyGoid, caller)
		}
		_, tasks0 := schedCounters()
		For(1000, 2048, func(i int) {})
		Reduce(1000, 2048, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
		_, tasks1 := schedCounters()
		if tasks0 != tasks1 {
			t.Fatalf("below-grain primitives created %d tasks", tasks1-tasks0)
		}
	})
}

// --- primitives under varying worker counts ------------------------------

func TestPrimitivesAcrossProcs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	src := make([]int, 120001)
	for i := range src {
		src[i] = r.Intn(1 << 20)
	}
	for _, p := range []int{1, 2, 4, runtime.NumCPU() + 2} {
		withProcs(t, p, func() {
			n := len(src)
			if got, want := SumInt(n, 0, func(i int) int { return src[i] % 16 }), func() int {
				s := 0
				for _, v := range src {
					s += v % 16
				}
				return s
			}(); got != want {
				t.Fatalf("p=%d: SumInt = %d, want %d", p, got, want)
			}
			a := append([]int(nil), src...)
			Sort(a, func(x, y int) bool { return x < y })
			if !sort.IntsAreSorted(a) {
				t.Fatalf("p=%d: Sort failed", p)
			}
			idx := PackIndex(n, func(i int) bool { return src[i]%3 == 0 })
			want := 0
			for _, v := range src {
				if v%3 == 0 {
					want++
				}
			}
			if len(idx) != want {
				t.Fatalf("p=%d: PackIndex len = %d, want %d", p, len(idx), want)
			}
			hit := make([]atomic.Int32, 30000)
			For(len(hit), 1, func(i int) { hit[i].Add(1) })
			for i := range hit {
				if hit[i].Load() != 1 {
					t.Fatalf("p=%d: grain-1 For visited index %d %d times", p, i, hit[i].Load())
				}
			}
		})
	}
}

// TestExternalCallersConcurrent hammers the scheduler from many non-worker
// goroutines at once (the inject-queue path).
func TestExternalCallersConcurrent(t *testing.T) {
	withProcs(t, 4, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				n := 1 << 13
				if got, want := treeSum(0, n), int64(n)*int64(n-1)/2; got != want {
					t.Errorf("goroutine %d: treeSum = %d, want %d", g, got, want)
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestDefaultSchedGrowsWithGOMAXPROCS: the in-process thread sweeps of
// cmd/pargeo-bench raise GOMAXPROCS between measurements; the default
// scheduler must grow its pool to match instead of staying pinned at the
// size of its first use.
func TestDefaultSchedGrowsWithGOMAXPROCS(t *testing.T) {
	withProcs(t, 2, func() {
		For(100000, 1024, func(i int) {}) // engage the default scheduler
		s := defaultSchedPtr.Load()
		if s == nil {
			t.Fatal("default scheduler did not start")
		}
		before := len(s.workerList())
		if before < 2 {
			t.Fatalf("expected >= 2 workers, got %d", before)
		}
		runtime.GOMAXPROCS(6)
		For(100000, 1024, func(i int) {})
		if got := len(s.workerList()); got < 6 {
			t.Fatalf("pool did not grow with GOMAXPROCS: %d workers, want >= 6", got)
		}
		// Correctness after growth, including on the new workers.
		if got, want := treeSum(0, 1<<15), int64(1<<15)*int64(1<<15-1)/2; got != want {
			t.Fatalf("treeSum after growth = %d, want %d", got, want)
		}
	})
}

// TestWorkersParkWhenIdle: shortly after a burst of work, all workers of a
// private scheduler must be parked (no busy-spinning).
func TestWorkersParkWhenIdle(t *testing.T) {
	withProcs(t, 4, func() {
		s := newSched(3)
		defer s.shutdown()
		var sink atomic.Int64
		s.parallelFor(64, func(b int) { sink.Add(int64(b)) })
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if int(s.nIdle.Load()) == len(s.workerList()) {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("workers never parked: %d of %d idle", s.nIdle.Load(), len(s.workerList()))
	})
}

// TestShutdownUnregistersWorkers: after shutdown, the goid registry must not
// leak worker entries.
func TestShutdownUnregistersWorkers(t *testing.T) {
	s := newSched(2)
	s.shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		leaked := false
		workerMap.Range(func(_, v any) bool {
			if v.(*worker).s == s {
				leaked = true
				return false
			}
			return true
		})
		if !leaked {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("shutdown left workers registered")
}
