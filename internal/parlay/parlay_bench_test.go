package parlay

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// oldForBlocked is the seed's pre-scheduler implementation — a flat, bounded
// goroutine fan-out (min(4·P, n/grain) blocks, one goroutine per block) —
// kept here as the benchmark baseline so the scheduler's uniform-load parity
// and skewed-load gains stay measurable.
func oldForBlocked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := NumWorkers()
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	nblocks := min(4*p, (n+grain-1)/grain)
	if nblocks <= 1 {
		body(0, n)
		return
	}
	blockSize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += blockSize {
		hi := min(lo+blockSize, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// oldDo is the seed's Do: one goroutine per extra thunk.
func oldDo(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 || NumWorkers() == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	for _, t := range thunks[1:] {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	thunks[0]()
	wg.Wait()
}

// spinWork burns deterministic CPU proportional to units.
func spinWork(units int) int64 {
	var acc int64
	for i := 0; i < units; i++ {
		acc += int64(i ^ (i >> 3))
	}
	return acc
}

// skewedUnits concentrates ~90% of the loop's total work in the first 1/16
// of the index space — the shape of a kd-tree build over clustered points,
// which static block partitioning handles worst.
func skewedUnits(i, n int) int {
	if i < n/16 {
		return 2000
	}
	return 15
}

// BenchmarkForUniform{Sched,OldFanout}: parity check on an even load.
func BenchmarkForUniformSched(b *testing.B) {
	n := 1 << 20
	dst := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForBlocked(n, 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dst[j] = int64(j) * 3
			}
		})
	}
}

func BenchmarkForUniformOldFanout(b *testing.B) {
	n := 1 << 20
	dst := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oldForBlocked(n, 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dst[j] = int64(j) * 3
			}
		})
	}
}

// BenchmarkForSkewed{Sched,OldFanout}: the load-balancing case the
// scheduler exists for.
func BenchmarkForSkewedSched(b *testing.B) {
	n := 1 << 14
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForBlocked(n, 64, func(lo, hi int) {
			var acc int64
			for j := lo; j < hi; j++ {
				acc += spinWork(skewedUnits(j, n))
			}
			sink.Add(acc)
		})
	}
	_ = sink.Load()
}

func BenchmarkForSkewedOldFanout(b *testing.B) {
	n := 1 << 14
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oldForBlocked(n, 64, func(lo, hi int) {
			var acc int64
			for j := lo; j < hi; j++ {
				acc += spinWork(skewedUnits(j, n))
			}
			sink.Add(acc)
		})
	}
	_ = sink.Load()
}

// BenchmarkNestedDoSkewedTree{Sched,OldFanout}: a lopsided 90/10
// divide-and-conquer recursion. The old implementation needs a hand-tuned
// fork budget (unbounded goroutine forking on a skewed tree spawns one
// goroutine per spine node), so past the budget the deep skinny spine goes
// sequential; the scheduler forks all the way down to the leaf grain and
// thieves pick up the spine.
func benchSkewTree(b *testing.B, do func(...func()), forkBudget int, n int) {
	var rec func(lo, hi, depth int) int64
	rec = func(lo, hi, depth int) int64 {
		if hi-lo <= 4096 { // sequential cutoff, matching the library's real grains
			return spinWork(hi - lo)
		}
		mid := lo + (hi-lo)*9/10
		var x, y int64
		if forkBudget > 0 && depth >= forkBudget {
			x = rec(lo, mid, depth+1)
			y = rec(mid, hi, depth+1)
		} else {
			do(
				func() { x = rec(lo, mid, depth+1) },
				func() { y = rec(mid, hi, depth+1) },
			)
		}
		return x + y
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += rec(0, n, 0)
	}
	_ = sink
}

func BenchmarkNestedDoSkewedTreeSched(b *testing.B) {
	benchSkewTree(b, Do, 0, 1<<20) // no fork budget: scheduler needs none
}

func BenchmarkNestedDoSkewedTreeOldFanout(b *testing.B) {
	benchSkewTree(b, oldDo, 7, 1<<20) // the old scheme's hand-tuned budget
}

// BenchmarkDoForkJoinOverhead measures one fork-join of two empty thunks.
func BenchmarkDoForkJoinOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Do(func() {}, func() {})
	}
}

func BenchmarkDoForkJoinOverheadOldFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oldDo(func() {}, func() {})
	}
}

// BenchmarkCurrentWorker prices the worker-identity lookup paid once per
// scheduler entry (a profiler-label pointer read plus, on worker
// goroutines, one sync.Map hit).
func BenchmarkCurrentWorker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if currentWorker() != nil {
			b.Fatal("bench goroutine must not be a worker")
		}
	}
}

// BenchmarkGoroutineID prices the runtime.Stack-based lookup the scheduler
// deliberately avoids (kept for comparison).
func BenchmarkGoroutineID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = goid()
	}
}

func BenchmarkFor(b *testing.B) {
	n := 1 << 20
	dst := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(n, 0, func(j int) { dst[j] = int64(j) * 3 })
	}
}

func BenchmarkReduceSum(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumInt(n, 0, func(j int) int { return j & 7 })
	}
}

func BenchmarkScanInts(b *testing.B) {
	n := 1 << 20
	in := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range in {
			in[j] = j & 15
		}
		ScanInts(in)
	}
}

func BenchmarkPackIndex(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndex(n, func(j int) bool { return j%3 == 0 })
	}
}

func BenchmarkSortRandom(b *testing.B) {
	n := 1 << 18
	src := make([]int, n)
	for i := range src {
		src[i] = (i * 2654435761) & 0xffffff
	}
	work := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		Sort(work, func(a, c int) bool { return a < c })
	}
}

func BenchmarkStdlibSortBaseline(b *testing.B) {
	n := 1 << 18
	src := make([]int, n)
	for i := range src {
		src[i] = (i * 2654435761) & 0xffffff
	}
	work := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sort.Ints(work)
	}
}

func BenchmarkRadixSortPairs(b *testing.B) {
	n := 1 << 18
	srcK := make([]uint64, n)
	srcV := make([]int32, n)
	for i := range srcK {
		srcK[i] = uint64(i*2654435761) & 0xffffffffff
		srcV[i] = int32(i)
	}
	k := make([]uint64, n)
	v := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, srcK)
		copy(v, srcV)
		SortPairs(k, v)
	}
}

func BenchmarkWriteMinContended(b *testing.B) {
	var slot int64 = 1 << 62
	b.RunParallel(func(pb *testing.PB) {
		i := int64(1 << 61)
		for pb.Next() {
			WriteMin(&slot, i)
			i--
		}
	})
}

func BenchmarkFindFirst(b *testing.B) {
	n := 1 << 20
	target := n / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindFirst(n, func(j int) bool { return j >= target })
	}
}
