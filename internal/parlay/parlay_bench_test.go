package parlay

import (
	"sort"
	"testing"
)

func BenchmarkFor(b *testing.B) {
	n := 1 << 20
	dst := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(n, 0, func(j int) { dst[j] = int64(j) * 3 })
	}
}

func BenchmarkReduceSum(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumInt(n, 0, func(j int) int { return j & 7 })
	}
}

func BenchmarkScanInts(b *testing.B) {
	n := 1 << 20
	in := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range in {
			in[j] = j & 15
		}
		ScanInts(in)
	}
}

func BenchmarkPackIndex(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndex(n, func(j int) bool { return j%3 == 0 })
	}
}

func BenchmarkSortRandom(b *testing.B) {
	n := 1 << 18
	src := make([]int, n)
	for i := range src {
		src[i] = (i * 2654435761) & 0xffffff
	}
	work := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		Sort(work, func(a, c int) bool { return a < c })
	}
}

func BenchmarkStdlibSortBaseline(b *testing.B) {
	n := 1 << 18
	src := make([]int, n)
	for i := range src {
		src[i] = (i * 2654435761) & 0xffffff
	}
	work := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sort.Ints(work)
	}
}

func BenchmarkRadixSortPairs(b *testing.B) {
	n := 1 << 18
	srcK := make([]uint64, n)
	srcV := make([]int32, n)
	for i := range srcK {
		srcK[i] = uint64(i*2654435761) & 0xffffffffff
		srcV[i] = int32(i)
	}
	k := make([]uint64, n)
	v := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, srcK)
		copy(v, srcV)
		SortPairs(k, v)
	}
}

func BenchmarkWriteMinContended(b *testing.B) {
	var slot int64 = 1 << 62
	b.RunParallel(func(pb *testing.PB) {
		i := int64(1 << 61)
		for pb.Next() {
			WriteMin(&slot, i)
			i--
		}
	})
}

func BenchmarkFindFirst(b *testing.B) {
	n := 1 << 20
	target := n / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindFirst(n, func(j int) bool { return j >= target })
	}
}
