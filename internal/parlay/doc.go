// Package parlay is this library's substitute for ParlayLib, the fork-join
// parallel-primitives toolkit that ParGeo builds on. It provides the small
// set of primitives every ParGeo module uses:
//
//   - nested fork-join (Do) backed by a work-stealing scheduler
//   - parallel loops with grain control (For, ForBlocked)
//   - parallel reductions (Reduce, MinIndexFloat, MaxIndexFloat)
//   - parallel prefix sums (ScanInts)
//   - parallel filtering/packing (Pack, PackIndex, Filter)
//   - parallel comparison sort (Sort) and radix sort for 64-bit keys (SortPairs)
//   - atomic priority writes (WriteMin/WriteMax) — the "reservation"
//     primitive from the paper's convex-hull algorithm
//   - deterministic random permutation (Shuffle)
//
// # The scheduler
//
// ParlayLib runs on a Cilk-style work-stealing scheduler with nested
// fork-join. This package implements the same discipline natively
// (scheduler.go, deque.go) instead of fanning out a fixed number of
// goroutines per call site, so skewed workloads — a kd-tree over clustered
// points, a merge sort whose pivots land badly — rebalance dynamically
// instead of waiting on the unluckiest block.
//
// The moving parts:
//
//   - One long-lived worker goroutine per GOMAXPROCS processor, started
//     lazily on the first parallel call and parked (idle, costing nothing)
//     whenever there is no work.
//
//   - One Chase-Lev deque of task closures per worker. The owner pushes and
//     pops at the bottom in LIFO order, so the task it just forked — whose
//     data is cache-hot — runs next; thieves steal from the top in FIFO
//     order, so a thief takes the oldest and (in divide-and-conquer trees)
//     largest outstanding task, amortizing each steal over maximal work.
//
//   - Randomized stealing: an idle worker sweeps victims in random order,
//     then parks on an idle stack. Every fork wakes one parked worker
//     (a single atomic load when nobody is parked, so a busy system pays
//     nothing for the wake protocol).
//
//   - Nested fork-join: Do(a, b) on a worker pushes b, runs a inline, and
//     then *helps* — pops b back (the common case: no thief arrived, zero
//     synchronization beyond one CAS-free pop) or, if b was stolen, runs
//     other outstanding tasks until the join resolves, parking only when
//     the whole scheduler has nothing left to do. Divide-and-conquer code
//     therefore nests Do freely, with no hand-tuned depth limits; the only
//     tuning knob is the leaf grain at which recursion goes sequential.
//
//   - Calls from goroutines outside the pool (the user's goroutine) submit
//     forks to an injection queue that workers drain, run the first thunk
//     inline, and help by stealing — any goroutine may steal; only push
//     and pop are owner-only.
//
// # Sequential degradation
//
// Every primitive degrades to its plain sequential form when the input is
// at or below the grain size or when GOMAXPROCS is 1: no tasks are created,
// no worker is woken, and the scheduler is never even started in a
// single-processor process. Single-thread runs therefore pay (almost)
// nothing for parallel readiness, which is the same guarantee ParlayLib
// makes and which the reproduction's sequential baselines rely on.
//
// For where this package sits in the whole system — every layer above,
// from the trees to the serving engine to the network server, funnels
// its parallelism through here — see docs/ARCHITECTURE.md at the
// repository root.
package parlay
