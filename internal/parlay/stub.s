// Empty assembly file. Its presence lets scheduler.go declare a body-less
// function (profLabelPtr, resolved via go:linkname) without the compiler's
// -complete check rejecting the package.
