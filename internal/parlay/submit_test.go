package parlay

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSubmitRunsAll: every submitted thunk runs exactly once before Wait
// returns, from both external goroutines and (nested) worker goroutines.
func TestSubmitRunsAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256} {
		var ran atomic.Int64
		thunks := make([]func(), n)
		for i := range thunks {
			thunks[i] = func() { ran.Add(1) }
		}
		Submit(thunks).Wait()
		if got := ran.Load(); got != int64(n) {
			t.Fatalf("external submit n=%d: ran %d", n, got)
		}
	}
	// Nested: submit from inside a scheduler task.
	var ran atomic.Int64
	Do(func() {
		thunks := make([]func(), 64)
		for i := range thunks {
			thunks[i] = func() { ran.Add(1) }
		}
		Submit(thunks).Wait()
	}, func() {})
	if got := ran.Load(); got != 64 {
		t.Fatalf("nested submit: ran %d", got)
	}
}

// TestSubmitAsync: Submit must return before the thunks complete (the
// submitter keeps working between Submit and Wait); Wait then observes all
// effects.
func TestSubmitAsync(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("needs a worker to run the batch")
	}
	gate := make(chan struct{})
	var ran atomic.Int64
	h := Submit([]func(){func() { <-gate; ran.Add(1) }})
	// If Submit ran the thunk inline it would have deadlocked on the gate.
	close(gate)
	h.Wait()
	if ran.Load() != 1 {
		t.Fatal("thunk did not run")
	}
}

// TestSubmitConcurrentBatches: many goroutines submitting and waiting on
// independent batches simultaneously (the engine combiner's usage shape).
func TestSubmitConcurrentBatches(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				var ran atomic.Int64
				thunks := make([]func(), 8)
				for i := range thunks {
					thunks[i] = func() { ran.Add(1) }
				}
				Submit(thunks).Wait()
				if ran.Load() != 8 {
					t.Error("batch incomplete")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSubmitSeqMode: with GOMAXPROCS=1 the thunks run inside Wait on the
// calling goroutine, never touching the scheduler.
func TestSubmitSeqMode(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	ran := 0
	h := Submit([]func(){func() { ran++ }, func() { ran++ }})
	if ran != 0 {
		t.Fatal("seq-mode thunks must defer to Wait")
	}
	h.Wait()
	if ran != 2 {
		t.Fatalf("ran %d", ran)
	}
}
