package parlay

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	_ "unsafe" // for go:linkname (currentWorker's label-pointer read)
)

// This file implements the work-stealing fork-join scheduler described in
// doc.go: a pool of long-lived worker goroutines, one Chase-Lev deque per
// worker, randomized stealing with idle parking, and a nested Do/fork-join
// protocol in which waiters help execute outstanding tasks instead of
// blocking while work remains.

// task is one schedulable unit: a closure plus the join it reports to.
type task struct {
	fn func()
	j  *join
}

func (t *task) exec() {
	t.fn()
	t.j.finish()
}

// join counts outstanding forked tasks of one Do / parallel-loop call. The
// completion channel is allocated lazily, only when a waiter actually has to
// block (the common case — the owner pops its own forks back — never pays
// for it).
type join struct {
	pending atomic.Int32
	donec   atomic.Pointer[chan struct{}]
}

func (j *join) done() bool { return j.pending.Load() == 0 }

func (j *join) finish() {
	if j.pending.Add(-1) == 0 {
		if cp := j.donec.Load(); cp != nil {
			close(*cp)
		}
	}
}

// wait blocks until the join completes. The double-check after installing
// the channel closes the race with a concurrent finish that loaded a nil
// channel pointer.
func (j *join) wait() {
	if j.done() {
		return
	}
	cp := j.donec.Load()
	if cp == nil {
		ch := make(chan struct{})
		if j.donec.CompareAndSwap(nil, &ch) {
			cp = &ch
		} else {
			cp = j.donec.Load()
		}
	}
	if j.done() {
		return
	}
	<-*cp
}

// waitc returns the (lazily created) completion channel for use in select.
func (j *join) waitc() chan struct{} {
	cp := j.donec.Load()
	if cp == nil {
		ch := make(chan struct{})
		if j.donec.CompareAndSwap(nil, &ch) {
			cp = &ch
		} else {
			cp = j.donec.Load()
		}
	}
	return *cp
}

// worker is one long-lived scheduler goroutine and its deque.
type worker struct {
	s      *sched
	id     int
	dq     deque
	parkc  chan struct{} // capacity 1; a token means "work may be available"
	rng    uint64
	parked bool // guarded by s.idleMu: currently on the idle stack
}

// sched is a work-stealing scheduler instance. The package-level primitives
// use a lazily started default instance sized to GOMAXPROCS (and grown if
// GOMAXPROCS is later raised — benchmark drivers sweep it in-process);
// tests construct private instances to pin the worker count.
type sched struct {
	// workersP holds the immutable worker slice; grow() swaps in a longer
	// copy so steal sweeps can read it without locks. Workers are only ever
	// added: a GOMAXPROCS decrease just leaves the extras parked (the Go
	// runtime caps running threads at the new value anyway).
	workersP atomic.Pointer[[]*worker]
	growMu   sync.Mutex
	stop     chan struct{}

	// inject receives tasks from goroutines that are not workers (callers
	// entering the scheduler from outside). Workers drain it when their own
	// deque is empty.
	injectMu  sync.Mutex
	inject    []*task
	injectLen atomic.Int32

	// idle is a stack of parked workers. nIdle mirrors len(idle) so the
	// fork hot path can skip the lock when nobody is parked.
	idleMu sync.Mutex
	idle   []*worker
	nIdle  atomic.Int32

	extRng atomic.Uint64 // victim seed source for non-worker helpers

	// Statistics, read by tests and benchmarks.
	steals   atomic.Int64
	tasksRun atomic.Int64
}

// workerMap maps a worker goroutine's profiler-label pointer -> *worker for
// the goroutines owned by any scheduler instance. It is written once per
// worker lifetime and read on every scheduler entry, so sync.Map's
// read-mostly optimization fits.
var workerMap sync.Map

// profLabelPtr returns the current goroutine's pprof label-set pointer by
// linking against the runtime's accessor (the hook runtime/pprof itself
// uses). Each worker installs a private label set at startup, so this
// pointer identifies the worker in a few nanoseconds — Go exposes no other
// cheap goroutine-identity primitive (parsing runtime.Stack costs ~2µs,
// three orders of magnitude more; see BenchmarkCurrentWorker). Goroutines
// that never set labels return 0, making the common external-caller check
// a single load.
//
//go:linkname profLabelPtr runtime/pprof.runtime_getProfLabel
func profLabelPtr() uintptr

// setWorkerLabel gives the calling goroutine a fresh, unique label set and
// returns its pointer for registration in workerMap. The label also tags
// the workers usefully in CPU profiles.
func setWorkerLabel() uintptr {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("parlay", "worker")))
	return profLabelPtr()
}

// currentWorker returns the scheduler worker running this goroutine, or nil
// for goroutines outside every scheduler. A user task that overwrites its
// goroutine labels merely demotes nested calls to the (slower but correct)
// external path.
func currentWorker() *worker {
	p := profLabelPtr()
	if p == 0 {
		return nil
	}
	if v, ok := workerMap.Load(p); ok {
		return v.(*worker)
	}
	return nil
}

// newSched starts a scheduler with p workers. The workers park immediately
// and cost nothing until work arrives.
func newSched(p int) *sched {
	if p < 1 {
		p = 1
	}
	s := &sched{stop: make(chan struct{})}
	s.extRng.Store(0x9e3779b97f4a7c15)
	empty := make([]*worker, 0, p)
	s.workersP.Store(&empty)
	s.grow(p)
	return s
}

// workerList returns the current worker set (immutable snapshot).
func (s *sched) workerList() []*worker { return *s.workersP.Load() }

// grow extends the pool to p workers. New workers are registered in
// workerMap before the new slice is published, so a task can never run on a
// worker that currentWorker cannot identify.
func (s *sched) grow(p int) {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	cur := s.workerList()
	if len(cur) >= p {
		return
	}
	all := make([]*worker, len(cur), p)
	copy(all, cur)
	var ready sync.WaitGroup
	for i := len(cur); i < p; i++ {
		w := &worker{s: s, id: i, parkc: make(chan struct{}, 1), rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		w.dq.init()
		all = append(all, w)
		ready.Add(1)
		go w.loop(&ready)
	}
	ready.Wait()
	s.workersP.Store(&all)
}

// shutdown stops the workers. Only tests call this; the default scheduler
// lives for the process. It must not be called while a fork-join operation
// on this scheduler is still in flight.
func (s *sched) shutdown() {
	close(s.stop)
}

var (
	defaultSchedOnce sync.Once
	defaultSchedPtr  atomic.Pointer[sched]
)

// defaultSched returns the process-wide scheduler, starting it on first use
// with GOMAXPROCS workers and growing the pool if GOMAXPROCS has been
// raised since (benchmark drivers sweep thread counts in one process).
// Callers have already established that more than one worker is available.
func defaultSched() *sched {
	p := runtime.GOMAXPROCS(0)
	s := defaultSchedPtr.Load()
	if s == nil {
		defaultSchedOnce.Do(func() {
			defaultSchedPtr.Store(newSched(runtime.GOMAXPROCS(0)))
		})
		s = defaultSchedPtr.Load()
	}
	if len(s.workerList()) < p {
		s.grow(p)
	}
	return s
}

// seqMode reports whether parallel primitives must degrade to their
// sequential form because only one processor is available. Checked on every
// entry so that a GOMAXPROCS(1) process never touches the scheduler at all.
func seqMode() bool { return runtime.GOMAXPROCS(0) == 1 }

func (w *worker) xrand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// loop is the worker main loop: drain own deque, then the inject queue,
// then steal; park when a full sweep finds nothing.
func (w *worker) loop(ready *sync.WaitGroup) {
	key := setWorkerLabel()
	workerMap.Store(key, w)
	defer workerMap.Delete(key)
	ready.Done()
	s := w.s
	for {
		if t := w.next(); t != nil {
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		// Publish idleness, then re-check: a forker that missed us on its
		// nIdle fast path must find either our idle entry or our re-check.
		s.idleMu.Lock()
		s.idle = append(s.idle, w)
		w.parked = true
		s.nIdle.Add(1)
		s.idleMu.Unlock()
		if t := w.next(); t != nil {
			w.cancelPark()
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		select {
		case <-w.parkc:
			w.cancelPark() // tolerate spurious tokens; re-sweep for work
		case <-s.stop:
			w.cancelPark()
			return
		}
	}
}

// next finds a runnable task: own deque (LIFO), inject queue, then a
// randomized steal sweep over the other workers.
func (w *worker) next() *task {
	if t := w.dq.pop(); t != nil {
		return t
	}
	if t := w.s.popInject(); t != nil {
		return t
	}
	return w.trySteal(2 * len(w.s.workerList()))
}

func (w *worker) trySteal(attempts int) *task {
	ws := w.s.workerList()
	if len(ws) < 2 {
		return nil
	}
	for a := 0; a < attempts; a++ {
		v := ws[w.xrand()%uint64(len(ws))]
		if v == w {
			continue
		}
		if t := v.dq.stealFrom(); t != nil {
			w.s.steals.Add(1)
			return t
		}
	}
	return nil
}

// cancelPark removes the worker from the idle stack if it is still there;
// if a signaler already removed it, the pending wake token (if any) is
// drained so a later park is not spuriously cut short.
func (w *worker) cancelPark() {
	s := w.s
	s.idleMu.Lock()
	if w.parked {
		for i, x := range s.idle {
			if x == w {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				break
			}
		}
		w.parked = false
		s.nIdle.Add(-1)
		s.idleMu.Unlock()
		return
	}
	s.idleMu.Unlock()
	select {
	case <-w.parkc:
	default:
	}
}

// signal wakes one parked worker, if any. Called after every fork; the
// common case (everyone busy) is a single atomic load.
func (s *sched) signal() {
	if s.nIdle.Load() == 0 {
		return
	}
	s.idleMu.Lock()
	n := len(s.idle)
	if n == 0 {
		s.idleMu.Unlock()
		return
	}
	w := s.idle[n-1]
	s.idle = s.idle[:n-1]
	w.parked = false
	s.nIdle.Add(-1)
	s.idleMu.Unlock()
	select {
	case w.parkc <- struct{}{}:
	default:
	}
}

// spawn pushes t onto the worker's own deque and wakes a parked worker to
// come steal it.
func (w *worker) spawn(t *task) {
	w.dq.push(t)
	w.s.signal()
}

func (s *sched) injectTasks(ts []*task) {
	s.injectMu.Lock()
	s.inject = append(s.inject, ts...)
	s.injectLen.Store(int32(len(s.inject)))
	s.injectMu.Unlock()
	for range ts {
		if s.nIdle.Load() == 0 {
			break
		}
		s.signal()
	}
}

func (s *sched) popInject() *task {
	if s.injectLen.Load() == 0 {
		return nil
	}
	s.injectMu.Lock()
	n := len(s.inject)
	if n == 0 {
		s.injectMu.Unlock()
		return nil
	}
	t := s.inject[n-1]
	s.inject[n-1] = nil
	s.inject = s.inject[:n-1]
	s.injectLen.Store(int32(n - 1))
	s.injectMu.Unlock()
	return t
}

// stealAny is the steal sweep for non-worker helpers.
func (s *sched) stealAny(r *uint64) *task {
	ws := s.workerList()
	for a := 0; a < 2*len(ws); a++ {
		x := *r
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		*r = x
		if t := ws[x%uint64(len(ws))].dq.stealFrom(); t != nil {
			s.steals.Add(1)
			return t
		}
	}
	return nil
}

// do is the fork-join entry point on a worker goroutine: fork all thunks
// but the first onto the own deque, run the first inline, then help until
// the forks have completed (they are usually popped right back, unexecuted,
// in LIFO order — the work-first discipline that makes nested Do cheap).
func (w *worker) do(thunks []func()) {
	var jn join
	jn.pending.Store(int32(len(thunks) - 1))
	for i := len(thunks) - 1; i >= 1; i-- {
		w.spawn(&task{fn: thunks[i], j: &jn})
	}
	thunks[0]()
	w.helpUntil(&jn)
}

// helpUntil runs tasks — own deque first, then inject, then steals — until
// jn completes. When no task is available anywhere, the worker parks on the
// idle stack with the join's completion channel armed, so it wakes for
// whichever comes first: new stealable work or the join finishing. Helping
// may execute unrelated tasks on this goroutine's stack; that is the
// standard work-stealing trade (Cilk, parlay, rayon all make it) and keeps
// every processor busy while any work exists.
func (w *worker) helpUntil(jn *join) {
	s := w.s
	for !jn.done() {
		if t := w.next(); t != nil {
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		s.idleMu.Lock()
		s.idle = append(s.idle, w)
		w.parked = true
		s.nIdle.Add(1)
		s.idleMu.Unlock()
		// Install the completion channel BEFORE the final done re-check:
		// a finisher that misses the channel is then guaranteed to have
		// decremented pending before our re-check, so we never block on a
		// channel nobody will close.
		donec := jn.waitc()
		if jn.done() {
			w.cancelPark()
			return
		}
		if t := w.next(); t != nil {
			w.cancelPark()
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		select {
		case <-w.parkc:
			w.cancelPark()
		case <-donec:
			w.cancelPark()
			return
		}
	}
}

// externalDo is Do for goroutines outside the scheduler: the forks go to
// the inject queue, the caller runs the first thunk inline and then helps
// via the inject queue and steals (any goroutine may steal), blocking on
// the join only when no work is left anywhere.
func (s *sched) externalDo(thunks []func()) {
	var jn join
	jn.pending.Store(int32(len(thunks) - 1))
	ts := make([]*task, 0, len(thunks)-1)
	for i := len(thunks) - 1; i >= 1; i-- {
		ts = append(ts, &task{fn: thunks[i], j: &jn})
	}
	s.injectTasks(ts)
	thunks[0]()
	s.externalHelp(&jn)
}

func (s *sched) externalHelp(jn *join) {
	r := s.extRng.Add(0x9e3779b97f4a7c15)
	for !jn.done() {
		if t := s.popInject(); t != nil {
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		if t := s.stealAny(&r); t != nil {
			s.tasksRun.Add(1)
			t.exec()
			continue
		}
		jn.wait()
		return
	}
}

// doThunks dispatches a fork-join on this scheduler from any goroutine.
func (s *sched) doThunks(thunks []func()) {
	if w := currentWorker(); w != nil && w.s == s {
		w.do(thunks)
		return
	}
	s.externalDo(thunks)
}

// parallelFor runs runBlock(0..nblocks-1) on this scheduler under a single
// join: block 0 runs inline on the caller, the rest are forked. A worker
// caller pushes them onto its own deque in reverse so it pops them back in
// ascending block order (cache-friendly sequential sweep) while thieves
// steal descending from the far end.
func (s *sched) parallelFor(nblocks int, runBlock func(b int)) {
	var jn join
	jn.pending.Store(int32(nblocks - 1))
	if w := currentWorker(); w != nil && w.s == s {
		for b := nblocks - 1; b >= 1; b-- {
			b := b
			w.spawn(&task{fn: func() { runBlock(b) }, j: &jn})
		}
		runBlock(0)
		w.helpUntil(&jn)
		return
	}
	ts := make([]*task, 0, nblocks-1)
	for b := nblocks - 1; b >= 1; b-- {
		b := b
		ts = append(ts, &task{fn: func() { runBlock(b) }, j: &jn})
	}
	s.injectTasks(ts)
	runBlock(0)
	s.externalHelp(&jn)
}
