package parlay

import (
	"math"
	"sort"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// sortSeqThreshold is the subproblem size below which parallel merge sort
// falls back to the standard library's introsort. Below this size the
// fork-join cost dominates any parallel gain.
const sortSeqThreshold = 8192

// Sort sorts s in parallel using a (non-stable) parallel merge sort:
// recursively sort halves in parallel, then merge the halves in parallel by
// splitting the merge at the median of the larger half (the classic
// CLRS/Cilk parallel merge). Work Θ(n log n), span Θ(log³ n). The recursion
// forks through the work-stealing scheduler, so it needs no depth limit:
// the only cutoff is the sequential grain.
func Sort[T any](s []T, less func(a, b T) bool) {
	n := len(s)
	if n <= sortSeqThreshold || seqMode() {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	buf := make([]T, n)
	mergeSort(s, buf, less, false)
}

// mergeSort sorts src; if toBuf, the sorted output lands in buf, otherwise
// in src. Alternating the destination avoids a copy per level.
func mergeSort[T any](src, buf []T, less func(a, b T) bool, toBuf bool) {
	n := len(src)
	if n <= sortSeqThreshold {
		sort.Slice(src, func(i, j int) bool { return less(src[i], src[j]) })
		if toBuf {
			copy(buf, src)
		}
		return
	}
	mid := n / 2
	Do(
		func() { mergeSort(src[:mid], buf[:mid], less, !toBuf) },
		func() { mergeSort(src[mid:], buf[mid:], less, !toBuf) },
	)
	// The sorted halves now live in the opposite array of the destination.
	var from, to []T
	if toBuf {
		from, to = src, buf
	} else {
		from, to = buf, src
	}
	parMerge(from[:mid], from[mid:], to, less)
}

// parMerge merges sorted a and b into out (len(out) == len(a)+len(b)),
// forking while the work is large.
func parMerge[T any](a, b, out []T, less func(a, b T) bool) {
	if len(a)+len(b) <= sortSeqThreshold {
		seqMerge(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		a, b = b, a // ensure a is the larger half
	}
	ma := len(a) / 2
	// Position of a[ma] in b by binary search.
	mb := sort.Search(len(b), func(i int) bool { return !less(b[i], a[ma]) })
	Do(
		func() { parMerge(a[:ma], b[:mb], out[:ma+mb], less) },
		func() { parMerge(a[ma:], b[mb:], out[ma+mb:], less) },
	)
}

func seqMerge[T any](a, b, out []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortPairs sorts keys (uint64) in parallel with a least-significant-digit
// radix sort, carrying vals along. It sorts 8 bits per pass over however
// many passes the maximum key requires; each pass is a parallel count /
// scan / scatter, with the per-block count and scatter phases running as
// scheduler tasks. This is the engine behind Morton sort.
func SortPairs(keys []uint64, vals []int32) {
	n := len(keys)
	if n != len(vals) {
		panic("parlay: SortPairs length mismatch")
	}
	if n <= 1 {
		return
	}
	maxKey := Reduce(n, 0, 0,
		func(i int) uint64 { return keys[i] },
		func(a, b uint64) uint64 {
			if a > b {
				return a
			}
			return b
		})
	passes := 0
	for mk := maxKey; mk > 0 || passes == 0; mk >>= 8 {
		passes++
	}
	tmpK := make([]uint64, n)
	tmpV := make([]int32, n)
	srcK, srcV, dstK, dstV := keys, vals, tmpK, tmpV

	nblocks, blockSize := blocking(n, 0)
	// counts[b][d]: occurrences of digit d in block b.
	counts := make([][256]int, nblocks)

	for pass := 0; pass < passes; pass++ {
		shift := uint(8 * pass)
		ForBlocked(nblocks, 1, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				var c [256]int
				lo, hi := b*blockSize, min((b+1)*blockSize, n)
				for i := lo; i < hi; i++ {
					c[(srcK[i]>>shift)&0xff]++
				}
				counts[b] = c
			}
		})
		// Column-major exclusive scan: digit-major so that equal digits
		// keep block order (stability).
		total := 0
		for d := 0; d < 256; d++ {
			for b := 0; b < nblocks; b++ {
				c := counts[b][d]
				counts[b][d] = total
				total += c
			}
		}
		ForBlocked(nblocks, 1, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				offsets := counts[b]
				lo, hi := b*blockSize, min((b+1)*blockSize, n)
				for i := lo; i < hi; i++ {
					d := (srcK[i] >> shift) & 0xff
					pos := offsets[d]
					offsets[d]++
					dstK[pos] = srcK[i]
					dstV[pos] = srcV[i]
				}
			}
		})
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}
