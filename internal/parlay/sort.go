package parlay

import (
	"math"
	"sort"
	"sync"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// sortSeqThreshold is the subproblem size below which parallel merge sort
// falls back to the standard library's introsort. Below this size the
// goroutine fork/join cost dominates any parallel gain.
const sortSeqThreshold = 8192

// Sort sorts s in parallel using a (non-stable) parallel merge sort:
// recursively sort halves in parallel, then merge the halves in parallel by
// splitting the merge at the median of the larger half (the classic
// CLRS/Cilk parallel merge). Work Θ(n log n), span Θ(log³ n).
func Sort[T any](s []T, less func(a, b T) bool) {
	n := len(s)
	if n <= sortSeqThreshold || NumWorkers() == 1 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	buf := make([]T, n)
	depth := 0
	for p := NumWorkers(); p > 1; p >>= 1 {
		depth += 2 // allow 4x oversubscription in the recursion tree
	}
	mergeSort(s, buf, less, depth, false)
}

// mergeSort sorts src; if toBuf, the sorted output lands in buf, otherwise
// in src. Alternating the destination avoids a copy per level.
func mergeSort[T any](src, buf []T, less func(a, b T) bool, depth int, toBuf bool) {
	n := len(src)
	if n <= sortSeqThreshold || depth <= 0 {
		sort.Slice(src, func(i, j int) bool { return less(src[i], src[j]) })
		if toBuf {
			copy(buf, src)
		}
		return
	}
	mid := n / 2
	Do(
		func() { mergeSort(src[:mid], buf[:mid], less, depth-1, !toBuf) },
		func() { mergeSort(src[mid:], buf[mid:], less, depth-1, !toBuf) },
	)
	// The sorted halves now live in the opposite array of the destination.
	var from, to []T
	if toBuf {
		from, to = src, buf
	} else {
		from, to = buf, src
	}
	parMerge(from[:mid], from[mid:], to, less, depth)
}

// parMerge merges sorted a and b into out (len(out) == len(a)+len(b)),
// forking while the work is large and depth remains.
func parMerge[T any](a, b, out []T, less func(a, b T) bool, depth int) {
	if len(a)+len(b) <= sortSeqThreshold || depth <= 0 {
		seqMerge(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		a, b = b, a // ensure a is the larger half
	}
	ma := len(a) / 2
	// Position of a[ma] in b by binary search.
	mb := sort.Search(len(b), func(i int) bool { return !less(b[i], a[ma]) })
	Do(
		func() { parMerge(a[:ma], b[:mb], out[:ma+mb], less, depth-1) },
		func() { parMerge(a[ma:], b[mb:], out[ma+mb:], less, depth-1) },
	)
}

func seqMerge[T any](a, b, out []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortPairs sorts keys (uint64) in parallel with a least-significant-digit
// radix sort, carrying vals along. It sorts 8 bits per pass over however
// many passes the maximum key requires; each pass is a parallel count /
// scan / scatter. This is the engine behind Morton sort.
func SortPairs(keys []uint64, vals []int32) {
	n := len(keys)
	if n != len(vals) {
		panic("parlay: SortPairs length mismatch")
	}
	if n <= 1 {
		return
	}
	var maxKey uint64
	maxKey = Reduce(n, 0, 0,
		func(i int) uint64 { return keys[i] },
		func(a, b uint64) uint64 {
			if a > b {
				return a
			}
			return b
		})
	passes := 0
	for mk := maxKey; mk > 0 || passes == 0; mk >>= 8 {
		passes++
	}
	tmpK := make([]uint64, n)
	tmpV := make([]int32, n)
	srcK, srcV, dstK, dstV := keys, vals, tmpK, tmpV

	p := NumWorkers()
	nblocks := min(4*p, max(1, n/DefaultGrain))
	blockSize := (n + nblocks - 1) / nblocks
	// counts[b][d]: occurrences of digit d in block b.
	counts := make([][256]int, nblocks)

	for pass := 0; pass < passes; pass++ {
		shift := uint(8 * pass)
		var wg sync.WaitGroup
		for b := 0; b < nblocks; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				var c [256]int
				lo, hi := b*blockSize, min((b+1)*blockSize, n)
				for i := lo; i < hi; i++ {
					c[(srcK[i]>>shift)&0xff]++
				}
				counts[b] = c
			}(b)
		}
		wg.Wait()
		// Column-major exclusive scan: digit-major so that equal digits
		// keep block order (stability).
		total := 0
		for d := 0; d < 256; d++ {
			for b := 0; b < nblocks; b++ {
				c := counts[b][d]
				counts[b][d] = total
				total += c
			}
		}
		for b := 0; b < nblocks; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				offsets := counts[b]
				lo, hi := b*blockSize, min((b+1)*blockSize, n)
				for i := lo; i < hi; i++ {
					d := (srcK[i] >> shift) & 0xff
					pos := offsets[d]
					offsets[d]++
					dstK[pos] = srcK[i]
					dstV[pos] = srcV[i]
				}
			}(b)
		}
		wg.Wait()
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
