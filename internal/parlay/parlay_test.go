package parlay

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000, 100001} {
		hit := make([]int32, n)
		For(n, 10, func(i int) { atomic.AddInt32(&hit[i], 1) })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForBlockedPartition(t *testing.T) {
	n := 54321
	var total int64
	ForBlocked(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Fatalf("blocks cover %d of %d", total, n)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 1) },
		func() { atomic.StoreInt32(&c, 1) },
	)
	if a+b+c != 3 {
		t.Fatal("Do did not run all thunks")
	}
	Do() // no-op must not hang
}

func TestReduceSum(t *testing.T) {
	n := 100000
	got := Reduce(n, 0, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
}

func TestSumIntAndCount(t *testing.T) {
	if got := SumInt(1000, 0, func(i int) int { return 2 }); got != 2000 {
		t.Fatalf("SumInt = %d", got)
	}
	if got := Count(1000, 0, func(i int) bool { return i%3 == 0 }); got != 334 {
		t.Fatalf("Count = %d", got)
	}
}

func TestMaxIndexFloat(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 9, 3}
	got := MaxIndexFloat(len(vals), 2, func(i int) float64 { return vals[i] })
	if got != 5 { // first of the two 9s
		t.Fatalf("MaxIndexFloat = %d, want 5", got)
	}
	if MaxIndexFloat(0, 0, func(int) float64 { return 0 }) != -1 {
		t.Fatal("empty MaxIndexFloat should be -1")
	}
	if got := MinIndexFloat(len(vals), 2, func(i int) float64 { return vals[i] }); got != 1 {
		t.Fatalf("MinIndexFloat = %d, want 1", got)
	}
}

func TestScanIntsMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 1000, 65537} {
		in := make([]int, n)
		ref := make([]int, n)
		for i := range in {
			in[i] = r.Intn(10)
			ref[i] = in[i]
		}
		total := ScanInts(in)
		want := 0
		for i := 0; i < n; i++ {
			if in[i] != want {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, in[i], want)
			}
			want += ref[i]
		}
		if total != want {
			t.Fatalf("n=%d: total = %d, want %d", n, total, want)
		}
	}
}

func TestPackIndexAndPack(t *testing.T) {
	n := 30000
	idx := PackIndex(n, func(i int) bool { return i%7 == 0 })
	if len(idx) != (n+6)/7 {
		t.Fatalf("PackIndex len = %d", len(idx))
	}
	for k, v := range idx {
		if int(v) != 7*k {
			t.Fatalf("PackIndex[%d] = %d", k, v)
		}
	}
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	out := Pack(in, func(i int) bool { return in[i]%2 == 1 })
	if len(out) != n/2 {
		t.Fatalf("Pack len = %d", len(out))
	}
	for k, v := range out {
		if v != 2*k+1 {
			t.Fatalf("Pack[%d] = %d", k, v)
		}
	}
	got := Filter(in, func(v int) bool { return v < 10 })
	if len(got) != 10 || got[9] != 9 {
		t.Fatalf("Filter bad: %v", got)
	}
}

func TestWriteMinConcurrent(t *testing.T) {
	var slot int64 = 1 << 62
	n := 10000
	For(n, 1, func(i int) { WriteMin(&slot, int64(i)) })
	if slot != 0 {
		t.Fatalf("WriteMin final = %d, want 0", slot)
	}
	var mx int64 = -1 << 62
	For(n, 1, func(i int) { WriteMax(&mx, int64(i)) })
	if mx != int64(n-1) {
		t.Fatalf("WriteMax final = %d", mx)
	}
}

func TestWriteMinReturnValue(t *testing.T) {
	var slot int64 = 100
	if !WriteMin(&slot, 50) {
		t.Fatal("WriteMin(50) over 100 should win")
	}
	if WriteMin(&slot, 70) {
		t.Fatal("WriteMin(70) over 50 should lose")
	}
	if WriteMin(&slot, 50) {
		t.Fatal("WriteMin(equal) should lose")
	}
}

func TestWriteMinFloat64(t *testing.T) {
	var slot uint64 = 1<<63 - 1
	For(1000, 1, func(i int) { WriteMinFloat64(&slot, float64(i)+0.5) })
	if got := math.Float64frombits(slot); got != 0.5 {
		t.Fatalf("WriteMinFloat64 got %v", got)
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 100, 10000, 100000} {
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(1000)
		}
		b := append([]int(nil), a...)
		Sort(a, func(x, y int) bool { return x < y })
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d: %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(a []uint16) bool {
		s := make([]int, len(a))
		for i, v := range a {
			s[i] = int(v)
		}
		Sort(s, func(x, y int) bool { return x < y })
		return sort.IntsAreSorted(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 255, 256, 70000} {
		keys := make([]uint64, n)
		vals := make([]int32, n)
		type kv struct {
			k uint64
			v int32
		}
		ref := make([]kv, n)
		for i := range keys {
			keys[i] = uint64(r.Int63n(1 << 40))
			vals[i] = int32(i)
			ref[i] = kv{keys[i], vals[i]}
		}
		SortPairs(keys, vals)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
		for i := 0; i < n; i++ {
			if keys[i] != ref[i].k || vals[i] != ref[i].v {
				t.Fatalf("n=%d: mismatch at %d: (%d,%d) vs (%d,%d)", n, i, keys[i], vals[i], ref[i].k, ref[i].v)
			}
		}
	}
}

func TestSortPairsStability(t *testing.T) {
	// Equal keys must preserve original value order (radix sort is stable).
	n := 10000
	keys := make([]uint64, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = uint64(i % 16)
		vals[i] = int32(i)
	}
	SortPairs(keys, vals)
	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] && vals[i] < vals[i-1] {
			t.Fatalf("instability at %d", i)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	n := 1000
	p := RandomPermutation(n, 123)
	seen := make([]bool, n)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// Determinism.
	q := RandomPermutation(n, 123)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("RandomPermutation not deterministic")
		}
	}
	// Different seeds should differ somewhere.
	r := RandomPermutation(n, 124)
	same := true
	for i := range p {
		if p[i] != r[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}
