package parlay

import "sync/atomic"

// FindFirst returns the smallest i in [0, n) with pred(i), or -1. It scans
// prefixes of doubling size, each prefix in parallel with an atomic
// min-index accumulator, so the work is proportional to the position of the
// first match (times a constant) rather than to n — the primitive behind
// the parallel Welzl algorithm's earliest-violator search (Blelloch et
// al.'s prefix doubling).
func FindFirst(n int, pred func(i int) bool) int {
	if n <= 0 {
		return -1
	}
	const firstBlock = 1024
	lo := 0
	size := firstBlock
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		var found int64 = int64(n)
		ForBlocked(hi-lo, firstBlock/4, func(blo, bhi int) {
			for i := blo; i < bhi; i++ {
				gi := lo + i
				if int64(gi) >= atomic.LoadInt64(&found) {
					return // a smaller match already exists
				}
				if pred(gi) {
					WriteMin(&found, int64(gi))
					return
				}
			}
		})
		if found < int64(n) {
			return int(found)
		}
		lo = hi
		size *= 2
	}
	return -1
}
