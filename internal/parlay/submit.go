package parlay

// Batch submission: an asynchronous entry point into the work-stealing
// scheduler. Submit hands a slice of independent thunks to the scheduler
// and returns immediately with a Handle; Handle.Wait blocks until every
// thunk has finished, helping execute scheduler work (this batch's tasks
// first, in LIFO order) instead of idling — the same waiter-helps protocol
// Do and For use.
//
// The hook exists for callers that aggregate work from many goroutines and
// release it as one batch — internal/engine's query combiner groups
// concurrent client queries and fans the group out through Submit, so a
// burst of single-point queries costs one scheduler entry rather than N
// goroutine round-trips. Unlike Do, the submitting goroutine does not run
// any thunk inline before returning, so it can keep collecting work between
// Submit and Wait.

// Handle tracks one submitted batch of tasks.
type Handle struct {
	s      *sched
	jn     join
	serial []func() // seqMode: deferred thunks, run inline at Wait
}

// Submit enqueues the thunks for execution on the scheduler and returns a
// Handle for awaiting them. The thunks may run on any worker (or on the
// goroutine that calls Wait); they must be independent. With GOMAXPROCS=1
// the thunks are deferred and run sequentially inside Wait, preserving the
// package-wide degradation guarantee that a single-processor run never
// touches the scheduler.
func Submit(thunks []func()) *Handle {
	h := &Handle{}
	if len(thunks) == 0 {
		return h
	}
	if seqMode() {
		h.serial = thunks
		return h
	}
	h.s = defaultSched()
	h.jn.pending.Store(int32(len(thunks)))
	if w := currentWorker(); w != nil && w.s == h.s {
		for i := len(thunks) - 1; i >= 0; i-- {
			w.spawn(&task{fn: thunks[i], j: &h.jn})
		}
		return h
	}
	ts := make([]*task, 0, len(thunks))
	for i := len(thunks) - 1; i >= 0; i-- {
		ts = append(ts, &task{fn: thunks[i], j: &h.jn})
	}
	h.s.injectTasks(ts)
	return h
}

// Wait blocks until every thunk of the batch has completed, executing
// available scheduler work on the calling goroutine while it waits. Any
// goroutine may call Wait, but only one should.
func (h *Handle) Wait() {
	if h.serial != nil {
		for _, fn := range h.serial {
			fn()
		}
		h.serial = nil
		return
	}
	if h.s == nil {
		return
	}
	if w := currentWorker(); w != nil && w.s == h.s {
		w.helpUntil(&h.jn)
		return
	}
	h.s.externalHelp(&h.jn)
}
